// Example: sfq_lab — a config-driven single-switch scheduling lab.
//
//   sfq_lab experiment.conf        run one experiment
//   sfq_lab --sweep experiment.conf  run it under every scheduler
//   sfq_lab                        run a built-in demo config
//
// Observability overrides (equivalent to `trace` / `metrics` directives in
// the config; see docs/OBSERVABILITY.md):
//   --trace FILE     write a JSONL packet-lifecycle trace of the first hop
//   --metrics FILE   write a MetricsRegistry JSON dump ("-" = stdout)
//   --check          run the online invariant checker; exit 1 on violations
//
// Fault injection (equivalent to `fault` directives; docs/ROBUSTNESS.md):
//   --faults "link down=3s up=4s; loss p=0.02 from=1s until=9s"
// Each semicolon-separated group is one `fault` directive appended to the
// config before parsing.
//
// Config format (see src/config/experiment.h):
//
//   scheduler SFQ
//   link rate=10Mbps delta=20Kb buffer=0
//   duration 10s
//   flow name=voice kind=cbr     rate=64Kbps packet=160B
//   flow name=tv    kind=vbr     rate=1.21Mbps packet=50B
//   flow name=bulk  kind=greedy  packet=1500B weight=4Mbps
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "config/experiment.h"
#include "core/scheduler_factory.h"

using namespace sfq;

namespace {

const char* kDemoConfig = R"(
# Built-in demo: interactive voice + VBR TV + two elephants on 10 Mb/s.
scheduler SFQ
link rate=10Mbps
duration 10s
flow name=voice kind=cbr    rate=64Kbps   packet=160B
flow name=tv    kind=vbr    rate=1.21Mbps packet=50B
flow name=web   kind=onoff  rate=8Mbps    packet=1000B weight=2Mbps mean_on=40ms mean_off=120ms
flow name=bulk1 kind=greedy packet=1500B  weight=3Mbps
flow name=bulk2 kind=greedy packet=1500B  weight=3Mbps start=5s
)";

void print_result(const config::ExperimentSpec& spec,
                  const config::ExperimentResult& r) {
  std::printf("scheduler %-12s %zu hop(s), first %.1f Mb/s  duration %.1f s"
              "  drops %llu\n",
              spec.scheduler.c_str(), spec.hops.size(),
              spec.link_rate() / 1e6, spec.duration,
              static_cast<unsigned long long>(r.drops));
  std::printf("  %-10s %10s %12s %12s %12s\n", "flow", "Mb/s", "mean(ms)",
              "p99(ms)", "max(ms)");
  for (const auto& f : r.flows) {
    std::printf("  %-10s %10.3f %12.3f %12.3f %12.3f\n", f.name.c_str(),
                f.throughput / 1e6, to_milliseconds(f.mean_delay),
                to_milliseconds(f.p99_delay), to_milliseconds(f.max_delay));
  }
  std::printf("  worst pairwise H / Theorem-1 bound: %.3f %s\n",
              r.worst_fairness_ratio,
              r.worst_fairness_ratio <= 1.0 + 1e-9
                  ? "(within fair-queueing bound)"
                  : "(UNFAIR)");
  if (!r.drop_causes.empty()) {
    std::printf("  drops by cause:");
    for (const auto& [cause, n] : r.drop_causes)
      std::printf(" %s=%llu", cause.c_str(),
                  static_cast<unsigned long long>(n));
    std::printf("\n");
  }
  if (spec.obs.enabled())
    std::printf("  trace: %llu events%s%s\n",
                static_cast<unsigned long long>(r.trace_events),
                spec.obs.trace_jsonl.empty() ? "" : " -> ",
                spec.obs.trace_jsonl.c_str());
  if (!r.invariant_report.empty())
    std::printf("  %s\n", r.invariant_report.c_str());
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool sweep = false;
  bool check = false;
  std::string file, trace_file, metrics_file, faults;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--sweep") sweep = true;
    else if (arg == "--check") check = true;
    else if (arg == "--trace" && i + 1 < argc) trace_file = argv[++i];
    else if (arg == "--metrics" && i + 1 < argc) metrics_file = argv[++i];
    else if (arg == "--faults" && i + 1 < argc) faults = argv[++i];
    else file = arg;
  }

  // Load the config text so --faults directives can be appended before the
  // (single-pass) parse.
  std::string text;
  if (file.empty()) {
    std::printf("no config given - running the built-in demo\n\n");
    text = kDemoConfig;
  } else {
    std::ifstream in(file);
    if (!in) {
      std::fprintf(stderr, "cannot open config: %s\n", file.c_str());
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    text = buf.str();
  }
  std::istringstream fs(faults);
  for (std::string group; std::getline(fs, group, ';');) {
    if (group.find_first_not_of(" \t") == std::string::npos) continue;
    text += "\nfault " + group + "\n";
  }

  config::ExperimentSpec spec;
  {
    std::istringstream in(text);
    spec = config::ExperimentSpec::parse(in);
  }
  if (!trace_file.empty()) spec.obs.trace_jsonl = trace_file;
  if (!metrics_file.empty()) spec.obs.metrics_json = metrics_file;
  if (check) spec.obs.check_invariants = true;

  uint64_t violations = 0;
  if (!sweep) {
    const auto r = config::run_experiment(spec);
    print_result(spec, r);
    violations = r.invariant_violations;
  } else {
    for (const std::string& name : scheduler_names()) {
      if (name == "EDD") continue;  // needs per-flow deadlines, not in configs
      spec.scheduler = name;
      const auto r = config::run_experiment(spec);
      print_result(spec, r);
      violations += r.invariant_violations;
    }
  }
  return violations == 0 ? 0 : 1;
}
