// sfq_chaos — deterministic chaos harness CLI (docs/CHAOS.md).
//
// Modes:
//   sfq_chaos run --seeds 256 [--rt 16] [--first 1] [--out DIR]
//       Sweep a seed block through the sim differential checks (determinism,
//       invariants, Theorem-1 fairness, throughput) and optionally the
//       rt-engine capture->replay check. On failure, shrink to a minimal
//       scenario and (with --out) write the repro .conf. Exit 1 on failure.
//   sfq_chaos replay --seed S [--rt]
//       Re-run one seed verbosely: print the generated scenario and the
//       check verdict. This is the one command a CI failure points at.
//   sfq_chaos shrink --seed S [--rt] [--out DIR]
//       Re-run one seed and, if it fails, print the minimized repro.
//
// Every scenario is a pure function of its seed: the same binary, seed and
// mode reproduce the same experiment byte-for-byte.
//
// --inject-tag-bug enables the known SFQ tag-arithmetic bug behind the test
// hook (start tag computed without the max against the previous finish tag)
// to demonstrate detection + shrinking end-to-end.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "chaos/differential.h"
#include "chaos/harness.h"
#include "core/sfq_scheduler.h"

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::printf(
      "usage: %s run    [--seeds N] [--rt N] [--rt-faults N] [--rt-kill N]"
      " [--wheel N] [--first S] [--out DIR]\n"
      "       %s replay --seed S [--rt|--faults|--kill-shard|--wheel]\n"
      "       %s shrink --seed S [--rt|--faults|--kill-shard|--wheel]"
      " [--out DIR]\n"
      "  --seeds N          sim seeds to sweep (default 64)\n"
      "  --rt N|--rt        rt differential seeds (run: count, default 0;\n"
      "                     replay/shrink: flag)\n"
      "  --rt-faults N      fault-injected rt seeds (run: count, default 0):\n"
      "                     seed-derived dispatcher pauses + clock jumps/skews\n"
      "                     + overload burst; the engine must self-heal and\n"
      "                     conserve (docs/ROBUSTNESS.md)\n"
      "  --faults           replay/shrink the fault-injected rt mode\n"
      "  --rt-kill N        shard-kill failover seeds (run: count, default 0):\n"
      "                     a seed-derived kill fells one dispatcher shard\n"
      "                     mid-load; the supervisor must fence, rehome and\n"
      "                     restart it with the ledger exact across the\n"
      "                     migration (docs/ROBUSTNESS.md). Cycles 2/4 shards\n"
      "                     capped at --shards\n"
      "  --kill-shard       replay/shrink the shard-kill failover mode\n"
      "  --wheel N|--wheel  heap-vs-wheel core differential seeds (run:\n"
      "                     count, default 0; replay/shrink: flag). Each\n"
      "                     seed's scenario is forced onto SFQ and run on\n"
      "                     both the exact heap core and the SFQ-W timestamp\n"
      "                     wheel; the wheel must hold the quantized-order\n"
      "                     invariant profile, the slack-widened Theorem-1\n"
      "                     bound and the cross-core service tolerance\n"
      "                     (docs/PERFORMANCE.md)\n"
      "  --first S          first seed of the block (default 1)\n"
      "  --seed S           the single seed to replay/shrink\n"
      "  --out DIR          write minimized repro .conf files here\n"
      "  --packets N        offered packets per rt seed (default 1500)\n"
      "  --shards N         max dispatcher shards for rt checks (default 1).\n"
      "                     run: rt seeds cycle 1/2/4 shards capped at N;\n"
      "                     replay/shrink: the exact shard count to use\n"
      "  --inject-tag-bug   enable the known SFQ tag bug (self-test demo)\n",
      argv0, argv0, argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sfq;
  if (argc < 2) usage(argv[0]);
  const std::string mode = argv[1];

  chaos::HarnessOptions opts;
  opts.sim_seeds = 64;
  opts.log = &std::cout;
  uint64_t seed = 0;
  bool rt_flag = false;
  bool faults_flag = false;
  bool kill_flag = false;
  bool wheel_flag = false;
  bool have_seed = false;

  auto need = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage(argv[0]);
    return argv[++i];
  };
  for (int i = 2; i < argc; ++i) {
    const std::string f = argv[i];
    if (f == "--seeds") opts.sim_seeds = std::strtoull(need(i), nullptr, 10);
    else if (f == "--rt") {
      rt_flag = true;
      if (i + 1 < argc && std::isdigit(static_cast<unsigned char>(argv[i + 1][0])))
        opts.rt_seeds = std::strtoull(need(i), nullptr, 10);
    } else if (f == "--rt-faults") {
      opts.rt_fault_seeds = std::strtoull(need(i), nullptr, 10);
    } else if (f == "--rt-kill") {
      opts.rt_kill_seeds = std::strtoull(need(i), nullptr, 10);
    } else if (f == "--wheel") {
      wheel_flag = true;
      if (i + 1 < argc && std::isdigit(static_cast<unsigned char>(argv[i + 1][0])))
        opts.wheel_seeds = std::strtoull(need(i), nullptr, 10);
    } else if (f == "--faults") faults_flag = true;
    else if (f == "--kill-shard") kill_flag = true;
    else if (f == "--first") opts.first_seed = std::strtoull(need(i), nullptr, 10);
    else if (f == "--seed") { seed = std::strtoull(need(i), nullptr, 10); have_seed = true; }
    else if (f == "--out") opts.repro_dir = need(i);
    else if (f == "--packets") opts.rt_packets = std::strtoull(need(i), nullptr, 10);
    else if (f == "--shards") opts.rt_shards = std::strtoull(need(i), nullptr, 10);
    else if (f == "--inject-tag-bug") SfqScheduler::set_tag_bug_for_test(true);
    else usage(argv[0]);
  }

  if (mode == "run") {
    std::printf("sfq_chaos: sweeping %llu sim seed(s) + %llu rt seed(s) "
                "+ %llu rt-fault seed(s) + %llu rt-kill seed(s) + %llu "
                "wheel seed(s) from seed %llu\n",
                static_cast<unsigned long long>(opts.sim_seeds),
                static_cast<unsigned long long>(opts.rt_seeds),
                static_cast<unsigned long long>(opts.rt_fault_seeds),
                static_cast<unsigned long long>(opts.rt_kill_seeds),
                static_cast<unsigned long long>(opts.wheel_seeds),
                static_cast<unsigned long long>(opts.first_seed));
    const chaos::ChaosReport report = chaos::run_chaos(opts);
    std::printf("ran %llu sim + %llu rt + %llu rt-fault + %llu rt-kill "
                "+ %llu wheel seeds: %zu failure(s)\n",
                static_cast<unsigned long long>(report.sim_seeds_run),
                static_cast<unsigned long long>(report.rt_seeds_run),
                static_cast<unsigned long long>(report.rt_fault_seeds_run),
                static_cast<unsigned long long>(report.rt_kill_seeds_run),
                static_cast<unsigned long long>(report.wheel_seeds_run),
                report.failures.size());
    return report.ok() ? 0 : 1;
  }

  if (mode == "replay" || mode == "shrink") {
    if (!have_seed) usage(argv[0]);
    opts.shrink_failures = mode == "shrink";
    const chaos::ChaosFailure f = chaos::replay_seed(
        seed, rt_flag, opts, faults_flag, kill_flag, wheel_flag);
    std::printf("# scenario for seed %llu%s\n%s",
                static_cast<unsigned long long>(seed),
                wheel_flag    ? " (heap-vs-wheel core differential)"
                : kill_flag   ? " (rt, shard-kill failover)"
                : faults_flag ? " (rt, injected faults)"
                : rt_flag     ? " (rt)"
                              : "",
                f.spec.serialize().c_str());
    if (f.kind.empty()) {
      std::printf("verdict: PASS\n");
      return 0;
    }
    std::printf("verdict: FAIL [%s]\n%s\n", f.kind.c_str(), f.detail.c_str());
    if (mode == "shrink") {
      std::printf("# minimized (%zu flows, %zu faults)\n%s",
                  f.minimized.flows.size(),
                  f.minimized.faults.link.size() + f.minimized.faults.loss.size(),
                  f.minimized.serialize().c_str());
      if (!f.repro_path.empty())
        std::printf("# written to %s\n", f.repro_path.c_str());
    }
    return 1;
  }

  usage(argv[0]);
}
