// Example: running a call-admission service on top of the SFQ guarantees.
//
// A 3-hop path of SFQ switches accepts leaky-bucket reservations. Every
// admission decision is pure arithmetic from the paper: per-hop rate sums
// (Theorems 2/4 premise), Theorem-4 beta terms, Corollary-1 composition and
// the Appendix-A.5 leaky-bucket bound — including the subtle part, where a
// *new* flow inflates the delay bound of *existing* flows (through the
// sum l_n^max / C term) and must be rejected if it would break a standing
// contract even though link capacity is still available.
#include <cstdio>

#include "qos/reservation.h"

using namespace sfq;

namespace {

void report(const char* what, const qos::PathReservations::Decision& d) {
  if (d.admitted)
    std::printf("  ADMIT  %-18s id=%u  e2e bound %.3f ms\n", what, d.id,
                to_milliseconds(d.e2e_bound));
  else
    std::printf("  reject %-18s (%s)\n", what, d.reason.c_str());
}

}  // namespace

int main() {
  // Three 45 Mb/s hops, 2 ms propagation, the middle one an FC server with
  // 30 kbit of scheduling burstiness (e.g. residual capacity behind control
  // traffic).
  qos::PathReservations path({
      {megabits_per_sec(45), 0.0, milliseconds(2)},
      {megabits_per_sec(45), 30e3, milliseconds(2)},
      {megabits_per_sec(45), 0.0, 0.0},
  });

  std::printf("path: 3 hops x 45 Mb/s\n\n");

  // A batch of voice calls: 64 Kb/s, 160-byte packets, 25 ms budget.
  qos::PathReservations::Request call;
  call.rate = kilobits_per_sec(64);
  call.max_packet_bits = bytes(160);
  call.sigma = 2 * bytes(160);
  call.delay_budget = milliseconds(30);
  call.name = "voice";
  for (int i = 0; i < 3; ++i) report("voice call", path.admit(call));

  // A video stream: 4 Mb/s, 1500-byte packets, generous budget.
  qos::PathReservations::Request video;
  video.rate = megabits_per_sec(4);
  video.max_packet_bits = bytes(1500);
  video.sigma = 20 * bytes(1500);
  video.delay_budget = milliseconds(120);
  video.name = "video";
  report("video stream", path.admit(video));

  // Bulk data wants 42 Mb/s: rejected, the rate sum would exceed a hop.
  qos::PathReservations::Request bulk;
  bulk.rate = megabits_per_sec(42);
  bulk.max_packet_bits = bytes(1500);
  bulk.sigma = 10 * bytes(1500);
  bulk.name = "bulk-42M";
  report("bulk transfer", path.admit(bulk));

  // A jumbo-frame flow: fits rate-wise, but its 48-kbit packets would add
  // ~1 ms per hop to every standing voice bound — watch the decision.
  qos::PathReservations::Request jumbo;
  jumbo.rate = megabits_per_sec(2);
  jumbo.max_packet_bits = bits(48000);
  jumbo.sigma = bits(96000);
  jumbo.name = "jumbo";
  auto jd = path.admit(jumbo);
  report("jumbo frames", jd);

  // Tear the jumbo flow down, admit a voice call whose budget sits just
  // above the jumbo-free bound, then try the jumbo flow again: the contract
  // check must now reject it — re-admitting it would push the tight call's
  // bound past its budget.
  if (jd.admitted) path.release(jd.id);
  auto probe = call;
  auto last = path.admit(probe);
  std::printf("\nvoice bound without jumbo traffic: %.3f ms\n",
              to_milliseconds(last.e2e_bound));
  if (last.admitted) path.release(last.id);
  probe.delay_budget = last.e2e_bound + milliseconds(0.1);
  probe.name = "voice-tight";
  report("tight voice call", path.admit(probe));
  auto jd2 = path.admit(jumbo);
  report("jumbo (vs tight contract)", jd2);

  std::printf("\nactive flows: %zu, reserved %.1f Mb/s of 45 Mb/s\n",
              path.active_flows(), path.reserved_rate() / 1e6);
  // Expected: voice/video/tight-voice admitted, 42M and the second jumbo
  // attempt rejected.
  const bool ok = path.active_flows() == 5 && !jd2.admitted;
  std::printf("%s\n", ok ? "admission logic behaved as expected"
                         : "unexpected admission outcome");
  return ok ? 0 : 1;
}
