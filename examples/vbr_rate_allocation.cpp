// Example: generalized SFQ (eq. 36) — per-packet rate allocation for VBR
// video.
//
// §2.3's motivation: VBR video needs more than a constant reserved rate at
// I-frame times. Generalized SFQ lets every packet carry its own rate r_f^j;
// the delay guarantee (Theorem 4) still holds as long as sum R_n(v) <= C in
// the virtual-time domain.
//
// Here a video flow reserves a time-varying rate — 3x the base rate for
// packets of I frames, 1x for P/B — against a base-rate-only reservation of
// the same average. The I-frame packets' worst queueing delay drops sharply
// because their finish tags stop overstating their cost; background traffic
// is unaffected (its Theorem-4 bound does not depend on the video's rates).
#include <algorithm>
#include <cstdio>
#include <memory>
#include <random>
#include <vector>

#include "core/sfq_scheduler.h"
#include "net/rate_profile.h"
#include "net/scheduled_server.h"
#include "sim/simulator.h"
#include "traffic/sources.h"

using namespace sfq;

namespace {

constexpr double kLink = 10e6;
constexpr double kPkt = bytes(500);
constexpr double kVideoBase = 2e6;   // average reservation
constexpr double kIRate = 6e6;       // per-packet rate for I-frame packets
constexpr int kGop = 12;             // I followed by 11 P/B frames
constexpr double kFps = 30.0;

struct Result {
  Time worst_iframe = 0.0;
  Time worst_other = 0.0;
  Time worst_bg = 0.0;
};

Result run(bool per_packet_rates) {
  sim::Simulator sim;
  SfqScheduler sched;
  FlowId video = sched.add_flow(kVideoBase, kPkt, "video");
  // Background reserves the link minus the video's *peak* (I-frame) rate, so
  // sum R_n(v) <= C holds even while eq. 36 boosts the I packets.
  FlowId bg = sched.add_flow(kLink - kIRate, kPkt, "bg");

  net::ScheduledServer server(sim, sched,
                              std::make_unique<net::ConstantRate>(kLink));
  Result res;
  // frag_index doubles as an "is I-frame packet" marker here (0/1).
  server.set_departure([&](const Packet& p, Time t) {
    const Time d = t - p.arrival;
    if (p.flow == bg) res.worst_bg = std::max(res.worst_bg, d);
    else if (p.frag_index == 1) res.worst_iframe = std::max(res.worst_iframe, d);
    else res.worst_other = std::max(res.worst_other, d);
  });

  // Frame-structured video: at 30 fps, an I frame is 6x a P/B frame. With
  // the average reservation sized to the mean, I bursts overflow a constant
  // per-packet rate.
  std::mt19937_64 rng(7);
  const double mean_frame_bits = kVideoBase / kFps;
  const double unit = mean_frame_bits * kGop / (6.0 + (kGop - 1));
  uint64_t seq = 0;
  for (int frame = 0; frame < 300; ++frame) {
    const bool iframe = frame % kGop == 0;
    const double bits = unit * (iframe ? 6.0 : 1.0);
    const Time at = frame / kFps;
    const int packets = static_cast<int>(std::ceil(bits / kPkt));
    sim.at(at, [&, iframe, packets]() {
      for (int k = 0; k < packets; ++k) {
        Packet p;
        p.flow = video;
        p.seq = ++seq;
        p.length_bits = kPkt;
        p.frag_index = iframe ? 1 : 0;
        if (per_packet_rates) {
          // Eq. 36: I-frame packets get 3x the base rate; P/B packets keep
          // the base. sum R_n(v) stays <= C because the background class
          // under-reserves by the same headroom.
          p.rate = iframe ? kIRate : kVideoBase;
        }
        server.inject(std::move(p));
      }
    });
  }
  // Background: greedy (continuously backlogged), so the scheduler — not
  // idle capacity — decides who goes first during I-frame bursts.
  traffic::CbrSource bgs(sim, bg,
                         [&](Packet p) { server.inject(std::move(p)); },
                         2.0 * (kLink - kIRate), kPkt);
  bgs.run(0.0, 10.0);
  sim.run_until(10.0);
  sim.run();
  return res;
}

}  // namespace

int main() {
  const Result fixed = run(false);
  const Result varied = run(true);

  std::printf("worst queueing delay (ms), 300 frames @30fps, GoP=%d:\n\n", kGop);
  std::printf("                       fixed-rate SFQ   generalized SFQ (eq.36)\n");
  std::printf("  I-frame packets      %10.3f      %10.3f\n",
              to_milliseconds(fixed.worst_iframe),
              to_milliseconds(varied.worst_iframe));
  std::printf("  P/B-frame packets    %10.3f      %10.3f\n",
              to_milliseconds(fixed.worst_other),
              to_milliseconds(varied.worst_other));
  std::printf("  background           %10.3f      %10.3f\n",
              to_milliseconds(fixed.worst_bg),
              to_milliseconds(varied.worst_bg));

  const bool ok = varied.worst_iframe < 0.7 * fixed.worst_iframe;
  std::printf("\n%s\n",
              ok ? "per-packet rates cut the I-frame worst delay"
                 : "unexpected: generalized rates did not help");
  return ok ? 0 : 1;
}
