// Example: an integrated-services access link managed with hierarchical SFQ
// (paper §3).
//
// Link-sharing structure:
//
//   root (10 Mb/s)
//   ├── real-time   (7 Mb/s)
//   │   ├── video   (VBR MPEG, 5 Mb/s weight)
//   │   └── audio   (64 Kb/s CBR x 4 calls)
//   └── best-effort (3 Mb/s)
//       ├── web     (on-off)
//       └── bulk    (greedy ftp)
//
// The demo prints each leaf's throughput and the audio delay percentiles,
// plus the analytic per-class FC parameters (eq. 65) and each flow's
// Theorem-4 delay bound, showing how the recursion gives end-host guarantees
// without knowing anything about sibling classes' traffic.
#include <cstdio>
#include <memory>
#include <vector>

#include "hier/link_sharing.h"
#include "net/rate_profile.h"
#include "net/scheduled_server.h"
#include "sim/simulator.h"
#include "stats/delay_stats.h"
#include "stats/service_recorder.h"
#include "traffic/sources.h"
#include "traffic/vbr_video.h"

using namespace sfq;

int main() {
  const double kLink = megabits_per_sec(10);
  const Time kRun = 20.0;

  // 1. Declare the link-sharing tree (scheduler + analytics in one object).
  hier::LinkSharingTree tree({kLink, 0.0});
  auto rt = tree.add_class(hier::LinkSharingTree::kRoot,
                           megabits_per_sec(7), "real-time");
  auto be = tree.add_class(hier::LinkSharingTree::kRoot,
                           megabits_per_sec(3), "best-effort");

  FlowId video = tree.add_flow(rt, megabits_per_sec(5), bytes(200), "video");
  std::vector<FlowId> audio;
  for (int i = 0; i < 4; ++i)
    audio.push_back(tree.add_flow(rt, kilobits_per_sec(64), bytes(160),
                                  "audio" + std::to_string(i)));
  FlowId web = tree.add_flow(be, megabits_per_sec(2), bytes(1000), "web");
  FlowId bulk = tree.add_flow(be, megabits_per_sec(1), bytes(1500), "bulk");

  // 2. Attach the scheduler to the access link.
  sim::Simulator sim;
  net::ScheduledServer server(sim, tree.scheduler(),
                              std::make_unique<net::ConstantRate>(kLink));
  stats::ServiceRecorder rec;
  stats::DelayStats delay;
  server.set_recorder(&rec);
  server.set_departure(
      [&](const Packet& p, Time t) { delay.add(p.flow, t - p.arrival); });
  auto emit = [&](Packet p) { server.inject(std::move(p)); };

  // 3. Workloads.
  traffic::MpegVbrSource::Params vp;
  vp.average_rate = 4.5e6;
  vp.packet_bits = bytes(200);
  vp.seed = 7;
  traffic::MpegVbrSource video_src(sim, video, emit, vp);
  video_src.run(0.0, kRun);

  std::vector<std::unique_ptr<traffic::Source>> sources;
  for (std::size_t i = 0; i < audio.size(); ++i) {
    sources.push_back(std::make_unique<traffic::CbrSource>(
        sim, audio[i], emit, kilobits_per_sec(64), bytes(160)));
    sources.back()->run(0.01 * static_cast<double>(i), kRun);
  }
  sources.push_back(std::make_unique<traffic::OnOffSource>(
      sim, web, emit, megabits_per_sec(8), bytes(1000), 0.1, 0.3, 11));
  sources.back()->run(0.0, kRun);
  sources.push_back(std::make_unique<traffic::CbrSource>(
      sim, bulk, emit, megabits_per_sec(12), bytes(1500)));
  sources.back()->run(0.0, kRun);

  sim.run_until(kRun);
  rec.finish(sim.now());

  // 4. Report.
  std::printf("leaf throughput over %.0f s:\n", kRun);
  auto report = [&](FlowId f, const char* name) {
    std::printf("  %-8s %8.3f Mb/s   mean delay %7.3f ms   p99 %7.3f ms\n",
                name, rec.served_bits(f) / kRun / 1e6,
                to_milliseconds(delay.mean(f)),
                to_milliseconds(delay.percentile(f, 99)));
  };
  report(video, "video");
  for (std::size_t i = 0; i < audio.size(); ++i)
    report(audio[i], ("audio" + std::to_string(i)).c_str());
  report(web, "web");
  report(bulk, "bulk");

  const auto rt_params = tree.class_params(rt);
  const auto be_params = tree.class_params(be);
  std::printf("\neq. 65 virtual-server parameters:\n");
  std::printf("  real-time   FC(%.1f Mb/s, %.0f bits)\n", rt_params.rate / 1e6,
              rt_params.delta);
  std::printf("  best-effort FC(%.1f Mb/s, %.0f bits)\n", be_params.rate / 1e6,
              be_params.delta);
  std::printf("\nTheorem-4 delay bounds (ms past EAT):\n");
  std::printf("  audio : %.3f\n",
              to_milliseconds(tree.flow_delay_term(audio[0], bytes(160))));
  std::printf("  video : %.3f\n",
              to_milliseconds(tree.flow_delay_term(video, bytes(200))));

  // Sanity: audio calls got their full 64 Kb/s and low delay.
  bool ok = true;
  for (FlowId a : audio) {
    if (rec.served_bits(a) / kRun < 0.95 * kilobits_per_sec(64)) ok = false;
    if (delay.percentile(a, 99) > tree.flow_delay_term(a, bytes(160)) + 0.05)
      ok = false;
  }
  std::printf("\n%s\n", ok ? "audio guarantees met under full load"
                           : "audio guarantees MISSED");
  return ok ? 0 : 1;
}
