// Quickstart: three CBR flows with weights 1:2:3 share a 10 Mb/s link under
// SFQ. Demonstrates the core API: build a scheduler, wrap it in a server,
// attach sources and a sink, run, and read per-flow statistics.
#include <cstdio>

#include "core/sfq_scheduler.h"
#include "net/rate_profile.h"
#include "net/scheduled_server.h"
#include "sim/simulator.h"
#include "stats/fairness.h"
#include "traffic/sink.h"
#include "traffic/sources.h"

int main() {
  using namespace sfq;

  sim::Simulator sim;

  // 1. The queueing discipline: Start-time Fair Queuing.
  SfqScheduler sched;
  const double kPacket = bytes(1000);
  FlowId a = sched.add_flow(megabits_per_sec(1), kPacket, "bronze");
  FlowId b = sched.add_flow(megabits_per_sec(2), kPacket, "silver");
  FlowId c = sched.add_flow(megabits_per_sec(3), kPacket, "gold");

  // 2. The output link: 10 Mb/s constant rate.
  net::ScheduledServer link(
      sim, sched, std::make_unique<net::ConstantRate>(megabits_per_sec(10)));

  // 3. Statistics and delivery.
  stats::ServiceRecorder recorder;
  link.set_recorder(&recorder);
  traffic::PacketSink sink;
  link.set_departure([&](const Packet& p, Time t) { sink.deliver(p, t); });

  // 4. Greedy sources: every flow offers 10 Mb/s, so all are continuously
  //    backlogged and the link must arbitrate.
  auto emit = [&](Packet p) { link.inject(std::move(p)); };
  traffic::CbrSource sa(sim, a, emit, megabits_per_sec(10), kPacket);
  traffic::CbrSource sb(sim, b, emit, megabits_per_sec(10), kPacket);
  traffic::CbrSource sc(sim, c, emit, megabits_per_sec(10), kPacket);
  sa.run(0.0, 10.0);
  sb.run(0.0, 10.0);
  sc.run(0.0, 10.0);

  // 5. Run 10 simulated seconds.
  sim.run_until(10.0);
  recorder.finish(sim.now());

  std::printf("flow     weight  served(Mb)  share\n");
  double total = 0.0;
  for (FlowId f : {a, b, c}) total += recorder.served_bits(f);
  for (FlowId f : {a, b, c}) {
    const double bits = recorder.served_bits(f);
    std::printf("%-8s %-7.0f %-11.2f %.3f\n",
                sched.flows().spec(f).name.c_str(),
                sched.flows().weight(f) / 1e6, bits / 1e6, bits / total);
  }

  const double h = stats::empirical_fairness(
      recorder, a, sched.flows().weight(a), c, sched.flows().weight(c));
  const double bound = stats::sfq_fairness_bound(
      kPacket, sched.flows().weight(a), kPacket, sched.flows().weight(c));
  std::printf("\nempirical H(bronze,gold) = %.6f s, Theorem-1 bound = %.6f s\n",
              h, bound);
  const bool ok = h <= bound + 1e-9;  // the bound is tight; allow FP noise
  std::printf("%s\n", ok ? "fairness bound holds" : "BOUND VIOLATED");
  return ok ? 0 : 1;
}
