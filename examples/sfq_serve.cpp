// sfq_serve — wall-clock real-time packet service (docs/REALTIME.md).
//
// Runs any scheduling discipline in the library against real time: N
// producer threads generate traffic with the traffic/ source models, push
// through lock-free ingress rings into the RtEngine dispatcher, which paces
// transmissions on std::chrono::steady_clock via a ConstantRate link.
//
//   sfq_serve --sched SFQ --flows 4 --producers 2 --rate 100e6 --duration 2
//   sfq_serve --sched SCFQ --model poisson --load 1.5 --policy pushout
//   sfq_serve --check --trace run.jsonl --metrics run.metrics.json
//   sfq_serve --shed --buffer 64 --load 2.5 --fault-pause 0.8,0.3
//             --fault-jump 1.2,0.4 --stall-timeout 0.1
//   sfq_serve --shards 4 --failover --fault-kill 0.5,1 --load 2.5
//
// Prints per-flow service, the drop taxonomy, achieved packets/sec, pacing
// lag, and the measured wall-clock fairness of every flow pair against the
// Theorem-1 bound, then self-checks the drop-ledger conservation identities
// (docs/ROBUSTNESS.md) — a violation is always a non-zero exit. --shed arms
// the overload admission machine; the --fault-* flags script rt-layer faults
// (dispatcher pauses, clock jumps/skew) against the watchdog, and the exit
// status distinguishes a recovered stall (0: service resumed) from a
// permanent one (1: restart budget exhausted). With --check, the online
// invariant checker (wrapped in the thread-safe rt::SyncSink) validates the
// live trace stream and a violation makes the exit status non-zero.
//
// SIGINT/SIGTERM trigger a graceful drain instead of an abort: producers are
// stopped at the next packet boundary, the engine drain-stops, and the full
// summary + conservation self-check still run (exit non-zero if the
// interrupted ledger does not balance). --shards N --failover arms the shard
// supervisor: a permanently dead shard (watchdog budget exhausted, or a
// --fault-kill) is fenced, its flows rehomed onto survivors, and a cold
// restart attempted; the summary then reports per-shard verdicts and gates
// the surviving flows' fairness against the migration-extended bound.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/scheduler_factory.h"
#include "obs/invariant_checker.h"
#include "obs/metrics.h"
#include "obs/telemetry/registry_bridge.h"
#include "obs/telemetry/telemetry.h"
#include "obs/trace.h"
#include "rt/engine.h"
#include "rt/load_gen.h"
#include "rt/shard/shard_supervisor.h"
#include "rt/shard/sharded_engine.h"
#include "rt/sync_sink.h"
#include "stats/fairness.h"

namespace {

// SIGINT/SIGTERM request a graceful drain: the snapshot loops poll this,
// stop the producers, and run the normal summary + conservation gate.
volatile std::sig_atomic_t g_stop_signal = 0;
extern "C" void on_stop_signal(int sig) { g_stop_signal = sig; }

struct Args {
  std::string sched = "SFQ";
  double quantum = 0.0;  // SFQ-W tag-quantization window, s; 0 = auto
  std::size_t flows = 4;
  std::size_t producers = 2;
  std::vector<double> weights;  // bits/s; filled from --weights or derived
  double rate = 100e6;          // link bits/s
  double duration = 2.0;        // seconds
  std::string model = "cbr";
  double load = 2.0;            // offered = load * weight per flow
  double packet_bits = 8000.0;
  std::size_t buffer = 256;
  std::string policy = "taildrop";
  std::size_t ring = 1 << 14;
  double stall_timeout = 2.0;  // watchdog window, seconds; 0 disables
  unsigned restart_budget = 3;  // watchdog restarts before permanent stop
  bool shed = false;            // overload admission control (--buffer > 0)
  sfq::rt::RtFaultPlan fault_plan;  // --fault-pause/--fault-jump/--fault-skew
  struct KillFault {  // --fault-kill AT[,SHARD]
    double at = 0.0;
    std::size_t shard = 0;
  };
  std::vector<KillFault> fault_kills;
  bool failover = false;  // shard supervisor (--shards > 1)
  double stats_interval = 0.0;  // live console stats cadence; 0 disables
  int stats_port = -1;          // localhost HTTP exposition; -1 disables
  std::size_t shards = 1;       // >1: ShardedEngine (docs/REALTIME.md)
  bool unpaced = false;
  bool check = false;
  std::string trace_path;
  std::string metrics_path;
};

[[noreturn]] void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --sched NAME        discipline (default SFQ; see scheduler_names).\n"
      "                      SFQ-W is the timestamp-wheel SFQ core: exact\n"
      "                      order up to one quantization window, widened\n"
      "                      fairness bound (docs/PERFORMANCE.md)\n"
      "  --quantum T         SFQ-W tag-quantization window in seconds\n"
      "                      (default: one max-size packet time,\n"
      "                      --packet-bits / link share)\n"
      "  --flows N           number of flows (default 4)\n"
      "  --producers N       producer threads (default 2)\n"
      "  --weights a,b,...   flow weights in bits/s (default: split 1/2 of "
      "--rate evenly)\n"
      "  --rate R            link rate, bits/s (default 100e6)\n"
      "  --duration S        seconds of generated traffic (default 2)\n"
      "  --model M           cbr | poisson | onoff (default cbr)\n"
      "  --load F            offered rate = F * weight (default 2.0)\n"
      "  --packet-bits B     packet size (default 8000)\n"
      "  --buffer N          scheduler backlog cap, 0 = infinite (default "
      "256)\n"
      "  --policy P          taildrop | pushout (default taildrop)\n"
      "  --ring N            per-producer ring capacity (default 16384)\n"
      "  --stall-timeout S   watchdog: stall if backlogged with no service\n"
      "                      progress for S wall seconds (default 2, 0 off)\n"
      "  --restart-budget N  watchdog: consecutive fruitless restarts before\n"
      "                      the permanent stop (default 3)\n"
      "  --shed              overload admission control: weighted-fair load\n"
      "                      shedding behind per-flow token buckets while\n"
      "                      occupancy is high (requires --buffer > 0)\n"
      "  --fault-pause AT,DUR\n"
      "                      inject: dispatcher sleeps DUR s at raw time AT\n"
      "                      (seconds from engine start; repeatable)\n"
      "  --fault-jump AT,DELTA\n"
      "                      inject: clock steps by DELTA s at raw time AT\n"
      "                      (backward steps freeze the engine clock)\n"
      "  --fault-skew FROM,UNTIL,FACTOR\n"
      "                      inject: clock runs at FACTOR x real rate inside\n"
      "                      [FROM, UNTIL)\n"
      "  --fault-kill AT[,SHARD]\n"
      "                      inject: the dispatcher (of shard SHARD, default\n"
      "                      0) dies permanently at raw time AT; with\n"
      "                      --shards 1 this demonstrates the permanent stop,\n"
      "                      with --failover the supervisor recovers it\n"
      "  --failover          shard failover (--shards > 1): fence a dead\n"
      "                      shard, rehome its flows onto survivors via the\n"
      "                      rendezvous remap, cold-restart it and rehome\n"
      "                      back (docs/ROBUSTNESS.md \"Shard failover\")\n"
      "  --stats-interval S  print a live stats line every S seconds\n"
      "  --stats-port P      serve Prometheus text at /metrics and JSON at\n"
      "                      /metrics.json on 127.0.0.1:P (0 = ephemeral)\n"
      "  --shards N          dispatcher shards (default 1). N > 1 runs the\n"
      "                      sharded multi-core engine: flows hash to shards,\n"
      "                      each shard is a full engine, the H-SFQ root\n"
      "                      splits --rate by weight share and the summary\n"
      "                      reports per-shard ledgers + the hierarchical\n"
      "                      fairness bound (no --trace/--check in this mode)\n"
      "  --unpaced           blast arrivals as fast as rings accept\n"
      "  --trace FILE        JSONL packet-lifecycle trace\n"
      "  --metrics FILE      metrics registry JSON dump\n"
      "  --check             online invariant checking (non-zero exit on "
      "violation)\n",
      argv0);
  std::exit(2);
}

std::vector<double> parse_list(const std::string& s) {
  std::vector<double> out;
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    out.push_back(std::stod(s.substr(pos, comma - pos)));
    pos = comma + 1;
  }
  return out;
}

Args parse(int argc, char** argv) {
  Args a;
  auto need = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage(argv[0]);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string f = argv[i];
    if (f == "--sched") a.sched = need(i);
    else if (f == "--quantum") a.quantum = std::stod(need(i));
    else if (f == "--flows") a.flows = std::strtoul(need(i), nullptr, 10);
    else if (f == "--producers") a.producers = std::strtoul(need(i), nullptr, 10);
    else if (f == "--weights") a.weights = parse_list(need(i));
    else if (f == "--rate") a.rate = std::stod(need(i));
    else if (f == "--duration") a.duration = std::stod(need(i));
    else if (f == "--model") a.model = need(i);
    else if (f == "--load") a.load = std::stod(need(i));
    else if (f == "--packet-bits") a.packet_bits = std::stod(need(i));
    else if (f == "--buffer") a.buffer = std::strtoul(need(i), nullptr, 10);
    else if (f == "--policy") a.policy = need(i);
    else if (f == "--ring") a.ring = std::strtoul(need(i), nullptr, 10);
    else if (f == "--stall-timeout") a.stall_timeout = std::stod(need(i));
    else if (f == "--restart-budget")
      a.restart_budget = static_cast<unsigned>(std::strtoul(need(i), nullptr, 10));
    else if (f == "--shed") a.shed = true;
    else if (f == "--fault-pause") {
      const std::vector<double> v = parse_list(need(i));
      if (v.size() != 2) usage(argv[0]);
      a.fault_plan.pauses.push_back({v[0], v[1]});
    } else if (f == "--fault-jump") {
      const std::vector<double> v = parse_list(need(i));
      if (v.size() != 2) usage(argv[0]);
      a.fault_plan.jumps.push_back({v[0], v[1]});
    } else if (f == "--fault-skew") {
      const std::vector<double> v = parse_list(need(i));
      if (v.size() != 3) usage(argv[0]);
      a.fault_plan.skews.push_back({v[0], v[1], v[2]});
    } else if (f == "--fault-kill") {
      const std::vector<double> v = parse_list(need(i));
      if (v.size() != 1 && v.size() != 2) usage(argv[0]);
      a.fault_kills.push_back(
          {v[0], v.size() == 2 ? static_cast<std::size_t>(v[1]) : 0});
    } else if (f == "--failover") a.failover = true;
    else if (f == "--stats-interval") a.stats_interval = std::stod(need(i));
    else if (f == "--stats-port") a.stats_port = std::atoi(need(i));
    else if (f == "--shards") a.shards = std::strtoul(need(i), nullptr, 10);
    else if (f == "--unpaced") a.unpaced = true;
    else if (f == "--check") a.check = true;
    else if (f == "--trace") a.trace_path = need(i);
    else if (f == "--metrics") a.metrics_path = need(i);
    else usage(argv[0]);
  }
  if (a.flows == 0 || a.producers == 0 || a.rate <= 0.0 || a.duration <= 0.0 ||
      a.packet_bits <= 0.0 || a.load <= 0.0)
    usage(argv[0]);
  if (a.shed && a.buffer == 0) {
    std::fprintf(stderr,
                 "--shed needs a finite --buffer (occupancy is measured "
                 "against the backlog cap)\n");
    std::exit(2);
  }
  if (a.shards == 0) usage(argv[0]);
  if (a.failover && a.shards < 2) {
    std::fprintf(stderr,
                 "--failover needs --shards > 1 (rehoming needs a survivor "
                 "shard)\n");
    std::exit(2);
  }
  for (const Args::KillFault& k : a.fault_kills) {
    if (k.shard >= a.shards) {
      std::fprintf(stderr, "--fault-kill shard %zu out of range (%zu shards)\n",
                   k.shard, a.shards);
      std::exit(2);
    }
    // Single-engine mode has no shard targeting: the kill goes straight into
    // the engine's own fault plan (a permanent-stop demonstration).
    if (a.shards == 1) a.fault_plan.kills.push_back({k.at});
  }
  if (a.shards > 1 && (a.check || !a.trace_path.empty())) {
    std::fprintf(stderr,
                 "--shards > 1 does not support --trace/--check (the trace "
                 "stream and invariant profile assume one dispatcher)\n");
    std::exit(2);
  }
  if (a.weights.empty()) {
    // Default: the flows share half the link, so load factors > 2 overload.
    a.weights.assign(a.flows, 0.5 * a.rate / static_cast<double>(a.flows));
  }
  while (a.weights.size() < a.flows) a.weights.push_back(a.weights.back());
  a.weights.resize(a.flows);
  return a;
}

sfq::rt::FlowLoad::Model model_of(const std::string& name) {
  if (name == "cbr") return sfq::rt::FlowLoad::Model::kCbr;
  if (name == "poisson") return sfq::rt::FlowLoad::Model::kPoisson;
  if (name == "onoff") return sfq::rt::FlowLoad::Model::kOnOff;
  std::fprintf(stderr, "unknown model: %s\n", name.c_str());
  std::exit(2);
}

// --shards N > 1: the sharded multi-core engine (docs/REALTIME.md sharding
// section). Same traffic and summary shape as the single-engine path, plus
// per-shard ledgers/occupancy and the hierarchical cross-shard fairness
// verdict; the per-shard conservation identities and their exact global sum
// are both gated.
int run_sharded(const Args& args) {
  using namespace sfq;

  std::vector<rt::ShardFlow> flows;
  std::vector<std::string> flow_names;
  for (std::size_t f = 0; f < args.flows; ++f) {
    flow_names.push_back("flow" + std::to_string(f));
    flows.push_back(
        rt::ShardFlow{args.weights[f], args.packet_bits, flow_names.back()});
  }

  rt::ShardedEngineOptions sopts;
  sopts.shards = args.shards;
  sopts.link_rate = args.rate;
  sopts.engine.producers = args.producers;
  sopts.engine.ring_capacity = args.ring;
  sopts.engine.buffer_limit = args.buffer;
  sopts.engine.overload_policy = args.policy == "pushout"
                                     ? net::OverloadPolicy::kPushout
                                     : net::OverloadPolicy::kTailDrop;
  sopts.engine.stall_timeout = args.stall_timeout;
  sopts.engine.restart_budget = args.restart_budget;
  sopts.engine.admission_control = args.shed;
  sopts.engine.fault_plan = args.fault_plan;
  sopts.stats_interval = args.stats_interval;
  sopts.stats_port = args.stats_port;
  sopts.stats_console = args.stats_interval > 0.0;
  sopts.failover.enabled = args.failover;
  for (const Args::KillFault& k : args.fault_kills) {
    rt::RtFaultPlan kp;
    kp.kills.push_back({k.at});
    sopts.shard_faults.push_back({k.shard, std::move(kp)});
  }

  const std::string sched_name = args.sched;
  auto factory = [&](std::size_t, double share) {
    SchedulerOptions so;
    so.assumed_capacity = args.rate * share;
    // SFQ-W quantum: explicit, else one max-size packet time on this
    // shard's link share (the factory ignores it for other disciplines).
    so.sfq_wheel_quantum = args.quantum > 0.0
                               ? args.quantum
                               : args.packet_bits / (args.rate * share);
    return make_scheduler(sched_name, so);
  };
  std::string err;
  std::unique_ptr<rt::ShardedEngine> engine =
      rt::ShardedEngine::try_create(factory, flows, sopts, &err);
  if (!engine) {
    std::fprintf(stderr, "%s\n", err.c_str());
    return 2;
  }

  obs::telemetry::TelemetryOptions topts;
  topts.shards = args.shards;
  obs::telemetry::Telemetry telemetry(topts);
  engine->set_telemetry(&telemetry);

  std::vector<std::vector<rt::FlowLoad>> producer_flows(args.producers);
  for (std::size_t f = 0; f < args.flows; ++f) {
    rt::FlowLoad l;
    l.flow = static_cast<FlowId>(f);
    l.model = model_of(args.model);
    l.rate = args.load * args.weights[f];
    l.packet_bits = args.packet_bits;
    l.seed = 1 + f;
    producer_flows[f % args.producers].push_back(l);
  }
  rt::LoadGenOptions lg_opts;
  lg_opts.paced = !args.unpaced;
  lg_opts.block_on_full = args.unpaced;

  std::printf("sfq_serve: %zu x %s shards on a %.3g bit/s link, %zu flows, "
              "%zu producers, %s %s load x%.2f, %.2fs\n",
              args.shards, args.sched.c_str(), args.rate, args.flows,
              args.producers, args.unpaced ? "unpaced" : "paced",
              args.model.c_str(), args.load, args.duration);

  engine->start();
  if (args.stats_port >= 0)
    std::printf("stats endpoint: http://127.0.0.1:%u/metrics (and "
                "/metrics.json)\n",
                engine->stats_endpoint_port());
  rt::LoadGen load_gen(*engine, std::move(producer_flows), lg_opts);

  std::vector<std::vector<double>> snapshots;
  std::vector<double> snap_time;        // seconds since wall_start
  std::vector<uint64_t> snap_route_ver; // routing-table version at snapshot
  const Time wall_start = engine->now();
  load_gen.start(args.duration);
  if (!args.unpaced) {
    const Time snap_every = std::max(args.duration / 20.0, 0.05);
    Time next_snap = wall_start + snap_every;
    while (engine->now() - wall_start < args.duration) {
      if (engine->stalled() || g_stop_signal) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      if (engine->now() >= next_snap) {
        snapshots.push_back(engine->service_snapshot());
        snap_time.push_back(engine->now() - wall_start);
        snap_route_ver.push_back(engine->route_version());
        next_snap += snap_every;
      }
    }
  }
  if (g_stop_signal) {
    std::printf("\nsignal %d: graceful drain — stopping producers, flushing "
                "the backlog, running the conservation self-check\n",
                static_cast<int>(g_stop_signal));
    load_gen.request_stop();
  }
  load_gen.join();
  engine->stop(rt::StopMode::kDrain);
  const Time wall_end = engine->now();

  const rt::EngineStats st = engine->stats();
  const double elapsed = wall_end - wall_start;

  std::printf("\n%-8s %6s %14s %12s %14s %12s\n", "flow", "shard",
              "weight(b/s)", "tx_packets", "tx_bits", "goodput(b/s)");
  for (std::size_t f = 0; f < args.flows; ++f) {
    const double bits = engine->flow_tx_bits(static_cast<FlowId>(f));
    std::printf("%-8s %6zu %14.4g %12.0f %14.0f %12.4g\n",
                flow_names[f].c_str(), engine->shard_of(f), args.weights[f],
                bits / args.packet_bits, bits, bits / elapsed);
  }

  // Per-shard ledgers + occupancy (which shard is hot), then the global sum.
  // `state` is the live per-shard stall verdict (satellite of the failover
  // work: rt.shard_stalled / rt.last_stall_stage carry the same signal on
  // the stats exposition).
  std::printf("\n%-8s %6s %12s %12s %12s %12s %6s %5s %s\n", "shard", "flows",
              "weight(b/s)", "tx_packets", "drops", "backlog", "occ%", "ov",
              "state");
  for (std::size_t k = 0; k < args.shards; ++k) {
    const rt::EngineStats es = engine->shard_stats(k);
    std::size_t nflows = 0;
    for (std::size_t f = 0; f < args.flows; ++f)
      if (engine->shard_of(f) == k) ++nflows;
    const double occ = args.buffer > 0
                           ? 100.0 * static_cast<double>(es.backlog) /
                                 static_cast<double>(args.buffer)
                           : 0.0;
    std::printf("%-8zu %6zu %12.4g %12llu %12llu %12llu %6.0f %5d %s\n", k,
                nflows, engine->shard_weight(k),
                static_cast<unsigned long long>(es.transmitted),
                static_cast<unsigned long long>(es.dropped() +
                                                es.ingress_drops),
                static_cast<unsigned long long>(es.backlog), occ,
                es.overload_state,
                engine->shard_stalled(k)
                    ? (std::string("DEAD@") +
                       rt::to_string(es.last_stall_stage))
                          .c_str()
                    : "ok");
  }

  std::printf("\nproduced %llu  ingress_drops %llu  accepted %llu  "
              "transmitted %llu  backlog %llu  abandoned %llu\n",
              static_cast<unsigned long long>(load_gen.produced_total()),
              static_cast<unsigned long long>(st.ingress_drops),
              static_cast<unsigned long long>(st.accepted),
              static_cast<unsigned long long>(st.transmitted),
              static_cast<unsigned long long>(st.backlog),
              static_cast<unsigned long long>(st.abandoned));
  std::printf("drops by cause:");
  for (std::size_t c = 0; c < obs::kDropCauseCount; ++c)
    if (st.drops[c] != 0)
      std::printf(" %s=%llu", obs::to_string(static_cast<obs::DropCause>(c)),
                  static_cast<unsigned long long>(st.drops[c]));
  if (st.dropped() == 0) std::printf(" none");
  std::printf("\nthroughput %.3g packets/s (%.3g bit/s), wall %.3fs, "
              "max pacing lag %.3g ms, worst overload state %d\n",
              st.transmitted / elapsed, st.tx_bits / elapsed, elapsed,
              1e3 * st.max_service_lag, engine->overload_state());

  // Failover epoch log: one verdict line per shard death the supervisor
  // handled (docs/ROBUSTNESS.md "Shard failover").
  std::vector<char> shard_died(args.shards, 0);
  if (engine->failover_enabled()) {
    std::printf("failover  %llu shard failover(s), %llu flow rehoming(s), "
                "migration slack %.4g ms, migrated %llu in / %llu out%s\n",
                static_cast<unsigned long long>(engine->shard_failovers()),
                static_cast<unsigned long long>(engine->flows_rehomed()),
                1e3 * engine->migration_slack(),
                static_cast<unsigned long long>(st.migrated_in),
                static_cast<unsigned long long>(st.migrated_out),
                engine->stalled() ? " — WEDGED (no survivor left)" : "");
    for (const rt::FailoverEvent& ev : engine->supervisor()->events()) {
      shard_died[ev.shard] = 1;
      std::printf("  shard %zu: DIED -> rehomed %zu flow(s) (%llu backlog "
                  "pkt) onto survivors in %.3g ms%s\n",
                  ev.shard, ev.flows_moved,
                  static_cast<unsigned long long>(ev.packets_moved),
                  1e3 * ev.latency,
                  ev.restarted ? ", cold restart OK, flows rehomed back"
                               : ", left on survivors");
    }
  }

  // Conservation: each shard's ledger must satisfy the engine identities
  // exactly, and the global identities must hold for the sums — every
  // offered packet is accounted on exactly one shard.
  bool conserve_ok = true;
  {
    struct Identity {
      const char* name;
      uint64_t lhs, rhs;
    };
    auto check = [&](const std::string& where, const rt::EngineStats& es,
                     uint64_t offers, bool have_offers) {
      const auto d = [&](obs::DropCause c) {
        return es.drops[static_cast<std::size_t>(c)];
      };
      const uint64_t pre = d(obs::DropCause::kUnknownFlow) +
                           d(obs::DropCause::kBufferLimit) +
                           d(obs::DropCause::kShed);
      const uint64_t post =
          d(obs::DropCause::kPushout) + d(obs::DropCause::kFlowRemoved);
      // Migration-extended identities (docs/ROBUSTNESS.md "Shard failover"):
      // adopted backlog enters a shard as migrated_in (alongside its own
      // ingress), harvested backlog leaves as migrated_out. Globally the two
      // cancel once every failover epoch settles.
      std::vector<Identity> ids = {
          {"ingress_pushed + migrated_in == accepted + pre_enqueue_drops + "
           "abandoned",
           es.ingress_pushed + es.migrated_in, es.accepted + pre + es.abandoned},
          {"accepted == transmitted + backlog + post_enqueue_drops + "
           "migrated_out",
           es.accepted, es.transmitted + es.backlog + post + es.migrated_out},
      };
      if (have_offers) {
        ids.insert(ids.begin(),
                   {"offers == ingress_pushed + ingress_drops", offers,
                    es.ingress_pushed + es.ingress_drops});
        ids.push_back({"migrated_in == migrated_out (settled failovers)",
                       es.migrated_in, es.migrated_out});
      }
      for (const Identity& id : ids)
        if (id.lhs != id.rhs) {
          std::printf("conservation VIOLATED (%s): %s (%llu != %llu)\n",
                      where.c_str(), id.name,
                      static_cast<unsigned long long>(id.lhs),
                      static_cast<unsigned long long>(id.rhs));
          conserve_ok = false;
        }
    };
    for (std::size_t k = 0; k < args.shards; ++k)
      check("shard " + std::to_string(k), engine->shard_stats(k), 0, false);
    check("global sum", st, load_gen.produced_total(), true);
    if (conserve_ok)
      std::printf("conservation OK: every offered packet is accounted on "
                  "exactly one shard (sum of %zu shard ledgers == offers)\n",
                  args.shards);
  }

  // Hierarchical fairness: worst per-pair normalized gap over middle-of-run
  // windows vs fairness_bound(f, m) — Theorem 1 within a shard, + both
  // shards' eq.-65 slack across shards. Slack: one in-flight quantum per
  // flow, as in the single-engine verdict.
  bool fairness_ok = true;
  if (snapshots.size() >= 4 && args.flows >= 2) {
    const std::size_t lo = snapshots.size() / 4;
    const std::size_t hi = snapshots.size() - snapshots.size() / 4;
    // Across a failover, flows homed on a shard that died spent the
    // migration blackout unserved — their windows void the
    // continuously-backlogged premise, so those pairs are excluded from the
    // gate. Survivor pairs are still gated, but only over windows that do
    // not straddle the migration epoch: the evacuate and rehome-back
    // remaps re-weight every shard's root share, so a window spanning a
    // routing-table version bump (or the pre-fence blackout between the
    // kill and its detection, when the version has not moved yet) measures
    // the reweight transient, not steady-state SFQ. Clean windows are
    // gated against the bound extended by the supervisor's measured
    // migration_slack (residual adopted-backlog drain;
    // docs/ROBUSTNESS.md derivation).
    const double mig_slack =
        engine->shard_failovers() > 0 ? engine->migration_slack() : 0.0;
    auto window_clean = [&](std::size_t i, std::size_t j) {
      if (snap_route_ver[i] != snap_route_ver[j]) return false;
      for (const Args::KillFault& k : args.fault_kills)
        if (snap_time[i] <= k.at && k.at <= snap_time[j]) return false;
      return true;
    };
    std::size_t excluded_pairs = 0;
    double worst_ratio = 0.0;
    double worst_gap = 0.0, worst_bound = 0.0;
    std::size_t worst_f = 0, worst_m = 1;
    bool worst_cross = false;
    for (std::size_t f = 0; f < args.flows; ++f) {
      for (std::size_t m = f + 1; m < args.flows; ++m) {
        if (shard_died[engine->home_shard_of(f)] ||
            shard_died[engine->home_shard_of(m)]) {
          ++excluded_pairs;
          continue;
        }
        const double bound =
            engine->fairness_bound(static_cast<FlowId>(f),
                                   static_cast<FlowId>(m)) +
            stats::sfq_fairness_bound(args.packet_bits, args.weights[f],
                                      args.packet_bits, args.weights[m]) +
            mig_slack;
        for (std::size_t i = lo; i < hi; ++i) {
          for (std::size_t j = i + 1; j < hi; ++j) {
            if (!window_clean(i, j)) continue;
            const double df = snapshots[j][f] - snapshots[i][f];
            const double dm = snapshots[j][m] - snapshots[i][m];
            const double gap =
                std::fabs(df / args.weights[f] - dm / args.weights[m]);
            if (gap / bound > worst_ratio) {
              worst_ratio = gap / bound;
              worst_gap = gap;
              worst_bound = bound;
              worst_f = f;
              worst_m = m;
              worst_cross = engine->shard_of(f) != engine->shard_of(m);
            }
          }
        }
      }
    }
    const bool gate = args.fault_plan.empty();
    if (worst_bound > 0.0) {
      std::printf("fairness  worst |dW_%zu/r - dW_%zu/r| = %.4g ms vs "
                  "hierarchical bound %.4g ms%s (%s pair%s): %s%s\n",
                  worst_f, worst_m, 1e3 * worst_gap, 1e3 * worst_bound,
                  mig_slack > 0.0 ? " (incl. migration slack)" : "",
                  worst_cross ? "cross-shard" : "same-shard",
                  excluded_pairs > 0 ? ", failed-shard pairs excluded" : "",
                  worst_ratio <= 1.0 ? "OK" : "VIOLATED",
                  gate ? "" : " (informational: faults injected)");
      fairness_ok = !gate || worst_ratio <= 1.0;
    } else {
      std::printf("fairness  no gateable window (every pair touched the "
                  "failed shard, or every sampled window straddles the "
                  "migration epoch)\n");
    }
  }

  bool ok = fairness_ok && conserve_ok;
  if (engine->stalled()) {
    std::printf("WATCHDOG: PERMANENT STALL — %llu stall(s), %llu recovered; "
                "restart budget %u exhausted wedged at stage %s\n",
                static_cast<unsigned long long>(st.stalls),
                static_cast<unsigned long long>(st.recoveries),
                args.restart_budget, rt::to_string(st.last_stall_stage));
    ok = false;
  } else if (st.stalls > 0) {
    std::printf("WATCHDOG: recovered — %llu stall(s) detected (last stage "
                "%s), %llu recovery(ies); service resumed and the run "
                "completed\n",
                static_cast<unsigned long long>(st.stalls),
                rt::to_string(st.last_stall_stage),
                static_cast<unsigned long long>(st.recoveries));
  }
  if (!args.metrics_path.empty()) {
    // The root stats thread owns this gauge while running; restate it here
    // so a dump without --stats-interval still carries the worst-of state.
    telemetry.set_gauge(obs::telemetry::GaugeId::kOverloadWorst,
                        static_cast<double>(engine->overload_state()));
    obs::telemetry::TelemetrySnapshot tsnap = telemetry.snapshot();
    obs::MetricsRegistry registry;
    obs::telemetry::bridge_to_registry(tsnap, registry);
    std::ofstream out(args.metrics_path);
    out << registry.json() << "\n";
  }
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sfq;
  const Args args = parse(argc, argv);
  // Graceful drain on SIGINT/SIGTERM: the serving loops poll g_stop_signal,
  // stop the producers at a packet boundary, drain-stop the engine and still
  // run the full summary + conservation gate (exit non-zero on violation).
  std::signal(SIGINT, on_stop_signal);
  std::signal(SIGTERM, on_stop_signal);
  if (args.shards > 1) return run_sharded(args);

  SchedulerOptions sched_opts;
  sched_opts.assumed_capacity = args.rate;
  // SFQ-W quantum: explicit, else one max-size packet time on the link (the
  // factory ignores it for other disciplines).
  sched_opts.sfq_wheel_quantum =
      args.quantum > 0.0 ? args.quantum : args.packet_bits / args.rate;
  std::unique_ptr<Scheduler> sched;
  try {
    sched = make_scheduler(args.sched, sched_opts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }

  std::vector<std::string> flow_names;
  for (std::size_t f = 0; f < args.flows; ++f) {
    flow_names.push_back("flow" + std::to_string(f));
    sched->add_flow(args.weights[f], args.packet_bits, flow_names.back());
  }

  rt::EngineOptions eng_opts;
  eng_opts.producers = args.producers;
  eng_opts.ring_capacity = args.ring;
  eng_opts.buffer_limit = args.buffer;
  eng_opts.overload_policy = args.policy == "pushout"
                                 ? net::OverloadPolicy::kPushout
                                 : net::OverloadPolicy::kTailDrop;
  eng_opts.stall_timeout = args.stall_timeout;
  eng_opts.restart_budget = args.restart_budget;
  eng_opts.admission_control = args.shed;
  eng_opts.fault_plan = args.fault_plan;
  eng_opts.stats_interval = args.stats_interval;
  eng_opts.stats_port = args.stats_port;
  eng_opts.stats_console = args.stats_interval > 0.0;
  rt::RtEngine engine(*sched, std::make_unique<net::ConstantRate>(args.rate),
                      eng_opts);

  // The telemetry plane is always attached: counters cost a relaxed
  // load+store each and the latency summary below wants the histograms.
  obs::telemetry::Telemetry telemetry;
  engine.set_telemetry(&telemetry);

  // Observability: every sink that might be read while the dispatcher runs
  // goes through the thread-safe rt::SyncSink adapter.
  obs::Tracer tracer;
  obs::MetricsRegistry registry;
  std::unique_ptr<obs::JsonlSink> jsonl;
  std::unique_ptr<obs::MetricsSink> metrics_sink;
  std::unique_ptr<obs::InvariantChecker> checker;
  std::vector<std::unique_ptr<rt::SyncSink>> sync_sinks;
  auto attach = [&](obs::TraceSink& sink) {
    sync_sinks.push_back(std::make_unique<rt::SyncSink>(sink));
    tracer.add_sink(sync_sinks.back().get());
  };
  if (!args.trace_path.empty()) {
    jsonl = std::make_unique<obs::JsonlSink>(args.trace_path);
    jsonl->meta("scheduler", sched->name());
    jsonl->meta("mode", "realtime");
    attach(*jsonl);
  }
  if (!args.metrics_path.empty()) {
    metrics_sink = std::make_unique<obs::MetricsSink>(registry, flow_names);
    attach(*metrics_sink);
  }
  if (args.check) {
    obs::InvariantChecker::Options copts =
        obs::InvariantChecker::for_scheduler(args.sched);
    copts.order_slack = sched->quantization_window();
    checker = std::make_unique<obs::InvariantChecker>(copts);
    attach(*checker);
  }
  if (tracer.sink_count() > 0) engine.set_tracer(&tracer);

  // Round-robin flows over producer threads.
  std::vector<std::vector<rt::FlowLoad>> producer_flows(args.producers);
  for (std::size_t f = 0; f < args.flows; ++f) {
    rt::FlowLoad l;
    l.flow = static_cast<FlowId>(f);
    l.model = model_of(args.model);
    l.rate = args.load * args.weights[f];
    l.packet_bits = args.packet_bits;
    l.seed = 1 + f;
    producer_flows[f % args.producers].push_back(l);
  }

  rt::LoadGenOptions lg_opts;
  lg_opts.paced = !args.unpaced;
  lg_opts.block_on_full = args.unpaced;  // blast mode accounts every packet

  std::printf("sfq_serve: %s on a %.3g bit/s link, %zu flows, %zu producers, "
              "%s %s load x%.2f, %.2fs\n",
              sched->name().c_str(), args.rate, args.flows, args.producers,
              args.unpaced ? "unpaced" : "paced", args.model.c_str(),
              args.load, args.duration);

  engine.start();
  if (args.stats_port >= 0)
    std::printf("stats endpoint: http://127.0.0.1:%u/metrics (and "
                "/metrics.json)\n",
                engine.stats_endpoint_port());
  rt::LoadGen load_gen(engine, std::move(producer_flows), lg_opts);

  // Coarse service snapshots for the wall-clock fairness measurement: only
  // windows with every flow continuously backlogged qualify for Theorem 1,
  // so keep the middle half of the run (steady state under load > 1).
  std::vector<std::vector<double>> snapshots;
  const Time wall_start = engine.now();
  load_gen.start(args.duration);
  if (!args.unpaced) {
    const Time snap_every = std::max(args.duration / 20.0, 0.05);
    Time next_snap = wall_start + snap_every;
    while (engine.now() - wall_start < args.duration) {
      if (engine.stalled()) break;  // watchdog stopped the dispatcher
      if (g_stop_signal) break;     // graceful drain requested
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      if (engine.now() >= next_snap) {
        snapshots.push_back(engine.service_snapshot());
        next_snap += snap_every;
      }
    }
  }
  if (g_stop_signal) {
    std::printf("\nsignal %d: graceful drain — stopping producers, flushing "
                "the backlog, running the conservation self-check\n",
                static_cast<int>(g_stop_signal));
    load_gen.request_stop();
  }
  load_gen.join();
  engine.stop(rt::StopMode::kDrain);
  const Time wall_end = engine.now();
  tracer.finish();

  const rt::EngineStats st = engine.stats();
  const double elapsed = wall_end - wall_start;

  std::printf("\n%-8s %14s %12s %14s %12s\n", "flow", "weight(b/s)",
              "tx_packets", "tx_bits", "goodput(b/s)");
  for (std::size_t f = 0; f < args.flows; ++f) {
    const double bits = engine.flow_tx_bits(static_cast<FlowId>(f));
    std::printf("%-8s %14.4g %12.0f %14.0f %12.4g\n", flow_names[f].c_str(),
                args.weights[f], bits / args.packet_bits, bits,
                bits / elapsed);
  }

  std::printf("\nproduced %llu  ingress_drops %llu  accepted %llu  "
              "transmitted %llu  backlog %llu  abandoned %llu\n",
              static_cast<unsigned long long>(load_gen.produced_total()),
              static_cast<unsigned long long>(st.ingress_drops),
              static_cast<unsigned long long>(st.accepted),
              static_cast<unsigned long long>(st.transmitted),
              static_cast<unsigned long long>(st.backlog),
              static_cast<unsigned long long>(st.abandoned));
  std::printf("drops by cause:");
  for (std::size_t c = 0; c < obs::kDropCauseCount; ++c)
    if (st.drops[c] != 0)
      std::printf(" %s=%llu",
                  obs::to_string(static_cast<obs::DropCause>(c)),
                  static_cast<unsigned long long>(st.drops[c]));
  if (st.dropped() == 0) std::printf(" none");
  std::printf("\nthroughput %.3g packets/s (%.3g bit/s), wall %.3fs, "
              "max pacing lag %.3g ms\n",
              st.transmitted / elapsed, st.tx_bits / elapsed, elapsed,
              1e3 * st.max_service_lag);

  // Ledger conservation self-check (docs/ROBUSTNESS.md): the three exact
  // identities the engine guarantees once stop() has returned. LoadGen is
  // the only producer here, so its attempt count is the engine's offer
  // total. Any mismatch is a bug, never noise — fail the run.
  bool conserve_ok = true;
  {
    const auto d = [&](obs::DropCause c) {
      return st.drops[static_cast<std::size_t>(c)];
    };
    const uint64_t pre = d(obs::DropCause::kUnknownFlow) +
                         d(obs::DropCause::kBufferLimit) +
                         d(obs::DropCause::kShed);
    const uint64_t post =
        d(obs::DropCause::kPushout) + d(obs::DropCause::kFlowRemoved);
    struct Identity {
      const char* name;
      uint64_t lhs, rhs;
    };
    const Identity ids[] = {
        {"offers == ingress_pushed + ingress_drops", load_gen.produced_total(),
         st.ingress_pushed + st.ingress_drops},
        {"ingress_pushed == accepted + pre_enqueue_drops + abandoned",
         st.ingress_pushed, st.accepted + pre + st.abandoned},
        {"accepted == transmitted + backlog + post_enqueue_drops", st.accepted,
         st.transmitted + st.backlog + post},
    };
    for (const Identity& id : ids)
      if (id.lhs != id.rhs) {
        std::printf("conservation VIOLATED: %s (%llu != %llu)\n", id.name,
                    static_cast<unsigned long long>(id.lhs),
                    static_cast<unsigned long long>(id.rhs));
        conserve_ok = false;
      }
    if (conserve_ok)
      std::printf("conservation OK: every offered packet is accounted "
                  "(transmitted, backlogged, dropped by cause, or "
                  "abandoned)\n");
  }

  const obs::telemetry::TelemetrySnapshot tsnap = telemetry.snapshot();
  {
    const obs::telemetry::HistogramSnapshot delay =
        tsnap.hist_total(obs::telemetry::HistId::kQueueDelay);
    const obs::telemetry::HistogramSnapshot dwell =
        tsnap.hist_total(obs::telemetry::HistId::kIngressDwell);
    if (delay.count > 0)
      std::printf("latency    enqueue->tx p50 %.3f ms, p99 %.3f ms, max "
                  "%.3f ms; ingress dwell p99 %.3f ms\n",
                  1e3 * delay.quantile_s(0.50), 1e3 * delay.quantile_s(0.99),
                  1e3 * delay.max_s(), 1e3 * dwell.quantile_s(0.99));
  }

  // Wall-clock fairness: worst normalized service gap over snapshot windows
  // in the steady middle of the run vs the Theorem-1 bound (+ one pacing
  // quantum per flow for in-flight attribution at window edges).
  bool fairness_ok = true;
  if (snapshots.size() >= 4 && args.flows >= 2) {
    const std::size_t lo = snapshots.size() / 4;
    const std::size_t hi = snapshots.size() - snapshots.size() / 4;
    double worst = 0.0;
    std::size_t worst_f = 0, worst_m = 1;
    for (std::size_t f = 0; f < args.flows; ++f) {
      for (std::size_t m = f + 1; m < args.flows; ++m) {
        for (std::size_t i = lo; i < hi; ++i) {
          for (std::size_t j = i + 1; j < hi; ++j) {
            const double df = snapshots[j][f] - snapshots[i][f];
            const double dm = snapshots[j][m] - snapshots[i][m];
            const double gap =
                std::fabs(df / args.weights[f] - dm / args.weights[m]);
            if (gap > worst) {
              worst = gap;
              worst_f = f;
              worst_m = m;
            }
          }
        }
      }
    }
    const double bound = stats::sfq_fairness_bound(
        args.packet_bits, args.weights[worst_f], args.packet_bits,
        args.weights[worst_m]);
    const double slack = bound;  // one in-flight quantum per flow
    // Injected faults legitimately distort snapshot timing (a paused
    // dispatcher or a frozen clock breaks the continuously-backlogged
    // premise), so with a fault plan the verdict is informational only.
    const bool gate = args.fault_plan.empty();
    std::printf("fairness  worst |dW_%zu/r - dW_%zu/r| = %.4g ms, "
                "Theorem-1 bound %.4g ms (+%.4g slack): %s%s\n",
                worst_f, worst_m, 1e3 * worst, 1e3 * bound, 1e3 * slack,
                worst <= bound + slack ? "OK" : "VIOLATED",
                gate ? "" : " (informational: faults injected)");
    fairness_ok = !gate || worst <= bound + slack;
  }

  if (!args.metrics_path.empty()) {
    // Fold the telemetry plane into the registry so the dump carries both
    // catalogues (trace-derived flow metrics + hot-path engine telemetry).
    obs::telemetry::bridge_to_registry(tsnap, registry);
    std::ofstream out(args.metrics_path);
    out << registry.json() << "\n";
  }

  bool ok = fairness_ok && conserve_ok;
  if (engine.stalled()) {
    std::printf("WATCHDOG: PERMANENT STALL — %llu stall(s), %llu "
                "recovered; restart budget %u exhausted wedged at stage "
                "%s; engine stopped cleanly (backlog %llu left visible)\n",
                static_cast<unsigned long long>(st.stalls),
                static_cast<unsigned long long>(st.recoveries),
                args.restart_budget, rt::to_string(st.last_stall_stage),
                static_cast<unsigned long long>(st.backlog));
    ok = false;
  } else if (st.stalls > 0) {
    std::printf("WATCHDOG: recovered — %llu stall(s) detected (last stage "
                "%s), %llu recovery(ies); service resumed and the run "
                "completed\n",
                static_cast<unsigned long long>(st.stalls),
                rt::to_string(st.last_stall_stage),
                static_cast<unsigned long long>(st.recoveries));
  }
  if (checker) {
    std::printf("invariants: %s\n", checker->report().c_str());
    ok = ok && checker->ok();
  }
  return ok ? 0 : 1;
}
