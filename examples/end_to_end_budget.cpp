// Example: computing and validating an end-to-end delay budget (paper §2.4,
// Appendix A.5).
//
// A voice-like flow, shaped by a (sigma, rho) leaky bucket, crosses three SFQ
// switches with propagation delays. The example derives the Corollary-1
// deterministic bound from per-hop parameters, then simulates the path under
// heavy cross traffic and compares the measured worst delay to the budget —
// the admission-control workflow a deployment would use.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "core/sfq_scheduler.h"
#include "net/network.h"
#include "net/rate_profile.h"
#include "qos/end_to_end.h"
#include "sim/simulator.h"
#include "traffic/leaky_bucket.h"
#include "traffic/sources.h"

using namespace sfq;

int main() {
  const double kC = megabits_per_sec(45);
  const double kVoicePkt = bytes(160);   // 20 ms of G.711
  const double kVoiceRate = kilobits_per_sec(64);
  const double kSigma = 4.0 * kVoicePkt; // small burst allowance
  const double kCrossPkt = bytes(1500);
  const Time kProp = 0.003;              // 3 ms per link
  const int kHops = 3;

  // --- 1. The analytic budget -------------------------------------------
  // Each hop serves the voice flow plus two cross flows of 1500 B packets.
  const double sum_other = 2.0 * kCrossPkt;
  std::vector<qos::HopGuarantee> hops;
  for (int i = 0; i < kHops; ++i)
    hops.push_back(qos::sfq_fc_hop({kC, 0.0}, sum_other, kVoicePkt,
                                   i + 1 < kHops ? kProp : 0.0));
  const auto budget = qos::compose(hops);
  const Time bound =
      qos::leaky_bucket_e2e_delay_bound(budget, kSigma, kVoiceRate, kVoicePkt);
  std::printf("analytic budget: theta = %.3f ms, leaky-bucket e2e bound = "
              "%.3f ms\n",
              to_milliseconds(budget.theta), to_milliseconds(bound));

  // --- 2. Simulate the path under saturating cross traffic ----------------
  sim::Simulator sim;
  std::vector<net::TandemNetwork::Hop> net_hops;
  for (int i = 0; i < kHops; ++i) {
    net::TandemNetwork::Hop h;
    h.scheduler = std::make_unique<SfqScheduler>();
    h.profile = std::make_unique<net::ConstantRate>(kC);
    h.propagation_to_next = i + 1 < kHops ? kProp : 0.0;
    net_hops.push_back(std::move(h));
  }
  net::TandemNetwork net(sim, std::move(net_hops));
  FlowId voice = net.add_flow(kVoiceRate, kVoicePkt, "voice");
  FlowId x1 = net.add_flow((kC - kVoiceRate) / 2.0, kCrossPkt, "cross1");
  FlowId x2 = net.add_flow((kC - kVoiceRate) / 2.0, kCrossPkt, "cross2");

  Time worst = 0.0;
  uint64_t delivered = 0;
  net.set_delivery([&](const Packet& p, Time t) {
    if (p.flow == voice) {
      worst = std::max(worst, t - p.source_departure);
      ++delivered;
    }
  });

  traffic::LeakyBucketShaper shaper(
      sim, kSigma, kVoiceRate, [&](Packet p) { net.inject(std::move(p)); });
  traffic::CbrSource voice_src(
      sim, voice,
      [&](Packet p) {
        p.source_departure = sim.now();
        shaper.inject(std::move(p));
      },
      kVoiceRate, kVoicePkt);
  voice_src.run(0.0, 30.0);

  auto emit = [&](Packet p) { net.inject(std::move(p)); };
  traffic::CbrSource c1(sim, x1, emit, kC, kCrossPkt);   // saturating
  traffic::OnOffSource c2(sim, x2, emit, kC, kCrossPkt, 0.05, 0.02, 17);
  c1.run(0.0, 30.0);
  c2.run(0.0, 30.0);

  sim.run_until(30.0);
  sim.run();

  std::printf("simulated: %llu voice packets, worst e2e delay %.3f ms\n",
              static_cast<unsigned long long>(delivered),
              to_milliseconds(worst));
  const bool ok = worst <= bound + 1e-9 && delivered > 1000;
  std::printf("%s\n", ok ? "measured delay within the admission budget"
                         : "budget EXCEEDED - the math or the code is wrong");
  return ok ? 0 : 1;
}
