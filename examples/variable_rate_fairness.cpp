// Example: why SFQ instead of WFQ on links whose capacity fluctuates.
//
// A bursty high-priority stream (think: routing updates, or a strict-priority
// video class) periodically steals the link, so the fair scheduler underneath
// sees a variable-rate server. A long-lived flow and a late-joining flow then
// compete. Under WFQ the late joiner is locked out while the early flow
// drains its stale-tagged backlog; under SFQ both immediately share the
// residual bandwidth.
//
// This is the Example 2 / Figure 1 phenomenon expressed through the public
// API; run it and compare the printed shares.
#include <cstdio>
#include <memory>

#include "core/sfq_scheduler.h"
#include "net/priority_server.h"
#include "net/rate_profile.h"
#include "sched/wfq_scheduler.h"
#include "sim/simulator.h"
#include "stats/service_recorder.h"
#include "traffic/sources.h"

using namespace sfq;

namespace {

struct Shares {
  double early;
  double late;
};

Shares run(Scheduler& sched) {
  const double kLink = megabits_per_sec(10);
  const double kPkt = bytes(500);
  sim::Simulator sim;

  FlowId early = sched.add_flow(1.0, kPkt, "early");
  FlowId late = sched.add_flow(1.0, kPkt, "late");

  net::PriorityServer server(sim, sched,
                             std::make_unique<net::ConstantRate>(kLink));
  stats::ServiceRecorder rec;
  server.set_low_recorder(&rec);

  // High-priority interference: on-off bursts averaging ~half the link.
  traffic::OnOffSource hp(
      sim, 0, [&](Packet p) { server.inject_high(std::move(p)); },
      /*peak=*/kLink, kPkt, /*mean_on=*/0.05, /*mean_off=*/0.05, /*seed=*/3);
  hp.run(0.0, 10.0);

  auto emit = [&](Packet p) { server.inject_low(std::move(p)); };
  traffic::CbrSource s_early(sim, early, emit, kLink, kPkt);
  traffic::CbrSource s_late(sim, late, emit, kLink, kPkt);
  s_early.run(0.0, 10.0);
  s_late.run(5.0, 10.0);  // joins halfway

  sim.run_until(10.0);
  rec.finish(10.0);
  // Compare service after the late flow joined.
  return Shares{rec.served_bits(early, 5.0, 10.0) / 1e6,
                rec.served_bits(late, 5.0, 10.0) / 1e6};
}

}  // namespace

int main() {
  WfqScheduler wfq(megabits_per_sec(10));  // assumes the full link rate
  SfqScheduler sfq_sched;

  const Shares w = run(wfq);
  const Shares s = run(sfq_sched);

  std::printf("service received during [5s,10s], equal weights (Mb):\n");
  std::printf("          early   late\n");
  std::printf("  WFQ     %5.2f   %5.2f   <- late flow locked out\n", w.early,
              w.late);
  std::printf("  SFQ     %5.2f   %5.2f   <- residual split evenly\n", s.early,
              s.late);

  const bool ok = s.late > 0.7 * s.early && w.late < 0.7 * w.early;
  std::printf("\n%s\n", ok ? "SFQ shares the variable-rate link fairly."
                           : "unexpected result - investigate");
  return ok ? 0 : 1;
}
