// Example: trace-driven scheduler comparison (a miniature `tc qdisc` lab).
//
//   trace_replay [trace.csv ...]
//
// Each CSV trace (lines of `time_seconds,length_bytes`, see
// traffic/trace_io.h) becomes one flow; with no arguments, three synthetic
// traces are generated (smooth voice, bursty video, greedy bulk) and written
// to per-run temp files so the tool demonstrates the round trip. All flows
// share one 10 Mb/s link; the tool replays the same input under SFQ, SCFQ,
// WFQ, DRR and FIFO and prints per-flow throughput, mean/worst delay and the
// pairwise empirical fairness, plus a transmissions CSV per scheduler for
// offline analysis.
#include <cstdio>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "core/scheduler.h"
#include "core/sfq_scheduler.h"
#include "net/rate_profile.h"
#include "net/scheduled_server.h"
#include "sched/drr_scheduler.h"
#include "sched/fifo_scheduler.h"
#include "sched/scfq_scheduler.h"
#include "sched/wfq_scheduler.h"
#include "sim/simulator.h"
#include "stats/delay_stats.h"
#include "stats/fairness.h"
#include "stats/service_recorder.h"
#include "traffic/trace_io.h"

using namespace sfq;

namespace {

constexpr double kLink = 10e6;

std::vector<std::vector<traffic::TraceSource::Item>> synthetic_traces() {
  std::vector<std::vector<traffic::TraceSource::Item>> traces(3);
  std::mt19937_64 rng(2026);
  // Voice: 64 Kb/s CBR, 160-byte packets.
  for (double t = 0.0; t < 5.0; t += bytes(160) / 64e3)
    traces[0].push_back({t, bytes(160)});
  // Video: 30 fps bursts of 2-14 x 1000-byte packets.
  for (double t = 0.0; t < 5.0; t += 1.0 / 30.0) {
    const int n = 2 + static_cast<int>(rng() % 13);
    for (int i = 0; i < n; ++i) traces[1].push_back({t, bytes(1000)});
  }
  // Bulk: 12 Mb/s of 1500-byte packets (oversubscribes the link).
  for (double t = 0.0; t < 5.0; t += bytes(1500) * 1.0 / 12e6)
    traces[2].push_back({t, bytes(1500)});
  return traces;
}

std::unique_ptr<Scheduler> make(const std::string& n) {
  if (n == "SFQ") return std::make_unique<SfqScheduler>();
  if (n == "SCFQ") return std::make_unique<ScfqScheduler>();
  if (n == "WFQ") return std::make_unique<WfqScheduler>(kLink);
  if (n == "DRR") return std::make_unique<DrrScheduler>(12000.0);
  return std::make_unique<FifoScheduler>();
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::vector<traffic::TraceSource::Item>> traces;
  std::vector<std::string> labels;
  if (argc > 1) {
    for (int i = 1; i < argc; ++i) {
      traces.push_back(traffic::load_trace_csv(argv[i]));
      labels.push_back(argv[i]);
    }
  } else {
    traces = synthetic_traces();
    labels = {"voice(synth)", "video(synth)", "bulk(synth)"};
    // Demonstrate the writer side of the round trip.
    for (std::size_t i = 0; i < traces.size(); ++i) {
      const std::string out = "/tmp/sfq_trace_" + std::to_string(i) + ".csv";
      traffic::save_trace_csv(traces[i], out);
    }
    std::printf("synthetic traces written to /tmp/sfq_trace_{0,1,2}.csv\n\n");
  }

  Time horizon = 0.0;
  double total_bits = 0.0;
  for (const auto& tr : traces)
    for (const auto& it : tr) {
      horizon = std::max(horizon, it.t);
      total_bits += it.bits;
    }
  std::printf("%zu flows, %.2f Mb offered over %.2f s on a %.0f Mb/s link\n\n",
              traces.size(), total_bits / 1e6, horizon, kLink / 1e6);

  for (const std::string name : {"SFQ", "SCFQ", "WFQ", "DRR", "FIFO"}) {
    sim::Simulator sim;
    auto sched = make(name);
    std::vector<FlowId> ids;
    for (std::size_t i = 0; i < traces.size(); ++i)
      ids.push_back(sched->add_flow(kLink / traces.size(), bytes(1500)));

    net::ScheduledServer link(sim, *sched,
                              std::make_unique<net::ConstantRate>(kLink));
    stats::ServiceRecorder rec;
    stats::DelayStats delay;
    link.set_recorder(&rec);
    link.set_departure(
        [&](const Packet& p, Time t) { delay.add(p.flow, t - p.arrival); });

    std::vector<std::unique_ptr<traffic::TraceSource>> sources;
    for (std::size_t i = 0; i < traces.size(); ++i) {
      sources.push_back(std::make_unique<traffic::TraceSource>(
          sim, ids[i], [&](Packet p) { link.inject(std::move(p)); },
          traces[i]));
      sources.back()->run(0.0, horizon + 1.0);
    }
    sim.run_until(horizon);
    rec.finish(sim.now());

    std::printf("--- %s\n", name.c_str());
    for (std::size_t i = 0; i < traces.size(); ++i) {
      std::printf("  %-14s %7.3f Mb/s   mean %8.3f ms   worst %8.3f ms\n",
                  labels[i].c_str(),
                  rec.served_bits(ids[i], 0.0, horizon) / horizon / 1e6,
                  to_milliseconds(delay.mean(ids[i])),
                  to_milliseconds(delay.max(ids[i])));
    }
    if (traces.size() >= 2) {
      const double h = stats::empirical_fairness(
          rec, ids[0], kLink / traces.size(), ids.back(),
          kLink / traces.size());
      std::printf("  pairwise H(first,last) = %.6f s\n", h);
    }
    const std::string out = "/tmp/sfq_replay_" + name + ".csv";
    traffic::save_transmissions_csv(rec, out);
    std::printf("  transmissions -> %s\n\n", out.c_str());
  }
  return 0;
}
