# Empty dependencies file for bench_table1_fairness.
# This may be replaced when dependencies are built.
