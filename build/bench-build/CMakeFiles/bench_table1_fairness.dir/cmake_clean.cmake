file(REMOVE_RECURSE
  "../bench/bench_table1_fairness"
  "../bench/bench_table1_fairness.pdb"
  "CMakeFiles/bench_table1_fairness.dir/bench_table1_fairness.cc.o"
  "CMakeFiles/bench_table1_fairness.dir/bench_table1_fairness.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
