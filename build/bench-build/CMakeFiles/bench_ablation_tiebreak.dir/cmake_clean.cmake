file(REMOVE_RECURSE
  "../bench/bench_ablation_tiebreak"
  "../bench/bench_ablation_tiebreak.pdb"
  "CMakeFiles/bench_ablation_tiebreak.dir/bench_ablation_tiebreak.cc.o"
  "CMakeFiles/bench_ablation_tiebreak.dir/bench_ablation_tiebreak.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_tiebreak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
