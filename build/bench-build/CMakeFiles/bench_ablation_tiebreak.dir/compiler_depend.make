# Empty compiler generated dependencies file for bench_ablation_tiebreak.
# This may be replaced when dependencies are built.
