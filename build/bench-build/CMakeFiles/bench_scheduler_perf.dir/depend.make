# Empty dependencies file for bench_scheduler_perf.
# This may be replaced when dependencies are built.
