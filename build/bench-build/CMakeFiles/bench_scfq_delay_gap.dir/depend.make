# Empty dependencies file for bench_scfq_delay_gap.
# This may be replaced when dependencies are built.
