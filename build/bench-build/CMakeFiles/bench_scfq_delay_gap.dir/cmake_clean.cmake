file(REMOVE_RECURSE
  "../bench/bench_scfq_delay_gap"
  "../bench/bench_scfq_delay_gap.pdb"
  "CMakeFiles/bench_scfq_delay_gap.dir/bench_scfq_delay_gap.cc.o"
  "CMakeFiles/bench_scfq_delay_gap.dir/bench_scfq_delay_gap.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scfq_delay_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
