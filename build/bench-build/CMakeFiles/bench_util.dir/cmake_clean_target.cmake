file(REMOVE_RECURSE
  "../lib/libbench_util.a"
)
