file(REMOVE_RECURSE
  "../lib/libbench_util.a"
  "../lib/libbench_util.pdb"
  "CMakeFiles/bench_util.dir/bench_util.cc.o"
  "CMakeFiles/bench_util.dir/bench_util.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
