file(REMOVE_RECURSE
  "../bench/bench_fig3_linkshare"
  "../bench/bench_fig3_linkshare.pdb"
  "CMakeFiles/bench_fig3_linkshare.dir/bench_fig3_linkshare.cc.o"
  "CMakeFiles/bench_fig3_linkshare.dir/bench_fig3_linkshare.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_linkshare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
