# Empty dependencies file for bench_fig3_linkshare.
# This may be replaced when dependencies are built.
