file(REMOVE_RECURSE
  "../bench/bench_sim_throughput"
  "../bench/bench_sim_throughput.pdb"
  "CMakeFiles/bench_sim_throughput.dir/bench_sim_throughput.cc.o"
  "CMakeFiles/bench_sim_throughput.dir/bench_sim_throughput.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sim_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
