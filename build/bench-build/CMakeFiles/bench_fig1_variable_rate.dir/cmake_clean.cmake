file(REMOVE_RECURSE
  "../bench/bench_fig1_variable_rate"
  "../bench/bench_fig1_variable_rate.pdb"
  "CMakeFiles/bench_fig1_variable_rate.dir/bench_fig1_variable_rate.cc.o"
  "CMakeFiles/bench_fig1_variable_rate.dir/bench_fig1_variable_rate.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_variable_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
