# Empty compiler generated dependencies file for bench_fig1_variable_rate.
# This may be replaced when dependencies are built.
