# Empty compiler generated dependencies file for bench_delay_shifting.
# This may be replaced when dependencies are built.
