file(REMOVE_RECURSE
  "../bench/bench_delay_shifting"
  "../bench/bench_delay_shifting.pdb"
  "CMakeFiles/bench_delay_shifting.dir/bench_delay_shifting.cc.o"
  "CMakeFiles/bench_delay_shifting.dir/bench_delay_shifting.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_delay_shifting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
