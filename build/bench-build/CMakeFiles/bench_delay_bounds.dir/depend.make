# Empty dependencies file for bench_delay_bounds.
# This may be replaced when dependencies are built.
