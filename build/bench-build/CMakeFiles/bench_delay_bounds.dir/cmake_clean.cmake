file(REMOVE_RECURSE
  "../bench/bench_delay_bounds"
  "../bench/bench_delay_bounds.pdb"
  "CMakeFiles/bench_delay_bounds.dir/bench_delay_bounds.cc.o"
  "CMakeFiles/bench_delay_bounds.dir/bench_delay_bounds.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_delay_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
