# Empty dependencies file for bench_fair_airport.
# This may be replaced when dependencies are built.
