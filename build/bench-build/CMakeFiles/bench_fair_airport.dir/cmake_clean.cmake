file(REMOVE_RECURSE
  "../bench/bench_fair_airport"
  "../bench/bench_fair_airport.pdb"
  "CMakeFiles/bench_fair_airport.dir/bench_fair_airport.cc.o"
  "CMakeFiles/bench_fair_airport.dir/bench_fair_airport.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fair_airport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
