# Empty dependencies file for bench_e2e_delay.
# This may be replaced when dependencies are built.
