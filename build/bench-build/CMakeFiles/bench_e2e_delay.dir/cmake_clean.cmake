file(REMOVE_RECURSE
  "../bench/bench_e2e_delay"
  "../bench/bench_e2e_delay.pdb"
  "CMakeFiles/bench_e2e_delay.dir/bench_e2e_delay.cc.o"
  "CMakeFiles/bench_e2e_delay.dir/bench_e2e_delay.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2e_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
