file(REMOVE_RECURSE
  "../bench/bench_delay_throughput_separation"
  "../bench/bench_delay_throughput_separation.pdb"
  "CMakeFiles/bench_delay_throughput_separation.dir/bench_delay_throughput_separation.cc.o"
  "CMakeFiles/bench_delay_throughput_separation.dir/bench_delay_throughput_separation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_delay_throughput_separation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
