# Empty compiler generated dependencies file for bench_delay_throughput_separation.
# This may be replaced when dependencies are built.
