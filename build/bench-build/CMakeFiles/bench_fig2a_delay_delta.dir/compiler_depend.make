# Empty compiler generated dependencies file for bench_fig2a_delay_delta.
# This may be replaced when dependencies are built.
