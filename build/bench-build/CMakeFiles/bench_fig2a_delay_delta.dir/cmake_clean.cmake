file(REMOVE_RECURSE
  "../bench/bench_fig2a_delay_delta"
  "../bench/bench_fig2a_delay_delta.pdb"
  "CMakeFiles/bench_fig2a_delay_delta.dir/bench_fig2a_delay_delta.cc.o"
  "CMakeFiles/bench_fig2a_delay_delta.dir/bench_fig2a_delay_delta.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2a_delay_delta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
