# Empty dependencies file for bench_throughput_guarantee.
# This may be replaced when dependencies are built.
