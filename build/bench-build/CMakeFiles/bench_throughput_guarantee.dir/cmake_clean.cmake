file(REMOVE_RECURSE
  "../bench/bench_throughput_guarantee"
  "../bench/bench_throughput_guarantee.pdb"
  "CMakeFiles/bench_throughput_guarantee.dir/bench_throughput_guarantee.cc.o"
  "CMakeFiles/bench_throughput_guarantee.dir/bench_throughput_guarantee.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_throughput_guarantee.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
