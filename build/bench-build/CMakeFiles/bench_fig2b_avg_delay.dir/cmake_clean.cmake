file(REMOVE_RECURSE
  "../bench/bench_fig2b_avg_delay"
  "../bench/bench_fig2b_avg_delay.pdb"
  "CMakeFiles/bench_fig2b_avg_delay.dir/bench_fig2b_avg_delay.cc.o"
  "CMakeFiles/bench_fig2b_avg_delay.dir/bench_fig2b_avg_delay.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2b_avg_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
