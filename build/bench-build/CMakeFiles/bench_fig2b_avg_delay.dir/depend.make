# Empty dependencies file for bench_fig2b_avg_delay.
# This may be replaced when dependencies are built.
