
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/config/experiment.cc" "src/CMakeFiles/sfq.dir/config/experiment.cc.o" "gcc" "src/CMakeFiles/sfq.dir/config/experiment.cc.o.d"
  "/root/repo/src/core/flow_table.cc" "src/CMakeFiles/sfq.dir/core/flow_table.cc.o" "gcc" "src/CMakeFiles/sfq.dir/core/flow_table.cc.o.d"
  "/root/repo/src/core/scheduler_factory.cc" "src/CMakeFiles/sfq.dir/core/scheduler_factory.cc.o" "gcc" "src/CMakeFiles/sfq.dir/core/scheduler_factory.cc.o.d"
  "/root/repo/src/core/sfq_scheduler.cc" "src/CMakeFiles/sfq.dir/core/sfq_scheduler.cc.o" "gcc" "src/CMakeFiles/sfq.dir/core/sfq_scheduler.cc.o.d"
  "/root/repo/src/hier/hsfq_scheduler.cc" "src/CMakeFiles/sfq.dir/hier/hsfq_scheduler.cc.o" "gcc" "src/CMakeFiles/sfq.dir/hier/hsfq_scheduler.cc.o.d"
  "/root/repo/src/hier/link_sharing.cc" "src/CMakeFiles/sfq.dir/hier/link_sharing.cc.o" "gcc" "src/CMakeFiles/sfq.dir/hier/link_sharing.cc.o.d"
  "/root/repo/src/net/fragmentation.cc" "src/CMakeFiles/sfq.dir/net/fragmentation.cc.o" "gcc" "src/CMakeFiles/sfq.dir/net/fragmentation.cc.o.d"
  "/root/repo/src/net/mesh.cc" "src/CMakeFiles/sfq.dir/net/mesh.cc.o" "gcc" "src/CMakeFiles/sfq.dir/net/mesh.cc.o.d"
  "/root/repo/src/net/multi_priority_server.cc" "src/CMakeFiles/sfq.dir/net/multi_priority_server.cc.o" "gcc" "src/CMakeFiles/sfq.dir/net/multi_priority_server.cc.o.d"
  "/root/repo/src/net/network.cc" "src/CMakeFiles/sfq.dir/net/network.cc.o" "gcc" "src/CMakeFiles/sfq.dir/net/network.cc.o.d"
  "/root/repo/src/net/priority_server.cc" "src/CMakeFiles/sfq.dir/net/priority_server.cc.o" "gcc" "src/CMakeFiles/sfq.dir/net/priority_server.cc.o.d"
  "/root/repo/src/net/rate_profile.cc" "src/CMakeFiles/sfq.dir/net/rate_profile.cc.o" "gcc" "src/CMakeFiles/sfq.dir/net/rate_profile.cc.o.d"
  "/root/repo/src/net/scheduled_server.cc" "src/CMakeFiles/sfq.dir/net/scheduled_server.cc.o" "gcc" "src/CMakeFiles/sfq.dir/net/scheduled_server.cc.o.d"
  "/root/repo/src/qos/admission.cc" "src/CMakeFiles/sfq.dir/qos/admission.cc.o" "gcc" "src/CMakeFiles/sfq.dir/qos/admission.cc.o.d"
  "/root/repo/src/qos/bounds.cc" "src/CMakeFiles/sfq.dir/qos/bounds.cc.o" "gcc" "src/CMakeFiles/sfq.dir/qos/bounds.cc.o.d"
  "/root/repo/src/qos/ebf_estimator.cc" "src/CMakeFiles/sfq.dir/qos/ebf_estimator.cc.o" "gcc" "src/CMakeFiles/sfq.dir/qos/ebf_estimator.cc.o.d"
  "/root/repo/src/qos/end_to_end.cc" "src/CMakeFiles/sfq.dir/qos/end_to_end.cc.o" "gcc" "src/CMakeFiles/sfq.dir/qos/end_to_end.cc.o.d"
  "/root/repo/src/qos/reservation.cc" "src/CMakeFiles/sfq.dir/qos/reservation.cc.o" "gcc" "src/CMakeFiles/sfq.dir/qos/reservation.cc.o.d"
  "/root/repo/src/sched/drr_scheduler.cc" "src/CMakeFiles/sfq.dir/sched/drr_scheduler.cc.o" "gcc" "src/CMakeFiles/sfq.dir/sched/drr_scheduler.cc.o.d"
  "/root/repo/src/sched/edd_scheduler.cc" "src/CMakeFiles/sfq.dir/sched/edd_scheduler.cc.o" "gcc" "src/CMakeFiles/sfq.dir/sched/edd_scheduler.cc.o.d"
  "/root/repo/src/sched/fair_airport.cc" "src/CMakeFiles/sfq.dir/sched/fair_airport.cc.o" "gcc" "src/CMakeFiles/sfq.dir/sched/fair_airport.cc.o.d"
  "/root/repo/src/sched/gps_virtual_time.cc" "src/CMakeFiles/sfq.dir/sched/gps_virtual_time.cc.o" "gcc" "src/CMakeFiles/sfq.dir/sched/gps_virtual_time.cc.o.d"
  "/root/repo/src/sched/scfq_scheduler.cc" "src/CMakeFiles/sfq.dir/sched/scfq_scheduler.cc.o" "gcc" "src/CMakeFiles/sfq.dir/sched/scfq_scheduler.cc.o.d"
  "/root/repo/src/sched/virtual_clock.cc" "src/CMakeFiles/sfq.dir/sched/virtual_clock.cc.o" "gcc" "src/CMakeFiles/sfq.dir/sched/virtual_clock.cc.o.d"
  "/root/repo/src/sched/wfq_scheduler.cc" "src/CMakeFiles/sfq.dir/sched/wfq_scheduler.cc.o" "gcc" "src/CMakeFiles/sfq.dir/sched/wfq_scheduler.cc.o.d"
  "/root/repo/src/sched/wrr_scheduler.cc" "src/CMakeFiles/sfq.dir/sched/wrr_scheduler.cc.o" "gcc" "src/CMakeFiles/sfq.dir/sched/wrr_scheduler.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "src/CMakeFiles/sfq.dir/sim/event_queue.cc.o" "gcc" "src/CMakeFiles/sfq.dir/sim/event_queue.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "src/CMakeFiles/sfq.dir/sim/simulator.cc.o" "gcc" "src/CMakeFiles/sfq.dir/sim/simulator.cc.o.d"
  "/root/repo/src/stats/delay_stats.cc" "src/CMakeFiles/sfq.dir/stats/delay_stats.cc.o" "gcc" "src/CMakeFiles/sfq.dir/stats/delay_stats.cc.o.d"
  "/root/repo/src/stats/fairness.cc" "src/CMakeFiles/sfq.dir/stats/fairness.cc.o" "gcc" "src/CMakeFiles/sfq.dir/stats/fairness.cc.o.d"
  "/root/repo/src/stats/link_stats.cc" "src/CMakeFiles/sfq.dir/stats/link_stats.cc.o" "gcc" "src/CMakeFiles/sfq.dir/stats/link_stats.cc.o.d"
  "/root/repo/src/stats/service_recorder.cc" "src/CMakeFiles/sfq.dir/stats/service_recorder.cc.o" "gcc" "src/CMakeFiles/sfq.dir/stats/service_recorder.cc.o.d"
  "/root/repo/src/stats/time_series.cc" "src/CMakeFiles/sfq.dir/stats/time_series.cc.o" "gcc" "src/CMakeFiles/sfq.dir/stats/time_series.cc.o.d"
  "/root/repo/src/traffic/leaky_bucket.cc" "src/CMakeFiles/sfq.dir/traffic/leaky_bucket.cc.o" "gcc" "src/CMakeFiles/sfq.dir/traffic/leaky_bucket.cc.o.d"
  "/root/repo/src/traffic/sink.cc" "src/CMakeFiles/sfq.dir/traffic/sink.cc.o" "gcc" "src/CMakeFiles/sfq.dir/traffic/sink.cc.o.d"
  "/root/repo/src/traffic/sources.cc" "src/CMakeFiles/sfq.dir/traffic/sources.cc.o" "gcc" "src/CMakeFiles/sfq.dir/traffic/sources.cc.o.d"
  "/root/repo/src/traffic/tcp_reno.cc" "src/CMakeFiles/sfq.dir/traffic/tcp_reno.cc.o" "gcc" "src/CMakeFiles/sfq.dir/traffic/tcp_reno.cc.o.d"
  "/root/repo/src/traffic/tcp_session.cc" "src/CMakeFiles/sfq.dir/traffic/tcp_session.cc.o" "gcc" "src/CMakeFiles/sfq.dir/traffic/tcp_session.cc.o.d"
  "/root/repo/src/traffic/trace_io.cc" "src/CMakeFiles/sfq.dir/traffic/trace_io.cc.o" "gcc" "src/CMakeFiles/sfq.dir/traffic/trace_io.cc.o.d"
  "/root/repo/src/traffic/vbr_video.cc" "src/CMakeFiles/sfq.dir/traffic/vbr_video.cc.o" "gcc" "src/CMakeFiles/sfq.dir/traffic/vbr_video.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
