# Empty compiler generated dependencies file for sfq.
# This may be replaced when dependencies are built.
