file(REMOVE_RECURSE
  "libsfq.a"
)
