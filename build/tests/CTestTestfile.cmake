# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sfq_tests[1]_include.cmake")
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;48;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_variable_rate_fairness "/root/repo/build/examples/variable_rate_fairness")
set_tests_properties(example_variable_rate_fairness PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;48;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_video_conferencing "/root/repo/build/examples/video_conferencing")
set_tests_properties(example_video_conferencing PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;48;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_end_to_end_budget "/root/repo/build/examples/end_to_end_budget")
set_tests_properties(example_end_to_end_budget PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;48;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_admission_control "/root/repo/build/examples/admission_control")
set_tests_properties(example_admission_control PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;48;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_vbr_rate_allocation "/root/repo/build/examples/vbr_rate_allocation")
set_tests_properties(example_vbr_rate_allocation PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;48;add_test;/root/repo/tests/CMakeLists.txt;0;")
