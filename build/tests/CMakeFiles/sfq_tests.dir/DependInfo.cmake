
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_drr.cc" "tests/CMakeFiles/sfq_tests.dir/test_drr.cc.o" "gcc" "tests/CMakeFiles/sfq_tests.dir/test_drr.cc.o.d"
  "/root/repo/tests/test_ebf_estimator.cc" "tests/CMakeFiles/sfq_tests.dir/test_ebf_estimator.cc.o" "gcc" "tests/CMakeFiles/sfq_tests.dir/test_ebf_estimator.cc.o.d"
  "/root/repo/tests/test_edd.cc" "tests/CMakeFiles/sfq_tests.dir/test_edd.cc.o" "gcc" "tests/CMakeFiles/sfq_tests.dir/test_edd.cc.o.d"
  "/root/repo/tests/test_event_queue.cc" "tests/CMakeFiles/sfq_tests.dir/test_event_queue.cc.o" "gcc" "tests/CMakeFiles/sfq_tests.dir/test_event_queue.cc.o.d"
  "/root/repo/tests/test_experiment_config.cc" "tests/CMakeFiles/sfq_tests.dir/test_experiment_config.cc.o" "gcc" "tests/CMakeFiles/sfq_tests.dir/test_experiment_config.cc.o.d"
  "/root/repo/tests/test_fair_airport.cc" "tests/CMakeFiles/sfq_tests.dir/test_fair_airport.cc.o" "gcc" "tests/CMakeFiles/sfq_tests.dir/test_fair_airport.cc.o.d"
  "/root/repo/tests/test_fragmentation.cc" "tests/CMakeFiles/sfq_tests.dir/test_fragmentation.cc.o" "gcc" "tests/CMakeFiles/sfq_tests.dir/test_fragmentation.cc.o.d"
  "/root/repo/tests/test_gps_reference.cc" "tests/CMakeFiles/sfq_tests.dir/test_gps_reference.cc.o" "gcc" "tests/CMakeFiles/sfq_tests.dir/test_gps_reference.cc.o.d"
  "/root/repo/tests/test_hier_delegation.cc" "tests/CMakeFiles/sfq_tests.dir/test_hier_delegation.cc.o" "gcc" "tests/CMakeFiles/sfq_tests.dir/test_hier_delegation.cc.o.d"
  "/root/repo/tests/test_hsfq.cc" "tests/CMakeFiles/sfq_tests.dir/test_hsfq.cc.o" "gcc" "tests/CMakeFiles/sfq_tests.dir/test_hsfq.cc.o.d"
  "/root/repo/tests/test_indexed_heap.cc" "tests/CMakeFiles/sfq_tests.dir/test_indexed_heap.cc.o" "gcc" "tests/CMakeFiles/sfq_tests.dir/test_indexed_heap.cc.o.d"
  "/root/repo/tests/test_integration.cc" "tests/CMakeFiles/sfq_tests.dir/test_integration.cc.o" "gcc" "tests/CMakeFiles/sfq_tests.dir/test_integration.cc.o.d"
  "/root/repo/tests/test_interop_e2e.cc" "tests/CMakeFiles/sfq_tests.dir/test_interop_e2e.cc.o" "gcc" "tests/CMakeFiles/sfq_tests.dir/test_interop_e2e.cc.o.d"
  "/root/repo/tests/test_link_stats.cc" "tests/CMakeFiles/sfq_tests.dir/test_link_stats.cc.o" "gcc" "tests/CMakeFiles/sfq_tests.dir/test_link_stats.cc.o.d"
  "/root/repo/tests/test_mesh.cc" "tests/CMakeFiles/sfq_tests.dir/test_mesh.cc.o" "gcc" "tests/CMakeFiles/sfq_tests.dir/test_mesh.cc.o.d"
  "/root/repo/tests/test_misc_coverage.cc" "tests/CMakeFiles/sfq_tests.dir/test_misc_coverage.cc.o" "gcc" "tests/CMakeFiles/sfq_tests.dir/test_misc_coverage.cc.o.d"
  "/root/repo/tests/test_multi_priority.cc" "tests/CMakeFiles/sfq_tests.dir/test_multi_priority.cc.o" "gcc" "tests/CMakeFiles/sfq_tests.dir/test_multi_priority.cc.o.d"
  "/root/repo/tests/test_network.cc" "tests/CMakeFiles/sfq_tests.dir/test_network.cc.o" "gcc" "tests/CMakeFiles/sfq_tests.dir/test_network.cc.o.d"
  "/root/repo/tests/test_qos.cc" "tests/CMakeFiles/sfq_tests.dir/test_qos.cc.o" "gcc" "tests/CMakeFiles/sfq_tests.dir/test_qos.cc.o.d"
  "/root/repo/tests/test_rate_profile.cc" "tests/CMakeFiles/sfq_tests.dir/test_rate_profile.cc.o" "gcc" "tests/CMakeFiles/sfq_tests.dir/test_rate_profile.cc.o.d"
  "/root/repo/tests/test_reservation.cc" "tests/CMakeFiles/sfq_tests.dir/test_reservation.cc.o" "gcc" "tests/CMakeFiles/sfq_tests.dir/test_reservation.cc.o.d"
  "/root/repo/tests/test_scale_robustness.cc" "tests/CMakeFiles/sfq_tests.dir/test_scale_robustness.cc.o" "gcc" "tests/CMakeFiles/sfq_tests.dir/test_scale_robustness.cc.o.d"
  "/root/repo/tests/test_scfq.cc" "tests/CMakeFiles/sfq_tests.dir/test_scfq.cc.o" "gcc" "tests/CMakeFiles/sfq_tests.dir/test_scfq.cc.o.d"
  "/root/repo/tests/test_scheduler_properties.cc" "tests/CMakeFiles/sfq_tests.dir/test_scheduler_properties.cc.o" "gcc" "tests/CMakeFiles/sfq_tests.dir/test_scheduler_properties.cc.o.d"
  "/root/repo/tests/test_servers.cc" "tests/CMakeFiles/sfq_tests.dir/test_servers.cc.o" "gcc" "tests/CMakeFiles/sfq_tests.dir/test_servers.cc.o.d"
  "/root/repo/tests/test_sfq_scheduler.cc" "tests/CMakeFiles/sfq_tests.dir/test_sfq_scheduler.cc.o" "gcc" "tests/CMakeFiles/sfq_tests.dir/test_sfq_scheduler.cc.o.d"
  "/root/repo/tests/test_sources.cc" "tests/CMakeFiles/sfq_tests.dir/test_sources.cc.o" "gcc" "tests/CMakeFiles/sfq_tests.dir/test_sources.cc.o.d"
  "/root/repo/tests/test_stats.cc" "tests/CMakeFiles/sfq_tests.dir/test_stats.cc.o" "gcc" "tests/CMakeFiles/sfq_tests.dir/test_stats.cc.o.d"
  "/root/repo/tests/test_tcp_reno.cc" "tests/CMakeFiles/sfq_tests.dir/test_tcp_reno.cc.o" "gcc" "tests/CMakeFiles/sfq_tests.dir/test_tcp_reno.cc.o.d"
  "/root/repo/tests/test_tcp_session.cc" "tests/CMakeFiles/sfq_tests.dir/test_tcp_session.cc.o" "gcc" "tests/CMakeFiles/sfq_tests.dir/test_tcp_session.cc.o.d"
  "/root/repo/tests/test_virtual_clock.cc" "tests/CMakeFiles/sfq_tests.dir/test_virtual_clock.cc.o" "gcc" "tests/CMakeFiles/sfq_tests.dir/test_virtual_clock.cc.o.d"
  "/root/repo/tests/test_wfq.cc" "tests/CMakeFiles/sfq_tests.dir/test_wfq.cc.o" "gcc" "tests/CMakeFiles/sfq_tests.dir/test_wfq.cc.o.d"
  "/root/repo/tests/test_wrr_trace_io.cc" "tests/CMakeFiles/sfq_tests.dir/test_wrr_trace_io.cc.o" "gcc" "tests/CMakeFiles/sfq_tests.dir/test_wrr_trace_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sfq.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
