# Empty compiler generated dependencies file for sfq_tests.
# This may be replaced when dependencies are built.
