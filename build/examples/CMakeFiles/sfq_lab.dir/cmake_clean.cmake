file(REMOVE_RECURSE
  "CMakeFiles/sfq_lab.dir/sfq_lab.cpp.o"
  "CMakeFiles/sfq_lab.dir/sfq_lab.cpp.o.d"
  "sfq_lab"
  "sfq_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfq_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
