# Empty compiler generated dependencies file for sfq_lab.
# This may be replaced when dependencies are built.
