file(REMOVE_RECURSE
  "CMakeFiles/variable_rate_fairness.dir/variable_rate_fairness.cpp.o"
  "CMakeFiles/variable_rate_fairness.dir/variable_rate_fairness.cpp.o.d"
  "variable_rate_fairness"
  "variable_rate_fairness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/variable_rate_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
