# Empty dependencies file for variable_rate_fairness.
# This may be replaced when dependencies are built.
