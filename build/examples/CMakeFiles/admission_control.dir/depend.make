# Empty dependencies file for admission_control.
# This may be replaced when dependencies are built.
