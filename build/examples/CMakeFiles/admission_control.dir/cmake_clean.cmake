file(REMOVE_RECURSE
  "CMakeFiles/admission_control.dir/admission_control.cpp.o"
  "CMakeFiles/admission_control.dir/admission_control.cpp.o.d"
  "admission_control"
  "admission_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/admission_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
