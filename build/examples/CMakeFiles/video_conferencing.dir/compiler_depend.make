# Empty compiler generated dependencies file for video_conferencing.
# This may be replaced when dependencies are built.
