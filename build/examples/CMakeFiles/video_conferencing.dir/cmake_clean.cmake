file(REMOVE_RECURSE
  "CMakeFiles/video_conferencing.dir/video_conferencing.cpp.o"
  "CMakeFiles/video_conferencing.dir/video_conferencing.cpp.o.d"
  "video_conferencing"
  "video_conferencing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/video_conferencing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
