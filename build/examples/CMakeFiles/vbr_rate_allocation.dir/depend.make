# Empty dependencies file for vbr_rate_allocation.
# This may be replaced when dependencies are built.
