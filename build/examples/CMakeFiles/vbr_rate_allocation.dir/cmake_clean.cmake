file(REMOVE_RECURSE
  "CMakeFiles/vbr_rate_allocation.dir/vbr_rate_allocation.cpp.o"
  "CMakeFiles/vbr_rate_allocation.dir/vbr_rate_allocation.cpp.o.d"
  "vbr_rate_allocation"
  "vbr_rate_allocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vbr_rate_allocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
