file(REMOVE_RECURSE
  "CMakeFiles/end_to_end_budget.dir/end_to_end_budget.cpp.o"
  "CMakeFiles/end_to_end_budget.dir/end_to_end_budget.cpp.o.d"
  "end_to_end_budget"
  "end_to_end_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/end_to_end_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
