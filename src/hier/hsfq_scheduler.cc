#include "hier/hsfq_scheduler.h"

#include <algorithm>
#include <stdexcept>

namespace sfq::hier {

HsfqScheduler::HsfqScheduler() {
  Node root;
  root.parent = kRootClass;
  root.label = "root";
  nodes_.push_back(std::move(root));
}

uint32_t HsfqScheduler::new_node(ClassId parent, double weight, bool is_flow,
                                 std::string name) {
  if (parent >= nodes_.size() || nodes_[parent].is_flow)
    throw std::invalid_argument("HSFQ: bad parent class");
  if (weight <= 0.0)
    throw std::invalid_argument("HSFQ: weight must be positive");
  Node n;
  n.parent = parent;
  n.weight = weight;
  n.is_flow = is_flow;
  n.label = std::move(name);
  nodes_.push_back(std::move(n));
  ++nodes_[parent].child_count;
  return static_cast<uint32_t>(nodes_.size() - 1);
}

HsfqScheduler::ClassId HsfqScheduler::add_class(ClassId parent, double weight,
                                                std::string name) {
  if (parent < nodes_.size() && nodes_[parent].inner)
    throw std::invalid_argument("HSFQ: cannot nest under a delegated class");
  return new_node(parent, weight, /*is_flow=*/false, std::move(name));
}

void HsfqScheduler::attach_scheduler(ClassId cls,
                                     std::unique_ptr<Scheduler> inner) {
  if (cls == kRootClass || cls >= nodes_.size() || nodes_[cls].is_flow)
    throw std::invalid_argument("HSFQ: bad class for attach_scheduler");
  Node& n = nodes_[cls];
  if (n.child_count != 0 || !n.local_to_global.empty() || n.inner)
    throw std::invalid_argument("HSFQ: class already has children");
  n.inner = std::move(inner);
}

FlowId HsfqScheduler::add_flow_in_class(ClassId parent, double weight,
                                        double max_packet_bits,
                                        std::string name) {
  if (parent < nodes_.size() && !nodes_[parent].is_flow &&
      nodes_[parent].inner) {
    // Delegated class: the inner discipline owns the flow.
    Node& cls = nodes_[parent];
    FlowId id = Scheduler::add_flow(weight, max_packet_bits, name);
    FlowId local = cls.inner->add_flow(weight, max_packet_bits, std::move(name));
    if (local != cls.local_to_global.size())
      throw std::logic_error("HSFQ: inner scheduler ids not dense");
    cls.local_to_global.push_back(id);
    if (id >= routes_.size()) routes_.resize(id + 1);
    routes_[id] = FlowRoute{parent, true, local};
    if (id >= flow_node_.size()) flow_node_.resize(id + 1, 0);
    flow_node_[id] = parent;
    return id;
  }
  FlowId id = Scheduler::add_flow(weight, max_packet_bits, name);
  uint32_t node = new_node(parent, weight, /*is_flow=*/true, std::move(name));
  nodes_[node].flow = id;
  if (id >= flow_node_.size()) flow_node_.resize(id + 1, 0);
  flow_node_[id] = node;
  if (id >= routes_.size()) routes_.resize(id + 1);
  routes_[id] = FlowRoute{node, false, kInvalidFlow};
  queues_.ensure(id);
  return id;
}

void HsfqScheduler::activate(uint32_t n) {
  // Walk up, tagging every newly backlogged ancestor-child edge with the SFQ
  // arrival rule S = max(v_parent, F_prev). A node that refills while its
  // final transmission is still in flight continues its busy period, so any
  // armed end-of-busy-period jump is cancelled.
  while (n != kRootClass) {
    Node& c = nodes_[n];
    if (c.backlogged) return;
    c.backlogged = true;
    Node& par = nodes_[c.parent];
    par.jump_armed = false;
    c.start = std::max(par.vtime, c.last_finish);
    par.children.push(n, TagKey{c.start, 0.0, ++seq_});
    n = c.parent;
  }
  nodes_[kRootClass].jump_armed = false;
}

void HsfqScheduler::deactivate(uint32_t n) {
  // Walk up, removing drained ancestor-child edges (the inverse of
  // activate()). A class whose subtree empties arms its end-of-busy-period
  // jump, exactly as if the drain had happened during a dequeue; it commits
  // at the next transmit completion if the subtree stays empty.
  while (n != kRootClass) {
    Node& c = nodes_[n];
    if (!c.backlogged) return;
    const bool still =
        c.is_flow ? !queues_.flow_empty(c.flow)
                  : (c.inner ? !c.inner->empty() : !c.children.empty());
    if (still) return;
    c.backlogged = false;
    Node& par = nodes_[c.parent];
    par.children.erase(n);
    if (par.children.empty() && !par.jump_armed) {
      par.jump_armed = true;
      armed_nodes_.push_back(c.parent);
    }
    n = c.parent;
  }
}

std::vector<Packet> HsfqScheduler::remove_flow(FlowId f, Time now) {
  Scheduler::remove_flow(f, now);
  const FlowRoute& route = routes_.at(f);
  if (route.delegated) {
    Node& cls = nodes_[route.node];
    std::vector<Packet> out = cls.inner->remove_flow(route.local, now);
    delegated_backlog_ -= out.size();
    for (Packet& p : out) p.flow = f;  // back to global ids
    if (cls.backlogged && cls.inner->empty()) deactivate(route.node);
    return out;
  }
  // Tags are dequeue-driven: the flushed packets never advanced the leaf's
  // last_finish, and re-activation recomputes S = max(v_parent, F_prev) — the
  // paper's rejoin rule — so no rollback is needed.
  std::vector<Packet> out = queues_.drain(f);
  if (!out.empty()) deactivate(route.node);
  return out;
}

void HsfqScheduler::rejoin_flow(FlowId f, Time now) {
  Scheduler::rejoin_flow(f, now);
  const FlowRoute& route = routes_.at(f);
  if (route.delegated)
    nodes_[route.node].inner->rejoin_flow(route.local, now);
}

std::optional<Packet> HsfqScheduler::pushout(FlowId f, Time now) {
  const FlowRoute& route = routes_.at(f);
  if (route.delegated) {
    Node& cls = nodes_[route.node];
    std::optional<Packet> victim = cls.inner->pushout(route.local, now);
    if (!victim) return std::nullopt;
    --delegated_backlog_;
    victim->flow = f;
    if (cls.backlogged && cls.inner->empty()) deactivate(route.node);
    return victim;
  }
  if (queues_.flow_empty(f)) return std::nullopt;
  Packet victim = queues_.pop_back(f);
  // Popping the tail leaves the head — and thus every heap key — unchanged
  // unless the queue emptied.
  if (queues_.flow_empty(f)) deactivate(route.node);
  return victim;
}

bool HsfqScheduler::enqueue(Packet p, Time now) {
  if (!admit(p, now)) return false;
  const FlowRoute& route = routes_[p.flow];
  // Tags are dequeue-driven in H-SFQ, so the tag event reports the packet
  // as-queued (root virtual time, no start/finish yet).
  trace_tag(p, now, nodes_[kRootClass].vtime, backlog_packets() + 1);
  if (route.delegated) {
    Node& cls = nodes_[route.node];
    const bool was_empty = cls.inner->empty();
    Packet local = std::move(p);
    local.flow = route.local;
    // The inner discipline may refuse the packet (its own admit gate).
    const bool accepted = cls.inner->enqueue(std::move(local), now);
    if (accepted) ++delegated_backlog_;
    if (was_empty && !cls.inner->empty()) activate(route.node);
    return accepted;
  }
  const uint32_t leaf = route.node;
  const bool was_empty = queues_.flow_empty(p.flow);
  p.sched_order = ++seq_;
  queues_.push(std::move(p));
  if (was_empty) activate(leaf);
  return true;
}

std::optional<Packet> HsfqScheduler::dequeue(Time now) {
  if (nodes_[kRootClass].children.empty()) return std::nullopt;

  // Descend along minimum start tags; a delegated class terminates the
  // descent (its inner discipline picks the packet).
  std::vector<uint32_t> path;  // class nodes visited, root first
  uint32_t n = kRootClass;
  while (!nodes_[n].is_flow && !nodes_[n].inner) {
    path.push_back(n);
    n = nodes_[n].children.top_id();
  }
  const uint32_t leaf = n;

  Packet p;
  if (nodes_[leaf].is_flow) {
    p = queues_.pop(nodes_[leaf].flow);
    last_inner_ = nullptr;
  } else {
    Node& cls = nodes_[leaf];
    std::optional<Packet> got = cls.inner->dequeue(now);
    if (!got) throw std::logic_error("HSFQ: delegated class backlogged but empty");
    p = std::move(*got);
    last_inner_ = cls.inner.get();
    last_inner_local_ = p.flow;
    p.flow = cls.local_to_global.at(p.flow);
    --delegated_backlog_;
  }

  // Unwind bottom-up: charge the packet to every (parent, child) edge.
  uint32_t child = leaf;
  for (auto it = path.rbegin(); it != path.rend(); ++it) {
    Node& par = nodes_[*it];
    Node& c = nodes_[child];

    par.vtime = c.start;  // child is now "in service" at this node
    const double rate =
        (c.is_flow && p.rate > 0.0) ? p.rate : c.weight;
    c.last_finish = c.start + p.length_bits / rate;
    par.max_finish = std::max(par.max_finish, c.last_finish);

    const bool still_backlogged =
        c.is_flow ? !queues_.flow_empty(c.flow)
                  : (c.inner ? !c.inner->empty() : !c.children.empty());
    if (still_backlogged) {
      c.start = std::max(par.vtime, c.last_finish);
      par.children.update(child, TagKey{c.start, 0.0, ++seq_});
    } else {
      c.backlogged = false;
      par.children.erase(child);
      if (par.children.empty() && !par.jump_armed) {
        // Subtree drained while this packet transmits: arm the
        // end-of-busy-period jump (committed in on_transmit_complete).
        par.jump_armed = true;
        armed_nodes_.push_back(*it);
      }
    }
    child = *it;
  }

  // Stamp the leaf-level tags on the packet for traces/tests.
  p.start_tag = nodes_[kRootClass].vtime;
  trace_dequeue(p, now, nodes_[kRootClass].vtime, backlog_packets());
  return p;
}

void HsfqScheduler::on_transmit_complete(const Packet& p, Time now) {
  // Forward the notification to the inner discipline that supplied the
  // packet (the server completes transmissions one at a time and in dequeue
  // order, so the pairing is unambiguous).
  if (last_inner_) {
    Packet local = p;
    local.flow = last_inner_local_;
    last_inner_->on_transmit_complete(local, now);
    last_inner_ = nullptr;
  }
  // Commit armed busy-period jumps for nodes whose subtree stayed empty
  // through the final transmission (flat-SFQ rule 2, per node).
  const VirtualTime root_before = nodes_[kRootClass].vtime;
  for (uint32_t n : armed_nodes_) {
    Node& node = nodes_[n];
    if (node.jump_armed && node.children.empty()) {
      node.vtime = std::max(node.vtime, node.max_finish);
      node.jump_armed = false;
    }
  }
  armed_nodes_.clear();
  if (nodes_[kRootClass].vtime != root_before)
    trace_vtime(now, nodes_[kRootClass].vtime, backlog_packets());
}

}  // namespace sfq::hier
