#pragma once

#include <string>
#include <vector>

#include "hier/hsfq_scheduler.h"
#include "qos/bounds.h"

namespace sfq::hier {

// Declarative link-sharing structure: builds the matching HsfqScheduler and
// carries the analytic side of §3 — every class is a virtual FC server whose
// parameters follow the eq. 65 recursion, so Theorems 2 and 4 apply at any
// depth.
class LinkSharingTree {
 public:
  using ClassId = HsfqScheduler::ClassId;
  static constexpr ClassId kRoot = HsfqScheduler::kRootClass;

  // `link` is the physical link modeled as an FC server (delta = 0 for a
  // constant-rate link).
  explicit LinkSharingTree(qos::FcParams link) : link_(link) {
    nodes_.push_back(NodeInfo{kRoot, link.rate, 0.0, false, kInvalidFlow});
  }

  ClassId add_class(ClassId parent, double weight, std::string name = {}) {
    ClassId id = sched_.add_class(parent, weight, name);
    ensure_node(id);
    nodes_[id] = NodeInfo{parent, weight, 0.0, false, kInvalidFlow};
    return id;
  }

  FlowId add_flow(ClassId parent, double weight, double max_packet_bits,
                  std::string name = {}) {
    FlowId f = sched_.add_flow_in_class(parent, weight, max_packet_bits, name);
    // Flow nodes live in the scheduler's node space right after their class;
    // mirror them here keyed by their own id space.
    flow_nodes_.push_back(NodeInfo{parent, weight, max_packet_bits, true, f});
    return f;
  }

  HsfqScheduler& scheduler() { return sched_; }

  // Virtual-server parameters of a class (eq. 65 recursion from the link).
  qos::FcParams class_params(ClassId c) const;

  // Theorem-4 delay term (seconds past EAT) for a flow's packets of size
  // `packet_bits`, accounting for the whole hierarchy above it.
  Time flow_delay_term(FlowId f, double packet_bits) const;

  // Theorem-2 throughput lower bound for a backlogged flow over [t1, t2].
  double flow_throughput_bound(FlowId f, Time t1, Time t2) const;

  // Maximum packet length inside a class's subtree (the l^max of eq. 65).
  double subtree_lmax(ClassId c) const;
  // Sum of children l^max at a class (the Σ l_n^max of Theorems 2/4).
  double children_lmax_sum(ClassId c) const;

 private:
  struct NodeInfo {
    ClassId parent;
    double weight;
    double lmax;   // flows only; classes derive from subtree
    bool is_flow;
    FlowId flow;
  };

  void ensure_node(ClassId id) {
    if (id >= nodes_.size()) nodes_.resize(id + 1);
  }

  qos::FcParams link_;
  HsfqScheduler sched_;
  std::vector<NodeInfo> nodes_;       // classes, indexed by ClassId
  std::vector<NodeInfo> flow_nodes_;  // flows, indexed by FlowId
};

}  // namespace sfq::hier
