#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/indexed_heap.h"
#include "core/scheduler.h"

namespace sfq::hier {

// Hierarchical SFQ link sharing (paper §3).
//
// The link-sharing structure is a tree of classes; leaves are flows. Every
// internal node runs SFQ over its children, treating each child as a flow:
// a child carries a (start, last-finish) tag pair at its parent, the parent's
// virtual time is the start tag of the child in service, and dequeuing
// recursively picks the minimum-start-tag child at every level. The *actual
// length of the dequeued packet* is charged to the child's tags at every node
// on the path, so the recursion degenerates to flat SFQ when the tree has
// depth one (a unit test asserts this).
//
// Tag bookkeeping is dequeue-driven: a child's start tag is fixed when it
// becomes backlogged (S = max(v_parent, F_prev), the SFQ arrival rule —
// identical because only the head packet's tag ever matters) and its finish
// tag is computed when a packet actually leaves (F = S + l / w_child). This
// avoids needing the subtree's next packet length in advance.
//
// A node's end-of-busy-period jump (v := max finish tag serviced) follows the
// flat-SFQ rule exactly: when a node's subtree drains during a dequeue, the
// jump is only *armed*; it commits at on_transmit_complete if the subtree is
// still empty, and is cancelled if a packet arrives while the final
// transmission is still in progress (the busy period then continues).
class HsfqScheduler : public Scheduler {
 public:
  using ClassId = uint32_t;
  static constexpr ClassId kRootClass = 0;

  HsfqScheduler();

  // Adds an aggregation class under `parent` with weight (interpreted as a
  // rate, like flow weights).
  ClassId add_class(ClassId parent, double weight, std::string name = {});

  // Adds a flow as a leaf of `parent`.
  FlowId add_flow_in_class(ClassId parent, double weight,
                           double max_packet_bits = 0.0,
                           std::string name = {});

  // §3 heterogeneity: delegates the *inside* of a class to a different
  // discipline (e.g. Delay-EDD for delay/throughput separation, Theorem 7).
  // The class still competes with its siblings under SFQ tags — its virtual
  // server is FC by eq. 65, so the inner discipline's FC guarantees apply
  // with the class parameters. The class must have no SFQ children; flows
  // added to it afterwards are owned by the inner scheduler.
  void attach_scheduler(ClassId cls, std::unique_ptr<Scheduler> inner);

  // Access to a delegated class's inner scheduler (e.g. to set EDD
  // deadlines). Returns nullptr when the class is a plain SFQ class.
  Scheduler* inner_scheduler(ClassId cls) {
    return cls < nodes_.size() ? nodes_[cls].inner.get() : nullptr;
  }

  // Scheduler interface; add_flow attaches directly under the root.
  FlowId add_flow(double weight, double max_packet_bits = 0.0,
                  std::string name = {}) override {
    return add_flow_in_class(kRootClass, weight, max_packet_bits,
                             std::move(name));
  }

  bool enqueue(Packet p, Time now) override;
  std::optional<Packet> dequeue(Time now) override;
  void on_transmit_complete(const Packet& p, Time now) override;

  std::vector<Packet> remove_flow(FlowId f, Time now) override;
  void rejoin_flow(FlowId f, Time now) override;
  std::optional<Packet> pushout(FlowId f, Time now) override;

  bool empty() const override {
    return queues_.packets() == 0 && delegated_backlog_ == 0;
  }
  std::size_t backlog_packets() const override {
    return queues_.packets() + delegated_backlog_;
  }
  double backlog_bits(FlowId f) const override {
    if (f < routes_.size() && routes_[f].delegated)
      return nodes_[routes_[f].node].inner->backlog_bits(routes_[f].local);
    return queues_.bits(f);
  }
  std::string name() const override { return "H-SFQ"; }

  // Virtual time of a class node (root by default) — for tests.
  VirtualTime class_vtime(ClassId c = kRootClass) const {
    return nodes_.at(c).vtime;
  }

 private:
  struct Node {
    uint32_t parent = 0;
    double weight = 1.0;
    bool is_flow = false;
    FlowId flow = kInvalidFlow;
    std::string label;

    // State as a child of `parent`.
    bool backlogged = false;
    VirtualTime start = 0.0;
    VirtualTime last_finish = 0.0;

    // State as a parent (class nodes only).
    IndexedHeap<TagKey> children;
    VirtualTime vtime = 0.0;
    VirtualTime max_finish = 0.0;
    bool jump_armed = false;  // subtree drained mid-transmission

    // Delegated class: the subtree is run by this discipline instead of SFQ.
    std::unique_ptr<Scheduler> inner;
    std::vector<FlowId> local_to_global;  // inner flow id -> our flow id
    uint32_t child_count = 0;             // structural children (SFQ classes)
  };

  uint32_t new_node(ClassId parent, double weight, bool is_flow,
                    std::string name);
  void activate(uint32_t n);
  void deactivate(uint32_t n);

  struct FlowRoute {
    uint32_t node = 0;       // owning leaf node (flow node or delegated class)
    bool delegated = false;
    FlowId local = kInvalidFlow;  // id inside the inner scheduler
  };

  std::vector<Node> nodes_;
  std::vector<uint32_t> flow_node_;  // FlowId -> node index (flow leaves)
  std::vector<FlowRoute> routes_;    // FlowId -> routing info
  std::vector<uint32_t> armed_nodes_;
  PerFlowQueues queues_;
  std::size_t delegated_backlog_ = 0;
  // Set when the last dequeued packet came from a delegated class, so the
  // transmit-complete notification can be forwarded to the inner discipline.
  Scheduler* last_inner_ = nullptr;
  FlowId last_inner_local_ = kInvalidFlow;
  uint64_t seq_ = 0;
};

}  // namespace sfq::hier
