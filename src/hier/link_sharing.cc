#include "hier/link_sharing.h"

#include <algorithm>
#include <stdexcept>

namespace sfq::hier {

double LinkSharingTree::subtree_lmax(ClassId c) const {
  double m = 0.0;
  for (ClassId i = 0; i < nodes_.size(); ++i)
    if (i != kRoot && nodes_[i].parent == c)
      m = std::max(m, subtree_lmax(i));
  for (const NodeInfo& f : flow_nodes_)
    if (f.parent == c) m = std::max(m, f.lmax);
  return m;
}

double LinkSharingTree::children_lmax_sum(ClassId c) const {
  double s = 0.0;
  for (ClassId i = 0; i < nodes_.size(); ++i)
    if (i != kRoot && nodes_[i].parent == c) s += subtree_lmax(i);
  for (const NodeInfo& f : flow_nodes_)
    if (f.parent == c) s += f.lmax;
  return s;
}

qos::FcParams LinkSharingTree::class_params(ClassId c) const {
  if (c == kRoot) return link_;
  if (c >= nodes_.size())
    throw std::out_of_range("LinkSharingTree: unknown class");
  const NodeInfo& n = nodes_[c];
  const qos::FcParams parent = class_params(n.parent);
  return qos::hsfq_class_params(parent, n.weight,
                                children_lmax_sum(n.parent),
                                subtree_lmax(c));
}

Time LinkSharingTree::flow_delay_term(FlowId f, double packet_bits) const {
  if (f >= flow_nodes_.size())
    throw std::out_of_range("LinkSharingTree: unknown flow");
  const NodeInfo& leaf = flow_nodes_[f];
  const qos::FcParams server = class_params(leaf.parent);
  const double sum_other = children_lmax_sum(leaf.parent) - leaf.lmax;
  return qos::sfq_fc_delay_term(server, sum_other, packet_bits);
}

double LinkSharingTree::flow_throughput_bound(FlowId f, Time t1,
                                              Time t2) const {
  if (f >= flow_nodes_.size())
    throw std::out_of_range("LinkSharingTree: unknown flow");
  const NodeInfo& leaf = flow_nodes_[f];
  const qos::FcParams server = class_params(leaf.parent);
  return qos::sfq_fc_throughput_lower_bound(
      server, leaf.weight, children_lmax_sum(leaf.parent), leaf.lmax, t1, t2);
}

}  // namespace sfq::hier
