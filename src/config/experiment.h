#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/types.h"

namespace sfq {
class Scheduler;
struct SchedulerOptions;
namespace obs {
class TraceSink;
}
}  // namespace sfq

namespace sfq::config {

// ---------------------------------------------------------------------------
// Unit-aware scalar parsing. Raw numbers pass through unchanged.
//   rates: bps, Kbps, Mbps, Gbps          (decimal multipliers)
//   sizes: b (bits), B, KB, MB            (bytes are 8 bits, decimal K/M)
//   times: s, ms, us
// Throws std::invalid_argument on malformed input.
double parse_rate(const std::string& text);
double parse_size(const std::string& text);
Time parse_time(const std::string& text);

// ---------------------------------------------------------------------------
// Declarative experiment description, loadable from a small line-oriented
// config format (see examples/sfq_lab.cpp):
//
//   # one switch, three flows
//   scheduler SFQ
//   link rate=10Mbps delta=20Kb buffer=0
//   duration 10s
//   trace jsonl=run.jsonl invariants=on
//   metrics json=metrics.json
//   flow name=voice kind=cbr     rate=64Kbps packet=160B
//   flow name=web   kind=poisson rate=2Mbps  packet=1000B weight=1Mbps
//   flow name=bulk  kind=greedy  packet=1500B weight=4Mbps start=2s
//
// Directives: `scheduler <name>`, `link k=v...`, `duration <time>`,
// `flow k=v...`, `trace k=v...`, `metrics k=v...`, `fault link|loss k=v...`.
// '#' starts a comment. Flow weight defaults to the offered rate; greedy
// flows offer 2x their weight. Tracing/metrics instrument the first hop
// (docs/OBSERVABILITY.md). Faults — link outages/degradation, random
// loss/corruption, flow churn via `flow ... leave=T join=T` — apply to the
// first hop too (docs/ROBUSTNESS.md):
//
//   link rate=1Mbps buffer=16 policy=pushout
//   fault link down=3s up=4s            # outage during [3s,4s)
//   fault link degrade=0.25 from=5s until=7s
//   fault loss p=0.02 from=1s until=9s seed=7
//   flow name=bulk kind=greedy packet=1500B weight=500Kbps leave=4s join=6s
struct FlowSpec {
  std::string name;
  std::string kind = "cbr";  // cbr | poisson | onoff | greedy | vbr
  double rate = 0.0;         // offered rate (bits/s); 0 for greedy
  double packet = 0.0;       // bits
  double weight = 0.0;       // r_f; defaults to rate
  Time start = 0.0;
  Time stop = -1.0;          // -1: run for the whole experiment
  Time mean_on = 0.05;       // onoff only
  Time mean_off = 0.05;      // onoff only
  uint64_t seed = 1;
  // Churn: the flow departs the scheduler at `leave` (queued packets flushed,
  // later arrivals dropped) and, if `rejoin` >= 0, comes back with its start
  // tag re-anchored at max(v(t), previous finish tag). -1 = never.
  Time leave = -1.0;
  Time rejoin = -1.0;
  // H-SFQ link-sharing: the class this flow is a leaf of (`class=` key).
  // Empty = directly under the root. Requires scheduler HSFQ.
  std::string cls;
};

// `class name=gold weight=6Mbps [parent=other]`: one node of the H-SFQ
// link-sharing tree (paper §3). Classes must be declared before they are
// referenced (as a parent or by a flow), which rules out cycles by
// construction; they are only valid with `scheduler HSFQ` on a single hop.
struct ClassSpec {
  std::string name;
  double weight = 0.0;   // interpreted as a rate, like flow weights
  std::string parent;    // empty = root class
};

struct HopSpec {
  double rate = 1e6;
  double delta = 0.0;             // >0: FC on/off link with this burstiness
  std::size_t buffer_packets = 0; // 0 = unbounded
  Time propagation = 0.0;         // to the next hop
  bool pushout = false;           // `policy=pushout`: longest-queue-drop on
                                  // overflow instead of tail drop
};

// `fault link ...`: the first hop runs at `factor` x nominal in [from, until).
struct LinkFaultSpec {
  Time from = 0.0;
  Time until = kTimeInfinity;
  double factor = 0.0;  // 0 = outage
};

// `fault loss ...`: arrivals at the first hop drop with probability p.
struct LossFaultSpec {
  Time from = 0.0;
  Time until = kTimeInfinity;
  double probability = 0.0;
  bool corrupt = false;  // report drops as corrupt instead of fault_loss
};

struct FaultSpec {
  std::vector<LinkFaultSpec> link;
  std::vector<LossFaultSpec> loss;
  uint64_t seed = 1;  // PRNG seed for the loss/corruption draws

  bool any() const { return !link.empty() || !loss.empty(); }
};

// Observability switches (`trace` / `metrics` directives). All off by
// default; any active field attaches an obs::Tracer to the first hop.
struct ObsSpec {
  std::string trace_jsonl;    // `trace jsonl=PATH`: JSONL event file
  bool check_invariants = false;  // `trace invariants=on`: online checker
  std::string metrics_json;   // `metrics json=PATH` ("-" = stdout)
  std::string metrics_text;   // `metrics text=PATH` ("-" = stdout)

  bool metrics_enabled() const {
    return !metrics_json.empty() || !metrics_text.empty();
  }
  bool enabled() const {
    return !trace_jsonl.empty() || check_invariants || metrics_enabled();
  }
};

struct ExperimentSpec {
  std::string scheduler = "SFQ";
  // `scheduler SFQ-W [quantum=<time>]`: bucket width of the timestamp wheel
  // in virtual seconds. 0 = auto (l_max / C, one max-packet service time at
  // link rate — see sfq_wheel_quantum()). Only valid with SFQ-W.
  double sfq_quantum = 0.0;
  // One `link` directive per hop; several build a tandem path that every
  // flow traverses (delays are then end-to-end).
  std::vector<HopSpec> hops;
  Time duration = 10.0;
  std::vector<FlowSpec> flows;
  std::vector<ClassSpec> classes;  // H-SFQ link-sharing tree (may be empty)
  ObsSpec obs;
  FaultSpec faults;

  bool has_faults() const {
    if (faults.any()) return true;
    for (const FlowSpec& f : flows)
      if (f.leave >= 0.0 || f.rejoin >= 0.0) return true;
    return false;
  }

  // Convenience accessors for the single-hop case.
  double link_rate() const { return hops.front().rate; }

  static ExperimentSpec parse(std::istream& in);
  static ExperimentSpec parse_file(const std::string& path);

  // Crash-free variants: any malformed input — including inputs that would
  // make parse() throw — comes back as nullopt with a diagnostic in *error
  // (when non-null). Never throws, never aborts; the chaos corpus test
  // (tests/test_config_corpus.cc) holds this to adversarial inputs.
  static std::optional<ExperimentSpec> try_parse(std::istream& in,
                                                 std::string* error = nullptr);
  static std::optional<ExperimentSpec> try_parse_file(
      const std::string& path, std::string* error = nullptr);

  // Canonical `.conf` text: parse(serialize()) reproduces this spec exactly
  // (same canonical form, bit-identical numbers via round-trippable
  // formatting). The chaos shrinker emits minimized repros through this.
  std::string serialize() const;
};

// ---------------------------------------------------------------------------
// Runner: builds the simulator, scheduler (core/scheduler_factory), server,
// sources and statistics; runs; reports.
struct FlowResult {
  std::string name;
  uint64_t packets_delivered = 0;
  double throughput = 0.0;  // bits/s over the experiment duration
  Time mean_delay = 0.0;
  Time max_delay = 0.0;
  Time p99_delay = 0.0;
};

struct ExperimentResult {
  std::vector<FlowResult> flows;
  uint64_t drops = 0;
  // Non-zero drop causes, summed over hops ({"buffer_limit", n}, ...).
  std::vector<std::pair<std::string, uint64_t>> drop_causes;
  // Worst pairwise empirical H(f,m) over Theorem-1 bound across all flow
  // pairs (<= 1 means every pair within the fair-queueing bound). For SFQ-W
  // the bound includes the extra 2*quantization_window slack term
  // (docs/PERFORMANCE.md, "Quantization slack").
  double worst_fairness_ratio = 0.0;
  // Tag-quantization window of the scheduler that ran (0 except SFQ-W).
  double quantization_window = 0.0;

  // Filled when spec.obs is active.
  uint64_t trace_events = 0;
  uint64_t invariant_violations = 0;   // valid when check_invariants was on
  std::string invariant_report;        // "" when the checker did not run
  std::string metrics_json;            // "" when metrics were off
};

// `extra_sink` (optional) is attached to the first hop's tracer alongside
// whatever spec.obs asks for — the chaos harness records and validates the
// event stream through it without touching the spec.
ExperimentResult run_experiment(const ExperimentSpec& spec,
                                obs::TraceSink* extra_sink = nullptr);

// The experiment's queueing discipline plus its registered flows, in
// spec.flows order. Built identically by the simulator path (run_experiment)
// and the chaos harness's real-time runner, so differential sim<->rt replay
// compares the same discipline with the same flow ids.
struct BuiltScheduler {
  std::unique_ptr<Scheduler> scheduler;
  std::vector<FlowId> flow_ids;
};

// Instantiates spec.scheduler (an HsfqScheduler with the spec's class tree
// when `class` directives are present) and registers every flow.
BuiltScheduler build_experiment_scheduler(const ExperimentSpec& spec,
                                          const SchedulerOptions& opts);

// The wheel quantum the experiment will run with: 0 unless spec.scheduler is
// SFQ-W, else spec.sfq_quantum when set, else the auto default l_max / C
// (largest configured packet over the first hop's rate). Deterministic
// function of the spec, shared by run_experiment, the rt replay path, and
// the chaos oracles so live and replay runs agree bit-for-bit.
double sfq_wheel_quantum(const ExperimentSpec& spec);

}  // namespace sfq::config
