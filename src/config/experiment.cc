#include "config/experiment.h"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "core/scheduler_factory.h"
#include "hier/hsfq_scheduler.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "net/rate_profile.h"
#include "net/network.h"
#include "net/scheduled_server.h"
#include "obs/invariant_checker.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/simulator.h"
#include "stats/delay_stats.h"
#include "stats/fairness.h"
#include "stats/service_recorder.h"
#include "traffic/sources.h"
#include "traffic/vbr_video.h"

namespace sfq::config {

namespace {

// Splits "12.5Mbps" into value and suffix.
void split_unit(const std::string& text, double& value, std::string& unit) {
  std::size_t i = 0;
  while (i < text.size() &&
         (std::isdigit(static_cast<unsigned char>(text[i])) || text[i] == '.' ||
          text[i] == '-' || text[i] == '+' || text[i] == 'e' ||
          (text[i] == 'E' && i + 1 < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[i + 1])) ||
            text[i + 1] == '-' || text[i + 1] == '+'))))
    ++i;
  const std::string num = text.substr(0, i);
  unit = text.substr(i);
  std::size_t used = 0;
  try {
    value = std::stod(num, &used);
  } catch (const std::exception&) {
    throw std::invalid_argument("cannot parse number in '" + text + "'");
  }
  if (used != num.size() || num.empty())
    throw std::invalid_argument("cannot parse number in '" + text + "'");
}

}  // namespace

double parse_rate(const std::string& text) {
  double v;
  std::string unit;
  split_unit(text, v, unit);
  if (unit.empty() || unit == "bps") return v;
  if (unit == "Kbps") return v * 1e3;
  if (unit == "Mbps") return v * 1e6;
  if (unit == "Gbps") return v * 1e9;
  throw std::invalid_argument("unknown rate unit '" + unit + "'");
}

double parse_size(const std::string& text) {
  double v;
  std::string unit;
  split_unit(text, v, unit);
  if (unit.empty() || unit == "b") return v;
  if (unit == "Kb") return v * 1e3;
  if (unit == "Mb") return v * 1e6;
  if (unit == "B") return v * 8.0;
  if (unit == "KB") return v * 8e3;
  if (unit == "MB") return v * 8e6;
  throw std::invalid_argument("unknown size unit '" + unit + "'");
}

Time parse_time(const std::string& text) {
  double v;
  std::string unit;
  split_unit(text, v, unit);
  if (unit.empty() || unit == "s") return v;
  if (unit == "ms") return v * 1e-3;
  if (unit == "us") return v * 1e-6;
  throw std::invalid_argument("unknown time unit '" + unit + "'");
}

namespace {

std::map<std::string, std::string> parse_kv(std::istringstream& ss,
                                            std::size_t lineno) {
  std::map<std::string, std::string> kv;
  std::string tok;
  while (ss >> tok) {
    const auto eq = tok.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= tok.size())
      throw std::invalid_argument("line " + std::to_string(lineno) +
                                  ": expected key=value, got '" + tok + "'");
    kv[tok.substr(0, eq)] = tok.substr(eq + 1);
  }
  return kv;
}

bool parse_bool(const std::string& value, std::size_t lineno) {
  if (value == "on" || value == "true" || value == "1") return true;
  if (value == "off" || value == "false" || value == "0") return false;
  throw std::invalid_argument("line " + std::to_string(lineno) +
                              ": expected on/off, got '" + value + "'");
}

// Non-negative integer fields (buffer sizes, seeds). std::stoul would accept
// "-1" and wrap it to a huge value — reject anything but digits outright.
uint64_t parse_u64(const std::string& value, std::size_t lineno,
                   const char* what) {
  if (value.empty() ||
      value.find_first_not_of("0123456789") != std::string::npos)
    throw std::invalid_argument("line " + std::to_string(lineno) + ": " +
                                what + " must be a non-negative integer, got '" +
                                value + "'");
  try {
    return std::stoull(value);
  } catch (const std::exception&) {
    throw std::invalid_argument("line " + std::to_string(lineno) + ": " +
                                what + " out of range: '" + value + "'");
  }
}

Time parse_nonneg_time(const std::string& value, std::size_t lineno,
                       const char* what) {
  const Time t = parse_time(value);
  if (t < 0.0)
    throw std::invalid_argument("line " + std::to_string(lineno) + ": " +
                                what + " must not be negative, got '" + value +
                                "'");
  return t;
}

double parse_fraction(const std::string& value, std::size_t lineno,
                      const char* what) {
  double v;
  std::string unit;
  split_unit(value, v, unit);
  if (!unit.empty() || v < 0.0 || v > 1.0)
    throw std::invalid_argument("line " + std::to_string(lineno) + ": " +
                                what + " must be in [0,1], got '" + value +
                                "'");
  return v;
}

FlowSpec parse_flow(std::map<std::string, std::string> kv, std::size_t lineno,
                    std::size_t index) {
  FlowSpec f;
  f.name = "flow" + std::to_string(index);
  f.seed = 1 + index;
  for (const auto& [key, value] : kv) {
    if (key == "name") f.name = value;
    else if (key == "kind") f.kind = value;
    else if (key == "rate") f.rate = parse_rate(value);
    else if (key == "packet") f.packet = parse_size(value);
    else if (key == "weight") f.weight = parse_rate(value);
    else if (key == "start") f.start = parse_nonneg_time(value, lineno, "start");
    else if (key == "stop") f.stop = parse_nonneg_time(value, lineno, "stop");
    else if (key == "mean_on")
      f.mean_on = parse_nonneg_time(value, lineno, "mean_on");
    else if (key == "mean_off")
      f.mean_off = parse_nonneg_time(value, lineno, "mean_off");
    else if (key == "seed") f.seed = parse_u64(value, lineno, "seed");
    else if (key == "leave") f.leave = parse_nonneg_time(value, lineno, "leave");
    else if (key == "join") f.rejoin = parse_nonneg_time(value, lineno, "join");
    else if (key == "class") f.cls = value;
    else
      throw std::invalid_argument("line " + std::to_string(lineno) +
                                  ": unknown flow key '" + key + "'");
  }
  if (f.kind != "cbr" && f.kind != "poisson" && f.kind != "onoff" &&
      f.kind != "greedy" && f.kind != "vbr")
    throw std::invalid_argument("line " + std::to_string(lineno) +
                                ": unknown flow kind '" + f.kind + "'");
  if (f.rate < 0.0 || f.packet < 0.0 || f.weight < 0.0)
    throw std::invalid_argument(
        "line " + std::to_string(lineno) +
        ": flow rate/packet/weight must not be negative");
  if (f.weight <= 0.0) f.weight = f.rate;
  if (f.weight <= 0.0)
    throw std::invalid_argument("line " + std::to_string(lineno) +
                                ": flow needs rate= or weight=");
  if (f.packet <= 0.0 && f.kind != "vbr")
    throw std::invalid_argument("line " + std::to_string(lineno) +
                                ": flow needs packet=");
  if (f.stop >= 0.0 && f.stop < f.start)
    throw std::invalid_argument("line " + std::to_string(lineno) +
                                ": flow stop= precedes start=");
  if (f.rejoin >= 0.0 && f.leave < 0.0)
    throw std::invalid_argument("line " + std::to_string(lineno) +
                                ": flow join= needs leave=");
  if (f.rejoin >= 0.0 && f.rejoin <= f.leave)
    throw std::invalid_argument("line " + std::to_string(lineno) +
                                ": flow join= must come after leave=");
  return f;
}

}  // namespace

ExperimentSpec ExperimentSpec::parse(std::istream& in) {
  ExperimentSpec spec;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ss(line);
    std::string directive;
    if (!(ss >> directive)) continue;

    if (directive == "scheduler") {
      if (!(ss >> spec.scheduler))
        throw std::invalid_argument("line " + std::to_string(lineno) +
                                    ": scheduler needs a name");
      for (const auto& [key, value] : parse_kv(ss, lineno)) {
        if (key == "quantum") {
          spec.sfq_quantum = parse_time(value);
          if (spec.sfq_quantum <= 0.0)
            throw std::invalid_argument(
                "line " + std::to_string(lineno) +
                ": scheduler quantum must be positive");
        } else {
          throw std::invalid_argument("line " + std::to_string(lineno) +
                                      ": unknown scheduler key '" + key + "'");
        }
      }
      if (spec.sfq_quantum > 0.0 && spec.scheduler != "SFQ-W")
        throw std::invalid_argument(
            "line " + std::to_string(lineno) +
            ": scheduler quantum= requires SFQ-W (got '" + spec.scheduler +
            "')");
    } else if (directive == "duration") {
      std::string v;
      if (!(ss >> v))
        throw std::invalid_argument("line " + std::to_string(lineno) +
                                    ": duration needs a value");
      spec.duration = parse_time(v);
      if (spec.duration <= 0.0)
        throw std::invalid_argument("line " + std::to_string(lineno) +
                                    ": duration must be positive");
    } else if (directive == "link") {
      HopSpec hop;
      for (const auto& [key, value] : parse_kv(ss, lineno)) {
        if (key == "rate") hop.rate = parse_rate(value);
        else if (key == "delta") hop.delta = parse_size(value);
        else if (key == "buffer")
          hop.buffer_packets = static_cast<std::size_t>(
              parse_u64(value, lineno, "buffer"));
        else if (key == "prop")
          hop.propagation = parse_nonneg_time(value, lineno, "prop");
        else if (key == "policy") {
          if (value == "pushout") hop.pushout = true;
          else if (value == "taildrop") hop.pushout = false;
          else
            throw std::invalid_argument(
                "line " + std::to_string(lineno) +
                ": link policy must be pushout or taildrop, got '" + value +
                "'");
        } else
          throw std::invalid_argument("line " + std::to_string(lineno) +
                                      ": unknown link key '" + key + "'");
      }
      if (hop.rate <= 0.0)
        throw std::invalid_argument("line " + std::to_string(lineno) +
                                    ": link rate must be positive");
      spec.hops.push_back(hop);
    } else if (directive == "fault") {
      std::string kind;
      if (!(ss >> kind))
        throw std::invalid_argument("line " + std::to_string(lineno) +
                                    ": fault needs a kind (link|loss)");
      if (kind == "link") {
        LinkFaultSpec lf;
        bool have_down = false, have_degrade = false;
        for (const auto& [key, value] : parse_kv(ss, lineno)) {
          if (key == "down") {
            lf.from = parse_nonneg_time(value, lineno, "down");
            have_down = true;
          } else if (key == "up") {
            lf.until = parse_nonneg_time(value, lineno, "up");
          } else if (key == "degrade") {
            lf.factor = parse_fraction(value, lineno, "degrade");
            have_degrade = true;
          } else if (key == "from") {
            lf.from = parse_nonneg_time(value, lineno, "from");
          } else if (key == "until") {
            lf.until = parse_nonneg_time(value, lineno, "until");
          } else
            throw std::invalid_argument("line " + std::to_string(lineno) +
                                        ": unknown fault link key '" + key +
                                        "'");
        }
        if (have_down == have_degrade)
          throw std::invalid_argument(
              "line " + std::to_string(lineno) +
              ": fault link needs exactly one of down= or degrade=");
        if (lf.until <= lf.from)
          throw std::invalid_argument("line " + std::to_string(lineno) +
                                      ": fault link interval must end after "
                                      "it starts");
        spec.faults.link.push_back(lf);
      } else if (kind == "loss") {
        LossFaultSpec ls;
        bool have_p = false;
        for (const auto& [key, value] : parse_kv(ss, lineno)) {
          if (key == "p") {
            ls.probability = parse_fraction(value, lineno, "p");
            have_p = true;
          } else if (key == "from") {
            ls.from = parse_nonneg_time(value, lineno, "from");
          } else if (key == "until") {
            ls.until = parse_nonneg_time(value, lineno, "until");
          } else if (key == "corrupt") {
            ls.corrupt = parse_bool(value, lineno);
          } else if (key == "seed") {
            spec.faults.seed = parse_u64(value, lineno, "seed");
          } else
            throw std::invalid_argument("line " + std::to_string(lineno) +
                                        ": unknown fault loss key '" + key +
                                        "'");
        }
        if (!have_p)
          throw std::invalid_argument("line " + std::to_string(lineno) +
                                      ": fault loss needs p=");
        if (ls.until <= ls.from)
          throw std::invalid_argument("line " + std::to_string(lineno) +
                                      ": fault loss interval must end after "
                                      "it starts");
        spec.faults.loss.push_back(ls);
      } else {
        throw std::invalid_argument("line " + std::to_string(lineno) +
                                    ": unknown fault kind '" + kind + "'");
      }
    } else if (directive == "flow") {
      spec.flows.push_back(
          parse_flow(parse_kv(ss, lineno), lineno, spec.flows.size()));
    } else if (directive == "class") {
      ClassSpec c;
      for (const auto& [key, value] : parse_kv(ss, lineno)) {
        if (key == "name") c.name = value;
        else if (key == "weight") c.weight = parse_rate(value);
        else if (key == "parent") c.parent = value;
        else
          throw std::invalid_argument("line " + std::to_string(lineno) +
                                      ": unknown class key '" + key + "'");
      }
      if (c.name.empty())
        throw std::invalid_argument("line " + std::to_string(lineno) +
                                    ": class needs name=");
      if (c.weight <= 0.0)
        throw std::invalid_argument("line " + std::to_string(lineno) +
                                    ": class weight must be positive");
      for (const ClassSpec& prev : spec.classes)
        if (prev.name == c.name)
          throw std::invalid_argument("line " + std::to_string(lineno) +
                                      ": duplicate class name '" + c.name +
                                      "'");
      if (!c.parent.empty()) {
        bool found = false;
        for (const ClassSpec& prev : spec.classes)
          if (prev.name == c.parent) found = true;
        // Parents must be declared first, which also rules out cycles.
        if (!found)
          throw std::invalid_argument("line " + std::to_string(lineno) +
                                      ": class parent '" + c.parent +
                                      "' not declared (classes must be "
                                      "declared before use)");
      }
      spec.classes.push_back(std::move(c));
    } else if (directive == "trace") {
      for (const auto& [key, value] : parse_kv(ss, lineno)) {
        if (key == "jsonl") spec.obs.trace_jsonl = value;
        else if (key == "invariants")
          spec.obs.check_invariants = parse_bool(value, lineno);
        else
          throw std::invalid_argument("line " + std::to_string(lineno) +
                                      ": unknown trace key '" + key + "'");
      }
    } else if (directive == "metrics") {
      for (const auto& [key, value] : parse_kv(ss, lineno)) {
        if (key == "json") spec.obs.metrics_json = value;
        else if (key == "text") spec.obs.metrics_text = value;
        else
          throw std::invalid_argument("line " + std::to_string(lineno) +
                                      ": unknown metrics key '" + key + "'");
      }
    } else {
      throw std::invalid_argument("line " + std::to_string(lineno) +
                                  ": unknown directive '" + directive + "'");
    }
  }
  if (spec.flows.empty())
    throw std::invalid_argument("experiment has no flows");
  for (std::size_t i = 0; i < spec.flows.size(); ++i)
    for (std::size_t j = i + 1; j < spec.flows.size(); ++j)
      if (spec.flows[i].name == spec.flows[j].name)
        throw std::invalid_argument("duplicate flow name '" +
                                    spec.flows[i].name + "'");
  if (spec.hops.empty()) spec.hops.push_back(HopSpec{});
  if (!spec.classes.empty()) {
    if (spec.scheduler != "HSFQ")
      throw std::invalid_argument(
          "class directives require scheduler HSFQ (got '" + spec.scheduler +
          "')");
    if (spec.hops.size() > 1)
      throw std::invalid_argument(
          "class directives are only supported on a single hop");
  }
  for (const FlowSpec& f : spec.flows) {
    if (f.cls.empty()) continue;
    bool found = false;
    for (const ClassSpec& c : spec.classes)
      if (c.name == f.cls) found = true;
    if (!found)
      throw std::invalid_argument("flow '" + f.name +
                                  "' references undeclared class '" + f.cls +
                                  "'");
  }
  return spec;
}

ExperimentSpec ExperimentSpec::parse_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open config: " + path);
  return parse(in);
}

std::optional<ExperimentSpec> ExperimentSpec::try_parse(std::istream& in,
                                                        std::string* error) {
  try {
    return parse(in);
  } catch (const std::exception& e) {
    if (error) *error = e.what();
  } catch (...) {
    if (error) *error = "unknown parse error";
  }
  return std::nullopt;
}

std::optional<ExperimentSpec> ExperimentSpec::try_parse_file(
    const std::string& path, std::string* error) {
  try {
    return parse_file(path);
  } catch (const std::exception& e) {
    if (error) *error = e.what();
  } catch (...) {
    if (error) *error = "unknown parse error";
  }
  return std::nullopt;
}

namespace {

// Round-trippable double formatting: shortest-ish decimal that std::stod
// reads back bit-identically. Values are emitted unitless (bits, seconds,
// bits/s), which every parse_* accepts.
std::string num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

std::string ExperimentSpec::serialize() const {
  std::ostringstream out;
  out << "scheduler " << scheduler;
  if (sfq_quantum > 0.0) out << " quantum=" << num(sfq_quantum);
  out << "\n";
  for (const HopSpec& h : hops) {
    out << "link rate=" << num(h.rate);
    if (h.delta > 0.0) out << " delta=" << num(h.delta);
    if (h.buffer_packets) out << " buffer=" << h.buffer_packets;
    if (h.propagation > 0.0) out << " prop=" << num(h.propagation);
    if (h.pushout) out << " policy=pushout";
    out << "\n";
  }
  out << "duration " << num(duration) << "\n";
  for (const ClassSpec& c : classes) {
    out << "class name=" << c.name << " weight=" << num(c.weight);
    if (!c.parent.empty()) out << " parent=" << c.parent;
    out << "\n";
  }
  for (const LinkFaultSpec& lf : faults.link) {
    if (lf.factor <= 0.0) {
      out << "fault link down=" << num(lf.from);
      if (lf.until != kTimeInfinity) out << " up=" << num(lf.until);
    } else {
      out << "fault link degrade=" << num(lf.factor)
          << " from=" << num(lf.from);
      if (lf.until != kTimeInfinity) out << " until=" << num(lf.until);
    }
    out << "\n";
  }
  for (std::size_t i = 0; i < faults.loss.size(); ++i) {
    const LossFaultSpec& ls = faults.loss[i];
    out << "fault loss p=" << num(ls.probability);
    if (ls.from > 0.0) out << " from=" << num(ls.from);
    if (ls.until != kTimeInfinity) out << " until=" << num(ls.until);
    if (ls.corrupt) out << " corrupt=on";
    if (i == 0) out << " seed=" << faults.seed;  // one global loss-draw seed
    out << "\n";
  }
  if (!obs.trace_jsonl.empty() || obs.check_invariants) {
    out << "trace";
    if (!obs.trace_jsonl.empty()) out << " jsonl=" << obs.trace_jsonl;
    if (obs.check_invariants) out << " invariants=on";
    out << "\n";
  }
  if (obs.metrics_enabled()) {
    out << "metrics";
    if (!obs.metrics_json.empty()) out << " json=" << obs.metrics_json;
    if (!obs.metrics_text.empty()) out << " text=" << obs.metrics_text;
    out << "\n";
  }
  for (const FlowSpec& f : flows) {
    out << "flow name=" << f.name << " kind=" << f.kind;
    if (f.rate > 0.0) out << " rate=" << num(f.rate);
    if (f.packet > 0.0) out << " packet=" << num(f.packet);
    out << " weight=" << num(f.weight);
    if (f.start > 0.0) out << " start=" << num(f.start);
    if (f.stop >= 0.0) out << " stop=" << num(f.stop);
    if (f.kind == "onoff")
      out << " mean_on=" << num(f.mean_on) << " mean_off=" << num(f.mean_off);
    out << " seed=" << f.seed;
    if (f.leave >= 0.0) out << " leave=" << num(f.leave);
    if (f.rejoin >= 0.0) out << " join=" << num(f.rejoin);
    if (!f.cls.empty()) out << " class=" << f.cls;
    out << "\n";
  }
  return out.str();
}

double sfq_wheel_quantum(const ExperimentSpec& spec) {
  if (spec.scheduler != "SFQ-W") return 0.0;
  if (spec.sfq_quantum > 0.0) return spec.sfq_quantum;
  double max_packet = 0.0;
  for (const FlowSpec& f : spec.flows)
    max_packet = std::max(max_packet, f.packet > 0.0 ? f.packet : 400.0);
  if (max_packet <= 0.0) max_packet = 400.0;
  return max_packet / spec.link_rate();
}

BuiltScheduler build_experiment_scheduler(const ExperimentSpec& spec,
                                          const SchedulerOptions& opts) {
  BuiltScheduler built;
  auto lmax = [](const FlowSpec& f) {
    return f.packet > 0.0 ? f.packet : 400.0;
  };
  if (spec.classes.empty()) {
    built.scheduler = make_scheduler(spec.scheduler, opts);
    for (const FlowSpec& f : spec.flows)
      built.flow_ids.push_back(
          built.scheduler->add_flow(f.weight, lmax(f), f.name));
    return built;
  }
  auto h = std::make_unique<hier::HsfqScheduler>();
  std::map<std::string, hier::HsfqScheduler::ClassId> class_ids;
  class_ids[""] = hier::HsfqScheduler::kRootClass;
  for (const ClassSpec& c : spec.classes)
    class_ids[c.name] = h->add_class(class_ids.at(c.parent), c.weight, c.name);
  for (const FlowSpec& f : spec.flows)
    built.flow_ids.push_back(
        h->add_flow_in_class(class_ids.at(f.cls), f.weight, lmax(f), f.name));
  built.scheduler = std::move(h);
  return built;
}

ExperimentResult run_experiment(const ExperimentSpec& spec,
                                obs::TraceSink* extra_sink) {
  sim::Simulator sim;
  SchedulerOptions opts;
  opts.assumed_capacity = spec.link_rate();
  // DRR: a few max-packets of quantum per weight share of the link.
  double max_packet = 0.0;
  for (const FlowSpec& f : spec.flows)
    max_packet = std::max(max_packet, f.packet);
  opts.quantum_per_weight =
      max_packet > 0.0 ? max_packet / spec.link_rate() * 4.0 : 1.0;
  // SFQ-W: one deterministic quantum for every hop and every oracle.
  opts.sfq_wheel_quantum = sfq_wheel_quantum(spec);
  const double qwindow = opts.sfq_wheel_quantum;

  auto make_profile = [](const HopSpec& hop) -> std::unique_ptr<net::RateProfile> {
    if (hop.delta > 0.0)
      return std::make_unique<net::FcOnOffRate>(hop.rate, hop.delta, 0.5);
    return std::make_unique<net::ConstantRate>(hop.rate);
  };

  // Build either a single server or a tandem path; both expose an inject
  // function, a first-hop recorder, and a delivery point.
  stats::DelayStats delays;
  uint64_t drops = 0;
  std::vector<FlowId> ids;
  std::function<void(Packet)> inject;
  stats::ServiceRecorder* recorder = nullptr;

  std::unique_ptr<Scheduler> single_sched;
  std::unique_ptr<net::ScheduledServer> single_server;
  std::unique_ptr<net::TandemNetwork> tandem;
  stats::ServiceRecorder single_recorder;

  const bool multi_hop = spec.hops.size() > 1;
  if (!multi_hop) {
    BuiltScheduler built = build_experiment_scheduler(spec, opts);
    single_sched = std::move(built.scheduler);
    ids = std::move(built.flow_ids);
    single_server = std::make_unique<net::ScheduledServer>(
        sim, *single_sched, make_profile(spec.hops.front()));
    if (spec.hops.front().buffer_packets)
      single_server->set_buffer_limit(spec.hops.front().buffer_packets);
    if (spec.hops.front().pushout)
      single_server->set_overload_policy(net::OverloadPolicy::kPushout);
    single_server->set_recorder(&single_recorder);
    recorder = &single_recorder;
    single_server->set_departure(
        [&](const Packet& p, Time t) { delays.add(p.flow, t - p.arrival); });
    inject = [&, server = single_server.get()](Packet p) {
      server->inject(std::move(p));
    };
  } else {
    std::vector<net::TandemNetwork::Hop> hops;
    for (std::size_t i = 0; i < spec.hops.size(); ++i) {
      net::TandemNetwork::Hop h;
      h.scheduler = make_scheduler(spec.scheduler, opts);
      h.profile = make_profile(spec.hops[i]);
      h.propagation_to_next =
          i + 1 < spec.hops.size() ? spec.hops[i].propagation : 0.0;
      hops.push_back(std::move(h));
    }
    tandem = std::make_unique<net::TandemNetwork>(sim, std::move(hops));
    for (std::size_t i = 0; i < spec.hops.size(); ++i) {
      if (spec.hops[i].buffer_packets)
        tandem->server(i).set_buffer_limit(spec.hops[i].buffer_packets);
      if (spec.hops[i].pushout)
        tandem->server(i).set_overload_policy(net::OverloadPolicy::kPushout);
    }
    recorder = &tandem->recorder(0);
    // End-to-end delay, measured from the source emission.
    tandem->set_delivery([&](const Packet& p, Time t) {
      delays.add(p.flow, t - p.source_departure);
    });
    inject = [&, t = tandem.get()](Packet p) {
      p.source_departure = sim.now();
      t->inject(std::move(p));
    };
  }

  if (multi_hop) {
    for (const FlowSpec& f : spec.flows) {
      const double lmax = f.packet > 0.0 ? f.packet : 400.0;
      ids.push_back(tandem->add_flow(f.weight, lmax, f.name));
    }
  }

  // Observability: instrument the first (usually bottleneck-shared) hop.
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  obs::InvariantChecker* checker = nullptr;
  const bool obs_on = spec.obs.enabled() || extra_sink != nullptr;
  if (extra_sink != nullptr) tracer.add_sink(extra_sink);
  if (obs_on) {
    std::vector<std::string> flow_names;
    for (const FlowSpec& f : spec.flows) flow_names.push_back(f.name);
    if (!spec.obs.trace_jsonl.empty()) {
      auto jsonl = std::make_unique<obs::JsonlSink>(spec.obs.trace_jsonl);
      jsonl->meta("scheduler", spec.scheduler);
      for (std::size_t i = 0; i < spec.flows.size(); ++i)
        jsonl->meta("flow." + std::to_string(ids[i]), spec.flows[i].name);
      tracer.own(std::move(jsonl));
    }
    if (spec.obs.check_invariants) {
      auto copts = obs::InvariantChecker::for_scheduler(spec.scheduler);
      // The wheel serves start tags only up to one quantization window out
      // of order; everything else (vtime, per-flow chains) stays exact.
      copts.order_slack = qwindow;
      auto c = std::make_unique<obs::InvariantChecker>(copts);
      checker = c.get();
      tracer.own(std::move(c));
    }
    if (spec.obs.metrics_enabled()) {
      tracer.own(std::make_unique<obs::MetricsSink>(metrics, flow_names));
      sim.set_metrics(&metrics);
    }
    if (multi_hop) tandem->server(0).set_tracer(&tracer);
    else single_server->set_tracer(&tracer);
  }

  auto emit = [&](Packet p) { inject(std::move(p)); };
  std::vector<std::unique_ptr<traffic::Source>> sources;
  for (std::size_t i = 0; i < spec.flows.size(); ++i) {
    const FlowSpec& f = spec.flows[i];
    const FlowId id = ids[i];
    if (f.kind == "cbr") {
      sources.push_back(std::make_unique<traffic::CbrSource>(
          sim, id, emit, f.rate, f.packet));
    } else if (f.kind == "greedy") {
      const double offered = f.rate > 0.0 ? f.rate : 2.0 * f.weight;
      sources.push_back(std::make_unique<traffic::CbrSource>(
          sim, id, emit, offered, f.packet));
    } else if (f.kind == "poisson") {
      sources.push_back(std::make_unique<traffic::PoissonSource>(
          sim, id, emit, f.rate, f.packet, f.seed));
    } else if (f.kind == "onoff") {
      sources.push_back(std::make_unique<traffic::OnOffSource>(
          sim, id, emit, f.rate, f.packet, f.mean_on, f.mean_off, f.seed));
    } else {  // vbr
      traffic::MpegVbrSource::Params vp;
      vp.average_rate = f.rate;
      if (f.packet > 0.0) vp.packet_bits = f.packet;
      vp.seed = f.seed;
      sources.push_back(
          std::make_unique<traffic::MpegVbrSource>(sim, id, emit, vp));
    }
    const Time stop = f.stop < 0.0 ? spec.duration : f.stop;
    sources.back()->run(f.start, stop);
  }

  // Faults apply to the first (bottleneck-shared) hop. Armed after the
  // sources so churn events interleave with arrivals in a fixed order.
  std::unique_ptr<fault::FaultInjector> injector;
  if (spec.has_faults()) {
    fault::FaultPlan plan;
    plan.seed(spec.faults.seed);
    for (const LinkFaultSpec& lf : spec.faults.link)
      plan.degrade(lf.from, lf.until, lf.factor);
    for (const LossFaultSpec& ls : spec.faults.loss) {
      if (ls.corrupt) plan.corruption(ls.from, ls.until, ls.probability);
      else plan.loss(ls.from, ls.until, ls.probability);
    }
    for (std::size_t i = 0; i < spec.flows.size(); ++i) {
      if (spec.flows[i].leave >= 0.0)
        plan.flow_leave(spec.flows[i].leave, ids[i]);
      if (spec.flows[i].rejoin >= 0.0)
        plan.flow_join(spec.flows[i].rejoin, ids[i]);
    }
    net::ScheduledServer& first_server =
        multi_hop ? tandem->server(0) : *single_server;
    injector = std::make_unique<fault::FaultInjector>(sim, first_server,
                                                      std::move(plan));
    injector->arm();
  }

  sim.run_until(spec.duration);
  recorder->finish(sim.now());
  if (multi_hop) tandem->finish_recording();

  ExperimentResult result;
  if (obs_on) {
    tracer.finish();
    result.trace_events = tracer.emitted();
    if (checker) {
      result.invariant_violations = checker->violation_count();
      result.invariant_report = checker->report();
    }
    if (spec.obs.metrics_enabled()) {
      result.metrics_json = metrics.json();
      auto write_to = [&](const std::string& target, bool as_json) {
        if (target.empty()) return;
        if (target == "-") {
          if (as_json) {
            std::cout << result.metrics_json << "\n";
          } else {
            metrics.dump_text(std::cout);
          }
          return;
        }
        std::ofstream out(target);
        if (!out)
          throw std::runtime_error("cannot open metrics file: " + target);
        if (as_json) out << result.metrics_json << "\n";
        else metrics.dump_text(out);
      };
      write_to(spec.obs.metrics_json, /*as_json=*/true);
      write_to(spec.obs.metrics_text, /*as_json=*/false);
    }
  }
  if (!multi_hop) {
    drops = single_server->drops();
  } else {
    for (std::size_t i = 0; i < spec.hops.size(); ++i)
      drops += tandem->server(i).drops();
  }
  result.drops = drops;
  for (std::size_t c = 1; c < obs::kDropCauseCount; ++c) {
    const auto cause = static_cast<obs::DropCause>(c);
    uint64_t n = 0;
    if (!multi_hop) {
      n = single_server->drops(cause);
    } else {
      for (std::size_t i = 0; i < spec.hops.size(); ++i)
        n += tandem->server(i).drops(cause);
    }
    if (n) result.drop_causes.emplace_back(obs::to_string(cause), n);
  }

  // Throughput / counts come from the *last* scheduling point for a tandem
  // (what actually left the path) and the single server otherwise.
  stats::ServiceRecorder* tail_rec =
      multi_hop ? &tandem->recorder(spec.hops.size() - 1) : recorder;
  for (std::size_t i = 0; i < spec.flows.size(); ++i) {
    FlowResult fr;
    fr.name = spec.flows[i].name;
    fr.packets_delivered = tail_rec->served_packets(ids[i]);
    fr.throughput = tail_rec->served_bits(ids[i]) / spec.duration;
    fr.mean_delay = delays.mean(ids[i]);
    fr.max_delay = delays.max(ids[i]);
    fr.p99_delay = delays.percentile(ids[i], 99.0);
    result.flows.push_back(std::move(fr));
  }
  // Fairness evaluated at the first (usually bottleneck-shared) hop.
  for (std::size_t i = 0; i < ids.size(); ++i) {
    for (std::size_t j = i + 1; j < ids.size(); ++j) {
      const double h = stats::empirical_fairness(
          *recorder, ids[i], spec.flows[i].weight, ids[j],
          spec.flows[j].weight);
      // Theorem-1 bound, plus the derived 2*quantum quantization slack when
      // the wheel core ran (docs/PERFORMANCE.md, "Quantization slack").
      const double bound = stats::sfq_fairness_bound(
                               std::max(spec.flows[i].packet, 1.0),
                               spec.flows[i].weight,
                               std::max(spec.flows[j].packet, 1.0),
                               spec.flows[j].weight) +
                           2.0 * qwindow;
      result.worst_fairness_ratio =
          std::max(result.worst_fairness_ratio, h / bound);
    }
  }
  result.quantization_window = qwindow;
  return result;
}

}  // namespace sfq::config
