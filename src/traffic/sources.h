#pragma once

#include <functional>
#include <random>
#include <vector>

#include "core/packet.h"
#include "sim/simulator.h"

namespace sfq::traffic {

// Base of all open-loop sources: emits packets into a user-supplied sink
// (usually ScheduledServer::inject) between start() and the configured stop
// time. Each source owns its per-flow sequence numbering.
class Source : public sim::EventTarget {
 public:
  using EmitFn = std::function<void(Packet)>;

  Source(sim::Simulator& sim, FlowId flow, EmitFn emit)
      : sim_(sim), flow_(flow), emit_(std::move(emit)) {}
  virtual ~Source() = default;

  Source(const Source&) = delete;
  Source& operator=(const Source&) = delete;

  // Begin emitting at `at`, stop at `until` (packets scheduled strictly
  // before `until`).
  void run(Time at, Time until);

  FlowId flow() const { return flow_; }
  uint64_t emitted() const { return seq_; }

 protected:
  // Next emission after `now`; kTimeInfinity ends the source. `bits_out`
  // receives the size of the packet to send at that time.
  virtual Time next_emission(Time now, double& bits_out) = 0;

  // Time of the first emission once run(at, ...) is called; defaults to the
  // regular recurrence. CBR overrides this so its first packet leaves at
  // exactly `at`.
  virtual Time first_emission(Time at, double& bits_out) {
    return next_emission(at, bits_out);
  }

  void emit_packet(double bits);
  sim::Simulator& sim() { return sim_; }

 private:
  void on_event(sim::Event& ev, Time now) override;
  void tick(Time scheduled, double bits);
  void schedule_tick(Time when, double bits);

  sim::Simulator& sim_;
  FlowId flow_;
  EmitFn emit_;
  uint64_t seq_ = 0;
  Time until_ = 0.0;
};

// Constant bit rate: fixed-size packets at fixed spacing.
class CbrSource final : public Source {
 public:
  CbrSource(sim::Simulator& sim, FlowId flow, EmitFn emit, double rate,
            double packet_bits)
      : Source(sim, flow, std::move(emit)),
        interval_(packet_bits / rate),
        packet_bits_(packet_bits) {}

 protected:
  Time next_emission(Time now, double& bits_out) override {
    bits_out = packet_bits_;
    return now + interval_;
  }
  Time first_emission(Time at, double& bits_out) override {
    bits_out = packet_bits_;
    return at;
  }

 private:
  Time interval_;
  double packet_bits_;
};

// Poisson arrivals of fixed-size packets with the given average rate.
class PoissonSource final : public Source {
 public:
  PoissonSource(sim::Simulator& sim, FlowId flow, EmitFn emit, double rate,
                double packet_bits, uint64_t seed)
      : Source(sim, flow, std::move(emit)),
        packet_bits_(packet_bits),
        rng_(seed),
        gap_(rate / packet_bits) {}

 protected:
  Time next_emission(Time now, double& bits_out) override {
    bits_out = packet_bits_;
    return now + gap_(rng_);
  }

 private:
  double packet_bits_;
  std::mt19937_64 rng_;
  std::exponential_distribution<double> gap_;
};

// Markov on-off source: exponential ON periods emitting CBR at `peak_rate`,
// exponential OFF periods silent.
class OnOffSource final : public Source {
 public:
  OnOffSource(sim::Simulator& sim, FlowId flow, EmitFn emit, double peak_rate,
              double packet_bits, Time mean_on, Time mean_off, uint64_t seed)
      : Source(sim, flow, std::move(emit)),
        interval_(packet_bits / peak_rate),
        packet_bits_(packet_bits),
        rng_(seed),
        on_dist_(1.0 / mean_on),
        off_dist_(1.0 / mean_off) {}

 protected:
  Time next_emission(Time now, double& bits_out) override;

 private:
  Time interval_;
  double packet_bits_;
  std::mt19937_64 rng_;
  std::exponential_distribution<double> on_dist_;
  std::exponential_distribution<double> off_dist_;
  Time on_until_ = -1.0;  // <0: need to draw a new ON period
};

// Replays an explicit (time, bits) list — used by the unit tests that build
// the paper's Example 1 / Example 2 arrival patterns exactly.
class TraceSource final : public Source {
 public:
  struct Item {
    Time t;
    double bits;
  };
  TraceSource(sim::Simulator& sim, FlowId flow, EmitFn emit,
              std::vector<Item> items)
      : Source(sim, flow, std::move(emit)), items_(std::move(items)) {}

 protected:
  Time next_emission(Time now, double& bits_out) override {
    (void)now;
    if (next_ >= items_.size()) return kTimeInfinity;
    bits_out = items_[next_].bits;
    return items_[next_++].t;
  }

 private:
  std::vector<Item> items_;
  std::size_t next_ = 0;
};

}  // namespace sfq::traffic
