#pragma once

#include <deque>
#include <functional>

#include "core/packet.h"
#include "sim/simulator.h"

namespace sfq::traffic {

// (sigma, rho) leaky-bucket shaper: delays packets until they conform, so the
// output satisfies  A(t1,t2) <= sigma + rho (t2 - t1)  for all intervals.
// Used to build the residual-capacity construction of §2.3 (shaped
// high-priority traffic => residual server is FC(C - rho, sigma)) and the
// leaky-bucket end-to-end delay bound of Appendix A.5.
class LeakyBucketShaper {
 public:
  using EmitFn = std::function<void(Packet)>;

  LeakyBucketShaper(sim::Simulator& sim, double sigma, double rho, EmitFn out);

  void inject(Packet p);

  // Tokens currently in the bucket (bits).
  double tokens(Time now) const;

 private:
  void drain();

  sim::Simulator& sim_;
  double sigma_;
  double rho_;
  EmitFn out_;
  std::deque<Packet> q_;
  double tokens_ = 0.0;
  Time last_fill_ = 0.0;
  bool drain_pending_ = false;
};

// Pure conformance checker: feeds observations, answers whether the stream
// conformed to (sigma, rho). Used by property tests.
class LeakyBucketMeter {
 public:
  LeakyBucketMeter(double sigma, double rho) : sigma_(sigma), rho_(rho) {
    tokens_ = sigma;
  }

  // Returns false if this arrival violates the bucket.
  bool observe(Time t, double bits);

 private:
  double sigma_;
  double rho_;
  double tokens_;
  Time last_ = 0.0;
  bool any_ = false;
};

}  // namespace sfq::traffic
