#include "traffic/vbr_video.h"

#include <cmath>
#include <stdexcept>

namespace sfq::traffic {

namespace {
double type_ratio(char type) {
  switch (type) {
    case 'I': return 5.0;
    case 'P': return 2.0;
    case 'B': return 1.0;
    default: throw std::invalid_argument("MpegVbrSource: bad GoP symbol");
  }
}
}  // namespace

MpegVbrSource::MpegVbrSource(sim::Simulator& sim, FlowId flow, EmitFn emit,
                             const Params& params)
    : Source(sim, flow, std::move(emit)),
      p_(params),
      rng_(params.seed),
      gauss_(0.0, 1.0) {
  if (p_.gop.empty()) throw std::invalid_argument("MpegVbrSource: empty GoP");
  double ratio_sum = 0.0;
  for (char c : p_.gop) ratio_sum += type_ratio(c);
  const double gop_bits =
      p_.average_rate * static_cast<double>(p_.gop.size()) / p_.fps;
  i_mean_ = type_ratio('I') * gop_bits / ratio_sum;
}

double MpegVbrSource::mean_frame_bits(char type) const {
  return i_mean_ * type_ratio(type) / type_ratio('I');
}

double MpegVbrSource::draw_frame_bits(char type) {
  const double mean = mean_frame_bits(type);
  const double s = p_.sigma_log;
  // Lognormal with the requested mean: E[e^{sZ - s^2/2}] = 1.
  const double size = mean * std::exp(s * gauss_(rng_) - 0.5 * s * s);
  return std::max(size, p_.packet_bits);
}

void MpegVbrSource::packetize(double frame_bits) {
  pending_.clear();
  pending_pos_ = 0;
  double rest = frame_bits;
  while (rest > 1e-9) {
    const double chunk = rest >= p_.packet_bits ? p_.packet_bits : rest;
    pending_.push_back(chunk);
    rest -= chunk;
  }
}

Time MpegVbrSource::first_emission(Time at, double& bits_out) {
  next_frame_ = at;
  gop_pos_ = 0;
  return next_emission(at, bits_out);
}

Time MpegVbrSource::next_emission(Time now, double& bits_out) {
  if (pending_pos_ < pending_.size()) {
    bits_out = pending_[pending_pos_++];
    return now;  // back-to-back within the frame burst
  }
  const char type = p_.gop[gop_pos_ % p_.gop.size()];
  ++gop_pos_;
  packetize(draw_frame_bits(type));
  const Time t = next_frame_;
  next_frame_ += 1.0 / p_.fps;
  bits_out = pending_[pending_pos_++];
  return t;
}

}  // namespace sfq::traffic
