#pragma once

#include <vector>

#include "core/packet.h"
#include "stats/delay_stats.h"
#include "stats/time_series.h"

namespace sfq::traffic {

// Terminal measurement point: counts deliveries per flow, accumulates
// end-to-end delays (departure - source emission) and per-server delays
// (departure - arrival at the last server), and optionally logs a
// sequence-number time series (Figure 1(b) style).
class PacketSink {
 public:
  explicit PacketSink(Time series_bucket = 0.0)
      : series_(series_bucket > 0.0 ? series_bucket : 1.0),
        series_enabled_(series_bucket > 0.0) {}

  void deliver(const Packet& p, Time t);

  uint64_t packets(FlowId f) const;
  double bits(FlowId f) const;
  const stats::DelayStats& delays() const { return delays_; }
  const stats::TimeSeries& series() const { return series_; }

 private:
  void ensure(FlowId f);

  std::vector<uint64_t> count_;
  std::vector<double> bits_;
  stats::DelayStats delays_;
  stats::TimeSeries series_;
  bool series_enabled_;
};

}  // namespace sfq::traffic
