#include "traffic/trace_io.h"

#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "core/types.h"

namespace sfq::traffic {

namespace {

bool blank_or_comment(const std::string& line) {
  for (char c : line) {
    if (c == '#') return true;
    if (!std::isspace(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

}  // namespace

std::vector<TraceSource::Item> load_trace_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_trace_csv: cannot open " + path);
  std::vector<TraceSource::Item> items;
  std::string line;
  std::size_t lineno = 0;
  Time last = -kTimeInfinity;
  while (std::getline(in, line)) {
    ++lineno;
    if (blank_or_comment(line)) continue;
    std::istringstream ss(line);
    double t = 0.0, bytes_len = 0.0;
    char comma = 0;
    if (!(ss >> t >> comma >> bytes_len) || comma != ',')
      throw std::runtime_error("load_trace_csv: bad line " +
                               std::to_string(lineno) + " in " + path);
    if (t < last)
      throw std::runtime_error("load_trace_csv: timestamps must be "
                               "non-decreasing (line " +
                               std::to_string(lineno) + ")");
    if (bytes_len <= 0.0)
      throw std::runtime_error("load_trace_csv: non-positive length (line " +
                               std::to_string(lineno) + ")");
    last = t;
    items.push_back(TraceSource::Item{t, bytes(bytes_len)});
  }
  return items;
}

void save_trace_csv(const std::vector<TraceSource::Item>& items,
                    const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_trace_csv: cannot open " + path);
  out << "# time_seconds,length_bytes\n";
  for (const auto& it : items)
    out << it.t << ',' << it.bits / 8.0 << '\n';
  if (!out) throw std::runtime_error("save_trace_csv: write failed: " + path);
}

void save_transmissions_csv(const stats::ServiceRecorder& recorder,
                            const std::string& path) {
  std::ofstream out(path);
  if (!out)
    throw std::runtime_error("save_transmissions_csv: cannot open " + path);
  out << "# flow,length_bits,arrival,start,end\n";
  for (const auto& tx : recorder.transmissions())
    out << tx.flow << ',' << tx.bits << ',' << tx.arrival << ',' << tx.start
        << ',' << tx.end << '\n';
  if (!out)
    throw std::runtime_error("save_transmissions_csv: write failed: " + path);
}

}  // namespace sfq::traffic
