#pragma once

#include <functional>
#include <map>
#include <set>

#include "core/packet.h"
#include "sim/simulator.h"

namespace sfq::traffic {

// Simplified TCP Reno sender: slow start, congestion avoidance, triple-dupack
// fast retransmit, NewReno-style partial-ack retransmission while recovering
// a multi-loss window, retransmission timeout with exponential backoff, and a
// receiver-window cap. Fixed-size segments.
//
// This is the closed-loop, ack-clocked source the Figure-1 experiment needs:
// it keeps a standing queue at the bottleneck (window > BDP), so WFQ's stale
// virtual time lets the early flow lock out the late one, while SFQ splits
// the residual capacity evenly.
//
// Wiring is explicit at the experiment level: `send` injects a data segment
// into the network; the receiving TcpRenoSink calls source.on_ack() (usually
// through a fixed-delay return path).
class TcpRenoSource {
 public:
  struct Params {
    double packet_bits = 1600.0;  // 200-byte segments (the paper's size)
    double max_window = 64.0;     // receiver window, segments
    double initial_ssthresh = 32.0;
    Time rto_initial = 0.5;
    Time rto_min = 0.2;
  };

  using SendFn = std::function<void(Packet)>;

  TcpRenoSource(sim::Simulator& sim, FlowId flow, Params params, SendFn send);

  // Opens the connection at `at`; data flows until stop() or forever.
  void start(Time at);
  void stop() { running_ = false; }

  // Cumulative ack: highest in-order segment received (1-based).
  void on_ack(uint64_t cum_seq);

  double cwnd() const { return cwnd_; }
  uint64_t sent() const { return next_seq_ - 1; }
  uint64_t retransmits() const { return retransmits_; }
  uint64_t timeouts() const { return timeouts_; }

 private:
  void try_send();
  void send_segment(uint64_t seq, bool retransmit);
  void arm_rto();
  void on_rto();

  sim::Simulator& sim_;
  FlowId flow_;
  Params p_;
  SendFn send_;

  bool running_ = false;
  uint64_t next_seq_ = 1;  // next new segment to send
  uint64_t snd_una_ = 1;   // lowest unacked segment
  double cwnd_ = 1.0;
  double ssthresh_;
  uint32_t dup_acks_ = 0;
  bool in_recovery_ = false;
  uint64_t recovery_point_ = 0;

  // RTT estimation (RFC 6298 style, coarse).
  std::map<uint64_t, Time> send_time_;  // first transmissions only
  Time srtt_ = 0.0;
  Time rttvar_ = 0.0;
  bool have_rtt_ = false;
  Time rto_;
  sim::EventId rto_event_ = sim::kInvalidEvent;
  uint64_t retransmits_ = 0;
  uint64_t timeouts_ = 0;
};

// Receiver: delivers cumulative acks, buffers out-of-order segments.
class TcpRenoSink {
 public:
  using AckFn = std::function<void(uint64_t cum_seq)>;

  explicit TcpRenoSink(AckFn ack) : ack_(std::move(ack)) {}

  void on_segment(const Packet& p);

  uint64_t received_in_order() const { return expected_ - 1; }

 private:
  AckFn ack_;
  uint64_t expected_ = 1;
  std::set<uint64_t> out_of_order_;
};

}  // namespace sfq::traffic
