#include "traffic/tcp_reno.h"

#include <algorithm>

namespace sfq::traffic {

TcpRenoSource::TcpRenoSource(sim::Simulator& sim, FlowId flow, Params params,
                             SendFn send)
    : sim_(sim),
      flow_(flow),
      p_(params),
      send_(std::move(send)),
      ssthresh_(params.initial_ssthresh),
      rto_(params.rto_initial) {}

void TcpRenoSource::start(Time at) {
  sim_.at(at, [this]() {
    running_ = true;
    try_send();
  });
}

void TcpRenoSource::send_segment(uint64_t seq, bool retransmit) {
  Packet p;
  p.flow = flow_;
  p.seq = seq;
  p.length_bits = p_.packet_bits;
  p.source_departure = sim_.now();
  if (!retransmit) {
    send_time_.emplace(seq, sim_.now());
  } else {
    ++retransmits_;
    send_time_.erase(seq);  // Karn's rule: no RTT sample from retransmits
  }
  send_(std::move(p));
}

void TcpRenoSource::try_send() {
  if (!running_) return;
  const double wnd = std::min(cwnd_, p_.max_window);
  while (static_cast<double>(next_seq_ - snd_una_) < wnd) {
    send_segment(next_seq_, /*retransmit=*/false);
    ++next_seq_;
  }
  if (next_seq_ > snd_una_ && rto_event_ == sim::kInvalidEvent) arm_rto();
}

void TcpRenoSource::arm_rto() {
  rto_event_ = sim_.after(rto_, [this]() {
    rto_event_ = sim::kInvalidEvent;
    on_rto();
  });
}

void TcpRenoSource::on_rto() {
  if (!running_ || snd_una_ >= next_seq_) return;
  ++timeouts_;
  ssthresh_ = std::max(cwnd_ / 2.0, 2.0);
  cwnd_ = 1.0;
  dup_acks_ = 0;
  // Everything in flight is suspect; recover the whole window via partial
  // acks (NewReno semantics) rather than one backed-off RTO per hole.
  in_recovery_ = true;
  recovery_point_ = next_seq_ - 1;
  rto_ = std::min(rto_ * 2.0, 60.0);
  send_segment(snd_una_, /*retransmit=*/true);
  arm_rto();
}

void TcpRenoSource::on_ack(uint64_t cum_seq) {
  if (!running_) return;
  if (cum_seq + 1 > snd_una_) {
    // New data acknowledged.
    const uint64_t newly = cum_seq + 1 - snd_una_;

    // RTT sample from the highest newly acked, first-transmission segment.
    auto it = send_time_.find(cum_seq);
    if (it != send_time_.end()) {
      const Time sample = sim_.now() - it->second;
      if (!have_rtt_) {
        srtt_ = sample;
        rttvar_ = sample / 2.0;
        have_rtt_ = true;
      } else {
        rttvar_ = 0.75 * rttvar_ + 0.25 * std::abs(srtt_ - sample);
        srtt_ = 0.875 * srtt_ + 0.125 * sample;
      }
      rto_ = std::max(p_.rto_min, srtt_ + 4.0 * rttvar_);
    }
    send_time_.erase(send_time_.begin(), send_time_.upper_bound(cum_seq));

    snd_una_ = cum_seq + 1;
    dup_acks_ = 0;
    if (in_recovery_) {
      if (snd_una_ > recovery_point_) {
        in_recovery_ = false;
        cwnd_ = ssthresh_;
      } else {
        // NewReno partial ack: the cumulative ack stopped at the next hole in
        // the loss window — retransmit it immediately instead of waiting out
        // one RTO per hole.
        send_segment(snd_una_, /*retransmit=*/true);
      }
    } else {
      if (cwnd_ < ssthresh_)
        cwnd_ += static_cast<double>(newly);  // slow start
      else
        cwnd_ += static_cast<double>(newly) / cwnd_;  // congestion avoidance
    }

    if (rto_event_ != sim::kInvalidEvent) {
      sim_.cancel(rto_event_);
      rto_event_ = sim::kInvalidEvent;
    }
    if (next_seq_ > snd_una_) arm_rto();
    try_send();
    return;
  }

  // Duplicate ack.
  ++dup_acks_;
  if (dup_acks_ == 3 && !in_recovery_ && snd_una_ < next_seq_) {
    in_recovery_ = true;
    recovery_point_ = next_seq_ - 1;
    ssthresh_ = std::max(cwnd_ / 2.0, 2.0);
    cwnd_ = ssthresh_;  // simplified Reno (no window inflation)
    send_segment(snd_una_, /*retransmit=*/true);
  }
}

void TcpRenoSink::on_segment(const Packet& p) {
  if (p.seq == expected_) {
    ++expected_;
    while (!out_of_order_.empty() && *out_of_order_.begin() == expected_) {
      out_of_order_.erase(out_of_order_.begin());
      ++expected_;
    }
  } else if (p.seq > expected_) {
    out_of_order_.insert(p.seq);
  }
  ack_(expected_ - 1);
}

}  // namespace sfq::traffic
