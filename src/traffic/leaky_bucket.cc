#include "traffic/leaky_bucket.h"

#include <algorithm>

namespace sfq::traffic {

LeakyBucketShaper::LeakyBucketShaper(sim::Simulator& sim, double sigma,
                                     double rho, EmitFn out)
    : sim_(sim), sigma_(sigma), rho_(rho), out_(std::move(out)) {
  tokens_ = sigma_;
  last_fill_ = 0.0;
}

double LeakyBucketShaper::tokens(Time now) const {
  return std::min(sigma_, tokens_ + rho_ * (now - last_fill_));
}

void LeakyBucketShaper::inject(Packet p) {
  q_.push_back(std::move(p));
  drain();
}

void LeakyBucketShaper::drain() {
  // Tolerance absorbs floating-point residue when a refill event lands
  // exactly at the conformance instant; without it the shaper can re-arm
  // itself at the same timestamp forever.
  constexpr double kTolBits = 1e-9;
  const Time now = sim_.now();
  tokens_ = std::min(sigma_, tokens_ + rho_ * (now - last_fill_));
  last_fill_ = now;

  while (!q_.empty() && q_.front().length_bits <= tokens_ + kTolBits) {
    Packet p = std::move(q_.front());
    q_.pop_front();
    tokens_ = std::max(0.0, tokens_ - p.length_bits);
    out_(std::move(p));
  }
  if (!q_.empty() && !drain_pending_) {
    const double need =
        std::max(q_.front().length_bits - tokens_, kTolBits);
    const Time when = now + need / rho_;
    drain_pending_ = true;
    sim_.at(when, [this]() {
      drain_pending_ = false;
      drain();
    });
  }
}

bool LeakyBucketMeter::observe(Time t, double bits) {
  if (any_) tokens_ = std::min(sigma_, tokens_ + rho_ * (t - last_));
  any_ = true;
  last_ = t;
  if (bits > tokens_ + 1e-9) return false;
  tokens_ -= bits;
  return true;
}

}  // namespace sfq::traffic
