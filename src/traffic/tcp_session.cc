#include "traffic/tcp_session.h"

namespace sfq::traffic {

TcpSessionGroup::TcpSessionGroup(sim::Simulator& sim,
                                 net::TandemNetwork& network)
    : sim_(sim), net_(network) {
  net_.set_delivery([this](const Packet& p, Time t) {
    auto it = sessions_.find(p.flow);
    if (it == sessions_.end()) {
      if (fallback_) fallback_(p, t);
      return;
    }
    Session& s = *it->second;
    ++s.delivered;
    s.sink->on_segment(p);
  });
}

FlowId TcpSessionGroup::add_session(double weight,
                                    const TcpRenoSource::Params& params,
                                    Time ack_delay, Time start,
                                    std::string name) {
  const FlowId id =
      net_.add_flow(weight, params.packet_bits, std::move(name));
  auto session = std::make_unique<Session>();
  Session* raw = session.get();
  session->ack_delay = ack_delay;
  session->sink = std::make_unique<TcpRenoSink>([this, raw](uint64_t cum) {
    sim_.after(raw->ack_delay, [raw, cum] { raw->source->on_ack(cum); });
  });
  session->source = std::make_unique<TcpRenoSource>(
      sim_, id, params, [this](Packet p) { net_.inject(std::move(p)); });
  session->source->start(start);
  sessions_.emplace(id, std::move(session));
  return id;
}

}  // namespace sfq::traffic
