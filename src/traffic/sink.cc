#include "traffic/sink.h"

namespace sfq::traffic {

void PacketSink::ensure(FlowId f) {
  if (f >= count_.size()) {
    count_.resize(f + 1, 0);
    bits_.resize(f + 1, 0.0);
  }
}

void PacketSink::deliver(const Packet& p, Time t) {
  ensure(p.flow);
  ++count_[p.flow];
  bits_[p.flow] += p.length_bits;
  delays_.add(p.flow, t - p.source_departure);
  if (series_enabled_) series_.add(p.flow, t, 1.0);
}

uint64_t PacketSink::packets(FlowId f) const {
  return f < count_.size() ? count_[f] : 0;
}

double PacketSink::bits(FlowId f) const {
  return f < bits_.size() ? bits_[f] : 0.0;
}

}  // namespace sfq::traffic
