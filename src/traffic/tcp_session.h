#pragma once

#include <map>
#include <memory>

#include "net/network.h"
#include "sim/simulator.h"
#include "traffic/tcp_reno.h"

namespace sfq::traffic {

// Wires any number of TCP Reno connections across a TandemNetwork: data
// segments traverse the network, acks return over a per-session fixed-delay
// reverse path (modelling an uncongested return direction). Owns the
// network's delivery callback and dispatches by flow id; non-TCP flows fall
// through to an optional fallback handler.
class TcpSessionGroup {
 public:
  using FallbackFn = std::function<void(const Packet&, Time)>;

  TcpSessionGroup(sim::Simulator& sim, net::TandemNetwork& network);

  // Registers the flow in the network (at every hop) and creates the
  // source/sink pair. The connection starts pushing data at `start`.
  FlowId add_session(double weight, const TcpRenoSource::Params& params,
                     Time ack_delay, Time start, std::string name = {});

  // Non-TCP deliveries are forwarded here.
  void set_fallback(FallbackFn fn) { fallback_ = std::move(fn); }

  TcpRenoSource& source(FlowId f) { return *sessions_.at(f)->source; }
  const TcpRenoSink& sink(FlowId f) const { return *sessions_.at(f)->sink; }
  uint64_t delivered(FlowId f) const { return sessions_.at(f)->delivered; }

 private:
  struct Session {
    std::unique_ptr<TcpRenoSource> source;
    std::unique_ptr<TcpRenoSink> sink;
    Time ack_delay = 0.0;
    uint64_t delivered = 0;
  };

  sim::Simulator& sim_;
  net::TandemNetwork& net_;
  std::map<FlowId, std::unique_ptr<Session>> sessions_;
  FallbackFn fallback_;
};

}  // namespace sfq::traffic
