#include "traffic/sources.h"

namespace sfq::traffic {

void Source::run(Time at, Time until) {
  until_ = until;
  double bits = 0.0;
  const Time first = first_emission(at, bits);
  if (first >= until_ || first == kTimeInfinity) return;
  schedule_tick(first, bits);
}

void Source::schedule_tick(Time when, double bits) {
  sim_.at_tick(when, this, bits);
}

void Source::on_event(sim::Event& ev, Time now) {
  if (ev.op != sim::EventOp::kSourceTick) return;
  tick(now, ev.bits);
}

void Source::emit_packet(double bits) {
  Packet p;
  p.flow = flow_;
  p.seq = ++seq_;
  p.length_bits = bits;
  p.source_departure = sim_.now();
  emit_(std::move(p));
}

void Source::tick(Time scheduled, double bits) {
  emit_packet(bits);
  double next_bits = 0.0;
  const Time next = next_emission(scheduled, next_bits);
  if (next >= until_ || next == kTimeInfinity) return;
  schedule_tick(next, next_bits);
}

Time OnOffSource::next_emission(Time now, double& bits_out) {
  bits_out = packet_bits_;
  if (on_until_ < 0.0) {
    // Fresh ON period starting now.
    on_until_ = now + on_dist_(rng_);
  }
  Time t = now + interval_;
  if (t <= on_until_) return t;
  // ON period exhausted: jump over the OFF period, start a new ON burst.
  const Time off = off_dist_(rng_);
  const Time start = on_until_ + off;
  on_until_ = start + on_dist_(rng_);
  return start;
}

}  // namespace sfq::traffic
