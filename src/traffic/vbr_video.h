#pragma once

#include <random>
#include <string>
#include <vector>

#include "traffic/sources.h"

namespace sfq::traffic {

// Synthetic MPEG VBR video source (substitute for the paper's digitized
// "Frasier" trace — see DESIGN.md substitutions).
//
// Frames arrive on a fixed clock (default 30 fps) following a GoP pattern
// (default IBBPBBPBBPBB). Frame sizes are lognormal with per-type means in
// the classic MPEG-1 ratio I:P:B ~ 5:2:1, scaled so the long-run average
// matches `average_rate`. Each frame is packetized into `packet_bits` units
// emitted back-to-back at the frame instant, giving the bursty,
// multi-time-scale load the experiment needs.
class MpegVbrSource final : public Source {
 public:
  struct Params {
    double average_rate = 1.21e6;   // bits/s, matches the paper's clip
    double packet_bits = 400.0;     // 50-byte packets
    double fps = 30.0;
    std::string gop = "IBBPBBPBBPBB";
    double sigma_log = 0.3;         // lognormal shape (size variability)
    uint64_t seed = 42;
  };

  MpegVbrSource(sim::Simulator& sim, FlowId flow, EmitFn emit,
                const Params& params);

  // Mean size (bits) of a frame of the given type after calibration.
  double mean_frame_bits(char type) const;

 protected:
  Time next_emission(Time now, double& bits_out) override;
  Time first_emission(Time at, double& bits_out) override;

 private:
  double draw_frame_bits(char type);
  void packetize(double frame_bits);

  Params p_;
  std::mt19937_64 rng_;
  std::normal_distribution<double> gauss_;
  double i_mean_ = 0.0;  // calibrated mean I-frame size (bits)
  std::size_t gop_pos_ = 0;
  Time next_frame_ = 0.0;
  std::vector<double> pending_;   // packets of the current frame (bits)
  std::size_t pending_pos_ = 0;
};

}  // namespace sfq::traffic
