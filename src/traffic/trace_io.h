#pragma once

#include <string>
#include <vector>

#include "stats/service_recorder.h"
#include "traffic/sources.h"

namespace sfq::traffic {

// CSV trace import/export, so experiments can be driven by external packet
// traces and their results post-processed outside the simulator.
//
// Trace format (one packet per line, '#' comments and blank lines ignored):
//   time_seconds,length_bytes
//
// Transmission-log format written by save_transmissions_csv:
//   flow,length_bits,arrival,start,end

// Loads a packet trace; throws std::runtime_error on unreadable files or
// malformed lines, and requires non-decreasing timestamps.
std::vector<TraceSource::Item> load_trace_csv(const std::string& path);

void save_trace_csv(const std::vector<TraceSource::Item>& items,
                    const std::string& path);

void save_transmissions_csv(const stats::ServiceRecorder& recorder,
                            const std::string& path);

}  // namespace sfq::traffic
