#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <utility>

#include "core/packet.h"

namespace sfq::net {

// Splits packets into MTU-sized fragments at a network ingress. The paper's
// §2.4 notes that the Theorem-6/Corollary-1 proof method extends to networks
// that fragment and reassemble; this pair of helpers provides the mechanism
// so the property can be exercised (see tests/test_fragmentation.cc).
//
// Fragments inherit the original flow and seq; frag_index/frag_count encode
// the position. Every fragment of an original packet carries an equal share
// of any per-packet rate assignment.
class Fragmenter {
 public:
  using EmitFn = std::function<void(Packet)>;

  Fragmenter(double mtu_bits, EmitFn out);

  void inject(Packet p);

  double mtu_bits() const { return mtu_; }
  uint64_t fragments_emitted() const { return emitted_; }

 private:
  double mtu_;
  EmitFn out_;
  uint64_t emitted_ = 0;
};

// Rebuilds original packets at the egress: delivers once all fragments of a
// (flow, seq) pair have arrived. Tolerates out-of-order fragment arrival.
class Reassembler {
 public:
  using DeliverFn = std::function<void(Packet, Time)>;

  explicit Reassembler(DeliverFn out) : out_(std::move(out)) {}

  void on_fragment(const Packet& fragment, Time now);

  std::size_t pending() const { return partial_.size(); }

 private:
  struct Partial {
    uint32_t received = 0;
    double bits = 0.0;
    Packet prototype;  // first fragment seen, carries flow/seq metadata
  };

  DeliverFn out_;
  std::map<std::pair<FlowId, uint64_t>, Partial> partial_;
};

}  // namespace sfq::net
