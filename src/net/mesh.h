#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/scheduler.h"
#include "net/rate_profile.h"
#include "net/scheduled_server.h"
#include "sim/simulator.h"
#include "stats/service_recorder.h"

namespace sfq::net {

// A general packet-switched topology: nodes connected by unidirectional
// links, each link an independent scheduled server; flows follow explicit
// routes (link sequences). Unlike TandemNetwork, different flows can share
// only parts of a path, so each hop sees a different flow set — the setting
// in which the per-hop sums of Theorem 4 and the Corollary-1 composition
// genuinely differ per flow.
//
// Flow ids are global; each link's scheduler keeps its own dense local ids
// and the mesh translates on the way through. Statistics (recorders) are
// per link, in local-id space, with accessors to translate.
class MeshNetwork {
 public:
  using NodeId = uint32_t;
  using LinkId = uint32_t;
  using DeliveryFn = std::function<void(const Packet&, Time)>;

  explicit MeshNetwork(sim::Simulator& sim) : sim_(sim) {}

  MeshNetwork(const MeshNetwork&) = delete;
  MeshNetwork& operator=(const MeshNetwork&) = delete;

  NodeId add_node(std::string name = {});

  // A unidirectional link from -> to with its own discipline and rate.
  LinkId add_link(NodeId from, NodeId to, std::unique_ptr<Scheduler> sched,
                  std::unique_ptr<RateProfile> profile,
                  Time propagation = 0.0);

  // Registers a flow along `route` (consecutive links must share a node).
  FlowId add_flow(const std::vector<LinkId>& route, double weight,
                  double max_packet_bits = 0.0, std::string name = {});

  // Injects at the route's first link. Stamps arrival per hop internally.
  void inject(FlowId flow, Packet p);

  void set_delivery(DeliveryFn fn) { delivery_ = std::move(fn); }

  Scheduler& link_scheduler(LinkId l) { return *links_.at(l)->sched; }
  stats::ServiceRecorder& link_recorder(LinkId l) {
    return *links_.at(l)->recorder;
  }
  // Local id of `flow` at hop `hop_index` of its route (for recorder lookups).
  FlowId local_id(FlowId flow, std::size_t hop_index) const {
    return flows_.at(flow).local_ids.at(hop_index);
  }
  const std::vector<LinkId>& route(FlowId flow) const {
    return flows_.at(flow).route;
  }
  std::size_t link_count() const { return links_.size(); }
  void finish_recording();

 private:
  struct Link {
    NodeId from = 0, to = 0;
    Time propagation = 0.0;
    std::unique_ptr<Scheduler> sched;
    std::unique_ptr<stats::ServiceRecorder> recorder;
    std::unique_ptr<ScheduledServer> server;
    std::vector<FlowId> local_to_global;
  };
  struct Flow {
    std::vector<LinkId> route;
    std::vector<FlowId> local_ids;  // one per hop
    std::string name;
  };

  void on_link_departure(LinkId l, const Packet& p, Time t);

  sim::Simulator& sim_;
  std::vector<std::string> nodes_;
  std::vector<std::unique_ptr<Link>> links_;
  std::vector<Flow> flows_;
  DeliveryFn delivery_;
};

}  // namespace sfq::net
