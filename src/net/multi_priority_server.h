#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/scheduler.h"
#include "net/rate_profile.h"
#include "sim/simulator.h"
#include "stats/service_recorder.h"

namespace sfq::net {

// A link shared by N strict-priority bands, each with its own queueing
// discipline; band 0 always wins, non-preemptively. Generalizes
// PriorityServer (§2.3's two-level construction): band k sees the residual
// capacity left by bands 0..k-1, so if those are leaky-bucket bounded with
// aggregate (sigma, rho), band k's virtual server is FC(C - rho, sigma) and
// all the paper's theorems apply per band.
class MultiPriorityServer : public sim::EventTarget {
 public:
  using DepartureFn = std::function<void(std::size_t band, const Packet&,
                                         Time departure)>;

  MultiPriorityServer(sim::Simulator& sim,
                      std::vector<std::unique_ptr<Scheduler>> bands,
                      std::unique_ptr<RateProfile> profile);

  MultiPriorityServer(const MultiPriorityServer&) = delete;
  MultiPriorityServer& operator=(const MultiPriorityServer&) = delete;

  // Packet arrival into band `band` (0 = highest priority). Flow ids are
  // local to the band's scheduler.
  void inject(std::size_t band, Packet p);

  void set_departure(DepartureFn fn) { on_departure_ = std::move(fn); }
  void set_recorder(std::size_t band, stats::ServiceRecorder* rec);

  Scheduler& band(std::size_t i) { return *bands_.at(i); }
  std::size_t band_count() const { return bands_.size(); }
  bool busy() const { return busy_; }

 private:
  void on_event(sim::Event& ev, Time now) override;  // aux = band
  void try_start();

  sim::Simulator& sim_;
  std::vector<std::unique_ptr<Scheduler>> bands_;
  std::vector<stats::ServiceRecorder*> recorders_;
  std::unique_ptr<RateProfile> profile_;
  DepartureFn on_departure_;
  bool busy_ = false;
};

}  // namespace sfq::net
