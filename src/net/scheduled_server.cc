#include "net/scheduled_server.h"

#include <utility>
#include <vector>

namespace sfq::net {

ScheduledServer::ScheduledServer(sim::Simulator& sim, Scheduler& sched,
                                 std::unique_ptr<RateProfile> profile)
    : sim_(sim), sched_(sched), profile_(std::move(profile)) {}

bool ScheduledServer::drop(Packet&& p, Time now, obs::DropCause cause) {
  ++drops_;
  ++cause_drops_[static_cast<std::size_t>(cause)];
  if (trace_on_) [[unlikely]]
    tracer_->emit(obs::make_event(obs::TraceEventType::kDrop, p, now,
                                  /*vtime=*/0.0, sched_.backlog_packets(),
                                  cause));
  if (on_drop_) on_drop_(p, now);
  return false;
}

FlowId ScheduledServer::longest_queue() const {
  FlowId best = kInvalidFlow;
  double best_bits = 0.0;
  const std::size_t n = sched_.flows().size();
  for (FlowId f = 0; f < n; ++f) {
    const double b = sched_.backlog_bits(f);
    if (b > best_bits) {  // strict: ties resolve to the lowest flow id
      best_bits = b;
      best = f;
    }
  }
  return best;
}

std::size_t ScheduledServer::remove_flow(FlowId f) {
  const Time now = sim_.now();
  std::vector<Packet> flushed = sched_.remove_flow(f, now);
  for (Packet& p : flushed) drop(std::move(p), now, obs::DropCause::kFlowRemoved);
  if (link_stats_) link_stats_->on_queue_sample(now, sched_.backlog_packets());
  return flushed.size();
}

void ScheduledServer::rejoin_flow(FlowId f) {
  sched_.rejoin_flow(f, sim_.now());
}

bool ScheduledServer::inject(Packet p) {
  const Time now = sim_.now();
  if (fault_filter_) {
    if (auto cause = fault_filter_(p, now))
      return drop(std::move(p), now, *cause);
  }
  const FlowTable& table = sched_.flows();
  const bool registered = p.flow < table.size();
  // A registered-but-removed flow drops here whatever the discipline; an
  // unregistered id drops only when the discipline insists on registration.
  if (registered ? !table.active(p.flow) : sched_.requires_registered_flows())
    return drop(std::move(p), now, obs::DropCause::kUnknownFlow);
  if (buffer_limit_ != 0 && sched_.backlog_packets() >= buffer_limit_) {
    bool made_room = false;
    if (overload_policy_ == OverloadPolicy::kPushout) {
      const FlowId victim = longest_queue();
      if (victim != kInvalidFlow) {
        if (std::optional<Packet> evicted = sched_.pushout(victim, now)) {
          drop(std::move(*evicted), now, obs::DropCause::kPushout);
          made_room = true;
        }
      }
    }
    if (!made_room)
      return drop(std::move(p), now, obs::DropCause::kBufferLimit);
  }
  p.arrival = now;
  const FlowId flow = p.flow;
  const uint64_t seq = p.seq;
  const double bits = p.length_bits;
  if (!sched_.enqueue(std::move(p), now)) {
    // The discipline itself refused the packet (its admit gate already
    // counted and traced the drop); mirror it in the server counters.
    ++drops_;
    ++cause_drops_[static_cast<std::size_t>(obs::DropCause::kUnknownFlow)];
    return false;
  }
  if (recorder_) recorder_->on_arrival(flow, now);
  if (trace_on_) [[unlikely]] {
    // The scheduler's kTag event carries the tag detail; this one marks
    // server acceptance (post-enqueue backlog).
    obs::TraceEvent e;
    e.type = obs::TraceEventType::kEnqueue;
    e.flow = flow;
    e.seq = seq;
    e.length_bits = bits;
    e.t = now;
    e.arrival = now;
    e.backlog = sched_.backlog_packets();
    tracer_->emit(e);
  }
  if (link_stats_) link_stats_->on_queue_sample(now, sched_.backlog_packets());
  try_start();
  return true;
}

void ScheduledServer::try_start() {
  if (busy_) return;
  const Time now = sim_.now();
  std::optional<Packet> next = sched_.dequeue(now);
  if (!next) return;
  busy_ = true;
  if (link_stats_) {
    link_stats_->on_transmit_start(now);
    link_stats_->on_queue_sample(now, sched_.backlog_packets());
  }
  const Time finish = profile_->finish_time(now, next->length_bits);
  if (trace_on_) [[unlikely]]
    tracer_->emit(obs::make_event(obs::TraceEventType::kTxStart, *next, now,
                                  /*vtime=*/0.0, sched_.backlog_packets()));
  // The in-flight packet rides in the typed completion event (the event
  // queue's slab); schedulers keep no reference to in-flight packets.
  sim_.at_packet(finish, sim::EventOp::kServiceComplete, this, *next,
                 /*t0=*/now);
}

void ScheduledServer::complete_transmission(const Packet& p, Time start,
                                            Time finish) {
  busy_ = false;
  if (link_stats_) link_stats_->on_transmit_end(finish);
  sched_.on_transmit_complete(p, finish);
  if (trace_on_) [[unlikely]]
    tracer_->emit(obs::make_event(obs::TraceEventType::kTxEnd, p, finish,
                                  /*vtime=*/0.0, sched_.backlog_packets()));
  if (recorder_)
    recorder_->on_service(p.flow, p.length_bits, p.arrival, start, finish);
  if (on_departure_) on_departure_(p, finish);
  try_start();
}

void ScheduledServer::on_event(sim::Event& ev, Time now) {
  switch (ev.op) {
    case sim::EventOp::kServiceComplete:
      complete_transmission(ev.packet, /*start=*/ev.t0, /*finish=*/now);
      break;
    case sim::EventOp::kArrival:
      inject(std::move(ev.packet));
      break;
    case sim::EventOp::kChurnLeave:
      remove_flow(ev.flow);
      break;
    case sim::EventOp::kChurnJoin:
      rejoin_flow(ev.flow);
      break;
    default:
      break;  // not a server op; ignore rather than crash the run
  }
}

}  // namespace sfq::net
