#include "net/scheduled_server.h"

#include <utility>

namespace sfq::net {

ScheduledServer::ScheduledServer(sim::Simulator& sim, Scheduler& sched,
                                 std::unique_ptr<RateProfile> profile)
    : sim_(sim), sched_(sched), profile_(std::move(profile)) {}

bool ScheduledServer::drop(Packet&& p, Time now, obs::DropCause cause) {
  ++drops_;
  if (cause == obs::DropCause::kBufferLimit) ++buffer_drops_;
  else if (cause == obs::DropCause::kUnknownFlow) ++unknown_flow_drops_;
  if (trace_on_) [[unlikely]]
    tracer_->emit(obs::make_event(obs::TraceEventType::kDrop, p, now,
                                  /*vtime=*/0.0, sched_.backlog_packets(),
                                  cause));
  if (on_drop_) on_drop_(p, now);
  return false;
}

bool ScheduledServer::inject(Packet p) {
  const Time now = sim_.now();
  if (sched_.requires_registered_flows() && p.flow >= sched_.flows().size())
    return drop(std::move(p), now, obs::DropCause::kUnknownFlow);
  if (buffer_limit_ != 0 && sched_.backlog_packets() >= buffer_limit_)
    return drop(std::move(p), now, obs::DropCause::kBufferLimit);
  p.arrival = now;
  if (recorder_) recorder_->on_arrival(p.flow, now);
  const FlowId flow = p.flow;
  const uint64_t seq = p.seq;
  const double bits = p.length_bits;
  sched_.enqueue(std::move(p), now);
  if (trace_on_) [[unlikely]] {
    // The scheduler's kTag event carries the tag detail; this one marks
    // server acceptance (post-enqueue backlog).
    obs::TraceEvent e;
    e.type = obs::TraceEventType::kEnqueue;
    e.flow = flow;
    e.seq = seq;
    e.length_bits = bits;
    e.t = now;
    e.arrival = now;
    e.backlog = sched_.backlog_packets();
    tracer_->emit(e);
  }
  if (link_stats_) link_stats_->on_queue_sample(now, sched_.backlog_packets());
  try_start();
  return true;
}

void ScheduledServer::try_start() {
  if (busy_) return;
  const Time now = sim_.now();
  std::optional<Packet> next = sched_.dequeue(now);
  if (!next) return;
  busy_ = true;
  if (link_stats_) {
    link_stats_->on_transmit_start(now);
    link_stats_->on_queue_sample(now, sched_.backlog_packets());
  }
  const Time finish = profile_->finish_time(now, next->length_bits);
  if (trace_on_) [[unlikely]]
    tracer_->emit(obs::make_event(obs::TraceEventType::kTxStart, *next, now,
                                  /*vtime=*/0.0, sched_.backlog_packets()));
  // The packet is captured by value in the completion event; schedulers keep
  // no reference to in-flight packets.
  sim_.at(finish, [this, p = *next, start = now, finish]() {
    busy_ = false;
    if (link_stats_) link_stats_->on_transmit_end(finish);
    sched_.on_transmit_complete(p, finish);
    if (trace_on_) [[unlikely]]
      tracer_->emit(obs::make_event(obs::TraceEventType::kTxEnd, p, finish,
                                    /*vtime=*/0.0, sched_.backlog_packets()));
    if (recorder_)
      recorder_->on_service(p.flow, p.length_bits, p.arrival, start, finish);
    if (on_departure_) on_departure_(p, finish);
    try_start();
  });
}

}  // namespace sfq::net
