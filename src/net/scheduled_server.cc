#include "net/scheduled_server.h"

#include <utility>

namespace sfq::net {

ScheduledServer::ScheduledServer(sim::Simulator& sim, Scheduler& sched,
                                 std::unique_ptr<RateProfile> profile)
    : sim_(sim), sched_(sched), profile_(std::move(profile)) {}

bool ScheduledServer::inject(Packet p) {
  const Time now = sim_.now();
  if (buffer_limit_ != 0 && sched_.backlog_packets() >= buffer_limit_) {
    ++drops_;
    if (on_drop_) on_drop_(p, now);
    return false;
  }
  p.arrival = now;
  if (recorder_) recorder_->on_arrival(p.flow, now);
  sched_.enqueue(std::move(p), now);
  if (link_stats_) link_stats_->on_queue_sample(now, sched_.backlog_packets());
  try_start();
  return true;
}

void ScheduledServer::try_start() {
  if (busy_) return;
  const Time now = sim_.now();
  std::optional<Packet> next = sched_.dequeue(now);
  if (!next) return;
  busy_ = true;
  if (link_stats_) {
    link_stats_->on_transmit_start(now);
    link_stats_->on_queue_sample(now, sched_.backlog_packets());
  }
  const Time finish = profile_->finish_time(now, next->length_bits);
  // The packet is captured by value in the completion event; schedulers keep
  // no reference to in-flight packets.
  sim_.at(finish, [this, p = *next, start = now, finish]() {
    busy_ = false;
    if (link_stats_) link_stats_->on_transmit_end(finish);
    sched_.on_transmit_complete(p, finish);
    if (recorder_)
      recorder_->on_service(p.flow, p.length_bits, p.arrival, start, finish);
    if (on_departure_) on_departure_(p, finish);
    try_start();
  });
}

}  // namespace sfq::net
