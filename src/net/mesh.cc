#include "net/mesh.h"

#include <stdexcept>

namespace sfq::net {

MeshNetwork::NodeId MeshNetwork::add_node(std::string name) {
  if (name.empty()) name = "node" + std::to_string(nodes_.size());
  nodes_.push_back(std::move(name));
  return static_cast<NodeId>(nodes_.size() - 1);
}

MeshNetwork::LinkId MeshNetwork::add_link(NodeId from, NodeId to,
                                          std::unique_ptr<Scheduler> sched,
                                          std::unique_ptr<RateProfile> profile,
                                          Time propagation) {
  if (from >= nodes_.size() || to >= nodes_.size())
    throw std::invalid_argument("MeshNetwork: unknown node");
  auto link = std::make_unique<Link>();
  link->from = from;
  link->to = to;
  link->propagation = propagation;
  link->sched = std::move(sched);
  link->recorder = std::make_unique<stats::ServiceRecorder>();
  link->server = std::make_unique<ScheduledServer>(sim_, *link->sched,
                                                   std::move(profile));
  link->server->set_recorder(link->recorder.get());
  const LinkId id = static_cast<LinkId>(links_.size());
  link->server->set_departure([this, id](const Packet& p, Time t) {
    on_link_departure(id, p, t);
  });
  links_.push_back(std::move(link));
  return id;
}

FlowId MeshNetwork::add_flow(const std::vector<LinkId>& route, double weight,
                             double max_packet_bits, std::string name) {
  if (route.empty()) throw std::invalid_argument("MeshNetwork: empty route");
  for (std::size_t i = 0; i < route.size(); ++i) {
    if (route[i] >= links_.size())
      throw std::invalid_argument("MeshNetwork: unknown link in route");
    if (i > 0 && links_[route[i - 1]]->to != links_[route[i]]->from)
      throw std::invalid_argument("MeshNetwork: route is not connected");
  }
  Flow f;
  f.route = route;
  f.name = name.empty() ? "flow" + std::to_string(flows_.size()) : name;
  for (LinkId l : route) {
    const FlowId local =
        links_[l]->sched->add_flow(weight, max_packet_bits, f.name);
    if (local != links_[l]->local_to_global.size())
      throw std::logic_error("MeshNetwork: non-dense local flow ids");
    links_[l]->local_to_global.push_back(
        static_cast<FlowId>(flows_.size()));
    f.local_ids.push_back(local);
  }
  flows_.push_back(std::move(f));
  return static_cast<FlowId>(flows_.size() - 1);
}

void MeshNetwork::inject(FlowId flow, Packet p) {
  if (flow >= flows_.size())
    throw std::out_of_range("MeshNetwork: unknown flow");
  const Flow& f = flows_[flow];
  p.hops = 0;
  p.flow = f.local_ids[0];
  links_[f.route[0]]->server->inject(std::move(p));
}

void MeshNetwork::on_link_departure(LinkId l, const Packet& p, Time t) {
  const FlowId global = links_[l]->local_to_global.at(p.flow);
  const Flow& f = flows_[global];
  const std::size_t pos = p.hops;  // index of `l` within the route
  Packet next = p;
  ++next.hops;
  if (pos + 1 >= f.route.size()) {
    next.flow = global;
    if (delivery_) delivery_(next, t);
    return;
  }
  next.flow = f.local_ids[pos + 1];
  const LinkId next_link = f.route[pos + 1];
  const Time tau = links_[l]->propagation;
  if (tau > 0.0) {
    sim_.at_packet(t + tau, sim::EventOp::kArrival,
                   links_[next_link]->server.get(), next);
  } else {
    links_[next_link]->server->inject(std::move(next));
  }
}

void MeshNetwork::finish_recording() {
  for (auto& l : links_) l->recorder->finish(sim_.now());
}

}  // namespace sfq::net
