#include "net/network.h"

#include <stdexcept>
#include <utility>

namespace sfq::net {

TandemNetwork::TandemNetwork(sim::Simulator& sim, std::vector<Hop> hops)
    : sim_(sim) {
  if (hops.empty()) throw std::invalid_argument("TandemNetwork: no hops");
  for (auto& h : hops) {
    schedulers_.push_back(std::move(h.scheduler));
    recorders_.push_back(std::make_unique<stats::ServiceRecorder>());
    servers_.push_back(std::make_unique<ScheduledServer>(
        sim_, *schedulers_.back(), std::move(h.profile)));
    servers_.back()->set_recorder(recorders_.back().get());
    propagation_.push_back(h.propagation_to_next);
  }
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    const bool last = i + 1 == servers_.size();
    const Time tau = propagation_[i];
    servers_[i]->set_departure([this, i, last, tau](const Packet& p, Time t) {
      Packet next = p;
      ++next.hops;
      if (last) {
        if (delivery_) delivery_(next, t);
        return;
      }
      if (tau > 0.0) {
        sim_.at_packet(t + tau, sim::EventOp::kArrival,
                       servers_[i + 1].get(), next);
      } else {
        servers_[i + 1]->inject(std::move(next));
      }
    });
  }
}

FlowId TandemNetwork::add_flow(double weight, double max_packet_bits,
                               std::string name) {
  FlowId id = kInvalidFlow;
  for (auto& s : schedulers_) {
    FlowId got = s->add_flow(weight, max_packet_bits, name);
    if (id == kInvalidFlow) id = got;
    else if (got != id)
      throw std::logic_error("TandemNetwork: inconsistent flow ids per hop");
  }
  return id;
}

void TandemNetwork::inject(Packet p) { servers_.front()->inject(std::move(p)); }

void TandemNetwork::finish_recording() {
  for (auto& r : recorders_) r->finish(sim_.now());
}

}  // namespace sfq::net
