#include "net/rate_profile.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sfq::net {

ConstantRate::ConstantRate(double rate) : rate_(rate) {
  if (rate <= 0.0)
    throw std::invalid_argument("ConstantRate: rate must be positive");
}

Time ConstantRate::finish_time(Time start, double bits) {
  return start + bits / rate_;
}

double ConstantRate::work(Time t1, Time t2) {
  return t2 > t1 ? (t2 - t1) * rate_ : 0.0;
}

PiecewiseConstantRate::PiecewiseConstantRate(std::vector<Segment> segments)
    : segments_(std::move(segments)) {
  if (segments_.empty() || segments_.front().start != 0.0)
    throw std::invalid_argument("PiecewiseConstantRate: first segment at t=0");
  for (std::size_t i = 1; i < segments_.size(); ++i) {
    if (segments_[i].start <= segments_[i - 1].start)
      throw std::invalid_argument(
          "PiecewiseConstantRate: starts must strictly increase");
  }
}

void PiecewiseConstantRate::append(Time start, double rate) {
  if (!segments_.empty() && start <= segments_.back().start)
    throw std::logic_error("PiecewiseConstantRate: non-increasing append");
  segments_.push_back(Segment{start, rate});
}

Time PiecewiseConstantRate::finish_time(Time start, double bits) {
  ensure_generated(start);
  if (segments_.empty())
    throw std::logic_error("PiecewiseConstantRate: no segments");

  double remaining = bits;
  Time t = start;
  // Index of the segment containing t.
  auto it = std::upper_bound(
      segments_.begin(), segments_.end(), t,
      [](Time v, const Segment& s) { return v < s.start; });
  std::size_t i = static_cast<std::size_t>(it - segments_.begin());
  i = i == 0 ? 0 : i - 1;

  double grow = std::max(1e-6, bits / std::max(average_rate(), 1e-9));
  for (;;) {
    if (i + 1 >= segments_.size()) {
      const std::size_t before = segments_.size();
      ensure_generated(t + grow);
      grow *= 2.0;
      if (segments_.size() == before) {
        // Static profile: final segment extends forever.
        const double rate = segments_[i].rate;
        if (rate <= 0.0)
          throw std::runtime_error(
              "PiecewiseConstantRate: link stalled at zero rate");
        return t + remaining / rate;
      }
    }
    const Time seg_end = segments_[i + 1].start;
    const double rate = segments_[i].rate;
    if (rate > 0.0) {
      const double capacity = (seg_end - t) * rate;
      if (capacity >= remaining) return t + remaining / rate;
      remaining -= capacity;
    }
    t = seg_end;
    ++i;
  }
}

double PiecewiseConstantRate::work(Time t1, Time t2) {
  if (t2 <= t1) return 0.0;
  ensure_generated(t2);
  double w = 0.0;
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    const Time seg_start = segments_[i].start;
    const Time seg_end =
        i + 1 < segments_.size() ? segments_[i + 1].start : kTimeInfinity;
    const Time a = std::max(t1, seg_start);
    const Time b = std::min(t2, seg_end);
    if (b > a) w += (b - a) * segments_[i].rate;
    if (seg_end >= t2) break;
  }
  return w;
}

double PiecewiseConstantRate::average_rate() const {
  if (segments_.empty()) return 0.0;
  if (segments_.size() == 1) return segments_.front().rate;
  double w = 0.0;
  for (std::size_t i = 0; i + 1 < segments_.size(); ++i)
    w += (segments_[i + 1].start - segments_[i].start) * segments_[i].rate;
  return w / segments_.back().start;
}

FcOnOffRate::FcOnOffRate(double average, double delta, double duty, Time phase)
    : average_(average), delta_(delta), phase_(phase) {
  if (average <= 0.0 || delta < 0.0 || duty <= 0.0 || duty >= 1.0)
    throw std::invalid_argument("FcOnOffRate: bad parameters");
  on_rate_ = average / duty;
  off_len_ = delta > 0.0 ? delta / average : 0.0;
  if (off_len_ == 0.0) {
    // Degenerate: constant-rate server.
    on_len_ = 1.0;
    off_len_ = 0.0;
    on_rate_ = average;
  } else {
    on_len_ = off_len_ * duty / (1.0 - duty);
  }
  ensure_generated(0.0);
}

void FcOnOffRate::ensure_generated(Time t) {
  const Time period = on_len_ + off_len_;
  if (segments_.empty()) {
    if (off_len_ == 0.0) {
      append(0.0, on_rate_);
      return;
    }
    // Pattern position at t=0 given the phase offset (pattern = OFF then ON).
    double pos = std::fmod(phase_, period);
    if (pos < 0) pos += period;
    if (pos < off_len_) {
      append(0.0, 0.0);
      append(off_len_ - pos, on_rate_);
      append(off_len_ - pos + on_len_, 0.0);
    } else {
      append(0.0, on_rate_);
      append(period - pos, 0.0);
      append(period - pos + off_len_, on_rate_);
    }
  }
  if (off_len_ == 0.0) return;
  while (generated_until() < t + period) {
    const Segment& last = segments_.back();
    if (last.rate == 0.0)
      append(last.start + off_len_, on_rate_);
    else
      append(last.start + on_len_, 0.0);
  }
}

EbfRandomRate::EbfRandomRate(const Params& params)
    : params_(params),
      rng_(params.seed),
      pause_dist_(1.0 / params.mean_pause),
      run_dist_(1.0 / params.mean_run) {
  const double effective =
      params.on_rate * params.mean_run / (params.mean_run + params.mean_pause);
  if (effective < params.average)
    throw std::invalid_argument(
        "EbfRandomRate: on_rate too low for the claimed average "
        "(deficit drift must be negative)");
  append(0.0, params_.on_rate);
}

void EbfRandomRate::ensure_generated(Time t) {
  while (generated_until() < t + params_.mean_run) {
    const Segment& last = segments_.back();
    if (running_) {
      const double run = run_dist_(rng_);
      append(last.start + std::max(run, 1e-9), 0.0);
      running_ = false;
    } else {
      const double pause = pause_dist_(rng_);
      append(last.start + std::max(pause, 1e-9), params_.on_rate);
      running_ = true;
    }
  }
}

}  // namespace sfq::net
