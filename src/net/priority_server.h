#pragma once

#include <deque>
#include <functional>
#include <memory>

#include "core/scheduler.h"
#include "net/rate_profile.h"
#include "sim/simulator.h"
#include "stats/service_recorder.h"

namespace sfq::net {

// A link shared by a strict-priority class and a scheduled class: the
// high-priority FIFO always wins (non-preemptively); the low-priority
// scheduler sees whatever capacity is left.
//
// This is the Figure 1 setup: a VBR video flow is given priority, so to the
// two TCP flows the output link *is* a variable-rate server, and the
// difference between WFQ and SFQ becomes visible. It is also the leaky-bucket
// residual-capacity construction of §2.3 (residual service is FC(C−ρ, σ)).
class PriorityServer : public sim::EventTarget {
 public:
  using DepartureFn = std::function<void(const Packet&, Time departure)>;

  PriorityServer(sim::Simulator& sim, Scheduler& low_sched,
                 std::unique_ptr<RateProfile> profile);

  PriorityServer(const PriorityServer&) = delete;
  PriorityServer& operator=(const PriorityServer&) = delete;

  void inject_high(Packet p);
  void inject_low(Packet p);

  void set_high_departure(DepartureFn fn) { on_high_dep_ = std::move(fn); }
  void set_low_departure(DepartureFn fn) { on_low_dep_ = std::move(fn); }
  void set_low_recorder(stats::ServiceRecorder* rec) { recorder_ = rec; }

  Scheduler& low_scheduler() { return low_sched_; }
  double high_backlog_bits() const;

 private:
  // Completion events discriminate the band via Event::aux.
  static constexpr uint32_t kLowBand = 0;
  static constexpr uint32_t kHighBand = 1;

  void on_event(sim::Event& ev, Time now) override;
  void try_start();

  sim::Simulator& sim_;
  Scheduler& low_sched_;
  std::unique_ptr<RateProfile> profile_;
  std::deque<Packet> high_q_;
  DepartureFn on_high_dep_;
  DepartureFn on_low_dep_;
  stats::ServiceRecorder* recorder_ = nullptr;
  bool busy_ = false;
};

}  // namespace sfq::net
