#include "net/multi_priority_server.h"

#include <stdexcept>

namespace sfq::net {

MultiPriorityServer::MultiPriorityServer(
    sim::Simulator& sim, std::vector<std::unique_ptr<Scheduler>> bands,
    std::unique_ptr<RateProfile> profile)
    : sim_(sim), bands_(std::move(bands)), profile_(std::move(profile)) {
  if (bands_.empty())
    throw std::invalid_argument("MultiPriorityServer: no bands");
  recorders_.resize(bands_.size(), nullptr);
}

void MultiPriorityServer::set_recorder(std::size_t band,
                                       stats::ServiceRecorder* rec) {
  recorders_.at(band) = rec;
}

void MultiPriorityServer::inject(std::size_t band, Packet p) {
  if (band >= bands_.size())
    throw std::out_of_range("MultiPriorityServer: bad band");
  const Time now = sim_.now();
  p.arrival = now;
  if (recorders_[band]) recorders_[band]->on_arrival(p.flow, now);
  bands_[band]->enqueue(std::move(p), now);
  try_start();
}

void MultiPriorityServer::try_start() {
  if (busy_) return;
  const Time now = sim_.now();
  for (std::size_t b = 0; b < bands_.size(); ++b) {
    std::optional<Packet> next = bands_[b]->dequeue(now);
    if (!next) continue;
    busy_ = true;
    const Time finish = profile_->finish_time(now, next->length_bits);
    sim_.at_packet(finish, sim::EventOp::kServiceComplete, this, *next,
                   /*t0=*/now, static_cast<uint32_t>(b));
    return;
  }
}

void MultiPriorityServer::on_event(sim::Event& ev, Time now) {
  if (ev.op != sim::EventOp::kServiceComplete) return;
  const std::size_t b = ev.aux;
  const Packet& p = ev.packet;
  busy_ = false;
  bands_[b]->on_transmit_complete(p, now);
  if (recorders_[b])
    recorders_[b]->on_service(p.flow, p.length_bits, p.arrival, ev.t0, now);
  if (on_departure_) on_departure_(b, p, now);
  try_start();
}

}  // namespace sfq::net
