#include "net/fragmentation.h"

#include <cmath>
#include <stdexcept>

namespace sfq::net {

Fragmenter::Fragmenter(double mtu_bits, EmitFn out)
    : mtu_(mtu_bits), out_(std::move(out)) {
  if (mtu_bits <= 0.0)
    throw std::invalid_argument("Fragmenter: MTU must be positive");
}

void Fragmenter::inject(Packet p) {
  if (p.length_bits <= mtu_) {
    p.frag_index = 0;
    p.frag_count = 1;
    ++emitted_;
    out_(std::move(p));
    return;
  }
  const auto count =
      static_cast<uint32_t>(std::ceil(p.length_bits / mtu_ - 1e-12));
  double rest = p.length_bits;
  for (uint32_t i = 0; i < count; ++i) {
    Packet frag = p;
    frag.frag_index = i;
    frag.frag_count = count;
    frag.length_bits = std::min(mtu_, rest);
    rest -= frag.length_bits;
    ++emitted_;
    out_(frag);
  }
}

void Reassembler::on_fragment(const Packet& fragment, Time now) {
  if (fragment.frag_count <= 1) {
    Packet whole = fragment;
    out_(std::move(whole), now);
    return;
  }
  const auto key = std::make_pair(fragment.flow, fragment.seq);
  Partial& part = partial_[key];
  if (part.received == 0) part.prototype = fragment;
  ++part.received;
  part.bits += fragment.length_bits;
  if (part.received == fragment.frag_count) {
    Packet whole = part.prototype;
    whole.length_bits = part.bits;
    whole.frag_index = 0;
    whole.frag_count = 1;
    partial_.erase(key);
    out_(std::move(whole), now);
  }
}

}  // namespace sfq::net
