#include "net/priority_server.h"

#include <utility>

namespace sfq::net {

PriorityServer::PriorityServer(sim::Simulator& sim, Scheduler& low_sched,
                               std::unique_ptr<RateProfile> profile)
    : sim_(sim), low_sched_(low_sched), profile_(std::move(profile)) {}

void PriorityServer::inject_high(Packet p) {
  p.arrival = sim_.now();
  high_q_.push_back(std::move(p));
  try_start();
}

void PriorityServer::inject_low(Packet p) {
  const Time now = sim_.now();
  p.arrival = now;
  if (recorder_) recorder_->on_arrival(p.flow, now);
  low_sched_.enqueue(std::move(p), now);
  try_start();
}

double PriorityServer::high_backlog_bits() const {
  double b = 0.0;
  for (const Packet& p : high_q_) b += p.length_bits;
  return b;
}

void PriorityServer::try_start() {
  if (busy_) return;
  const Time now = sim_.now();

  if (!high_q_.empty()) {
    Packet p = std::move(high_q_.front());
    high_q_.pop_front();
    busy_ = true;
    const Time finish = profile_->finish_time(now, p.length_bits);
    sim_.at(finish, [this, p = std::move(p), finish]() {
      busy_ = false;
      if (on_high_dep_) on_high_dep_(p, finish);
      try_start();
    });
    return;
  }

  std::optional<Packet> next = low_sched_.dequeue(now);
  if (!next) return;
  busy_ = true;
  const Time finish = profile_->finish_time(now, next->length_bits);
  sim_.at(finish, [this, p = *next, start = now, finish]() {
    busy_ = false;
    low_sched_.on_transmit_complete(p, finish);
    if (recorder_)
      recorder_->on_service(p.flow, p.length_bits, p.arrival, start, finish);
    if (on_low_dep_) on_low_dep_(p, finish);
    try_start();
  });
}

}  // namespace sfq::net
