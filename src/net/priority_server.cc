#include "net/priority_server.h"

#include <utility>

namespace sfq::net {

PriorityServer::PriorityServer(sim::Simulator& sim, Scheduler& low_sched,
                               std::unique_ptr<RateProfile> profile)
    : sim_(sim), low_sched_(low_sched), profile_(std::move(profile)) {}

void PriorityServer::inject_high(Packet p) {
  p.arrival = sim_.now();
  high_q_.push_back(std::move(p));
  try_start();
}

void PriorityServer::inject_low(Packet p) {
  const Time now = sim_.now();
  p.arrival = now;
  if (recorder_) recorder_->on_arrival(p.flow, now);
  low_sched_.enqueue(std::move(p), now);
  try_start();
}

double PriorityServer::high_backlog_bits() const {
  double b = 0.0;
  for (const Packet& p : high_q_) b += p.length_bits;
  return b;
}

void PriorityServer::try_start() {
  if (busy_) return;
  const Time now = sim_.now();

  if (!high_q_.empty()) {
    Packet p = std::move(high_q_.front());
    high_q_.pop_front();
    busy_ = true;
    const Time finish = profile_->finish_time(now, p.length_bits);
    sim_.at_packet(finish, sim::EventOp::kServiceComplete, this, p,
                   /*t0=*/now, kHighBand);
    return;
  }

  std::optional<Packet> next = low_sched_.dequeue(now);
  if (!next) return;
  busy_ = true;
  const Time finish = profile_->finish_time(now, next->length_bits);
  sim_.at_packet(finish, sim::EventOp::kServiceComplete, this, *next,
                 /*t0=*/now, kLowBand);
}

void PriorityServer::on_event(sim::Event& ev, Time now) {
  if (ev.op != sim::EventOp::kServiceComplete) return;
  const Packet& p = ev.packet;
  busy_ = false;
  if (ev.aux == kHighBand) {
    if (on_high_dep_) on_high_dep_(p, now);
  } else {
    low_sched_.on_transmit_complete(p, now);
    if (recorder_)
      recorder_->on_service(p.flow, p.length_bits, p.arrival, ev.t0, now);
    if (on_low_dep_) on_low_dep_(p, now);
  }
  try_start();
}

}  // namespace sfq::net
