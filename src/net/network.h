#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/scheduler.h"
#include "net/rate_profile.h"
#include "net/scheduled_server.h"
#include "sim/simulator.h"
#include "stats/service_recorder.h"

namespace sfq::net {

// A tandem of K servers with propagation delays between them — the topology
// of the end-to-end analysis (§2.4). All flows traverse every hop in order;
// flow ids are registered identically at each hop.
class TandemNetwork {
 public:
  struct Hop {
    std::unique_ptr<Scheduler> scheduler;
    std::unique_ptr<RateProfile> profile;
    Time propagation_to_next = 0.0;  // tau^{i,i+1}
  };

  using DeliveryFn = std::function<void(const Packet&, Time)>;

  TandemNetwork(sim::Simulator& sim, std::vector<Hop> hops);

  // The hop-wiring callbacks capture `this`; the network must stay put.
  TandemNetwork(const TandemNetwork&) = delete;
  TandemNetwork& operator=(const TandemNetwork&) = delete;
  TandemNetwork(TandemNetwork&&) = delete;
  TandemNetwork& operator=(TandemNetwork&&) = delete;

  FlowId add_flow(double weight, double max_packet_bits = 0.0,
                  std::string name = {});

  // Injects at the first hop. `p.source_departure` should already be set by
  // the caller (source emission time).
  void inject(Packet p);

  void set_delivery(DeliveryFn fn) { delivery_ = std::move(fn); }

  std::size_t hop_count() const { return servers_.size(); }
  ScheduledServer& server(std::size_t i) { return *servers_.at(i); }
  Scheduler& scheduler(std::size_t i) { return *schedulers_.at(i); }
  stats::ServiceRecorder& recorder(std::size_t i) { return *recorders_.at(i); }

  void finish_recording();

 private:
  sim::Simulator& sim_;
  std::vector<std::unique_ptr<Scheduler>> schedulers_;
  std::vector<std::unique_ptr<stats::ServiceRecorder>> recorders_;
  std::vector<std::unique_ptr<ScheduledServer>> servers_;
  std::vector<Time> propagation_;
  DeliveryFn delivery_;
};

}  // namespace sfq::net
