#pragma once

#include <memory>
#include <random>
#include <vector>

#include "core/types.h"

namespace sfq::net {

// Service-rate model of a link/interface. A server asks when a transmission
// of `bits` that starts at `start` finishes, and how much work the link
// performs in an interval (used by tests that verify the FC/EBF definitions,
// eqs. 6–7).
class RateProfile {
 public:
  virtual ~RateProfile() = default;

  virtual Time finish_time(Time start, double bits) = 0;

  // Integral of the instantaneous rate over [t1, t2].
  virtual double work(Time t1, Time t2) = 0;

  // Long-run average rate C (bits/s) — the "C" of the FC/EBF parameters.
  virtual double average_rate() const = 0;
};

// Fixed-capacity link: the (C, 0) FC server.
class ConstantRate final : public RateProfile {
 public:
  explicit ConstantRate(double rate);
  Time finish_time(Time start, double bits) override;
  double work(Time t1, Time t2) override;
  double average_rate() const override { return rate_; }

 private:
  double rate_;
};

// Piecewise-constant rate r(t); the last segment extends forever. Used
// directly for scripted capacity changes (Example 2's "1 pkt/s then C
// pkt/s") and as the backing store of the generated FC/EBF profiles.
class PiecewiseConstantRate : public RateProfile {
 public:
  struct Segment {
    Time start;
    double rate;
  };

  // Segments must have strictly increasing start times; first at t=0.
  explicit PiecewiseConstantRate(std::vector<Segment> segments);

  Time finish_time(Time start, double bits) override;
  double work(Time t1, Time t2) override;
  double average_rate() const override;

 protected:
  PiecewiseConstantRate() = default;
  // Generated profiles append segments lazily; must keep starts increasing.
  void append(Time start, double rate);
  Time generated_until() const {
    return segments_.empty() ? 0.0 : segments_.back().start;
  }
  // Hook for lazily generated profiles: guarantee segments cover [0, t].
  virtual void ensure_generated(Time t) { (void)t; }

  std::vector<Segment> segments_;
};

// Fluctuation Constrained server (Definition 1): average rate C, burstiness
// delta(C) bits. Constructed as a periodic on/off pattern — OFF for
// delta/C_on, then ON at rate C_on = C/duty — whose work deficit against the
// fluid C-server never exceeds delta in any interval. Deterministic, so
// tests can check the FC inequality exactly.
class FcOnOffRate final : public PiecewiseConstantRate {
 public:
  // duty in (0,1): fraction of each period the link is ON.
  FcOnOffRate(double average, double delta, double duty = 0.5,
              Time phase = 0.0);

  double average_rate() const override { return average_; }
  double delta() const { return delta_; }

 private:
  void ensure_generated(Time t) override;

  double average_;
  double delta_;
  double on_rate_;
  Time on_len_, off_len_;
  Time phase_;
};

// Exponentially Bounded Fluctuation server (Definition 2): the link pauses
// at i.i.d. exponential intervals for i.i.d. exponential durations and
// otherwise runs faster than C. The accumulated deficit is a reflected
// random walk with negative drift, so P(deficit > delta + gamma) decays
// exponentially in gamma — an EBF(C, B, alpha, delta) server.
class EbfRandomRate final : public PiecewiseConstantRate {
 public:
  struct Params {
    double average;          // C
    double on_rate;          // service rate while running (> average)
    double mean_pause = 1e-3;      // mean pause duration (s)
    double mean_run = 4e-3;        // mean run duration (s)
    uint64_t seed = 1;
  };
  explicit EbfRandomRate(const Params& params);

  double average_rate() const override { return params_.average; }

 private:
  void ensure_generated(Time t) override;

  Params params_;
  std::mt19937_64 rng_;
  std::exponential_distribution<double> pause_dist_;
  std::exponential_distribution<double> run_dist_;
  bool running_ = true;
};

}  // namespace sfq::net
