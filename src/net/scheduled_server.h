#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "core/scheduler.h"
#include "net/rate_profile.h"
#include "obs/trace.h"
#include "sim/simulator.h"
#include "stats/link_stats.h"
#include "stats/service_recorder.h"

namespace sfq::net {

// An output link: a scheduler (queueing discipline) drained by a rate
// profile. Work-conserving and non-preemptive: whenever the link goes idle
// and the scheduler is non-empty, the next packet begins transmission and
// finishes at profile->finish_time(now, length).
class ScheduledServer {
 public:
  using DepartureFn = std::function<void(const Packet&, Time departure)>;
  using DropFn = std::function<void(const Packet&, Time)>;

  ScheduledServer(sim::Simulator& sim, Scheduler& sched,
                  std::unique_ptr<RateProfile> profile);

  ScheduledServer(const ScheduledServer&) = delete;
  ScheduledServer& operator=(const ScheduledServer&) = delete;

  // Packet arrival. Stamps p.arrival = now. Returns false if dropped (buffer
  // limit, or a flow never registered with the scheduler); the drop cause is
  // counted and reported through the trace stream.
  bool inject(Packet p);

  void set_departure(DepartureFn fn) { on_departure_ = std::move(fn); }
  void set_drop(DropFn fn) { on_drop_ = std::move(fn); }
  void set_recorder(stats::ServiceRecorder* rec) { recorder_ = rec; }
  void set_link_stats(stats::LinkStats* ls) { link_stats_ = ls; }

  // Attaches a packet-lifecycle tracer to this server *and* its scheduler:
  // the server emits enqueue/tx_start/tx_end/drop events, the scheduler
  // emits tag/dequeue/vtime events into the same stream. Tracer::active()
  // is latched here, so attach sinks before the tracer.
  void set_tracer(obs::Tracer* tracer) {
    tracer_ = tracer;
    trace_on_ = tracer != nullptr && tracer->active();
    sched_.set_tracer(tracer);
  }

  // Cap on queued packets (excluding the one in transmission); 0 = infinite.
  void set_buffer_limit(std::size_t packets) { buffer_limit_ = packets; }

  Scheduler& scheduler() { return sched_; }
  RateProfile& profile() { return *profile_; }
  bool busy() const { return busy_; }
  uint64_t drops() const { return drops_; }
  // Per-cause breakdown of drops().
  uint64_t drops(obs::DropCause cause) const {
    switch (cause) {
      case obs::DropCause::kBufferLimit: return buffer_drops_;
      case obs::DropCause::kUnknownFlow: return unknown_flow_drops_;
      case obs::DropCause::kNone: break;
    }
    return 0;
  }

 private:
  void try_start();
  bool drop(Packet&& p, Time now, obs::DropCause cause);

  sim::Simulator& sim_;
  Scheduler& sched_;
  std::unique_ptr<RateProfile> profile_;
  DepartureFn on_departure_;
  DropFn on_drop_;
  stats::ServiceRecorder* recorder_ = nullptr;
  stats::LinkStats* link_stats_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  bool trace_on_ = false;  // tracer_ set AND it has a consuming sink
  std::size_t buffer_limit_ = 0;
  bool busy_ = false;
  uint64_t drops_ = 0;
  uint64_t buffer_drops_ = 0;
  uint64_t unknown_flow_drops_ = 0;
};

}  // namespace sfq::net
