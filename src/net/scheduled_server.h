#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "core/scheduler.h"
#include "net/rate_profile.h"
#include "sim/simulator.h"
#include "stats/link_stats.h"
#include "stats/service_recorder.h"

namespace sfq::net {

// An output link: a scheduler (queueing discipline) drained by a rate
// profile. Work-conserving and non-preemptive: whenever the link goes idle
// and the scheduler is non-empty, the next packet begins transmission and
// finishes at profile->finish_time(now, length).
class ScheduledServer {
 public:
  using DepartureFn = std::function<void(const Packet&, Time departure)>;
  using DropFn = std::function<void(const Packet&, Time)>;

  ScheduledServer(sim::Simulator& sim, Scheduler& sched,
                  std::unique_ptr<RateProfile> profile);

  ScheduledServer(const ScheduledServer&) = delete;
  ScheduledServer& operator=(const ScheduledServer&) = delete;

  // Packet arrival. Stamps p.arrival = now. Returns false if dropped by the
  // buffer limit.
  bool inject(Packet p);

  void set_departure(DepartureFn fn) { on_departure_ = std::move(fn); }
  void set_drop(DropFn fn) { on_drop_ = std::move(fn); }
  void set_recorder(stats::ServiceRecorder* rec) { recorder_ = rec; }
  void set_link_stats(stats::LinkStats* ls) { link_stats_ = ls; }

  // Cap on queued packets (excluding the one in transmission); 0 = infinite.
  void set_buffer_limit(std::size_t packets) { buffer_limit_ = packets; }

  Scheduler& scheduler() { return sched_; }
  RateProfile& profile() { return *profile_; }
  bool busy() const { return busy_; }
  uint64_t drops() const { return drops_; }

 private:
  void try_start();

  sim::Simulator& sim_;
  Scheduler& sched_;
  std::unique_ptr<RateProfile> profile_;
  DepartureFn on_departure_;
  DropFn on_drop_;
  stats::ServiceRecorder* recorder_ = nullptr;
  stats::LinkStats* link_stats_ = nullptr;
  std::size_t buffer_limit_ = 0;
  bool busy_ = false;
  uint64_t drops_ = 0;
};

}  // namespace sfq::net
