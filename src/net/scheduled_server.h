#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "core/scheduler.h"
#include "net/rate_profile.h"
#include "obs/trace.h"
#include "sim/simulator.h"
#include "stats/link_stats.h"
#include "stats/service_recorder.h"

namespace sfq::net {

// What to do with an arrival when the buffer is full.
enum class OverloadPolicy {
  kTailDrop,  // drop the arrival (cause buffer_limit)
  kPushout,   // evict the tail of the longest per-flow queue (cause pushout),
              // then admit the arrival; falls back to tail drop when the
              // discipline cannot undo an enqueue
};

// An output link: a scheduler (queueing discipline) drained by a rate
// profile. Work-conserving and non-preemptive: whenever the link goes idle
// and the scheduler is non-empty, the next packet begins transmission and
// finishes at profile->finish_time(now, length).
//
// The server is the degradation boundary: faults (injected loss/corruption),
// overload (buffer limit + policy), and churn (remove/rejoin) all resolve
// here into counted, traced drops — never into exceptions from the hot path.
//
// As a sim::EventTarget the server consumes typed events: its own
// kServiceComplete (scheduled by try_start; the in-flight packet lives in
// the event slab, not in a closure), kArrival from upstream hops
// (network/mesh propagation), and kChurnLeave/kChurnJoin from the fault
// injector. None of these allocate in steady state.
class ScheduledServer : public sim::EventTarget {
 public:
  using DepartureFn = std::function<void(const Packet&, Time departure)>;
  using DropFn = std::function<void(const Packet&, Time)>;
  // Returns a drop cause to discard the arriving packet (fault injection:
  // kFaultLoss / kCorrupt), or nullopt to let it through.
  using FaultFilter = std::function<std::optional<obs::DropCause>(const Packet&, Time)>;

  ScheduledServer(sim::Simulator& sim, Scheduler& sched,
                  std::unique_ptr<RateProfile> profile);

  ScheduledServer(const ScheduledServer&) = delete;
  ScheduledServer& operator=(const ScheduledServer&) = delete;

  // Packet arrival. Stamps p.arrival = now. Returns false if dropped (fault
  // filter, a flow never registered or currently removed, or buffer overflow);
  // the drop cause is counted and reported through the trace stream.
  bool inject(Packet p);

  // Removes `f` mid-run: queued packets are flushed and counted as drops with
  // cause flow_removed; subsequent arrivals for `f` drop as unknown_flow until
  // rejoin_flow. Returns the number of packets flushed.
  std::size_t remove_flow(FlowId f);
  void rejoin_flow(FlowId f);

  void set_departure(DepartureFn fn) { on_departure_ = std::move(fn); }
  void set_drop(DropFn fn) { on_drop_ = std::move(fn); }
  void set_fault_filter(FaultFilter fn) { fault_filter_ = std::move(fn); }
  void set_recorder(stats::ServiceRecorder* rec) { recorder_ = rec; }
  void set_link_stats(stats::LinkStats* ls) { link_stats_ = ls; }

  // Attaches a packet-lifecycle tracer to this server *and* its scheduler:
  // the server emits enqueue/tx_start/tx_end/drop events, the scheduler
  // emits tag/dequeue/vtime events into the same stream. Tracer::active()
  // is latched here, so attach sinks before the tracer.
  void set_tracer(obs::Tracer* tracer) {
    tracer_ = tracer;
    trace_on_ = tracer != nullptr && tracer->active();
    sched_.set_tracer(tracer);
  }

  // Cap on queued packets (excluding the one in transmission); 0 = infinite.
  void set_buffer_limit(std::size_t packets) { buffer_limit_ = packets; }
  void set_overload_policy(OverloadPolicy p) { overload_policy_ = p; }

  Scheduler& scheduler() { return sched_; }
  RateProfile& profile() { return *profile_; }
  // Swaps the drain profile (fault injection: outages and degradation wrap
  // the original profile). Transmissions already in flight keep the finish
  // time computed when they started.
  void set_profile(std::unique_ptr<RateProfile> profile) {
    profile_ = std::move(profile);
  }
  // Takes ownership of the current profile, e.g. to wrap it. The caller must
  // set_profile() a replacement before the next transmission starts.
  std::unique_ptr<RateProfile> release_profile() { return std::move(profile_); }
  bool busy() const { return busy_; }
  uint64_t drops() const { return drops_; }
  // Per-cause breakdown of drops().
  uint64_t drops(obs::DropCause cause) const {
    const auto i = static_cast<std::size_t>(cause);
    return i < obs::kDropCauseCount ? cause_drops_[i] : 0;
  }

 private:
  void on_event(sim::Event& ev, Time now) override;
  void complete_transmission(const Packet& p, Time start, Time finish);
  void try_start();
  bool drop(Packet&& p, Time now, obs::DropCause cause);
  // Longest per-flow queue by queued bits (ties to the lowest flow id), or
  // kInvalidFlow when nothing is queued.
  FlowId longest_queue() const;

  sim::Simulator& sim_;
  Scheduler& sched_;
  std::unique_ptr<RateProfile> profile_;
  DepartureFn on_departure_;
  DropFn on_drop_;
  FaultFilter fault_filter_;
  stats::ServiceRecorder* recorder_ = nullptr;
  stats::LinkStats* link_stats_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  bool trace_on_ = false;  // tracer_ set AND it has a consuming sink
  std::size_t buffer_limit_ = 0;
  OverloadPolicy overload_policy_ = OverloadPolicy::kTailDrop;
  bool busy_ = false;
  uint64_t drops_ = 0;
  uint64_t cause_drops_[obs::kDropCauseCount] = {};
};

}  // namespace sfq::net
