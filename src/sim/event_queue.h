#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <type_traits>
#include <vector>

#include "core/indexed_heap.h"
#include "core/packet.h"
#include "core/types.h"

namespace sfq::sim {

using EventId = uint64_t;
inline constexpr EventId kInvalidEvent = 0;

struct Event;

// Recipient of typed events. Servers, traffic sources and the fault layer
// implement this so the simulator can dispatch per-packet work without a
// heap-allocating closure per event (docs/PERFORMANCE.md).
class EventTarget {
 public:
  // `ev` is mutable so the handler can move the packet payload out.
  virtual void on_event(Event& ev, Time now) = 0;

 protected:
  ~EventTarget() = default;  // targets are never owned through this interface
};

// What an event means. Typed ops cover the per-packet hot path (arrival,
// service completion, source emission) plus the fault layer's churn ops;
// kCallback is the general-purpose fallback for everything else (TCP timers,
// test fixtures) and is the only op that may heap-allocate.
enum class EventOp : uint8_t {
  kCallback = 0,     // run `fn`
  kArrival,          // `packet` arrives at `target` (multi-hop propagation)
  kServiceComplete,  // transmission of `packet` started at `t0` finishes now
  kSourceTick,       // source emission scheduled for `t0`, size `bits`
  kChurnLeave,       // remove `flow` from the target server
  kChurnJoin,        // rejoin `flow` at the target server
  kTimer,            // target-defined timer (rt paced service)
};

// One scheduled event. A small tagged struct rather than a closure: typed
// events carry their payload inline (the Packet is trivially copyable), so
// scheduling one costs a slab slot from the queue's free-list and nothing
// else. Kept trivially copyable on purpose — every slab store and heap pop
// is then a plain memcpy; kCallback closures live in a side slab keyed by
// `fn_slot` (EventQueue-internal, never set by clients).
struct Event {
  EventOp op = EventOp::kCallback;
  uint32_t aux = 0;              // per-target discriminator (priority band)
  FlowId flow = kInvalidFlow;    // churn ops
  EventTarget* target = nullptr; // typed ops
  Time t0 = 0.0;                 // service start / emission time
  double bits = 0.0;             // source emission size
  Packet packet{};               // arrival / service-complete payload
  uint32_t fn_slot = 0xffffffffu;  // kCallback closure slab index (internal)
};

static_assert(std::is_trivially_copyable_v<Event>,
              "Event moves must compile to memcpy; keep closures out of it");

// Time-ordered queue of events. Equal-time events fire in scheduling order
// (monotone sequence numbers), which keeps every simulation deterministic.
//
// Storage is a chunked slab with a free-list, ordered by an index-keyed
// 4-ary heap over the slab (core/indexed_heap.h): scheduling into a warm
// queue reuses a freed slot and touches no allocator, and the heap percolates
// 4-byte slot indices instead of fat closure-bearing entries. Chunks give
// slots stable addresses, so the dispatch loop can run an event in place
// (pop_in_place/finish_pop) without copying it out first — handlers may
// schedule freely while their own event is still being read.
//
// EventIds are generation-tagged slot references, so cancel() of an id that
// already fired (or was already cancelled) is a guaranteed no-op even after
// the slot has been reused — the lifetime bug class where a late cancel
// corrupted the live-event count is structurally impossible. Cancellation is
// eager: the event is unlinked from the heap and its payload (including any
// captured closure state) destroyed immediately, not retained until the
// entry would have drifted to the heap top.
class EventQueue {
 public:
  EventId schedule(Time when, Event ev);
  EventId schedule(Time when, std::function<void()> action);

  // Hot-path schedule variants that write the slab slot directly, touching
  // only the fields the op dispatches on — no zero-initialised Event temp,
  // no second copy. Stale fields from a slot's previous occupant are never
  // read (each op reads exactly what its scheduler wrote).
  EventId schedule_packet(Time when, EventOp op, EventTarget* target,
                          const Packet& p, Time t0 = 0.0, uint32_t aux = 0) {
    const uint32_t slot = acquire_slot();
    Event& ev = event_at(slot);
    ev.op = op;
    ev.aux = aux;
    ev.flow = p.flow;
    ev.target = target;
    ev.t0 = t0;
    ev.packet = p;
    heap_.push(slot, EventKey{when, next_seq_++});
    return make_id(slot, gens_[slot]);
  }
  EventId schedule_tick(Time when, EventTarget* target, double bits) {
    const uint32_t slot = acquire_slot();
    Event& ev = event_at(slot);
    ev.op = EventOp::kSourceTick;
    ev.target = target;
    ev.bits = bits;
    heap_.push(slot, EventKey{when, next_seq_++});
    return make_id(slot, gens_[slot]);
  }
  EventId schedule_flow(Time when, EventOp op, EventTarget* target,
                        FlowId flow) {
    const uint32_t slot = acquire_slot();
    Event& ev = event_at(slot);
    ev.op = op;
    ev.flow = flow;
    ev.target = target;
    heap_.push(slot, EventKey{when, next_seq_++});
    return make_id(slot, gens_[slot]);
  }

  void cancel(EventId id);

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  // Fires the earliest event and returns its time; kTimeInfinity when the
  // queue is empty.
  Time run_one();

  // Removes and returns the earliest event without running it, so the caller
  // can update its clock before dispatching. For kCallback events the closure
  // is moved into `fn` (its side-slab slot is recycled before dispatch).
  struct Popped {
    Time when = 0.0;
    Event event;
    std::function<void()> fn;
  };
  bool pop(Popped& out) {
    if (heap_.empty()) return false;
    const uint32_t slot = heap_.top_id();
    out.when = heap_.top_key().when;
    heap_.pop();
    Event& ev = event_at(slot);
    out.event = ev;
    if (ev.op == EventOp::kCallback) [[unlikely]]
      out.fn = detach_callback(ev);
    release_slot(slot);
    return true;
  }

  // Zero-copy dispatch protocol for the simulator's run loop: pop_in_place
  // unlinks the earliest event from the heap and returns its slot; the event
  // stays valid at event_at(slot) — chunk storage never relocates — until
  // finish_pop(slot) recycles it. The handler may schedule new events in
  // between (they take other slots). Precondition: !empty().
  uint32_t pop_in_place(Time& when) {
    const uint32_t slot = heap_.top_id();
    when = heap_.top_key().when;
    heap_.pop();
    return slot;
  }
  Event& event_at(uint32_t slot) {
    return chunks_[slot >> kChunkShift][slot & kChunkMask];
  }
  void finish_pop(uint32_t slot) { release_slot(slot); }
  // Moves a kCallback event's closure out and recycles its side-slab slot.
  std::function<void()> detach_callback(Event& ev) {
    std::function<void()> fn = std::move(fns_[ev.fn_slot]);
    release_fn_slot(ev.fn_slot);
    return fn;
  }

  Time next_time() const {
    return heap_.empty() ? kTimeInfinity : heap_.top_key().when;
  }

  // Slab high-water mark (slots ever allocated), for the steady-state
  // allocation tests: a warmed queue stops growing.
  std::size_t slab_slots() const { return slot_count_; }

 private:
  struct EventKey {
    Time when = 0.0;
    uint64_t seq = 0;
    friend bool operator<(const EventKey& a, const EventKey& b) {
      if (a.when != b.when) return a.when < b.when;
      return a.seq < b.seq;
    }
  };
  static constexpr uint32_t kNilSlot = 0xffffffffu;
  static constexpr uint32_t kChunkShift = 8;
  static constexpr uint32_t kChunkSize = 1u << kChunkShift;
  static constexpr uint32_t kChunkMask = kChunkSize - 1;

  uint32_t acquire_slot();
  void release_slot(uint32_t slot) {
    ++gens_[slot];  // ids referring to the old occupant stop validating
    next_free_[slot] = free_head_;
    free_head_ = slot;
  }
  static EventId make_id(uint32_t slot, uint32_t gen) {
    return (static_cast<EventId>(gen) << 32) | (slot + 1);
  }

  uint32_t acquire_fn_slot(std::function<void()> fn);
  void release_fn_slot(uint32_t slot);

  // Slot storage in fixed chunks (stable addresses; see pop_in_place), with
  // generation and free-list bookkeeping in flat side arrays so the Event
  // stride stays a power of two.
  std::vector<std::unique_ptr<Event[]>> chunks_;
  std::vector<uint32_t> gens_;
  std::vector<uint32_t> next_free_;
  uint32_t slot_count_ = 0;
  uint32_t free_head_ = kNilSlot;
  IndexedHeap<EventKey, 4> heap_;  // keyed by slot index
  uint64_t next_seq_ = 0;
  // kCallback closures, parallel free-listed slab (kept out of Event so the
  // Event slab stays trivially copyable).
  std::vector<std::function<void()>> fns_;
  std::vector<uint32_t> fn_free_;
};

}  // namespace sfq::sim
