#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "core/types.h"

namespace sfq::sim {

using EventId = uint64_t;
inline constexpr EventId kInvalidEvent = 0;

// Time-ordered queue of callbacks. Equal-time events fire in scheduling
// order (monotone sequence numbers), which keeps every simulation
// deterministic. Cancellation is lazy: cancelled entries are skipped on pop.
class EventQueue {
 public:
  EventId schedule(Time when, std::function<void()> action);
  void cancel(EventId id);

  bool empty() const { return live_ != 0 ? false : true; }
  std::size_t size() const { return live_; }

  // Fires the earliest live event and returns its time; kTimeInfinity when
  // the queue is empty.
  Time run_one();

  // Removes and returns the earliest live event without running it, so the
  // caller can update its clock before invoking the action.
  struct Popped {
    Time when;
    std::function<void()> action;
  };
  bool pop(Popped& out);

  Time next_time() const;

 private:
  struct Entry {
    Time when;
    uint64_t seq;
    EventId id;
    std::function<void()> action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  void drop_cancelled() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, Later> pq_;
  mutable std::vector<bool> cancelled_;  // indexed by EventId
  uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::size_t live_ = 0;
};

}  // namespace sfq::sim
