#include "sim/event_queue.h"

#include <stdexcept>

namespace sfq::sim {

EventId EventQueue::schedule(Time when, std::function<void()> action) {
  EventId id = next_id_++;
  if (id >= cancelled_.size()) cancelled_.resize(id + 64, false);
  pq_.push(Entry{when, next_seq_++, id, std::move(action)});
  ++live_;
  return id;
}

void EventQueue::cancel(EventId id) {
  if (id == kInvalidEvent || id >= cancelled_.size() || cancelled_[id]) return;
  cancelled_[id] = true;
  if (live_ > 0) --live_;
}

void EventQueue::drop_cancelled() const {
  while (!pq_.empty() && cancelled_[pq_.top().id]) pq_.pop();
}

Time EventQueue::run_one() {
  Popped p;
  if (!pop(p)) return kTimeInfinity;
  p.action();
  return p.when;
}

bool EventQueue::pop(Popped& out) {
  drop_cancelled();
  if (pq_.empty()) return false;
  // priority_queue::top is const; move out via const_cast of the entry we are
  // about to pop — standard idiom to avoid copying the std::function.
  Entry e = std::move(const_cast<Entry&>(pq_.top()));
  pq_.pop();
  --live_;
  out.when = e.when;
  out.action = std::move(e.action);
  return true;
}

Time EventQueue::next_time() const {
  drop_cancelled();
  return pq_.empty() ? kTimeInfinity : pq_.top().when;
}

}  // namespace sfq::sim
