#include "sim/event_queue.h"

#include <utility>

namespace sfq::sim {

uint32_t EventQueue::acquire_slot() {
  if (free_head_ != kNilSlot) {
    const uint32_t slot = free_head_;
    free_head_ = next_free_[slot];
    return slot;
  }
  const uint32_t slot = slot_count_++;
  if ((slot & kChunkMask) == 0)
    chunks_.push_back(std::make_unique<Event[]>(kChunkSize));
  gens_.push_back(0);
  next_free_.push_back(kNilSlot);
  return slot;
}

uint32_t EventQueue::acquire_fn_slot(std::function<void()> fn) {
  if (!fn_free_.empty()) {
    const uint32_t slot = fn_free_.back();
    fn_free_.pop_back();
    fns_[slot] = std::move(fn);
    return slot;
  }
  fns_.push_back(std::move(fn));
  return static_cast<uint32_t>(fns_.size() - 1);
}

void EventQueue::release_fn_slot(uint32_t slot) {
  fns_[slot] = nullptr;  // destroy captured state now, not lazily
  fn_free_.push_back(slot);
}

EventId EventQueue::schedule(Time when, Event ev) {
  const uint32_t slot = acquire_slot();
  event_at(slot) = ev;
  heap_.push(slot, EventKey{when, next_seq_++});
  return make_id(slot, gens_[slot]);
}

EventId EventQueue::schedule(Time when, std::function<void()> action) {
  Event ev;
  ev.op = EventOp::kCallback;
  ev.fn_slot = acquire_fn_slot(std::move(action));
  return schedule(when, ev);
}

void EventQueue::cancel(EventId id) {
  if (id == kInvalidEvent) return;
  const uint32_t slot = static_cast<uint32_t>(id & 0xffffffffu) - 1;
  if (slot >= slot_count_) return;
  // Generation mismatch => the referenced event already fired or was already
  // cancelled (the slot may even hold a newer event). Guaranteed no-op.
  if (gens_[slot] != static_cast<uint32_t>(id >> 32)) return;
  if (!heap_.contains(slot)) return;  // belt and braces; gen should cover it
  heap_.erase(slot);
  // Eager: unlink from the heap AND destroy any captured closure state now,
  // not when the entry would have drifted to the heap top.
  if (event_at(slot).op == EventOp::kCallback)
    release_fn_slot(event_at(slot).fn_slot);
  release_slot(slot);
}

Time EventQueue::run_one() {
  Popped p;
  if (!pop(p)) return kTimeInfinity;
  if (p.event.op == EventOp::kCallback)
    p.fn();
  else
    p.event.target->on_event(p.event, p.when);
  return p.when;
}

}  // namespace sfq::sim
