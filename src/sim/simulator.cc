#include "sim/simulator.h"

#include <stdexcept>

#include "obs/metrics.h"

namespace sfq::sim {

void Simulator::throw_past_event() {
  throw std::invalid_argument("Simulator: event in the past");
}

EventId Simulator::at(Time when, std::function<void()> action) {
  check_future(when);
  return note_scheduled(events_.schedule(when, std::move(action)));
}

EventId Simulator::at(Time when, Event ev) {
  check_future(when);
  return note_scheduled(events_.schedule(when, ev));
}

void Simulator::run_until(Time deadline) {
  while (!events_.empty() && events_.next_time() <= deadline) dispatch_next();
  if (deadline > now_ && deadline != kTimeInfinity) now_ = deadline;
  publish_metrics();
}

void Simulator::run() {
  while (!events_.empty()) dispatch_next();
  publish_metrics();
}

void Simulator::publish_metrics() {
  if (!metrics_) return;
  obs::MetricsRegistry& m = *metrics_;
  // Counters are cumulative; set-to-current keeps re-publication idempotent.
  m.gauge("sim.events_executed").set(static_cast<double>(executed_));
  m.gauge("sim.events_scheduled").set(static_cast<double>(scheduled_));
  m.gauge("sim.pending_events").set(static_cast<double>(events_.size()));
  m.gauge("sim.max_pending_events").set(static_cast<double>(max_pending_));
  m.gauge("sim.now").set(now_);
}

}  // namespace sfq::sim
