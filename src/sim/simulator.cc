#include "sim/simulator.h"

#include <stdexcept>

#include "obs/metrics.h"

namespace sfq::sim {

EventId Simulator::at(Time when, std::function<void()> action) {
  if (when < now_) throw std::invalid_argument("Simulator: event in the past");
  ++scheduled_;
  EventId id = events_.schedule(when, std::move(action));
  if (events_.size() > max_pending_) max_pending_ = events_.size();
  return id;
}

void Simulator::run_until(Time deadline) {
  while (events_.next_time() <= deadline) {
    EventQueue::Popped e;
    if (!events_.pop(e)) break;
    now_ = e.when;  // the action observes the correct clock
    ++executed_;
    e.action();
  }
  if (deadline > now_ && deadline != kTimeInfinity) now_ = deadline;
  publish_metrics();
}

void Simulator::run() {
  EventQueue::Popped e;
  while (events_.pop(e)) {
    now_ = e.when;
    ++executed_;
    e.action();
  }
  publish_metrics();
}

void Simulator::publish_metrics() {
  if (!metrics_) return;
  obs::MetricsRegistry& m = *metrics_;
  // Counters are cumulative; set-to-current keeps re-publication idempotent.
  m.gauge("sim.events_executed").set(static_cast<double>(executed_));
  m.gauge("sim.events_scheduled").set(static_cast<double>(scheduled_));
  m.gauge("sim.pending_events").set(static_cast<double>(events_.size()));
  m.gauge("sim.max_pending_events").set(static_cast<double>(max_pending_));
  m.gauge("sim.now").set(now_);
}

}  // namespace sfq::sim
