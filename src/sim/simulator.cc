#include "sim/simulator.h"

#include <stdexcept>

namespace sfq::sim {

EventId Simulator::at(Time when, std::function<void()> action) {
  if (when < now_) throw std::invalid_argument("Simulator: event in the past");
  return events_.schedule(when, std::move(action));
}

void Simulator::run_until(Time deadline) {
  while (events_.next_time() <= deadline) {
    EventQueue::Popped e;
    if (!events_.pop(e)) break;
    now_ = e.when;  // the action observes the correct clock
    e.action();
  }
  if (deadline > now_ && deadline != kTimeInfinity) now_ = deadline;
}

void Simulator::run() {
  EventQueue::Popped e;
  while (events_.pop(e)) {
    now_ = e.when;
    e.action();
  }
}

}  // namespace sfq::sim
