#pragma once

#include <functional>

#include "sim/event_queue.h"

namespace sfq::sim {

// The simulation clock plus event queue. All components hold a Simulator&
// and schedule callbacks on it; `run_until`/`run` advance the clock.
class Simulator {
 public:
  Time now() const { return now_; }

  EventId at(Time when, std::function<void()> action);
  EventId after(Time delay, std::function<void()> action) {
    return at(now_ + delay, std::move(action));
  }
  void cancel(EventId id) { events_.cancel(id); }

  // Runs events until the queue drains or the clock would pass `deadline`
  // (events at exactly `deadline` run). The clock ends at
  // min(deadline, last event time).
  void run_until(Time deadline);

  // Runs until the event queue is empty.
  void run();

  std::size_t pending_events() const { return events_.size(); }

 private:
  EventQueue events_;
  Time now_ = 0.0;
};

}  // namespace sfq::sim
