#pragma once

#include <cstdint>
#include <functional>

#include "sim/event_queue.h"

namespace sfq::obs {
class MetricsRegistry;
}

namespace sfq::sim {

// The simulation clock plus event queue. All components hold a Simulator&
// and schedule callbacks on it; `run_until`/`run` advance the clock.
class Simulator {
 public:
  Time now() const { return now_; }

  EventId at(Time when, std::function<void()> action);
  EventId after(Time delay, std::function<void()> action) {
    return at(now_ + delay, std::move(action));
  }
  void cancel(EventId id) { events_.cancel(id); }

  // Runs events until the queue drains or the clock would pass `deadline`
  // (events at exactly `deadline` run). The clock ends at
  // min(deadline, last event time).
  void run_until(Time deadline);

  // Runs until the event queue is empty.
  void run();

  std::size_t pending_events() const { return events_.size(); }

  // Event-loop counters (always maintained; they cost one increment each).
  uint64_t events_executed() const { return executed_; }
  uint64_t events_scheduled() const { return scheduled_; }
  std::size_t max_pending_events() const { return max_pending_; }

  // Publishes the counters above into `reg` at the end of every run/run_until
  // (sim.events_executed, sim.events_scheduled, sim.pending_events,
  // sim.max_pending_events, sim.now). nullptr detaches.
  void set_metrics(obs::MetricsRegistry* reg) { metrics_ = reg; }

 private:
  void publish_metrics();

  EventQueue events_;
  Time now_ = 0.0;
  uint64_t executed_ = 0;
  uint64_t scheduled_ = 0;
  std::size_t max_pending_ = 0;
  obs::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace sfq::sim
