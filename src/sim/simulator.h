#pragma once

#include <cstdint>
#include <functional>
#include <utility>

#include "obs/telemetry/profile.h"
#include "sim/event_queue.h"

namespace sfq::obs {
class MetricsRegistry;
}

namespace sfq::sim {

// The simulation clock plus event queue. All components hold a Simulator&
// and schedule work on it; `run_until`/`run` advance the clock.
//
// Two scheduling flavours: the typed-event overloads are the per-packet hot
// path (allocation-free in steady state — see sim/event_queue.h); the
// std::function overloads are the general-purpose fallback for cold paths.
class Simulator {
 public:
  Time now() const { return now_; }

  EventId at(Time when, std::function<void()> action);
  EventId at(Time when, Event ev);
  EventId after(Time delay, std::function<void()> action) {
    return at(now_ + delay, std::move(action));
  }
  EventId after(Time delay, Event ev) {
    return at(now_ + delay, std::move(ev));
  }

  // Hot-path typed scheduling (see EventQueue::schedule_packet &c.): the
  // event is written straight into the queue's slab, no Event temp.
  EventId at_packet(Time when, EventOp op, EventTarget* target,
                    const Packet& p, Time t0 = 0.0, uint32_t aux = 0) {
    check_future(when);
    return note_scheduled(
        events_.schedule_packet(when, op, target, p, t0, aux));
  }
  EventId at_tick(Time when, EventTarget* target, double bits) {
    check_future(when);
    return note_scheduled(events_.schedule_tick(when, target, bits));
  }
  EventId at_flow(Time when, EventOp op, EventTarget* target, FlowId flow) {
    check_future(when);
    return note_scheduled(events_.schedule_flow(when, op, target, flow));
  }

  void cancel(EventId id) { events_.cancel(id); }

  // Runs events until the queue drains or the clock would pass `deadline`
  // (events at exactly `deadline` run). The clock ends at
  // min(deadline, last event time).
  void run_until(Time deadline);

  // Runs until the event queue is empty.
  void run();

  std::size_t pending_events() const { return events_.size(); }

  // Event-loop counters (always maintained; they cost one increment each).
  uint64_t events_executed() const { return executed_; }
  uint64_t events_scheduled() const { return scheduled_; }
  std::size_t max_pending_events() const { return max_pending_; }

  // Publishes the counters above into `reg` at the end of every run/run_until
  // (sim.events_executed, sim.events_scheduled, sim.pending_events,
  // sim.max_pending_events, sim.now). nullptr detaches.
  void set_metrics(obs::MetricsRegistry* reg) { metrics_ = reg; }

  // Stage profiling (obs/telemetry/profile.h): when builds define
  // SFQ_TELEMETRY_PROFILING and the profiler is enabled, every dispatched
  // event records its wall-clock cost into HistId::kStageSimEvent. nullptr
  // detaches; without the compile flag this is a dead store.
  void set_profiler(obs::telemetry::StageProfiler* prof) { profiler_ = prof; }

 private:
  // Zero-copy dispatch: the event is run in place in the queue's slab
  // (stable chunk addresses) and its slot recycled afterwards. Handlers may
  // schedule new events while theirs is live — they take other slots.
  void dispatch_next() {
    SFQ_PROF_SCOPE(profiler_, obs::telemetry::HistId::kStageSimEvent);
    Time when;
    const uint32_t slot = events_.pop_in_place(when);
    now_ = when;
    ++executed_;
    Event& ev = events_.event_at(slot);
    if (ev.op == EventOp::kCallback) [[unlikely]] {
      auto fn = events_.detach_callback(ev);
      events_.finish_pop(slot);
      fn();  // may outlive the slot; closure already detached
    } else {
      ev.target->on_event(ev, now_);
      events_.finish_pop(slot);
    }
  }
  void check_future(Time when) const {
    if (when < now_) [[unlikely]]
      throw_past_event();
  }
  [[noreturn]] static void throw_past_event();
  EventId note_scheduled(EventId id) {
    ++scheduled_;
    if (events_.size() > max_pending_) max_pending_ = events_.size();
    return id;
  }
  void publish_metrics();

  EventQueue events_;
  Time now_ = 0.0;
  uint64_t executed_ = 0;
  uint64_t scheduled_ = 0;
  std::size_t max_pending_ = 0;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::telemetry::StageProfiler* profiler_ = nullptr;
};

}  // namespace sfq::sim
