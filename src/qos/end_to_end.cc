#include "qos/end_to_end.h"

#include <cmath>

namespace sfq::qos {

HopGuarantee sfq_fc_hop(const FcParams& server, double sum_other_lmax,
                        double packet_bits, Time propagation) {
  HopGuarantee h;
  h.beta = sfq_fc_delay_term(server, sum_other_lmax, packet_bits);
  h.b = 0.0;
  h.lambda = 0.0;
  h.propagation = propagation;
  return h;
}

HopGuarantee sfq_ebf_hop(const EbfParams& server, double sum_other_lmax,
                         double packet_bits, Time propagation) {
  HopGuarantee h;
  h.beta = sfq_fc_delay_term(FcParams{server.rate, server.delta},
                             sum_other_lmax, packet_bits);
  h.b = server.b;
  h.lambda = server.alpha * server.rate;
  h.propagation = propagation;
  return h;
}

double EndToEndGuarantee::violation_prob(Time gamma) const {
  if (deterministic) return 0.0;
  return b_sum * std::exp(-gamma * lambda_eff);
}

EndToEndGuarantee compose(const std::vector<HopGuarantee>& hops) {
  EndToEndGuarantee g;
  double inv_lambda = 0.0;
  for (const HopGuarantee& h : hops) {
    g.theta += h.beta + h.propagation;
    if (h.b > 0.0) {
      g.deterministic = false;
      g.b_sum += h.b;
      inv_lambda += 1.0 / h.lambda;
    }
  }
  g.lambda_eff = inv_lambda > 0.0 ? 1.0 / inv_lambda : 0.0;
  return g;
}

Time leaky_bucket_e2e_delay_bound(const EndToEndGuarantee& g, double sigma,
                                  double rate, double packet_bits) {
  return sigma / rate - packet_bits / rate + g.theta;
}

double lossless_buffer_bits(double sigma, double rate, Time max_hold) {
  return sigma + rate * max_hold;
}

double loss_probability_bound(const EndToEndGuarantee& g, Time covered_delay) {
  if (covered_delay >= g.theta) {
    return g.violation_prob(covered_delay - g.theta);
  }
  return 1.0;  // the buffer does not even cover the deterministic part
}

}  // namespace sfq::qos
