#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/types.h"
#include "qos/bounds.h"
#include "qos/end_to_end.h"

namespace sfq::qos {

// Path-level admission control built directly on the paper's guarantees:
// a tandem of SFQ FC servers admits leaky-bucket flows as long as
//   (1) every hop keeps  sum of reserved rates <= C  (Theorems 2/4 premise),
//   (2) every admitted flow's Appendix-A.5 end-to-end delay bound — which
//       depends on the *other* flows' maximum packet sizes through
//       Theorem 4's sum l_n^max / C term — stays within its budget,
// including the flows admitted earlier (a new reservation inflates everyone's
// bound and must not break any standing contract).
class PathReservations {
 public:
  struct HopSpec {
    double capacity = 0.0;   // C of the FC server
    double delta = 0.0;      // delta(C)
    Time propagation = 0.0;  // tau to the next hop (ignored on the last)
  };

  struct Request {
    double rate = 0.0;             // r_f, bits/s, reserved at every hop
    double max_packet_bits = 0.0;  // l_f^max
    double sigma = 0.0;            // leaky-bucket burst (bits); >= one packet
    Time delay_budget = kTimeInfinity;  // contract on the A.5 e2e bound
    std::string name;
  };

  struct Decision {
    bool admitted = false;
    FlowId id = kInvalidFlow;
    Time e2e_bound = kTimeInfinity;  // A.5 bound at admission time
    std::string reason;              // human-readable rejection cause
  };

  explicit PathReservations(std::vector<HopSpec> hops);

  // Attempts to admit; on success the reservation is committed and the
  // decision carries the flow's current end-to-end bound.
  Decision admit(const Request& request);

  // Releases a previously admitted reservation (id from Decision::id).
  void release(FlowId id);

  // The A.5 end-to-end delay bound of an admitted flow *right now* (it
  // shrinks when other flows leave and grows when they join).
  Time current_bound(FlowId id) const;

  std::size_t active_flows() const;
  double reserved_rate() const;  // sum over active flows
  const std::vector<HopSpec>& hops() const { return hops_; }

 private:
  struct Entry {
    Request request;
    bool active = false;
  };

  // A.5 bound for `flow` given the other currently active flows plus an
  // optional candidate.
  Time bound_for(const Request& flow, const Request* extra) const;
  double sum_other_lmax(const Request& flow, const Request* extra) const;

  std::vector<HopSpec> hops_;
  std::vector<Entry> entries_;
};

}  // namespace sfq::qos
