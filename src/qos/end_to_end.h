#pragma once

#include <vector>

#include "core/types.h"
#include "qos/bounds.h"

namespace sfq::qos {

// Per-hop description for the end-to-end composition of §2.4: each server i
// guarantees  P(L^i <= EAT^i + beta^i + gamma) >= 1 - B^i exp(-lambda^i g).
// Deterministic (FC) hops have b = 0, lambda = +infinity.
struct HopGuarantee {
  Time beta = 0.0;        // max_m beta^{m,i}, seconds past EAT
  double b = 0.0;         // B^i
  double lambda = 0.0;    // lambda^i (1/seconds); ignored when b == 0
  Time propagation = 0.0; // tau^{i,i+1} (0 for the last hop)
};

// Builds the hop guarantee of an SFQ FC server (Theorem 4).
HopGuarantee sfq_fc_hop(const FcParams& server, double sum_other_lmax,
                        double packet_bits, Time propagation);

// Builds the hop guarantee of an SFQ EBF server (Theorem 5).
HopGuarantee sfq_ebf_hop(const EbfParams& server, double sum_other_lmax,
                         double packet_bits, Time propagation);

// Corollary 1 composed over K hops:
//   P(L^K <= EAT^1 + theta + gamma) >= 1 - (sum B^n) exp(-gamma / sum 1/l^n)
// with theta = sum beta^n + sum tau^{n,n+1}.
struct EndToEndGuarantee {
  Time theta = 0.0;        // deterministic part past EAT^1
  double b_sum = 0.0;      // sum of B^n
  double lambda_eff = 0.0; // 1 / sum(1/lambda^n); +inf if all deterministic
  bool deterministic = true;

  // Violation probability of "delay <= theta + gamma past EAT^1".
  double violation_prob(Time gamma) const;
};

EndToEndGuarantee compose(const std::vector<HopGuarantee>& hops);

// Appendix A.5 — end-to-end *delay* bound (departure - arrival at hop 1) for
// a flow shaped by a (sigma, rho) leaky bucket and served at rate r >= rho at
// every hop:  EAT^1 - A^1 <= sigma/r - l/r, so
//   d <= sigma/r - l_pkt/r + theta.
Time leaky_bucket_e2e_delay_bound(const EndToEndGuarantee& g, double sigma,
                                  double rate, double packet_bits);

// Corollary 1's other dividends (§2.4: "can be used to determine ... packet
// loss probability and buffer requirement for any traffic specification"):

// Bits of buffering a hop must give a (sigma, rate) leaky-bucket flow so it
// never drops: while a packet may sit for up to `max_hold` (the flow's delay
// bound at that hop, seconds past EAT plus the burst tolerance), arrivals
// during that window are bounded by sigma + rate * max_hold.
double lossless_buffer_bits(double sigma, double rate, Time max_hold);

// If instead the buffer only covers delays up to `covered_delay`, a packet is
// lost when its delay would exceed it; on a stochastic (EBF) path the
// Corollary-1 tail bounds that probability.
double loss_probability_bound(const EndToEndGuarantee& g, Time covered_delay);

}  // namespace sfq::qos
