#pragma once

#include <algorithm>
#include <vector>

#include "core/types.h"

namespace sfq::qos {

// Expected Arrival Time recursion (eq. 37):
//   EAT(p^j, r^j) = max{ A(p^j), EAT(p^{j-1}, r^{j-1}) + l^{j-1}/r^{j-1} },
//   EAT(p^0) = -infinity.
// Every delay guarantee in the paper is stated relative to this quantity;
// tests and benches use the tracker to evaluate Theorems 4/5/7/9 on observed
// arrival streams.
class EatTracker {
 public:
  // Feeds arrival j and returns EAT(p^j, r^j).
  Time on_arrival(Time arrival, double bits, double rate) {
    const Time eat =
        any_ ? std::max(arrival, last_eat_ + last_bits_ / last_rate_)
             : arrival;
    any_ = true;
    last_eat_ = eat;
    last_bits_ = bits;
    last_rate_ = rate;
    return eat;
  }

  void reset() { any_ = false; }

 private:
  bool any_ = false;
  Time last_eat_ = 0.0;
  double last_bits_ = 0.0;
  double last_rate_ = 1.0;
};

// Convenience: per-flow EAT trackers indexed densely.
class PerFlowEat {
 public:
  Time on_arrival(FlowId f, Time arrival, double bits, double rate) {
    if (f >= trackers_.size()) trackers_.resize(f + 1);
    return trackers_[f].on_arrival(arrival, bits, rate);
  }

 private:
  std::vector<EatTracker> trackers_;
};

}  // namespace sfq::qos
