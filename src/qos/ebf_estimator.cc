#include "qos/ebf_estimator.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sfq::qos {

EbfFit estimate_ebf(net::RateProfile& profile, double average_rate,
                    const EbfEstimatorOptions& options) {
  if (average_rate <= 0.0)
    throw std::invalid_argument("estimate_ebf: average_rate must be positive");
  if (options.window_lengths.empty() || options.start_step <= 0.0 ||
      options.horizon <= 0.0)
    throw std::invalid_argument("estimate_ebf: bad options");

  // 1. Sample the deficit process.
  std::vector<double> deficits;
  for (Time tau : options.window_lengths) {
    for (Time t = 0.0; t + tau <= options.horizon; t += options.start_step) {
      const double d = average_rate * tau - profile.work(t, t + tau);
      deficits.push_back(std::max(0.0, d));
    }
  }
  if (deficits.size() < 16)
    throw std::invalid_argument("estimate_ebf: too few samples");
  std::sort(deficits.begin(), deficits.end());

  EbfFit fit;
  fit.samples = deficits.size();
  fit.max_observed_deficit = deficits.back();
  fit.params.rate = average_rate;

  // 2. delta: the requested quantile of the deficit distribution.
  const std::size_t qidx = static_cast<std::size_t>(
      options.delta_quantile * static_cast<double>(deficits.size() - 1));
  fit.params.delta = deficits[qidx];

  // 3. Tail fit: for thresholds gamma_k past delta, the empirical exceedance
  // p_k = P(deficit > delta + gamma_k); regress log p_k on gamma_k.
  const double span = fit.max_observed_deficit - fit.params.delta;
  if (span <= 0.0) {
    // Degenerate (constant-rate-like) link: nothing above delta.
    fit.params.b = 1.0;
    fit.params.alpha = 1e9;
    return fit;
  }
  std::vector<double> xs, ys;
  const int k_max = std::max(options.tail_points, 3);
  for (int k = 0; k < k_max; ++k) {
    const double gamma =
        span * static_cast<double>(k) / static_cast<double>(k_max);
    const double thr = fit.params.delta + gamma;
    const auto it = std::upper_bound(deficits.begin(), deficits.end(), thr);
    const double p = static_cast<double>(deficits.end() - it) /
                     static_cast<double>(deficits.size());
    if (p <= 0.0) break;
    xs.push_back(gamma);
    ys.push_back(std::log(p));
  }
  if (xs.size() < 2) {
    fit.params.b = 1.0;
    fit.params.alpha = 1.0 / std::max(span, 1e-9);
    return fit;
  }

  // Least squares y = log(B) - alpha * x.
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  const double n = static_cast<double>(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
  }
  const double denom = n * sxx - sx * sx;
  double slope = denom != 0.0 ? (n * sxy - sx * sy) / denom : 0.0;
  double intercept = (sy - slope * sx) / n;
  if (slope >= 0.0) slope = -1.0 / std::max(span, 1e-9);  // force decay

  fit.params.alpha = -slope;
  fit.params.b = std::exp(intercept);

  // 4. Conservative inflation: raise B until the fitted curve dominates
  // every measured tail point.
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double fitted = fit.params.b * std::exp(-fit.params.alpha * xs[i]);
    const double measured = std::exp(ys[i]);
    if (measured > fitted)
      fit.params.b *= measured / fitted;
  }
  fit.params.b = std::max(fit.params.b, 1e-12);
  return fit;
}

}  // namespace sfq::qos
