#include "qos/admission.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sfq::qos {

bool rates_admissible(const std::vector<double>& rates, double capacity) {
  double sum = 0.0;
  for (double r : rates) sum += r;
  return sum <= capacity * (1.0 + 1e-12);
}

namespace {

// Demand just after time t: each flow with t >= d_n contributes
// (floor((t - d_n) r_n / l_n) + 1) * l_n.
double demand_after(const std::vector<EddFlow>& flows, Time t) {
  double bits = 0.0;
  for (const EddFlow& f : flows) {
    if (t < f.deadline) continue;
    const double k = std::floor((t - f.deadline) * f.rate / f.packet_bits);
    bits += (k + 1.0) * f.packet_bits;
  }
  return bits;
}

}  // namespace

bool edd_schedulable(const std::vector<EddFlow>& flows, double capacity,
                     Time horizon) {
  if (flows.empty()) return true;
  double rate_sum = 0.0;
  for (const EddFlow& f : flows) {
    if (f.rate <= 0.0 || f.packet_bits <= 0.0 || f.deadline < 0.0)
      throw std::invalid_argument("edd_schedulable: bad flow");
    rate_sum += f.rate;
  }
  if (rate_sum > capacity) return false;

  if (horizon <= 0.0) {
    if (rate_sum >= capacity)
      throw std::invalid_argument(
          "edd_schedulable: horizon required when sum r == C");
    double slack_bits = 0.0;
    for (const EddFlow& f : flows)
      slack_bits += std::max(0.0, f.packet_bits - f.deadline * f.rate);
    horizon = slack_bits / (capacity - rate_sum);
    horizon = std::max<Time>(horizon, 0.0);
  }

  // Enumerate jump points t = d_n + k l_n / r_n within the horizon.
  std::vector<Time> points;
  for (const EddFlow& f : flows) {
    const Time step = f.packet_bits / f.rate;
    for (Time t = f.deadline; t <= horizon + step; t += step)
      points.push_back(t);
  }
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end()), points.end());

  for (Time t : points) {
    if (t <= 0.0) {
      // A jump at (or before) t=0 with positive demand is infeasible.
      if (demand_after(flows, t) > 0.0) return false;
      continue;
    }
    if (demand_after(flows, t) > capacity * t * (1.0 + 1e-12)) return false;
  }
  return true;
}

}  // namespace sfq::qos
