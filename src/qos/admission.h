#pragma once

#include <vector>

#include "core/types.h"

namespace sfq::qos {

// Rate-based admission control used by Theorems 2–5: admit while
// sum of reserved rates <= C.
bool rates_admissible(const std::vector<double>& rates, double capacity);

// Delay-EDD flow descriptor for the schedulability condition of eq. (67).
struct EddFlow {
  double rate;         // r_n, bits/s
  double packet_bits;  // l_n
  Time deadline;       // d_n, seconds
};

// Exact test of eq. (67):
//   forall t > 0:  sum_n max{0, ceil((t - d_n) r_n / l_n)} l_n / C  <=  t.
// The left side only jumps at t = d_n + k l_n / r_n, so it suffices to check
// just after every jump up to a horizon; when sum r_n < C the horizon
//   T* = sum_n max(0, l_n - d_n r_n) / (C - sum_n r_n)
// is safe (beyond it the fluid upper bound of the demand stays below t).
// When sum r_n == C, `horizon` must be supplied by the caller.
bool edd_schedulable(const std::vector<EddFlow>& flows, double capacity,
                     Time horizon = 0.0);

}  // namespace sfq::qos
