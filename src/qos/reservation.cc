#include "qos/reservation.h"

#include <stdexcept>

namespace sfq::qos {

PathReservations::PathReservations(std::vector<HopSpec> hops)
    : hops_(std::move(hops)) {
  if (hops_.empty())
    throw std::invalid_argument("PathReservations: empty path");
  for (const HopSpec& h : hops_)
    if (h.capacity <= 0.0 || h.delta < 0.0)
      throw std::invalid_argument("PathReservations: bad hop");
}

double PathReservations::sum_other_lmax(const Request& flow,
                                        const Request* extra) const {
  double s = 0.0;
  for (const Entry& e : entries_)
    if (e.active && &e.request != &flow) s += e.request.max_packet_bits;
  if (extra && extra != &flow) s += extra->max_packet_bits;
  return s;
}

Time PathReservations::bound_for(const Request& flow,
                                 const Request* extra) const {
  const double sum_other = sum_other_lmax(flow, extra);
  std::vector<HopGuarantee> hg;
  hg.reserve(hops_.size());
  for (std::size_t i = 0; i < hops_.size(); ++i) {
    hg.push_back(sfq_fc_hop({hops_[i].capacity, hops_[i].delta}, sum_other,
                            flow.max_packet_bits,
                            i + 1 < hops_.size() ? hops_[i].propagation : 0.0));
  }
  return leaky_bucket_e2e_delay_bound(compose(hg), flow.sigma, flow.rate,
                                      flow.max_packet_bits);
}

PathReservations::Decision PathReservations::admit(const Request& request) {
  Decision d;
  if (request.rate <= 0.0 || request.max_packet_bits <= 0.0) {
    d.reason = "invalid request (rate and max packet must be positive)";
    return d;
  }
  if (request.sigma < request.max_packet_bits) {
    d.reason = "sigma must cover at least one packet";
    return d;
  }

  // (1) Rate check at the tightest hop.
  double committed = reserved_rate();
  for (const HopSpec& h : hops_) {
    if (committed + request.rate > h.capacity * (1.0 + 1e-12)) {
      d.reason = "rate: hop capacity exceeded";
      return d;
    }
  }

  // (2) The candidate's own bound against its budget.
  const Time own = bound_for(request, nullptr);
  if (own > request.delay_budget) {
    d.reason = "delay: own A.5 bound exceeds the budget";
    return d;
  }

  // (3) Standing contracts: everyone's bound re-derived with the candidate's
  // l^max included must stay within their budgets.
  for (const Entry& e : entries_) {
    if (!e.active) continue;
    if (bound_for(e.request, &request) > e.request.delay_budget) {
      d.reason = "delay: would break the contract of '" + e.request.name + "'";
      return d;
    }
  }

  // Commit.
  FlowId id = kInvalidFlow;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (!entries_[i].active) {
      id = static_cast<FlowId>(i);
      break;
    }
  }
  if (id == kInvalidFlow) {
    id = static_cast<FlowId>(entries_.size());
    entries_.emplace_back();
  }
  entries_[id].request = request;
  entries_[id].active = true;

  d.admitted = true;
  d.id = id;
  d.e2e_bound = bound_for(entries_[id].request, nullptr);
  return d;
}

void PathReservations::release(FlowId id) {
  if (id >= entries_.size() || !entries_[id].active)
    throw std::out_of_range("PathReservations: unknown reservation");
  entries_[id].active = false;
}

Time PathReservations::current_bound(FlowId id) const {
  if (id >= entries_.size() || !entries_[id].active)
    throw std::out_of_range("PathReservations: unknown reservation");
  return bound_for(entries_[id].request, nullptr);
}

std::size_t PathReservations::active_flows() const {
  std::size_t n = 0;
  for (const Entry& e : entries_)
    if (e.active) ++n;
  return n;
}

double PathReservations::reserved_rate() const {
  double s = 0.0;
  for (const Entry& e : entries_)
    if (e.active) s += e.request.rate;
  return s;
}

}  // namespace sfq::qos
