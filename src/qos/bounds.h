#pragma once

#include <cstddef>
#include <vector>

#include "core/types.h"

namespace sfq::qos {

// Fluctuation Constrained server parameters (C, delta(C)) — Definition 1.
struct FcParams {
  double rate = 0.0;   // C, bits/s
  double delta = 0.0;  // delta(C), bits
};

// Exponentially Bounded Fluctuation parameters (C, B, alpha, delta(C)) —
// Definition 2.
struct EbfParams {
  double rate = 0.0;
  double b = 0.0;      // B, probability prefactor
  double alpha = 0.0;  // 1/bits
  double delta = 0.0;  // bits
};

// ---------------------------------------------------------------------------
// Theorem 1 — fairness bound (also stats::sfq_fairness_bound).
double sfq_fairness_bound(double lf_max, double rf, double lm_max, double rm);

// ---------------------------------------------------------------------------
// Theorem 2 — throughput guarantee of a backlogged flow on an SFQ FC server:
//   W_f(t1,t2) >= rf (t2-t1) - rf * sum_lmax/C - rf * delta/C - lf_max.
// `sum_lmax` is the sum of l_n^max over every flow at the server.
double sfq_fc_throughput_lower_bound(const FcParams& server, double rf,
                                     double sum_lmax, double lf_max,
                                     Time t1, Time t2);

// Theorem 3 — probability that the EBF throughput guarantee with slack
// gamma (bits) is violated: B * exp(-alpha * gamma).
double sfq_ebf_throughput_violation_prob(const EbfParams& server,
                                         double gamma);
// The Theorem-3 lower bound at slack gamma.
double sfq_ebf_throughput_lower_bound(const EbfParams& server, double rf,
                                      double sum_lmax, double lf_max,
                                      Time t1, Time t2, double gamma);

// ---------------------------------------------------------------------------
// Theorem 4 — single-server deadline for SFQ on an FC server. Returns the
// latency *relative to EAT(p_f^j, r_f^j)* (the beta_f^j of §2.4):
//   beta = sum_{n != f} l_n^max / C + l_pkt / C + delta / C.
Time sfq_fc_delay_term(const FcParams& server, double sum_other_lmax,
                       double packet_bits);

// SCFQ counterpart (eq. 56): sum_{n != f} l_n^max / C + l_pkt / r.
Time scfq_delay_term(double capacity, double sum_other_lmax,
                     double packet_bits, double packet_rate);

// WFQ counterpart (§2.3): l_pkt / r + l_max / C.
Time wfq_delay_term(double capacity, double l_max, double packet_bits,
                    double packet_rate);

// Eq. 57 — the SCFQ-vs-SFQ maximum-delay gap: l/r - l/C.
Time scfq_sfq_delay_gap(double capacity, double packet_bits,
                        double packet_rate);

// Eq. 58 — Delta(p_f^j), the WFQ-minus-SFQ maximum-delay difference.
Time wfq_sfq_delay_delta(double capacity, double l_max, double sum_other_lmax,
                         double packet_bits, double packet_rate);

// Eq. 60 — threshold form of eq. 58 for uniform packets: SFQ beats WFQ when
// r_f / C <= 1 / (|Q| - 1).
bool sfq_beats_wfq_uniform(double rf, double capacity, std::size_t num_flows);

// Theorem 5 — violation probability of the EBF delay bound with slack gamma
// seconds is B * exp(-alpha * C * gamma) (lambda = alpha * C in §2.4).
double sfq_ebf_delay_violation_prob(const EbfParams& server, Time gamma);

// ---------------------------------------------------------------------------
// Eq. 65 — the virtual server of a class with rate rf under an FC parent is
// itself FC. This is the recursion that makes hierarchical SFQ analyzable.
FcParams hsfq_class_params(const FcParams& parent, double rf, double sum_lmax,
                           double lf_max);

// Theorem 7 — Delay-EDD on an FC server meets D(p) within l_max/C + delta/C.
Time edd_fc_delay_slack(const FcParams& server, double l_max);

// ---------------------------------------------------------------------------
// §3 delay shifting. Flat bound (eq. 69) and hierarchical bound (eq. 71),
// both relative to EAT, for uniform packet length l.
Time delay_shift_flat_term(const FcParams& server, std::size_t q_total,
                           double packet_bits);
Time delay_shift_hier_term(const FcParams& server, std::size_t q_partition,
                           double partition_rate, std::size_t num_partitions,
                           double packet_bits);
// Eq. 73 — true when the partition gets a *smaller* bound hierarchically.
bool delay_shift_improves(std::size_t q_partition, std::size_t q_total,
                          std::size_t num_partitions, double partition_rate,
                          double capacity);

}  // namespace sfq::qos
