#pragma once

#include <vector>

#include "core/types.h"
#include "net/rate_profile.h"
#include "qos/bounds.h"

namespace sfq::qos {

// Empirical calibration of EBF parameters (Definition 2) for a measured or
// modelled variable-rate link. The paper's EBF theorems need (C, B, alpha,
// delta) from *somewhere*; this estimator fits them from the link's work
// function:
//
//   deficit(t, tau) = C*tau - W(t, t+tau)
//
// sampled over a grid of window starts and lengths. delta is chosen as a low
// quantile anchor and (B, alpha) by least-squares on the log of the deficit
// tail beyond delta, then B is inflated so the fitted curve upper-bounds
// every measured tail point (making the returned parameters conservative:
// P(deficit > delta + gamma) <= B e^{-alpha gamma} holds on the sample).
struct EbfFit {
  EbfParams params;
  double max_observed_deficit = 0.0;  // bits
  std::size_t samples = 0;
};

struct EbfEstimatorOptions {
  Time horizon = 60.0;          // observation window [0, horizon]
  std::vector<Time> window_lengths = {0.25, 0.5, 1.0, 2.0};
  Time start_step = 0.05;       // spacing of window starts
  double delta_quantile = 0.5;  // deficit quantile anchoring delta
  int tail_points = 12;         // thresholds used for the exponential fit
};

// `average_rate` is the C the caller wants to claim; must not exceed the
// profile's long-run rate or the deficits drift and no exponential fits.
EbfFit estimate_ebf(net::RateProfile& profile, double average_rate,
                    const EbfEstimatorOptions& options = {});

}  // namespace sfq::qos
