#include "qos/bounds.h"

#include <cmath>

namespace sfq::qos {

double sfq_fairness_bound(double lf_max, double rf, double lm_max,
                          double rm) {
  return lf_max / rf + lm_max / rm;
}

double sfq_fc_throughput_lower_bound(const FcParams& server, double rf,
                                     double sum_lmax, double lf_max,
                                     Time t1, Time t2) {
  const double c = server.rate;
  return rf * (t2 - t1) - rf * sum_lmax / c - rf * server.delta / c - lf_max;
}

double sfq_ebf_throughput_violation_prob(const EbfParams& server,
                                         double gamma) {
  return server.b * std::exp(-server.alpha * gamma);
}

double sfq_ebf_throughput_lower_bound(const EbfParams& server, double rf,
                                      double sum_lmax, double lf_max,
                                      Time t1, Time t2, double gamma) {
  const double c = server.rate;
  return rf * (t2 - t1) - rf * sum_lmax / c - rf * server.delta / c -
         rf * gamma / c - lf_max;
}

Time sfq_fc_delay_term(const FcParams& server, double sum_other_lmax,
                       double packet_bits) {
  const double c = server.rate;
  return sum_other_lmax / c + packet_bits / c + server.delta / c;
}

Time scfq_delay_term(double capacity, double sum_other_lmax,
                     double packet_bits, double packet_rate) {
  return sum_other_lmax / capacity + packet_bits / packet_rate;
}

Time wfq_delay_term(double capacity, double l_max, double packet_bits,
                    double packet_rate) {
  return packet_bits / packet_rate + l_max / capacity;
}

Time scfq_sfq_delay_gap(double capacity, double packet_bits,
                        double packet_rate) {
  return packet_bits / packet_rate - packet_bits / capacity;
}

Time wfq_sfq_delay_delta(double capacity, double l_max, double sum_other_lmax,
                         double packet_bits, double packet_rate) {
  return packet_bits / packet_rate + l_max / capacity -
         sum_other_lmax / capacity - packet_bits / capacity;
}

bool sfq_beats_wfq_uniform(double rf, double capacity, std::size_t num_flows) {
  if (num_flows <= 1) return false;
  return rf / capacity <= 1.0 / static_cast<double>(num_flows - 1);
}

double sfq_ebf_delay_violation_prob(const EbfParams& server, Time gamma) {
  const double lambda = server.alpha * server.rate;  // §2.4
  return server.b * std::exp(-lambda * gamma);
}

FcParams hsfq_class_params(const FcParams& parent, double rf, double sum_lmax,
                           double lf_max) {
  const double c = parent.rate;
  return FcParams{
      rf, rf * sum_lmax / c + rf * parent.delta / c + lf_max};
}

Time edd_fc_delay_slack(const FcParams& server, double l_max) {
  return l_max / server.rate + server.delta / server.rate;
}

Time delay_shift_flat_term(const FcParams& server, std::size_t q_total,
                           double packet_bits) {
  const double c = server.rate;
  // Eq. 69: (|Q| - 1) l / C + delta / C + l / C = |Q| l / C + delta / C.
  return static_cast<double>(q_total) * packet_bits / c + server.delta / c;
}

Time delay_shift_hier_term(const FcParams& server, std::size_t q_partition,
                           double partition_rate, std::size_t num_partitions,
                           double packet_bits) {
  const double c = server.rate;
  const double k = static_cast<double>(num_partitions);
  // Eq. 71: (|Q_i| + 1) l / C_i + (delta + K l) / C.
  return (static_cast<double>(q_partition) + 1.0) * packet_bits /
             partition_rate +
         (server.delta + k * packet_bits) / c;
}

bool delay_shift_improves(std::size_t q_partition, std::size_t q_total,
                          std::size_t num_partitions, double partition_rate,
                          double capacity) {
  // Eq. 73: (|Q_i| + 1) / (|Q| - K) < C_i / C.
  const double lhs = (static_cast<double>(q_partition) + 1.0) /
                     (static_cast<double>(q_total) -
                      static_cast<double>(num_partitions));
  return lhs < partition_rate / capacity;
}

}  // namespace sfq::qos
