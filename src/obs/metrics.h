// Named counters / gauges / histograms with text and JSON dumps, plus a
// TraceSink that aggregates a packet-lifecycle trace stream into a registry
// (per-flow delay histograms, backlog gauge, virtual-time lag, drops by
// cause). See docs/OBSERVABILITY.md for the metric name catalogue.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace sfq::obs {

class Counter {
 public:
  void inc(uint64_t n = 1) { v_ += n; }
  uint64_t value() const { return v_; }

 private:
  uint64_t v_ = 0;
};

class Gauge {
 public:
  void set(double v) { v_ = v; }
  double value() const { return v_; }

 private:
  double v_ = 0.0;
};

// Fixed-bucket histogram: `bounds` are the inclusive upper edges of the
// finite buckets; values above the last bound land in the overflow bucket.
// Quantiles interpolate linearly inside the winning bucket, which is exact
// enough for the delay distributions we track (bounds are log-spaced).
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds = default_delay_bounds());

  void observe(double v);

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double mean() const { return count_ ? sum_ / count_ : 0.0; }
  double quantile(double q) const;  // q in [0, 1]

  const std::vector<double>& bounds() const { return bounds_; }
  const std::vector<uint64_t>& bucket_counts() const { return counts_; }

  // Log-spaced seconds: 1 us .. ~100 s, 4 buckets per decade.
  static std::vector<double> default_delay_bounds();

 private:
  std::vector<double> bounds_;
  std::vector<uint64_t> counts_;  // bounds_.size() + 1 (overflow)
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Name -> metric map with deterministic (sorted) dump order. Accessors
// create on first use, so instrumentation sites never pre-register.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name) { return counters_[name]; }
  Gauge& gauge(const std::string& name) { return gauges_[name]; }
  Histogram& histogram(const std::string& name);
  Histogram& histogram(const std::string& name, std::vector<double> bounds);

  bool has_counter(const std::string& name) const {
    return counters_.count(name) != 0;
  }
  bool has_gauge(const std::string& name) const {
    return gauges_.count(name) != 0;
  }
  bool has_histogram(const std::string& name) const {
    return histograms_.count(name) != 0;
  }

  // "name value" lines (histograms expand to _count/_mean/_p50/_p99/_max).
  void dump_text(std::ostream& out) const;
  // One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  void dump_json(std::ostream& out) const;
  std::string text() const;
  std::string json() const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

// Aggregates a trace stream. Flow labels come from `flow_names` when
// provided ("flow<id>" otherwise). Metrics populated:
//   sched.enqueued / sched.dequeued / sched.tx_packets        counters
//   sched.tx_bits                                             counter
//   sched.drops.<cause>                                       counters
//     one per DropCause: buffer_limit, unknown_flow, fault_loss,
//     corrupt, pushout, flow_removed, shed — all seven are materialized
//     at construction so clean runs report explicit zeros
//   sched.backlog_packets                                     gauge
//   sched.vtime / sched.vtime_lag                             gauges
//   flow.<label>.enqueued / .tx_packets / .drops              counters
//   flow.<label>.tx_bits                                      counter
//   flow.<label>.delay                                        histogram (s)
class MetricsSink final : public TraceSink {
 public:
  explicit MetricsSink(MetricsRegistry& reg,
                       std::vector<std::string> flow_names = {});

  void on_event(const TraceEvent& e) override;

 private:
  const std::string& flow_label(FlowId f);

  MetricsRegistry& reg_;
  std::vector<std::string> names_;
  VirtualTime max_finish_tag_ = 0.0;
};

}  // namespace sfq::obs
