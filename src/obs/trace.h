// Packet-lifecycle tracing (docs/OBSERVABILITY.md).
//
// Every theorem this repo reproduces is a statement about per-packet tags and
// timestamps, so the scheduler/server hot paths can emit a structured event
// stream: tag assignment, dequeue decisions, transmission start/end, drops
// (with cause) and virtual-time updates. Sinks consume the stream:
//
//   * RingBufferSink  — last-N events in memory, for tests and post-mortems,
//   * JsonlSink       — one JSON object per line, for offline analysis,
//   * NullSink        — swallows everything (benchmark parity),
//   * MetricsSink     — aggregates into a MetricsRegistry (obs/metrics.h),
//   * InvariantChecker— validates SFQ semantics online (obs/invariant_checker.h).
//
// Cost model: components hold a `Tracer*` that is nullptr by default, and
// every hook is a single predictable branch when tracing is off — cheap
// enough to keep compiled into the hot path unconditionally.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "core/packet.h"
#include "core/types.h"

namespace sfq::obs {

enum class TraceEventType : uint8_t {
  kEnqueue = 0,  // server accepted the packet (stamped arrival)
  kTag,          // scheduler assigned start/finish tags
  kDequeue,      // scheduler picked the packet for transmission
  kTxStart,      // transmission began on the link
  kTxEnd,        // transmission completed
  kDrop,         // server rejected the packet (see DropCause)
  kVtime,        // virtual time changed outside a dequeue (busy-period jump)
};

enum class DropCause : uint8_t {
  kNone = 0,
  kBufferLimit,   // queue cap reached (tail drop)
  kUnknownFlow,   // packet for a flow never registered (or currently removed)
  kFaultLoss,     // injected probabilistic loss (fault plan)
  kCorrupt,       // injected corruption, detected and discarded
  kPushout,       // evicted from the longest queue to admit a new arrival
  kFlowRemoved,   // flushed when its flow left the scheduler (churn)
  kShed,          // refused by the overload admission gate (weighted-fair
                  // load shedding; rt engine only — docs/ROBUSTNESS.md)
};
inline constexpr std::size_t kDropCauseCount = 8;

const char* to_string(TraceEventType t);
const char* to_string(DropCause c);

// One structured event. Packet-borne fields are copied out so sinks never
// hold references into scheduler state.
struct TraceEvent {
  TraceEventType type = TraceEventType::kEnqueue;
  DropCause drop_cause = DropCause::kNone;
  FlowId flow = kInvalidFlow;
  uint64_t seq = 0;           // per-flow packet sequence number
  double length_bits = 0.0;
  Time t = 0.0;               // simulation time of the event
  Time arrival = 0.0;         // packet arrival at the server (0 before inject)
  VirtualTime start_tag = 0.0;
  VirtualTime finish_tag = 0.0;
  VirtualTime vtime = 0.0;    // scheduler virtual time after the event
  uint64_t backlog = 0;       // queued packets after the event
};

// Fills the packet-borne fields of an event.
TraceEvent make_event(TraceEventType type, const Packet& p, Time t,
                      VirtualTime vtime, uint64_t backlog,
                      DropCause cause = DropCause::kNone);

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_event(const TraceEvent& e) = 0;
  // Called once when the traced run ends (flush files, final checks).
  virtual void finish() {}
  // Sinks that provably discard every event return true so the tracer can
  // skip event construction altogether (Tracer::active()).
  virtual bool discards_events() const { return false; }
};

// Swallows events. Exists so a sink slot can always be filled; hooks gate on
// Tracer::active(), so a tracer with only null sinks costs the same as no
// tracer at all.
class NullSink final : public TraceSink {
 public:
  void on_event(const TraceEvent&) override {}
  bool discards_events() const override { return true; }
};

// Fan-out dispatcher. Sinks are non-owning by default; `own` transfers
// lifetime to the tracer.
class Tracer {
 public:
  void add_sink(TraceSink* sink);
  void own(std::unique_ptr<TraceSink> sink);

  void emit(const TraceEvent& e) {
    ++emitted_;
    for (TraceSink* s : sinks_) s->on_event(e);
  }

  // Forwards to every sink once, at end of run. Idempotent per call site;
  // callers decide when the run is over.
  void finish();

  // True once a sink that actually consumes events is attached. Hooks check
  // this before building an event, so null-sink-only tracers cost one branch.
  bool active() const { return active_; }

  uint64_t emitted() const { return emitted_; }
  std::size_t sink_count() const { return sinks_.size(); }

 private:
  std::vector<TraceSink*> sinks_;
  std::vector<std::unique_ptr<TraceSink>> owned_;
  uint64_t emitted_ = 0;
  bool active_ = false;
};

// Keeps the most recent `capacity` events; older ones are overwritten.
class RingBufferSink final : public TraceSink {
 public:
  explicit RingBufferSink(std::size_t capacity);

  void on_event(const TraceEvent& e) override;

  // Oldest -> newest among retained events.
  std::vector<TraceEvent> events() const;
  std::size_t capacity() const { return buf_.size(); }
  std::size_t size() const { return size_; }
  uint64_t seen() const { return seen_; }
  uint64_t overwritten() const { return seen_ - size_; }

 private:
  std::vector<TraceEvent> buf_;
  std::size_t next_ = 0;  // next write slot
  std::size_t size_ = 0;  // retained events (<= capacity)
  uint64_t seen_ = 0;
};

// Escapes a string for inclusion inside a JSON string literal (quotes,
// backslashes, control characters).
std::string json_escape(const std::string& s);

// One compact JSON object per event. `meta` lines carry run context (flow
// names, scheduler) with full string escaping.
class JsonlSink final : public TraceSink {
 public:
  explicit JsonlSink(std::ostream& out);           // caller keeps the stream
  explicit JsonlSink(const std::string& path);     // sink owns an ofstream

  // Writes {"type":"meta","key":K,"value":V}; call before events for header
  // context (scheduler name, flow names).
  void meta(const std::string& key, const std::string& value);

  void on_event(const TraceEvent& e) override;
  void finish() override;  // flush

  uint64_t lines() const { return lines_; }

 private:
  std::unique_ptr<std::ostream> owned_;
  std::ostream* out_;
  uint64_t lines_ = 0;
};

}  // namespace sfq::obs
