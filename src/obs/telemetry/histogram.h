// Fixed-size log-linear (HDR-style) latency histogram with a lock-free
// record path and mergeable snapshots (docs/OBSERVABILITY.md).
//
// Values are unsigned nanoseconds. The bucket layout is the classic
// HDR decomposition: values below kSubBuckets are exact (one bucket per
// nanosecond); above that, each power-of-two octave is split into
// kSubBuckets/2 linear sub-buckets, so the relative quantization error is
// bounded by 2/kSubBuckets (~3.1%) everywhere. The layout covers the whole
// uint64 range — there is no unbounded overflow bucket, so every bucket has
// a finite upper edge and quantiles never extrapolate.
//
// record() is one relaxed fetch_add on fixed storage: wait-free,
// multi-producer safe, zero allocations. snapshot() copies bucket counts
// with relaxed loads; a snapshot's count is defined as the sum of its
// buckets, so totals are never torn even while writers race the reader
// (each bucket is individually consistent and monotone). The sample sum is
// not maintained online — snapshot() reconstructs it from bucket midpoints
// (exact below kSubBuckets, <= ~1.6% relative error above), which keeps the
// record path to a single atomic op.
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace sfq::obs::telemetry {

// 2^kSubBucketBits exact buckets, then kSubBuckets/2 linear sub-buckets per
// octave up to 2^64: values of bit width kSubBucketBits+1 .. 64 give
// exponents 1 .. 64-kSubBucketBits, one octave each.
inline constexpr unsigned kSubBucketBits = 6;
inline constexpr uint64_t kSubBuckets = 1ull << kSubBucketBits;
inline constexpr std::size_t kHistBuckets =
    kSubBuckets + (64 - kSubBucketBits) * (kSubBuckets / 2);

// Bucket index for a nanosecond value; branch-light bit arithmetic.
constexpr std::size_t hist_index(uint64_t v) {
  if (v < kSubBuckets) return static_cast<std::size_t>(v);
  const unsigned exp = std::bit_width(v) - kSubBucketBits;  // >= 1
  const uint64_t sub = v >> exp;  // top kSubBucketBits bits: [half, 2*half)
  return static_cast<std::size_t>(kSubBuckets +
                                  (exp - 1) * (kSubBuckets / 2) +
                                  (sub - kSubBuckets / 2));
}

// Inclusive lower edge of bucket i.
constexpr uint64_t hist_bucket_lo(std::size_t i) {
  if (i < kSubBuckets) return i;
  const std::size_t k = i - kSubBuckets;
  const unsigned exp = static_cast<unsigned>(k / (kSubBuckets / 2)) + 1;
  const uint64_t sub = kSubBuckets / 2 + k % (kSubBuckets / 2);
  return sub << exp;
}

// Exclusive upper edge of bucket i (saturates at uint64 max).
constexpr uint64_t hist_bucket_hi(std::size_t i) {
  if (i < kSubBuckets) return i + 1;
  const std::size_t k = i - kSubBuckets;
  const unsigned exp = static_cast<unsigned>(k / (kSubBuckets / 2)) + 1;
  const uint64_t width = 1ull << exp;
  const uint64_t lo = hist_bucket_lo(i);
  return lo + width < lo ? ~0ull : lo + width;  // saturate on wrap
}

// Bucket index for a nanosecond value presented as a positive double —
// the latency hot path (record_seconds_*) lands here. IEEE-754 doubles are
// already log-linear: (exponent << 5) | top-5-mantissa-bits IS the octave
// and sub-bucket, so one bit_cast + shift replaces the double->uint64
// conversion and bit_width of the integer path. Agrees with
// hist_index(to_nanos(s)) for every finite input (pinned by static_asserts
// and tests); negatives/NaN clamp to 0, >= 2^64 ns saturates.
constexpr std::size_t hist_index_ns(double ns) {
  if (!(ns >= static_cast<double>(kSubBuckets)))
    return ns > 0.0 ? static_cast<std::size_t>(ns) : 0;
  if (ns >= 1.8e19) return kHistBuckets - 1;
  const uint64_t bits = __builtin_bit_cast(uint64_t, ns);
  // bits >> 47 == (biased_exp << 5) | mant5; rebase so 2^kSubBucketBits
  // (biased exponent 1023 + kSubBucketBits) maps to bucket kSubBuckets.
  return static_cast<std::size_t>(
      (bits >> (52 - (kSubBucketBits - 1))) -
      ((1023ull + kSubBucketBits) << (kSubBucketBits - 1)) + kSubBuckets);
}

static_assert(hist_index(0) == 0);
static_assert(hist_index(kSubBuckets - 1) == kSubBuckets - 1);
static_assert(hist_index(kSubBuckets) == kSubBuckets);
static_assert(hist_index(~0ull) == kHistBuckets - 1);
static_assert(hist_bucket_lo(hist_index(12345)) <= 12345);
static_assert(hist_bucket_hi(hist_index(12345)) > 12345);
static_assert(hist_bucket_hi(kHistBuckets - 1) == ~0ull);
static_assert(hist_index_ns(-1.0) == 0);
static_assert(hist_index_ns(0.5) == 0);
static_assert(hist_index_ns(63.9) == 63);
static_assert(hist_index_ns(64.0) == hist_index(64));
static_assert(hist_index_ns(64.5) == hist_index(64));
static_assert(hist_index_ns(12345.0) == hist_index(12345));
static_assert(hist_index_ns(1e9) == hist_index(1000000000ull));
static_assert(hist_index_ns(1.9e19) == kHistBuckets - 1);

// Plain-value copy of a histogram at one instant; mergeable (shards sum
// bucket-wise) and the unit all quantile math runs on.
struct HistogramSnapshot {
  std::vector<uint64_t> counts;  // kHistBuckets, or empty (never recorded)
  uint64_t count = 0;            // sum of counts (authoritative total)
  uint64_t sum_ns = 0;           // reconstructed from bucket midpoints

  bool empty() const { return count == 0; }
  double mean_ns() const {
    return count ? static_cast<double>(sum_ns) / static_cast<double>(count)
                 : 0.0;
  }
  // Quantile in nanoseconds, q in [0,1]: linear interpolation inside the
  // winning bucket, clamped to the observed bucket range. q=0 returns the
  // lower edge of the lowest non-empty bucket, q=1 max_ns().
  double quantile_ns(double q) const;
  uint64_t min_ns() const;  // lower edge of the lowest non-empty bucket
  uint64_t max_ns() const;  // upper edge of the highest non-empty bucket - 1

  // Convenience accessors in seconds.
  double quantile_s(double q) const { return quantile_ns(q) * 1e-9; }
  double mean_s() const { return mean_ns() * 1e-9; }
  double max_s() const { return static_cast<double>(max_ns()) * 1e-9; }

  // Cumulative count of samples with value < upper_ns (bucket-granular:
  // buckets straddling upper_ns count fully when their lower edge is below).
  uint64_t cumulative_below(uint64_t upper_ns) const;

  void merge(const HistogramSnapshot& other);
};

// The live histogram. Fixed storage allocated at construction; everything
// after that is wait-free.
class LockFreeHistogram {
 public:
  LockFreeHistogram();

  LockFreeHistogram(const LockFreeHistogram&) = delete;
  LockFreeHistogram& operator=(const LockFreeHistogram&) = delete;

  void record(uint64_t ns) {
    counts_[hist_index(ns)].fetch_add(1, std::memory_order_relaxed);
  }
  void record_seconds(double s) {
    counts_[hist_index_ns(s * 1e9)].fetch_add(1, std::memory_order_relaxed);
  }

  // Single-writer fast path: a relaxed load+store pair instead of a locked
  // RMW — roughly 3x cheaper on x86. Only valid when exactly one thread
  // ever records into this histogram (the RtEngine dispatcher owns its
  // latency histograms this way); snapshot() readers are still fine.
  void record_single_writer(uint64_t ns) {
    std::atomic<uint64_t>& c = counts_[hist_index(ns)];
    c.store(c.load(std::memory_order_relaxed) + 1,
            std::memory_order_relaxed);
  }
  void record_seconds_single_writer(double s) {
    std::atomic<uint64_t>& c = counts_[hist_index_ns(s * 1e9)];
    c.store(c.load(std::memory_order_relaxed) + 1,
            std::memory_order_relaxed);
  }

  // Negative and non-finite inputs clamp to 0; huge ones saturate.
  static uint64_t to_nanos(double seconds);

  HistogramSnapshot snapshot() const;

 private:
  std::unique_ptr<std::atomic<uint64_t>[]> counts_;  // kHistBuckets
};

}  // namespace sfq::obs::telemetry
