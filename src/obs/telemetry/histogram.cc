#include "obs/telemetry/histogram.h"

#include <algorithm>
#include <cmath>

namespace sfq::obs::telemetry {

LockFreeHistogram::LockFreeHistogram()
    : counts_(new std::atomic<uint64_t>[kHistBuckets]) {
  for (std::size_t i = 0; i < kHistBuckets; ++i)
    counts_[i].store(0, std::memory_order_relaxed);
}

uint64_t LockFreeHistogram::to_nanos(double seconds) {
  if (!(seconds > 0.0)) return 0;  // negatives and NaN clamp to zero
  const double ns = seconds * 1e9;
  if (ns >= 1.8e19) return ~0ull;  // saturate far above any real latency
  return static_cast<uint64_t>(ns);
}

HistogramSnapshot LockFreeHistogram::snapshot() const {
  HistogramSnapshot s;
  s.counts.resize(kHistBuckets);
  uint64_t total = 0;
  double sum = 0.0;
  for (std::size_t i = 0; i < kHistBuckets; ++i) {
    const uint64_t c = counts_[i].load(std::memory_order_relaxed);
    s.counts[i] = c;
    if (c == 0) continue;
    total += c;
    // Exact buckets hold exactly their lower edge; log buckets contribute
    // their midpoint (halves summed separately to dodge uint64 overflow).
    const double mid =
        i < kSubBuckets
            ? static_cast<double>(i)
            : static_cast<double>(hist_bucket_lo(i)) / 2.0 +
                  static_cast<double>(hist_bucket_hi(i)) / 2.0;
    sum += static_cast<double>(c) * mid;
  }
  s.count = total;
  s.sum_ns = sum >= 1.8e19 ? ~0ull : static_cast<uint64_t>(sum);
  return s;
}

uint64_t HistogramSnapshot::min_ns() const {
  for (std::size_t i = 0; i < counts.size(); ++i)
    if (counts[i] != 0) return hist_bucket_lo(i);
  return 0;
}

uint64_t HistogramSnapshot::max_ns() const {
  for (std::size_t i = counts.size(); i-- > 0;)
    if (counts[i] != 0) return hist_bucket_hi(i) - 1;
  return 0;
}

double HistogramSnapshot::quantile_ns(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  uint64_t cum = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const uint64_t prev = cum;
    cum += counts[i];
    if (static_cast<double>(cum) < target) continue;
    const double lo = static_cast<double>(hist_bucket_lo(i));
    const double hi = static_cast<double>(hist_bucket_hi(i));
    const double frac = (target - static_cast<double>(prev)) /
                        static_cast<double>(counts[i]);
    return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
  }
  return static_cast<double>(max_ns());
}

uint64_t HistogramSnapshot::cumulative_below(uint64_t upper_ns) const {
  uint64_t cum = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (hist_bucket_lo(i) >= upper_ns) break;
    cum += counts[i];
  }
  return cum;
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  if (other.counts.empty()) return;
  if (counts.empty()) {
    *this = other;
    return;
  }
  for (std::size_t i = 0; i < counts.size(); ++i) counts[i] += other.counts[i];
  count += other.count;
  sum_ns += other.sum_ns;
}

}  // namespace sfq::obs::telemetry
