#include "obs/telemetry/telemetry.h"

#include <stdexcept>

namespace sfq::obs::telemetry {

Telemetry::Telemetry(TelemetryOptions opts)
    : shards_(opts.shards == 0 ? 1 : opts.shards),
      gauges_(new std::atomic<double>[shards_ * kGaugeCount]),
      hists_(new LockFreeHistogram[shards_ * kHistCount]) {
  for (std::size_t i = 0; i < shards_ * kGaugeCount; ++i)
    gauges_[i].store(0.0, std::memory_order_relaxed);
}

Telemetry::Writer Telemetry::writer(std::size_t shard) {
  if (shard >= shards_)
    throw std::out_of_range("Telemetry::writer: shard out of range");
  std::lock_guard<std::mutex> lock(writers_mu_);
  writers_.push_back(std::make_unique<Writer::Cells>());
  Writer::Cells* cells = writers_.back().get();
  cells->shard = shard;
  for (std::atomic<uint64_t>& c : cells->v)
    c.store(0, std::memory_order_relaxed);
  Writer w;
  w.cells_ = cells;
  return w;
}

TelemetrySnapshot Telemetry::snapshot() const {
  TelemetrySnapshot s;
  s.shards = shards_;
  s.epoch = epoch_.fetch_add(1, std::memory_order_relaxed) + 1;
  s.counters.assign(shards_, {});
  s.gauges.assign(shards_, {});
  {
    std::lock_guard<std::mutex> lock(writers_mu_);
    for (const auto& cells : writers_) {
      auto& dst = s.counters[cells->shard];
      for (std::size_t i = 0; i < kCounterCount; ++i)
        dst[i] += cells->v[i].load(std::memory_order_relaxed);
    }
  }
  for (std::size_t sh = 0; sh < shards_; ++sh)
    for (std::size_t g = 0; g < kGaugeCount; ++g)
      s.gauges[sh][g] =
          gauges_[sh * kGaugeCount + g].load(std::memory_order_relaxed);
  s.hists.resize(shards_);
  for (std::size_t sh = 0; sh < shards_; ++sh) {
    s.hists[sh].reserve(kHistCount);
    for (std::size_t h = 0; h < kHistCount; ++h)
      s.hists[sh].push_back(hists_[sh * kHistCount + h].snapshot());
  }
  return s;
}

uint64_t TelemetrySnapshot::counter_total(CounterId id) const {
  uint64_t total = 0;
  for (std::size_t sh = 0; sh < shards; ++sh) total += counter(id, sh);
  return total;
}

HistogramSnapshot TelemetrySnapshot::hist_total(HistId id) const {
  HistogramSnapshot total;
  for (std::size_t sh = 0; sh < shards; ++sh) total.merge(hist(id, sh));
  return total;
}

uint64_t TelemetrySnapshot::drops_total(std::size_t shard) const {
  uint64_t n = 0;
  for (std::size_t c = static_cast<std::size_t>(CounterId::kDropBufferLimit);
       c <= static_cast<std::size_t>(CounterId::kDropFlowRemoved); ++c)
    n += counters[shard][c];
  return n;
}

}  // namespace sfq::obs::telemetry
