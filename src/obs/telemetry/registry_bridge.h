// Bridge from the hot-path telemetry plane into PR 1's MetricsRegistry
// (docs/OBSERVABILITY.md), so existing dumps, configs and tests keep
// working: `sfq_serve --metrics out.json` includes the telemetry catalogue
// alongside the trace-derived metrics.
//
// Counters land under their telemetry names (shard-summed, plus a
// `.shard<N>` series when the plane has more than one shard) by advancing
// the registry counter to the snapshot value; gauges are set directly;
// histograms surface as <name>.{count,mean,p50,p99,max} gauges (seconds) —
// the registry's own Histogram accumulates raw observations and cannot
// adopt pre-bucketed counts losslessly.
//
// Idempotent per snapshot: bridging a newer snapshot of the same plane
// advances counters by the delta, so repeated periodic bridging is safe.
#pragma once

#include "obs/metrics.h"
#include "obs/telemetry/telemetry.h"

namespace sfq::obs::telemetry {

void bridge_to_registry(const TelemetrySnapshot& snap, MetricsRegistry& reg);

}  // namespace sfq::obs::telemetry
