#include "obs/telemetry/registry_bridge.h"

#include <string>

namespace sfq::obs::telemetry {

namespace {

// Advances a monotone registry counter to `target` (registry counters only
// expose inc(), so the bridge adds the delta; a target below the current
// value — a different plane bridged into the same registry — is left alone).
void advance(Counter& c, uint64_t target) {
  if (target > c.value()) c.inc(target - c.value());
}

void bridge_hist(MetricsRegistry& reg, const std::string& base,
                 const HistogramSnapshot& h) {
  reg.gauge(base + ".count").set(static_cast<double>(h.count));
  reg.gauge(base + ".mean").set(h.mean_s());
  reg.gauge(base + ".p50").set(h.quantile_s(0.50));
  reg.gauge(base + ".p99").set(h.quantile_s(0.99));
  reg.gauge(base + ".max").set(h.max_s());
}

}  // namespace

void bridge_to_registry(const TelemetrySnapshot& snap, MetricsRegistry& reg) {
  for (std::size_t c = 0; c < kCounterCount; ++c) {
    const CounterId id = static_cast<CounterId>(c);
    advance(reg.counter(name(id)), snap.counter_total(id));
    if (snap.shards > 1)
      for (std::size_t sh = 0; sh < snap.shards; ++sh)
        advance(reg.counter(std::string(name(id)) + ".shard" +
                            std::to_string(sh)),
                snap.counter(id, sh));
  }
  for (std::size_t g = 0; g < kGaugeCount; ++g) {
    const GaugeId id = static_cast<GaugeId>(g);
    // Gauges are per shard; the unsuffixed name carries shard 0 (the only
    // shard today), suffixed series appear once there are more.
    reg.gauge(name(id)).set(snap.gauge(id, 0));
    if (snap.shards > 1)
      for (std::size_t sh = 0; sh < snap.shards; ++sh)
        reg.gauge(std::string(name(id)) + ".shard" + std::to_string(sh))
            .set(snap.gauge(id, sh));
  }
  for (std::size_t h = 0; h < kHistCount; ++h) {
    const HistId id = static_cast<HistId>(h);
    bridge_hist(reg, name(id), snap.hist_total(id));
    if (snap.shards > 1)
      for (std::size_t sh = 0; sh < snap.shards; ++sh)
        bridge_hist(reg,
                    std::string(name(id)) + ".shard" + std::to_string(sh),
                    snap.hist(id, sh));
  }
}

}  // namespace sfq::obs::telemetry
