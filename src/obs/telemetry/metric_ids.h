// Static metric-id table for the hot-path telemetry plane
// (docs/OBSERVABILITY.md).
//
// PR 1's MetricsRegistry keys metrics by std::string and looks them up in a
// std::map — fine for end-of-run dumps, unusable at millions of events per
// second. Here every metric is a compile-time id into fixed arrays, so the
// record path is an index computation plus one relaxed atomic op and the
// name only materialises at exposition time. Shard is a first-class label
// dimension from day one: the sharded multi-core engine (ROADMAP item 1)
// reports through the same ids with one cell block per shard.
#pragma once

#include <cstddef>
#include <cstdint>

#include "obs/trace.h"  // DropCause

namespace sfq::obs::telemetry {

// Monotone counters. Order of the drop causes mirrors obs::DropCause
// (kBufferLimit..kFlowRemoved) so drop_counter() is pure arithmetic.
enum class CounterId : uint16_t {
  kIngressPushed = 0,  // packets that crossed a producer ring
  kIngressDrops,       // ring full / offer after stop
  kAccepted,           // entered the discipline
  kTransmitted,        // completed transmissions
  kTxBits,             // completed transmission payload, bits
  kAbandoned,          // ring items discarded by stop(kAbandon) / watchdog
  kDropBufferLimit,    // seven-cause taxonomy (docs/ROBUSTNESS.md)
  kDropUnknownFlow,
  kDropFaultLoss,
  kDropCorrupt,
  kDropPushout,
  kDropFlowRemoved,
  kDropShed,        // overload admission gate (weighted-fair shedding)
  kStalls,          // stall-watchdog trips
  kRecoveries,      // stall episodes the watchdog healed (service resumed)
  kOfferRetries,    // producer backpressure retries (LoadGen backoff)
  kOfferAbandoned,  // offers given up after retries / per-packet deadline
  kShardFailovers,  // completed shard failovers (fence -> rehome settled)
  kFlowsRehomed,    // flows migrated between shards (both directions)
  kCount,
};
inline constexpr std::size_t kCounterCount =
    static_cast<std::size_t>(CounterId::kCount);

// Instantaneous values, written by whichever thread owns the stage (the
// dispatcher at exit, the stats thread periodically).
enum class GaugeId : uint16_t {
  kBacklogPackets = 0,  // accepted - transmitted - post-enqueue drops
  kServiceLagMax,       // worst pacing lateness so far (s)
  kFairnessGap,         // Theorem-1 monitor: worst |dW_f/r_f - dW_m/r_m|
                        // over the last stats window (s)
  kFairnessGapMax,      // worst window gap seen this run (s)
  kFairnessBound,       // analytic bound l_f/r_f + l_m/r_m for the worst pair
  kOverloadState,       // overload state machine: 0 Normal, 1 Shedding,
                        // 2 Critical (docs/ROBUSTNESS.md)
  // Sharded-engine root aggregation (docs/REALTIME.md sharding section).
  // Written at shard 0 by the ShardedEngine stats thread; the per-shard
  // variants above carry the shard label of the dispatcher they describe.
  kRootFairnessGap,     // worst cross-shard normalized-service gap (s)
  kRootFairnessGapMax,  // worst root gap seen this run (s)
  kRootFairnessBound,   // hierarchical (eq.-65) bound for the worst pair
  kOverloadWorst,       // max overload state across shards
  kShardStalled,        // per shard: 1 while the dispatcher is permanently
                        // dead (killed or budget-exhausted), else 0
  kLastStallStage,      // per shard: StallStage of the latest stall as a
                        // number (-1 none .. 3 killed), live during the run
  kCount,
};
inline constexpr std::size_t kGaugeCount =
    static_cast<std::size_t>(GaugeId::kCount);

// Log-linear latency histograms (nanosecond domain; see histogram.h).
enum class HistId : uint16_t {
  kQueueDelay = 0,  // enqueue (producer stamp) -> transmit complete
  kIngressDwell,    // producer stamp -> dispatcher inject
  kServiceLag,      // completion lateness vs the pacing deadline
  kStageDrain,      // profiling scopes (off by default; profile.h)
  kStageSchedule,
  kStageTransmit,
  kStageSimEvent,
  kMigrationLatency,  // shard failover: fence -> flows resident (s)
  kCount,
};
inline constexpr std::size_t kHistCount =
    static_cast<std::size_t>(HistId::kCount);

// Dotted names, consistent with the PR-1 registry catalogue so bridged
// snapshots land under predictable keys.
constexpr const char* name(CounterId id) {
  constexpr const char* kNames[kCounterCount] = {
      "rt.ingress_pushed", "rt.ingress_drops",
      "rt.accepted",       "rt.transmitted",
      "rt.tx_bits",        "rt.abandoned",
      "sched.drops.buffer_limit", "sched.drops.unknown_flow",
      "sched.drops.fault_loss",   "sched.drops.corrupt",
      "sched.drops.pushout",      "sched.drops.flow_removed",
      "sched.drops.shed",
      "rt.stalls",         "rt.recoveries",
      "rt.offer_retries",  "rt.offer_abandoned",
      "rt.shard_failovers", "rt.flows_rehomed",
  };
  return kNames[static_cast<std::size_t>(id)];
}

constexpr const char* name(GaugeId id) {
  constexpr const char* kNames[kGaugeCount] = {
      "rt.backlog_packets", "rt.service_lag_max", "fairness.gap",
      "fairness.gap_max",   "fairness.bound",     "rt.overload_state",
      "fairness.root_gap",  "fairness.root_gap_max",
      "fairness.root_bound", "rt.overload_state_worst",
      "rt.shard_stalled",   "rt.last_stall_stage",
  };
  return kNames[static_cast<std::size_t>(id)];
}

constexpr const char* name(HistId id) {
  constexpr const char* kNames[kHistCount] = {
      "rt.queue_delay",   "rt.ingress_dwell",   "rt.service_lag",
      "rt.stage.drain",   "rt.stage.schedule",  "rt.stage.transmit",
      "sim.stage.event",  "rt.migration_latency",
  };
  return kNames[static_cast<std::size_t>(id)];
}

// Prometheus metric names (exposition.cc): [a-zA-Z_:][a-zA-Z0-9_:]*, with
// the conventional _total suffix on counters and _seconds on latency
// histograms.
constexpr const char* prometheus_name(CounterId id) {
  constexpr const char* kNames[kCounterCount] = {
      "sfq_ingress_pushed_total", "sfq_ingress_drops_total",
      "sfq_accepted_total",       "sfq_transmitted_total",
      "sfq_tx_bits_total",        "sfq_abandoned_total",
      "sfq_drops_buffer_limit_total", "sfq_drops_unknown_flow_total",
      "sfq_drops_fault_loss_total",   "sfq_drops_corrupt_total",
      "sfq_drops_pushout_total",      "sfq_drops_flow_removed_total",
      "sfq_drops_shed_total",
      "sfq_stalls_total",         "sfq_recoveries_total",
      "sfq_offer_retries_total",  "sfq_offer_abandoned_total",
      "sfq_shard_failovers_total", "sfq_flows_rehomed_total",
  };
  return kNames[static_cast<std::size_t>(id)];
}

constexpr const char* prometheus_name(GaugeId id) {
  constexpr const char* kNames[kGaugeCount] = {
      "sfq_backlog_packets",      "sfq_service_lag_max_seconds",
      "sfq_fairness_gap_seconds", "sfq_fairness_gap_max_seconds",
      "sfq_fairness_bound_seconds", "sfq_overload_state",
      "sfq_fairness_root_gap_seconds",
      "sfq_fairness_root_gap_max_seconds",
      "sfq_fairness_root_bound_seconds",
      "sfq_overload_state_worst",
      "sfq_shard_stalled",        "sfq_last_stall_stage",
  };
  return kNames[static_cast<std::size_t>(id)];
}

constexpr const char* prometheus_name(HistId id) {
  constexpr const char* kNames[kHistCount] = {
      "sfq_queue_delay_seconds",    "sfq_ingress_dwell_seconds",
      "sfq_service_lag_seconds",    "sfq_stage_drain_seconds",
      "sfq_stage_schedule_seconds", "sfq_stage_transmit_seconds",
      "sfq_sim_event_seconds",      "sfq_migration_latency_seconds",
  };
  return kNames[static_cast<std::size_t>(id)];
}

// Maps a taxonomy cause to its counter. kNone has no counter; callers only
// pass real causes.
constexpr CounterId drop_counter(DropCause cause) {
  return static_cast<CounterId>(
      static_cast<std::size_t>(CounterId::kDropBufferLimit) +
      (static_cast<std::size_t>(cause) -
       static_cast<std::size_t>(DropCause::kBufferLimit)));
}

static_assert(drop_counter(DropCause::kBufferLimit) ==
              CounterId::kDropBufferLimit);
static_assert(drop_counter(DropCause::kFlowRemoved) ==
              CounterId::kDropFlowRemoved);
static_assert(drop_counter(DropCause::kShed) == CounterId::kDropShed);

}  // namespace sfq::obs::telemetry
