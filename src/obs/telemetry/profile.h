// Stage profiling scopes (docs/OBSERVABILITY.md).
//
// A StageProfiler times named pipeline stages (RtEngine drain / schedule /
// transmit, the sim event loop) into the telemetry plane's stage histograms.
// Two gates keep it honest about cost:
//
//   * compile time — the SFQ_PROF_SCOPE macro expands to nothing unless the
//     build defines SFQ_TELEMETRY_PROFILING (CMake -DSFQ_TELEMETRY_PROFILING
//     =ON), so default builds carry zero instructions for it;
//   * run time — even when compiled in, scopes are no-ops until
//     StageProfiler::enable(true); the check is one relaxed load.
//
// The clock is steady_clock; on the platforms we build for it compiles to a
// handful of instructions around rdtsc-backed clock_gettime. The class
// itself is always available (tests drive it directly); only the hot-path
// macro injection is compile-gated.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

#include "obs/telemetry/telemetry.h"

namespace sfq::obs::telemetry {

class StageProfiler {
 public:
  StageProfiler(Telemetry& plane, std::size_t shard = 0)
      : plane_(plane), shard_(shard) {}

  void enable(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  void record_ns(HistId stage, uint64_t ns) {
    plane_.record(stage, ns, shard_);
  }

  // RAII scope: samples the clock on entry and records the delta on exit
  // when the profiler is non-null and enabled.
  class Scope {
   public:
    Scope(StageProfiler* p, HistId stage) : p_(p), stage_(stage) {
      if (p_ != nullptr && p_->enabled())
        t0_ = std::chrono::steady_clock::now();
      else
        p_ = nullptr;
    }
    ~Scope() {
      if (p_ == nullptr) return;
      const auto dt = std::chrono::steady_clock::now() - t0_;
      p_->record_ns(
          stage_,
          static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(dt)
                  .count()));
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    StageProfiler* p_;
    HistId stage_;
    std::chrono::steady_clock::time_point t0_;
  };

 private:
  Telemetry& plane_;
  std::size_t shard_;
  std::atomic<bool> enabled_{false};
};

}  // namespace sfq::obs::telemetry

// Hot-path injection point. `prof` is a StageProfiler* (may be null). The
// two-level concat lets __LINE__ expand before pasting, so multiple scopes
// can share a block.
#if defined(SFQ_TELEMETRY_PROFILING)
#define SFQ_PROF_CONCAT2(a, b) a##b
#define SFQ_PROF_CONCAT(a, b) SFQ_PROF_CONCAT2(a, b)
#define SFQ_PROF_SCOPE(prof, stage)                 \
  ::sfq::obs::telemetry::StageProfiler::Scope       \
      SFQ_PROF_CONCAT(sfq_prof_scope_, __LINE__)((prof), (stage))
#else
#define SFQ_PROF_SCOPE(prof, stage) ((void)0)
#endif
