// Renders a TelemetrySnapshot for scraping (docs/OBSERVABILITY.md).
//
//   * to_prometheus — Prometheus text exposition format 0.0.4: counters as
//     <name>_total, latency histograms with cumulative le-labelled buckets
//     at decade edges (1 µs .. 100 s) plus +Inf, every series labelled
//     {shard="N"}.
//   * to_json — one JSON object with per-shard counter/gauge arrays and
//     histogram summaries (count, sum, mean, p50, p90, p99, max, seconds);
//     schema documented in docs/OBSERVABILITY.md.
//
// Both run on plain snapshot values — no locks, no interaction with the
// record path.
#pragma once

#include <string>

#include "obs/telemetry/telemetry.h"

namespace sfq::obs::telemetry {

std::string to_prometheus(const TelemetrySnapshot& snap);
std::string to_json(const TelemetrySnapshot& snap);

}  // namespace sfq::obs::telemetry
