#include "obs/telemetry/stats_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace sfq::obs::telemetry {

namespace {

// Blocking-with-deadline write of the whole buffer; gives up on error.
void write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n <= 0) return;
    off += static_cast<std::size_t>(n);
  }
}

}  // namespace

StatsServer::~StatsServer() { stop(); }

void StatsServer::start(uint16_t port) {
  if (running()) throw std::logic_error("StatsServer: start() while running");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0)
    throw std::runtime_error("StatsServer: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
          0 ||
      ::listen(listen_fd_, 8) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error(std::string("StatsServer: bind/listen failed: ") +
                             std::strerror(errno));
  }
  socklen_t len = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  stop_requested_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { serve(); });
}

void StatsServer::stop() {
  if (!running()) return;
  stop_requested_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  running_.store(false, std::memory_order_release);
}

void StatsServer::publish(std::string prometheus, std::string json) {
  std::lock_guard<std::mutex> lock(mu_);
  prometheus_ = std::move(prometheus);
  json_ = std::move(json);
}

void StatsServer::serve() {
  while (!stop_requested_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int r = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (r <= 0) continue;  // timeout or EINTR: re-check the stop flag
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    // One short request per connection; 1 KiB is plenty for a request line.
    char buf[1024];
    pollfd cfd{fd, POLLIN, 0};
    std::string body, content_type;
    if (::poll(&cfd, 1, 500) > 0) {
      const ssize_t n = ::recv(fd, buf, sizeof buf - 1, 0);
      if (n > 0) {
        buf[n] = '\0';
        const bool json = std::strncmp(buf, "GET /metrics.json", 17) == 0;
        const bool prom = !json && std::strncmp(buf, "GET /metrics", 12) == 0;
        std::lock_guard<std::mutex> lock(mu_);
        if (json) {
          body = json_;
          content_type = "application/json";
        } else if (prom) {
          body = prometheus_;
          content_type = "text/plain; version=0.0.4";
        }
      }
    }
    std::string resp;
    if (!content_type.empty()) {
      resp = "HTTP/1.0 200 OK\r\nContent-Type: " + content_type +
             "\r\nContent-Length: " + std::to_string(body.size()) +
             "\r\nConnection: close\r\n\r\n" + body;
    } else {
      resp =
          "HTTP/1.0 404 Not Found\r\nContent-Length: 0\r\nConnection: "
          "close\r\n\r\n";
    }
    write_all(fd, resp);
    ::close(fd);
    served_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace sfq::obs::telemetry
