// Lock-free, zero-steady-state-allocation telemetry plane for live engines
// (docs/OBSERVABILITY.md).
//
// Layout per shard (shard = one dispatcher of the future multi-core engine;
// today's single-dispatcher RtEngine is shard 0):
//
//   * counters — one cache-line-aligned cell block per registered *writer*
//     (thread). A writer increments its own cells with a relaxed load+store
//     pair (single-writer, so no RMW needed); the reader aggregates by
//     summing cells across writers. Sums of per-writer monotone counters
//     are monotone across snapshots, so readers never observe a counter go
//     backwards.
//   * gauges — one atomic<double> per id per shard, plain store/load.
//   * histograms — one LockFreeHistogram per id per shard, multi-writer
//     wait-free fetch_add (histogram.h).
//
// Registration (writer(), at thread setup) takes a mutex and allocates; the
// record path after that touches only pre-allocated atomics. snapshot() is
// the only reader-side operation and is safe from any thread at any time.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/telemetry/histogram.h"
#include "obs/telemetry/metric_ids.h"

namespace sfq::obs::telemetry {

inline constexpr std::size_t kTelemetryCacheLine = 64;

struct TelemetryOptions {
  std::size_t shards = 1;
};

// Everything a snapshot captures, as plain values. Counters and histograms
// are per shard plus precomputed totals; epoch increments per snapshot so
// pollers can tell refreshes apart.
struct TelemetrySnapshot {
  std::size_t shards = 0;
  uint64_t epoch = 0;
  std::vector<std::array<uint64_t, kCounterCount>> counters;  // [shard]
  std::vector<std::array<double, kGaugeCount>> gauges;        // [shard]
  std::vector<std::vector<HistogramSnapshot>> hists;  // [shard][kHistCount]

  uint64_t counter(CounterId id, std::size_t shard) const {
    return counters[shard][static_cast<std::size_t>(id)];
  }
  uint64_t counter_total(CounterId id) const;
  double gauge(GaugeId id, std::size_t shard) const {
    return gauges[shard][static_cast<std::size_t>(id)];
  }
  const HistogramSnapshot& hist(HistId id, std::size_t shard) const {
    return hists[shard][static_cast<std::size_t>(id)];
  }
  // Bucket-wise merge across shards.
  HistogramSnapshot hist_total(HistId id) const;
  uint64_t drops_total(std::size_t shard) const;
};

class Telemetry {
 public:
  explicit Telemetry(TelemetryOptions opts = {});

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  std::size_t shards() const { return shards_; }

  // A thread's handle onto its private counter cells. Values may move to the
  // plane only through a writer; the handle stays valid for the plane's
  // lifetime and must be used by one thread at a time.
  class Writer {
   public:
    Writer() = default;

    void inc(CounterId id, uint64_t n = 1) {
      std::atomic<uint64_t>& c = cells_->v[static_cast<std::size_t>(id)];
      // Single-writer cell: load+store beats a locked RMW on the hot path.
      c.store(c.load(std::memory_order_relaxed) + n,
              std::memory_order_relaxed);
    }
    void drop(DropCause cause) { inc(drop_counter(cause)); }

    explicit operator bool() const { return cells_ != nullptr; }

   private:
    friend class Telemetry;
    struct Cells {
      alignas(kTelemetryCacheLine) std::array<std::atomic<uint64_t>,
                                              kCounterCount> v;
      std::size_t shard = 0;
    };
    Cells* cells_ = nullptr;
  };

  // Registers a new writer against `shard`. Allocates (mutex-protected) —
  // call at thread setup, never on the record path.
  Writer writer(std::size_t shard);

  // Gauges: single conceptual writer per (id, shard); last store wins.
  void set_gauge(GaugeId id, double v, std::size_t shard = 0) {
    gauges_[shard * kGaugeCount + static_cast<std::size_t>(id)].store(
        v, std::memory_order_relaxed);
  }
  double gauge(GaugeId id, std::size_t shard = 0) const {
    return gauges_[shard * kGaugeCount + static_cast<std::size_t>(id)].load(
        std::memory_order_relaxed);
  }

  // Histograms: multi-writer wait-free.
  LockFreeHistogram& hist(HistId id, std::size_t shard = 0) {
    return hists_[shard * kHistCount + static_cast<std::size_t>(id)];
  }
  void record(HistId id, uint64_t ns, std::size_t shard = 0) {
    hist(id, shard).record(ns);
  }
  void record_seconds(HistId id, double s, std::size_t shard = 0) {
    hist(id, shard).record_seconds(s);
  }

  // Aggregated snapshot, any thread. Counter sums are monotone snapshot to
  // snapshot; histogram totals are never torn (count == sum of buckets by
  // construction).
  TelemetrySnapshot snapshot() const;

 private:
  std::size_t shards_;
  std::unique_ptr<std::atomic<double>[]> gauges_;   // shards * kGaugeCount
  std::unique_ptr<LockFreeHistogram[]> hists_;      // shards * kHistCount
  mutable std::mutex writers_mu_;
  std::vector<std::unique_ptr<Writer::Cells>> writers_;
  mutable std::atomic<uint64_t> epoch_{0};
};

}  // namespace sfq::obs::telemetry
