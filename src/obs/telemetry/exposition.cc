#include "obs/telemetry/exposition.h"

#include <cinttypes>
#include <cstdio>
#include <sstream>

namespace sfq::obs::telemetry {

namespace {

// Cumulative bucket edges for the Prometheus rendering: decades from 1 µs
// to 100 s. The JSON rendering carries interpolated quantiles instead, so
// the coarse edges only affect scrape-side aggregation.
constexpr double kLeEdges[] = {1e-6, 1e-5, 1e-4, 1e-3,
                               1e-2, 1e-1, 1.0,  1e1,  1e2};

void append_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  out += buf;
}

void append_u64(std::string& out, uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out += buf;
}

}  // namespace

std::string to_prometheus(const TelemetrySnapshot& snap) {
  std::string out;
  out.reserve(4096);
  for (std::size_t c = 0; c < kCounterCount; ++c) {
    const CounterId id = static_cast<CounterId>(c);
    out += "# TYPE ";
    out += prometheus_name(id);
    out += " counter\n";
    for (std::size_t sh = 0; sh < snap.shards; ++sh) {
      out += prometheus_name(id);
      out += "{shard=\"";
      append_u64(out, sh);
      out += "\"} ";
      append_u64(out, snap.counter(id, sh));
      out += "\n";
    }
  }
  for (std::size_t g = 0; g < kGaugeCount; ++g) {
    const GaugeId id = static_cast<GaugeId>(g);
    out += "# TYPE ";
    out += prometheus_name(id);
    out += " gauge\n";
    for (std::size_t sh = 0; sh < snap.shards; ++sh) {
      out += prometheus_name(id);
      out += "{shard=\"";
      append_u64(out, sh);
      out += "\"} ";
      append_double(out, snap.gauge(id, sh));
      out += "\n";
    }
  }
  for (std::size_t h = 0; h < kHistCount; ++h) {
    const HistId id = static_cast<HistId>(h);
    out += "# TYPE ";
    out += prometheus_name(id);
    out += " histogram\n";
    for (std::size_t sh = 0; sh < snap.shards; ++sh) {
      const HistogramSnapshot& hs = snap.hist(id, sh);
      char shard_label[32];
      std::snprintf(shard_label, sizeof shard_label, "{shard=\"%zu\"", sh);
      for (double edge : kLeEdges) {
        out += prometheus_name(id);
        out += "_bucket";
        out += shard_label;
        out += ",le=\"";
        append_double(out, edge);
        out += "\"} ";
        append_u64(out, hs.empty() ? 0
                                   : hs.cumulative_below(
                                         LockFreeHistogram::to_nanos(edge)));
        out += "\n";
      }
      out += prometheus_name(id);
      out += "_bucket";
      out += shard_label;
      out += ",le=\"+Inf\"} ";
      append_u64(out, hs.count);
      out += "\n";
      out += prometheus_name(id);
      out += "_sum";
      out += shard_label;
      out += "} ";
      append_double(out, static_cast<double>(hs.sum_ns) * 1e-9);
      out += "\n";
      out += prometheus_name(id);
      out += "_count";
      out += shard_label;
      out += "} ";
      append_u64(out, hs.count);
      out += "\n";
    }
  }
  return out;
}

std::string to_json(const TelemetrySnapshot& snap) {
  std::string out;
  out.reserve(4096);
  out += "{\"epoch\":";
  append_u64(out, snap.epoch);
  out += ",\"shards\":";
  append_u64(out, snap.shards);
  out += ",\"counters\":{";
  for (std::size_t c = 0; c < kCounterCount; ++c) {
    const CounterId id = static_cast<CounterId>(c);
    if (c) out += ",";
    out += "\"";
    out += name(id);
    out += "\":{\"total\":";
    append_u64(out, snap.counter_total(id));
    out += ",\"shard\":[";
    for (std::size_t sh = 0; sh < snap.shards; ++sh) {
      if (sh) out += ",";
      append_u64(out, snap.counter(id, sh));
    }
    out += "]}";
  }
  out += "},\"gauges\":{";
  for (std::size_t g = 0; g < kGaugeCount; ++g) {
    const GaugeId id = static_cast<GaugeId>(g);
    if (g) out += ",";
    out += "\"";
    out += name(id);
    out += "\":[";
    for (std::size_t sh = 0; sh < snap.shards; ++sh) {
      if (sh) out += ",";
      append_double(out, snap.gauge(id, sh));
    }
    out += "]";
  }
  out += "},\"histograms\":{";
  for (std::size_t h = 0; h < kHistCount; ++h) {
    const HistId id = static_cast<HistId>(h);
    if (h) out += ",";
    out += "\"";
    out += name(id);
    out += "\":[";
    for (std::size_t sh = 0; sh < snap.shards; ++sh) {
      const HistogramSnapshot& hs = snap.hist(id, sh);
      if (sh) out += ",";
      out += "{\"count\":";
      append_u64(out, hs.count);
      out += ",\"sum_s\":";
      append_double(out, static_cast<double>(hs.sum_ns) * 1e-9);
      out += ",\"mean_s\":";
      append_double(out, hs.mean_s());
      out += ",\"p50_s\":";
      append_double(out, hs.quantile_s(0.50));
      out += ",\"p90_s\":";
      append_double(out, hs.quantile_s(0.90));
      out += ",\"p99_s\":";
      append_double(out, hs.quantile_s(0.99));
      out += ",\"max_s\":";
      append_double(out, hs.max_s());
      out += "}";
    }
    out += "]";
  }
  out += "}}";
  return out;
}

}  // namespace sfq::obs::telemetry
