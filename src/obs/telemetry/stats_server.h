// Minimal localhost HTTP exposition endpoint (docs/OBSERVABILITY.md).
//
// Serves the most recently published snapshot renderings over plain TCP on
// 127.0.0.1 — enough for `curl`, a Prometheus scrape job, or a test client:
//
//   GET /metrics        -> text/plain Prometheus exposition
//   GET /metrics.json   -> application/json snapshot
//   anything else       -> 404
//
// publish() swaps in pre-rendered strings under a mutex; the accept loop
// runs on its own thread and never touches the telemetry plane, so the
// server adds zero work to the hot path. One request per connection
// (HTTP/1.0 close semantics) keeps the loop trivial.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

namespace sfq::obs::telemetry {

class StatsServer {
 public:
  StatsServer() = default;
  ~StatsServer();  // stop() if still running

  StatsServer(const StatsServer&) = delete;
  StatsServer& operator=(const StatsServer&) = delete;

  // Binds 127.0.0.1:port (0 picks an ephemeral port, readable via port())
  // and starts the accept thread. Throws std::runtime_error on bind failure.
  void start(uint16_t port);
  void stop();
  bool running() const { return running_.load(std::memory_order_acquire); }
  uint16_t port() const { return port_; }

  // Swaps the served payloads; safe from any thread.
  void publish(std::string prometheus, std::string json);

  uint64_t requests_served() const {
    return served_.load(std::memory_order_relaxed);
  }

 private:
  void serve();

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::atomic<uint64_t> served_{0};
  std::mutex mu_;
  std::string prometheus_;
  std::string json_;
};

}  // namespace sfq::obs::telemetry
