#include "obs/metrics.h"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace sfq::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  counts_.assign(bounds_.size() + 1, 0);
}

std::vector<double> Histogram::default_delay_bounds() {
  std::vector<double> b;
  // 1e-6 .. 1e2 seconds, 4 buckets per decade (x ~1.78).
  for (double v = 1e-6; v < 2e2; v *= 1.7782794100389228) b.push_back(v);
  return b;
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  if (count_ == 0 || v < min_) min_ = v;
  if (count_ == 0 || v > max_) max_ = v;
  sum_ += v;
  ++count_;
}

double Histogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);
  uint64_t cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const uint64_t prev = cum;
    cum += counts_[i];
    if (static_cast<double>(cum) < target) continue;
    // The overflow bucket has no finite upper edge, so there is nothing to
    // interpolate against: any in-bucket position would pretend the samples
    // spread uniformly up to max(), which one outlier makes arbitrarily
    // wrong. Clamp to the observed maximum instead.
    if (i == bounds_.size()) return max_;
    // Interpolate within bucket i; clamp to observed extremes so q=0/1
    // return min/max rather than bucket edges.
    const double lo = i == 0 ? min_ : std::max(min_, bounds_[i - 1]);
    const double hi = std::min(max_, bounds_[i]);
    const double frac =
        (target - static_cast<double>(prev)) / static_cast<double>(counts_[i]);
    return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
  }
  return max_;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  return histograms_.try_emplace(name).first->second;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  return histograms_.try_emplace(name, std::move(bounds)).first->second;
}

void MetricsRegistry::dump_text(std::ostream& out) const {
  for (const auto& [name, c] : counters_) out << name << " " << c.value() << "\n";
  for (const auto& [name, g] : gauges_) out << name << " " << g.value() << "\n";
  for (const auto& [name, h] : histograms_) {
    out << name << "_count " << h.count() << "\n";
    out << name << "_mean " << h.mean() << "\n";
    out << name << "_p50 " << h.quantile(0.50) << "\n";
    out << name << "_p99 " << h.quantile(0.99) << "\n";
    out << name << "_max " << h.max() << "\n";
  }
}

void MetricsRegistry::dump_json(std::ostream& out) const {
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out << ",";
    first = false;
    out << "\"" << json_escape(name) << "\":" << c.value();
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out << ",";
    first = false;
    out << "\"" << json_escape(name) << "\":" << g.value();
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out << ",";
    first = false;
    out << "\"" << json_escape(name) << "\":{\"count\":" << h.count()
        << ",\"sum\":" << h.sum() << ",\"min\":" << h.min()
        << ",\"max\":" << h.max() << ",\"mean\":" << h.mean()
        << ",\"p50\":" << h.quantile(0.5) << ",\"p99\":" << h.quantile(0.99)
        << ",\"buckets\":[";
    const auto& counts = h.bucket_counts();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (i) out << ",";
      out << counts[i];
    }
    out << "]}";
  }
  out << "}}";
}

std::string MetricsRegistry::text() const {
  std::ostringstream ss;
  dump_text(ss);
  return ss.str();
}

std::string MetricsRegistry::json() const {
  std::ostringstream ss;
  ss.precision(17);
  dump_json(ss);
  return ss.str();
}

MetricsSink::MetricsSink(MetricsRegistry& reg,
                         std::vector<std::string> flow_names)
    : reg_(reg), names_(std::move(flow_names)) {
  // Materialize the drop counters up front so a clean run still reports
  // them (as zeros) instead of omitting the names.
  reg_.counter("sched.drops.buffer_limit");
  reg_.counter("sched.drops.unknown_flow");
  reg_.counter("sched.drops.fault_loss");
  reg_.counter("sched.drops.corrupt");
  reg_.counter("sched.drops.pushout");
  reg_.counter("sched.drops.flow_removed");
  reg_.counter("sched.drops.shed");
}

const std::string& MetricsSink::flow_label(FlowId f) {
  if (f >= names_.size()) names_.resize(f + 1);
  std::string& label = names_[f];
  if (label.empty()) label = "flow" + std::to_string(f);
  return label;
}

void MetricsSink::on_event(const TraceEvent& e) {
  switch (e.type) {
    case TraceEventType::kEnqueue:
      reg_.counter("sched.enqueued").inc();
      reg_.counter("flow." + flow_label(e.flow) + ".enqueued").inc();
      reg_.gauge("sched.backlog_packets").set(static_cast<double>(e.backlog));
      break;
    case TraceEventType::kTag:
      if (e.finish_tag > max_finish_tag_) max_finish_tag_ = e.finish_tag;
      break;
    case TraceEventType::kDequeue:
      reg_.counter("sched.dequeued").inc();
      reg_.gauge("sched.backlog_packets").set(static_cast<double>(e.backlog));
      reg_.gauge("sched.vtime").set(e.vtime);
      // How far the virtual clock trails the newest tag assigned: the
      // backlog expressed in the virtual-time domain.
      reg_.gauge("sched.vtime_lag")
          .set(std::max(0.0, max_finish_tag_ - e.vtime));
      break;
    case TraceEventType::kTxStart:
      break;
    case TraceEventType::kTxEnd: {
      const std::string& label = flow_label(e.flow);
      reg_.counter("sched.tx_packets").inc();
      reg_.counter("sched.tx_bits").inc(static_cast<uint64_t>(e.length_bits));
      reg_.counter("flow." + label + ".tx_packets").inc();
      reg_.counter("flow." + label + ".tx_bits")
          .inc(static_cast<uint64_t>(e.length_bits));
      reg_.histogram("flow." + label + ".delay").observe(e.t - e.arrival);
      break;
    }
    case TraceEventType::kDrop:
      reg_.counter(std::string("sched.drops.") + to_string(e.drop_cause)).inc();
      reg_.counter("flow." + flow_label(e.flow) + ".drops").inc();
      break;
    case TraceEventType::kVtime:
      reg_.gauge("sched.vtime").set(e.vtime);
      reg_.gauge("sched.vtime_lag")
          .set(std::max(0.0, max_finish_tag_ - e.vtime));
      break;
  }
}

}  // namespace sfq::obs
