#include "obs/invariant_checker.h"

#include <sstream>

namespace sfq::obs {

InvariantChecker::Options InvariantChecker::for_scheduler(
    const std::string& name) {
  Options o;
  if (name == "SFQ" || name == "SFQ-W") {
    // SFQ-W callers must additionally set order_slack to the scheduler's
    // quantization_window() — the wheel serves start tags only up to that
    // window out of order (docs/PERFORMANCE.md, "Quantization slack").
    o.order = OrderTag::kStartTag;
  } else if (name == "SCFQ" || name == "VC") {
    o.order = OrderTag::kFinishTag;
  } else if (name == "H-SFQ" || name == "HSFQ") {
    // Start tags are stamped at dequeue time (root vtime); per-packet
    // finish tags are not maintained at the root level.
    o.order = OrderTag::kStartTag;
    o.check_tags = false;
  } else if (name == "WFQ" || name == "FQS") {
    // GPS-tagged disciplines serve the minimum tag among *currently queued*
    // packets only: v(t) advances with real time, so a late arrival may tag
    // below a packet already transmitted. No global monotonicity (this is
    // exactly the self-clocking property WFQ/FQS lack — paper §2.5).
    o.order = OrderTag::kNone;
  } else {
    // Round-robin / FIFO / priority disciplines: tags are meaningless.
    o.order = OrderTag::kNone;
    o.check_tags = false;
    o.check_vtime_monotone = false;
  }
  return o;
}

InvariantChecker::InvariantChecker() : InvariantChecker(Options{}) {}

InvariantChecker::InvariantChecker(Options opts) : opts_(opts) {}

void InvariantChecker::flag(std::string what, const TraceEvent* e) {
  ++total_violations_;
  if (violations_.size() >= opts_.max_violations) return;
  std::ostringstream ss;
  ss << what;
  if (e != nullptr)
    ss << " [flow " << e->flow << " seq " << e->seq << " vtime " << e->vtime
       << " t " << e->t << "]";
  if (!context_.empty()) ss << " [" << context_ << "]";
  violations_.push_back(Violation{ss.str(), seen_ == 0 ? 0 : seen_ - 1});
}

void InvariantChecker::on_event(const TraceEvent& e) {
  ++seen_;
  const double eps = opts_.epsilon;
  switch (e.type) {
    case TraceEventType::kEnqueue:
      ++enqueued_;
      last_backlog_ = e.backlog;
      saw_packet_event_ = true;
      break;

    case TraceEventType::kTag: {
      ++tagged_;
      last_backlog_ = e.backlog;
      saw_packet_event_ = true;
      if (opts_.check_tags) {
        if (e.finish_tag < e.start_tag - eps) {
          std::ostringstream ss;
          ss << "finish tag < start tag for flow " << e.flow << " seq " << e.seq
             << " (F=" << e.finish_tag << " S=" << e.start_tag << ")";
          flag(ss.str(), &e);
        }
        if (e.flow != kInvalidFlow) {
          if (e.flow >= flow_last_finish_.size())
            flow_last_finish_.resize(e.flow + 1, 0.0);
          if (e.start_tag < flow_last_finish_[e.flow] - eps) {
            std::ostringstream ss;
            ss << "start tag regressed below previous finish for flow "
               << e.flow << " seq " << e.seq << " (S=" << e.start_tag
               << " F_prev=" << flow_last_finish_[e.flow] << ")";
            flag(ss.str(), &e);
          }
          flow_last_finish_[e.flow] = e.finish_tag;
        }
      }
      break;
    }

    case TraceEventType::kDequeue: {
      ++dequeued_;
      last_backlog_ = e.backlog;
      saw_packet_event_ = true;
      if (opts_.order != OrderTag::kNone) {
        const double tag =
            opts_.order == OrderTag::kStartTag ? e.start_tag : e.finish_tag;
        if (tag < last_order_tag_ - eps - opts_.order_slack) {
          std::ostringstream ss;
          ss << (opts_.order == OrderTag::kStartTag ? "start" : "finish")
             << " tags dequeued out of order: flow " << e.flow << " seq "
             << e.seq << " tag " << tag << " after " << last_order_tag_;
          flag(ss.str(), &e);
        }
        if (tag > last_order_tag_) last_order_tag_ = tag;
      }
      if (opts_.check_vtime_monotone) {
        if (e.vtime < last_vtime_ - eps) {
          std::ostringstream ss;
          ss << "v(t) regressed at dequeue: " << e.vtime << " after "
             << last_vtime_;
          flag(ss.str(), &e);
        }
        if (e.vtime > last_vtime_) last_vtime_ = e.vtime;
      }
      break;
    }

    case TraceEventType::kVtime:
      if (opts_.check_vtime_monotone) {
        if (e.vtime < last_vtime_ - eps) {
          std::ostringstream ss;
          ss << "v(t) regressed: " << e.vtime << " after " << last_vtime_;
          flag(ss.str(), &e);
        }
        if (e.vtime > last_vtime_) last_vtime_ = e.vtime;
      }
      break;

    case TraceEventType::kDrop:
      ++dropped_;
      last_backlog_ = e.backlog;
      if (e.drop_cause == DropCause::kPushout ||
          e.drop_cause == DropCause::kFlowRemoved) {
        // The packet was tagged/enqueued, then removed without a dequeue:
        // credit it back so conservation balances across churn and pushout.
        ++removed_;
        // The scheduler re-anchors the flow's tag state at the first removed
        // packet's start tag (which equals the pre-removal finish tag under
        // S = max(v, F_prev) — see SfqScheduler::remove_flow). Mirror that
        // rollback so a rejoining flow's next start tag is not flagged.
        if (opts_.check_tags && e.flow != kInvalidFlow &&
            e.flow < flow_last_finish_.size() &&
            e.start_tag < flow_last_finish_[e.flow])
          flow_last_finish_[e.flow] = e.start_tag;
      }
      break;

    case TraceEventType::kTxStart:
      ++tx_started_;
      last_backlog_ = e.backlog;
      break;

    case TraceEventType::kTxEnd:
      last_backlog_ = e.backlog;
      break;
  }
}

void InvariantChecker::finish() {
  if (!opts_.check_conservation || !saw_packet_event_) return;
  // Pre-enqueue drops never reach the scheduler; post-enqueue removals
  // (pushout, flow_removed) did, and are credited back via removed_. So:
  // tagged = dequeued + still queued + removed. Schedulers without tag hooks
  // (FIFO, round-robin, ...) emit no kTag / kDequeue events; fall back to the
  // server-level ledger there.
  const bool scheduler_view = tagged_ > 0 || dequeued_ > 0;
  const uint64_t in = scheduler_view ? tagged_ : enqueued_;
  const uint64_t out = scheduler_view ? dequeued_ : tx_started_;
  if (in != out + last_backlog_ + removed_) {
    std::ostringstream ss;
    ss << "conservation violated: "
       << (scheduler_view ? "tagged " : "enqueued ") << in
       << " != " << (scheduler_view ? "dequeued " : "tx-started ") << out
       << " + backlog " << last_backlog_ << " + removed " << removed_
       << " (pre-enqueue drops " << dropped_ - removed_
       << " counted separately)";
    flag(ss.str());
  }
}

std::string InvariantChecker::report() const {
  std::ostringstream ss;
  if (ok()) {
    ss << "invariants OK (" << seen_ << " events, " << dequeued_
       << " dequeues, " << dropped_ << " drops)";
    return ss.str();
  }
  ss << total_violations_ << " invariant violation(s) in " << seen_
     << " events:";
  for (const Violation& v : violations_)
    ss << "\n  [event " << v.event_index << "] " << v.what;
  if (total_violations_ > violations_.size())
    ss << "\n  ... (" << total_violations_ - violations_.size()
       << " more suppressed)";
  return ss.str();
}

}  // namespace sfq::obs
