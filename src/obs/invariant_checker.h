// Online validation of SFQ-family semantics from the trace stream.
//
// Checks (all configurable, defaults match flat SFQ):
//   * order        — the tag that defines service order (start tag for
//                    SFQ/FQS/H-SFQ, finish tag for SCFQ/VC) is non-decreasing
//                    across dequeues. WFQ serves min-finish among *currently
//                    queued* packets, which is not globally monotone, so the
//                    check is disabled there.
//   * vtime        — v(t) is monotone non-decreasing (paper §2: within a busy
//                    period v follows the packet in service; at the end of a
//                    busy period it jumps *up* to the max finish tag).
//   * tags         — finish tag >= start tag for every tagged packet, and a
//                    flow's start tag >= its previous packet's finish tag
//                    (S = max(v, F_prev) implies both).
//   * conservation — packets tagged == packets dequeued + backlog + packets
//                    removed after enqueue, checked in finish(). Drop causes
//                    split two ways: pre-enqueue discards (buffer_limit,
//                    unknown_flow, fault_loss, corrupt) never enter the
//                    ledger; post-enqueue removals (pushout, flow_removed)
//                    entered as tag/enqueue events and are credited back from
//                    their drop events. Schedulers without tag hooks (FIFO,
//                    DRR, ...) are accounted at the server level instead:
//                    enqueues == transmissions started + backlog + removed.
//
// All checks are fault-aware: outages and degradation change real time only
// (tags and v(t) live in virtual time, so monotonicity must survive any rate
// behaviour — Theorem 1's premise), and flow churn rolls a flow's tag floor
// back exactly as the scheduler re-anchors it.
#pragma once

#include <limits>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace sfq::obs {

class InvariantChecker final : public TraceSink {
 public:
  enum class OrderTag { kNone, kStartTag, kFinishTag };

  struct Options {
    OrderTag order = OrderTag::kStartTag;
    bool check_vtime_monotone = true;
    bool check_tags = true;
    bool check_conservation = true;
    double epsilon = 1e-9;             // tolerance on tag comparisons
    // Extra allowance on the dequeue-order check only: a quantized-order
    // discipline (SFQ-W) may serve tags up to one quantization window out of
    // order. Set to Scheduler::quantization_window(). The vtime and per-flow
    // tag-chain checks take no slack — the scheduler keeps those exact.
    double order_slack = 0.0;
    std::size_t max_violations = 64;   // stop recording past this many
  };

  // Per-discipline defaults keyed by Scheduler::name() / factory name
  // ("SFQ", "SCFQ", "WFQ", "H-SFQ", ...). Unknown names get conservation +
  // vtime only.
  static Options for_scheduler(const std::string& name);

  InvariantChecker();  // default Options (flat-SFQ semantics)
  explicit InvariantChecker(Options opts);

  // Repro context appended to every violation message (e.g. "seed 42" under
  // the chaos harness), so a CI failure is one command away from a repro.
  void set_context(std::string context) { context_ = std::move(context); }

  void on_event(const TraceEvent& e) override;
  void finish() override;

  struct Violation {
    std::string what;
    uint64_t event_index;  // 0-based index into the event stream
  };

  bool ok() const { return violations_.empty(); }
  const std::vector<Violation>& violations() const { return violations_; }
  uint64_t violation_count() const { return total_violations_; }
  uint64_t events_seen() const { return seen_; }

  // Human-readable multi-line summary ("OK (N events)" or the violations).
  std::string report() const;

 private:
  // Records a violation. When `e` is given, the message gains a standard
  // context tail — flow id, packet seq, virtual time, event time — plus the
  // set_context() string, so every report is self-locating.
  void flag(std::string what, const TraceEvent* e = nullptr);

  Options opts_;
  std::string context_;
  std::vector<Violation> violations_;
  uint64_t total_violations_ = 0;
  uint64_t seen_ = 0;

  uint64_t tagged_ = 0;
  uint64_t enqueued_ = 0;
  uint64_t dequeued_ = 0;
  uint64_t tx_started_ = 0;
  uint64_t dropped_ = 0;
  uint64_t removed_ = 0;  // post-enqueue removals (pushout, flow_removed)
  uint64_t last_backlog_ = 0;
  bool saw_packet_event_ = false;
  double last_order_tag_ = -std::numeric_limits<double>::infinity();
  double last_vtime_ = -std::numeric_limits<double>::infinity();
  std::vector<double> flow_last_finish_;
};

}  // namespace sfq::obs
