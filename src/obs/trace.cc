#include "obs/trace.h"

#include <cstdio>
#include <fstream>
#include <ostream>
#include <stdexcept>

namespace sfq::obs {

const char* to_string(TraceEventType t) {
  switch (t) {
    case TraceEventType::kEnqueue: return "enqueue";
    case TraceEventType::kTag: return "tag";
    case TraceEventType::kDequeue: return "dequeue";
    case TraceEventType::kTxStart: return "tx_start";
    case TraceEventType::kTxEnd: return "tx_end";
    case TraceEventType::kDrop: return "drop";
    case TraceEventType::kVtime: return "vtime";
  }
  return "?";
}

const char* to_string(DropCause c) {
  switch (c) {
    case DropCause::kNone: return "none";
    case DropCause::kBufferLimit: return "buffer_limit";
    case DropCause::kUnknownFlow: return "unknown_flow";
    case DropCause::kFaultLoss: return "fault_loss";
    case DropCause::kCorrupt: return "corrupt";
    case DropCause::kPushout: return "pushout";
    case DropCause::kFlowRemoved: return "flow_removed";
    case DropCause::kShed: return "shed";
  }
  return "?";
}

TraceEvent make_event(TraceEventType type, const Packet& p, Time t,
                      VirtualTime vtime, uint64_t backlog, DropCause cause) {
  TraceEvent e;
  e.type = type;
  e.drop_cause = cause;
  e.flow = p.flow;
  e.seq = p.seq;
  e.length_bits = p.length_bits;
  e.t = t;
  e.arrival = p.arrival;
  e.start_tag = p.start_tag;
  e.finish_tag = p.finish_tag;
  e.vtime = vtime;
  e.backlog = backlog;
  return e;
}

void Tracer::add_sink(TraceSink* sink) {
  if (!sink) return;
  sinks_.push_back(sink);
  active_ = active_ || !sink->discards_events();
}

void Tracer::own(std::unique_ptr<TraceSink> sink) {
  if (!sink) return;
  add_sink(sink.get());
  owned_.push_back(std::move(sink));
}

void Tracer::finish() {
  for (TraceSink* s : sinks_) s->finish();
}

RingBufferSink::RingBufferSink(std::size_t capacity)
    : buf_(capacity == 0 ? 1 : capacity) {}

void RingBufferSink::on_event(const TraceEvent& e) {
  buf_[next_] = e;
  next_ = (next_ + 1) % buf_.size();
  if (size_ < buf_.size()) ++size_;
  ++seen_;
}

std::vector<TraceEvent> RingBufferSink::events() const {
  std::vector<TraceEvent> out;
  out.reserve(size_);
  // Oldest retained event sits at next_ once the buffer has wrapped.
  const std::size_t start = size_ == buf_.size() ? next_ : 0;
  for (std::size_t i = 0; i < size_; ++i)
    out.push_back(buf_[(start + i) % buf_.size()]);
  return out;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

JsonlSink::JsonlSink(std::ostream& out) : out_(&out) {
  out_->precision(17);  // doubles round-trip exactly
}

JsonlSink::JsonlSink(const std::string& path) {
  auto f = std::make_unique<std::ofstream>(path);
  if (!*f) throw std::runtime_error("JsonlSink: cannot open " + path);
  f->precision(17);
  out_ = f.get();
  owned_ = std::move(f);
}

void JsonlSink::meta(const std::string& key, const std::string& value) {
  *out_ << "{\"type\":\"meta\",\"key\":\"" << json_escape(key)
        << "\",\"value\":\"" << json_escape(value) << "\"}\n";
  ++lines_;
}

void JsonlSink::on_event(const TraceEvent& e) {
  std::ostream& o = *out_;
  o << "{\"type\":\"" << to_string(e.type) << "\",\"t\":" << e.t
    << ",\"flow\":" << e.flow << ",\"seq\":" << e.seq
    << ",\"bits\":" << e.length_bits;
  if (e.type == TraceEventType::kDrop)
    o << ",\"cause\":\"" << to_string(e.drop_cause) << "\"";
  o << ",\"arrival\":" << e.arrival << ",\"start_tag\":" << e.start_tag
    << ",\"finish_tag\":" << e.finish_tag << ",\"vtime\":" << e.vtime
    << ",\"backlog\":" << e.backlog << "}\n";
  ++lines_;
}

void JsonlSink::finish() { out_->flush(); }

}  // namespace sfq::obs
