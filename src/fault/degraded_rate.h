// Rate-profile decorator for scripted link faults (docs/ROBUSTNESS.md).
//
// A DegradedRate multiplies an inner RateProfile by a piecewise-constant
// modulation factor m(t): 1 = nominal, (0,1) = degraded, 0 = outage. The
// timeline is composed up front from the fault plan, so finish times computed
// when a transmission *starts* already integrate across any outage that will
// occur mid-packet — the server never needs to preempt or recompute, and the
// work function stays exact for the FC/EBF verification helpers.
//
// This is the machinery behind Theorem 1's strongest reading: SFQ's fairness
// bound holds for ANY server rate behaviour, so we test it on links that die
// and recover mid-run.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "core/types.h"
#include "net/rate_profile.h"

namespace sfq::fault {

class DegradedRate final : public net::RateProfile {
 public:
  // Modulation factor `factor` applies from time `at` until the next change
  // (the last one extends forever).
  struct Change {
    Time at = 0.0;
    double factor = 1.0;
  };

  // `changes` must have non-negative times in strictly increasing order and
  // factors >= 0. A leading {0, 1} is implied when the first change is later
  // than t=0. An empty vector is the identity decorator.
  DegradedRate(std::unique_ptr<net::RateProfile> inner,
               std::vector<Change> changes);

  // Throws std::runtime_error when the transmission can never finish (the
  // final modulation factor is 0 — a link that goes down and stays down).
  Time finish_time(Time start, double bits) override;
  double work(Time t1, Time t2) override;
  // The *nominal* C: FC/EBF parameters describe the healthy link; faults are
  // excursions the theorems must survive, not a new steady state.
  double average_rate() const override { return inner_->average_rate(); }

  double factor_at(Time t) const { return changes_[index_at(t)].factor; }
  const net::RateProfile& inner() const { return *inner_; }

 private:
  std::size_t index_at(Time t) const;

  std::unique_ptr<net::RateProfile> inner_;
  std::vector<Change> changes_;  // normalized: first entry at t=0
};

}  // namespace sfq::fault
