// Declarative fault plans (docs/ROBUSTNESS.md).
//
// A FaultPlan is a value object listing what goes wrong and when: link
// outages and rate degradation (intervals), probabilistic packet loss and
// corruption (intervals with a drop probability), and flow churn (a flow
// leaves mid-run and may rejoin later). The plan itself touches nothing —
// FaultInjector arms it against a concrete server and simulator.
#pragma once

#include <cstdint>
#include <vector>

#include "core/types.h"
#include "fault/degraded_rate.h"

namespace sfq::fault {

// The link runs at `factor` x nominal during [at, until). factor 0 = outage.
struct RateFault {
  Time at = 0.0;
  Time until = kTimeInfinity;
  double factor = 0.0;
};

// Each arrival during [at, until) is dropped with probability `probability`;
// `corrupt` selects the drop cause (corrupt vs fault_loss).
struct LossFault {
  Time at = 0.0;
  Time until = kTimeInfinity;
  double probability = 0.0;
  bool corrupt = false;
};

// join=false: the flow leaves at `at` (queued packets flushed, later arrivals
// dropped). join=true: it rejoins; per Theorem 1's re-anchoring rule its next
// start tag resumes at max(v(t), previous finish tag).
struct ChurnEvent {
  Time at = 0.0;
  FlowId flow = kInvalidFlow;
  bool join = false;
};

class FaultPlan {
 public:
  // All builders validate eagerly (std::invalid_argument) so a bad plan fails
  // at construction, not mid-simulation.
  FaultPlan& link_down(Time at, Time until = kTimeInfinity) {
    return degrade(at, until, 0.0);
  }
  FaultPlan& degrade(Time at, Time until, double factor);
  FaultPlan& loss(Time at, Time until, double probability);
  FaultPlan& corruption(Time at, Time until, double probability);
  FaultPlan& flow_leave(Time at, FlowId f);
  FaultPlan& flow_join(Time at, FlowId f);
  // Seed for the loss/corruption draws; same seed + same plan + same arrival
  // stream => identical drop decisions (the determinism-under-faults test).
  FaultPlan& seed(uint64_t s) {
    seed_ = s;
    return *this;
  }

  bool empty() const {
    return rate_.empty() && loss_.empty() && churn_.empty();
  }
  uint64_t rng_seed() const { return seed_; }
  const std::vector<RateFault>& rate_faults() const { return rate_; }
  const std::vector<LossFault>& loss_faults() const { return loss_; }
  const std::vector<ChurnEvent>& churn() const { return churn_; }

  // Composes the rate faults into one piecewise modulation timeline: at each
  // instant the factor is the minimum over active intervals (outage beats
  // degradation when they overlap), 1 where none is active. Empty when the
  // plan has no rate faults.
  std::vector<DegradedRate::Change> modulation() const;

 private:
  std::vector<RateFault> rate_;
  std::vector<LossFault> loss_;
  std::vector<ChurnEvent> churn_;
  uint64_t seed_ = 1;
};

}  // namespace sfq::fault
