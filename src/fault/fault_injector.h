// Arms a FaultPlan against a live server (docs/ROBUSTNESS.md).
//
// Rate faults become a DegradedRate wrapped around the server's profile
// (composed once, so in-flight transmissions honour future outages); loss and
// corruption become a fault filter drawing from a seeded PRNG; flow churn is
// scheduled through the simulator event queue so leaves/rejoins interleave
// deterministically with arrivals and departures.
#pragma once

#include <cstdint>
#include <optional>
#include <random>

#include "core/packet.h"
#include "core/types.h"
#include "fault/fault_plan.h"
#include "net/scheduled_server.h"
#include "obs/trace.h"
#include "sim/simulator.h"

namespace sfq::fault {

class FaultInjector {
 public:
  FaultInjector(sim::Simulator& sim, net::ScheduledServer& server,
                FaultPlan plan)
      : sim_(sim), server_(server), plan_(std::move(plan)),
        rng_(plan_.rng_seed()) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Installs the plan. Call exactly once, before the run reaches the first
  // fault; the injector must outlive the simulation (the server keeps a
  // filter callback into it).
  void arm();

  const FaultPlan& plan() const { return plan_; }
  // Packets discarded by this injector, by cause.
  uint64_t losses() const { return losses_; }
  uint64_t corruptions() const { return corruptions_; }
  // Total PRNG draws (one per arrival per active loss interval).
  uint64_t draws() const { return draws_; }

 private:
  std::optional<obs::DropCause> filter(const Packet& p, Time t);

  sim::Simulator& sim_;
  net::ScheduledServer& server_;
  FaultPlan plan_;
  std::mt19937_64 rng_;
  std::uniform_real_distribution<double> uni_{0.0, 1.0};
  uint64_t draws_ = 0;
  uint64_t losses_ = 0;
  uint64_t corruptions_ = 0;
  bool armed_ = false;
};

}  // namespace sfq::fault
