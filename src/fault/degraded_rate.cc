#include "fault/degraded_rate.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

namespace sfq::fault {

DegradedRate::DegradedRate(std::unique_ptr<net::RateProfile> inner,
                           std::vector<Change> changes)
    : inner_(std::move(inner)), changes_(std::move(changes)) {
  if (!inner_) throw std::invalid_argument("DegradedRate: null inner profile");
  for (std::size_t i = 0; i < changes_.size(); ++i) {
    if (changes_[i].at < 0.0)
      throw std::invalid_argument("DegradedRate: negative change time");
    if (changes_[i].factor < 0.0)
      throw std::invalid_argument("DegradedRate: negative factor");
    if (i > 0 && changes_[i].at <= changes_[i - 1].at)
      throw std::invalid_argument(
          "DegradedRate: change times must be strictly increasing");
  }
  if (changes_.empty() || changes_.front().at > 0.0)
    changes_.insert(changes_.begin(), Change{0.0, 1.0});
}

std::size_t DegradedRate::index_at(Time t) const {
  // Last change with at <= t. changes_ is non-empty and starts at 0.
  auto it = std::upper_bound(
      changes_.begin(), changes_.end(), t,
      [](Time v, const Change& c) { return v < c.at; });
  return static_cast<std::size_t>(it - changes_.begin()) - 1;
}

Time DegradedRate::finish_time(Time start, double bits) {
  double remaining = bits;
  Time t = start;
  for (std::size_t i = index_at(t);; ++i) {
    const double m = changes_[i].factor;
    const bool last = i + 1 == changes_.size();
    const Time seg_end =
        last ? std::numeric_limits<Time>::infinity() : changes_[i + 1].at;
    if (m > 0.0) {
      if (last) return inner_->finish_time(t, remaining / m);
      // Work deliverable within this segment at the degraded rate.
      const double cap = m * inner_->work(t, seg_end);
      if (cap >= remaining) {
        // Finish inside the segment; clamp against fp residue at the edge.
        return std::min(inner_->finish_time(t, remaining / m), seg_end);
      }
      remaining -= cap;
    } else if (last) {
      throw std::runtime_error("DegradedRate: link down forever at t=" +
                               std::to_string(changes_[i].at));
    }
    t = seg_end;
  }
}

double DegradedRate::work(Time t1, Time t2) {
  if (t2 <= t1) return 0.0;
  double total = 0.0;
  for (std::size_t i = index_at(t1); i < changes_.size(); ++i) {
    const Time a = std::max(t1, changes_[i].at);
    const Time b =
        i + 1 < changes_.size() ? std::min(t2, changes_[i + 1].at) : t2;
    if (b <= a) {
      if (changes_[i].at >= t2) break;
      continue;
    }
    if (changes_[i].factor > 0.0)
      total += changes_[i].factor * inner_->work(a, b);
    if (b >= t2) break;
  }
  return total;
}

}  // namespace sfq::fault
