#include "fault/fault_plan.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace sfq::fault {
namespace {

void check_interval(Time at, Time until, const char* what) {
  if (at < 0.0 || !std::isfinite(at))
    throw std::invalid_argument(std::string(what) + ": bad start time");
  if (until <= at)
    throw std::invalid_argument(std::string(what) +
                                ": interval must end after it starts");
}

}  // namespace

FaultPlan& FaultPlan::degrade(Time at, Time until, double factor) {
  check_interval(at, until, "FaultPlan::degrade");
  if (factor < 0.0 || factor > 1.0)
    throw std::invalid_argument("FaultPlan::degrade: factor must be in [0,1]");
  rate_.push_back({at, until, factor});
  return *this;
}

FaultPlan& FaultPlan::loss(Time at, Time until, double probability) {
  check_interval(at, until, "FaultPlan::loss");
  if (probability < 0.0 || probability > 1.0)
    throw std::invalid_argument("FaultPlan::loss: probability not in [0,1]");
  loss_.push_back({at, until, probability, /*corrupt=*/false});
  return *this;
}

FaultPlan& FaultPlan::corruption(Time at, Time until, double probability) {
  check_interval(at, until, "FaultPlan::corruption");
  if (probability < 0.0 || probability > 1.0)
    throw std::invalid_argument(
        "FaultPlan::corruption: probability not in [0,1]");
  loss_.push_back({at, until, probability, /*corrupt=*/true});
  return *this;
}

FaultPlan& FaultPlan::flow_leave(Time at, FlowId f) {
  if (at < 0.0 || !std::isfinite(at))
    throw std::invalid_argument("FaultPlan::flow_leave: bad time");
  churn_.push_back({at, f, /*join=*/false});
  return *this;
}

FaultPlan& FaultPlan::flow_join(Time at, FlowId f) {
  if (at < 0.0 || !std::isfinite(at))
    throw std::invalid_argument("FaultPlan::flow_join: bad time");
  churn_.push_back({at, f, /*join=*/true});
  return *this;
}

std::vector<DegradedRate::Change> FaultPlan::modulation() const {
  if (rate_.empty()) return {};
  std::vector<Time> bounds{0.0};
  for (const auto& r : rate_) {
    bounds.push_back(r.at);
    if (std::isfinite(r.until)) bounds.push_back(r.until);
  }
  std::sort(bounds.begin(), bounds.end());
  bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());

  std::vector<DegradedRate::Change> out;
  for (Time b : bounds) {
    double m = 1.0;
    for (const auto& r : rate_)
      if (b >= r.at && b < r.until) m = std::min(m, r.factor);
    if (out.empty() || m != out.back().factor) out.push_back({b, m});
  }
  return out;
}

}  // namespace sfq::fault
