#include "fault/fault_injector.h"

#include <memory>
#include <stdexcept>
#include <utility>

namespace sfq::fault {

void FaultInjector::arm() {
  if (armed_) throw std::logic_error("FaultInjector: arm() called twice");
  armed_ = true;

  if (auto mod = plan_.modulation(); !mod.empty()) {
    server_.set_profile(std::make_unique<DegradedRate>(
        server_.release_profile(), std::move(mod)));
  }
  if (!plan_.loss_faults().empty()) {
    server_.set_fault_filter(
        [this](const Packet& p, Time t) { return filter(p, t); });
  }
  for (const auto& c : plan_.churn()) {
    sim_.at_flow(c.at,
                 c.join ? sim::EventOp::kChurnJoin : sim::EventOp::kChurnLeave,
                 &server_, c.flow);
  }
}

std::optional<obs::DropCause> FaultInjector::filter(const Packet& p, Time t) {
  (void)p;
  // One draw per active interval, in plan order: the decision stream is a
  // pure function of (seed, plan, arrival sequence), which is what the
  // determinism-under-faults test pins down.
  for (const auto& l : plan_.loss_faults()) {
    if (t < l.at || t >= l.until) continue;
    ++draws_;
    if (uni_(rng_) < l.probability) {
      if (l.corrupt) {
        ++corruptions_;
        return obs::DropCause::kCorrupt;
      }
      ++losses_;
      return obs::DropCause::kFaultLoss;
    }
  }
  return std::nullopt;
}

}  // namespace sfq::fault
