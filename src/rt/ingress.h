#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/packet.h"
#include "core/types.h"
#include "rt/spsc_ring.h"

namespace sfq::rt {

// One arrival crossing a producer ring: the packet plus the wall-clock stamp
// taken on the producer thread. The stamp doubles as the packet's arrival
// time at the engine (queueing delay measured from here includes time spent
// in the ring, which is honest: the ring *is* part of the queue).
struct IngressItem {
  Packet packet;
  Time t_ingress = 0.0;
};

// Sharded multi-producer ingress: one bounded SPSC ring per producer thread,
// so the arrival path is lock-free end to end — producers never contend with
// each other, and the single dispatcher merges ring heads by ingress stamp.
//
// Ordering note: a producer stamps, then pushes. Two packets stamped
// t1 < t2 on *different* producers can become visible to the dispatcher in
// either order, so the merge is best-effort arrival order (exact per
// producer, approximately global). That is sufficient: scheduler correctness
// only needs the dispatcher's own enqueue timestamps to be monotone, which
// they are (it re-reads the shared WallClock per call).
//
// Backpressure: a full ring is a counted drop (or a spin, for producers that
// must not lose packets), never a block inside the scheduler — the same
// philosophy as PR 2's overload policies, applied one stage earlier.
class Ingress {
 public:
  Ingress(std::size_t producers, std::size_t ring_capacity);

  std::size_t producers() const { return shards_.size(); }
  std::size_t ring_capacity() const { return shards_[0]->ring.capacity(); }

  // Producer `i` only. Stamps the item with `now` and pushes. False when the
  // ring is full; with `count_full` (the default) the drop has then already
  // been counted against shard i. Blocking producers retry with
  // count_full = false so one lost packet is not counted once per spin.
  bool push(std::size_t i, Packet p, Time now, bool count_full = true);

  // Producer `i` only: records a backpressure drop that happened outside the
  // ring (e.g. an offer rejected because the engine stopped accepting).
  void count_drop(std::size_t i);

  // Dispatcher only: pops the earliest-stamped head across all rings (ties
  // to the lowest producer index).
  std::optional<IngressItem> pop_earliest();

  // Dispatcher only: true when every ring looked empty in one pass. Racy by
  // nature (a producer may push concurrently); callers use it for idle/stop
  // decisions, not correctness.
  bool empty() const;

  // Any thread (relaxed counters).
  uint64_t pushed(std::size_t i) const;
  uint64_t drops(std::size_t i) const;
  uint64_t total_pushed() const;
  uint64_t total_drops() const;

 private:
  struct Shard {
    explicit Shard(std::size_t capacity) : ring(capacity) {}
    SpscRing<IngressItem> ring;
    alignas(kCacheLineBytes) std::atomic<uint64_t> pushed{0};
    std::atomic<uint64_t> drops{0};
  };
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace sfq::rt
