// Producer-facing ingress contract shared by the single-dispatcher RtEngine
// and the sharded multi-core ShardedEngine (docs/REALTIME.md).
//
// LoadGen and any other traffic source programs against this interface, so
// the same generator drives one dispatcher or N of them unchanged: the
// sharded engine routes each offer to its flow's home shard behind these
// calls (rt/shard/shard_router.h) and the ledger hooks resolve against the
// same shard the routed attempt landed on.
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/packet.h"
#include "core/types.h"

namespace sfq::rt {

// Result of a non-blocking try_offer (docs/ROBUSTNESS.md). kBackpressure is
// the explicit ring-full signal: nothing was counted, the caller owns the
// packet and decides — retry (note_offer_retry), give up
// (note_offer_abandoned) or block. kClosed means the engine stopped
// accepting; retrying is pointless.
enum class OfferStatus : uint8_t {
  kAccepted = 0,
  kBackpressure,
  kClosed,
};

class IngressTarget {
 public:
  virtual ~IngressTarget() = default;

  // Producer thread `i` in [0, producers()) offers a packet. Each variant
  // keeps RtEngine's contract (rt/engine.h): offer counts a failure as an
  // ingress drop, offer_wait blocks while the ring is full, try_offer
  // returns explicit backpressure and counts nothing.
  virtual bool offer(std::size_t i, Packet p) = 0;
  virtual bool offer_wait(std::size_t i, Packet p) = 0;
  virtual OfferStatus try_offer(std::size_t i, const Packet& p) = 0;

  // Ledger hooks for retry loops; they resolve producer i's most recent
  // try_offer attempt (producer threads are single-threaded per slot, so
  // "most recent" is well defined even when offers are routed across
  // shards). note_offer_retry only bumps telemetry; note_offer_abandoned
  // counts the given-up attempt as an ingress drop so
  // offers == ingress_pushed + ingress_drops stays exact.
  virtual void note_offer_retry(std::size_t i) = 0;
  virtual void note_offer_abandoned(std::size_t i) = 0;

  virtual bool accepting() const = 0;
  virtual Time now() const = 0;
  virtual std::size_t producers() const = 0;
};

}  // namespace sfq::rt
