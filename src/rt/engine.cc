#include "rt/engine.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <optional>
#include <stdexcept>
#include <utility>

#include "obs/telemetry/exposition.h"
#include "stats/fairness.h"

namespace sfq::rt {

namespace tel = obs::telemetry;

namespace {

// Arrivals drained per dispatcher iteration before the transmission deadline
// is re-checked. Bounds how late a completion can fire under arrival floods
// without giving up batching on the ingress merge.
constexpr int kDrainBatch = 64;

// Transmissions completed+started per iteration when their deadlines have
// already passed. A fast link (finish times in nanoseconds) would otherwise
// be throttled to one packet per loop, far below what the discipline can
// sustain; a batch keeps service and ingress draining interleaved fairly.
constexpr int kServiceBatch = 64;

// Idle strategy: yield this many times (lets producers run, which matters on
// small machines where everything shares cores), then sleep in short naps so
// an idle engine does not burn a core.
constexpr int kIdleYields = 16;
constexpr auto kIdleSleep = std::chrono::microseconds(50);

}  // namespace

RtEngine::RtEngine(Scheduler& sched, std::unique_ptr<net::RateProfile> profile,
                   EngineOptions opts)
    : sched_(sched),
      profile_(std::move(profile)),
      opts_(opts),
      ingress_(opts.producers, opts.ring_capacity) {
  if (!profile_) throw std::invalid_argument("RtEngine: null rate profile");
}

RtEngine::~RtEngine() {
  if (running()) stop(StopMode::kAbandon);
  // A watchdog-stopped engine (dispatcher exited on its own, stop() never
  // called) can still own a live stats thread/server.
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_stop_ = true;
  }
  stats_cv_.notify_all();
  if (stats_thread_.joinable()) stats_thread_.join();
  if (stats_server_) stats_server_->stop();
}

void RtEngine::set_tracer(obs::Tracer* tracer) {
  if (running()) throw std::logic_error("RtEngine: set_tracer while running");
  tracer_ = tracer;
  trace_on_ = tracer != nullptr && tracer->active();
  sched_.set_tracer(tracer);
}

void RtEngine::set_telemetry(tel::Telemetry* plane) {
  if (running())
    throw std::logic_error("RtEngine: set_telemetry while running");
  tele_ = plane;
  tele_on_ = plane != nullptr;
  prod_writers_.clear();
  profiler_.reset();
  h_dwell_ = h_qdelay_ = h_lag_ = nullptr;
  if (tele_ == nullptr) return;
  const std::size_t shard = opts_.telemetry_shard;
  disp_writer_ = tele_->writer(shard);
  h_dwell_ = &tele_->hist(tel::HistId::kIngressDwell, shard);
  h_qdelay_ = &tele_->hist(tel::HistId::kQueueDelay, shard);
  h_lag_ = &tele_->hist(tel::HistId::kServiceLag, shard);
  prod_writers_.reserve(ingress_.producers());
  for (std::size_t i = 0; i < ingress_.producers(); ++i)
    prod_writers_.push_back(tele_->writer(shard));
  profiler_ = std::make_unique<tel::StageProfiler>(*tele_, shard);
  profiler_->enable(opts_.profiling);
}

bool RtEngine::offer(std::size_t i, Packet p) {
  if (!accepting_.load(std::memory_order_acquire)) {
    ingress_.count_drop(i);
    if (tele_on_) prod_writers_[i].inc(tel::CounterId::kIngressDrops);
    return false;
  }
  const bool pushed = ingress_.push(i, std::move(p), clock_.now());
  if (tele_on_)
    prod_writers_[i].inc(pushed ? tel::CounterId::kIngressPushed
                                : tel::CounterId::kIngressDrops);
  return pushed;
}

bool RtEngine::offer_wait(std::size_t i, Packet p) {
  for (;;) {
    if (!accepting_.load(std::memory_order_acquire)) {
      ingress_.count_drop(i);
      if (tele_on_) prod_writers_[i].inc(tel::CounterId::kIngressDrops);
      return false;
    }
    // Packet is trivially copyable; retry with a fresh timestamp each spin
    // so the ingress stamp reflects when the push actually succeeded.
    if (ingress_.push(i, p, clock_.now(), /*count_full=*/false)) {
      if (tele_on_) prod_writers_[i].inc(tel::CounterId::kIngressPushed);
      return true;
    }
    std::this_thread::yield();
  }
}

void RtEngine::start() {
  if (started_) throw std::logic_error("RtEngine: start() called twice");
  started_ = true;
  const std::size_t n = sched_.flows().size();
  flow_bits_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    flow_bits_.push_back(std::make_unique<std::atomic<double>>(0.0));
  if (tele_on_) {
    // The flow table is immutable while the engine runs, so the stats thread
    // works off a private copy of the fairness parameters.
    fair_weights_.reserve(n);
    fair_max_bits_.reserve(n);
    for (FlowId f = 0; f < n; ++f) {
      fair_weights_.push_back(sched_.flows().weight(f));
      fair_max_bits_.push_back(sched_.flows().spec(f).max_packet_bits);
    }
  }
  accepting_.store(true, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  dispatcher_ = std::thread([this] {
    run();
    // Whatever ended the run (stop() or the watchdog), leave the gauges
    // describing the final state for post-run scrapes and bridges.
    if (tele_on_) publish_final_gauges();
  });
  if (tele_on_ && (opts_.stats_interval > 0.0 || opts_.stats_port >= 0)) {
    if (opts_.stats_port >= 0) {
      stats_server_ = std::make_unique<tel::StatsServer>();
      stats_server_->start(static_cast<uint16_t>(opts_.stats_port));
    }
    stats_stop_ = false;
    stats_thread_ = std::thread([this] { stats_loop(); });
  }
}

void RtEngine::stop(StopMode mode) {
  std::lock_guard<std::mutex> lock(stop_mu_);
  if (!running_.load(std::memory_order_acquire)) return;
  accepting_.store(false, std::memory_order_release);
  stop_mode_.store(mode, std::memory_order_relaxed);
  stop_requested_.store(true, std::memory_order_release);
  if (dispatcher_.joinable()) dispatcher_.join();
  // Stop the stats thread after the dispatcher so its final pass sees the
  // settled counters. The TCP endpoint stays up until destruction so late
  // scrapes still read the final snapshot.
  {
    std::lock_guard<std::mutex> slock(stats_mu_);
    stats_stop_ = true;
  }
  stats_cv_.notify_all();
  if (stats_thread_.joinable()) stats_thread_.join();
  running_.store(false, std::memory_order_release);
}

void RtEngine::run() {
  // The in-flight transmission lives in timers_ as a typed kServiceComplete
  // event keyed by its pacing deadline: busy == !timers_.empty(), and the
  // deadline is timers_.next_time().
  int idle_streak = 0;
  // Watchdog bookkeeping: the last instant a transmission started or
  // completed. Draining rings is deliberately not progress — a scheduler
  // that accepts packets but never serves them is exactly the wedge the
  // watchdog exists to catch.
  Time last_progress = clock_.now();

  for (;;) {
    const bool stopping = stop_requested_.load(std::memory_order_acquire);
    const bool abandon =
        stopping && stop_mode_.load(std::memory_order_relaxed) ==
                        StopMode::kAbandon;

    // 1. Drain a bounded batch of arrivals, earliest ingress stamp first.
    //    An abandoning engine leaves ring items where they are (step 3
    //    counts them) instead of feeding a backlog nobody will serve.
    int drained = 0;
    if (!abandon) {
      SFQ_PROF_SCOPE(profiler_.get(), tel::HistId::kStageDrain);
      while (drained < kDrainBatch) {
        std::optional<IngressItem> item = ingress_.pop_earliest();
        if (!item) break;
        inject(std::move(*item));
        ++drained;
      }
    }

    // 2. Serve: complete due transmissions and start the next one, up to a
    //    batch — a fast link turns over many packets per loop iteration.
    //    Work-conserving on the wall clock: the link is busy from dequeue
    //    until the profile's finish time.
    int served = 0;
    uint64_t served_bits = 0;
    while (served < kServiceBatch) {
      if (!timers_.empty()) {
        const Time now = clock_.now();
        if (now < timers_.next_time()) break;  // deadline in the future
        sim::EventQueue::Popped done;
        timers_.pop(done);
        {
          SFQ_PROF_SCOPE(profiler_.get(), tel::HistId::kStageTransmit);
          complete(done.event.packet, now, /*deadline=*/done.when);
        }
        served_bits += static_cast<uint64_t>(done.event.packet.length_bits);
        last_progress = now;
        ++served;
      }
      if (abandon) break;
      const Time now = clock_.now();
      std::optional<Packet> next;
      {
        SFQ_PROF_SCOPE(profiler_.get(), tel::HistId::kStageSchedule);
        next = sched_.dequeue(now);
      }
      if (!next) break;
      if (capture_ != nullptr)
        capture_->push_back({CaptureOp::Kind::kDequeue, *next, now});
      if (trace_on_) [[unlikely]]
        tracer_->emit(obs::make_event(obs::TraceEventType::kTxStart, *next,
                                      now, /*vtime=*/0.0,
                                      sched_.backlog_packets()));
      const Time deadline = profile_->finish_time(now, next->length_bits);
      timers_.schedule_packet(deadline, sim::EventOp::kServiceComplete,
                              /*target=*/nullptr, *next);
      last_progress = now;
    }
    // Flush transmit counters once per serve batch rather than per packet:
    // histograms need per-packet samples but the counters only need totals.
    if (tele_on_ && served > 0) {
      disp_writer_.inc(tel::CounterId::kTransmitted,
                       static_cast<uint64_t>(served));
      disp_writer_.inc(tel::CounterId::kTxBits, served_bits);
    }

    // 4. Exit checks.
    if (stopping && timers_.empty()) {
      if (abandon) {
        uint64_t left = 0;
        while (ingress_.pop_earliest()) ++left;
        abandoned_.fetch_add(left, std::memory_order_relaxed);
        if (tele_on_) disp_writer_.inc(tel::CounterId::kAbandoned, left);
        return;
      }
      if (drained == 0 && ingress_.empty() && sched_.empty()) return;
    }

    // 4b. Stall watchdog: obligations outstanding but no transmission has
    //     started or completed for the whole window => the dispatcher (or
    //     the discipline under it) is wedged. Count it and stop cleanly —
    //     scheduler backlog stays visible in stats().backlog, ring leftovers
    //     become `abandoned` — rather than hanging the process.
    if (opts_.stall_timeout > 0.0) {
      const Time now = clock_.now();
      if (timers_.empty() && sched_.empty()) {
        last_progress = now;  // idle: no obligations, nothing to watch
      } else if (now - last_progress > opts_.stall_timeout) {
        stalls_.fetch_add(1, std::memory_order_relaxed);
        accepting_.store(false, std::memory_order_release);
        uint64_t left = 0;
        while (ingress_.pop_earliest()) ++left;
        abandoned_.fetch_add(left, std::memory_order_relaxed);
        if (tele_on_) {
          disp_writer_.inc(tel::CounterId::kStalls);
          disp_writer_.inc(tel::CounterId::kAbandoned, left);
        }
        stalled_.store(true, std::memory_order_release);
        return;
      }
    }

    // 5. Wait strategy.
    if (!timers_.empty()) {
      if (drained > 0) {
        idle_streak = 0;
        continue;  // more arrivals may already be waiting
      }
      const Time wait = timers_.next_time() - clock_.now();
      if (wait <= 0.0) continue;
      if (wait > opts_.spin_threshold) {
        // Sleep most of the wait, capped so rings are still drained at a
        // bounded interval while a long transmission is in flight.
        const double nap = std::min(wait - opts_.spin_threshold, 1e-3);
        std::this_thread::sleep_for(std::chrono::duration<double>(nap));
      } else {
        std::this_thread::yield();
      }
    } else if (drained == 0) {
      if (++idle_streak <= kIdleYields)
        std::this_thread::yield();
      else
        std::this_thread::sleep_for(kIdleSleep);
    } else {
      idle_streak = 0;
    }
  }
}

void RtEngine::inject(IngressItem item) {
  Packet& p = item.packet;
  const Time now = clock_.now();
  if (tele_on_ && (++dwell_tick_ & ((1u << kTeleSampleShift) - 1)) == 0)
    h_dwell_->record_seconds_single_writer(now - item.t_ingress);
  const FlowTable& table = sched_.flows();
  const bool registered = p.flow < table.size();
  if (registered ? !table.active(p.flow)
                 : sched_.requires_registered_flows()) {
    drop(std::move(p), now, obs::DropCause::kUnknownFlow);
    return;
  }
  if (opts_.buffer_limit != 0 &&
      sched_.backlog_packets() >= opts_.buffer_limit) {
    bool made_room = false;
    if (opts_.overload_policy == net::OverloadPolicy::kPushout) {
      const FlowId victim = longest_queue();
      if (victim != kInvalidFlow) {
        if (std::optional<Packet> evicted = sched_.pushout(victim, now)) {
          post_enqueue_drops_.fetch_add(1, std::memory_order_relaxed);
          if (capture_ != nullptr)
            capture_->push_back({CaptureOp::Kind::kPushout, *evicted, now});
          drop(std::move(*evicted), now, obs::DropCause::kPushout);
          made_room = true;
        }
      }
    }
    if (!made_room) {
      drop(std::move(p), now, obs::DropCause::kBufferLimit);
      return;
    }
  }
  // p.arrival was stamped on the producer thread: time spent in the ingress
  // ring counts as queueing, which keeps delay metrics honest.
  const FlowId flow = p.flow;
  const uint64_t seq = p.seq;
  const double bits = p.length_bits;
  const Time arrival = p.arrival;
  const std::size_t before = sched_.backlog_packets();
  if (capture_ != nullptr)
    capture_->push_back({CaptureOp::Kind::kEnqueue, p, now});
  sched_.enqueue(std::move(p), now);
  if (sched_.backlog_packets() == before) {
    // The discipline's own admit gate refused the packet (counted and traced
    // there); mirror it in the engine ledger like ScheduledServer does.
    cause_drops_[static_cast<std::size_t>(obs::DropCause::kUnknownFlow)]
        .fetch_add(1, std::memory_order_relaxed);
    if (tele_on_) disp_writer_.drop(obs::DropCause::kUnknownFlow);
    return;
  }
  accepted_.fetch_add(1, std::memory_order_relaxed);
  if (tele_on_) disp_writer_.inc(tel::CounterId::kAccepted);
  if (trace_on_) [[unlikely]] {
    obs::TraceEvent e;
    e.type = obs::TraceEventType::kEnqueue;
    e.flow = flow;
    e.seq = seq;
    e.length_bits = bits;
    e.t = now;
    e.arrival = arrival;
    e.backlog = sched_.backlog_packets();
    tracer_->emit(e);
  }
}

void RtEngine::drop(Packet&& p, Time now, obs::DropCause cause) {
  cause_drops_[static_cast<std::size_t>(cause)].fetch_add(
      1, std::memory_order_relaxed);
  if (tele_on_) disp_writer_.drop(cause);
  if (trace_on_) [[unlikely]]
    tracer_->emit(obs::make_event(obs::TraceEventType::kDrop, p, now,
                                  /*vtime=*/0.0, sched_.backlog_packets(),
                                  cause));
}

void RtEngine::complete(const Packet& p, Time now, Time deadline) {
  if (capture_ != nullptr)
    capture_->push_back({CaptureOp::Kind::kComplete, p, now});
  sched_.on_transmit_complete(p, now);
  transmitted_.fetch_add(1, std::memory_order_relaxed);
  // Single-writer counters: only the dispatcher writes, so a load+store pair
  // (not fetch_add) is race-free and keeps doubles exact.
  tx_bits_.store(tx_bits_.load(std::memory_order_relaxed) + p.length_bits,
                 std::memory_order_relaxed);
  if (p.flow < flow_bits_.size()) {
    std::atomic<double>& b = *flow_bits_[p.flow];
    b.store(b.load(std::memory_order_relaxed) + p.length_bits,
            std::memory_order_release);
  }
  const double lag = now - deadline;
  if (lag > max_service_lag_.load(std::memory_order_relaxed))
    max_service_lag_.store(lag, std::memory_order_relaxed);
  // kTransmitted / kTxBits are flushed per serve batch in run(). The
  // enqueue->transmit histogram records every packet; service lag is
  // sampled (see kTeleSampleShift).
  if (tele_on_) {
    h_qdelay_->record_seconds_single_writer(now - p.arrival);
    if ((++lag_tick_ & ((1u << kTeleSampleShift) - 1)) == 0)
      h_lag_->record_seconds_single_writer(lag);
  }
  if (trace_on_) [[unlikely]]
    tracer_->emit(obs::make_event(obs::TraceEventType::kTxEnd, p, now,
                                  /*vtime=*/0.0, sched_.backlog_packets()));
}

FlowId RtEngine::longest_queue() const {
  FlowId best = kInvalidFlow;
  double best_bits = 0.0;
  const std::size_t n = sched_.flows().size();
  for (FlowId f = 0; f < n; ++f) {
    const double b = sched_.backlog_bits(f);
    if (b > best_bits) {  // strict: ties resolve to the lowest flow id
      best_bits = b;
      best = f;
    }
  }
  return best;
}

EngineStats RtEngine::stats() const {
  EngineStats s;
  s.ingress_pushed = ingress_.total_pushed();
  s.ingress_drops = ingress_.total_drops();
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.transmitted = transmitted_.load(std::memory_order_relaxed);
  s.tx_bits = tx_bits_.load(std::memory_order_relaxed);
  s.abandoned = abandoned_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < obs::kDropCauseCount; ++i)
    s.drops[i] = cause_drops_[i].load(std::memory_order_relaxed);
  const uint64_t done =
      s.transmitted + post_enqueue_drops_.load(std::memory_order_relaxed);
  s.backlog = s.accepted > done ? s.accepted - done : 0;
  s.max_service_lag = max_service_lag_.load(std::memory_order_relaxed);
  s.stalls = stalls_.load(std::memory_order_relaxed);
  return s;
}

void RtEngine::set_capture(std::vector<CaptureOp>* out) {
  if (running()) throw std::logic_error("RtEngine: set_capture while running");
  capture_ = out;
}

double RtEngine::flow_tx_bits(FlowId f) const {
  return f < flow_bits_.size()
             ? flow_bits_[f]->load(std::memory_order_acquire)
             : 0.0;
}

std::vector<double> RtEngine::service_snapshot() const {
  std::vector<double> out(flow_bits_.size());
  for (std::size_t f = 0; f < flow_bits_.size(); ++f)
    out[f] = flow_bits_[f]->load(std::memory_order_acquire);
  return out;
}

void RtEngine::stats_loop() {
  // Default cadence when only the TCP endpoint was requested: scrapes want
  // reasonably fresh data even without an explicit interval.
  const double interval =
      opts_.stats_interval > 0.0 ? opts_.stats_interval : 0.5;
  std::vector<double> prev_service = service_snapshot();
  std::unique_lock<std::mutex> lock(stats_mu_);
  while (!stats_stop_) {
    stats_cv_.wait_for(lock, std::chrono::duration<double>(interval),
                       [this] { return stats_stop_; });
    lock.unlock();
    publish_stats(prev_service);
    lock.lock();
  }
  lock.unlock();
  // One final pass after the dispatcher settled (stop() joins it before
  // signalling us) so the published snapshot matches the final ledger.
  publish_stats(prev_service);
}

void RtEngine::publish_stats(std::vector<double>& prev_service) {
  const std::size_t shard = opts_.telemetry_shard;
  const EngineStats es = stats();
  tele_->set_gauge(tel::GaugeId::kBacklogPackets,
                   static_cast<double>(es.backlog), shard);
  tele_->set_gauge(tel::GaugeId::kServiceLagMax, es.max_service_lag, shard);

  // Theorem-1 fairness monitor over the last window: for every pair of flows
  // that both received service, compare normalized service W_f/r_f against
  // the paper's bound l_f/r_f + l_m/r_m (stats::sfq_fairness_bound). Flows
  // idle in the window are skipped — the theorem only covers intervals where
  // both flows are backlogged, and "both received service" is the cheapest
  // online proxy for that.
  const std::vector<double> cur = service_snapshot();
  double gap = 0.0;
  double bound = 0.0;
  for (std::size_t f = 0; f < cur.size(); ++f) {
    const double df = cur[f] - prev_service[f];
    if (df <= 0.0) continue;
    for (std::size_t m = f + 1; m < cur.size(); ++m) {
      const double dm = cur[m] - prev_service[m];
      if (dm <= 0.0) continue;
      const double g =
          std::abs(df / fair_weights_[f] - dm / fair_weights_[m]);
      const double b = stats::sfq_fairness_bound(
          fair_max_bits_[f], fair_weights_[f], fair_max_bits_[m],
          fair_weights_[m]);
      if (g > gap) gap = g;
      if (b > bound) bound = b;
    }
  }
  prev_service = cur;
  tele_->set_gauge(tel::GaugeId::kFairnessGap, gap, shard);
  if (gap > tele_->gauge(tel::GaugeId::kFairnessGapMax, shard))
    tele_->set_gauge(tel::GaugeId::kFairnessGapMax, gap, shard);
  tele_->set_gauge(tel::GaugeId::kFairnessBound, bound, shard);

  const tel::TelemetrySnapshot snap = tele_->snapshot();
  if (stats_server_)
    stats_server_->publish(tel::to_prometheus(snap), tel::to_json(snap));
  if (opts_.stats_console) {
    const tel::HistogramSnapshot qd = snap.hist_total(tel::HistId::kQueueDelay);
    uint64_t drops = snap.drops_total(shard);
    std::fprintf(stderr,
                 "[sfq stats] tx=%llu drops=%llu backlog=%llu "
                 "delay_p50=%.3fms p99=%.3fms max=%.3fms "
                 "fair_gap=%.3gms bound=%.3gms lag_max=%.3fms\n",
                 static_cast<unsigned long long>(es.transmitted),
                 static_cast<unsigned long long>(drops),
                 static_cast<unsigned long long>(es.backlog),
                 qd.quantile_s(0.50) * 1e3, qd.quantile_s(0.99) * 1e3,
                 qd.max_s() * 1e3, gap * 1e3, bound * 1e3,
                 es.max_service_lag * 1e3);
  }
}

void RtEngine::publish_final_gauges() {
  // Runs on the dispatcher as its last act, so post-run snapshots (chaos
  // conservation checks, registry bridges) see the settled backlog even when
  // no stats thread was configured.
  const std::size_t shard = opts_.telemetry_shard;
  const EngineStats es = stats();
  tele_->set_gauge(tel::GaugeId::kBacklogPackets,
                   static_cast<double>(es.backlog), shard);
  tele_->set_gauge(tel::GaugeId::kServiceLagMax, es.max_service_lag, shard);
}

}  // namespace sfq::rt
