#include "rt/engine.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <stdexcept>
#include <utility>

namespace sfq::rt {

namespace {

// Arrivals drained per dispatcher iteration before the transmission deadline
// is re-checked. Bounds how late a completion can fire under arrival floods
// without giving up batching on the ingress merge.
constexpr int kDrainBatch = 64;

// Transmissions completed+started per iteration when their deadlines have
// already passed. A fast link (finish times in nanoseconds) would otherwise
// be throttled to one packet per loop, far below what the discipline can
// sustain; a batch keeps service and ingress draining interleaved fairly.
constexpr int kServiceBatch = 64;

// Idle strategy: yield this many times (lets producers run, which matters on
// small machines where everything shares cores), then sleep in short naps so
// an idle engine does not burn a core.
constexpr int kIdleYields = 16;
constexpr auto kIdleSleep = std::chrono::microseconds(50);

}  // namespace

RtEngine::RtEngine(Scheduler& sched, std::unique_ptr<net::RateProfile> profile,
                   EngineOptions opts)
    : sched_(sched),
      profile_(std::move(profile)),
      opts_(opts),
      ingress_(opts.producers, opts.ring_capacity) {
  if (!profile_) throw std::invalid_argument("RtEngine: null rate profile");
}

RtEngine::~RtEngine() {
  if (running()) stop(StopMode::kAbandon);
}

void RtEngine::set_tracer(obs::Tracer* tracer) {
  if (running()) throw std::logic_error("RtEngine: set_tracer while running");
  tracer_ = tracer;
  trace_on_ = tracer != nullptr && tracer->active();
  sched_.set_tracer(tracer);
}

bool RtEngine::offer(std::size_t i, Packet p) {
  if (!accepting_.load(std::memory_order_acquire)) {
    ingress_.count_drop(i);
    return false;
  }
  return ingress_.push(i, std::move(p), clock_.now());
}

bool RtEngine::offer_wait(std::size_t i, Packet p) {
  for (;;) {
    if (!accepting_.load(std::memory_order_acquire)) {
      ingress_.count_drop(i);
      return false;
    }
    // Packet is trivially copyable; retry with a fresh timestamp each spin
    // so the ingress stamp reflects when the push actually succeeded.
    if (ingress_.push(i, p, clock_.now(), /*count_full=*/false)) return true;
    std::this_thread::yield();
  }
}

void RtEngine::start() {
  if (started_) throw std::logic_error("RtEngine: start() called twice");
  started_ = true;
  const std::size_t n = sched_.flows().size();
  flow_bits_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    flow_bits_.push_back(std::make_unique<std::atomic<double>>(0.0));
  accepting_.store(true, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  dispatcher_ = std::thread([this] { run(); });
}

void RtEngine::stop(StopMode mode) {
  std::lock_guard<std::mutex> lock(stop_mu_);
  if (!running_.load(std::memory_order_acquire)) return;
  accepting_.store(false, std::memory_order_release);
  stop_mode_.store(mode, std::memory_order_relaxed);
  stop_requested_.store(true, std::memory_order_release);
  if (dispatcher_.joinable()) dispatcher_.join();
  running_.store(false, std::memory_order_release);
}

void RtEngine::run() {
  // The in-flight transmission lives in timers_ as a typed kServiceComplete
  // event keyed by its pacing deadline: busy == !timers_.empty(), and the
  // deadline is timers_.next_time().
  int idle_streak = 0;
  // Watchdog bookkeeping: the last instant a transmission started or
  // completed. Draining rings is deliberately not progress — a scheduler
  // that accepts packets but never serves them is exactly the wedge the
  // watchdog exists to catch.
  Time last_progress = clock_.now();

  for (;;) {
    const bool stopping = stop_requested_.load(std::memory_order_acquire);
    const bool abandon =
        stopping && stop_mode_.load(std::memory_order_relaxed) ==
                        StopMode::kAbandon;

    // 1. Drain a bounded batch of arrivals, earliest ingress stamp first.
    //    An abandoning engine leaves ring items where they are (step 3
    //    counts them) instead of feeding a backlog nobody will serve.
    int drained = 0;
    if (!abandon) {
      while (drained < kDrainBatch) {
        std::optional<IngressItem> item = ingress_.pop_earliest();
        if (!item) break;
        inject(std::move(*item));
        ++drained;
      }
    }

    // 2. Serve: complete due transmissions and start the next one, up to a
    //    batch — a fast link turns over many packets per loop iteration.
    //    Work-conserving on the wall clock: the link is busy from dequeue
    //    until the profile's finish time.
    int served = 0;
    while (served < kServiceBatch) {
      if (!timers_.empty()) {
        const Time now = clock_.now();
        if (now < timers_.next_time()) break;  // deadline in the future
        sim::EventQueue::Popped done;
        timers_.pop(done);
        complete(done.event.packet, now, /*deadline=*/done.when);
        last_progress = now;
        ++served;
      }
      if (abandon) break;
      const Time now = clock_.now();
      std::optional<Packet> next = sched_.dequeue(now);
      if (!next) break;
      if (capture_ != nullptr)
        capture_->push_back({CaptureOp::Kind::kDequeue, *next, now});
      if (trace_on_) [[unlikely]]
        tracer_->emit(obs::make_event(obs::TraceEventType::kTxStart, *next,
                                      now, /*vtime=*/0.0,
                                      sched_.backlog_packets()));
      const Time deadline = profile_->finish_time(now, next->length_bits);
      timers_.schedule_packet(deadline, sim::EventOp::kServiceComplete,
                              /*target=*/nullptr, *next);
      last_progress = now;
    }

    // 4. Exit checks.
    if (stopping && timers_.empty()) {
      if (abandon) {
        uint64_t left = 0;
        while (ingress_.pop_earliest()) ++left;
        abandoned_.fetch_add(left, std::memory_order_relaxed);
        return;
      }
      if (drained == 0 && ingress_.empty() && sched_.empty()) return;
    }

    // 4b. Stall watchdog: obligations outstanding but no transmission has
    //     started or completed for the whole window => the dispatcher (or
    //     the discipline under it) is wedged. Count it and stop cleanly —
    //     scheduler backlog stays visible in stats().backlog, ring leftovers
    //     become `abandoned` — rather than hanging the process.
    if (opts_.stall_timeout > 0.0) {
      const Time now = clock_.now();
      if (timers_.empty() && sched_.empty()) {
        last_progress = now;  // idle: no obligations, nothing to watch
      } else if (now - last_progress > opts_.stall_timeout) {
        stalls_.fetch_add(1, std::memory_order_relaxed);
        accepting_.store(false, std::memory_order_release);
        uint64_t left = 0;
        while (ingress_.pop_earliest()) ++left;
        abandoned_.fetch_add(left, std::memory_order_relaxed);
        stalled_.store(true, std::memory_order_release);
        return;
      }
    }

    // 5. Wait strategy.
    if (!timers_.empty()) {
      if (drained > 0) {
        idle_streak = 0;
        continue;  // more arrivals may already be waiting
      }
      const Time wait = timers_.next_time() - clock_.now();
      if (wait <= 0.0) continue;
      if (wait > opts_.spin_threshold) {
        // Sleep most of the wait, capped so rings are still drained at a
        // bounded interval while a long transmission is in flight.
        const double nap = std::min(wait - opts_.spin_threshold, 1e-3);
        std::this_thread::sleep_for(std::chrono::duration<double>(nap));
      } else {
        std::this_thread::yield();
      }
    } else if (drained == 0) {
      if (++idle_streak <= kIdleYields)
        std::this_thread::yield();
      else
        std::this_thread::sleep_for(kIdleSleep);
    } else {
      idle_streak = 0;
    }
  }
}

void RtEngine::inject(IngressItem item) {
  Packet& p = item.packet;
  const Time now = clock_.now();
  const FlowTable& table = sched_.flows();
  const bool registered = p.flow < table.size();
  if (registered ? !table.active(p.flow)
                 : sched_.requires_registered_flows()) {
    drop(std::move(p), now, obs::DropCause::kUnknownFlow);
    return;
  }
  if (opts_.buffer_limit != 0 &&
      sched_.backlog_packets() >= opts_.buffer_limit) {
    bool made_room = false;
    if (opts_.overload_policy == net::OverloadPolicy::kPushout) {
      const FlowId victim = longest_queue();
      if (victim != kInvalidFlow) {
        if (std::optional<Packet> evicted = sched_.pushout(victim, now)) {
          post_enqueue_drops_.fetch_add(1, std::memory_order_relaxed);
          if (capture_ != nullptr)
            capture_->push_back({CaptureOp::Kind::kPushout, *evicted, now});
          drop(std::move(*evicted), now, obs::DropCause::kPushout);
          made_room = true;
        }
      }
    }
    if (!made_room) {
      drop(std::move(p), now, obs::DropCause::kBufferLimit);
      return;
    }
  }
  // p.arrival was stamped on the producer thread: time spent in the ingress
  // ring counts as queueing, which keeps delay metrics honest.
  const FlowId flow = p.flow;
  const uint64_t seq = p.seq;
  const double bits = p.length_bits;
  const Time arrival = p.arrival;
  const std::size_t before = sched_.backlog_packets();
  if (capture_ != nullptr)
    capture_->push_back({CaptureOp::Kind::kEnqueue, p, now});
  sched_.enqueue(std::move(p), now);
  if (sched_.backlog_packets() == before) {
    // The discipline's own admit gate refused the packet (counted and traced
    // there); mirror it in the engine ledger like ScheduledServer does.
    cause_drops_[static_cast<std::size_t>(obs::DropCause::kUnknownFlow)]
        .fetch_add(1, std::memory_order_relaxed);
    return;
  }
  accepted_.fetch_add(1, std::memory_order_relaxed);
  if (trace_on_) [[unlikely]] {
    obs::TraceEvent e;
    e.type = obs::TraceEventType::kEnqueue;
    e.flow = flow;
    e.seq = seq;
    e.length_bits = bits;
    e.t = now;
    e.arrival = arrival;
    e.backlog = sched_.backlog_packets();
    tracer_->emit(e);
  }
}

void RtEngine::drop(Packet&& p, Time now, obs::DropCause cause) {
  cause_drops_[static_cast<std::size_t>(cause)].fetch_add(
      1, std::memory_order_relaxed);
  if (trace_on_) [[unlikely]]
    tracer_->emit(obs::make_event(obs::TraceEventType::kDrop, p, now,
                                  /*vtime=*/0.0, sched_.backlog_packets(),
                                  cause));
}

void RtEngine::complete(const Packet& p, Time now, Time deadline) {
  if (capture_ != nullptr)
    capture_->push_back({CaptureOp::Kind::kComplete, p, now});
  sched_.on_transmit_complete(p, now);
  transmitted_.fetch_add(1, std::memory_order_relaxed);
  // Single-writer counters: only the dispatcher writes, so a load+store pair
  // (not fetch_add) is race-free and keeps doubles exact.
  tx_bits_.store(tx_bits_.load(std::memory_order_relaxed) + p.length_bits,
                 std::memory_order_relaxed);
  if (p.flow < flow_bits_.size()) {
    std::atomic<double>& b = *flow_bits_[p.flow];
    b.store(b.load(std::memory_order_relaxed) + p.length_bits,
            std::memory_order_release);
  }
  const double lag = now - deadline;
  if (lag > max_service_lag_.load(std::memory_order_relaxed))
    max_service_lag_.store(lag, std::memory_order_relaxed);
  if (trace_on_) [[unlikely]]
    tracer_->emit(obs::make_event(obs::TraceEventType::kTxEnd, p, now,
                                  /*vtime=*/0.0, sched_.backlog_packets()));
}

FlowId RtEngine::longest_queue() const {
  FlowId best = kInvalidFlow;
  double best_bits = 0.0;
  const std::size_t n = sched_.flows().size();
  for (FlowId f = 0; f < n; ++f) {
    const double b = sched_.backlog_bits(f);
    if (b > best_bits) {  // strict: ties resolve to the lowest flow id
      best_bits = b;
      best = f;
    }
  }
  return best;
}

EngineStats RtEngine::stats() const {
  EngineStats s;
  s.ingress_pushed = ingress_.total_pushed();
  s.ingress_drops = ingress_.total_drops();
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.transmitted = transmitted_.load(std::memory_order_relaxed);
  s.tx_bits = tx_bits_.load(std::memory_order_relaxed);
  s.abandoned = abandoned_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < obs::kDropCauseCount; ++i)
    s.drops[i] = cause_drops_[i].load(std::memory_order_relaxed);
  const uint64_t done =
      s.transmitted + post_enqueue_drops_.load(std::memory_order_relaxed);
  s.backlog = s.accepted > done ? s.accepted - done : 0;
  s.max_service_lag = max_service_lag_.load(std::memory_order_relaxed);
  s.stalls = stalls_.load(std::memory_order_relaxed);
  return s;
}

void RtEngine::set_capture(std::vector<CaptureOp>* out) {
  if (running()) throw std::logic_error("RtEngine: set_capture while running");
  capture_ = out;
}

double RtEngine::flow_tx_bits(FlowId f) const {
  return f < flow_bits_.size()
             ? flow_bits_[f]->load(std::memory_order_acquire)
             : 0.0;
}

std::vector<double> RtEngine::service_snapshot() const {
  std::vector<double> out(flow_bits_.size());
  for (std::size_t f = 0; f < flow_bits_.size(); ++f)
    out[f] = flow_bits_[f]->load(std::memory_order_acquire);
  return out;
}

}  // namespace sfq::rt
