#include "rt/engine.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <optional>
#include <stdexcept>
#include <utility>

#include "obs/telemetry/exposition.h"
#include "rt/validate.h"
#include "stats/fairness.h"

namespace sfq::rt {

namespace tel = obs::telemetry;

namespace {

// Arrivals drained per dispatcher iteration before the transmission deadline
// is re-checked. Bounds how late a completion can fire under arrival floods
// without giving up batching on the ingress merge.
constexpr int kDrainBatch = 64;

// Transmissions completed+started per iteration when their deadlines have
// already passed. A fast link (finish times in nanoseconds) would otherwise
// be throttled to one packet per loop, far below what the discipline can
// sustain; a batch keeps service and ingress draining interleaved fairly.
constexpr int kServiceBatch = 64;

// Idle strategy: yield this many times (lets producers run, which matters on
// small machines where everything shares cores), then sleep in short naps so
// an idle engine does not burn a core.
constexpr int kIdleYields = 16;
constexpr auto kIdleSleep = std::chrono::microseconds(50);

// Token-bucket depth fallback for flows registered without a max packet
// size: one MTU-ish packet (1500 bytes) as the burst unit.
constexpr double kShedDefaultPacketBits = 12000.0;

// How far behind the wall clock the pacing chain may start the next packet
// while the link has been continuously busy. Dispatcher wakeups land a few
// microseconds past each deadline; pacing from `now` would discard that
// link time on every packet, a rate deficit proportional to packets/s that
// systematically starves high-rate shards. Back-dating within this window
// recovers routine scheduling jitter, while anything longer (a fault pause,
// a stall, a descheduled core) stays genuinely lost link time.
constexpr Time kPacingCatchup = 1e-3;

}  // namespace

const char* to_string(StallStage s) {
  switch (s) {
    case StallStage::kNone: return "none";
    case StallStage::kDrain: return "drain";
    case StallStage::kSchedule: return "schedule";
    case StallStage::kTransmit: return "transmit";
    case StallStage::kKilled: return "killed";
  }
  return "?";
}

// Migration control op: parked by adopt_flows/evict_flows, executed by the
// dispatcher between batches, completion signalled back through ctrl_cv_.
struct RtEngine::ControlOp {
  enum class Kind { kAdopt, kEvict };
  Kind kind = Kind::kAdopt;
  std::vector<Migration>* adopt = nullptr;     // kAdopt input (consumed)
  const std::vector<FlowId>* evict = nullptr;  // kEvict input
  std::vector<Migration>* out = nullptr;       // kEvict output
  bool done = false;
  bool ok = false;
};

RtEngine::RtEngine(Scheduler& sched, std::unique_ptr<net::RateProfile> profile,
                   EngineOptions opts)
    : sched_(sched),
      profile_(std::move(profile)),
      opts_(opts),
      ingress_(opts.producers, opts.ring_capacity) {
  if (!profile_) throw std::invalid_argument("RtEngine: null rate profile");
  if (auto err = validate(opts_)) throw std::invalid_argument(*err);
  clock_.set_plan(opts_.fault_plan);
}

std::unique_ptr<RtEngine> RtEngine::try_create(
    Scheduler& sched, std::unique_ptr<net::RateProfile>& profile,
    EngineOptions opts, std::string* error) {
  if (!profile) {
    if (error) *error = "RtEngine: null rate profile";
    return nullptr;
  }
  if (auto err = validate(opts)) {
    if (error) *error = *err;
    return nullptr;
  }
  return std::make_unique<RtEngine>(sched, std::move(profile), opts);
}

RtEngine::~RtEngine() {
  if (running()) stop(StopMode::kAbandon);
  // A watchdog-stopped engine (dispatcher exited on its own, stop() never
  // called) can still own a live stats thread/server.
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_stop_ = true;
  }
  stats_cv_.notify_all();
  if (stats_thread_.joinable()) stats_thread_.join();
  if (stats_server_) stats_server_->stop();
}

void RtEngine::set_tracer(obs::Tracer* tracer) {
  if (running()) throw std::logic_error("RtEngine: set_tracer while running");
  tracer_ = tracer;
  trace_on_ = tracer != nullptr && tracer->active();
  sched_.set_tracer(tracer);
}

void RtEngine::set_telemetry(tel::Telemetry* plane) {
  if (running())
    throw std::logic_error("RtEngine: set_telemetry while running");
  tele_ = plane;
  tele_on_ = plane != nullptr;
  prod_writers_.clear();
  profiler_.reset();
  h_dwell_ = h_qdelay_ = h_lag_ = nullptr;
  if (tele_ == nullptr) return;
  const std::size_t shard = opts_.telemetry_shard;
  disp_writer_ = tele_->writer(shard);
  h_dwell_ = &tele_->hist(tel::HistId::kIngressDwell, shard);
  h_qdelay_ = &tele_->hist(tel::HistId::kQueueDelay, shard);
  h_lag_ = &tele_->hist(tel::HistId::kServiceLag, shard);
  prod_writers_.reserve(ingress_.producers());
  for (std::size_t i = 0; i < ingress_.producers(); ++i)
    prod_writers_.push_back(tele_->writer(shard));
  profiler_ = std::make_unique<tel::StageProfiler>(*tele_, shard);
  profiler_->enable(opts_.profiling);
}

bool RtEngine::offer(std::size_t i, Packet p) {
  if (!accepting_.load(std::memory_order_acquire)) {
    ingress_.count_drop(i);
    if (tele_on_) prod_writers_[i].inc(tel::CounterId::kIngressDrops);
    return false;
  }
  const bool pushed = ingress_.push(i, std::move(p), clock_.now());
  if (tele_on_)
    prod_writers_[i].inc(pushed ? tel::CounterId::kIngressPushed
                                : tel::CounterId::kIngressDrops);
  return pushed;
}

bool RtEngine::offer_wait(std::size_t i, Packet p) {
  for (;;) {
    if (!accepting_.load(std::memory_order_acquire)) {
      ingress_.count_drop(i);
      if (tele_on_) prod_writers_[i].inc(tel::CounterId::kIngressDrops);
      return false;
    }
    // Packet is trivially copyable; retry with a fresh timestamp each spin
    // so the ingress stamp reflects when the push actually succeeded.
    if (ingress_.push(i, p, clock_.now(), /*count_full=*/false)) {
      if (tele_on_) prod_writers_[i].inc(tel::CounterId::kIngressPushed);
      return true;
    }
    std::this_thread::yield();
  }
}

OfferStatus RtEngine::try_offer(std::size_t i, const Packet& p) {
  if (!accepting_.load(std::memory_order_acquire)) return OfferStatus::kClosed;
  // count_full=false: backpressure is the caller's to resolve — the attempt
  // only lands in the ledger once it ends in a push or an abandon.
  if (ingress_.push(i, p, clock_.now(), /*count_full=*/false)) {
    if (tele_on_) prod_writers_[i].inc(tel::CounterId::kIngressPushed);
    return OfferStatus::kAccepted;
  }
  return OfferStatus::kBackpressure;
}

void RtEngine::note_offer_retry(std::size_t i) {
  if (tele_on_) prod_writers_[i].inc(tel::CounterId::kOfferRetries);
}

void RtEngine::note_offer_abandoned(std::size_t i) {
  ingress_.count_drop(i);
  if (tele_on_) {
    prod_writers_[i].inc(tel::CounterId::kIngressDrops);
    prod_writers_[i].inc(tel::CounterId::kOfferAbandoned);
  }
}

void RtEngine::start() {
  if (started_) throw std::logic_error("RtEngine: start() called twice");
  started_ = true;
  const std::size_t n = sched_.flows().size();
  flow_bits_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    flow_bits_.push_back(std::make_unique<std::atomic<double>>(0.0));
  if (tele_on_) {
    // The flow table is immutable while the engine runs, so the stats thread
    // works off a private copy of the fairness parameters.
    fair_weights_.reserve(n);
    fair_max_bits_.reserve(n);
    for (FlowId f = 0; f < n; ++f) {
      fair_weights_.push_back(sched_.flows().weight(f));
      fair_max_bits_.push_back(sched_.flows().spec(f).max_packet_bits);
    }
  }
  // Latch the overload machine: active only when admission control is on AND
  // occupancy is measurable (finite buffer). Shares and bucket depths are
  // derived from the immutable flow table; the refill rate seeds from the
  // profile's nominal rate and then tracks the measured service rate.
  ov_on_ = opts_.admission_control && opts_.buffer_limit > 0 && n > 0;
  if (ov_on_) {
    ov_share_.resize(n);
    ov_cap_.resize(n);
    ov_tokens_.resize(n);
    ov_refill_.assign(n, 0.0);
    for (FlowId f = 0; f < n; ++f) {
      const double lmax = sched_.flows().spec(f).max_packet_bits;
      ov_cap_[f] =
          opts_.shed_burst * (lmax > 0.0 ? lmax : kShedDefaultPacketBits);
      ov_tokens_[f] = ov_cap_[f];
    }
    // Shares cover the *active* flow set: a sharded deployment registers
    // every flow on every shard but activates only the resident ones, and
    // migration moves flows between shards mid-run (recomputed after each
    // adopt/evict on the dispatcher).
    recompute_shed_shares();
    const Time ft = profile_->finish_time(0.0, 1e6);
    ov_rate_ewma_ = ft > 0.0 ? 1e6 / ft : 0.0;
  }
  accepting_.store(true, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  dispatcher_ = std::thread([this] {
    run();
    // Whatever ended the run (stop(), the watchdog or a kill fault), fail
    // any parked migration control ops, then leave the gauges describing
    // the final state for post-run scrapes and bridges.
    dispatcher_exit_cleanup();
    if (tele_on_) publish_final_gauges();
  });
  if (tele_on_ && (opts_.stats_interval > 0.0 || opts_.stats_port >= 0)) {
    if (opts_.stats_port >= 0) {
      stats_server_ = std::make_unique<tel::StatsServer>();
      stats_server_->start(static_cast<uint16_t>(opts_.stats_port));
    }
    stats_stop_ = false;
    stats_thread_ = std::thread([this] { stats_loop(); });
  }
}

void RtEngine::stop(StopMode mode) {
  std::lock_guard<std::mutex> lock(stop_mu_);
  if (!running_.load(std::memory_order_acquire)) return;
  accepting_.store(false, std::memory_order_release);
  stop_mode_.store(mode, std::memory_order_relaxed);
  stop_requested_.store(true, std::memory_order_release);
  if (dispatcher_.joinable()) dispatcher_.join();
  // Stop the stats thread after the dispatcher so its final pass sees the
  // settled counters. The TCP endpoint stays up until destruction so late
  // scrapes still read the final snapshot.
  {
    std::lock_guard<std::mutex> slock(stats_mu_);
    stats_stop_ = true;
  }
  stats_cv_.notify_all();
  if (stats_thread_.joinable()) stats_thread_.join();
  running_.store(false, std::memory_order_release);
}

void RtEngine::run() {
  // The in-flight transmission lives in timers_ as a typed kServiceComplete
  // event keyed by its pacing deadline: busy == !timers_.empty(), and the
  // deadline is timers_.next_time().
  int idle_streak = 0;
  // Watchdog bookkeeping: the last instant a transmission started or
  // completed, on the RAW clock axis — fault-injected jumps and skews must
  // not be able to blind the watchdog. Draining rings is deliberately not
  // progress — a scheduler that accepts packets but never serves them is
  // exactly the wedge the watchdog exists to catch.
  last_progress_raw_ = clock_.raw_now();
  if (ov_on_) ov_window_start_ = clock_.now();

  for (;;) {
    const bool stopping = stop_requested_.load(std::memory_order_acquire);
    const bool abandon =
        stopping && stop_mode_.load(std::memory_order_relaxed) ==
                        StopMode::kAbandon;

    // 0. Scripted dispatcher pauses (fault plan): the dispatcher stops dead
    //    for the scripted duration, modelling a GC-like stop-the-world.
    //    Triggers live on the raw axis so clock jumps cannot reorder them.
    //    Only stop(kAbandon) cuts a pause short — a freeze is a freeze.
    {
      const auto& pauses = clock_.plan().pauses;
      if (next_pause_ < pauses.size() &&
          clock_.raw_now() >= pauses[next_pause_].at) {
        const Time until = clock_.raw_now() + pauses[next_pause_].duration;
        ++next_pause_;
        while (clock_.raw_now() < until) {
          if (stop_requested_.load(std::memory_order_acquire) &&
              stop_mode_.load(std::memory_order_relaxed) == StopMode::kAbandon)
            break;
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      }
    }

    // 0a. Scripted shard-kill fault: the dispatcher dies permanently at the
    //     scripted raw time — the adversary the shard supervisor trains
    //     against. The ledger closes exactly like an exhausted restart
    //     budget: ring leftovers become `abandoned`, the scheduler backlog
    //     stays visible (and harvestable) in stats().backlog.
    {
      const auto& kills = clock_.plan().kills;
      if (next_kill_ < kills.size() &&
          clock_.raw_now() >= kills[next_kill_].at) {
        ++next_kill_;
        permanent_stop(StallStage::kKilled);
        return;
      }
    }

    // 0b. Stall watchdog, at the top of the loop so a wedge (or the pause we
    //     just slept through) is observed before drain/serve can make
    //     progress. On detection the dispatcher diagnoses the stage and
    //     restarts itself within the budget (docs/ROBUSTNESS.md); only an
    //     exhausted budget exits permanently.
    if (opts_.stall_timeout > 0.0) {
      const Time raw = clock_.raw_now();
      if (timers_.empty() && sched_.empty()) {
        last_progress_raw_ = raw;  // idle: no obligations, nothing to watch
      } else if (raw - last_progress_raw_ > opts_.stall_timeout) {
        if (!watchdog_stall(clock_.now(), raw)) return;
      }
    }

    // 0c. Overload state machine: one occupancy reading per loop drives the
    //     Normal/Shedding/Critical transitions (hysteresis in overload_tick).
    if (ov_on_) overload_tick(clock_.now());

    // 0d. Migration control ops (shard failover): adopt/evict requests from
    //     the supervisor execute here so only this thread ever touches the
    //     scheduler. One relaxed-ish load on the common path.
    if (ctrl_pending_.load(std::memory_order_acquire)) serve_control_ops();

    // 1. Drain a bounded batch of arrivals, earliest ingress stamp first.
    //    An abandoning engine leaves ring items where they are (step 3
    //    counts them) instead of feeding a backlog nobody will serve.
    int drained = 0;
    if (!abandon) {
      SFQ_PROF_SCOPE(profiler_.get(), tel::HistId::kStageDrain);
      while (drained < kDrainBatch) {
        std::optional<IngressItem> item = ingress_.pop_earliest();
        if (!item) break;
        inject(std::move(*item));
        ++drained;
      }
    }

    // 2. Serve: complete due transmissions and start the next one, up to a
    //    batch — a fast link turns over many packets per loop iteration.
    //    Work-conserving on the wall clock: the link is busy from dequeue
    //    until the profile's finish time.
    int served = 0;
    uint64_t served_bits = 0;
    bool progressed = false;
    while (served < kServiceBatch) {
      if (!timers_.empty()) {
        const Time now = clock_.now();
        if (now < timers_.next_time()) break;  // deadline in the future
        sim::EventQueue::Popped done;
        timers_.pop(done);
        {
          SFQ_PROF_SCOPE(profiler_.get(), tel::HistId::kStageTransmit);
          complete(done.event.packet, now, /*deadline=*/done.when);
        }
        served_bits += static_cast<uint64_t>(done.event.packet.length_bits);
        progressed = true;
        ++served;
      }
      if (abandon) break;
      const Time now = clock_.now();
      std::optional<Packet> next;
      {
        SFQ_PROF_SCOPE(profiler_.get(), tel::HistId::kStageSchedule);
        next = sched_.dequeue(now);
      }
      if (!next) {
        // Nothing queued and (after the pop above) nothing in flight: the
        // link is genuinely idle, so the pacing chain's continuity ends
        // here — the next packet paces from its own `now`.
        if (timers_.empty())
          link_free_ = std::numeric_limits<double>::infinity();
        break;
      }
      if (capture_ != nullptr)
        capture_->push_back({CaptureOp::Kind::kDequeue, *next, now});
      if (trace_on_) [[unlikely]]
        tracer_->emit(obs::make_event(obs::TraceEventType::kTxStart, *next,
                                      now, /*vtime=*/0.0,
                                      sched_.backlog_packets()));
      // Pace from the previous finish, not from `now`: clamp keeps the
      // chain within kPacingCatchup of the wall clock (and maps the
      // idle/+inf sentinel to `now`), so per-wakeup latency does not
      // compound into a rate deficit.
      const Time start = std::clamp(link_free_, now - kPacingCatchup, now);
      const Time deadline = profile_->finish_time(start, next->length_bits);
      link_free_ = deadline;
      timers_.schedule_packet(deadline, sim::EventOp::kServiceComplete,
                              /*target=*/nullptr, *next);
      progressed = true;
    }
    // Flush transmit counters once per serve batch rather than per packet:
    // histograms need per-packet samples but the counters only need totals.
    if (tele_on_ && served > 0) {
      disp_writer_.inc(tel::CounterId::kTransmitted,
                       static_cast<uint64_t>(served));
      disp_writer_.inc(tel::CounterId::kTxBits, served_bits);
    }
    if (progressed) {
      last_progress_raw_ = clock_.raw_now();
      consecutive_stalls_ = 0;
      if (recovery_pending_) {
        // A stall episode healed: the restart actually restored service.
        recovery_pending_ = false;
        recoveries_.fetch_add(1, std::memory_order_relaxed);
        if (tele_on_) disp_writer_.inc(tel::CounterId::kRecoveries);
      }
    }
    // Service-rate EWMA feeding the shedding buckets: fold each ~10 ms
    // window of served bits into the estimate.
    if (ov_on_ && served_bits > 0) {
      ov_window_bits_ += static_cast<double>(served_bits);
      const Time now = clock_.now();
      const Time dt = now - ov_window_start_;
      if (dt >= 0.01) {
        const double sample = ov_window_bits_ / dt;
        ov_rate_ewma_ = ov_rate_ewma_ <= 0.0
                            ? sample
                            : ov_rate_ewma_ + 0.2 * (sample - ov_rate_ewma_);
        ov_window_bits_ = 0.0;
        ov_window_start_ = now;
      }
    }

    // 4. Exit checks.
    if (stopping && timers_.empty()) {
      if (abandon) {
        uint64_t left = 0;
        while (ingress_.pop_earliest()) ++left;
        abandoned_.fetch_add(left, std::memory_order_relaxed);
        if (tele_on_) disp_writer_.inc(tel::CounterId::kAbandoned, left);
        return;
      }
      if (drained == 0 && ingress_.empty() && sched_.empty()) return;
    }

    // 5. Wait strategy.
    if (!timers_.empty()) {
      if (drained > 0) {
        idle_streak = 0;
        continue;  // more arrivals may already be waiting
      }
      const Time wait = timers_.next_time() - clock_.now();
      if (wait <= 0.0) continue;
      if (wait > opts_.spin_threshold) {
        // Sleep most of the wait, capped so rings are still drained at a
        // bounded interval while a long transmission is in flight.
        const double nap = std::min(wait - opts_.spin_threshold, 1e-3);
        std::this_thread::sleep_for(std::chrono::duration<double>(nap));
      } else {
        std::this_thread::yield();
      }
    } else if (drained == 0) {
      if (++idle_streak <= kIdleYields)
        std::this_thread::yield();
      else
        std::this_thread::sleep_for(kIdleSleep);
    } else {
      idle_streak = 0;
    }
  }
}

bool RtEngine::watchdog_stall(Time now, Time raw_now) {
  stalls_.fetch_add(1, std::memory_order_relaxed);
  if (tele_on_) disp_writer_.inc(tel::CounterId::kStalls);
  // Diagnose: which stage owns the wedge. A pending transmission whose
  // deadline never arrives is a transmit wedge; a backlogged scheduler that
  // yields nothing is a schedule wedge; otherwise the ingress/drain side
  // holds obligations the loop cannot see. (The stage profiles from
  // SFQ_TELEMETRY_PROFILING builds give the fine-grained view; this
  // structural diagnosis is always available.)
  StallStage stage = StallStage::kDrain;
  if (!timers_.empty())
    stage = StallStage::kTransmit;
  else if (!sched_.empty())
    stage = StallStage::kSchedule;
  last_stall_stage_.store(static_cast<int8_t>(stage),
                          std::memory_order_relaxed);

  if (consecutive_stalls_ < opts_.restart_budget) {
    ++consecutive_stalls_;
    recovery_pending_ = true;
    // Re-arm. A transmit wedge means the pacing deadline failed to arrive
    // for a whole stall window, so a deadline still in the future was paced
    // against a clock reading that faults have since invalidated (a backward
    // jump freezes the engine axis, leaving `now` parked just short of a
    // near deadline indefinitely): re-pace it to complete now. The packet is
    // still transmitted and counted — nothing leaves the ledger during a
    // restart. A deadline already due needs no help; the serve pass below
    // completes it.
    if (stage == StallStage::kTransmit && timers_.next_time() > now) {
      sim::EventQueue::Popped done;
      timers_.pop(done);
      timers_.schedule_packet(now, sim::EventOp::kServiceComplete,
                              /*target=*/nullptr, done.event.packet);
    }
    // A stall window is not scheduling jitter: break the pacing chain so
    // the restart paces from its own `now` instead of back-dating into the
    // wedge it just recovered from.
    link_free_ = std::numeric_limits<double>::infinity();
    last_progress_raw_ = raw_now;
    return true;
  }

  // Restart budget exhausted: permanent stop (the pre-recovery behavior).
  // Scheduler backlog stays visible in stats().backlog, ring leftovers
  // become `abandoned`, and both conservation identities still balance.
  permanent_stop(stage);
  return false;
}

void RtEngine::permanent_stop(StallStage stage) {
  last_stall_stage_.store(static_cast<int8_t>(stage),
                          std::memory_order_relaxed);
  accepting_.store(false, std::memory_order_release);
  uint64_t left = 0;
  while (ingress_.pop_earliest()) ++left;
  abandoned_.fetch_add(left, std::memory_order_relaxed);
  if (tele_on_) disp_writer_.inc(tel::CounterId::kAbandoned, left);
  stalled_.store(true, std::memory_order_release);
}

void RtEngine::overload_tick(Time now) {
  const double occ = static_cast<double>(sched_.backlog_packets()) /
                     static_cast<double>(opts_.buffer_limit);
  switch (ov_state_.load(std::memory_order_relaxed)) {
    case 0:
      if (occ >= opts_.shed_enter) set_overload_state(1, now);
      break;
    case 1:
      if (occ >= opts_.shed_critical)
        set_overload_state(2, now);
      else if (occ <= opts_.shed_exit)
        set_overload_state(0, now);
      break;
    case 2:
      // Hysteresis: Critical relaxes to Shedding below the *enter* mark, and
      // only Shedding can return to Normal (at the exit mark) — residual
      // capacity re-opens gradually, not with a thundering herd.
      if (occ < opts_.shed_enter) set_overload_state(1, now);
      break;
  }
}

void RtEngine::set_overload_state(int state, Time now) {
  const int prev = ov_state_.exchange(state, std::memory_order_relaxed);
  if (prev == state) return;
  if (prev == 0) {
    // Entering Shedding from Normal: full buckets with fresh refill clocks,
    // so the burst allowance dates from the transition instant.
    for (std::size_t f = 0; f < ov_tokens_.size(); ++f) {
      ov_tokens_[f] = ov_cap_[f];
      ov_refill_[f] = now;
    }
  }
  if (tele_on_)
    tele_->set_gauge(tel::GaugeId::kOverloadState, static_cast<double>(state),
                     opts_.telemetry_shard);
}

bool RtEngine::shed_admits(const Packet& p, Time now) {
  // Flows outside the latched table (disciplines that accept unregistered
  // flows) have no weight share; the gate waves them through.
  if (p.flow >= ov_tokens_.size()) return true;
  const double factor = ov_state_.load(std::memory_order_relaxed) == 2
                            ? opts_.shed_critical_factor
                            : 1.0;
  // Lazy refill: flow f earns its weighted-fair share of the measured
  // service rate. Admission only requires a non-negative balance, so one
  // packet of overdraft is allowed — matching SFQ's own one-packet
  // granularity — and the debit keeps drops proportional to the deficit.
  double& tok = ov_tokens_[p.flow];
  tok = std::min(ov_cap_[p.flow],
                 tok + (now - ov_refill_[p.flow]) * ov_share_[p.flow] *
                           ov_rate_ewma_ * factor);
  ov_refill_[p.flow] = now;
  if (tok < 0.0) return false;
  tok -= p.length_bits;
  return true;
}

void RtEngine::inject(IngressItem item) {
  Packet& p = item.packet;
  const Time now = clock_.now();
  if (tele_on_ && (++dwell_tick_ & ((1u << kTeleSampleShift) - 1)) == 0)
    h_dwell_->record_seconds_single_writer(now - item.t_ingress);
  const FlowTable& table = sched_.flows();
  const bool registered = p.flow < table.size();
  if (registered ? !table.active(p.flow)
                 : sched_.requires_registered_flows()) {
    drop(std::move(p), now, obs::DropCause::kUnknownFlow);
    return;
  }
  // Overload admission gate (docs/ROBUSTNESS.md): while shedding, arrivals
  // pass per-flow token buckets refilled weighted-fair from the measured
  // service rate. Sits before capture, so a shed packet never reaches the
  // discipline and chaos replay stays bit-exact.
  if (ov_on_ && ov_state_.load(std::memory_order_relaxed) != 0 &&
      !shed_admits(p, now)) {
    drop(std::move(p), now, obs::DropCause::kShed);
    return;
  }
  if (opts_.buffer_limit != 0 &&
      sched_.backlog_packets() >= opts_.buffer_limit) {
    bool made_room = false;
    if (opts_.overload_policy == net::OverloadPolicy::kPushout) {
      const FlowId victim = longest_queue();
      if (victim != kInvalidFlow) {
        if (std::optional<Packet> evicted = sched_.pushout(victim, now)) {
          post_enqueue_drops_.fetch_add(1, std::memory_order_relaxed);
          if (capture_ != nullptr)
            capture_->push_back({CaptureOp::Kind::kPushout, *evicted, now});
          drop(std::move(*evicted), now, obs::DropCause::kPushout);
          made_room = true;
        }
      }
    }
    if (!made_room) {
      drop(std::move(p), now, obs::DropCause::kBufferLimit);
      return;
    }
  }
  // p.arrival was stamped on the producer thread: time spent in the ingress
  // ring counts as queueing, which keeps delay metrics honest.
  const FlowId flow = p.flow;
  const uint64_t seq = p.seq;
  const double bits = p.length_bits;
  const Time arrival = p.arrival;
  const std::size_t before = sched_.backlog_packets();
  if (capture_ != nullptr)
    capture_->push_back({CaptureOp::Kind::kEnqueue, p, now});
  sched_.enqueue(std::move(p), now);
  if (sched_.backlog_packets() == before) {
    // The discipline's own admit gate refused the packet (counted and traced
    // there); mirror it in the engine ledger like ScheduledServer does.
    cause_drops_[static_cast<std::size_t>(obs::DropCause::kUnknownFlow)]
        .fetch_add(1, std::memory_order_relaxed);
    if (tele_on_) disp_writer_.drop(obs::DropCause::kUnknownFlow);
    return;
  }
  accepted_.fetch_add(1, std::memory_order_relaxed);
  if (tele_on_) disp_writer_.inc(tel::CounterId::kAccepted);
  if (trace_on_) [[unlikely]] {
    obs::TraceEvent e;
    e.type = obs::TraceEventType::kEnqueue;
    e.flow = flow;
    e.seq = seq;
    e.length_bits = bits;
    e.t = now;
    e.arrival = arrival;
    e.backlog = sched_.backlog_packets();
    tracer_->emit(e);
  }
}

void RtEngine::drop(Packet&& p, Time now, obs::DropCause cause) {
  cause_drops_[static_cast<std::size_t>(cause)].fetch_add(
      1, std::memory_order_relaxed);
  if (tele_on_) disp_writer_.drop(cause);
  if (trace_on_) [[unlikely]]
    tracer_->emit(obs::make_event(obs::TraceEventType::kDrop, p, now,
                                  /*vtime=*/0.0, sched_.backlog_packets(),
                                  cause));
}

void RtEngine::complete(const Packet& p, Time now, Time deadline) {
  if (capture_ != nullptr)
    capture_->push_back({CaptureOp::Kind::kComplete, p, now});
  sched_.on_transmit_complete(p, now);
  transmitted_.fetch_add(1, std::memory_order_relaxed);
  // Single-writer counters: only the dispatcher writes, so a load+store pair
  // (not fetch_add) is race-free and keeps doubles exact.
  tx_bits_.store(tx_bits_.load(std::memory_order_relaxed) + p.length_bits,
                 std::memory_order_relaxed);
  if (p.flow < flow_bits_.size()) {
    std::atomic<double>& b = *flow_bits_[p.flow];
    b.store(b.load(std::memory_order_relaxed) + p.length_bits,
            std::memory_order_release);
  }
  const double lag = now - deadline;
  if (lag > max_service_lag_.load(std::memory_order_relaxed))
    max_service_lag_.store(lag, std::memory_order_relaxed);
  // kTransmitted / kTxBits are flushed per serve batch in run(). The
  // enqueue->transmit histogram records every packet; service lag is
  // sampled (see kTeleSampleShift).
  if (tele_on_) {
    h_qdelay_->record_seconds_single_writer(now - p.arrival);
    if ((++lag_tick_ & ((1u << kTeleSampleShift) - 1)) == 0)
      h_lag_->record_seconds_single_writer(lag);
  }
  if (trace_on_) [[unlikely]]
    tracer_->emit(obs::make_event(obs::TraceEventType::kTxEnd, p, now,
                                  /*vtime=*/0.0, sched_.backlog_packets()));
}

FlowId RtEngine::longest_queue() const {
  FlowId best = kInvalidFlow;
  double best_bits = 0.0;
  const std::size_t n = sched_.flows().size();
  for (FlowId f = 0; f < n; ++f) {
    const double b = sched_.backlog_bits(f);
    if (b > best_bits) {  // strict: ties resolve to the lowest flow id
      best_bits = b;
      best = f;
    }
  }
  return best;
}

EngineStats RtEngine::stats() const {
  EngineStats s;
  s.ingress_pushed = ingress_.total_pushed();
  s.ingress_drops = ingress_.total_drops();
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.transmitted = transmitted_.load(std::memory_order_relaxed);
  s.tx_bits = tx_bits_.load(std::memory_order_relaxed);
  s.abandoned = abandoned_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < obs::kDropCauseCount; ++i)
    s.drops[i] = cause_drops_[i].load(std::memory_order_relaxed);
  s.migrated_in = migrated_in_.load(std::memory_order_relaxed);
  s.migrated_out = migrated_out_.load(std::memory_order_relaxed);
  const uint64_t done = s.transmitted +
                        post_enqueue_drops_.load(std::memory_order_relaxed) +
                        s.migrated_out;
  s.backlog = s.accepted > done ? s.accepted - done : 0;
  s.max_service_lag = max_service_lag_.load(std::memory_order_relaxed);
  s.stalls = stalls_.load(std::memory_order_relaxed);
  s.recoveries = recoveries_.load(std::memory_order_relaxed);
  s.last_stall_stage =
      static_cast<StallStage>(last_stall_stage_.load(std::memory_order_relaxed));
  s.overload_state = ov_state_.load(std::memory_order_relaxed);
  return s;
}

void RtEngine::set_capture(std::vector<CaptureOp>* out) {
  if (running()) throw std::logic_error("RtEngine: set_capture while running");
  capture_ = out;
}

bool RtEngine::adopt_flows(std::vector<Migration>& flows) {
  ControlOp op;
  op.kind = ControlOp::Kind::kAdopt;
  op.adopt = &flows;
  return submit_control(op);
}

bool RtEngine::evict_flows(const std::vector<FlowId>& flows,
                           std::vector<Migration>& out) {
  ControlOp op;
  op.kind = ControlOp::Kind::kEvict;
  op.evict = &flows;
  op.out = &out;
  return submit_control(op);
}

std::vector<RtEngine::Migration> RtEngine::harvest_flows(
    const std::vector<FlowId>& flows) {
  if (started_ && !dispatcher_done_.load(std::memory_order_acquire))
    throw std::logic_error("RtEngine: harvest_flows on a live dispatcher");
  std::vector<Migration> out;
  exec_evict(flows, out);
  return out;
}

bool RtEngine::submit_control(ControlOp& op) {
  {
    std::lock_guard<std::mutex> lock(ctrl_mu_);
    if (dispatcher_done_.load(std::memory_order_acquire) ||
        !running_.load(std::memory_order_acquire))
      return false;
    ctrl_queue_.push_back(&op);
    ctrl_pending_.store(true, std::memory_order_release);
  }
  std::unique_lock<std::mutex> lock(ctrl_mu_);
  ctrl_cv_.wait(lock, [&] {
    return op.done || dispatcher_done_.load(std::memory_order_acquire);
  });
  return op.done && op.ok;
}

void RtEngine::serve_control_ops() {
  for (;;) {
    ControlOp* op = nullptr;
    {
      std::lock_guard<std::mutex> lock(ctrl_mu_);
      if (ctrl_queue_.empty()) {
        ctrl_pending_.store(false, std::memory_order_release);
        return;
      }
      op = ctrl_queue_.front();
      ctrl_queue_.erase(ctrl_queue_.begin());
    }
    if (op->kind == ControlOp::Kind::kAdopt)
      exec_adopt(*op->adopt);
    else
      exec_evict(*op->evict, *op->out);
    // The resident flow set changed; the shedding shares must follow it or
    // migrated flows would be admitted at a dead shard's share (zero).
    recompute_shed_shares();
    {
      std::lock_guard<std::mutex> lock(ctrl_mu_);
      op->ok = true;
      op->done = true;
    }
    ctrl_cv_.notify_all();
  }
}

void RtEngine::dispatcher_exit_cleanup() {
  {
    std::lock_guard<std::mutex> lock(ctrl_mu_);
    dispatcher_done_.store(true, std::memory_order_release);
    ctrl_queue_.clear();  // waiters see dispatcher_done_ and report failure
    ctrl_pending_.store(false, std::memory_order_release);
  }
  ctrl_cv_.notify_all();
}

void RtEngine::exec_adopt(std::vector<Migration>& flows) {
  const Time now = clock_.now();
  for (Migration& m : flows) {
    const FlowTable& table = sched_.flows();
    if (m.flow < table.size() && !table.active(m.flow)) {
      // Rejoin rule (paper §3.1): the flow's start tag re-anchors to
      // max(v(t) here, the finish tag it last recorded on THIS scheduler) —
      // virtual times of different shards are incomparable, so the source
      // shard's tags are deliberately left behind.
      if (capture_ != nullptr) {
        Packet marker;
        marker.flow = m.flow;
        capture_->push_back({CaptureOp::Kind::kRejoin, marker, now});
      }
      sched_.rejoin_flow(m.flow, now);
    }
    for (Packet& p : m.backlog) {
      migrated_in_.fetch_add(1, std::memory_order_relaxed);
      // Arrival path minus the shed gate: traffic the source shard already
      // admitted must not be shed a second time. Buffer pressure still
      // resolves through the configured overload policy so the destination
      // ledger stays exact under taildrop AND pushout.
      if (opts_.buffer_limit != 0 &&
          sched_.backlog_packets() >= opts_.buffer_limit) {
        bool made_room = false;
        if (opts_.overload_policy == net::OverloadPolicy::kPushout) {
          const FlowId victim = longest_queue();
          if (victim != kInvalidFlow) {
            if (std::optional<Packet> evicted = sched_.pushout(victim, now)) {
              post_enqueue_drops_.fetch_add(1, std::memory_order_relaxed);
              if (capture_ != nullptr)
                capture_->push_back(
                    {CaptureOp::Kind::kPushout, *evicted, now});
              drop(std::move(*evicted), now, obs::DropCause::kPushout);
              made_room = true;
            }
          }
        }
        if (!made_room) {
          drop(std::move(p), now, obs::DropCause::kBufferLimit);
          continue;
        }
      }
      const std::size_t before = sched_.backlog_packets();
      if (capture_ != nullptr)
        capture_->push_back({CaptureOp::Kind::kEnqueue, p, now});
      sched_.enqueue(std::move(p), now);
      if (sched_.backlog_packets() == before) {
        cause_drops_[static_cast<std::size_t>(obs::DropCause::kUnknownFlow)]
            .fetch_add(1, std::memory_order_relaxed);
        if (tele_on_) disp_writer_.drop(obs::DropCause::kUnknownFlow);
        continue;
      }
      accepted_.fetch_add(1, std::memory_order_relaxed);
      if (tele_on_) disp_writer_.inc(tel::CounterId::kAccepted);
    }
    m.backlog.clear();
  }
}

void RtEngine::exec_evict(const std::vector<FlowId>& flows,
                          std::vector<Migration>& out) {
  const Time now = clock_.now();
  for (FlowId f : flows) {
    Migration m;
    m.flow = f;
    if (f < sched_.flows().size() && sched_.flows().active(f)) {
      if (capture_ != nullptr) {
        Packet marker;
        marker.flow = f;
        capture_->push_back({CaptureOp::Kind::kRemove, marker, now});
      }
      m.backlog = sched_.remove_flow(f, now);
      migrated_out_.fetch_add(m.backlog.size(), std::memory_order_relaxed);
    }
    out.push_back(std::move(m));
  }
}

void RtEngine::recompute_shed_shares() {
  if (!ov_on_) return;
  const FlowTable& table = sched_.flows();
  double total_w = 0.0;
  const std::size_t n = std::min<std::size_t>(table.size(), ov_share_.size());
  for (FlowId f = 0; f < n; ++f)
    if (table.active(f)) total_w += table.weight(f);
  for (FlowId f = 0; f < n; ++f)
    ov_share_[f] = (total_w > 0.0 && table.active(f))
                       ? table.weight(f) / total_w
                       : 0.0;
}

double RtEngine::flow_tx_bits(FlowId f) const {
  return f < flow_bits_.size()
             ? flow_bits_[f]->load(std::memory_order_acquire)
             : 0.0;
}

std::vector<double> RtEngine::service_snapshot() const {
  std::vector<double> out(flow_bits_.size());
  for (std::size_t f = 0; f < flow_bits_.size(); ++f)
    out[f] = flow_bits_[f]->load(std::memory_order_acquire);
  return out;
}

void RtEngine::stats_loop() {
  // Default cadence when only the TCP endpoint was requested: scrapes want
  // reasonably fresh data even without an explicit interval.
  const double interval =
      opts_.stats_interval > 0.0 ? opts_.stats_interval : 0.5;
  std::vector<double> prev_service = service_snapshot();
  std::unique_lock<std::mutex> lock(stats_mu_);
  while (!stats_stop_) {
    stats_cv_.wait_for(lock, std::chrono::duration<double>(interval),
                       [this] { return stats_stop_; });
    lock.unlock();
    publish_stats(prev_service);
    lock.lock();
  }
  lock.unlock();
  // One final pass after the dispatcher settled (stop() joins it before
  // signalling us) so the published snapshot matches the final ledger.
  publish_stats(prev_service);
}

void RtEngine::publish_stats(std::vector<double>& prev_service) {
  const std::size_t shard = opts_.telemetry_shard;
  const EngineStats es = stats();
  tele_->set_gauge(tel::GaugeId::kBacklogPackets,
                   static_cast<double>(es.backlog), shard);
  tele_->set_gauge(tel::GaugeId::kServiceLagMax, es.max_service_lag, shard);

  // Theorem-1 fairness monitor over the last window: for every pair of flows
  // that both received service, compare normalized service W_f/r_f against
  // the paper's bound l_f/r_f + l_m/r_m (stats::sfq_fairness_bound). Flows
  // idle in the window are skipped — the theorem only covers intervals where
  // both flows are backlogged, and "both received service" is the cheapest
  // online proxy for that.
  const std::vector<double> cur = service_snapshot();
  double gap = 0.0;
  double bound = 0.0;
  for (std::size_t f = 0; f < cur.size(); ++f) {
    const double df = cur[f] - prev_service[f];
    if (df <= 0.0) continue;
    for (std::size_t m = f + 1; m < cur.size(); ++m) {
      const double dm = cur[m] - prev_service[m];
      if (dm <= 0.0) continue;
      const double g =
          std::abs(df / fair_weights_[f] - dm / fair_weights_[m]);
      const double b = stats::sfq_fairness_bound(
          fair_max_bits_[f], fair_weights_[f], fair_max_bits_[m],
          fair_weights_[m]);
      if (g > gap) gap = g;
      if (b > bound) bound = b;
    }
  }
  prev_service = cur;
  tele_->set_gauge(tel::GaugeId::kFairnessGap, gap, shard);
  if (gap > tele_->gauge(tel::GaugeId::kFairnessGapMax, shard))
    tele_->set_gauge(tel::GaugeId::kFairnessGapMax, gap, shard);
  tele_->set_gauge(tel::GaugeId::kFairnessBound, bound, shard);

  const tel::TelemetrySnapshot snap = tele_->snapshot();
  if (stats_server_)
    stats_server_->publish(tel::to_prometheus(snap), tel::to_json(snap));
  if (opts_.stats_console) {
    const tel::HistogramSnapshot qd = snap.hist_total(tel::HistId::kQueueDelay);
    uint64_t drops = snap.drops_total(shard);
    std::fprintf(stderr,
                 "[sfq stats] tx=%llu drops=%llu backlog=%llu "
                 "delay_p50=%.3fms p99=%.3fms max=%.3fms "
                 "fair_gap=%.3gms bound=%.3gms lag_max=%.3fms\n",
                 static_cast<unsigned long long>(es.transmitted),
                 static_cast<unsigned long long>(drops),
                 static_cast<unsigned long long>(es.backlog),
                 qd.quantile_s(0.50) * 1e3, qd.quantile_s(0.99) * 1e3,
                 qd.max_s() * 1e3, gap * 1e3, bound * 1e3,
                 es.max_service_lag * 1e3);
  }
}

void RtEngine::publish_final_gauges() {
  // Runs on the dispatcher as its last act, so post-run snapshots (chaos
  // conservation checks, registry bridges) see the settled backlog even when
  // no stats thread was configured.
  const std::size_t shard = opts_.telemetry_shard;
  const EngineStats es = stats();
  tele_->set_gauge(tel::GaugeId::kBacklogPackets,
                   static_cast<double>(es.backlog), shard);
  tele_->set_gauge(tel::GaugeId::kServiceLagMax, es.max_service_lag, shard);
}

}  // namespace sfq::rt
