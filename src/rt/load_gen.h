#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "core/types.h"
#include "rt/engine.h"

namespace sfq::rt {

// One traffic model bound to one flow, reusing the traffic/ source
// implementations (CBR / Poisson / Markov on-off) unchanged: each producer
// thread hosts a private sim::Simulator whose sources generate the arrival
// process, and the generated timeline is replayed against the shared wall
// clock. Generation runs ahead of the replay in small slices, so arbitrarily
// long runs need only a slice of buffered arrivals, and the replay hot loop
// is free of model arithmetic — which is what lets a handful of producer
// threads drive millions of packets per second in unpaced mode.
struct FlowLoad {
  enum class Model { kCbr, kPoisson, kOnOff };

  FlowId flow = kInvalidFlow;
  Model model = Model::kCbr;
  double rate = 0.0;         // offered bits/s (peak rate for on-off)
  double packet_bits = 0.0;  // fixed packet size
  Time mean_on = 0.05;       // on-off only
  Time mean_off = 0.05;      // on-off only
  uint64_t seed = 1;
  Time start = 0.0;          // offset of the first emission
};

struct LoadGenOptions {
  // Replay arrival times against the wall clock (1:1). When false, producers
  // blast the generated sequence as fast as the rings accept it — the mode
  // throughput benchmarks use.
  bool paced = true;
  // On a full ring: spin (offer_wait) instead of dropping. Benchmarks that
  // must account every packet set this; paced runs normally leave it off so
  // backpressure surfaces as counted ingress drops, not as generator stall.
  bool block_on_full = false;
  // Sim-time slice generated ahead of the replay.
  Time slice = 0.01;
};

// Multi-threaded load generator: producer thread i feeds engine shard i with
// the flows of `producers[i]`. Start the engine first; join() returns when
// every producer has emitted its full `duration` of traffic.
class LoadGen {
 public:
  LoadGen(RtEngine& engine, std::vector<std::vector<FlowLoad>> producers,
          LoadGenOptions opts = {});
  ~LoadGen();  // joins

  LoadGen(const LoadGen&) = delete;
  LoadGen& operator=(const LoadGen&) = delete;

  // Generates `duration` seconds (of *model* time) of traffic per producer
  // and replays it. May be called once.
  void start(Time duration);
  void join();

  // Offer attempts by producer i (successful pushes + counted drops).
  uint64_t produced(std::size_t i) const;
  uint64_t produced_total() const;

 private:
  void produce(std::size_t i, Time duration);

  RtEngine& engine_;
  std::vector<std::vector<FlowLoad>> specs_;
  LoadGenOptions opts_;
  std::vector<std::thread> threads_;
  std::vector<std::unique_ptr<std::atomic<uint64_t>>> produced_;
  bool started_ = false;
};

}  // namespace sfq::rt
