#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/types.h"
#include "rt/ingress_target.h"

namespace sfq::rt {

// One traffic model bound to one flow, reusing the traffic/ source
// implementations (CBR / Poisson / Markov on-off) unchanged: each producer
// thread hosts a private sim::Simulator whose sources generate the arrival
// process, and the generated timeline is replayed against the shared wall
// clock. Generation runs ahead of the replay in small slices, so arbitrarily
// long runs need only a slice of buffered arrivals, and the replay hot loop
// is free of model arithmetic — which is what lets a handful of producer
// threads drive millions of packets per second in unpaced mode.
struct FlowLoad {
  enum class Model { kCbr, kPoisson, kOnOff };

  FlowId flow = kInvalidFlow;
  Model model = Model::kCbr;
  double rate = 0.0;         // offered bits/s (peak rate for on-off)
  double packet_bits = 0.0;  // fixed packet size
  Time mean_on = 0.05;       // on-off only
  Time mean_off = 0.05;      // on-off only
  uint64_t seed = 1;
  Time start = 0.0;          // offset of the first emission
};

struct LoadGenOptions {
  // Replay arrival times against the wall clock (1:1). When false, producers
  // blast the generated sequence as fast as the rings accept it — the mode
  // throughput benchmarks use.
  bool paced = true;
  // On a full ring: spin (offer_wait) instead of dropping. Benchmarks that
  // must account every packet set this; paced runs normally leave it off so
  // backpressure surfaces as counted ingress drops, not as generator stall.
  bool block_on_full = false;
  // Sim-time slice generated ahead of the replay.
  Time slice = 0.01;

  // Bounded-retry backpressure handling (docs/ROBUSTNESS.md). Active when
  // block_on_full is false and max_retries > 0 or offer_deadline > 0: a full
  // ring (RtEngine::try_offer -> kBackpressure) is retried with exponential
  // backoff and multiplicative jitter instead of dropped. max_retries == 0
  // with a deadline means "retry until the deadline". A packet that exhausts
  // its retries or deadline is given up — counted `abandoned` on both the
  // producer stats and the engine ledger (note_offer_abandoned), keeping
  // attempts == pushed + dropped + abandoned exact.
  std::size_t max_retries = 0;
  Time backoff_initial = 20e-6;    // first retry wait (seconds)
  Time backoff_max = 2e-3;         // backoff growth cap
  double backoff_multiplier = 2.0; // exponential growth per retry
  double backoff_jitter = 0.5;     // wait *= uniform[1-j, 1+j]
  // Per-packet freshness deadline measured from the first offer attempt;
  // 0 disables. A stale packet is abandoned, not delivered late.
  Time offer_deadline = 0.0;
};

// Multi-threaded load generator: producer thread i feeds ingress slot i with
// the flows of `producers[i]`. The target is any IngressTarget — a single
// RtEngine or a ShardedEngine routing behind the interface. Start the engine
// first; join() returns when every producer has emitted its full `duration`
// of traffic.
class LoadGen {
 public:
  // Throws std::invalid_argument on malformed options or flow specs
  // (rt::validate); try_create is the no-throw path.
  LoadGen(IngressTarget& engine, std::vector<std::vector<FlowLoad>> producers,
          LoadGenOptions opts = {});
  static std::unique_ptr<LoadGen> try_create(
      IngressTarget& engine, std::vector<std::vector<FlowLoad>> producers,
      LoadGenOptions opts = {}, std::string* error = nullptr);
  ~LoadGen();  // joins

  LoadGen(const LoadGen&) = delete;
  LoadGen& operator=(const LoadGen&) = delete;

  // Generates `duration` seconds (of *model* time) of traffic per producer
  // and replays it. May be called once.
  void start(Time duration);
  void join();

  // Asks every producer to stop at its next packet boundary (graceful drain:
  // sfq_serve's SIGINT/SIGTERM path). Paced waits are interrupted, the
  // current slice is discarded, and the per-producer ledgers are published
  // exactly — attempts == pushed + dropped + abandoned still holds, only the
  // un-offered tail of the timeline is never counted as attempted. Safe from
  // any thread (including a signal-watcher); join() afterwards as usual.
  void request_stop();

  // Per-producer offer accounting. Exact once join() returned; relaxed
  // (periodically published) while producing. Identity, exact after join:
  //   attempts == pushed + dropped + abandoned
  // `dropped` are plain-offer failures the engine counted as ingress drops;
  // `abandoned` are backpressured packets given up after retries/deadline
  // (also ingress drops on the engine ledger, via note_offer_abandoned).
  struct ProducerStats {
    uint64_t attempts = 0;
    uint64_t pushed = 0;
    uint64_t dropped = 0;
    uint64_t abandoned = 0;
    uint64_t retries = 0;  // backoff retries (not attempts: one per re-offer)
  };
  ProducerStats producer_stats(std::size_t i) const;

  // Offer attempts by producer i (pushed + dropped + abandoned).
  uint64_t produced(std::size_t i) const;
  uint64_t produced_total() const;

 private:
  struct Cells {  // one cache line of per-producer atomics
    std::atomic<uint64_t> attempts{0};
    std::atomic<uint64_t> pushed{0};
    std::atomic<uint64_t> dropped{0};
    std::atomic<uint64_t> abandoned{0};
    std::atomic<uint64_t> retries{0};
  };

  void produce(std::size_t i, Time duration);

  IngressTarget& engine_;
  std::vector<std::vector<FlowLoad>> specs_;
  LoadGenOptions opts_;
  std::vector<std::thread> threads_;
  std::vector<std::unique_ptr<Cells>> cells_;
  std::atomic<bool> stop_requested_{false};
  bool started_ = false;
};

}  // namespace sfq::rt
