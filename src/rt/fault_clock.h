// Fault-injecting wall clock for the rt engine (docs/ROBUSTNESS.md).
//
// The sim-side fault plan (src/fault/) perturbs the *link*; nothing could
// perturb the *clock* or the dispatcher itself, so the watchdog/recovery
// path had no adversary to train against. RtFaultPlan scripts three rt-layer
// faults on the engine's time axis:
//
//   * jumps — the clock reading steps by `delta` at raw time `at` (forward
//     jumps age every pacing deadline at once, as after a VM freeze or an
//     NTP slew; backward jumps model a misbehaving time source),
//   * skews — between `from` and `until` the clock runs at `factor`× real
//     rate (thermal drift, frequency-scaling artifacts),
//   * pauses — the dispatcher sleeps for `duration` at raw time `at`
//     (GC-like stop-the-world; consumed by RtEngine::run, not by the clock).
//
// FaultClock wraps WallClock and applies jumps/skews as a pure transform of
// the raw reading, then clamps the result monotone: the library-wide
// invariant (enqueue/dequeue timestamps non-decreasing, trace.h) must hold
// even under a backward jump, so the transformed clock freezes at its
// high-water mark until raw time catches up — which is exactly how a robust
// server must treat a time source that steps backwards. With no plan
// configured the fast path is one branch on top of WallClock::now().
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <vector>

#include "core/types.h"
#include "rt/clock.h"

namespace sfq::rt {

struct RtFaultPlan {
  struct Jump {
    Time at = 0.0;     // raw (untransformed) wall time of the step
    Time delta = 0.0;  // signed step applied to every later reading
  };
  struct Skew {
    Time from = 0.0;
    Time until = 0.0;
    double factor = 1.0;  // clock rate multiplier inside [from, until)
  };
  struct Pause {
    Time at = 0.0;        // raw wall time the dispatcher stops dead
    Time duration = 0.0;  // how long it sleeps (seconds)
  };
  struct Kill {
    Time at = 0.0;  // raw wall time the dispatcher dies permanently
  };

  std::vector<Jump> jumps;
  std::vector<Skew> skews;
  std::vector<Pause> pauses;
  // Shard-kill: the dispatcher stops accepting, abandons its rings and exits
  // with StallStage::kKilled — the adversary the shard supervisor trains
  // against. Consumed by RtEngine::run on the raw axis, not by the clock.
  std::vector<Kill> kills;

  bool empty() const {
    return jumps.empty() && skews.empty() && pauses.empty() && kills.empty();
  }
};

class FaultClock {
 public:
  FaultClock() = default;

  // Installs the plan. Sorts pauses by trigger time; jumps/skews are summed
  // so order does not matter. Call before the dispatcher starts.
  void set_plan(RtFaultPlan plan) {
    plan_ = std::move(plan);
    std::sort(plan_.pauses.begin(), plan_.pauses.end(),
              [](const RtFaultPlan::Pause& a, const RtFaultPlan::Pause& b) {
                return a.at < b.at;
              });
    std::sort(plan_.kills.begin(), plan_.kills.end(),
              [](const RtFaultPlan::Kill& a, const RtFaultPlan::Kill& b) {
                return a.at < b.at;
              });
    // Kills (like pauses) do not transform the clock reading.
    active_ = !plan_.jumps.empty() || !plan_.skews.empty();
  }
  const RtFaultPlan& plan() const { return plan_; }

  // The engine's time axis: transformed reading, clamped monotone.
  Time now() const {
    const Time raw = base_.now();
    if (!active_) return raw;
    Time t = transform(raw);
    // Monotone clamp (CAS-max): a backward jump freezes the clock at its
    // high-water mark until the raw axis catches back up.
    Time hw = high_water_.load(std::memory_order_relaxed);
    while (t > hw &&
           !high_water_.compare_exchange_weak(hw, t, std::memory_order_relaxed))
      ;
    return std::max(t, hw);
  }

  // Untransformed reading — fault triggers (pauses, jump `at` times) are
  // scripted on this axis so a jump cannot reorder later faults.
  Time raw_now() const { return base_.now(); }

  // Pure jump+skew transform of a raw reading (exposed for tests).
  Time transform(Time raw) const {
    Time t = raw;
    for (const auto& s : plan_.skews)
      if (raw > s.from)
        t += (std::min(raw, s.until) - s.from) * (s.factor - 1.0);
    for (const auto& j : plan_.jumps)
      if (raw >= j.at) t += j.delta;
    return t;
  }

  bool has_faults() const { return active_; }

 private:
  WallClock base_;
  RtFaultPlan plan_;
  bool active_ = false;
  // Mutable through const now(): the clamp is observer state, not plan state.
  mutable std::atomic<Time> high_water_{0.0};
};

}  // namespace sfq::rt
