#include "rt/ingress.h"

#include <stdexcept>
#include <utility>

namespace sfq::rt {

Ingress::Ingress(std::size_t producers, std::size_t ring_capacity) {
  if (producers == 0) throw std::invalid_argument("Ingress: producers == 0");
  if (ring_capacity < 2)
    throw std::invalid_argument("Ingress: ring_capacity < 2");
  shards_.reserve(producers);
  for (std::size_t i = 0; i < producers; ++i)
    shards_.push_back(std::make_unique<Shard>(ring_capacity));
}

bool Ingress::push(std::size_t i, Packet p, Time now, bool count_full) {
  Shard& s = *shards_[i];
  IngressItem item;
  item.packet = std::move(p);
  item.packet.arrival = now;
  item.t_ingress = now;
  if (!s.ring.try_push(std::move(item))) {
    if (count_full) s.drops.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  s.pushed.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void Ingress::count_drop(std::size_t i) {
  shards_[i]->drops.fetch_add(1, std::memory_order_relaxed);
}

std::optional<IngressItem> Ingress::pop_earliest() {
  SpscRing<IngressItem>* best = nullptr;
  Time best_t = 0.0;
  for (auto& shard : shards_) {
    if (IngressItem* head = shard->ring.front()) {
      if (!best || head->t_ingress < best_t) {
        best = &shard->ring;
        best_t = head->t_ingress;
      }
    }
  }
  if (!best) return std::nullopt;
  IngressItem out = std::move(*best->front());
  best->pop();
  return out;
}

bool Ingress::empty() const {
  for (const auto& shard : shards_)
    if (!shard->ring.empty()) return false;
  return true;
}

uint64_t Ingress::pushed(std::size_t i) const {
  return shards_[i]->pushed.load(std::memory_order_relaxed);
}

uint64_t Ingress::drops(std::size_t i) const {
  return shards_[i]->drops.load(std::memory_order_relaxed);
}

uint64_t Ingress::total_pushed() const {
  uint64_t n = 0;
  for (std::size_t i = 0; i < shards_.size(); ++i) n += pushed(i);
  return n;
}

uint64_t Ingress::total_drops() const {
  uint64_t n = 0;
  for (std::size_t i = 0; i < shards_.size(); ++i) n += drops(i);
  return n;
}

}  // namespace sfq::rt
