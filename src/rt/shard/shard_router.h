// Stable flow -> shard placement for the sharded RT engine
// (docs/REALTIME.md). The route is a pure function of (flow id, shard
// count) — no state, no registration — so a flow that leaves and rejoins
// always lands on the same shard, which is what keeps per-shard SFQ tag
// re-anchoring (rejoin start tag = max(v(t), previous finish)) meaningful
// across churn: the history the tag re-anchors against lives on the shard
// the flow returns to.
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/types.h"

namespace sfq::rt {

class ShardRouter {
 public:
  explicit ShardRouter(std::size_t shards) : shards_(shards ? shards : 1) {}

  std::size_t shards() const { return shards_; }

  // SplitMix64 finalizer over the flow id: cheap (a few multiplies), and
  // avalanches low-entropy sequential flow ids across shards far better
  // than a bare modulus would.
  std::size_t shard_of(FlowId f) const {
    uint64_t x = static_cast<uint64_t>(f) + 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<std::size_t>(x % shards_);
  }

 private:
  std::size_t shards_;
};

}  // namespace sfq::rt
