// Stable flow -> shard placement for the sharded RT engine
// (docs/REALTIME.md). The route is a pure function of (flow id, shard
// count) — no state, no registration — so a flow that leaves and rejoins
// always lands on the same shard, which is what keeps per-shard SFQ tag
// re-anchoring (rejoin start tag = max(v(t), previous finish)) meaningful
// across churn: the history the tag re-anchors against lives on the shard
// the flow returns to.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/types.h"

namespace sfq::rt {

class ShardRouter {
 public:
  explicit ShardRouter(std::size_t shards) : shards_(shards ? shards : 1) {}

  std::size_t shards() const { return shards_; }

  // SplitMix64 finalizer over the flow id: cheap (a few multiplies), and
  // avalanches low-entropy sequential flow ids across shards far better
  // than a bare modulus would.
  std::size_t shard_of(FlowId f) const {
    uint64_t x = static_cast<uint64_t>(f) + 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<std::size_t>(x % shards_);
  }

  // Failover placement (docs/ROBUSTNESS.md "Shard failover"): the primary
  // placement above when that shard is alive, else rendezvous (highest
  // random weight) hashing over the alive subset. Minimal movement both
  // ways: a flow moves only when its current home dies, and when the home
  // returns the primary preference sends it straight back. Pure function of
  // (flow, alive set), so every observer agrees without coordination.
  // alive[k] == 0 marks shard k dead; an all-dead set returns the primary.
  std::size_t rehome(FlowId f, const std::vector<char>& alive) const {
    const std::size_t home = shard_of(f);
    if (home < alive.size() && alive[home]) return home;
    uint64_t best = 0;
    std::size_t best_k = home;
    bool found = false;
    for (std::size_t k = 0; k < shards_ && k < alive.size(); ++k) {
      if (!alive[k]) continue;
      // Independent per-(flow, shard) score: mix the pair through the same
      // finalizer the primary route uses.
      uint64_t x = (static_cast<uint64_t>(f) << 20) ^
                   (static_cast<uint64_t>(k) + 0x9e3779b97f4a7c15ULL);
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
      x ^= x >> 31;
      if (!found || x > best) {
        best = x;
        best_k = k;
        found = true;
      }
    }
    return best_k;
  }

 private:
  std::size_t shards_;
};

}  // namespace sfq::rt
