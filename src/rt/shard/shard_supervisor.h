// Shard supervisor: supervised failover with fairness-preserving flow
// rehoming (docs/ROBUSTNESS.md, "Shard failover").
//
// A shard whose dispatcher dies permanently — watchdog restart budget
// exhausted, or an RtFaultPlan shard-kill fault — used to strand every flow
// routed to it. The supervisor turns that partial failure into a bounded
// fairness perturbation:
//
//   1. FENCE    the dead shard (its engine already stopped accepting; the
//               supervisor waits for the dispatcher thread to exit) and
//               HARVEST its exact per-flow backlog via
//               RtEngine::harvest_flows (counted migrated_out).
//   2. REHOME   its resident flows onto survivors via the router's
//               rendezvous remap (ShardRouter::rehome — minimal movement),
//               flip the now-versioned routing table, re-weight the H-SFQ
//               root shares W_k, and adopt the harvested backlog on each
//               destination dispatcher (RtEngine::adopt_flows — counted
//               migrated_in; the SFQ rejoin rule re-anchors each migrated
//               flow's start tag to max(v_dest(t), its previous finish on
//               the destination)).
//   3. RESTART  the dead shard cold — a fresh RtEngine epoch over the SAME
//               scheduler, so tag history survives — under a separate
//               shard-level restart budget, and rehome the flows back on
//               success.
//
// Every step keeps the summed conservation identities exact
// (in == out + backlog + removed + migrated-in-flight; the migrated_in /
// migrated_out terms cancel once an epoch settles), and the survivors'
// cross-shard Theorem-1 gap stays within
//
//   fairness_bound(f, m) + migration_slack,
//   migration_slack = max over epochs of
//       [ delta * R / W_live  +  max_{f moved} l_f^max / w_f ]
//
// where delta is the fence->resident migration latency, R the link rate and
// W_live the surviving weight (derivation in docs/ROBUSTNESS.md; asserted
// live by sfq_serve --failover and scripts/soak.sh --kill-shard).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "core/types.h"
#include "obs/telemetry/telemetry.h"

namespace sfq::rt {

class ShardedEngine;

struct FailoverOptions {
  // Master switch; off keeps the PR-8 behavior (a dead shard wedges the
  // run: ShardedEngine::stalled() turns true).
  bool enabled = false;
  // Supervisor liveness poll cadence (seconds).
  double poll_interval = 0.002;
  // Cold restarts allowed per shard (a fresh engine epoch over the same
  // scheduler). 0 = never restart; flows stay rehomed on survivors.
  uint32_t shard_restart_budget = 1;
  // Wait between fencing a shard and attempting its cold restart (seconds);
  // gives whatever killed it (a scripted fault, a scheduling storm) room to
  // pass before the new epoch starts.
  double restart_backoff = 0.01;
};

// One completed failover epoch, for post-run verdicts and tests.
struct FailoverEvent {
  std::size_t shard = 0;       // the shard that died
  std::size_t flows_moved = 0;  // flows rehomed away (not counting the return)
  uint64_t packets_moved = 0;   // harvested backlog packets adopted elsewhere
  double latency = 0.0;         // fence -> flows resident on survivors (s)
  double slack = 0.0;           // this epoch's migration_slack term (s)
  bool restarted = false;       // cold restart succeeded, flows rehomed back
};

// Owned by ShardedEngine (options.failover.enabled); runs one monitor
// thread. All mutation of routing, root weights and engine epochs happens on
// this thread — producers and the stats/rebalance threads only read the
// atomics it publishes.
class ShardSupervisor {
 public:
  ShardSupervisor(ShardedEngine& owner, FailoverOptions opts);
  ~ShardSupervisor();

  ShardSupervisor(const ShardSupervisor&) = delete;
  ShardSupervisor& operator=(const ShardSupervisor&) = delete;

  void start();
  void stop();  // idempotent; joins the monitor thread

  // Completed failovers (fence -> rehome settled).
  uint64_t failovers() const {
    return failovers_.load(std::memory_order_relaxed);
  }
  // Flows migrated, counting both the evacuation and any rehome-back.
  uint64_t flows_rehomed() const {
    return flows_rehomed_.load(std::memory_order_relaxed);
  }
  // Worst per-epoch migration slack (seconds; the extra fairness-bound term
  // a window overlapping a migration may legitimately carry). 0 before any
  // failover.
  double migration_slack() const {
    return migration_slack_.load(std::memory_order_relaxed);
  }
  // True when recovery is impossible: every shard is dead, or a migration
  // step failed with no survivor left to retry on. This — not a single dead
  // shard — is what ShardedEngine::stalled() reports under failover.
  bool wedged() const { return wedged_.load(std::memory_order_acquire); }

  // Epoch log; read after stop().
  const std::vector<FailoverEvent>& events() const { return events_; }

 private:
  void loop();
  bool stop_requested();
  void handle_death(std::size_t k);
  bool evacuate(std::size_t k, double& out_reanchor, std::size_t& flows_moved,
                uint64_t& packets_moved);
  void reweight();
  bool try_restart(std::size_t k);
  bool rehome_back(std::size_t k);
  void publish_shard_gauges();

  ShardedEngine& owner_;
  FailoverOptions opts_;
  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool started_ = false;

  std::vector<char> alive_;                    // monitor-thread state
  std::vector<uint32_t> restarts_used_;        // per-shard budget cursor
  std::vector<std::vector<FlowId>> residents_; // current flows per shard
  std::vector<FailoverEvent> events_;
  // One counter-cell block per shard (single-writer: this thread).
  std::vector<obs::telemetry::Telemetry::Writer> writers_;

  std::atomic<uint64_t> failovers_{0};
  std::atomic<uint64_t> flows_rehomed_{0};
  std::atomic<double> migration_slack_{0.0};
  std::atomic<bool> wedged_{false};
};

}  // namespace sfq::rt
