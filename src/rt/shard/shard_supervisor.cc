#include "rt/shard/shard_supervisor.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "obs/telemetry/telemetry.h"
#include "rt/shard/sharded_engine.h"

namespace sfq::rt {

namespace tel = obs::telemetry;

namespace {
double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}
}  // namespace

ShardSupervisor::ShardSupervisor(ShardedEngine& owner, FailoverOptions opts)
    : owner_(owner), opts_(opts) {}

ShardSupervisor::~ShardSupervisor() { stop(); }

void ShardSupervisor::start() {
  const std::size_t n = owner_.shards();
  alive_.assign(n, 1);
  restarts_used_.assign(n, 0);
  residents_.resize(n);
  for (std::size_t k = 0; k < n; ++k)
    residents_[k] = owner_.shards_[k]->global_ids;
  if (owner_.tele_) {
    writers_.reserve(n);
    for (std::size_t k = 0; k < n; ++k)
      writers_.push_back(owner_.tele_->writer(k));
  }
  stop_ = false;
  started_ = true;
  thread_ = std::thread([this] { loop(); });
}

void ShardSupervisor::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  started_ = false;
}

bool ShardSupervisor::stop_requested() {
  std::lock_guard<std::mutex> lock(mu_);
  return stop_;
}

void ShardSupervisor::loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    cv_.wait_for(lock, std::chrono::duration<double>(opts_.poll_interval),
                 [this] { return stop_; });
    if (stop_) break;
    lock.unlock();
    for (std::size_t k = 0; k < owner_.shards(); ++k) {
      if (alive_[k] && owner_.live(k).stalled()) handle_death(k);
      if (wedged_.load(std::memory_order_acquire)) break;
    }
    lock.lock();
  }
}

void ShardSupervisor::publish_shard_gauges() {
  if (!owner_.tele_) return;
  for (std::size_t k = 0; k < owner_.shards(); ++k)
    owner_.tele_->set_gauge(tel::GaugeId::kShardStalled,
                            alive_[k] ? 0.0 : 1.0, k);
}

void ShardSupervisor::handle_death(std::size_t k) {
  // FENCE: the dispatcher already executed permanent_stop (accepting off,
  // rings drained into the abandoned ledger); wait for the thread itself to
  // exit so harvest_flows sees a quiesced engine, then join it. Bounded by
  // a grace period when a stop request arrives mid-fence.
  const auto t0 = std::chrono::steady_clock::now();
  RtEngine& dead = owner_.live(k);
  while (!dead.dispatcher_done()) {
    if (stop_requested() && seconds_since(t0) > 0.5) return;
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  dead.stop(StopMode::kAbandon);  // joins the exited thread; idempotent
  alive_[k] = 0;
  publish_shard_gauges();

  FailoverEvent ev;
  ev.shard = k;
  double reanchor = 0.0;
  if (!evacuate(k, reanchor, ev.flows_moved, ev.packets_moved)) {
    wedged_.store(true, std::memory_order_release);
    return;
  }
  const double dt = seconds_since(t0);
  ev.latency = dt;

  // migration_slack for this epoch (docs/ROBUSTNESS.md): during the
  // fence->resident blackout of length dt a continuously-backlogged
  // survivor pair can diverge by at most dt*R/W_live on the normalized
  // axis (the whole link against the smallest unit of surviving weight),
  // and each moved flow's tag re-anchor costs it at most one of its own
  // max packets, l_f^max/w_f.
  double w_live = 0.0;
  for (std::size_t j = 0; j < owner_.shards(); ++j)
    if (alive_[j]) w_live += owner_.shard_weight(j);
  ev.slack = (w_live > 0.0 ? dt * owner_.opts_.link_rate / w_live : 0.0) +
             reanchor;
  double prev = migration_slack_.load(std::memory_order_relaxed);
  while (prev < ev.slack && !migration_slack_.compare_exchange_weak(
                                prev, ev.slack, std::memory_order_relaxed)) {
  }
  failovers_.fetch_add(1, std::memory_order_relaxed);
  flows_rehomed_.fetch_add(ev.flows_moved, std::memory_order_relaxed);
  if (!writers_.empty()) {
    writers_[k].inc(tel::CounterId::kShardFailovers);
    writers_[k].inc(tel::CounterId::kFlowsRehomed, ev.flows_moved);
    owner_.tele_->record_seconds(tel::HistId::kMigrationLatency, dt, k);
  }

  // RESTART: a fresh engine epoch over the same scheduler, under the
  // shard-level budget, after an interruptible backoff.
  if (restarts_used_[k] < opts_.shard_restart_budget) {
    ++restarts_used_[k];
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_for(lock,
                   std::chrono::duration<double>(opts_.restart_backoff),
                   [this] { return stop_; });
      if (stop_) {
        events_.push_back(ev);
        return;  // flows stay rehomed on survivors; ledger already closed
      }
    }
    if (try_restart(k)) {
      alive_[k] = 1;
      if (rehome_back(k)) {
        ev.restarted = true;
      } else if (wedged_.load(std::memory_order_acquire)) {
        events_.push_back(ev);
        return;
      }
      publish_shard_gauges();
    }
  }
  events_.push_back(ev);
}

bool ShardSupervisor::evacuate(std::size_t k, double& out_reanchor,
                               std::size_t& flows_moved,
                               uint64_t& packets_moved) {
  out_reanchor = 0.0;
  flows_moved = 0;
  packets_moved = 0;
  std::vector<FlowId> res;
  res.swap(residents_[k]);

  // HARVEST the dead epoch's exact per-flow backlog (counted migrated_out;
  // records a kRemove capture op per flow so differential replay tracks the
  // residency change).
  std::vector<RtEngine::Migration> harvested =
      owner_.live(k).harvest_flows(res);

  // Any survivor left?
  bool any_alive = false;
  for (std::size_t j = 0; j < owner_.shards(); ++j)
    if (alive_[j]) any_alive = true;
  if (!any_alive) return res.empty();

  // REHOME: rendezvous remap over the alive subset (minimal movement), then
  // re-weight the H-SFQ root and re-split the link before any destination
  // starts serving the migrated backlog.
  std::vector<std::size_t> dest_of(res.size());
  std::vector<std::vector<RtEngine::Migration>> per_dest(owner_.shards());
  for (std::size_t i = 0; i < res.size(); ++i) {
    const FlowId f = res[i];
    const std::size_t d = owner_.router_.rehome(f, alive_);
    dest_of[i] = d;
    packets_moved += harvested[i].backlog.size();
    out_reanchor = std::max(out_reanchor, owner_.flow_max_bits_[f] /
                                              owner_.flow_weight_[f]);
    per_dest[d].push_back(std::move(harvested[i]));
    residents_[d].push_back(f);
  }
  flows_moved = res.size();
  reweight();

  // ADOPT at each destination (executes on its dispatcher thread: rejoin
  // re-anchors the start tag against the destination's own v(t) and tag
  // history, backlog enqueues under the normal buffer policy, every packet
  // counted migrated_in). A destination that died in the meantime fails the
  // adopt; those flows retry on the remaining survivors.
  for (std::size_t d = 0; d < per_dest.size(); ++d) {
    if (per_dest[d].empty()) continue;
    if (owner_.live(d).adopt_flows(per_dest[d])) {
      per_dest[d].clear();  // settled; a rescan must not re-adopt it
      continue;
    }
    // Destination is dead too. Pull its share back out of the resident
    // bookkeeping and retry the remap without it; its own death is handled
    // by a later poll tick.
    alive_[d] = 0;
    std::vector<RtEngine::Migration> retry = std::move(per_dest[d]);
    per_dest[d].clear();
    for (const auto& m : retry) {
      auto& rd = residents_[d];
      rd.erase(std::remove(rd.begin(), rd.end(), m.flow), rd.end());
    }
    bool left = false;
    for (std::size_t j = 0; j < owner_.shards(); ++j)
      if (alive_[j]) left = true;
    if (!left) return false;
    for (auto& m : retry) {
      const std::size_t nd = owner_.router_.rehome(m.flow, alive_);
      for (std::size_t i = 0; i < res.size(); ++i)
        if (res[i] == m.flow) dest_of[i] = nd;
      residents_[nd].push_back(m.flow);
      per_dest[nd].push_back(std::move(m));
    }
    reweight();
    d = static_cast<std::size_t>(-1);  // restart the adopt scan
  }

  // FLIP the versioned routing table last: producers keep hitting the
  // fenced shard (counted ingress drops there) until the flows are resident
  // at their destinations, so no packet can outrun its flow's tag state.
  for (std::size_t i = 0; i < res.size(); ++i)
    owner_.shard_of_[res[i]].store(static_cast<uint32_t>(dest_of[i]),
                                   std::memory_order_release);
  owner_.route_version_.fetch_add(1, std::memory_order_release);
  return true;
}

void ShardSupervisor::reweight() {
  // Recompute W_k and the eq.-65 slack from the current residency, then
  // re-split the link over the live weight. Dead shards carry zero weight —
  // their virtual server is gone from the hierarchy until restart.
  double w_live = 0.0;
  for (std::size_t j = 0; j < owner_.shards(); ++j) {
    auto& s = *owner_.shards_[j];
    double w = 0.0;
    double lmax = 0.0;
    double lsum = 0.0;
    for (FlowId g : residents_[j]) {
      w += owner_.flow_weight_[g];
      lmax = std::max(lmax, owner_.flow_max_bits_[g]);
      lsum += owner_.flow_max_bits_[g];
    }
    if (!alive_[j]) w = 0.0;
    s.weight_sum.store(w, std::memory_order_release);
    s.slack.store(w > 0.0 ? (lmax + lsum) / w : 0.0,
                  std::memory_order_release);
    if (alive_[j]) w_live += w;
  }
  for (std::size_t j = 0; j < owner_.shards(); ++j) {
    auto& s = *owner_.shards_[j];
    if (!alive_[j]) continue;
    const double w = s.weight_sum.load(std::memory_order_acquire);
    const double rate = w_live > 0.0
                            ? owner_.opts_.link_rate * w / w_live
                            : owner_.opts_.link_rate /
                                  static_cast<double>(owner_.shards());
    if (rate > 0.0) {
      s.rate.store(rate, std::memory_order_release);
      s.rate_cell.load(std::memory_order_acquire)
          ->store(rate, std::memory_order_relaxed);
    }
  }
}

bool ShardSupervisor::try_restart(std::size_t k) {
  ShardedEngine::Shard& s = *owner_.shards_[k];
  auto eng = owner_.make_engine_epoch(
      k, s.rate.load(std::memory_order_acquire), /*initial=*/false);
  RtEngine* raw = eng.get();
  s.epochs.push_back(std::move(eng));
  raw->start();
  s.live.store(raw, std::memory_order_release);
  s.epoch_count.store(s.epochs.size(), std::memory_order_release);
  return true;
}

bool ShardSupervisor::rehome_back(std::size_t k) {
  // Collect the displaced flows whose primary home is the restarted shard.
  std::vector<std::vector<FlowId>> from(owner_.shards());
  std::size_t moved = 0;
  for (std::size_t j = 0; j < owner_.shards(); ++j) {
    if (j == k) continue;
    for (FlowId f : residents_[j])
      if (owner_.home_of_[f] == k) {
        from[j].push_back(f);
        ++moved;
      }
  }
  if (moved == 0) return true;

  // EVICT from the temporary shards (counted migrated_out there; exact
  // backlog travels with each flow), ADOPT on the restarted home (the
  // rejoin rule re-anchors against the home's preserved tag history), then
  // flip the routing. A temp shard that died mid-evict keeps its flows —
  // its own failover will move them later.
  std::vector<RtEngine::Migration> inbound;
  for (std::size_t j = 0; j < owner_.shards(); ++j) {
    if (from[j].empty()) continue;
    std::vector<RtEngine::Migration> out;
    if (!owner_.live(j).evict_flows(from[j], out)) {
      from[j].clear();
      continue;
    }
    auto& rj = residents_[j];
    for (FlowId f : from[j])
      rj.erase(std::remove(rj.begin(), rj.end(), f), rj.end());
    for (auto& m : out) inbound.push_back(std::move(m));
  }
  if (inbound.empty()) return true;

  std::vector<FlowId> coming;
  coming.reserve(inbound.size());
  for (const auto& m : inbound) coming.push_back(m.flow);
  for (FlowId f : coming) residents_[k].push_back(f);
  reweight();
  if (!owner_.live(k).adopt_flows(inbound)) {
    // The fresh epoch died before adopting. Send the evicted flows back to
    // the survivors so no flow is left homeless.
    alive_[k] = 0;
    auto& rk = residents_[k];
    for (FlowId f : coming)
      rk.erase(std::remove(rk.begin(), rk.end(), f), rk.end());
    bool left = false;
    for (std::size_t j = 0; j < owner_.shards(); ++j)
      if (alive_[j]) left = true;
    if (!left) {
      wedged_.store(true, std::memory_order_release);
      return false;
    }
    std::vector<std::vector<RtEngine::Migration>> per_dest(owner_.shards());
    for (auto& m : inbound) {
      const std::size_t d = owner_.router_.rehome(m.flow, alive_);
      residents_[d].push_back(m.flow);
      per_dest[d].push_back(std::move(m));
    }
    reweight();
    for (std::size_t d = 0; d < per_dest.size(); ++d) {
      if (per_dest[d].empty()) continue;
      if (!owner_.live(d).adopt_flows(per_dest[d])) {
        wedged_.store(true, std::memory_order_release);
        return false;
      }
      for (const auto& m : per_dest[d])
        owner_.shard_of_[m.flow].store(static_cast<uint32_t>(d),
                                       std::memory_order_release);
    }
    owner_.route_version_.fetch_add(1, std::memory_order_release);
    flows_rehomed_.fetch_add(coming.size(), std::memory_order_relaxed);
    return false;
  }
  for (FlowId f : coming)
    owner_.shard_of_[f].store(static_cast<uint32_t>(k),
                              std::memory_order_release);
  owner_.route_version_.fetch_add(1, std::memory_order_release);
  flows_rehomed_.fetch_add(coming.size(), std::memory_order_relaxed);
  if (!writers_.empty())
    writers_[k].inc(tel::CounterId::kFlowsRehomed, coming.size());
  return true;
}

}  // namespace sfq::rt
