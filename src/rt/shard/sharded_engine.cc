#include "rt/shard/sharded_engine.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "net/rate_profile.h"
#include "obs/telemetry/exposition.h"
#include "stats/fairness.h"

namespace sfq::rt {

namespace tel = obs::telemetry;

namespace {

// Per-shard service rate with a rebalance-writable cell: the root thread
// redistributes the link over busy shards by storing into the atomic while
// the shard dispatcher reads it per transmission. Relaxed is enough — a
// rate observed one transmission late only shifts that packet's pacing
// deadline, never the ledger.
class AtomicRate final : public net::RateProfile {
 public:
  explicit AtomicRate(double rate) : rate_(rate) {}

  Time finish_time(Time start, double bits) override {
    return start + bits / rate_.load(std::memory_order_relaxed);
  }
  double work(Time t1, Time t2) override {
    return (t2 - t1) * rate_.load(std::memory_order_relaxed);
  }
  double average_rate() const override {
    return rate_.load(std::memory_order_relaxed);
  }

  std::atomic<double>& cell() { return rate_; }

 private:
  std::atomic<double> rate_;
};

}  // namespace

ShardedEngine::ShardedEngine(const SchedulerFactory& factory,
                             std::vector<ShardFlow> flows,
                             ShardedEngineOptions opts)
    : opts_(opts), router_(opts.shards) {
  if (opts_.shards == 0)
    throw std::invalid_argument("ShardedEngine: shards must be >= 1");
  if (!(opts_.link_rate > 0.0))
    throw std::invalid_argument("ShardedEngine: link_rate must be > 0");
  if (!factory)
    throw std::invalid_argument("ShardedEngine: null scheduler factory");
  if (flows.empty())
    throw std::invalid_argument("ShardedEngine: at least one flow required");

  // Pass 1: route every global flow and accumulate per-shard weight sums —
  // the H-SFQ root weights W_k that fix each shard's rate share.
  const std::size_t n = flows.size();
  shard_of_.resize(n);
  local_id_.resize(n);
  flow_weight_.resize(n);
  flow_max_bits_.resize(n);
  shards_.resize(opts_.shards);
  for (FlowId f = 0; f < n; ++f) {
    const std::size_t k = router_.shard_of(f);
    shard_of_[f] = k;
    flow_weight_[f] = flows[f].weight;
    flow_max_bits_[f] = flows[f].max_packet_bits;
    shards_[k].weight_sum += flows[f].weight;
    total_weight_ += flows[f].weight;
  }
  if (!(total_weight_ > 0.0))
    throw std::invalid_argument("ShardedEngine: total weight must be > 0");

  // Pass 2: one scheduler per shard at its weight-share rate. A shard that
  // drew no flows keeps a 1/N fallback share so hash-unmapped (unknown-flow)
  // traffic routed there still drains into the drop ledger instead of
  // wedging a zero-rate link.
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    Shard& s = shards_[k];
    const double share = s.weight_sum > 0.0
                             ? s.weight_sum / total_weight_
                             : 1.0 / static_cast<double>(shards_.size());
    s.rate = opts_.link_rate * share;
    s.sched = factory(k, share);
    if (!s.sched)
      throw std::invalid_argument("ShardedEngine: factory returned null");
  }

  // Pass 3: register flows in ascending GLOBAL id order, so shard-local ids
  // are reproducible from (flow table, shard count) alone — replay tooling
  // repeats this walk to rebuild a shard's scheduler.
  for (FlowId f = 0; f < n; ++f) {
    Shard& s = shards_[shard_of_[f]];
    local_id_[f] = s.sched->add_flow(flows[f].weight, flows[f].max_packet_bits,
                                     flows[f].name);
    s.global_ids.push_back(f);
  }

  // eq.-65 slack per shard: treating shard k as a virtual server of rate
  // R*W_k/W, its service fluctuation adds (l_k^max + sum_{g in k} l_g^max)
  // worth of bits at weight W_k to any cross-shard Theorem-1 comparison.
  for (Shard& s : shards_) {
    if (!(s.weight_sum > 0.0)) continue;
    double lmax = 0.0;
    double lsum = 0.0;
    for (FlowId g : s.global_ids) {
      lmax = std::max(lmax, flow_max_bits_[g]);
      lsum += flow_max_bits_[g];
    }
    s.slack = (lmax + lsum) / s.weight_sum;
  }

  // Pass 4: a full RtEngine per shard — the root owns stats publication and
  // the telemetry label, everything else comes from the shared template.
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    EngineOptions eo = opts_.engine;
    eo.telemetry_shard = k;
    eo.stats_interval = 0.0;
    eo.stats_port = -1;
    eo.stats_console = false;
    auto profile = std::make_unique<AtomicRate>(shards_[k].rate);
    shards_[k].rate_cell = &profile->cell();
    shards_[k].engine =
        std::make_unique<RtEngine>(*shards_[k].sched, std::move(profile), eo);
  }
  last_shard_.resize(std::max<std::size_t>(opts_.engine.producers, 1));
}

std::unique_ptr<ShardedEngine> ShardedEngine::try_create(
    const SchedulerFactory& factory, std::vector<ShardFlow> flows,
    ShardedEngineOptions opts, std::string* error) {
  try {
    return std::make_unique<ShardedEngine>(factory, std::move(flows), opts);
  } catch (const std::exception& e) {
    if (error) *error = e.what();
    return nullptr;
  }
}

ShardedEngine::~ShardedEngine() {
  if (running()) stop(StopMode::kAbandon);
  {
    std::lock_guard<std::mutex> lock(bg_mu_);
    bg_stop_ = true;
  }
  bg_cv_.notify_all();
  if (rebal_thread_.joinable()) rebal_thread_.join();
  if (stats_thread_.joinable()) stats_thread_.join();
  if (stats_server_) stats_server_->stop();
}

std::size_t ShardedEngine::route(const Packet& p, std::size_t i) {
  // In-table flows use the precomputed map; unknown global ids fall back to
  // the hash so they deterministically land (and get ledgered as
  // kUnknownFlow) on the same shard every time. Recording the shard even
  // for attempts that end up rejected keeps the note_* hooks resolving
  // against the shard that actually saw the attempt.
  const std::size_t k = p.flow < shard_of_.size() ? shard_of_[p.flow]
                                                  : router_.shard_of(p.flow);
  last_shard_[i].shard = k;
  return k;
}

bool ShardedEngine::offer(std::size_t i, Packet p) {
  const std::size_t k = route(p, i);
  if (p.flow < local_id_.size()) p.flow = local_id_[p.flow];
  return shards_[k].engine->offer(i, std::move(p));
}

bool ShardedEngine::offer_wait(std::size_t i, Packet p) {
  const std::size_t k = route(p, i);
  if (p.flow < local_id_.size()) p.flow = local_id_[p.flow];
  return shards_[k].engine->offer_wait(i, std::move(p));
}

OfferStatus ShardedEngine::try_offer(std::size_t i, const Packet& p) {
  const std::size_t k = route(p, i);
  Packet q = p;
  if (q.flow < local_id_.size()) q.flow = local_id_[q.flow];
  return shards_[k].engine->try_offer(i, q);
}

void ShardedEngine::note_offer_retry(std::size_t i) {
  shards_[last_shard_[i].shard].engine->note_offer_retry(i);
}

void ShardedEngine::note_offer_abandoned(std::size_t i) {
  shards_[last_shard_[i].shard].engine->note_offer_abandoned(i);
}

void ShardedEngine::set_telemetry(tel::Telemetry* plane) {
  if (running())
    throw std::logic_error("ShardedEngine: set_telemetry while running");
  if (plane && plane->shards() < shards_.size())
    throw std::invalid_argument(
        "ShardedEngine: telemetry plane has fewer shards than the engine");
  tele_ = plane;
  for (Shard& s : shards_) s.engine->set_telemetry(plane);
}

void ShardedEngine::set_capture(std::vector<std::vector<CaptureOp>>* out) {
  if (running())
    throw std::logic_error("ShardedEngine: set_capture while running");
  if (out == nullptr) {
    for (Shard& s : shards_) s.engine->set_capture(nullptr);
    return;
  }
  // The outer vector must not reallocate afterwards — each shard engine
  // holds a pointer into it for the run.
  out->resize(shards_.size());
  for (std::size_t k = 0; k < shards_.size(); ++k)
    shards_[k].engine->set_capture(&(*out)[k]);
}

void ShardedEngine::start() {
  if (started_) throw std::logic_error("ShardedEngine: start() called twice");
  started_ = true;
  for (Shard& s : shards_) s.engine->start();
  running_.store(true, std::memory_order_release);
  if (tele_ && (opts_.stats_interval > 0.0 || opts_.stats_port >= 0)) {
    if (opts_.stats_port >= 0) {
      stats_server_ = std::make_unique<tel::StatsServer>();
      stats_server_->start(static_cast<uint16_t>(opts_.stats_port));
    }
    bg_stop_ = false;
    stats_thread_ = std::thread([this] { stats_loop(); });
  }
  if (opts_.rebalance && shards_.size() > 1)
    rebal_thread_ = std::thread([this] { rebalance_loop(); });
}

void ShardedEngine::stop(StopMode mode) {
  std::lock_guard<std::mutex> lock(stop_mu_);
  if (!running_.load(std::memory_order_acquire)) return;
  // Stop every shard concurrently: a kDrain stop lets all shards serve out
  // their backlogs in parallel instead of serializing N drains. The
  // rebalance thread keeps running through the drain (idle shards cede rate
  // to draining ones, which only speeds the drain up) and is settled before
  // the stats thread's final publication.
  std::vector<std::thread> stoppers;
  stoppers.reserve(shards_.size());
  for (Shard& s : shards_)
    stoppers.emplace_back([&s, mode] { s.engine->stop(mode); });
  for (std::thread& t : stoppers) t.join();
  {
    std::lock_guard<std::mutex> block(bg_mu_);
    bg_stop_ = true;
  }
  bg_cv_.notify_all();
  if (rebal_thread_.joinable()) rebal_thread_.join();
  if (stats_thread_.joinable()) stats_thread_.join();
  running_.store(false, std::memory_order_release);
}

bool ShardedEngine::accepting() const {
  for (const Shard& s : shards_)
    if (s.engine->accepting()) return true;
  return false;
}

bool ShardedEngine::stalled() const {
  for (const Shard& s : shards_)
    if (s.engine->stalled()) return true;
  return false;
}

int ShardedEngine::overload_state() const {
  int worst = 0;
  for (const Shard& s : shards_)
    worst = std::max(worst, s.engine->overload_state());
  return worst;
}

EngineStats ShardedEngine::stats() const {
  EngineStats total;
  for (const Shard& s : shards_) {
    const EngineStats es = s.engine->stats();
    total.ingress_pushed += es.ingress_pushed;
    total.ingress_drops += es.ingress_drops;
    total.accepted += es.accepted;
    total.transmitted += es.transmitted;
    total.tx_bits += es.tx_bits;
    total.abandoned += es.abandoned;
    for (std::size_t c = 0; c < obs::kDropCauseCount; ++c)
      total.drops[c] += es.drops[c];
    total.backlog += es.backlog;
    total.max_service_lag = std::max(total.max_service_lag,
                                     es.max_service_lag);
    total.stalls += es.stalls;
    total.recoveries += es.recoveries;
    if (es.last_stall_stage != StallStage::kNone)
      total.last_stall_stage = es.last_stall_stage;
    total.overload_state = std::max(total.overload_state, es.overload_state);
  }
  return total;
}

EngineStats ShardedEngine::shard_stats(std::size_t k) const {
  return shards_[k].engine->stats();
}

double ShardedEngine::flow_tx_bits(FlowId global) const {
  if (global >= shard_of_.size()) return 0.0;
  return shards_[shard_of_[global]].engine->flow_tx_bits(local_id_[global]);
}

std::vector<double> ShardedEngine::service_snapshot() const {
  std::vector<double> out(shard_of_.size());
  for (FlowId f = 0; f < out.size(); ++f) out[f] = flow_tx_bits(f);
  return out;
}

double ShardedEngine::fairness_bound(FlowId f, FlowId m) const {
  // Same shard: the flows share one SFQ server, plain Theorem 1. Across
  // shards: each shard is an eq.-65 virtual server, so both shards' service
  // fluctuation slack joins the bound (docs/REALTIME.md derives this).
  double b = stats::sfq_fairness_bound(flow_max_bits_[f], flow_weight_[f],
                                       flow_max_bits_[m], flow_weight_[m]);
  if (shard_of_[f] != shard_of_[m])
    b += shards_[shard_of_[f]].slack + shards_[shard_of_[m]].slack;
  return b;
}

void ShardedEngine::stats_loop() {
  const double interval =
      opts_.stats_interval > 0.0 ? opts_.stats_interval : 0.5;
  std::vector<double> prev_service = service_snapshot();
  std::unique_lock<std::mutex> lock(bg_mu_);
  while (!bg_stop_) {
    bg_cv_.wait_for(lock, std::chrono::duration<double>(interval),
                    [this] { return bg_stop_; });
    lock.unlock();
    publish_stats(prev_service);
    lock.lock();
  }
  lock.unlock();
  // Final pass after stop() joined every shard dispatcher, so the published
  // snapshot matches the settled summed ledger.
  publish_stats(prev_service);
}

void ShardedEngine::publish_stats(std::vector<double>& prev_service) {
  const std::vector<double> cur = service_snapshot();

  // Per-shard Theorem-1 monitor, same window proxy as the single engine:
  // only pairs where both flows received service in the window count.
  std::vector<char> shard_busy(shards_.size(), 0);
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    const EngineStats es = shard_stats(k);
    shard_busy[k] = es.backlog > 0 ? 1 : 0;
    tele_->set_gauge(tel::GaugeId::kBacklogPackets,
                     static_cast<double>(es.backlog), k);
    tele_->set_gauge(tel::GaugeId::kServiceLagMax, es.max_service_lag, k);
    const std::vector<FlowId>& ids = shards_[k].global_ids;
    double gap = 0.0;
    double bound = 0.0;
    for (std::size_t a = 0; a < ids.size(); ++a) {
      const FlowId f = ids[a];
      const double df = cur[f] - prev_service[f];
      if (df <= 0.0) continue;
      for (std::size_t b2 = a + 1; b2 < ids.size(); ++b2) {
        const FlowId m = ids[b2];
        const double dm = cur[m] - prev_service[m];
        if (dm <= 0.0) continue;
        gap = std::max(gap,
                       std::abs(df / flow_weight_[f] - dm / flow_weight_[m]));
        bound = std::max(bound, fairness_bound(f, m));
      }
    }
    tele_->set_gauge(tel::GaugeId::kFairnessGap, gap, k);
    if (gap > tele_->gauge(tel::GaugeId::kFairnessGapMax, k))
      tele_->set_gauge(tel::GaugeId::kFairnessGapMax, gap, k);
    tele_->set_gauge(tel::GaugeId::kFairnessBound, bound, k);
  }

  // Root monitor: every served pair across the whole flow table, with the
  // hierarchical bound (cross-shard pairs carry both shards' eq.-65 slack).
  // The cross-shard bound additionally assumes both *shards* stay busy over
  // the window (a drained shard's virtual server idles, so its flows are no
  // longer continuously backlogged even if they received some service) —
  // require backlog on both home shards at the window end, which during a
  // monotone drain implies busyness throughout the window.
  double root_gap = 0.0;
  double root_bound = 0.0;
  for (FlowId f = 0; f < cur.size(); ++f) {
    const double df = cur[f] - prev_service[f];
    if (df <= 0.0) continue;
    for (FlowId m = f + 1; m < cur.size(); ++m) {
      const double dm = cur[m] - prev_service[m];
      if (dm <= 0.0) continue;
      if (shard_of_[f] != shard_of_[m] &&
          (!shard_busy[shard_of_[f]] || !shard_busy[shard_of_[m]]))
        continue;
      root_gap = std::max(
          root_gap, std::abs(df / flow_weight_[f] - dm / flow_weight_[m]));
      root_bound = std::max(root_bound, fairness_bound(f, m));
    }
  }
  prev_service = cur;
  tele_->set_gauge(tel::GaugeId::kRootFairnessGap, root_gap, 0);
  if (root_gap > tele_->gauge(tel::GaugeId::kRootFairnessGapMax, 0))
    tele_->set_gauge(tel::GaugeId::kRootFairnessGapMax, root_gap, 0);
  tele_->set_gauge(tel::GaugeId::kRootFairnessBound, root_bound, 0);
  tele_->set_gauge(tel::GaugeId::kOverloadWorst,
                   static_cast<double>(overload_state()), 0);

  const tel::TelemetrySnapshot snap = tele_->snapshot();
  if (stats_server_)
    stats_server_->publish(tel::to_prometheus(snap), tel::to_json(snap));
  if (opts_.stats_console) {
    const EngineStats total = stats();
    std::fprintf(stderr,
                 "[sfq stats] shards=%zu tx=%llu drops=%llu backlog=%llu "
                 "root_gap=%.3gms root_bound=%.3gms ov_worst=%d\n",
                 shards_.size(),
                 static_cast<unsigned long long>(total.transmitted),
                 static_cast<unsigned long long>(total.dropped() +
                                                 total.ingress_drops),
                 static_cast<unsigned long long>(total.backlog),
                 root_gap * 1e3, root_bound * 1e3, overload_state());
    for (std::size_t k = 0; k < shards_.size(); ++k) {
      const EngineStats es = shard_stats(k);
      const double occ =
          opts_.engine.buffer_limit > 0
              ? 100.0 * static_cast<double>(es.backlog) /
                    static_cast<double>(opts_.engine.buffer_limit)
              : 0.0;
      std::fprintf(stderr,
                   "[sfq shard %zu] tx=%llu drops=%llu backlog=%llu "
                   "occ=%.0f%% ov=%d gap=%.3gms bound=%.3gms\n",
                   k, static_cast<unsigned long long>(es.transmitted),
                   static_cast<unsigned long long>(es.dropped() +
                                                   es.ingress_drops),
                   static_cast<unsigned long long>(es.backlog), occ,
                   es.overload_state,
                   tele_->gauge(tel::GaugeId::kFairnessGap, k) * 1e3,
                   tele_->gauge(tel::GaugeId::kFairnessBound, k) * 1e3);
    }
  }
}

void ShardedEngine::rebalance_loop() {
  // H-SFQ root as a work-conserving rate server: the link splits over BUSY
  // shards in proportion to W_k. When every shard is busy — the window the
  // cross-shard bound covers — this equals the static R*W_k/W split, so the
  // bound's premise sees exactly the analyzed allocation.
  std::vector<char> busy(shards_.size(), 0);
  std::unique_lock<std::mutex> lock(bg_mu_);
  while (!bg_stop_) {
    bg_cv_.wait_for(lock,
                    std::chrono::duration<double>(opts_.rebalance_interval),
                    [this] { return bg_stop_; });
    if (bg_stop_) break;
    lock.unlock();
    double busy_w = 0.0;
    for (std::size_t k = 0; k < shards_.size(); ++k) {
      busy[k] = shards_[k].weight_sum > 0.0 &&
                shards_[k].engine->stats().backlog > 0;
      if (busy[k]) busy_w += shards_[k].weight_sum;
    }
    for (std::size_t k = 0; k < shards_.size(); ++k) {
      const double rate =
          busy[k] && busy_w > 0.0
              ? opts_.link_rate * shards_[k].weight_sum / busy_w
              : shards_[k].rate;  // idle (or empty) shard: static share
      shards_[k].rate_cell->store(rate, std::memory_order_relaxed);
    }
    lock.lock();
  }
  // Leave static shares behind so a post-stop drain paces predictably.
  lock.unlock();
  for (Shard& s : shards_)
    s.rate_cell->store(s.rate, std::memory_order_relaxed);
}

}  // namespace sfq::rt
