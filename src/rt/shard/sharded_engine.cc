#include "rt/shard/sharded_engine.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "net/rate_profile.h"
#include "obs/telemetry/exposition.h"
#include "stats/fairness.h"

namespace sfq::rt {

namespace tel = obs::telemetry;

namespace {

// Per-shard service rate with a rebalance-writable cell: the root thread
// redistributes the link over busy shards by storing into the atomic while
// the shard dispatcher reads it per transmission. Relaxed is enough — a
// rate observed one transmission late only shifts that packet's pacing
// deadline, never the ledger.
class AtomicRate final : public net::RateProfile {
 public:
  explicit AtomicRate(double rate) : rate_(rate) {}

  Time finish_time(Time start, double bits) override {
    return start + bits / rate_.load(std::memory_order_relaxed);
  }
  double work(Time t1, Time t2) override {
    return (t2 - t1) * rate_.load(std::memory_order_relaxed);
  }
  double average_rate() const override {
    return rate_.load(std::memory_order_relaxed);
  }

  std::atomic<double>& cell() { return rate_; }

 private:
  std::atomic<double> rate_;
};

bool bad(double v) { return !std::isfinite(v); }

}  // namespace

ShardedEngine::ShardedEngine(const SchedulerFactory& factory,
                             std::vector<ShardFlow> flows,
                             ShardedEngineOptions opts)
    : opts_(opts), router_(opts.shards) {
  if (opts_.shards == 0)
    throw std::invalid_argument("ShardedEngine: shards must be >= 1");
  if (!(opts_.link_rate > 0.0))
    throw std::invalid_argument("ShardedEngine: link_rate must be > 0");
  if (!factory)
    throw std::invalid_argument("ShardedEngine: null scheduler factory");
  if (flows.empty())
    throw std::invalid_argument("ShardedEngine: at least one flow required");
  for (const auto& sf : opts_.shard_faults)
    if (sf.shard >= opts_.shards)
      throw std::invalid_argument(
          "ShardedEngine: shard fault targets a shard index out of range");
  if (opts_.failover.enabled) {
    if (bad(opts_.failover.poll_interval) ||
        opts_.failover.poll_interval <= 0.0)
      throw std::invalid_argument(
          "ShardedEngine: failover poll_interval must be finite and > 0");
    if (bad(opts_.failover.restart_backoff) ||
        opts_.failover.restart_backoff < 0.0)
      throw std::invalid_argument(
          "ShardedEngine: failover restart_backoff must be finite and >= 0");
  }

  // Pass 1: route every global flow and accumulate per-shard weight sums —
  // the H-SFQ root weights W_k that fix each shard's rate share.
  const std::size_t n = flows.size();
  shard_of_ = std::make_unique<std::atomic<uint32_t>[]>(n);
  home_of_.resize(n);
  flow_weight_.resize(n);
  flow_max_bits_.resize(n);
  shards_.reserve(opts_.shards);
  for (std::size_t k = 0; k < opts_.shards; ++k)
    shards_.push_back(std::make_unique<Shard>());
  std::vector<double> wsum(opts_.shards, 0.0);
  for (FlowId f = 0; f < n; ++f) {
    const std::size_t k = router_.shard_of(f);
    home_of_[f] = k;
    shard_of_[f].store(static_cast<uint32_t>(k), std::memory_order_relaxed);
    flow_weight_[f] = flows[f].weight;
    flow_max_bits_[f] = flows[f].max_packet_bits;
    wsum[k] += flows[f].weight;
    total_weight_ += flows[f].weight;
  }
  if (!(total_weight_ > 0.0))
    throw std::invalid_argument("ShardedEngine: total weight must be > 0");

  // Pass 2: one scheduler per shard at its weight-share rate. A shard that
  // drew no flows keeps a 1/N fallback share so hash-unmapped (unknown-flow)
  // traffic routed there still drains into the drop ledger instead of
  // wedging a zero-rate link.
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    Shard& s = *shards_[k];
    const double share = wsum[k] > 0.0
                             ? wsum[k] / total_weight_
                             : 1.0 / static_cast<double>(shards_.size());
    s.weight_sum.store(wsum[k], std::memory_order_relaxed);
    s.rate.store(opts_.link_rate * share, std::memory_order_relaxed);
    s.sched = factory(k, share);
    if (!s.sched)
      throw std::invalid_argument("ShardedEngine: factory returned null");
  }

  // Pass 3: unified registration — EVERY flow on EVERY shard, ascending
  // global id (so local id == global id everywhere), then deactivate the
  // non-resident ones. Replay tooling rebuilds a shard's scheduler by
  // repeating exactly this walk. Deactivated flows keep a FlowState slot,
  // so a later migration re-activates them with the rejoin rule instead of
  // needing a new registration.
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    Shard& s = *shards_[k];
    for (FlowId f = 0; f < n; ++f) {
      const FlowId local = s.sched->add_flow(
          flows[f].weight, flows[f].max_packet_bits, flows[f].name);
      if (local != f)
        throw std::logic_error(
            "ShardedEngine: discipline does not allocate sequential flow ids");
      if (home_of_[f] == k)
        s.global_ids.push_back(f);
      else
        s.sched->remove_flow(f, 0.0);
    }
  }

  // eq.-65 slack per shard: treating shard k as a virtual server of rate
  // R*W_k/W, its service fluctuation adds (l_k^max + sum_{g in k} l_g^max)
  // worth of bits at weight W_k to any cross-shard Theorem-1 comparison.
  for (auto& sp : shards_) {
    Shard& s = *sp;
    const double w = s.weight_sum.load(std::memory_order_relaxed);
    if (!(w > 0.0)) continue;
    double lmax = 0.0;
    double lsum = 0.0;
    for (FlowId g : s.global_ids) {
      lmax = std::max(lmax, flow_max_bits_[g]);
      lsum += flow_max_bits_[g];
    }
    s.slack.store((lmax + lsum) / w, std::memory_order_relaxed);
  }

  // Pass 4: engine epoch 0 per shard. The epochs vector is reserved for the
  // whole run (one slot per allowed cold restart) so a supervisor push_back
  // never reallocates under a concurrent stats()/flow_tx_bits() reader.
  const std::size_t max_epochs =
      1 + (opts_.failover.enabled ? opts_.failover.shard_restart_budget : 0);
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    Shard& s = *shards_[k];
    s.epochs.reserve(max_epochs);
    auto eng = make_engine_epoch(k, s.rate.load(std::memory_order_relaxed),
                                 /*initial=*/true);
    s.live.store(eng.get(), std::memory_order_release);
    s.epochs.push_back(std::move(eng));
    s.epoch_count.store(1, std::memory_order_release);
  }
  last_shard_.resize(std::max<std::size_t>(opts_.engine.producers, 1));
}

std::unique_ptr<RtEngine> ShardedEngine::make_engine_epoch(std::size_t k,
                                                           double rate,
                                                           bool initial) {
  EngineOptions eo = opts_.engine;
  eo.telemetry_shard = k;
  eo.stats_interval = 0.0;
  eo.stats_port = -1;
  eo.stats_console = false;
  if (initial) {
    // Merge the shard-targeted fault plans aimed at this shard.
    for (const auto& sf : opts_.shard_faults) {
      if (sf.shard != k) continue;
      auto& fp = eo.fault_plan;
      fp.jumps.insert(fp.jumps.end(), sf.plan.jumps.begin(),
                      sf.plan.jumps.end());
      fp.skews.insert(fp.skews.end(), sf.plan.skews.begin(),
                      sf.plan.skews.end());
      fp.pauses.insert(fp.pauses.end(), sf.plan.pauses.begin(),
                       sf.plan.pauses.end());
      fp.kills.insert(fp.kills.end(), sf.plan.kills.begin(),
                      sf.plan.kills.end());
    }
  } else {
    // A cold-restarted epoch starts a fresh time axis (its WallClock epoch
    // is its construction instant), so the scripted faults that applied to
    // the original run — including the kill that ended it — do not re-fire.
    eo.fault_plan = RtFaultPlan{};
  }
  auto profile = std::make_unique<AtomicRate>(rate);
  Shard& s = *shards_[k];
  s.rate_cell.store(&profile->cell(), std::memory_order_release);
  auto eng =
      std::make_unique<RtEngine>(*s.sched, std::move(profile), std::move(eo));
  if (tele_) eng->set_telemetry(tele_);
  if (capture_out_) eng->set_capture(&(*capture_out_)[k]);
  return eng;
}

std::unique_ptr<ShardedEngine> ShardedEngine::try_create(
    const SchedulerFactory& factory, std::vector<ShardFlow> flows,
    ShardedEngineOptions opts, std::string* error) {
  try {
    return std::make_unique<ShardedEngine>(factory, std::move(flows), opts);
  } catch (const std::exception& e) {
    if (error) *error = e.what();
    return nullptr;
  }
}

ShardedEngine::~ShardedEngine() {
  if (running()) stop(StopMode::kAbandon);
  if (supervisor_) supervisor_->stop();
  {
    std::lock_guard<std::mutex> lock(bg_mu_);
    bg_stop_ = true;
  }
  bg_cv_.notify_all();
  if (rebal_thread_.joinable()) rebal_thread_.join();
  if (stats_thread_.joinable()) stats_thread_.join();
  if (stats_server_) stats_server_->stop();
}

std::size_t ShardedEngine::route(const Packet& p, std::size_t i) {
  // In-table flows use the (versioned) routing table; unknown global ids
  // fall back to the hash so they deterministically land (and get ledgered
  // as kUnknownFlow) on the same shard every time. Recording the shard even
  // for attempts that end up rejected keeps the note_* hooks resolving
  // against the shard that actually saw the attempt.
  const std::size_t k = p.flow < home_of_.size()
                            ? shard_of_[p.flow].load(std::memory_order_acquire)
                            : router_.shard_of(p.flow);
  last_shard_[i].shard = k;
  return k;
}

bool ShardedEngine::offer(std::size_t i, Packet p) {
  const std::size_t k = route(p, i);
  return live(k).offer(i, std::move(p));
}

bool ShardedEngine::offer_wait(std::size_t i, Packet p) {
  const std::size_t k = route(p, i);
  return live(k).offer_wait(i, std::move(p));
}

OfferStatus ShardedEngine::try_offer(std::size_t i, const Packet& p) {
  const std::size_t k = route(p, i);
  return live(k).try_offer(i, p);
}

void ShardedEngine::note_offer_retry(std::size_t i) {
  live(last_shard_[i].shard).note_offer_retry(i);
}

void ShardedEngine::note_offer_abandoned(std::size_t i) {
  live(last_shard_[i].shard).note_offer_abandoned(i);
}

void ShardedEngine::set_telemetry(tel::Telemetry* plane) {
  if (running())
    throw std::logic_error("ShardedEngine: set_telemetry while running");
  if (plane && plane->shards() < shards_.size())
    throw std::invalid_argument(
        "ShardedEngine: telemetry plane has fewer shards than the engine");
  tele_ = plane;
  for (auto& sp : shards_) sp->epochs.front()->set_telemetry(plane);
}

void ShardedEngine::set_capture(std::vector<std::vector<CaptureOp>>* out) {
  if (running())
    throw std::logic_error("ShardedEngine: set_capture while running");
  capture_out_ = out;
  if (out == nullptr) {
    for (auto& sp : shards_) sp->epochs.front()->set_capture(nullptr);
    return;
  }
  // The outer vector must not reallocate afterwards — each shard engine
  // (and every restarted epoch) holds a pointer into it for the run.
  out->resize(shards_.size());
  for (std::size_t k = 0; k < shards_.size(); ++k)
    shards_[k]->epochs.front()->set_capture(&(*out)[k]);
}

void ShardedEngine::start() {
  if (started_) throw std::logic_error("ShardedEngine: start() called twice");
  started_ = true;
  for (auto& sp : shards_) sp->epochs.front()->start();
  running_.store(true, std::memory_order_release);
  if (opts_.failover.enabled) {
    supervisor_ = std::make_unique<ShardSupervisor>(*this, opts_.failover);
    supervisor_->start();
  }
  if (tele_ && (opts_.stats_interval > 0.0 || opts_.stats_port >= 0)) {
    if (opts_.stats_port >= 0) {
      stats_server_ = std::make_unique<tel::StatsServer>();
      stats_server_->start(static_cast<uint16_t>(opts_.stats_port));
    }
    bg_stop_ = false;
    stats_thread_ = std::thread([this] { stats_loop(); });
  }
  if (opts_.rebalance && shards_.size() > 1)
    rebal_thread_ = std::thread([this] { rebalance_loop(); });
}

void ShardedEngine::stop(StopMode mode) {
  std::lock_guard<std::mutex> lock(stop_mu_);
  if (!running_.load(std::memory_order_acquire)) return;
  // The supervisor settles first: no migration or restart may race the
  // shard stops below, and a failover in flight is allowed to finish so the
  // migrated-packet ledger closes (migrated_in == migrated_out).
  if (supervisor_) supervisor_->stop();
  // Stop every shard engine concurrently: a kDrain stop lets all shards
  // serve out their backlogs in parallel instead of serializing N drains.
  // Retired epochs are stopped too (idempotent; usually already settled by
  // the supervisor). The rebalance thread keeps running through the drain
  // (idle shards cede rate to draining ones, which only speeds the drain
  // up) and is settled before the stats thread's final publication.
  std::vector<std::thread> stoppers;
  stoppers.reserve(shards_.size());
  for (auto& sp : shards_)
    stoppers.emplace_back([&sp, mode] {
      for (auto& e : sp->epochs) e->stop(mode);
    });
  for (std::thread& t : stoppers) t.join();
  {
    std::lock_guard<std::mutex> block(bg_mu_);
    bg_stop_ = true;
  }
  bg_cv_.notify_all();
  if (rebal_thread_.joinable()) rebal_thread_.join();
  if (stats_thread_.joinable()) stats_thread_.join();
  running_.store(false, std::memory_order_release);
}

bool ShardedEngine::accepting() const {
  for (std::size_t k = 0; k < shards_.size(); ++k)
    if (live(k).accepting()) return true;
  return false;
}

bool ShardedEngine::stalled() const {
  if (supervisor_) return supervisor_->wedged();
  for (std::size_t k = 0; k < shards_.size(); ++k)
    if (live(k).stalled()) return true;
  return false;
}

bool ShardedEngine::shard_stalled(std::size_t k) const {
  return live(k).stalled();
}

int ShardedEngine::overload_state() const {
  int worst = 0;
  for (std::size_t k = 0; k < shards_.size(); ++k)
    worst = std::max(worst, live(k).overload_state());
  return worst;
}

EngineStats ShardedEngine::stats() const {
  EngineStats total;
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    const EngineStats es = shard_stats(k);
    total.ingress_pushed += es.ingress_pushed;
    total.ingress_drops += es.ingress_drops;
    total.accepted += es.accepted;
    total.transmitted += es.transmitted;
    total.tx_bits += es.tx_bits;
    total.abandoned += es.abandoned;
    for (std::size_t c = 0; c < obs::kDropCauseCount; ++c)
      total.drops[c] += es.drops[c];
    total.migrated_in += es.migrated_in;
    total.migrated_out += es.migrated_out;
    total.backlog += es.backlog;
    total.max_service_lag = std::max(total.max_service_lag,
                                     es.max_service_lag);
    total.stalls += es.stalls;
    total.recoveries += es.recoveries;
    if (es.last_stall_stage != StallStage::kNone)
      total.last_stall_stage = es.last_stall_stage;
    total.overload_state = std::max(total.overload_state, es.overload_state);
  }
  return total;
}

EngineStats ShardedEngine::shard_stats(std::size_t k) const {
  // Sum across the shard's engine epochs: a retired (killed) epoch keeps
  // its frozen ledger, the live epoch contributes the current one.
  const Shard& s = *shards_[k];
  const std::size_t epochs = s.epoch_count.load(std::memory_order_acquire);
  EngineStats total;
  for (std::size_t e = 0; e < epochs; ++e) {
    const EngineStats es = s.epochs[e]->stats();
    total.ingress_pushed += es.ingress_pushed;
    total.ingress_drops += es.ingress_drops;
    total.accepted += es.accepted;
    total.transmitted += es.transmitted;
    total.tx_bits += es.tx_bits;
    total.abandoned += es.abandoned;
    for (std::size_t c = 0; c < obs::kDropCauseCount; ++c)
      total.drops[c] += es.drops[c];
    total.migrated_in += es.migrated_in;
    total.migrated_out += es.migrated_out;
    total.backlog += es.backlog;
    total.max_service_lag =
        std::max(total.max_service_lag, es.max_service_lag);
    total.stalls += es.stalls;
    total.recoveries += es.recoveries;
    if (es.last_stall_stage != StallStage::kNone)
      total.last_stall_stage = es.last_stall_stage;
    total.overload_state = std::max(total.overload_state, es.overload_state);
  }
  return total;
}

double ShardedEngine::flow_tx_bits(FlowId global) const {
  if (global >= home_of_.size()) return 0.0;
  // Unified ids: a migrated flow accrues service wherever it lived, so the
  // coherent per-flow axis is the sum over every shard and epoch.
  double bits = 0.0;
  for (const auto& sp : shards_) {
    const std::size_t epochs = sp->epoch_count.load(std::memory_order_acquire);
    for (std::size_t e = 0; e < epochs; ++e)
      bits += sp->epochs[e]->flow_tx_bits(global);
  }
  return bits;
}

std::vector<double> ShardedEngine::service_snapshot() const {
  std::vector<double> out(home_of_.size(), 0.0);
  for (const auto& sp : shards_) {
    const std::size_t epochs = sp->epoch_count.load(std::memory_order_acquire);
    for (std::size_t e = 0; e < epochs; ++e) {
      const std::vector<double> part = sp->epochs[e]->service_snapshot();
      for (std::size_t f = 0; f < out.size() && f < part.size(); ++f)
        out[f] += part[f];
    }
  }
  return out;
}

double ShardedEngine::fairness_bound(FlowId f, FlowId m) const {
  // Same shard: the flows share one SFQ server, plain Theorem 1. Across
  // shards: each shard is an eq.-65 virtual server, so both shards' service
  // fluctuation slack joins the bound (docs/REALTIME.md derives this).
  // Residency (and slack) reflect the current routing version.
  double b = stats::sfq_fairness_bound(flow_max_bits_[f], flow_weight_[f],
                                       flow_max_bits_[m], flow_weight_[m]);
  const std::size_t kf = shard_of(f);
  const std::size_t km = shard_of(m);
  if (kf != km) b += shard_slack(kf) + shard_slack(km);
  return b;
}

void ShardedEngine::stats_loop() {
  const double interval =
      opts_.stats_interval > 0.0 ? opts_.stats_interval : 0.5;
  std::vector<double> prev_service = service_snapshot();
  std::unique_lock<std::mutex> lock(bg_mu_);
  while (!bg_stop_) {
    bg_cv_.wait_for(lock, std::chrono::duration<double>(interval),
                    [this] { return bg_stop_; });
    lock.unlock();
    publish_stats(prev_service);
    lock.lock();
  }
  lock.unlock();
  // Final pass after stop() joined every shard dispatcher, so the published
  // snapshot matches the settled summed ledger.
  publish_stats(prev_service);
}

void ShardedEngine::publish_stats(std::vector<double>& prev_service) {
  const std::vector<double> cur = service_snapshot();

  // Per-shard Theorem-1 monitor, same window proxy as the single engine:
  // only pairs where both flows received service in the window count.
  std::vector<char> shard_busy(shards_.size(), 0);
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    const EngineStats es = shard_stats(k);
    shard_busy[k] = es.backlog > 0 ? 1 : 0;
    tele_->set_gauge(tel::GaugeId::kBacklogPackets,
                     static_cast<double>(es.backlog), k);
    tele_->set_gauge(tel::GaugeId::kServiceLagMax, es.max_service_lag, k);
    // Live stall visibility (docs/OBSERVABILITY.md): a permanently dead
    // dispatcher is discoverable mid-run, not just after stop().
    tele_->set_gauge(tel::GaugeId::kShardStalled,
                     live(k).stalled() ? 1.0 : 0.0, k);
    tele_->set_gauge(tel::GaugeId::kLastStallStage,
                     static_cast<double>(es.last_stall_stage), k);
    const std::vector<FlowId>& ids = shards_[k]->global_ids;
    double gap = 0.0;
    double bound = 0.0;
    for (std::size_t a = 0; a < ids.size(); ++a) {
      const FlowId f = ids[a];
      const double df = cur[f] - prev_service[f];
      if (df <= 0.0) continue;
      for (std::size_t b2 = a + 1; b2 < ids.size(); ++b2) {
        const FlowId m = ids[b2];
        const double dm = cur[m] - prev_service[m];
        if (dm <= 0.0) continue;
        gap = std::max(gap,
                       std::abs(df / flow_weight_[f] - dm / flow_weight_[m]));
        bound = std::max(bound, fairness_bound(f, m));
      }
    }
    tele_->set_gauge(tel::GaugeId::kFairnessGap, gap, k);
    if (gap > tele_->gauge(tel::GaugeId::kFairnessGapMax, k))
      tele_->set_gauge(tel::GaugeId::kFairnessGapMax, gap, k);
    tele_->set_gauge(tel::GaugeId::kFairnessBound, bound, k);
  }

  // Root monitor: every served pair across the whole flow table, with the
  // hierarchical bound (cross-shard pairs carry both shards' eq.-65 slack).
  // The cross-shard bound additionally assumes both *shards* stay busy over
  // the window (a drained shard's virtual server idles, so its flows are no
  // longer continuously backlogged even if they received some service) —
  // require backlog on both home shards at the window end, which during a
  // monotone drain implies busyness throughout the window. Windows that
  // overlap a migration legitimately carry the extra migration slack.
  const double mig_slack = migration_slack();
  double root_gap = 0.0;
  double root_bound = 0.0;
  for (FlowId f = 0; f < cur.size(); ++f) {
    const double df = cur[f] - prev_service[f];
    if (df <= 0.0) continue;
    for (FlowId m = f + 1; m < cur.size(); ++m) {
      const double dm = cur[m] - prev_service[m];
      if (dm <= 0.0) continue;
      const std::size_t kf = shard_of(f);
      const std::size_t km = shard_of(m);
      if (kf != km && (!shard_busy[kf] || !shard_busy[km])) continue;
      root_gap = std::max(
          root_gap, std::abs(df / flow_weight_[f] - dm / flow_weight_[m]));
      root_bound = std::max(root_bound, fairness_bound(f, m) + mig_slack);
    }
  }
  prev_service = cur;
  tele_->set_gauge(tel::GaugeId::kRootFairnessGap, root_gap, 0);
  if (root_gap > tele_->gauge(tel::GaugeId::kRootFairnessGapMax, 0))
    tele_->set_gauge(tel::GaugeId::kRootFairnessGapMax, root_gap, 0);
  tele_->set_gauge(tel::GaugeId::kRootFairnessBound, root_bound, 0);
  tele_->set_gauge(tel::GaugeId::kOverloadWorst,
                   static_cast<double>(overload_state()), 0);

  const tel::TelemetrySnapshot snap = tele_->snapshot();
  if (stats_server_)
    stats_server_->publish(tel::to_prometheus(snap), tel::to_json(snap));
  if (opts_.stats_console) {
    const EngineStats total = stats();
    std::fprintf(stderr,
                 "[sfq stats] shards=%zu tx=%llu drops=%llu backlog=%llu "
                 "root_gap=%.3gms root_bound=%.3gms ov_worst=%d failovers=%llu\n",
                 shards_.size(),
                 static_cast<unsigned long long>(total.transmitted),
                 static_cast<unsigned long long>(total.dropped() +
                                                 total.ingress_drops),
                 static_cast<unsigned long long>(total.backlog),
                 root_gap * 1e3, root_bound * 1e3, overload_state(),
                 static_cast<unsigned long long>(shard_failovers()));
    for (std::size_t k = 0; k < shards_.size(); ++k) {
      const EngineStats es = shard_stats(k);
      const double occ =
          opts_.engine.buffer_limit > 0
              ? 100.0 * static_cast<double>(es.backlog) /
                    static_cast<double>(opts_.engine.buffer_limit)
              : 0.0;
      std::fprintf(stderr,
                   "[sfq shard %zu] tx=%llu drops=%llu backlog=%llu "
                   "occ=%.0f%% ov=%d stalled=%d stage=%s gap=%.3gms "
                   "bound=%.3gms\n",
                   k, static_cast<unsigned long long>(es.transmitted),
                   static_cast<unsigned long long>(es.dropped() +
                                                   es.ingress_drops),
                   static_cast<unsigned long long>(es.backlog), occ,
                   es.overload_state, live(k).stalled() ? 1 : 0,
                   to_string(es.last_stall_stage),
                   tele_->gauge(tel::GaugeId::kFairnessGap, k) * 1e3,
                   tele_->gauge(tel::GaugeId::kFairnessBound, k) * 1e3);
    }
  }
}

void ShardedEngine::rebalance_loop() {
  // H-SFQ root as a work-conserving rate server: the link splits over BUSY
  // shards in proportion to W_k. When every shard is busy — the window the
  // cross-shard bound covers — this equals the static R*W_k/W split, so the
  // bound's premise sees exactly the analyzed allocation. W_k and the
  // static shares are atomics because the supervisor re-weights them during
  // a failover; a rate observed one tick late only shifts pacing.
  std::vector<char> busy(shards_.size(), 0);
  std::vector<double> w(shards_.size(), 0.0);  // hoisted: ticks while the
                                               // allocation guard is armed
  std::unique_lock<std::mutex> lock(bg_mu_);
  while (!bg_stop_) {
    bg_cv_.wait_for(lock,
                    std::chrono::duration<double>(opts_.rebalance_interval),
                    [this] { return bg_stop_; });
    if (bg_stop_) break;
    lock.unlock();
    double busy_w = 0.0;
    for (std::size_t k = 0; k < shards_.size(); ++k) {
      w[k] = shards_[k]->weight_sum.load(std::memory_order_acquire);
      busy[k] = w[k] > 0.0 && live(k).stats().backlog > 0;
      if (busy[k]) busy_w += w[k];
    }
    for (std::size_t k = 0; k < shards_.size(); ++k) {
      const double rate =
          busy[k] && busy_w > 0.0
              ? opts_.link_rate * w[k] / busy_w
              : shards_[k]->rate.load(std::memory_order_acquire);
      shards_[k]->rate_cell.load(std::memory_order_acquire)
          ->store(rate, std::memory_order_relaxed);
    }
    lock.lock();
  }
  // Leave static shares behind so a post-stop drain paces predictably.
  lock.unlock();
  for (auto& sp : shards_)
    sp->rate_cell.load(std::memory_order_acquire)
        ->store(sp->rate.load(std::memory_order_acquire),
                std::memory_order_relaxed);
}

}  // namespace sfq::rt
