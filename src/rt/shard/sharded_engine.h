// Sharded multi-core RT engine (docs/REALTIME.md, "Sharding" section).
//
//   producer threads --SPSC rings--> dispatcher 0 --> scheduler 0 --> R*W0/W
//                    --SPSC rings--> dispatcher 1 --> scheduler 1 --> R*W1/W
//                    ...                 (one full RtEngine per shard)
//
// The single-dispatcher RtEngine serializes every packet through one thread;
// ShardedEngine partitions the flow table across N dispatcher shards with a
// stable flow->shard hash (rt/shard/shard_router.h) and composes them under
// an H-SFQ root: each shard is a virtual server whose service rate is its
// weight-sum fraction R*W_k/W of the link. The paper's eq. 65 makes an
// SFQ-scheduled virtual server itself Fluctuation Constrained, so Theorem 1
// recurses — the cross-shard gap between flows f (on shard A) and m (on
// shard B) over an interval where both stay backlogged and every shard is
// busy is bounded by
//
//   l_f/w_f + l_m/w_m + slack(A) + slack(B),
//   slack(k) = (l_k^max + sum_{g in k} l_g^max) / W_k
//
// (units: bits per unit weight, same axis as the single-engine Theorem-1
// monitor). Same-shard pairs keep the plain Theorem-1 bound. The root stats
// thread validates both live: per-shard fairness gauges under each shard's
// telemetry label, root gauges (fairness.root_gap / root_bound) at shard 0.
//
// Each shard is a complete PR-3/PR-7 engine — its own scheduler, ingress
// rings, overload machine, and watchdog — so every robustness plane stays
// lock-free and shard-local; the only cross-shard coupling is the routing
// table (versioned: immutable except for supervisor failover remaps), the
// optional root rebalance thread, which redistributes R over busy shards
// through per-shard atomic rates, and the shard supervisor
// (rt/shard/shard_supervisor.h), which fences dead shards, rehomes their
// flows onto survivors and cold-restarts them as fresh engine epochs.
//
// Flow registration is UNIFIED: every flow is registered on every shard's
// scheduler (shard-local id == global id), with non-resident flows
// immediately deactivated (remove_flow). A misrouted packet lands as a
// kUnknownFlow drop; a migrated flow is adopted by re-activating it
// (rejoin_flow — the paper's tag re-anchoring), so failover needs no id
// remapping and tag history survives wherever a flow has ever lived.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/scheduler.h"
#include "obs/telemetry/stats_server.h"
#include "obs/telemetry/telemetry.h"
#include "rt/engine.h"
#include "rt/ingress_target.h"
#include "rt/shard/shard_router.h"
#include "rt/shard/shard_supervisor.h"

namespace sfq::rt {

// Global flow table entry: ShardedEngine owns flow registration (unlike
// RtEngine, which takes a pre-registered scheduler) because flows must land
// on their hash-designated shard's scheduler with remapped local ids.
struct ShardFlow {
  double weight = 1.0;
  double max_packet_bits = 0.0;  // l_f^max, drives the fairness bounds
  std::string name;
};

struct ShardedEngineOptions {
  std::size_t shards = 2;
  // Aggregate link rate R (bits/s), split across shards by weight-sum
  // fraction. Required > 0.
  double link_rate = 0.0;
  // Per-shard engine template: producers/ring_capacity/buffer_limit/
  // overload/watchdog/fault_plan apply to EVERY shard (buffer_limit is
  // per shard). telemetry_shard and the stats fields are overridden — the
  // root owns stats publication, each shard k reports under label k.
  EngineOptions engine;
  // Root stats publication (requires set_telemetry): per-shard + root
  // fairness gauges, single Prometheus/JSON endpoint, per-shard occupancy
  // console lines. Same semantics as EngineOptions' stats fields.
  double stats_interval = 0.0;
  int stats_port = -1;
  bool stats_console = false;
  // H-SFQ root rebalance: periodically redistribute R over busy
  // (backlogged) shards in proportion to W_k, so a shard with idle flows
  // does not strand its rate share. During all-busy intervals — the windows
  // the cross-shard bound covers — the allocation equals the static
  // R*W_k/W split exactly.
  bool rebalance = true;
  double rebalance_interval = 0.002;
  // Shard-targeted rt faults: `plan` is appended to the engine template's
  // fault_plan for shard `shard` only (chaos shard-kill scenarios and
  // sfq_serve --fault-kill AT,SHARD ride through this).
  struct ShardFault {
    std::size_t shard = 0;
    RtFaultPlan plan;
  };
  std::vector<ShardFault> shard_faults;
  // Shard failover (rt/shard/shard_supervisor.h): when enabled, a dead
  // shard is fenced, its flows rehomed onto survivors and a cold restart
  // attempted, instead of wedging the run.
  FailoverOptions failover;
};

class ShardedEngine : public IngressTarget {
 public:
  // Builds shard k's scheduler; `rate_share` is the shard's fraction of
  // link_rate (useful for disciplines that take an assumed capacity). Flows
  // are registered by ShardedEngine afterwards: EVERY flow on EVERY shard in
  // ascending global-id order (local id == global id), with non-resident
  // flows deactivated — replay tooling rebuilds a shard by repeating that
  // walk. The discipline must support remove_flow/rejoin_flow (all the
  // library's per-flow disciplines do) for deactivation and failover.
  using SchedulerFactory =
      std::function<std::unique_ptr<Scheduler>(std::size_t shard,
                                               double rate_share)>;

  // Throws std::invalid_argument on malformed options (rt::validate on the
  // engine template, plus the sharding fields); try_create is the no-throw
  // path.
  ShardedEngine(const SchedulerFactory& factory, std::vector<ShardFlow> flows,
                ShardedEngineOptions opts);
  static std::unique_ptr<ShardedEngine> try_create(
      const SchedulerFactory& factory, std::vector<ShardFlow> flows,
      ShardedEngineOptions opts, std::string* error = nullptr);
  ~ShardedEngine() override;  // stop(kAbandon) if still running

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  // Producer API (rt/ingress_target.h): routes by the packet's GLOBAL flow
  // id to its home shard and offers the remapped (local-id) packet to that
  // shard's ring for slot i. Unknown global ids route by hash unmapped and
  // land as kUnknownFlow drops on the target shard, keeping the seven-cause
  // ledger exact. note_* hooks resolve against the shard producer i's most
  // recent attempt routed to (per-producer slot state; slots are
  // single-threaded by contract).
  bool offer(std::size_t i, Packet p) override;
  bool offer_wait(std::size_t i, Packet p) override;
  OfferStatus try_offer(std::size_t i, const Packet& p) override;
  void note_offer_retry(std::size_t i) override;
  void note_offer_abandoned(std::size_t i) override;

  // Attaches the telemetry plane to every shard engine: shard k's cells,
  // histograms and gauges carry label k (TelemetryOptions::shards must be
  // >= shards()). Attach before start(); nullptr detaches.
  void set_telemetry(obs::telemetry::Telemetry* plane);
  // Differential-replay capture: (*out)[k] receives shard k's operation
  // sequence. Attach before start(); read only after stop() returned.
  void set_capture(std::vector<std::vector<CaptureOp>>* out);

  // One run per engine. stop() stops every shard concurrently (kDrain lets
  // each shard serve out its backlog in parallel), then settles the root
  // stats thread so its final publication matches the summed ledger.
  void start();
  void stop(StopMode mode = StopMode::kDrain);
  bool running() const { return running_.load(std::memory_order_acquire); }
  bool accepting() const override;
  // Without failover: any shard watchdog-stopped permanently. With failover
  // enabled, a dead shard is the supervisor's to handle — stalled() then
  // reports only an unrecoverable run (ShardSupervisor::wedged: no survivor
  // left, or a migration step failed terminally).
  bool stalled() const;
  // Live epoch of shard k died permanently (killed / budget-exhausted) and
  // has not been restarted (rt.shard_stalled gauge mirrors this).
  bool shard_stalled(std::size_t k) const;
  int overload_state() const;  // max (worst) across shards

  Time now() const override { return live(0).now(); }
  std::size_t producers() const override { return opts_.engine.producers; }

  // Summed ledger across shards AND engine epochs (a restarted shard's
  // retired epoch keeps its frozen ledger). Exact after stop(): every
  // identity the single-engine EngineStats documents holds for the sums
  // because each epoch's ledger is exact, every offer lands on exactly one
  // engine, and migrated_in == migrated_out once all migrations settled.
  // max_service_lag is the max, overload_state the max, last_stall_stage
  // the most recent shard diagnosis.
  EngineStats stats() const;
  EngineStats shard_stats(std::size_t k) const;

  std::size_t shards() const { return shards_.size(); }
  // Current (versioned) routing: supervisor remaps flip these atomically.
  std::size_t shard_of(FlowId global) const {
    return shard_of_[global].load(std::memory_order_acquire);
  }
  // Primary (hash) placement, before any failover remap.
  std::size_t home_shard_of(FlowId global) const { return home_of_[global]; }
  // Unified registration: shard-local ids equal global ids.
  FlowId local_id(FlowId global) const { return global; }
  std::size_t flow_count() const { return home_of_.size(); }
  // Bumped on every routing remap (failover evacuation or rehome-back).
  uint64_t route_version() const {
    return route_version_.load(std::memory_order_acquire);
  }
  Scheduler& scheduler(std::size_t k) { return *shards_[k]->sched; }
  // Live engine epoch of shard k (the restarted engine after a failover).
  RtEngine& engine(std::size_t k) { return live(k); }
  const RtEngine& engine(std::size_t k) const { return live(k); }
  // Engine epochs of shard k, oldest first; back() is the live one.
  std::size_t engine_epochs(std::size_t k) const {
    return shards_[k]->epoch_count.load(std::memory_order_acquire);
  }

  // Failover plumbing (all 0/false when failover is disabled).
  bool failover_enabled() const { return supervisor_ != nullptr; }
  uint64_t shard_failovers() const {
    return supervisor_ ? supervisor_->failovers() : 0;
  }
  uint64_t flows_rehomed() const {
    return supervisor_ ? supervisor_->flows_rehomed() : 0;
  }
  // Worst per-epoch migration slack (seconds): the extra term windows
  // overlapping a migration may add to fairness_bound (see
  // shard_supervisor.h for the derivation).
  double migration_slack() const {
    return supervisor_ ? supervisor_->migration_slack() : 0.0;
  }
  const ShardSupervisor* supervisor() const { return supervisor_.get(); }

  // Per-flow service in GLOBAL flow-id order (fetched from the home shard
  // under the local id), so wall-clock fairness checks read one coherent
  // axis across shards.
  double flow_tx_bits(FlowId global) const;
  std::vector<double> service_snapshot() const;

  // H-SFQ bound plumbing. shard_weight(k) = W_k; shard_slack(k) is the
  // eq.-65 virtual-server term (l_k^max + sum_g l_g^max)/W_k;
  // fairness_bound(f, m) returns the Theorem-1 bound for same-shard pairs
  // and adds both shards' slack for cross-shard pairs (global flow ids).
  // All three track the CURRENT residency — the supervisor re-weights W_k
  // and recomputes slack on every migration.
  double shard_weight(std::size_t k) const {
    return shards_[k]->weight_sum.load(std::memory_order_acquire);
  }
  double shard_slack(std::size_t k) const {
    return shards_[k]->slack.load(std::memory_order_acquire);
  }
  double fairness_bound(FlowId f, FlowId m) const;

  // Port the root stats endpoint bound (0 when disabled).
  uint16_t stats_endpoint_port() const {
    return stats_server_ ? stats_server_->port() : 0;
  }

 private:
  friend class ShardSupervisor;  // fences/harvests/restarts shards

  struct Shard {
    std::unique_ptr<Scheduler> sched;
    // Engine epochs over `sched`, oldest first: a cold restart pushes a
    // fresh RtEngine and flips `live`; retired epochs stay alive so their
    // frozen ledgers keep summing and raw pointers held by producers stay
    // valid. Mutated only by the supervisor thread (or construction);
    // readers go through `live` / `epoch_count`.
    std::vector<std::unique_ptr<RtEngine>> epochs;
    std::atomic<RtEngine*> live{nullptr};
    std::atomic<std::size_t> epoch_count{0};
    std::vector<FlowId> global_ids;    // primary-resident flows (home set)
    std::atomic<double> weight_sum{0.0};  // W_k over current residents
    std::atomic<double> slack{0.0};       // eq.-65 slack, current residents
    std::atomic<double> rate{0.0};        // static share R*W_k/W_live
    // Rebalance handle into the live epoch's AtomicRate profile.
    std::atomic<std::atomic<double>*> rate_cell{nullptr};
  };
  // Producer slot i's most recently routed shard; written and read only by
  // producer i (slots are single-threaded), padded so neighbouring
  // producers never share a cache line.
  struct alignas(64) LastShard {
    std::size_t shard = 0;
  };

  std::size_t route(const Packet& p, std::size_t i);
  RtEngine& live(std::size_t k) const {
    return *shards_[k]->live.load(std::memory_order_acquire);
  }
  // Builds an engine epoch over shard k's scheduler at the given rate.
  // `initial` epochs take the shard-targeted fault plans; restart epochs get
  // an empty plan (their fresh WallClock would re-fire the kill otherwise).
  std::unique_ptr<RtEngine> make_engine_epoch(std::size_t k, double rate,
                                              bool initial);
  void stats_loop();
  void publish_stats(std::vector<double>& prev_service);
  void rebalance_loop();

  ShardedEngineOptions opts_;
  ShardRouter router_;
  // Versioned routing table: producers read it per packet, the supervisor
  // flips entries during a failover remap. home_of_ keeps the primary
  // (hash) placement for rehome-back decisions and replay tooling.
  std::unique_ptr<std::atomic<uint32_t>[]> shard_of_;
  std::vector<std::size_t> home_of_;
  std::atomic<uint64_t> route_version_{0};
  std::vector<double> flow_weight_;    // global flow table (immutable)
  std::vector<double> flow_max_bits_;
  double total_weight_ = 0.0;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<LastShard> last_shard_;

  obs::telemetry::Telemetry* tele_ = nullptr;
  // set_capture target, remembered so a restarted epoch re-attaches to the
  // same per-shard op stream (the capture stays one continuous transcript
  // across a migration epoch).
  std::vector<std::vector<CaptureOp>>* capture_out_ = nullptr;
  std::unique_ptr<ShardSupervisor> supervisor_;

  // Root background threads: stats publication and H-SFQ rebalance. Both
  // share one stop latch; stats_loop does a final pass after the shard
  // engines settled, mirroring RtEngine::stats_loop.
  std::unique_ptr<obs::telemetry::StatsServer> stats_server_;
  std::thread stats_thread_;
  std::thread rebal_thread_;
  std::mutex bg_mu_;
  std::condition_variable bg_cv_;
  bool bg_stop_ = false;

  bool started_ = false;
  std::mutex stop_mu_;
  std::atomic<bool> running_{false};
};

}  // namespace sfq::rt
