// Sharded multi-core RT engine (docs/REALTIME.md, "Sharding" section).
//
//   producer threads --SPSC rings--> dispatcher 0 --> scheduler 0 --> R*W0/W
//                    --SPSC rings--> dispatcher 1 --> scheduler 1 --> R*W1/W
//                    ...                 (one full RtEngine per shard)
//
// The single-dispatcher RtEngine serializes every packet through one thread;
// ShardedEngine partitions the flow table across N dispatcher shards with a
// stable flow->shard hash (rt/shard/shard_router.h) and composes them under
// an H-SFQ root: each shard is a virtual server whose service rate is its
// weight-sum fraction R*W_k/W of the link. The paper's eq. 65 makes an
// SFQ-scheduled virtual server itself Fluctuation Constrained, so Theorem 1
// recurses — the cross-shard gap between flows f (on shard A) and m (on
// shard B) over an interval where both stay backlogged and every shard is
// busy is bounded by
//
//   l_f/w_f + l_m/w_m + slack(A) + slack(B),
//   slack(k) = (l_k^max + sum_{g in k} l_g^max) / W_k
//
// (units: bits per unit weight, same axis as the single-engine Theorem-1
// monitor). Same-shard pairs keep the plain Theorem-1 bound. The root stats
// thread validates both live: per-shard fairness gauges under each shard's
// telemetry label, root gauges (fairness.root_gap / root_bound) at shard 0.
//
// Each shard is a complete PR-3/PR-7 engine — its own scheduler, ingress
// rings, overload machine, and watchdog — so every robustness plane stays
// lock-free and shard-local; the only cross-shard coupling is the routing
// table (immutable while running) and the optional root rebalance thread,
// which redistributes R over busy shards through per-shard atomic rates.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/scheduler.h"
#include "obs/telemetry/stats_server.h"
#include "obs/telemetry/telemetry.h"
#include "rt/engine.h"
#include "rt/ingress_target.h"
#include "rt/shard/shard_router.h"

namespace sfq::rt {

// Global flow table entry: ShardedEngine owns flow registration (unlike
// RtEngine, which takes a pre-registered scheduler) because flows must land
// on their hash-designated shard's scheduler with remapped local ids.
struct ShardFlow {
  double weight = 1.0;
  double max_packet_bits = 0.0;  // l_f^max, drives the fairness bounds
  std::string name;
};

struct ShardedEngineOptions {
  std::size_t shards = 2;
  // Aggregate link rate R (bits/s), split across shards by weight-sum
  // fraction. Required > 0.
  double link_rate = 0.0;
  // Per-shard engine template: producers/ring_capacity/buffer_limit/
  // overload/watchdog/fault_plan apply to EVERY shard (buffer_limit is
  // per shard). telemetry_shard and the stats fields are overridden — the
  // root owns stats publication, each shard k reports under label k.
  EngineOptions engine;
  // Root stats publication (requires set_telemetry): per-shard + root
  // fairness gauges, single Prometheus/JSON endpoint, per-shard occupancy
  // console lines. Same semantics as EngineOptions' stats fields.
  double stats_interval = 0.0;
  int stats_port = -1;
  bool stats_console = false;
  // H-SFQ root rebalance: periodically redistribute R over busy
  // (backlogged) shards in proportion to W_k, so a shard with idle flows
  // does not strand its rate share. During all-busy intervals — the windows
  // the cross-shard bound covers — the allocation equals the static
  // R*W_k/W split exactly.
  bool rebalance = true;
  double rebalance_interval = 0.002;
};

class ShardedEngine : public IngressTarget {
 public:
  // Builds shard k's scheduler; `rate_share` is the shard's fraction of
  // link_rate (useful for disciplines that take an assumed capacity). Flows
  // are registered by ShardedEngine afterwards, in ascending global-id
  // order — replay tooling reconstructs local ids by repeating that walk.
  using SchedulerFactory =
      std::function<std::unique_ptr<Scheduler>(std::size_t shard,
                                               double rate_share)>;

  // Throws std::invalid_argument on malformed options (rt::validate on the
  // engine template, plus the sharding fields); try_create is the no-throw
  // path.
  ShardedEngine(const SchedulerFactory& factory, std::vector<ShardFlow> flows,
                ShardedEngineOptions opts);
  static std::unique_ptr<ShardedEngine> try_create(
      const SchedulerFactory& factory, std::vector<ShardFlow> flows,
      ShardedEngineOptions opts, std::string* error = nullptr);
  ~ShardedEngine() override;  // stop(kAbandon) if still running

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  // Producer API (rt/ingress_target.h): routes by the packet's GLOBAL flow
  // id to its home shard and offers the remapped (local-id) packet to that
  // shard's ring for slot i. Unknown global ids route by hash unmapped and
  // land as kUnknownFlow drops on the target shard, keeping the seven-cause
  // ledger exact. note_* hooks resolve against the shard producer i's most
  // recent attempt routed to (per-producer slot state; slots are
  // single-threaded by contract).
  bool offer(std::size_t i, Packet p) override;
  bool offer_wait(std::size_t i, Packet p) override;
  OfferStatus try_offer(std::size_t i, const Packet& p) override;
  void note_offer_retry(std::size_t i) override;
  void note_offer_abandoned(std::size_t i) override;

  // Attaches the telemetry plane to every shard engine: shard k's cells,
  // histograms and gauges carry label k (TelemetryOptions::shards must be
  // >= shards()). Attach before start(); nullptr detaches.
  void set_telemetry(obs::telemetry::Telemetry* plane);
  // Differential-replay capture: (*out)[k] receives shard k's operation
  // sequence. Attach before start(); read only after stop() returned.
  void set_capture(std::vector<std::vector<CaptureOp>>* out);

  // One run per engine. stop() stops every shard concurrently (kDrain lets
  // each shard serve out its backlog in parallel), then settles the root
  // stats thread so its final publication matches the summed ledger.
  void start();
  void stop(StopMode mode = StopMode::kDrain);
  bool running() const { return running_.load(std::memory_order_acquire); }
  bool accepting() const override;
  bool stalled() const;        // any shard watchdog-stopped permanently
  int overload_state() const;  // max (worst) across shards

  Time now() const override { return shards_.front().engine->now(); }
  std::size_t producers() const override { return opts_.engine.producers; }

  // Summed ledger across shards. Exact after stop(): every identity the
  // single-engine EngineStats documents holds for the sums because each
  // shard's ledger is exact and every offer lands on exactly one shard.
  // max_service_lag is the max, overload_state the max, last_stall_stage
  // the most recent shard diagnosis.
  EngineStats stats() const;
  EngineStats shard_stats(std::size_t k) const;

  std::size_t shards() const { return shards_.size(); }
  std::size_t shard_of(FlowId global) const { return shard_of_[global]; }
  FlowId local_id(FlowId global) const { return local_id_[global]; }
  std::size_t flow_count() const { return shard_of_.size(); }
  Scheduler& scheduler(std::size_t k) { return *shards_[k].sched; }
  RtEngine& engine(std::size_t k) { return *shards_[k].engine; }
  const RtEngine& engine(std::size_t k) const { return *shards_[k].engine; }

  // Per-flow service in GLOBAL flow-id order (fetched from the home shard
  // under the local id), so wall-clock fairness checks read one coherent
  // axis across shards.
  double flow_tx_bits(FlowId global) const;
  std::vector<double> service_snapshot() const;

  // H-SFQ bound plumbing. shard_weight(k) = W_k; shard_slack(k) is the
  // eq.-65 virtual-server term (l_k^max + sum_g l_g^max)/W_k;
  // fairness_bound(f, m) returns the Theorem-1 bound for same-shard pairs
  // and adds both shards' slack for cross-shard pairs (global flow ids).
  double shard_weight(std::size_t k) const { return shards_[k].weight_sum; }
  double shard_slack(std::size_t k) const { return shards_[k].slack; }
  double fairness_bound(FlowId f, FlowId m) const;

  // Port the root stats endpoint bound (0 when disabled).
  uint16_t stats_endpoint_port() const {
    return stats_server_ ? stats_server_->port() : 0;
  }

 private:
  struct Shard {
    std::unique_ptr<Scheduler> sched;
    std::unique_ptr<RtEngine> engine;
    std::vector<FlowId> global_ids;  // local id -> global id
    double weight_sum = 0.0;         // W_k
    double slack = 0.0;              // eq.-65 virtual-server slack
    double rate = 0.0;               // static share R*W_k/W
    // Rebalance handle into the shard's AtomicRate profile (owned by the
    // engine; stable for the engine's lifetime).
    std::atomic<double>* rate_cell = nullptr;
  };
  // Producer slot i's most recently routed shard; written and read only by
  // producer i (slots are single-threaded), padded so neighbouring
  // producers never share a cache line.
  struct alignas(64) LastShard {
    std::size_t shard = 0;
  };

  std::size_t route(const Packet& p, std::size_t i);
  void stats_loop();
  void publish_stats(std::vector<double>& prev_service);
  void rebalance_loop();

  ShardedEngineOptions opts_;
  ShardRouter router_;
  std::vector<std::size_t> shard_of_;  // global flow -> shard
  std::vector<FlowId> local_id_;       // global flow -> shard-local id
  std::vector<double> flow_weight_;    // global flow table (immutable)
  std::vector<double> flow_max_bits_;
  double total_weight_ = 0.0;
  std::vector<Shard> shards_;
  std::vector<LastShard> last_shard_;

  obs::telemetry::Telemetry* tele_ = nullptr;

  // Root background threads: stats publication and H-SFQ rebalance. Both
  // share one stop latch; stats_loop does a final pass after the shard
  // engines settled, mirroring RtEngine::stats_loop.
  std::unique_ptr<obs::telemetry::StatsServer> stats_server_;
  std::thread stats_thread_;
  std::thread rebal_thread_;
  std::mutex bg_mu_;
  std::condition_variable bg_cv_;
  bool bg_stop_ = false;

  bool started_ = false;
  std::mutex stop_mu_;
  std::atomic<bool> running_{false};
};

}  // namespace sfq::rt
