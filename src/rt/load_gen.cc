#include "rt/load_gen.h"

#include <chrono>
#include <deque>
#include <stdexcept>
#include <utility>

#include "sim/simulator.h"
#include "traffic/sources.h"

namespace sfq::rt {

namespace {

struct TimedPacket {
  Time t = 0.0;  // model time of the arrival
  Packet p;
};

// Waits (yield below 1 ms, sleep above) until the shared wall clock reaches
// `target`. Coarse is fine: the ingress stamp, not this wait, is the arrival
// time the engine sees.
void wait_until(const RtEngine& engine, Time target) {
  for (;;) {
    const Time gap = target - engine.now();
    if (gap <= 0.0) return;
    if (gap > 1e-3)
      std::this_thread::sleep_for(std::chrono::duration<double>(gap - 0.5e-3));
    else
      std::this_thread::yield();
  }
}

}  // namespace

LoadGen::LoadGen(RtEngine& engine, std::vector<std::vector<FlowLoad>> producers,
                 LoadGenOptions opts)
    : engine_(engine), specs_(std::move(producers)), opts_(opts) {
  if (specs_.size() > engine_.producers())
    throw std::invalid_argument("LoadGen: more producers than engine shards");
  if (opts_.slice <= 0.0) throw std::invalid_argument("LoadGen: slice <= 0");
  produced_.reserve(specs_.size());
  for (std::size_t i = 0; i < specs_.size(); ++i)
    produced_.push_back(std::make_unique<std::atomic<uint64_t>>(0));
}

LoadGen::~LoadGen() { join(); }

void LoadGen::start(Time duration) {
  if (started_) throw std::logic_error("LoadGen: start() called twice");
  started_ = true;
  threads_.reserve(specs_.size());
  for (std::size_t i = 0; i < specs_.size(); ++i)
    threads_.emplace_back([this, i, duration] { produce(i, duration); });
}

void LoadGen::join() {
  for (std::thread& t : threads_)
    if (t.joinable()) t.join();
}

uint64_t LoadGen::produced(std::size_t i) const {
  return produced_[i]->load(std::memory_order_relaxed);
}

uint64_t LoadGen::produced_total() const {
  uint64_t n = 0;
  for (std::size_t i = 0; i < produced_.size(); ++i) n += produced(i);
  return n;
}

void LoadGen::produce(std::size_t i, Time duration) {
  // Private simulator: the traffic models run exactly as they do in
  // simulated experiments; only the emission side changes.
  sim::Simulator sim;
  std::deque<TimedPacket> slice_buf;
  auto emit = [&](Packet p) {
    slice_buf.push_back(TimedPacket{sim.now(), std::move(p)});
  };

  std::vector<std::unique_ptr<traffic::Source>> sources;
  for (const FlowLoad& l : specs_[i]) {
    switch (l.model) {
      case FlowLoad::Model::kCbr:
        sources.push_back(std::make_unique<traffic::CbrSource>(
            sim, l.flow, emit, l.rate, l.packet_bits));
        break;
      case FlowLoad::Model::kPoisson:
        sources.push_back(std::make_unique<traffic::PoissonSource>(
            sim, l.flow, emit, l.rate, l.packet_bits, l.seed));
        break;
      case FlowLoad::Model::kOnOff:
        sources.push_back(std::make_unique<traffic::OnOffSource>(
            sim, l.flow, emit, l.rate, l.packet_bits, l.mean_on, l.mean_off,
            l.seed));
        break;
    }
    sources.back()->run(l.start, duration);
  }

  uint64_t attempts = 0;
  std::atomic<uint64_t>& counter = *produced_[i];
  const Time t0 = engine_.now();  // replay epoch: model t maps to t0 + t
  Time horizon = 0.0;
  bool engine_closed = false;

  while (!engine_closed) {
    if (slice_buf.empty()) {
      if (horizon >= duration) break;  // sources emit strictly before duration
      horizon = std::min(horizon + opts_.slice, duration);
      sim.run_until(horizon);
      continue;
    }
    TimedPacket& tp = slice_buf.front();
    if (opts_.paced) wait_until(engine_, t0 + tp.t);
    ++attempts;
    bool ok;
    if (opts_.block_on_full)
      ok = engine_.offer_wait(i, std::move(tp.p));
    else
      ok = engine_.offer(i, std::move(tp.p));
    slice_buf.pop_front();
    // A plain offer's failure is a counted backpressure drop and production
    // continues; failure with the engine closed means the rest of the
    // timeline has nowhere to go.
    if (!ok && !engine_.accepting()) engine_closed = true;
    // Publish attempts periodically to keep the hot loop light.
    if ((attempts & 0x3ff) == 0)
      counter.store(attempts, std::memory_order_relaxed);
  }
  counter.store(attempts, std::memory_order_relaxed);
}

}  // namespace sfq::rt
