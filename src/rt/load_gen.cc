#include "rt/load_gen.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <random>
#include <stdexcept>
#include <utility>

#include "rt/validate.h"
#include "sim/simulator.h"
#include "traffic/sources.h"

namespace sfq::rt {

namespace {

struct TimedPacket {
  Time t = 0.0;  // model time of the arrival
  Packet p;
};

// Waits (yield below 1 ms, sleep above) until the shared wall clock reaches
// `target` or a stop is requested. Coarse is fine: the ingress stamp, not
// this wait, is the arrival time the engine sees. Long sleeps are chunked so
// a stop request interrupts within ~10 ms.
void wait_until(const IngressTarget& engine, Time target,
                const std::atomic<bool>& stop) {
  for (;;) {
    if (stop.load(std::memory_order_relaxed)) return;
    const Time gap = target - engine.now();
    if (gap <= 0.0) return;
    if (gap > 1e-3)
      std::this_thread::sleep_for(
          std::chrono::duration<double>(std::min(gap - 0.5e-3, 10e-3)));
    else
      std::this_thread::yield();
  }
}

}  // namespace

namespace {

std::optional<std::string> validate_specs(
    const IngressTarget& engine,
    const std::vector<std::vector<FlowLoad>>& specs,
    const LoadGenOptions& opts) {
  if (specs.size() > engine.producers())
    return "LoadGen: more producers than engine shards";
  if (auto err = validate(opts)) return err;
  for (const auto& producer : specs)
    for (const FlowLoad& l : producer)
      if (auto err = validate(l)) return err;
  return std::nullopt;
}

}  // namespace

LoadGen::LoadGen(IngressTarget& engine,
                 std::vector<std::vector<FlowLoad>> producers,
                 LoadGenOptions opts)
    : engine_(engine), specs_(std::move(producers)), opts_(opts) {
  if (auto err = validate_specs(engine_, specs_, opts_))
    throw std::invalid_argument(*err);
  cells_.reserve(specs_.size());
  for (std::size_t i = 0; i < specs_.size(); ++i)
    cells_.push_back(std::make_unique<Cells>());
}

std::unique_ptr<LoadGen> LoadGen::try_create(
    IngressTarget& engine, std::vector<std::vector<FlowLoad>> producers,
    LoadGenOptions opts, std::string* error) {
  if (auto err = validate_specs(engine, producers, opts)) {
    if (error) *error = *err;
    return nullptr;
  }
  return std::make_unique<LoadGen>(engine, std::move(producers), opts);
}

LoadGen::~LoadGen() { join(); }

void LoadGen::start(Time duration) {
  if (started_) throw std::logic_error("LoadGen: start() called twice");
  started_ = true;
  threads_.reserve(specs_.size());
  for (std::size_t i = 0; i < specs_.size(); ++i)
    threads_.emplace_back([this, i, duration] { produce(i, duration); });
}

void LoadGen::join() {
  for (std::thread& t : threads_)
    if (t.joinable()) t.join();
}

void LoadGen::request_stop() {
  stop_requested_.store(true, std::memory_order_relaxed);
}

uint64_t LoadGen::produced(std::size_t i) const {
  return cells_[i]->attempts.load(std::memory_order_relaxed);
}

uint64_t LoadGen::produced_total() const {
  uint64_t n = 0;
  for (std::size_t i = 0; i < cells_.size(); ++i) n += produced(i);
  return n;
}

LoadGen::ProducerStats LoadGen::producer_stats(std::size_t i) const {
  const Cells& c = *cells_[i];
  ProducerStats s;
  s.attempts = c.attempts.load(std::memory_order_relaxed);
  s.pushed = c.pushed.load(std::memory_order_relaxed);
  s.dropped = c.dropped.load(std::memory_order_relaxed);
  s.abandoned = c.abandoned.load(std::memory_order_relaxed);
  s.retries = c.retries.load(std::memory_order_relaxed);
  return s;
}

void LoadGen::produce(std::size_t i, Time duration) {
  // Private simulator: the traffic models run exactly as they do in
  // simulated experiments; only the emission side changes.
  sim::Simulator sim;
  std::deque<TimedPacket> slice_buf;
  auto emit = [&](Packet p) {
    slice_buf.push_back(TimedPacket{sim.now(), std::move(p)});
  };

  std::vector<std::unique_ptr<traffic::Source>> sources;
  for (const FlowLoad& l : specs_[i]) {
    switch (l.model) {
      case FlowLoad::Model::kCbr:
        sources.push_back(std::make_unique<traffic::CbrSource>(
            sim, l.flow, emit, l.rate, l.packet_bits));
        break;
      case FlowLoad::Model::kPoisson:
        sources.push_back(std::make_unique<traffic::PoissonSource>(
            sim, l.flow, emit, l.rate, l.packet_bits, l.seed));
        break;
      case FlowLoad::Model::kOnOff:
        sources.push_back(std::make_unique<traffic::OnOffSource>(
            sim, l.flow, emit, l.rate, l.packet_bits, l.mean_on, l.mean_off,
            l.seed));
        break;
    }
    sources.back()->run(l.start, duration);
  }

  ProducerStats local;
  Cells& cells = *cells_[i];
  const auto publish = [&] {
    cells.attempts.store(local.attempts, std::memory_order_relaxed);
    cells.pushed.store(local.pushed, std::memory_order_relaxed);
    cells.dropped.store(local.dropped, std::memory_order_relaxed);
    cells.abandoned.store(local.abandoned, std::memory_order_relaxed);
    cells.retries.store(local.retries, std::memory_order_relaxed);
  };
  // Retry/backoff mode (docs/ROBUSTNESS.md): explicit backpressure via
  // try_offer, bounded exponential backoff with multiplicative jitter, and
  // an optional per-packet freshness deadline.
  const bool retry_mode = !opts_.block_on_full &&
                          (opts_.max_retries > 0 || opts_.offer_deadline > 0.0);
  std::minstd_rand jitter_rng(
      static_cast<uint32_t>(0x9e3779b9u ^ (i * 2654435761u)) | 1u);
  std::uniform_real_distribution<double> jitter(1.0 - opts_.backoff_jitter,
                                                1.0 + opts_.backoff_jitter);
  const Time t0 = engine_.now();  // replay epoch: model t maps to t0 + t
  Time horizon = 0.0;
  bool engine_closed = false;

  while (!engine_closed) {
    if (stop_requested_.load(std::memory_order_relaxed)) break;
    if (slice_buf.empty()) {
      if (horizon >= duration) break;  // sources emit strictly before duration
      horizon = std::min(horizon + opts_.slice, duration);
      sim.run_until(horizon);
      continue;
    }
    TimedPacket& tp = slice_buf.front();
    if (opts_.paced) {
      wait_until(engine_, t0 + tp.t, stop_requested_);
      if (stop_requested_.load(std::memory_order_relaxed)) break;
    }
    ++local.attempts;
    if (retry_mode) {
      OfferStatus st = engine_.try_offer(i, tp.p);
      if (st == OfferStatus::kAccepted) {
        ++local.pushed;
      } else if (st == OfferStatus::kClosed) {
        engine_.note_offer_abandoned(i);
        ++local.abandoned;
        engine_closed = true;
      } else {
        // Backpressure: retry until accepted, closed, out of retries, or
        // past the freshness deadline.
        const Time first_try = engine_.now();
        Time backoff = opts_.backoff_initial;
        std::size_t tries = 0;
        bool resolved = false;
        for (;;) {
          if (opts_.offer_deadline > 0.0 &&
              engine_.now() - first_try >= opts_.offer_deadline)
            break;
          if (opts_.max_retries > 0 && tries >= opts_.max_retries) break;
          ++tries;
          ++local.retries;
          engine_.note_offer_retry(i);
          std::this_thread::sleep_for(
              std::chrono::duration<double>(backoff * jitter(jitter_rng)));
          backoff = std::min(backoff * opts_.backoff_multiplier,
                             opts_.backoff_max);
          st = engine_.try_offer(i, tp.p);
          if (st == OfferStatus::kAccepted) {
            ++local.pushed;
            resolved = true;
            break;
          }
          if (st == OfferStatus::kClosed) break;
        }
        if (!resolved) {
          // Timed out, out of retries, or the engine closed mid-retry: the
          // packet is given up and the attempt lands on the engine ledger as
          // an ingress drop.
          engine_.note_offer_abandoned(i);
          ++local.abandoned;
          if (st == OfferStatus::kClosed || !engine_.accepting())
            engine_closed = true;
        }
      }
    } else {
      bool ok;
      if (opts_.block_on_full)
        ok = engine_.offer_wait(i, std::move(tp.p));
      else
        ok = engine_.offer(i, std::move(tp.p));
      if (ok)
        ++local.pushed;
      else
        ++local.dropped;
      // A plain offer's failure is a counted backpressure drop and production
      // continues; failure with the engine closed means the rest of the
      // timeline has nowhere to go.
      if (!ok && !engine_.accepting()) engine_closed = true;
    }
    slice_buf.pop_front();
    // Publish periodically to keep the hot loop light.
    if ((local.attempts & 0x3ff) == 0) publish();
  }
  publish();
}

}  // namespace sfq::rt
