// Crash-free option validation for the rt layer (docs/ROBUSTNESS.md).
//
// Mirrors config::try_parse: every constructor precondition of RtEngine /
// LoadGen is expressible as a named check that returns a message instead of
// throwing, so servers assembling options from untrusted input (CLI flags,
// config files, control planes) can reject them as counted errors. The
// constructors call the same checks and throw the same message — validation
// logic lives in exactly one place — while RtEngine::try_create /
// LoadGen::try_create give the no-throw path.
#pragma once

#include <optional>
#include <string>

namespace sfq::rt {

struct EngineOptions;
struct LoadGenOptions;
struct FlowLoad;

// nullopt = valid; otherwise a human-readable reason (first failure wins).
std::optional<std::string> validate(const EngineOptions& opts);
std::optional<std::string> validate(const LoadGenOptions& opts);
std::optional<std::string> validate(const FlowLoad& load);

}  // namespace sfq::rt
