#pragma once

#include <mutex>
#include <utility>

#include "obs/trace.h"

namespace sfq::rt {

// Thread-safe adapter around any TraceSink (obs/trace.h), so PR 1's
// observability stack — MetricsSink into a MetricsRegistry, the online
// InvariantChecker, JSONL writers — works on live wall-clock runs.
//
// The RtEngine dispatcher emits every trace event from its own thread, so a
// sink's internal state is single-writer; what needs serialising is *reads*
// from other threads while the run is in flight (a monitor thread polling a
// MetricsRegistry, a test asserting on the checker mid-run). SyncSink wraps
// each on_event/finish in a mutex and exposes locked() so readers can
// inspect the inner sink (and anything it writes into, e.g. the registry)
// under the same mutex.
//
// After RtEngine::stop() returns, the dispatcher has been joined, so
// reading the inner sink directly — without locked() — is also safe.
class SyncSink final : public obs::TraceSink {
 public:
  explicit SyncSink(obs::TraceSink& inner) : inner_(inner) {}

  void on_event(const obs::TraceEvent& e) override {
    std::lock_guard<std::mutex> lock(mu_);
    inner_.on_event(e);
  }

  void finish() override {
    std::lock_guard<std::mutex> lock(mu_);
    inner_.finish();
  }

  bool discards_events() const override { return inner_.discards_events(); }

  // Runs `fn()` holding the event mutex: the only safe way to read the inner
  // sink (or the registry/checker behind it) while the engine is running.
  template <typename Fn>
  auto locked(Fn&& fn) {
    std::lock_guard<std::mutex> lock(mu_);
    return std::forward<Fn>(fn)();
  }

  obs::TraceSink& inner() { return inner_; }

 private:
  std::mutex mu_;
  obs::TraceSink& inner_;
};

}  // namespace sfq::rt
