#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/scheduler.h"
#include "net/rate_profile.h"
#include "net/scheduled_server.h"  // OverloadPolicy
#include "obs/telemetry/profile.h"
#include "obs/telemetry/stats_server.h"
#include "obs/telemetry/telemetry.h"
#include "obs/trace.h"
#include "rt/clock.h"
#include "rt/fault_clock.h"
#include "rt/ingress.h"
#include "rt/ingress_target.h"
#include "sim/event_queue.h"

namespace sfq::rt {

struct EngineOptions {
  std::size_t producers = 1;
  // Per-producer SPSC ring capacity (rounded up to a power of two).
  std::size_t ring_capacity = 1 << 14;
  // Cap on scheduler backlog (excluding the packet in transmission);
  // 0 = infinite. Overflow resolves via `overload_policy` into the same
  // per-cause drop taxonomy as the simulated server.
  std::size_t buffer_limit = 0;
  net::OverloadPolicy overload_policy = net::OverloadPolicy::kTailDrop;
  // Waits shorter than this are spun, longer ones sleep (seconds). Sleeping
  // keeps CPU available for producers on small machines; spinning keeps
  // pacing accurate near a transmission-complete deadline.
  double spin_threshold = 200e-6;
  // Stall watchdog: if the engine has obligations (a transmission in flight
  // or scheduler backlog) but makes no service progress (no transmission
  // started or completed) for this many wall-clock seconds, it counts a
  // stall and tries to recover — see `restart_budget`. Must exceed the
  // longest legitimate packet transmission time. 0 (default) disables.
  double stall_timeout = 0.0;
  // Watchdog escalation (docs/ROBUSTNESS.md): on each stall the dispatcher
  // diagnoses the wedged stage (EngineStats::last_stall_stage), re-arms
  // itself — re-pacing a stale in-flight transmission deadline against the
  // current clock — and retries. Service progress after a stall counts a
  // recovery and resets the budget; `restart_budget` consecutive fruitless
  // restarts escalate to a permanent stop (accepting off, ring leftovers
  // counted `abandoned`, backlog left visible — the pre-PR-7 behavior).
  uint32_t restart_budget = 3;
  // Overload admission control (docs/ROBUSTNESS.md): when true and
  // `buffer_limit` > 0, a Normal -> Shedding -> Critical state machine
  // watches scheduler occupancy with hysteresis and, while shedding, gates
  // arrivals through per-flow token buckets refilled in proportion to flow
  // weight from the measured service rate. Drops distribute weighted-fair
  // (cause kShed), so the Theorem-1 gap over *admitted* traffic stays
  // bounded while the engine is pushed past capacity.
  bool admission_control = false;
  double shed_enter = 0.85;     // occupancy: Normal -> Shedding
  double shed_exit = 0.50;      // occupancy: Shedding -> Normal
  double shed_critical = 0.97;  // occupancy: Shedding -> Critical
  // Critical multiplies the admitted rate by this factor (< 1) to force the
  // backlog down; Shedding admits at the full measured service rate.
  double shed_critical_factor = 0.7;
  // Token-bucket depth, in units of the flow's max packet size (burst a
  // freshly refilled flow may admit back-to-back while shedding).
  double shed_burst = 4.0;
  // rt-layer fault plan (clock jumps/skew, scripted dispatcher pauses);
  // empty by default. Chaos wires generated plans through this.
  RtFaultPlan fault_plan;
  // Live stats publication (requires set_telemetry; docs/OBSERVABILITY.md).
  // A background stats thread wakes every `stats_interval` seconds, updates
  // the backlog / pacing-lag / Theorem-1 fairness gauges, snapshots the
  // telemetry plane and publishes Prometheus + JSON renderings. 0 disables
  // the thread unless `stats_port` asks for the TCP endpoint, in which case
  // a 0.5 s default interval is used.
  double stats_interval = 0.0;
  // Localhost HTTP exposition port: -1 (default) = no endpoint, 0 = bind an
  // ephemeral port (RtEngine::stats_endpoint_port() reports it), else the
  // literal port. GET /metrics serves Prometheus text, /metrics.json JSON.
  int stats_port = -1;
  // Print one console summary line per stats interval (sfq_serve
  // --stats-interval surfaces this).
  bool stats_console = false;
  // Shard label this engine's telemetry cells carry (the future sharded
  // engine gives each dispatcher its own; see ROADMAP item 1).
  std::size_t telemetry_shard = 0;
  // Runtime switch for the stage-profiling scopes around drain / schedule /
  // transmit. Only effective in builds with SFQ_TELEMETRY_PROFILING; the
  // default build compiles the scopes out entirely (obs/telemetry/profile.h).
  bool profiling = false;
};

// One scheduler-touching operation the dispatcher performed, in order. With
// set_capture(), the engine records the exact call sequence it drove the
// discipline through — enqueue/dequeue/transmit-complete/pushout, each with
// the wall-clock stamp the call used — and the chaos harness replays it
// against a fresh single-threaded scheduler instance, comparing every
// dequeue's packet and tags bit-for-bit (src/chaos/rt_replay.h). Divergence
// means the threaded pipeline corrupted scheduler state (or the discipline
// is not a pure function of its input sequence).
struct CaptureOp {
  enum class Kind : uint8_t {
    kEnqueue,   // packet as offered (tags unset); t = dispatcher inject time
    kDequeue,   // packet as returned (tags stamped); t = dequeue time
    kComplete,  // transmission completed; t = completion time
    kPushout,   // victim evicted under overload; t = eviction time
    // Migration epoch markers (shard failover, docs/ROBUSTNESS.md). Only
    // packet.flow is meaningful; the replay applies remove_flow/rejoin_flow
    // so the op stream stays a complete state transcript across a rehome.
    kRemove,    // flow evicted/harvested off this scheduler; t = removal time
    kRejoin,    // flow adopted onto this scheduler; t = rejoin time
  };
  Kind kind = Kind::kEnqueue;
  Packet packet;
  Time t = 0.0;
};

// OfferStatus lives in rt/ingress_target.h with the IngressTarget interface
// both RtEngine and the sharded engine implement.

// Dispatcher stage the watchdog diagnosed as wedged (EngineStats).
enum class StallStage : int8_t {
  kNone = -1,
  kDrain = 0,     // no obligations visible, yet no progress (ingress wedge)
  kSchedule = 1,  // scheduler backlogged but dequeue yields nothing
  kTransmit = 2,  // transmission in flight whose deadline never arrives
  kKilled = 3,    // RtFaultPlan shard-kill fault fired (dispatcher died)
};
const char* to_string(StallStage s);

// How stop() treats work still queued when it is called.
enum class StopMode {
  // Stop accepting, then serve everything already pushed: rings drain into
  // the scheduler and the backlog transmits to empty (still paced).
  kDrain,
  // Stop accepting, let the in-flight transmission finish, count leftover
  // ring items as `abandoned` and leave the scheduler backlog in place
  // (reported via stats().backlog).
  kAbandon,
};

// Relaxed snapshot of engine counters; safe to take from any thread while
// the engine runs. The ledger it satisfies (exactly, once stop() returned):
//
//   offers                         == ingress_pushed + ingress_drops
//   ingress_pushed + migrated_in   == accepted + pre-enqueue drops + abandoned
//   accepted                       == transmitted + backlog
//                                     + post-enqueue drops + migrated_out
//
// where pre-enqueue causes are kUnknownFlow/kBufferLimit/kShed and
// post-enqueue causes are kPushout/kFlowRemoved (see docs/ROBUSTNESS.md).
// migrated_in/migrated_out count packets that crossed a shard-failover
// rehome: summed over engines they cancel once every migration settles, so
// the global identity is exact including migrated packets.
struct EngineStats {
  uint64_t ingress_pushed = 0;
  uint64_t ingress_drops = 0;  // ring full, or offer() after stop
  uint64_t accepted = 0;       // entered the discipline
  uint64_t transmitted = 0;
  double tx_bits = 0.0;
  uint64_t abandoned = 0;  // ring items discarded by stop(kAbandon)
  uint64_t drops[obs::kDropCauseCount] = {};  // engine drops, by cause
  // Shard-failover migration ledger: packets adopted from / evicted to
  // another engine (see adopt_flows/evict_flows/harvest_flows).
  uint64_t migrated_in = 0;
  uint64_t migrated_out = 0;
  uint64_t backlog = 0;  // accepted - transmitted - post drops - migrated_out
  // Worst observed lateness of a transmission-complete callback versus the
  // pacing deadline the rate profile set (dispatcher scheduling jitter).
  double max_service_lag = 0.0;
  // Stall-watchdog trips (EngineOptions::stall_timeout). stalls counts every
  // detected no-progress window; recoveries counts the episodes that healed
  // (service resumed after a restart). stalls > recoveries with the engine
  // stopped means the restart budget ran out (RtEngine::stalled()).
  uint64_t stalls = 0;
  uint64_t recoveries = 0;
  // Stage diagnosis of the most recent stall (kNone if never stalled).
  StallStage last_stall_stage = StallStage::kNone;
  // Overload state machine position: 0 Normal, 1 Shedding, 2 Critical.
  // Always 0 when admission control is off.
  int overload_state = 0;

  uint64_t dropped() const {
    uint64_t n = 0;
    for (uint64_t d : drops) n += d;
    return n;
  }
};

// Wall-clock real-time service engine: runs any Scheduler discipline against
// std::chrono::steady_clock instead of simulated time.
//
//   producer threads --SPSC rings--> dispatcher thread --> scheduler --> link
//
// The dispatcher is the only thread that touches the scheduler, the rate
// profile and the tracer, so every discipline in the library works unchanged
// and unlocked; concurrency lives entirely in the lock-free ingress layer
// and the atomic counters. Transmissions are paced by the RateProfile: a
// dequeued packet occupies the link until profile->finish_time(start, bits)
// on the wall clock, and on_transmit_complete fires when that deadline
// passes — the real-time analogue of ScheduledServer's completion event.
//
// See docs/REALTIME.md for the architecture and for which paper guarantees
// carry over to wall-clock operation.
class RtEngine : public IngressTarget {
 public:
  // Flows must be registered on `sched` before start(); the flow table must
  // not change while the engine runs. Throws std::invalid_argument on
  // malformed options (rt::validate); servers assembling options from
  // untrusted input use try_create for the no-throw path.
  RtEngine(Scheduler& sched, std::unique_ptr<net::RateProfile> profile,
           EngineOptions opts = {});
  // No-throw factory mirroring config::try_parse: nullptr + a message in
  // *error (when non-null) instead of an exception. The profile is consumed
  // only on success.
  static std::unique_ptr<RtEngine> try_create(
      Scheduler& sched, std::unique_ptr<net::RateProfile>& profile,
      EngineOptions opts = {}, std::string* error = nullptr);
  ~RtEngine() override;  // stop(kAbandon) if still running

  RtEngine(const RtEngine&) = delete;
  RtEngine& operator=(const RtEngine&) = delete;

  // Producer API (rt/ingress_target.h): thread `i` in [0, producers) offers
  // a packet. The wall clock stamps the arrival. offer: false => counted
  // ingress drop (ring full, or the engine is not accepting). offer_wait:
  // spins (yielding) while the ring is full; false once the engine stops
  // accepting. try_offer: a full ring returns kBackpressure and counts
  // NOTHING — the caller still owns the packet and must resolve the attempt
  // via a later successful try_offer, note_offer_abandoned, or
  // offer()/offer_wait(). LoadGen's retry/backoff path rides on this.
  bool offer(std::size_t i, Packet p) override;
  bool offer_wait(std::size_t i, Packet p) override;
  OfferStatus try_offer(std::size_t i, const Packet& p) override;
  // Ledger hooks for retry loops. note_offer_retry only bumps the
  // rt.offer_retries telemetry counter. note_offer_abandoned resolves a
  // backpressured attempt as given up: it counts an ingress drop (so
  // `offers == ingress_pushed + ingress_drops` stays exact) plus the
  // rt.offer_abandoned telemetry counter.
  void note_offer_retry(std::size_t i) override;
  void note_offer_abandoned(std::size_t i) override;

  // Attach before start(); events fire on the dispatcher thread. Wrap sinks
  // you want to read mid-run in rt::SyncSink.
  void set_tracer(obs::Tracer* tracer);

  // Attaches the lock-free telemetry plane (docs/OBSERVABILITY.md): the
  // engine registers per-thread counter cells (one per producer plus the
  // dispatcher) under EngineOptions::telemetry_shard and records the
  // enqueue->transmit latency, ingress dwell and service-lag histograms on
  // the hot path. Attach before start(); nullptr detaches. The plane must
  // outlive the engine's run.
  void set_telemetry(obs::telemetry::Telemetry* plane);
  obs::telemetry::Telemetry* telemetry() const { return tele_; }
  // Port the stats endpoint actually bound (0 when disabled); useful with
  // EngineOptions::stats_port = 0.
  uint16_t stats_endpoint_port() const {
    return stats_server_ ? stats_server_->port() : 0;
  }

  // Differential-replay capture: records every scheduler-touching operation
  // into `out` (dispatcher thread only; appended in execution order). Attach
  // before start() and read only after stop() returned. nullptr detaches.
  void set_capture(std::vector<CaptureOp>* out);

  // One run per engine: start() may be called once; a second call throws.
  void start();
  // Idempotent; blocks until the dispatcher exits. See StopMode. For an
  // exact drain ledger, stop producers (e.g. LoadGen::join) before stop():
  // a push racing stop(kDrain) may or may not be served.
  void stop(StopMode mode = StopMode::kDrain);
  bool running() const { return running_.load(std::memory_order_acquire); }
  bool accepting() const override {
    return accepting_.load(std::memory_order_acquire);
  }
  // True once the stall watchdog exhausted its restart budget and stopped
  // the dispatcher permanently; the engine no longer accepts or serves.
  // Recovered stalls (stats().recoveries) do NOT set this.
  bool stalled() const { return stalled_.load(std::memory_order_acquire); }
  // Current overload state (0 Normal / 1 Shedding / 2 Critical).
  int overload_state() const {
    return ov_state_.load(std::memory_order_relaxed);
  }

  Time now() const override { return clock_.now(); }
  const FaultClock& clock() const { return clock_; }
  Scheduler& scheduler() { return sched_; }
  const Ingress& ingress() const { return ingress_; }
  std::size_t producers() const override { return ingress_.producers(); }

  EngineStats stats() const;

  // --- Shard-failover migration hooks (docs/ROBUSTNESS.md) ---------------
  // One flow's movable state: the id plus its harvested backlog in exact
  // service order. Tag state is NOT carried — the destination scheduler
  // re-anchors the flow's start tag via the rejoin rule
  // (start = max(v_dest(t), previous finish recorded at the destination)).
  struct Migration {
    FlowId flow = kInvalidFlow;
    std::vector<Packet> backlog;
  };
  // adopt_flows / evict_flows execute on the dispatcher thread (queued as
  // control ops between batches; the caller blocks until done) so the
  // scheduler stays single-threaded. adopt_flows re-activates each flow
  // (rejoin rule) and enqueues its backlog — counted migrated_in, then
  // accepted or dropped (kBufferLimit/kPushout) exactly like an arrival,
  // but never shed: admitted traffic must not be shed twice. Returns false
  // when the dispatcher is gone (stopped/stalled/killed) and nothing was
  // applied. evict_flows deactivates each flow and returns its backlog in
  // service order (counted migrated_out); flows with no local state yield
  // an entry with an empty backlog so the caller can still rejoin them.
  bool adopt_flows(std::vector<Migration>& flows);
  bool evict_flows(const std::vector<FlowId>& flows,
                   std::vector<Migration>& out);
  // Fenced harvest: same as evict_flows, but callable only once the
  // dispatcher has exited (killed / watchdog-stopped / stop() returned) —
  // the supervisor strips a dead shard single-threadedly. Throws
  // std::logic_error if the dispatcher is still live.
  std::vector<Migration> harvest_flows(const std::vector<FlowId>& flows);
  // True once the dispatcher thread has exited for any reason (the
  // supervisor's liveness probe; stop() may not have been called yet).
  bool dispatcher_done() const {
    return dispatcher_done_.load(std::memory_order_acquire);
  }

  // Cumulative transmitted bits per flow (relaxed; monotone per flow), for
  // wall-clock fairness measurement: sample W_f at coarse instants and check
  // |dW_f/r_f - dW_m/r_m| against the Theorem-1 bound over any window where
  // both flows stayed backlogged.
  double flow_tx_bits(FlowId f) const;
  std::vector<double> service_snapshot() const;

 private:
  void run();
  void inject(IngressItem item);
  void drop(Packet&& p, Time now, obs::DropCause cause);
  void complete(const Packet& p, Time now, Time deadline);
  FlowId longest_queue() const;
  void stats_loop();
  void publish_stats(std::vector<double>& prev_service);
  void publish_final_gauges();
  // Overload machine (dispatcher thread only; docs/ROBUSTNESS.md).
  void overload_tick(Time now);
  void set_overload_state(int state, Time now);
  bool shed_admits(const Packet& p, Time now);
  // Watchdog (dispatcher thread only). Returns false when the restart
  // budget is exhausted and the dispatcher must exit permanently.
  bool watchdog_stall(Time now, Time raw_now);
  // Permanent-death path shared by budget exhaustion and the kill fault:
  // stop accepting, abandon ring leftovers, latch stalled_ + the stage.
  void permanent_stop(StallStage stage);
  // Control-op plumbing (adopt/evict) and the post-exit cleanup that fails
  // any waiters once the dispatcher is gone.
  struct ControlOp;
  bool submit_control(ControlOp& op);
  void serve_control_ops();
  void dispatcher_exit_cleanup();
  void exec_adopt(std::vector<Migration>& flows);
  void exec_evict(const std::vector<FlowId>& flows,
                  std::vector<Migration>& out);
  // Recompute the shedding weight shares over currently-active flows
  // (migration changes the resident set; dispatcher thread only).
  void recompute_shed_shares();

  Scheduler& sched_;
  std::unique_ptr<net::RateProfile> profile_;
  EngineOptions opts_;
  FaultClock clock_;
  Ingress ingress_;
  std::thread dispatcher_;

  obs::Tracer* tracer_ = nullptr;
  bool trace_on_ = false;
  std::vector<CaptureOp>* capture_ = nullptr;  // dispatcher-thread writes

  // Telemetry plane wiring (set_telemetry). Writer cells are per thread:
  // producer i increments prod_writers_[i] from offer()/offer_wait(); the
  // dispatcher owns disp_writer_. tele_on_ is latched before start() so the
  // hot path pays one predictable branch when detached.
  obs::telemetry::Telemetry* tele_ = nullptr;
  bool tele_on_ = false;
  obs::telemetry::Telemetry::Writer disp_writer_;
  std::vector<obs::telemetry::Telemetry::Writer> prod_writers_;
  std::unique_ptr<obs::telemetry::StageProfiler> profiler_;
  // Dispatcher-owned latency histograms, resolved once at set_telemetry():
  // single-writer recording (relaxed load+store, no locked RMW) keeps the
  // per-packet cost inside the <=5% bench_telemetry_overhead budget. The
  // headline enqueue->transmit histogram records every packet (its count
  // mirrors the transmitted ledger exactly); the two secondary histograms
  // (ingress dwell, service lag) are 1-in-2^kTeleSampleShift sampled — their
  // quantiles are statistically unaffected and the saving funds the budget.
  static constexpr uint32_t kTeleSampleShift = 3;  // sample 1 in 8
  obs::telemetry::LockFreeHistogram* h_dwell_ = nullptr;
  obs::telemetry::LockFreeHistogram* h_qdelay_ = nullptr;
  obs::telemetry::LockFreeHistogram* h_lag_ = nullptr;
  uint32_t dwell_tick_ = 0;  // dispatcher-only sampling counters
  uint32_t lag_tick_ = 0;

  // Stats publication (EngineOptions::stats_interval / stats_port): a
  // background thread periodically refreshes gauges (backlog, pacing lag,
  // Theorem-1 worst gap vs bound) and publishes snapshot renderings to the
  // localhost endpoint / console. Never touches the scheduler.
  std::unique_ptr<obs::telemetry::StatsServer> stats_server_;
  std::thread stats_thread_;
  std::mutex stats_mu_;
  std::condition_variable stats_cv_;
  bool stats_stop_ = false;
  std::vector<double> fair_weights_;    // copied at start(); immutable after
  std::vector<double> fair_max_bits_;

  // Paced-service timer store: the in-flight transmission rides in a typed
  // kServiceComplete event keyed by its wall-clock deadline. Dispatcher
  // thread only. Same slab-backed queue as the simulator, so the packet in
  // flight reuses one slot forever (no per-transmission allocation).
  sim::EventQueue timers_;

  bool started_ = false;
  std::mutex stop_mu_;
  std::atomic<bool> running_{false};
  std::atomic<bool> accepting_{false};
  std::atomic<bool> stop_requested_{false};
  std::atomic<StopMode> stop_mode_{StopMode::kDrain};

  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> transmitted_{0};
  std::atomic<double> tx_bits_{0.0};
  std::atomic<uint64_t> abandoned_{0};
  std::atomic<uint64_t> cause_drops_[obs::kDropCauseCount] = {};
  std::atomic<uint64_t> post_enqueue_drops_{0};
  std::atomic<double> max_service_lag_{0.0};
  std::atomic<uint64_t> stalls_{0};
  std::atomic<bool> stalled_{false};
  std::atomic<uint64_t> migrated_in_{0};
  std::atomic<uint64_t> migrated_out_{0};
  // Single-writer (dispatcher) per-flow service totals; sized at start().
  std::vector<std::unique_ptr<std::atomic<double>>> flow_bits_;

  // Watchdog escalation state (dispatcher thread; atomics are for stats()).
  std::atomic<uint64_t> recoveries_{0};
  std::atomic<int8_t> last_stall_stage_{
      static_cast<int8_t>(StallStage::kNone)};
  uint32_t consecutive_stalls_ = 0;   // restarts since the last progress
  bool recovery_pending_ = false;     // a stall fired; progress will heal it
  Time last_progress_raw_ = 0.0;      // watchdog runs on the raw clock so
                                      // fault-injected jumps cannot blind it
  std::size_t next_pause_ = 0;        // cursor into fault_plan.pauses
  std::size_t next_kill_ = 0;         // cursor into fault_plan.kills

  // Pacing chain (dispatcher thread only): the instant the in-flight/last
  // transmission frees the link while service has been continuously busy;
  // +inf when the link went idle (or after a stall), meaning "no continuity
  // — pace the next packet from now". Keeping the chain on this absolute
  // grid stops per-wakeup dispatcher latency from compounding into a
  // rate deficit that scales with packets/s (which skews cross-shard
  // fairness against high-rate shards).
  Time link_free_ = std::numeric_limits<double>::infinity();

  // Migration control ops: callers park an op and block; the dispatcher
  // executes it between batches so the scheduler stays single-threaded.
  // dispatcher_done_ turns true when the dispatcher exits (any path) and
  // fails all current and future waiters.
  std::mutex ctrl_mu_;
  std::condition_variable ctrl_cv_;
  std::vector<ControlOp*> ctrl_queue_;
  std::atomic<bool> ctrl_pending_{false};
  std::atomic<bool> dispatcher_done_{false};

  // Overload machine state (latched at start(); dispatcher thread owns the
  // buckets, ov_state_ is relaxed-readable from anywhere).
  bool ov_on_ = false;
  std::atomic<int> ov_state_{0};  // 0 Normal, 1 Shedding, 2 Critical
  std::vector<double> ov_share_;  // weight_f / sum(weights)
  std::vector<double> ov_cap_;    // bucket depth, bits (shed_burst * l_max)
  std::vector<double> ov_tokens_;
  std::vector<Time> ov_refill_;   // per-flow last lazy-refill instant
  // Measured service rate (bits/s), EWMA over ~50 ms windows, seeded from
  // the rate profile's nominal rate; drives bucket refill while shedding.
  double ov_rate_ewma_ = 0.0;
  double ov_window_bits_ = 0.0;
  Time ov_window_start_ = 0.0;
};

}  // namespace sfq::rt
