#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

namespace sfq::rt {

// Alignment for index variables so producer and consumer never share a cache
// line (the classic false-sharing trap of ring buffers). 64 bytes covers
// every target we build for; std::hardware_destructive_interference_size is
// deliberately avoided because GCC warns that its value is ABI-fragile.
inline constexpr std::size_t kCacheLineBytes = 64;

// Bounded lock-free single-producer/single-consumer ring (a Lamport queue
// with cached indices). One thread may call the producer API (try_push), one
// thread the consumer API (front/pop/try_pop); size() is safe from any
// thread but only approximate while both sides are running.
//
// Indices are free-running 64-bit counters; the slot is index & mask, so
// wraparound needs no modular case analysis and full/empty are simply
// tail - head == capacity / tail == head. Each side caches the other's
// index and re-reads it only on apparent full/empty, so the steady-state
// hot path costs one relaxed load + one release store per operation and no
// shared-line ping-pong.
template <typename T>
class SpscRing {
 public:
  // Capacity is rounded up to a power of two (minimum 2).
  explicit SpscRing(std::size_t min_capacity) {
    std::size_t cap = 2;
    while (cap < min_capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const { return slots_.size(); }

  // Producer thread only. False when the ring is full.
  bool try_push(T v) {
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_cache_ >= slots_.size()) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ >= slots_.size()) return false;
    }
    slots_[tail & mask_] = std::move(v);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  // Consumer thread only: the oldest element, or nullptr when empty. The
  // pointer stays valid until pop(); the producer cannot overwrite the slot
  // because head_ has not advanced.
  T* front() {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) return nullptr;
    }
    return &slots_[head & mask_];
  }

  // Consumer thread only. Precondition: front() returned non-null.
  void pop() {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    if constexpr (!std::is_trivially_destructible_v<T>)
      slots_[head & mask_] = T{};  // release resources held by the slot
    head_.store(head + 1, std::memory_order_release);
  }

  // Consumer thread only.
  bool try_pop(T& out) {
    T* f = front();
    if (!f) return false;
    out = std::move(*f);
    pop();
    return true;
  }

  // Any thread; exact only when both sides are quiescent.
  std::size_t size() const {
    const uint64_t t = tail_.load(std::memory_order_acquire);
    const uint64_t h = head_.load(std::memory_order_acquire);
    return t >= h ? static_cast<std::size_t>(t - h) : 0;
  }
  bool empty() const { return size() == 0; }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  alignas(kCacheLineBytes) std::atomic<uint64_t> head_{0};  // consumer index
  alignas(kCacheLineBytes) std::atomic<uint64_t> tail_{0};  // producer index
  alignas(kCacheLineBytes) uint64_t head_cache_ = 0;  // producer's view of head_
  alignas(kCacheLineBytes) uint64_t tail_cache_ = 0;  // consumer's view of tail_
};

}  // namespace sfq::rt
