#pragma once

#include <chrono>

#include "core/types.h"

namespace sfq::rt {

// Maps std::chrono::steady_clock onto the library's Time domain: seconds as
// a double, with t = 0 at construction. Every component of one RtEngine run
// shares a single WallClock so scheduler timestamps, pacing deadlines and
// load-generator replay all live on the same monotone axis — exactly the
// role sim::Simulator::now() plays for simulated runs.
//
// steady_clock is monotone, so successive now() calls never go backwards;
// the virtual-time invariants the paper proves (which only require that
// enqueue/dequeue timestamps are non-decreasing) therefore carry over to
// wall-clock operation unchanged.
class WallClock {
 public:
  WallClock() : epoch_(std::chrono::steady_clock::now()) {}

  Time now() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         epoch_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace sfq::rt
