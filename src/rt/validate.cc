#include "rt/validate.h"

#include <cmath>

#include "rt/engine.h"
#include "rt/load_gen.h"

namespace sfq::rt {

namespace {

bool bad(double v) { return !std::isfinite(v); }

}  // namespace

std::optional<std::string> validate(const EngineOptions& opts) {
  if (opts.producers == 0) return "EngineOptions: producers must be > 0";
  if (opts.ring_capacity == 0)
    return "EngineOptions: ring_capacity must be > 0";
  if (bad(opts.spin_threshold) || opts.spin_threshold < 0.0)
    return "EngineOptions: spin_threshold must be finite and >= 0";
  if (bad(opts.stall_timeout) || opts.stall_timeout < 0.0)
    return "EngineOptions: stall_timeout must be finite and >= 0";
  if (bad(opts.stats_interval) || opts.stats_interval < 0.0)
    return "EngineOptions: stats_interval must be finite and >= 0";
  if (opts.admission_control) {
    if (bad(opts.shed_exit) || bad(opts.shed_enter) || bad(opts.shed_critical))
      return "EngineOptions: shed thresholds must be finite";
    if (!(opts.shed_exit > 0.0 && opts.shed_exit < opts.shed_enter &&
          opts.shed_enter <= opts.shed_critical && opts.shed_critical <= 1.0))
      return "EngineOptions: shed thresholds must satisfy "
             "0 < shed_exit < shed_enter <= shed_critical <= 1";
    if (bad(opts.shed_critical_factor) || opts.shed_critical_factor <= 0.0 ||
        opts.shed_critical_factor > 1.0)
      return "EngineOptions: shed_critical_factor must be in (0, 1]";
    if (bad(opts.shed_burst) || opts.shed_burst <= 0.0)
      return "EngineOptions: shed_burst must be > 0";
  }
  for (const auto& j : opts.fault_plan.jumps)
    if (bad(j.at) || bad(j.delta) || j.at < 0.0)
      return "EngineOptions: fault jump must have finite delta and at >= 0";
  for (const auto& s : opts.fault_plan.skews) {
    if (bad(s.from) || bad(s.until) || s.from < 0.0 || s.until < s.from)
      return "EngineOptions: fault skew window must be finite with "
             "0 <= from <= until";
    if (bad(s.factor) || s.factor <= 0.0)
      return "EngineOptions: fault skew factor must be > 0";
  }
  for (const auto& p : opts.fault_plan.pauses)
    if (bad(p.at) || bad(p.duration) || p.at < 0.0 || p.duration < 0.0)
      return "EngineOptions: fault pause must have at >= 0 and duration >= 0";
  for (const auto& k : opts.fault_plan.kills)
    if (bad(k.at) || k.at < 0.0)
      return "EngineOptions: fault kill must have finite at >= 0";
  return std::nullopt;
}

std::optional<std::string> validate(const LoadGenOptions& opts) {
  if (bad(opts.slice) || opts.slice <= 0.0)
    return "LoadGenOptions: slice must be finite and > 0";
  if (bad(opts.backoff_initial) || opts.backoff_initial <= 0.0)
    return "LoadGenOptions: backoff_initial must be finite and > 0";
  if (bad(opts.backoff_max) || opts.backoff_max < opts.backoff_initial)
    return "LoadGenOptions: backoff_max must be finite and >= backoff_initial";
  if (bad(opts.backoff_multiplier) || opts.backoff_multiplier < 1.0)
    return "LoadGenOptions: backoff_multiplier must be finite and >= 1";
  if (bad(opts.backoff_jitter) || opts.backoff_jitter < 0.0 ||
      opts.backoff_jitter >= 1.0)
    return "LoadGenOptions: backoff_jitter must be in [0, 1)";
  if (bad(opts.offer_deadline) || opts.offer_deadline < 0.0)
    return "LoadGenOptions: offer_deadline must be finite and >= 0";
  return std::nullopt;
}

std::optional<std::string> validate(const FlowLoad& load) {
  if (load.flow == kInvalidFlow) return "FlowLoad: flow id is invalid";
  if (bad(load.rate) || load.rate <= 0.0)
    return "FlowLoad: rate must be finite and > 0";
  if (bad(load.packet_bits) || load.packet_bits <= 0.0)
    return "FlowLoad: packet_bits must be finite and > 0";
  if (bad(load.start) || load.start < 0.0)
    return "FlowLoad: start must be finite and >= 0";
  if (load.model == FlowLoad::Model::kOnOff &&
      (bad(load.mean_on) || bad(load.mean_off) || load.mean_on <= 0.0 ||
       load.mean_off <= 0.0))
    return "FlowLoad: on-off dwell times must be finite and > 0";
  return std::nullopt;
}

}  // namespace sfq::rt
