#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/scheduler.h"

namespace sfq {

// Options consumed by schedulers that need configuration beyond flow weights.
struct SchedulerOptions {
  // WFQ/FQS: the capacity their GPS emulation assumes.
  double assumed_capacity = 1e6;
  // DRR: bits of quantum per unit of weight.
  double quantum_per_weight = 1.0;
  // SFQ-W: bucket width of the timestamp wheel in virtual seconds (must be
  // > 0 for SFQ-W; callers usually derive it as l_max / C — see
  // config::sfq_wheel_quantum).
  double sfq_wheel_quantum = 0.0;
  // SFQ/SFQ-W: recycle removed flow ids once tag-safe (see SfqOptions).
  bool sfq_flow_gc = false;
};

// Creates any scheduler in the library by name:
//   SFQ, SFQ-W (SFQ on the timestamp-wheel core),
//   SCFQ, WFQ, FQS, DRR, WRR, VC (VirtualClock), EDD (DelayEDD),
//   FIFO, FairAirport, HSFQ (hierarchical SFQ, flat until classes are added).
// Throws std::invalid_argument for unknown names.
std::unique_ptr<Scheduler> make_scheduler(const std::string& name,
                                          const SchedulerOptions& options = {});

// Names accepted by make_scheduler, for help texts and sweeps.
std::vector<std::string> scheduler_names();

}  // namespace sfq
