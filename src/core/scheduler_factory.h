#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/scheduler.h"

namespace sfq {

// Options consumed by schedulers that need configuration beyond flow weights.
struct SchedulerOptions {
  // WFQ/FQS: the capacity their GPS emulation assumes.
  double assumed_capacity = 1e6;
  // DRR: bits of quantum per unit of weight.
  double quantum_per_weight = 1.0;
};

// Creates any scheduler in the library by name:
//   SFQ, SCFQ, WFQ, FQS, DRR, WRR, VC (VirtualClock), EDD (DelayEDD),
//   FIFO, FairAirport, HSFQ (hierarchical SFQ, flat until classes are added).
// Throws std::invalid_argument for unknown names.
std::unique_ptr<Scheduler> make_scheduler(const std::string& name,
                                          const SchedulerOptions& options = {});

// Names accepted by make_scheduler, for help texts and sweeps.
std::vector<std::string> scheduler_names();

}  // namespace sfq
