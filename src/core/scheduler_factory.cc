#include "core/scheduler_factory.h"

#include <stdexcept>

#include "core/sfq_scheduler.h"
#include "hier/hsfq_scheduler.h"
#include "sched/drr_scheduler.h"
#include "sched/edd_scheduler.h"
#include "sched/fair_airport.h"
#include "sched/fifo_scheduler.h"
#include "sched/scfq_scheduler.h"
#include "sched/virtual_clock.h"
#include "sched/wfq_scheduler.h"
#include "sched/wrr_scheduler.h"

namespace sfq {

std::unique_ptr<Scheduler> make_scheduler(const std::string& name,
                                          const SchedulerOptions& options) {
  if (name == "SFQ") {
    SfqOptions o;
    o.flow_gc = options.sfq_flow_gc;
    return std::make_unique<SfqScheduler>(o);
  }
  if (name == "SFQ-W") {
    SfqOptions o;
    o.core = SfqCore::kWheel;
    o.wheel_quantum = options.sfq_wheel_quantum;
    o.flow_gc = options.sfq_flow_gc;
    if (!(o.wheel_quantum > 0.0))
      throw std::invalid_argument(
          "make_scheduler: SFQ-W needs options.sfq_wheel_quantum > 0");
    return std::make_unique<SfqScheduler>(o);
  }
  if (name == "SCFQ") return std::make_unique<ScfqScheduler>();
  if (name == "WFQ")
    return std::make_unique<WfqScheduler>(options.assumed_capacity);
  if (name == "FQS")
    return std::make_unique<FqsScheduler>(options.assumed_capacity);
  if (name == "DRR")
    return std::make_unique<DrrScheduler>(options.quantum_per_weight);
  if (name == "WRR") return std::make_unique<WrrScheduler>();
  if (name == "VC") return std::make_unique<VirtualClockScheduler>();
  if (name == "EDD") return std::make_unique<EddScheduler>();
  if (name == "FIFO") return std::make_unique<FifoScheduler>();
  if (name == "FairAirport") return std::make_unique<FairAirportScheduler>();
  if (name == "HSFQ") return std::make_unique<hier::HsfqScheduler>();
  throw std::invalid_argument("make_scheduler: unknown scheduler '" + name +
                              "'");
}

std::vector<std::string> scheduler_names() {
  return {"SFQ", "SFQ-W", "SCFQ", "WFQ",  "FQS",         "DRR",
          "WRR", "VC",    "EDD",  "FIFO", "FairAirport", "HSFQ"};
}

}  // namespace sfq
