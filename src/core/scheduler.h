#pragma once

#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "core/flow_table.h"
#include "core/packet.h"
#include "core/types.h"
#include "obs/trace.h"

namespace sfq {

// A work-conserving packet scheduling discipline. The scheduler is passive:
// a server (net/scheduled_server.h) calls `enqueue` on packet arrival, asks
// `dequeue` for the next packet to transmit when the output is free, and
// reports `on_transmit_complete` when transmission ends.
//
// The (dequeue, on_transmit_complete) pair brackets the real-time interval in
// which the packet is "in service"; self-clocked disciplines (SFQ, SCFQ)
// derive their virtual time from it.
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  // Registers a flow before any of its packets arrive. Weight is r_f in
  // bits/s; `max_packet_bits` (l_f^max) is advisory and used by analytics.
  virtual FlowId add_flow(double weight, double max_packet_bits = 0.0,
                          std::string name = {}) {
    return flows_.add(weight, max_packet_bits, std::move(name));
  }

  virtual void enqueue(Packet p, Time now) = 0;
  virtual std::optional<Packet> dequeue(Time now) = 0;
  virtual void on_transmit_complete(const Packet& p, Time now) {
    (void)p;
    (void)now;
  }

  virtual bool empty() const = 0;
  virtual std::size_t backlog_packets() const = 0;

  // Bits queued for one flow (not counting a packet already handed to the
  // server via dequeue).
  virtual double backlog_bits(FlowId f) const = 0;

  virtual std::string name() const = 0;

  // Whether packets must belong to a flow registered via add_flow. Servers
  // drop (with cause) rather than enqueue when this holds and the flow is
  // unknown; FIFO-like disciplines that take any packet return false.
  virtual bool requires_registered_flows() const { return true; }

  const FlowTable& flows() const { return flows_; }
  FlowTable& flows() { return flows_; }

  // Attaches a packet-lifecycle tracer (obs/trace.h). nullptr (the default)
  // disables tracing; every hook below is then a single predictable branch.
  // Tracer::active() is latched here, so attach sinks before the tracer.
  void set_tracer(obs::Tracer* tracer) {
    tracer_ = tracer;
    trace_on_ = tracer != nullptr && tracer->active();
  }
  obs::Tracer* tracer() const { return tracer_; }

 protected:
  Scheduler() = default;

  // Hot-path hooks for implementations. `p` must already carry the fields
  // the event reports (tags for trace_tag, etc.).
  void trace_tag(const Packet& p, Time now, VirtualTime vtime,
                 std::size_t backlog) const {
    if (trace_on_) [[unlikely]]
      tracer_->emit(obs::make_event(obs::TraceEventType::kTag, p, now, vtime,
                                    backlog));
  }
  void trace_dequeue(const Packet& p, Time now, VirtualTime vtime,
                     std::size_t backlog) const {
    if (trace_on_) [[unlikely]]
      tracer_->emit(obs::make_event(obs::TraceEventType::kDequeue, p, now,
                                    vtime, backlog));
  }
  // Virtual-time changes outside a dequeue (e.g. the end-of-busy-period jump).
  void trace_vtime(Time now, VirtualTime vtime, std::size_t backlog) const {
    if (trace_on_) [[unlikely]] {
      obs::TraceEvent e;
      e.type = obs::TraceEventType::kVtime;
      e.t = now;
      e.vtime = vtime;
      e.backlog = backlog;
      tracer_->emit(e);
    }
  }

  FlowTable flows_;
  obs::Tracer* tracer_ = nullptr;
  bool trace_on_ = false;  // tracer_ set AND it has a consuming sink
};

// Per-flow FIFO of queued packets plus the bookkeeping every tag-based
// discipline needs. Shared by SFQ/WFQ/SCFQ/FQS/VC/EDD implementations.
class PerFlowQueues {
 public:
  void ensure(FlowId f) {
    if (f >= queues_.size()) queues_.resize(f + 1);
  }

  void push(Packet p) {
    ensure(p.flow);
    queues_[p.flow].q.push_back(std::move(p));
    ++packets_;
  }

  bool flow_empty(FlowId f) const {
    return f >= queues_.size() || queues_[f].q.empty();
  }

  const Packet& head(FlowId f) const { return queues_[f].q.front(); }
  Packet& head(FlowId f) { return queues_[f].q.front(); }

  Packet pop(FlowId f) {
    Packet p = std::move(queues_[f].q.front());
    queues_[f].q.pop_front();
    --packets_;
    return p;
  }

  std::size_t packets() const { return packets_; }

  double bits(FlowId f) const {
    if (f >= queues_.size()) return 0.0;
    double b = 0.0;
    for (const Packet& p : queues_[f].q) b += p.length_bits;
    return b;
  }

  std::size_t flow_packets(FlowId f) const {
    return f >= queues_.size() ? 0 : queues_[f].q.size();
  }

 private:
  struct FlowQueue {
    std::deque<Packet> q;
  };
  std::vector<FlowQueue> queues_;
  std::size_t packets_ = 0;
};

}  // namespace sfq
