#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/flow_table.h"
#include "core/packet.h"
#include "core/packet_pool.h"
#include "core/types.h"
#include "obs/trace.h"

namespace sfq {

// A work-conserving packet scheduling discipline. The scheduler is passive:
// a server (net/scheduled_server.h) calls `enqueue` on packet arrival, asks
// `dequeue` for the next packet to transmit when the output is free, and
// reports `on_transmit_complete` when transmission ends.
//
// The (dequeue, on_transmit_complete) pair brackets the real-time interval in
// which the packet is "in service"; self-clocked disciplines (SFQ, SCFQ)
// derive their virtual time from it.
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  // Registers a flow before any of its packets arrive. Weight is r_f in
  // bits/s; `max_packet_bits` (l_f^max) is advisory and used by analytics.
  virtual FlowId add_flow(double weight, double max_packet_bits = 0.0,
                          std::string name = {}) {
    return flows_.add(weight, max_packet_bits, std::move(name));
  }

  // Returns whether the packet entered the discipline; false means the
  // scheduler's own admit gate refused it (already counted and traced as an
  // unknown-flow drop). Lets the server detect refusal without re-reading
  // backlog_packets() around the call.
  virtual bool enqueue(Packet p, Time now) = 0;
  virtual std::optional<Packet> dequeue(Time now) = 0;
  virtual void on_transmit_complete(const Packet& p, Time now) {
    (void)p;
    (void)now;
  }

  virtual bool empty() const = 0;
  virtual std::size_t backlog_packets() const = 0;

  // Bits queued for one flow (not counting a packet already handed to the
  // server via dequeue).
  virtual double backlog_bits(FlowId f) const = 0;

  virtual std::string name() const = 0;

  // Width of the tag-quantization window in virtual seconds, when the
  // discipline serves tags only approximately in order (the SFQ timestamp
  // wheel). 0 means exact tag order. Consumers: the invariant checker's
  // dequeue-order slack and the fairness oracles' extra 2*window term (see
  // docs/PERFORMANCE.md, "Quantization slack").
  virtual VirtualTime quantization_window() const { return 0.0; }

  // Whether packets must belong to a flow registered via add_flow. Servers
  // drop (with cause) rather than enqueue when this holds and the flow is
  // unknown; FIFO-like disciplines that take any packet return false.
  virtual bool requires_registered_flows() const { return true; }

  // Removes a flow mid-run (churn). The flow's id and per-flow tag state stay
  // reserved so it can rejoin later; its queued packets are handed back to the
  // caller, which accounts for them (the server counts them as drops with
  // cause flow_removed). While removed, new packets for the flow are counted
  // drops, and the flow releases its share of the weight aggregates.
  //
  // Rejoin is paper-correct by construction: the next start tag is
  // max(v(t), F_prev) because implementations keep F_prev across the absence
  // and every tag formula already takes that max against current virtual time.
  virtual std::vector<Packet> remove_flow(FlowId f, Time now) {
    (void)now;
    flows_.set_active(f, false);  // throws on an id never registered
    return {};
  }

  // Re-admits a previously removed flow. Must not be called while the flow is
  // active. Tag state survives removal, so overload-protection disciplines
  // (VC) keep charging the flow for its pre-departure appetite.
  virtual void rejoin_flow(FlowId f, Time now) {
    (void)now;
    flows_.set_active(f, true);
  }

  // Evicts the most recently queued packet of flow `f` so the server can admit
  // a new arrival under a full buffer (pushout policy; the server picks the
  // victim flow). Disciplines whose bookkeeping cannot undo an enqueue return
  // nullopt, and the server falls back to tail-dropping the arrival instead.
  virtual std::optional<Packet> pushout(FlowId f, Time now) {
    (void)f;
    (void)now;
    return std::nullopt;
  }

  // Packets dropped by the scheduler itself because their flow was unknown or
  // removed (see admit()). Servers filter most of these before enqueue; this
  // counter catches direct scheduler use (tests, mesh nodes).
  uint64_t unknown_flow_drops() const { return unknown_flow_drops_; }

  const FlowTable& flows() const { return flows_; }
  FlowTable& flows() { return flows_; }

  // Attaches a packet-lifecycle tracer (obs/trace.h). nullptr (the default)
  // disables tracing; every hook below is then a single predictable branch.
  // Tracer::active() is latched here, so attach sinks before the tracer.
  void set_tracer(obs::Tracer* tracer) {
    tracer_ = tracer;
    trace_on_ = tracer != nullptr && tracer->active();
  }
  obs::Tracer* tracer() const { return tracer_; }

 protected:
  Scheduler() = default;

  // Hot-path hooks for implementations. `p` must already carry the fields
  // the event reports (tags for trace_tag, etc.).
  void trace_tag(const Packet& p, Time now, VirtualTime vtime,
                 std::size_t backlog) const {
    if (trace_on_) [[unlikely]]
      tracer_->emit(obs::make_event(obs::TraceEventType::kTag, p, now, vtime,
                                    backlog));
  }
  void trace_dequeue(const Packet& p, Time now, VirtualTime vtime,
                     std::size_t backlog) const {
    if (trace_on_) [[unlikely]]
      tracer_->emit(obs::make_event(obs::TraceEventType::kDequeue, p, now,
                                    vtime, backlog));
  }
  // Virtual-time changes outside a dequeue (e.g. the end-of-busy-period jump).
  void trace_vtime(Time now, VirtualTime vtime, std::size_t backlog) const {
    if (trace_on_) [[unlikely]] {
      obs::TraceEvent e;
      e.type = obs::TraceEventType::kVtime;
      e.t = now;
      e.vtime = vtime;
      e.backlog = backlog;
      tracer_->emit(e);
    }
  }

  void trace_drop(const Packet& p, Time now, obs::DropCause cause) const {
    if (trace_on_) [[unlikely]]
      tracer_->emit(obs::make_event(obs::TraceEventType::kDrop, p, now,
                                    /*vtime=*/0.0, backlog_packets(), cause));
  }

  // Gatekeeper for enqueue: true when the packet may enter the discipline.
  // When false the packet has already been counted and traced as an
  // unknown-flow drop — implementations just return. Replaces the old
  // behaviour of throwing std::out_of_range from the hot path, so a
  // misconfigured mesh node degrades to a counted drop instead of aborting.
  bool admit(const Packet& p, Time now) {
    if (!requires_registered_flows() || flows_.active(p.flow)) return true;
    ++unknown_flow_drops_;
    trace_drop(p, now, obs::DropCause::kUnknownFlow);
    return false;
  }

  FlowTable flows_;
  uint64_t unknown_flow_drops_ = 0;
  obs::Tracer* tracer_ = nullptr;
  bool trace_on_ = false;  // tracer_ set AND it has a consuming sink
};

// Per-flow FIFO of queued packets plus the bookkeeping every tag-based
// discipline needs. Shared by SFQ/WFQ/SCFQ/FQS/VC/EDD implementations.
//
// Storage is a PacketPool slab shared across the scheduler's flows: each
// flow queue is an intrusive doubly-linked list of pool nodes, so push/pop/
// pop_back are O(1) and — once the backlog has reached its high-water mark —
// completely allocation-free (the old std::deque backing churned a chunk
// allocation every few dozen packets).
class PerFlowQueues {
 public:
  void ensure(FlowId f) {
    if (f >= queues_.size()) queues_.resize(f + 1);
  }

  // Pre-sizes the per-flow directory so ensure() up to id n-1 cannot
  // reallocate (zero-alloc steady state under churn with recycled ids).
  void reserve(std::size_t n) { queues_.reserve(n); }

  void push(Packet p) {
    ensure(p.flow);
    const double bits = p.length_bits;
    const FlowId f = p.flow;
    const uint32_t i = pool_.acquire(std::move(p));
    FlowQueue& fq = queues_[f];
    fq.bits += bits;
    if (fq.tail == PacketPool::kNil) {
      fq.head = fq.tail = i;
    } else {
      pool_.set_next(fq.tail, i);
      pool_.set_prev(i, fq.tail);
      fq.tail = i;
    }
    ++fq.count;
    ++packets_;
  }

  bool flow_empty(FlowId f) const {
    return f >= queues_.size() || queues_[f].count == 0;
  }

  // Valid until the next push (the slab may grow and relocate nodes).
  const Packet& head(FlowId f) const { return pool_.packet(queues_[f].head); }
  Packet& head(FlowId f) { return pool_.packet(queues_[f].head); }

  Packet pop(FlowId f) {
    FlowQueue& fq = queues_[f];
    const uint32_t i = fq.head;
    Packet p = std::move(pool_.packet(i));
    fq.head = pool_.next(i);
    if (fq.head == PacketPool::kNil) fq.tail = PacketPool::kNil;
    else pool_.set_prev(fq.head, PacketPool::kNil);
    pool_.release(i);
    fq.bits -= p.length_bits;
    --fq.count;
    if (fq.count == 0) fq.bits = 0.0;  // kill rounding residue
    --packets_;
    return p;
  }

  // Removes and returns the most recently queued packet of flow `f` (pushout
  // victim). Precondition: !flow_empty(f).
  Packet pop_back(FlowId f) {
    FlowQueue& fq = queues_[f];
    const uint32_t i = fq.tail;
    Packet p = std::move(pool_.packet(i));
    fq.tail = pool_.prev(i);
    if (fq.tail == PacketPool::kNil) fq.head = PacketPool::kNil;
    else pool_.set_next(fq.tail, PacketPool::kNil);
    pool_.release(i);
    fq.bits -= p.length_bits;
    --fq.count;
    if (fq.count == 0) fq.bits = 0.0;
    --packets_;
    return p;
  }

  // Removes and returns every queued packet of flow `f`, oldest first
  // (flow removal).
  std::vector<Packet> drain(FlowId f) {
    std::vector<Packet> out;
    if (f >= queues_.size()) return out;
    FlowQueue& fq = queues_[f];
    out.reserve(fq.count);
    for (uint32_t i = fq.head; i != PacketPool::kNil;) {
      const uint32_t next = pool_.next(i);
      out.push_back(std::move(pool_.packet(i)));
      pool_.release(i);
      i = next;
    }
    packets_ -= fq.count;
    fq.head = fq.tail = PacketPool::kNil;
    fq.count = 0;
    fq.bits = 0.0;
    return out;
  }

  std::size_t packets() const { return packets_; }

  // O(1): per-flow queued bits are maintained incrementally so the server's
  // pushout policy (longest-queue-drop) can scan flows cheaply on overload.
  double bits(FlowId f) const {
    return f >= queues_.size() ? 0.0 : queues_[f].bits;
  }

  std::size_t flow_packets(FlowId f) const {
    return f >= queues_.size() ? 0 : queues_[f].count;
  }

  // Slab high-water mark, for the steady-state allocation tests.
  std::size_t pool_slots() const { return pool_.slots(); }

 private:
  struct FlowQueue {
    uint32_t head = PacketPool::kNil;
    uint32_t tail = PacketPool::kNil;
    std::size_t count = 0;
    double bits = 0.0;  // sum of queued lengths, maintained on push/pop
  };
  std::vector<FlowQueue> queues_;
  PacketPool pool_;
  std::size_t packets_ = 0;
};

}  // namespace sfq
