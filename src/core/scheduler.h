#pragma once

#include <cstdint>
#include <deque>
#include <iterator>
#include <optional>
#include <string>
#include <vector>

#include "core/flow_table.h"
#include "core/packet.h"
#include "core/types.h"
#include "obs/trace.h"

namespace sfq {

// A work-conserving packet scheduling discipline. The scheduler is passive:
// a server (net/scheduled_server.h) calls `enqueue` on packet arrival, asks
// `dequeue` for the next packet to transmit when the output is free, and
// reports `on_transmit_complete` when transmission ends.
//
// The (dequeue, on_transmit_complete) pair brackets the real-time interval in
// which the packet is "in service"; self-clocked disciplines (SFQ, SCFQ)
// derive their virtual time from it.
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  // Registers a flow before any of its packets arrive. Weight is r_f in
  // bits/s; `max_packet_bits` (l_f^max) is advisory and used by analytics.
  virtual FlowId add_flow(double weight, double max_packet_bits = 0.0,
                          std::string name = {}) {
    return flows_.add(weight, max_packet_bits, std::move(name));
  }

  virtual void enqueue(Packet p, Time now) = 0;
  virtual std::optional<Packet> dequeue(Time now) = 0;
  virtual void on_transmit_complete(const Packet& p, Time now) {
    (void)p;
    (void)now;
  }

  virtual bool empty() const = 0;
  virtual std::size_t backlog_packets() const = 0;

  // Bits queued for one flow (not counting a packet already handed to the
  // server via dequeue).
  virtual double backlog_bits(FlowId f) const = 0;

  virtual std::string name() const = 0;

  // Whether packets must belong to a flow registered via add_flow. Servers
  // drop (with cause) rather than enqueue when this holds and the flow is
  // unknown; FIFO-like disciplines that take any packet return false.
  virtual bool requires_registered_flows() const { return true; }

  // Removes a flow mid-run (churn). The flow's id and per-flow tag state stay
  // reserved so it can rejoin later; its queued packets are handed back to the
  // caller, which accounts for them (the server counts them as drops with
  // cause flow_removed). While removed, new packets for the flow are counted
  // drops, and the flow releases its share of the weight aggregates.
  //
  // Rejoin is paper-correct by construction: the next start tag is
  // max(v(t), F_prev) because implementations keep F_prev across the absence
  // and every tag formula already takes that max against current virtual time.
  virtual std::vector<Packet> remove_flow(FlowId f, Time now) {
    (void)now;
    flows_.set_active(f, false);  // throws on an id never registered
    return {};
  }

  // Re-admits a previously removed flow. Must not be called while the flow is
  // active. Tag state survives removal, so overload-protection disciplines
  // (VC) keep charging the flow for its pre-departure appetite.
  virtual void rejoin_flow(FlowId f, Time now) {
    (void)now;
    flows_.set_active(f, true);
  }

  // Evicts the most recently queued packet of flow `f` so the server can admit
  // a new arrival under a full buffer (pushout policy; the server picks the
  // victim flow). Disciplines whose bookkeeping cannot undo an enqueue return
  // nullopt, and the server falls back to tail-dropping the arrival instead.
  virtual std::optional<Packet> pushout(FlowId f, Time now) {
    (void)f;
    (void)now;
    return std::nullopt;
  }

  // Packets dropped by the scheduler itself because their flow was unknown or
  // removed (see admit()). Servers filter most of these before enqueue; this
  // counter catches direct scheduler use (tests, mesh nodes).
  uint64_t unknown_flow_drops() const { return unknown_flow_drops_; }

  const FlowTable& flows() const { return flows_; }
  FlowTable& flows() { return flows_; }

  // Attaches a packet-lifecycle tracer (obs/trace.h). nullptr (the default)
  // disables tracing; every hook below is then a single predictable branch.
  // Tracer::active() is latched here, so attach sinks before the tracer.
  void set_tracer(obs::Tracer* tracer) {
    tracer_ = tracer;
    trace_on_ = tracer != nullptr && tracer->active();
  }
  obs::Tracer* tracer() const { return tracer_; }

 protected:
  Scheduler() = default;

  // Hot-path hooks for implementations. `p` must already carry the fields
  // the event reports (tags for trace_tag, etc.).
  void trace_tag(const Packet& p, Time now, VirtualTime vtime,
                 std::size_t backlog) const {
    if (trace_on_) [[unlikely]]
      tracer_->emit(obs::make_event(obs::TraceEventType::kTag, p, now, vtime,
                                    backlog));
  }
  void trace_dequeue(const Packet& p, Time now, VirtualTime vtime,
                     std::size_t backlog) const {
    if (trace_on_) [[unlikely]]
      tracer_->emit(obs::make_event(obs::TraceEventType::kDequeue, p, now,
                                    vtime, backlog));
  }
  // Virtual-time changes outside a dequeue (e.g. the end-of-busy-period jump).
  void trace_vtime(Time now, VirtualTime vtime, std::size_t backlog) const {
    if (trace_on_) [[unlikely]] {
      obs::TraceEvent e;
      e.type = obs::TraceEventType::kVtime;
      e.t = now;
      e.vtime = vtime;
      e.backlog = backlog;
      tracer_->emit(e);
    }
  }

  void trace_drop(const Packet& p, Time now, obs::DropCause cause) const {
    if (trace_on_) [[unlikely]]
      tracer_->emit(obs::make_event(obs::TraceEventType::kDrop, p, now,
                                    /*vtime=*/0.0, backlog_packets(), cause));
  }

  // Gatekeeper for enqueue: true when the packet may enter the discipline.
  // When false the packet has already been counted and traced as an
  // unknown-flow drop — implementations just return. Replaces the old
  // behaviour of throwing std::out_of_range from the hot path, so a
  // misconfigured mesh node degrades to a counted drop instead of aborting.
  bool admit(const Packet& p, Time now) {
    if (!requires_registered_flows() || flows_.active(p.flow)) return true;
    ++unknown_flow_drops_;
    trace_drop(p, now, obs::DropCause::kUnknownFlow);
    return false;
  }

  FlowTable flows_;
  uint64_t unknown_flow_drops_ = 0;
  obs::Tracer* tracer_ = nullptr;
  bool trace_on_ = false;  // tracer_ set AND it has a consuming sink
};

// Per-flow FIFO of queued packets plus the bookkeeping every tag-based
// discipline needs. Shared by SFQ/WFQ/SCFQ/FQS/VC/EDD implementations.
class PerFlowQueues {
 public:
  void ensure(FlowId f) {
    if (f >= queues_.size()) queues_.resize(f + 1);
  }

  void push(Packet p) {
    ensure(p.flow);
    FlowQueue& fq = queues_[p.flow];
    fq.bits += p.length_bits;
    fq.q.push_back(std::move(p));
    ++packets_;
  }

  bool flow_empty(FlowId f) const {
    return f >= queues_.size() || queues_[f].q.empty();
  }

  const Packet& head(FlowId f) const { return queues_[f].q.front(); }
  Packet& head(FlowId f) { return queues_[f].q.front(); }

  Packet pop(FlowId f) {
    FlowQueue& fq = queues_[f];
    Packet p = std::move(fq.q.front());
    fq.q.pop_front();
    fq.bits -= p.length_bits;
    if (fq.q.empty()) fq.bits = 0.0;  // kill rounding residue
    --packets_;
    return p;
  }

  // Removes and returns the most recently queued packet of flow `f` (pushout
  // victim). Precondition: !flow_empty(f).
  Packet pop_back(FlowId f) {
    FlowQueue& fq = queues_[f];
    Packet p = std::move(fq.q.back());
    fq.q.pop_back();
    fq.bits -= p.length_bits;
    if (fq.q.empty()) fq.bits = 0.0;
    --packets_;
    return p;
  }

  // Removes and returns every queued packet of flow `f`, oldest first
  // (flow removal).
  std::vector<Packet> drain(FlowId f) {
    std::vector<Packet> out;
    if (f >= queues_.size()) return out;
    FlowQueue& fq = queues_[f];
    out.assign(std::make_move_iterator(fq.q.begin()),
               std::make_move_iterator(fq.q.end()));
    packets_ -= fq.q.size();
    fq.q.clear();
    fq.bits = 0.0;
    return out;
  }

  std::size_t packets() const { return packets_; }

  // O(1): per-flow queued bits are maintained incrementally so the server's
  // pushout policy (longest-queue-drop) can scan flows cheaply on overload.
  double bits(FlowId f) const {
    return f >= queues_.size() ? 0.0 : queues_[f].bits;
  }

  std::size_t flow_packets(FlowId f) const {
    return f >= queues_.size() ? 0 : queues_[f].q.size();
  }

 private:
  struct FlowQueue {
    std::deque<Packet> q;
    double bits = 0.0;  // sum of q's lengths, maintained on push/pop
  };
  std::vector<FlowQueue> queues_;
  std::size_t packets_ = 0;
};

}  // namespace sfq
