// Recycling slab for queued packets.
//
// Every tag-based discipline keeps its backlog in PerFlowQueues
// (core/scheduler.h). Backing those FIFOs with std::deque meant each
// scheduler churned deque chunks on every push/pop; under steady backlog
// that is a heap allocation every few dozen packets. The pool replaces the
// chunks with one slab of nodes shared across all flows of a scheduler:
// nodes are addressed by dense uint32 index, linked doubly (so PerFlowQueues
// can pop from both ends and unlink in O(1)), and recycled through a
// free-list. In steady state — backlog at or below its high-water mark — a
// push is a pop from the free-list and a pop is a push onto it; no heap
// traffic at all (docs/PERFORMANCE.md).
//
// References returned by packet() are invalidated by acquire() (the slab may
// grow); callers read the head, decide, and only then mutate — the same
// discipline PerFlowQueues has always imposed on its own head() accessor.
#pragma once

#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/packet.h"

namespace sfq {

class PacketPool {
 public:
  static constexpr uint32_t kNil = 0xffffffffu;

  // Moves `p` into a slot and returns its index (links reset to kNil).
  uint32_t acquire(Packet&& p) {
    uint32_t i;
    if (free_head_ != kNil) {
      i = free_head_;
      free_head_ = nodes_[i].next;
    } else {
      i = static_cast<uint32_t>(nodes_.size());
      nodes_.emplace_back();
    }
    Node& n = nodes_[i];
    n.p = std::move(p);
    n.prev = kNil;
    n.next = kNil;
    ++live_;
    return i;
  }

  // Returns the slot to the free-list. The caller must have unlinked it.
  void release(uint32_t i) {
    assert(live_ > 0);
    nodes_[i].next = free_head_;
    free_head_ = i;
    --live_;
  }

  Packet& packet(uint32_t i) { return nodes_[i].p; }
  const Packet& packet(uint32_t i) const { return nodes_[i].p; }

  uint32_t prev(uint32_t i) const { return nodes_[i].prev; }
  uint32_t next(uint32_t i) const { return nodes_[i].next; }
  void set_prev(uint32_t i, uint32_t p) { nodes_[i].prev = p; }
  void set_next(uint32_t i, uint32_t n) { nodes_[i].next = n; }

  // Slab high-water mark (allocated slots, live or free) — lets tests pin
  // down that steady-state traffic stops growing the pool.
  std::size_t slots() const { return nodes_.size(); }
  std::size_t live() const { return live_; }

 private:
  struct Node {
    Packet p{};
    uint32_t prev = kNil;
    uint32_t next = kNil;
  };
  std::vector<Node> nodes_;
  uint32_t free_head_ = kNil;
  std::size_t live_ = 0;
};

}  // namespace sfq
