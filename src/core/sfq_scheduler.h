#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/indexed_heap.h"
#include "core/scheduler.h"

namespace sfq {

// Tie-breaking rule used when two head packets carry equal start tags
// (paper §2: "ties are broken arbitrarily (some tie breaking rules may be
// more desirable than others)").
enum class TieBreak {
  kFifo,            // earlier-enqueued head wins (deterministic default)
  kLowWeightFirst,  // favour low-throughput (interactive) flows — §2.3
  kHighWeightFirst, // favour high-throughput flows
};

// Start-time Fair Queuing (paper §2, eqs. 4–5 and the generalized form
// eq. 36).
//
//   S(p_f^j) = max{ v(A(p_f^j)), F(p_f^{j-1}) }
//   F(p_f^j) = S(p_f^j) + l_f^j / r_f^j          (r_f^j = flow weight unless
//                                                 the packet carries a rate)
//
// Packets are transmitted in increasing start-tag order. The server virtual
// time v(t) is the start tag of the packet in service; at the end of a busy
// period it becomes the maximum finish tag assigned to any serviced packet.
// v(t) never requires simulating a fluid system, which is what makes SFQ as
// cheap as SCFQ (O(log Q) per packet) yet fair on variable-rate servers.
class SfqScheduler : public Scheduler {
 public:
  explicit SfqScheduler(TieBreak tie_break = TieBreak::kFifo)
      : tie_break_(tie_break) {}

  FlowId add_flow(double weight, double max_packet_bits = 0.0,
                  std::string name = {}) override;

  bool enqueue(Packet p, Time now) override;
  std::optional<Packet> dequeue(Time now) override;
  void on_transmit_complete(const Packet& p, Time now) override;

  std::vector<Packet> remove_flow(FlowId f, Time now) override;
  std::optional<Packet> pushout(FlowId f, Time now) override;

  bool empty() const override { return queues_.packets() == 0; }
  std::size_t backlog_packets() const override { return queues_.packets(); }
  double backlog_bits(FlowId f) const override { return queues_.bits(f); }
  std::string name() const override { return "SFQ"; }

  // Current server virtual time (exposed for tests and for the analytic
  // fairness checks, which are stated in the virtual-time domain).
  VirtualTime vtime() const { return vtime_; }

  // Finish tag of the last packet of flow f that has arrived (F(p_f^{j-1})
  // for the next arrival). Exposed for tests.
  VirtualTime last_finish_tag(FlowId f) const { return flow_state_.at(f).last_finish; }

  // Test hook (chaos-harness self-test only): when set, every third packet
  // of a flow skips the max with F(p_f^{j-1}) and tags S = v(t) directly —
  // the classic tag-arithmetic bug eq. 4 exists to prevent. The harness must
  // detect it ("start tag regressed below previous finish") and shrink the
  // failing scenario; see tests/test_chaos_harness.cc. Process-global on
  // purpose: the harness builds schedulers behind the config factory and has
  // no handle to individual instances. Never set outside tests.
  static void set_tag_bug_for_test(bool on);

 private:
  struct FlowState {
    VirtualTime last_finish = 0.0;  // F(p_f^0) = 0
  };

  double tiebreak_value(FlowId f) const;
  void push_head(FlowId f);

  TieBreak tie_break_;
  PerFlowQueues queues_;
  std::vector<FlowState> flow_state_;
  IndexedHeap<TagKey> ready_;  // backlogged flows keyed by head start tag
  VirtualTime vtime_ = 0.0;
  VirtualTime max_finish_serviced_ = 0.0;
  bool in_service_ = false;
  uint64_t enqueue_seq_ = 0;  // deterministic FIFO tie-break
};

}  // namespace sfq
