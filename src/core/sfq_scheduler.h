#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/calendar_queue.h"
#include "core/indexed_heap.h"
#include "core/scheduler.h"

namespace sfq {

// Tie-breaking rule used when two head packets carry equal start tags
// (paper §2: "ties are broken arbitrarily (some tie breaking rules may be
// more desirable than others)").
enum class TieBreak {
  kFifo,            // earlier-enqueued head wins (deterministic default)
  kLowWeightFirst,  // favour low-throughput (interactive) flows — §2.3
  kHighWeightFirst, // favour high-throughput flows
};

// Which ready-queue structure orders backlogged flows by head start tag.
enum class SfqCore {
  kHeap,   // IndexedHeap: exact tag order, O(log Q) per packet
  kWheel,  // CalendarQueue: tag order quantized to `wheel_quantum`,
           // O(1) amortized per packet independent of Q (flow-scale core);
           // costs a documented 2*quantum extra fairness slack
};

struct SfqOptions {
  TieBreak tie_break = TieBreak::kFifo;
  SfqCore core = SfqCore::kHeap;
  // Bucket width of the wheel in virtual seconds; must be > 0 for kWheel.
  // The config layer defaults it to l_max / C (one max-packet service time at
  // full link rate), which keeps the extra fairness slack (2*quantum) far
  // below the Theorem-1 bound term l_f/r_f.
  double wheel_quantum = 0.0;
  // Idle-flow GC: a removed flow's id is retired and reclaimed (returned to
  // FlowTable's free list for reuse by add_flow) once it is tag-safe —
  // see retire/reclaim comments in the .cc. Off by default: the sharded RT
  // engine's unified registration removes/rejoins ids and must keep them.
  bool flow_gc = false;
};

// Start-time Fair Queuing (paper §2, eqs. 4–5 and the generalized form
// eq. 36).
//
//   S(p_f^j) = max{ v(A(p_f^j)), F(p_f^{j-1}) }
//   F(p_f^j) = S(p_f^j) + l_f^j / r_f^j          (r_f^j = flow weight unless
//                                                 the packet carries a rate)
//
// Packets are transmitted in increasing start-tag order. The server virtual
// time v(t) is the start tag of the packet in service; at the end of a busy
// period it becomes the maximum finish tag assigned to any serviced packet.
// v(t) never requires simulating a fluid system, which is what makes SFQ as
// cheap as SCFQ (O(log Q) per packet) yet fair on variable-rate servers.
//
// With SfqCore::kWheel the "increasing start-tag order" is relaxed to
// increasing *quantized* start-tag order (buckets of `wheel_quantum` virtual
// seconds, FIFO within a bucket): served tags regress by less than one
// quantum, and the fairness bound gains at most 2*quantum (derivation in
// docs/PERFORMANCE.md next to the Theorem 1 discussion). v(t) is clamped
// monotone across intra-bucket regressions.
class SfqScheduler : public Scheduler {
 public:
  explicit SfqScheduler(TieBreak tie_break = TieBreak::kFifo)
      : SfqScheduler(SfqOptions{tie_break}) {}
  explicit SfqScheduler(const SfqOptions& options);

  FlowId add_flow(double weight, double max_packet_bits = 0.0,
                  std::string name = {}) override;

  bool enqueue(Packet p, Time now) override;
  std::optional<Packet> dequeue(Time now) override;
  void on_transmit_complete(const Packet& p, Time now) override;

  std::vector<Packet> remove_flow(FlowId f, Time now) override;
  void rejoin_flow(FlowId f, Time now) override;
  std::optional<Packet> pushout(FlowId f, Time now) override;

  bool empty() const override { return queues_.packets() == 0; }
  std::size_t backlog_packets() const override { return queues_.packets(); }
  double backlog_bits(FlowId f) const override { return queues_.bits(f); }
  std::string name() const override {
    return use_wheel_ ? "SFQ-W" : "SFQ";
  }
  VirtualTime quantization_window() const override {
    return use_wheel_ ? options_.wheel_quantum : 0.0;
  }

  // Pre-sizes every per-flow structure (flow table incl. key index, tag
  // state, queues, ready structure) for up to n concurrently-live flows, so
  // steady-state operation — churn with recycled ids included — performs no
  // allocations beyond the packet slab's high-water growth.
  void reserve_flows(std::size_t n);

  // Current server virtual time (exposed for tests and for the analytic
  // fairness checks, which are stated in the virtual-time domain).
  VirtualTime vtime() const { return vtime_; }

  // Finish tag of the last packet of flow f that has arrived (F(p_f^{j-1})
  // for the next arrival). Exposed for tests.
  VirtualTime last_finish_tag(FlowId f) const { return flow_state_.at(f).last_finish; }

  // Number of removed flows whose ids are retired but not yet tag-safe to
  // reclaim (flow_gc only; exposed for the bounded-table regression tests).
  std::size_t gc_pending() const { return retired_.size(); }

  // Test hook (chaos-harness self-test only): when set, every third packet
  // of a flow skips the max with F(p_f^{j-1}) and tags S = v(t) directly —
  // the classic tag-arithmetic bug eq. 4 exists to prevent. The harness must
  // detect it ("start tag regressed below previous finish") and shrink the
  // failing scenario; see tests/test_chaos_harness.cc. Process-global on
  // purpose: the harness builds schedulers behind the config factory and has
  // no handle to individual instances. Never set outside tests.
  static void set_tag_bug_for_test(bool on);

 private:
  struct FlowState {
    VirtualTime last_finish = 0.0;  // F(p_f^0) = 0
  };

  // Retirement order for GC'd ids: earliest-reclaimable first.
  struct RetireKey {
    double finish = 0.0;
    uint32_t id = 0;
    friend bool operator<(const RetireKey& a, const RetireKey& b) {
      if (a.finish != b.finish) return a.finish < b.finish;
      return a.id < b.id;
    }
  };

  double tiebreak_value(FlowId f) const;
  void push_head(FlowId f);
  void reclaim_retired();

  // Ready-structure dispatch: exactly one of ready_/wheel_ is in use, chosen
  // once at construction (use_wheel_ is a predictable branch on the hot path).
  FlowId ready_top();
  void ready_erase_if_present(FlowId f);
  bool ready_empty() const {
    return use_wheel_ ? wheel_.empty() : ready_.empty();
  }

  SfqOptions options_;
  bool use_wheel_ = false;
  PerFlowQueues queues_;
  std::vector<FlowState> flow_state_;
  IndexedHeap<TagKey> ready_;   // kHeap: backlogged flows by head start tag
  CalendarQueue wheel_;         // kWheel: same, quantized (unused for kHeap)
  IndexedHeap<RetireKey> retired_;  // flow_gc: removed ids awaiting reclaim
  VirtualTime vtime_ = 0.0;
  VirtualTime max_finish_serviced_ = 0.0;
  bool in_service_ = false;
  uint64_t enqueue_seq_ = 0;  // deterministic FIFO tie-break
};

}  // namespace sfq
