// Growable power-of-two ring buffer (docs/PERFORMANCE.md).
//
// The last two non-zero steady-state allocators in the scheduler zoo were
// std::deque members: GpsVirtualTime's per-flow fluid queue (WFQ/FQS) and
// FairAirport's per-flow packet/stamp queues. libstdc++'s deque allocates a
// fresh map node roughly every 512 bytes of payload even when the queue
// oscillates around a steady depth, so those disciplines kept paying
// ~0.02-0.2 allocs per packet after warm-up. This ring keeps a single
// power-of-two storage block and reuses it: once the buffer has grown to the
// high-water depth of the run, push/pop never allocate again.
//
// Supported operations mirror the deque subset the schedulers use:
// push_back / pop_front / pop_back / front / back / operator[] / size /
// empty / clear. Indexing is O(1) (mask, not modulo). Elements are stored
// by value; growth copies in logical order, so iteration state (indices)
// held by callers stays valid across a grow as long as it is an index, not
// a pointer.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace sfq {

template <typename T>
class RingBuffer {
 public:
  RingBuffer() = default;

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }
  std::size_t capacity() const { return buf_.size(); }

  T& front() { return buf_[head_]; }
  const T& front() const { return buf_[head_]; }
  T& back() { return buf_[mask(head_ + size_ - 1)]; }
  const T& back() const { return buf_[mask(head_ + size_ - 1)]; }

  // Logical index: 0 is the front, size()-1 the back.
  T& operator[](std::size_t i) { return buf_[mask(head_ + i)]; }
  const T& operator[](std::size_t i) const { return buf_[mask(head_ + i)]; }

  void push_back(const T& v) {
    if (size_ == buf_.size()) grow();
    buf_[mask(head_ + size_)] = v;
    ++size_;
  }
  void push_back(T&& v) {
    if (size_ == buf_.size()) grow();
    buf_[mask(head_ + size_)] = std::move(v);
    ++size_;
  }

  void pop_front() {
    buf_[head_] = T{};  // release resources held by the slot
    head_ = mask(head_ + 1);
    --size_;
  }

  void pop_back() {
    --size_;
    buf_[mask(head_ + size_)] = T{};
  }

  // Drops the elements but keeps the storage (steady-state reuse).
  void clear() {
    for (std::size_t i = 0; i < size_; ++i) buf_[mask(head_ + i)] = T{};
    head_ = 0;
    size_ = 0;
  }

 private:
  std::size_t mask(std::size_t i) const { return i & (buf_.size() - 1); }

  void grow() {
    const std::size_t next = buf_.empty() ? 8 : buf_.size() * 2;
    std::vector<T> fresh(next);
    for (std::size_t i = 0; i < size_; ++i)
      fresh[i] = std::move(buf_[mask(head_ + i)]);
    buf_ = std::move(fresh);
    head_ = 0;
  }

  std::vector<T> buf_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace sfq
