// Basic unit types shared by every module.
//
// Conventions (see DESIGN.md §4):
//   * time is in seconds (double),
//   * data is in bits (double where fractional work matters, uint64_t for
//     packet lengths),
//   * rates and weights are in bits/second — the paper interprets a flow
//     weight r_f as a rate whenever throughput or delay guarantees are
//     derived, so we use one unit for both.
#pragma once

#include <cstdint>
#include <limits>

namespace sfq {

using Time = double;         // seconds
using VirtualTime = double;  // scheduler virtual-time domain (dimension: bits/weight)
using FlowId = uint32_t;

inline constexpr Time kTimeInfinity = std::numeric_limits<Time>::infinity();
inline constexpr FlowId kInvalidFlow = static_cast<FlowId>(-1);

// Unit helpers. Packet lengths in the paper are quoted in bytes; all internal
// arithmetic is in bits.
constexpr double bits(double b) { return b; }
constexpr double bytes(double b) { return 8.0 * b; }
constexpr double kilobits_per_sec(double r) { return 1e3 * r; }
constexpr double megabits_per_sec(double r) { return 1e6 * r; }

constexpr double milliseconds(double ms) { return ms * 1e-3; }
constexpr double to_milliseconds(Time t) { return t * 1e3; }

}  // namespace sfq
