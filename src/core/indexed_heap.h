// A binary min-heap over dense integer ids with position tracking, so a
// scheduler can keep each backlogged flow in the heap exactly once and update
// its key in O(log n) when the flow's head packet changes.
//
// Keys are compared with std::less<Key>; ties therefore resolve through the
// key type itself (schedulers embed an explicit tie-break component in Key).
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

namespace sfq {

template <typename Key>
class IndexedHeap {
 public:
  // `capacity_hint` is the expected id universe; ids may exceed it (storage
  // grows on demand).
  explicit IndexedHeap(std::size_t capacity_hint = 0) { pos_.reserve(capacity_hint); }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  bool contains(uint32_t id) const {
    return id < pos_.size() && pos_[id] != kAbsent;
  }

  // Inserts id with key; id must not already be present.
  void push(uint32_t id, const Key& key) {
    assert(!contains(id));
    ensure(id);
    pos_[id] = heap_.size();
    heap_.push_back(Entry{key, id});
    sift_up(heap_.size() - 1);
  }

  // Replaces the key of a present id (may move either direction).
  void update(uint32_t id, const Key& key) {
    assert(contains(id));
    std::size_t i = pos_[id];
    heap_[i].key = key;
    if (!sift_up(i)) sift_down(i);
  }

  // Inserts or updates.
  void push_or_update(uint32_t id, const Key& key) {
    if (contains(id)) update(id, key); else push(id, key);
  }

  uint32_t top_id() const { assert(!empty()); return heap_[0].id; }
  const Key& top_key() const { assert(!empty()); return heap_[0].key; }

  void pop() { erase(top_id()); }

  void erase(uint32_t id) {
    assert(contains(id));
    std::size_t i = pos_[id];
    pos_[id] = kAbsent;
    if (i + 1 != heap_.size()) {
      heap_[i] = heap_.back();
      pos_[heap_[i].id] = i;
      heap_.pop_back();
      if (!sift_up(i)) sift_down(i);
    } else {
      heap_.pop_back();
    }
  }

  void clear() {
    for (const Entry& e : heap_) pos_[e.id] = kAbsent;
    heap_.clear();
  }

 private:
  struct Entry {
    Key key;
    uint32_t id;
  };
  static constexpr std::size_t kAbsent = static_cast<std::size_t>(-1);

  void ensure(uint32_t id) {
    if (id >= pos_.size()) pos_.resize(id + 1, kAbsent);
  }

  bool sift_up(std::size_t i) {
    bool moved = false;
    while (i > 0) {
      std::size_t parent = (i - 1) / 2;
      if (!(heap_[i].key < heap_[parent].key)) break;
      swap_at(i, parent);
      i = parent;
      moved = true;
    }
    return moved;
  }

  void sift_down(std::size_t i) {
    for (;;) {
      std::size_t left = 2 * i + 1, right = left + 1, best = i;
      if (left < heap_.size() && heap_[left].key < heap_[best].key) best = left;
      if (right < heap_.size() && heap_[right].key < heap_[best].key) best = right;
      if (best == i) return;
      swap_at(i, best);
      i = best;
    }
  }

  void swap_at(std::size_t a, std::size_t b) {
    std::swap(heap_[a], heap_[b]);
    pos_[heap_[a].id] = a;
    pos_[heap_[b].id] = b;
  }

  std::vector<Entry> heap_;
  std::vector<std::size_t> pos_;
};

// Common heap key for tag-based schedulers: primary tag, explicit tie-break
// value, then a monotone sequence number for full determinism.
struct TagKey {
  double tag = 0.0;
  double tiebreak = 0.0;
  uint64_t seq = 0;

  friend bool operator<(const TagKey& a, const TagKey& b) {
    if (a.tag != b.tag) return a.tag < b.tag;
    if (a.tiebreak != b.tiebreak) return a.tiebreak < b.tiebreak;
    return a.seq < b.seq;
  }
};

}  // namespace sfq
