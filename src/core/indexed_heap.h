// A d-ary min-heap over dense integer ids with position tracking, so a
// scheduler can keep each backlogged flow in the heap exactly once and update
// its key in O(log n) when the flow's head packet changes, and the event
// queue can cancel an arbitrary scheduled event in O(log n).
//
// Keys are compared with std::less<Key>; ties therefore resolve through the
// key type itself (schedulers embed an explicit tie-break component in Key).
//
// `Arity` selects the branching factor. The default (2) is the classic
// binary heap; the simulator's event queue uses 4, which shortens the tree
// by half and keeps four sibling keys in one cache line, a measurably better
// trade on pop-heavy workloads (docs/PERFORMANCE.md).
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace sfq {

template <typename Key, std::size_t Arity = 2>
class IndexedHeap {
  static_assert(Arity >= 2, "a heap needs at least two children per node");
 public:
  // `capacity_hint` is the expected id universe; ids may exceed it (storage
  // grows on demand).
  explicit IndexedHeap(std::size_t capacity_hint = 0) { pos_.reserve(capacity_hint); }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  // Pre-sizes both the entry storage and the id->position index so that
  // pushes of ids < n never allocate (zero-alloc steady-state gates).
  void reserve(std::size_t n) {
    heap_.reserve(n);
    if (n > pos_.size()) pos_.resize(n, kAbsent);
  }

  bool contains(uint32_t id) const {
    return id < pos_.size() && pos_[id] != kAbsent;
  }

  // Inserts id with key; id must not already be present.
  void push(uint32_t id, const Key& key) {
    assert(!contains(id));
    ensure(id);
    pos_[id] = heap_.size();
    heap_.push_back(Entry{key, id});
    sift_up(heap_.size() - 1);
  }

  // Replaces the key of a present id (may move either direction).
  void update(uint32_t id, const Key& key) {
    assert(contains(id));
    std::size_t i = pos_[id];
    heap_[i].key = key;
    if (!sift_up(i)) sift_down(i);
  }

  // Inserts or updates.
  void push_or_update(uint32_t id, const Key& key) {
    if (contains(id)) update(id, key); else push(id, key);
  }

  uint32_t top_id() const { assert(!empty()); return heap_[0].id; }
  const Key& top_key() const { assert(!empty()); return heap_[0].key; }

  // Dedicated root removal: the displaced tail can only sink, so this skips
  // erase()'s position lookup and upward probe.
  void pop() {
    assert(!empty());
    pos_[heap_[0].id] = kAbsent;
    if (heap_.size() > 1) {
      heap_[0] = heap_.back();
      heap_.pop_back();
      pos_[heap_[0].id] = 0;
      sift_down(0);
    } else {
      heap_.pop_back();
    }
  }

  void erase(uint32_t id) {
    assert(contains(id));
    std::size_t i = pos_[id];
    pos_[id] = kAbsent;
    if (i + 1 != heap_.size()) {
      heap_[i] = heap_.back();
      pos_[heap_[i].id] = i;
      heap_.pop_back();
      if (!sift_up(i)) sift_down(i);
    } else {
      heap_.pop_back();
    }
  }

  void clear() {
    for (const Entry& e : heap_) pos_[e.id] = kAbsent;
    heap_.clear();
  }

 private:
  struct Entry {
    Key key;
    uint32_t id;
  };
  static constexpr std::size_t kAbsent = static_cast<std::size_t>(-1);

  void ensure(uint32_t id) {
    if (id >= pos_.size()) pos_.resize(id + 1, kAbsent);
  }

  // Both sifts move a hole instead of swapping: the displaced entry is held
  // in a local and written exactly once at its final position, halving the
  // entry and pos_ stores per level on the pop-heavy event-queue workload.
  bool sift_up(std::size_t i) {
    if (i == 0) return false;
    const Entry e = heap_[i];
    bool moved = false;
    while (i > 0) {
      const std::size_t parent = (i - 1) / Arity;
      if (!(e.key < heap_[parent].key)) break;
      heap_[i] = heap_[parent];
      pos_[heap_[i].id] = i;
      i = parent;
      moved = true;
    }
    if (moved) {
      heap_[i] = e;
      pos_[e.id] = i;
    }
    return moved;
  }

  void sift_down(std::size_t i) {
    const std::size_t n = heap_.size();
    const Entry e = heap_[i];
    bool moved = false;
    for (;;) {
      const std::size_t first = Arity * i + 1;
      if (first >= n) break;
      const std::size_t last = first + Arity < n ? first + Arity : n;
      std::size_t best = first;
      for (std::size_t c = first + 1; c < last; ++c)
        if (heap_[c].key < heap_[best].key) best = c;
      if (!(heap_[best].key < e.key)) break;
      heap_[i] = heap_[best];
      pos_[heap_[i].id] = i;
      i = best;
      moved = true;
    }
    if (moved) {
      heap_[i] = e;
      pos_[e.id] = i;
    }
  }

  std::vector<Entry> heap_;
  std::vector<std::size_t> pos_;
};

// Common heap key for tag-based schedulers: primary tag, explicit tie-break
// value, then a monotone sequence number for full determinism.
struct TagKey {
  double tag = 0.0;
  double tiebreak = 0.0;
  uint64_t seq = 0;

  friend bool operator<(const TagKey& a, const TagKey& b) {
    if (a.tag != b.tag) return a.tag < b.tag;
    if (a.tiebreak != b.tiebreak) return a.tiebreak < b.tiebreak;
    return a.seq < b.seq;
  }
};

}  // namespace sfq
