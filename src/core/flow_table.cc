#include "core/flow_table.h"

#include <stdexcept>

namespace sfq {

FlowId FlowTable::add(double weight, double max_packet_bits, std::string name) {
  if (weight <= 0.0) throw std::invalid_argument("flow weight must be positive");
  FlowId id = static_cast<FlowId>(flows_.size());
  if (name.empty()) name = "flow" + std::to_string(id);
  flows_.push_back(FlowSpec{id, weight, max_packet_bits, std::move(name)});
  return id;
}

double FlowTable::total_weight() const {
  double s = 0.0;
  for (const auto& f : flows_)
    if (f.active) s += f.weight;
  return s;
}

double FlowTable::total_max_packet_bits() const {
  double s = 0.0;
  for (const auto& f : flows_)
    if (f.active) s += f.max_packet_bits;
  return s;
}

double FlowTable::sum_other_max_packets(FlowId f) const {
  double s = 0.0;
  for (const auto& fl : flows_) {
    if (fl.id != f && fl.active) s += fl.max_packet_bits;
  }
  return s;
}

}  // namespace sfq
