#include "core/flow_table.h"

#include <stdexcept>

namespace sfq {

namespace {
// SplitMix64 finalizer — same mixer the shard router uses; good avalanche for
// arbitrary 64-bit keys feeding a power-of-two probe table.
uint64_t mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}
}  // namespace

const FlowSpec& FlowTable::live_ref(FlowId id) const {
  if (!contains(id))
    throw std::out_of_range("FlowTable: flow id " + std::to_string(id) +
                            " is not a live flow");
  return slots_[id];
}

FlowSpec& FlowTable::live_ref(FlowId id) {
  if (!contains(id))
    throw std::out_of_range("FlowTable: flow id " + std::to_string(id) +
                            " is not a live flow");
  return slots_[id];
}

FlowId FlowTable::add(double weight, double max_packet_bits, std::string name) {
  if (weight <= 0.0) throw std::invalid_argument("flow weight must be positive");
  FlowId id;
  if (!free_list_.empty()) {
    id = free_list_.back();
    free_list_.pop_back();
  } else {
    id = static_cast<FlowId>(slots_.size());
    slots_.emplace_back();
  }
  if (name.empty()) name = "flow" + std::to_string(id);
  FlowSpec& s = slots_[id];
  s = FlowSpec{id, weight, max_packet_bits, /*key=*/0, std::move(name),
               /*active=*/true, /*has_key=*/false};
  ++live_count_;
  acquire_aggregates(s);
  return id;
}

void FlowTable::reclaim(FlowId id) {
  FlowSpec& s = live_ref(id);
  const bool was_active = s.active;
  if (s.has_key) unbind_key(s.key);
  s.id = kInvalidFlow;  // dead-slot marker
  s.active = false;
  s.has_key = false;
  s.name.clear();
  // Release only after the slot is marked dead: release_aggregates may
  // trigger the periodic exact rebuild, which must not see this slot as a
  // live contributor (it would silently re-add the departing weight).
  if (was_active) release_aggregates(s);
  --live_count_;
  free_list_.push_back(id);
}

void FlowTable::set_active(FlowId id, bool active) {
  FlowSpec& s = live_ref(id);
  if (s.active == active) return;
  s.active = active;
  if (active) acquire_aggregates(s);
  else release_aggregates(s);
}

void FlowTable::acquire_aggregates(const FlowSpec& s) {
  total_weight_ += s.weight;
  total_max_packet_bits_ += s.max_packet_bits;
  maybe_rebuild_aggregates();
}

void FlowTable::release_aggregates(const FlowSpec& s) {
  total_weight_ -= s.weight;
  total_max_packet_bits_ -= s.max_packet_bits;
  maybe_rebuild_aggregates();
}

void FlowTable::maybe_rebuild_aggregates() {
  if (++aggregate_ops_ >= slots_.size() + 64) rebuild_aggregates();
}

void FlowTable::rebuild_aggregates() {
  aggregate_ops_ = 0;
  double w = 0.0, l = 0.0;
  for (const FlowSpec& s : slots_) {
    if (s.active) {
      w += s.weight;
      l += s.max_packet_bits;
    }
  }
  total_weight_ = w;
  total_max_packet_bits_ = l;
}

std::size_t FlowTable::probe_start(uint64_t key) const {
  return static_cast<std::size_t>(mix64(key)) & (keys_.size() - 1);
}

void FlowTable::bind_key(uint64_t key, FlowId id) {
  FlowSpec& s = live_ref(id);
  if (s.has_key)
    throw std::invalid_argument("FlowTable::bind_key: flow already has a key");
  if (keys_.empty() || (keys_used_ + 1) * 2 > keys_.size())
    rehash_keys(keys_.empty() ? 16 : keys_.size() * 2);
  std::size_t i = probe_start(key);
  while (keys_[i].id != kInvalidFlow) {
    if (keys_[i].key == key)
      throw std::invalid_argument("FlowTable::bind_key: duplicate key");
    i = (i + 1) & (keys_.size() - 1);
  }
  keys_[i] = KeyEntry{key, id};
  ++keys_used_;
  s.key = key;
  s.has_key = true;
}

FlowId FlowTable::find(uint64_t key) const {
  if (keys_.empty()) return kInvalidFlow;
  std::size_t i = probe_start(key);
  while (keys_[i].id != kInvalidFlow) {
    if (keys_[i].key == key) return keys_[i].id;
    i = (i + 1) & (keys_.size() - 1);
  }
  return kInvalidFlow;
}

void FlowTable::unbind_key(uint64_t key) {
  if (keys_.empty()) return;
  std::size_t i = probe_start(key);
  while (keys_[i].id != kInvalidFlow) {
    if (keys_[i].key == key) break;
    i = (i + 1) & (keys_.size() - 1);
  }
  if (keys_[i].id == kInvalidFlow) return;  // not bound (defensive)
  keys_[i].id = kInvalidFlow;
  --keys_used_;
  // Backward-shift deletion keeps probe chains contiguous without
  // tombstones (no load-factor rot under sustained churn).
  std::size_t hole = i;
  std::size_t j = (i + 1) & (keys_.size() - 1);
  while (keys_[j].id != kInvalidFlow) {
    const std::size_t home = probe_start(keys_[j].key);
    // Move j into the hole unless j's home lies strictly after the hole on
    // the (cyclic) probe path — the standard Robin-Hood backshift test.
    const bool reachable =
        hole <= j ? (home <= hole || home > j) : (home <= hole && home > j);
    if (reachable) {
      keys_[hole] = keys_[j];
      keys_[j].id = kInvalidFlow;
      hole = j;
    }
    j = (j + 1) & (keys_.size() - 1);
  }
}

void FlowTable::rehash_keys(std::size_t capacity) {
  std::vector<KeyEntry> old = std::move(keys_);
  keys_.assign(capacity, KeyEntry{});
  for (const KeyEntry& e : old) {
    if (e.id == kInvalidFlow) continue;
    std::size_t i = probe_start(e.key);
    while (keys_[i].id != kInvalidFlow) i = (i + 1) & (keys_.size() - 1);
    keys_[i] = e;
  }
}

void FlowTable::reserve(std::size_t n) {
  slots_.reserve(n);
  free_list_.reserve(n);
  std::size_t cap = 16;
  while (cap < n * 2) cap <<= 1;
  if (cap > keys_.size()) rehash_keys(cap);
}

}  // namespace sfq
