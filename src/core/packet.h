#pragma once

#include <cstdint>

#include "core/types.h"

namespace sfq {

// A packet as seen by a scheduler/server. `length_bits` is the transmission
// cost; `rate` is the per-packet rate r_f^j of generalized SFQ (eq. 36) — zero
// means "use the flow's weight".
struct Packet {
  FlowId flow = kInvalidFlow;
  uint64_t seq = 0;          // per-flow sequence number (1-based, like p_f^j)
  double length_bits = 0.0;  // l_f^j
  Time arrival = 0.0;        // A(p_f^j) at this server
  double rate = 0.0;         // r_f^j for generalized SFQ; 0 => flow weight

  // Tags stamped by tag-based schedulers; meaning depends on the algorithm
  // (start/finish tags for SFQ/WFQ/SCFQ/FQS, timestamp for Virtual Clock,
  // deadline for Delay-EDD). Kept on the packet so traces/tests can inspect
  // the scheduling decision.
  VirtualTime start_tag = 0.0;
  VirtualTime finish_tag = 0.0;

  // End-to-end bookkeeping for multi-hop experiments.
  Time source_departure = 0.0;  // time the packet left its source
  uint32_t hops = 0;

  // Fragmentation (net/fragmentation.h): position within the original packet.
  // frag_count == 1 means unfragmented.
  uint32_t frag_index = 0;
  uint32_t frag_count = 1;

  // Scheduler-internal monotone enqueue order; the deterministic last-resort
  // tie-break for equal tags.
  uint64_t sched_order = 0;
};

}  // namespace sfq
