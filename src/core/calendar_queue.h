// Hierarchical calendar queue (timestamp wheel) over quantized start tags —
// the flow-scale replacement for the per-flow IndexedHeap in SFQ's hot path
// (ROADMAP item 2, docs/PERFORMANCE.md "The flow-scale core").
//
// The heap gives exact min-start-tag order at O(log Q) per operation with Q
// backlogged flows; at Q ~ 10^6 the log factor and the pointer-chasing sifts
// dominate the per-packet budget. SFQ only *needs* tags to be served in
// non-decreasing order up to a bounded perturbation to keep a Theorem-1-style
// fairness bound (the derivation lives next to the bound in
// docs/PERFORMANCE.md): quantize start tags into buckets of `quantum` virtual
// seconds and serve buckets in order, FIFO within a bucket, and every
// operation becomes O(1) amortized regardless of Q, at the cost of a
// documented extra fairness slack of 2*quantum.
//
// Structure: `kLevels` wheels of `kSlots` buckets each. A level-0 bucket
// covers exactly one quantized tick, so FIFO order inside it is FIFO within
// the quantization window; a level-k bucket covers kSlots^k ticks and is
// cascaded (redistributed into lower levels) when the cursor reaches it.
// Entries beyond the top level's horizon (kSlots^kLevels ticks past the
// cursor, i.e. differing from it above the top digit) go to a fallback
// min-heap; they are served straight from there when their tick undercuts the
// wheel minimum. Occupancy bitmaps make find-min a handful of word scans.
//
// Key contract (exactly what SFQ guarantees):
//   * push/update keys are monotone: no key may be below the key of the last
//     popped entry's bucket (SFQ: S = max(v, F_prev) >= v, and v is the tag
//     of the last dequeued packet). Violations are clamped to the cursor,
//     which is semantically a no-op for SFQ and asserted in debug builds.
//   * each id is present at most once (the flow's head packet).
//
// The interface mirrors IndexedHeap (push/update/erase/top_id/pop/contains)
// so SfqScheduler switches cores with a predictable branch.
#pragma once

#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/indexed_heap.h"

namespace sfq {

class CalendarQueue {
 public:
  static constexpr std::size_t kSlotBits = 8;
  static constexpr std::size_t kSlots = 1u << kSlotBits;  // 256 buckets/level
  static constexpr std::size_t kLevels = 4;               // 2^32-tick horizon
  static constexpr uint64_t kSlotMask = kSlots - 1;

  // `quantum` is the bucket width in virtual seconds (must be > 0); see
  // SfqOptions::wheel_quantum for how callers choose it.
  explicit CalendarQueue(double quantum) : quantum_(quantum) {
    if (!(quantum > 0.0))
      throw std::invalid_argument(
          "CalendarQueue: quantum must be positive and finite");
    for (auto& level : buckets_)
      for (Bucket& b : level) b = Bucket{};
  }

  double quantum() const { return quantum_; }
  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  bool contains(uint32_t id) const {
    return id < nodes_.size() && nodes_[id].where != Where::kAbsent;
  }

  // Pre-sizes the per-id stores so pushes up to id `n-1` never allocate
  // (the flow-scale bench's zero-steady-state-allocation gate).
  void reserve(std::size_t n) {
    nodes_.reserve(n);
    overflow_.reserve(n);
  }

  // Inserts id keyed by `tag`; id must not already be present. `floor_tag`
  // is the caller's promise: no future push/update key will ever be below
  // it (SFQ passes v(t) — every tag is S = max(v, F_prev) >= v, and v is
  // monotone in wheel mode). It only matters when the structure is empty:
  // the cursor re-anchors to the floor's tick, NOT to this key's tick —
  // this key may be far ahead of keys still to come (a flow whose F_prev
  // chain outran v), and anchoring on it would clamp those later, perfectly
  // legal keys to the wrong bucket, serving them up to arbitrarily late.
  void push(uint32_t id, double tag, double floor_tag) {
    assert(!contains(id));
    ensure(id);
    uint64_t tick = to_tick(tag);
    if (size_ == 0 && overflow_.empty()) {
      // Nothing live pins the cursor: re-anchor it so a large virtual-time
      // jump (end of a busy period) cannot push the first insert of the next
      // busy period into the overflow heap.
      const uint64_t floor_tick = to_tick(floor_tag);
      cur_ = floor_tick < tick ? floor_tick : tick;
    }
    // Monotone-insert contract (see header). Clamping to the cursor keeps a
    // (contract-violating) low key serviceable instead of stranding it.
    assert(tick + 1 >= cur_ + 1);  // tick >= cur_, robust to tick == 0
    if (tick < cur_) tick = cur_;
    Node& n = nodes_[id];
    n.tick = tick;
    place(id, n);
    ++size_;
  }
  void push(uint32_t id, double tag) { push(id, tag, tag); }

  // Re-keys a present id (keys only grow under SFQ: the next head packet of
  // a flow carries a later start tag).
  void update(uint32_t id, double tag, double floor_tag) {
    detach(id);
    --size_;
    push(id, tag, floor_tag);
  }
  void update(uint32_t id, double tag) { update(id, tag, tag); }

  void push_or_update(uint32_t id, double tag, double floor_tag) {
    if (contains(id)) update(id, tag, floor_tag);
    else push(id, tag, floor_tag);
  }
  void push_or_update(uint32_t id, double tag) {
    push_or_update(id, tag, tag);
  }

  void erase(uint32_t id) {
    detach(id);
    --size_;
  }

  // Id at the front of the earliest non-empty bucket (FIFO within the
  // bucket's quantization window). Amortized O(1): cascades charge each
  // entry at most kLevels re-placements over its lifetime.
  uint32_t top_id() {
    assert(!empty());
    settle_min();
    if (serve_overflow_) return overflow_.top_id();
    return buckets_[0][min_slot_].head;
  }

  void pop() {
    assert(!empty());
    settle_min();
    if (serve_overflow_) {
      const uint32_t id = overflow_.top_id();
      overflow_.pop();
      nodes_[id].where = Where::kAbsent;
      // The cursor does NOT advance to the overflow tick: wheel placements
      // are relative to the cursor, and overflow entries admitted long ago
      // may undercut wheel entries whose buckets would be misread after an
      // arbitrary cursor jump. Leaving it put keeps every placement valid
      // (the cursor only ever trails the live minimum).
    } else {
      const uint32_t id = buckets_[0][min_slot_].head;
      Node& n = nodes_[id];
      cur_ = n.tick;  // level-0 bucket == exactly this tick
      unlink(n, /*level=*/0, min_slot_);
      n.where = Where::kAbsent;
    }
    --size_;
    min_valid_ = false;
  }

  void clear() {
    for (Node& n : nodes_) n.where = Where::kAbsent;
    for (auto& level : buckets_)
      for (Bucket& b : level) b = Bucket{};
    for (auto& words : bitmap_)
      for (uint64_t& w : words) w = 0;
    overflow_.clear();
    size_ = 0;
    cur_ = 0;
    seq_ = 0;
    min_valid_ = false;
  }

  // Observability hooks for tests: the current cursor tick and how many
  // entries sit in the far-future fallback heap.
  uint64_t cursor_tick() const { return cur_; }
  std::size_t overflow_size() const { return overflow_.size(); }

 private:
  enum class Where : uint8_t { kAbsent, kWheel, kOverflow };

  struct Node {
    uint64_t tick = 0;
    uint32_t prev = kNil;
    uint32_t next = kNil;
    uint8_t level = 0;
    Where where = Where::kAbsent;
    uint16_t slot = 0;
  };

  struct Bucket {
    uint32_t head = kNil;
    uint32_t tail = kNil;
  };

  // FIFO-deterministic far-future fallback: primary key is the tick, ties
  // resolve by admission order.
  struct OverflowKey {
    uint64_t tick = 0;
    uint64_t seq = 0;
    friend bool operator<(const OverflowKey& a, const OverflowKey& b) {
      if (a.tick != b.tick) return a.tick < b.tick;
      return a.seq < b.seq;
    }
  };

  static constexpr uint32_t kNil = static_cast<uint32_t>(-1);

  uint64_t to_tick(double tag) const {
    const double q = tag / quantum_;
    return q <= 0.0 ? 0 : static_cast<uint64_t>(q);
  }

  void ensure(uint32_t id) {
    if (id >= nodes_.size()) nodes_.resize(id + 1);
  }

  // Places id (with n.tick set) into the wheel level derived from the
  // highest digit in which its tick differs from the cursor, or into the
  // overflow heap when it differs above the top level.
  void place(uint32_t id, Node& n) {
    const uint64_t diff = n.tick ^ cur_;
    if (diff >> (kSlotBits * kLevels)) {
      n.where = Where::kOverflow;
      overflow_.push(id, OverflowKey{n.tick, ++seq_});
      return;
    }
    std::size_t level = 0;
    if (diff != 0) {
      const int high = 63 - std::countl_zero(diff);
      level = static_cast<std::size_t>(high) / kSlotBits;
    }
    const uint16_t slot =
        static_cast<uint16_t>((n.tick >> (kSlotBits * level)) & kSlotMask);
    n.where = Where::kWheel;
    n.level = static_cast<uint8_t>(level);
    n.slot = slot;
    n.prev = n.next = kNil;
    Bucket& b = buckets_[level][slot];
    if (b.tail == kNil) {
      b.head = b.tail = id;
      mark(level, slot);
    } else {
      nodes_[b.tail].next = id;
      n.prev = b.tail;
      b.tail = id;
    }
    min_valid_ = false;
  }

  void unlink(Node& n, std::size_t level, std::size_t slot) {
    Bucket& b = buckets_[level][slot];
    if (n.prev != kNil) nodes_[n.prev].next = n.next;
    else b.head = n.next;
    if (n.next != kNil) nodes_[n.next].prev = n.prev;
    else b.tail = n.prev;
    if (b.head == kNil) unmark(level, slot);
    n.prev = n.next = kNil;
  }

  void detach(uint32_t id) {
    assert(contains(id));
    Node& n = nodes_[id];
    if (n.where == Where::kOverflow) {
      overflow_.erase(id);
    } else {
      unlink(n, n.level, n.slot);
    }
    n.where = Where::kAbsent;
    min_valid_ = false;
  }

  void mark(std::size_t level, std::size_t slot) {
    bitmap_[level][slot >> 6] |= uint64_t{1} << (slot & 63);
  }
  void unmark(std::size_t level, std::size_t slot) {
    bitmap_[level][slot >> 6] &= ~(uint64_t{1} << (slot & 63));
  }

  // First occupied slot >= `from` at `level`, or kSlots when none.
  std::size_t scan(std::size_t level, std::size_t from) const {
    std::size_t word = from >> 6;
    uint64_t bits = bitmap_[level][word] & (~uint64_t{0} << (from & 63));
    for (;;) {
      if (bits) return (word << 6) + std::countr_zero(bits);
      if (++word >= kSlots / 64) return kSlots;
      bits = bitmap_[level][word];
    }
  }

  // Resolves the current minimum: cascades higher-level buckets down until
  // the minimum sits in a level-0 bucket (or the overflow heap undercuts the
  // wheel). Caches the result until the structure changes.
  void settle_min() {
    if (min_valid_) return;
    for (;;) {
      // Level 0: within the cursor's page, slots >= the cursor's digit.
      const std::size_t s0 = scan(0, cur_ & kSlotMask);
      uint64_t wheel_tick = ~0ull;
      if (s0 < kSlots) {
        wheel_tick = (cur_ & ~kSlotMask) | s0;
        min_slot_ = s0;
      } else {
        // Find the lowest level holding a bucket at or above the cursor's
        // digit there (strictly above: equal digits live below that level).
        std::size_t level = 1;
        std::size_t slot = kSlots;
        for (; level < kLevels; ++level) {
          const std::size_t digit =
              (cur_ >> (kSlotBits * level)) & kSlotMask;
          slot = scan(level, digit + 1);
          if (slot < kSlots) break;
        }
        if (level < kLevels && slot < kSlots) {
          // Advance the cursor to the bucket's base tick (<= every entry in
          // it; levels below are empty, so nothing live is undercut), then
          // redistribute the bucket into lower levels and rescan.
          const uint64_t span = kSlotBits * level;
          const uint64_t prefix = cur_ >> (span + kSlotBits);
          cur_ = ((prefix << kSlotBits) | slot) << span;
          cascade(level, slot);
          continue;
        }
        // Wheel exhausted beyond the cursor: everything live is in the
        // overflow heap.
      }
      const bool have_overflow = !overflow_.empty();
      serve_overflow_ =
          have_overflow &&
          (s0 >= kSlots || overflow_.top_key().tick < wheel_tick);
      assert(serve_overflow_ || s0 < kSlots);
      min_valid_ = true;
      return;
    }
  }

  // Moves every entry of bucket (level, slot) into levels below, relative to
  // the (just advanced) cursor. Order within the list is preserved, so FIFO
  // within a quantization window is deterministic end to end.
  void cascade(std::size_t level, std::size_t slot) {
    Bucket& b = buckets_[level][slot];
    uint32_t id = b.head;
    b.head = b.tail = kNil;
    unmark(level, slot);
    while (id != kNil) {
      Node& n = nodes_[id];
      const uint32_t next = n.next;
      place(id, n);
      assert(n.where != Where::kWheel || n.level < level);
      id = next;
    }
  }

  double quantum_;
  std::vector<Node> nodes_;
  Bucket buckets_[kLevels][kSlots];
  uint64_t bitmap_[kLevels][kSlots / 64] = {};
  IndexedHeap<OverflowKey> overflow_;
  uint64_t cur_ = 0;   // tick of the last wheel pop (trails the live minimum)
  uint64_t seq_ = 0;   // overflow admission order
  std::size_t size_ = 0;
  // find-min cache, invalidated by any structural change.
  bool min_valid_ = false;
  bool serve_overflow_ = false;
  std::size_t min_slot_ = 0;
};

}  // namespace sfq
