#pragma once

#include <string>
#include <vector>

#include "core/types.h"

namespace sfq {

// Static description of a flow at a server.
struct FlowSpec {
  FlowId id = kInvalidFlow;
  double weight = 1.0;          // r_f: weight, interpreted as a rate (bits/s)
  double max_packet_bits = 0.0; // l_f^max, used by analytic bounds
  std::string name;             // for reports
  bool active = true;           // false while the flow has left (churn)
};

// Registry of flows known to a scheduler. Flow ids are dense small integers
// handed out by `add`, so schedulers can keep per-flow state in vectors.
// A flow can temporarily *leave* (set_active(false)): its id and tag state
// stay reserved so it can rejoin later, but new packets for it are dropped
// and the weight aggregates release its share.
class FlowTable {
 public:
  FlowId add(double weight, double max_packet_bits = 0.0, std::string name = {});

  const FlowSpec& spec(FlowId id) const { return flows_.at(id); }
  FlowSpec& spec(FlowId id) { return flows_.at(id); }
  double weight(FlowId id) const { return flows_.at(id).weight; }
  std::size_t size() const { return flows_.size(); }
  const std::vector<FlowSpec>& all() const { return flows_; }

  bool active(FlowId id) const {
    return id < flows_.size() && flows_[id].active;
  }
  void set_active(FlowId id, bool active) { flows_.at(id).active = active; }

  // Aggregates below count active flows only, so a departed flow releases
  // its share of the link (admission checks sum r_n <= C on what is present).
  // Sum of weights — admission control checks sum r_n <= C.
  double total_weight() const;
  // Sum over flows of l_n^max (appears in Theorem 2's bound).
  double total_max_packet_bits() const;
  // Sum over n != f of l_n^max / C (appears in Theorem 4's bound).
  double sum_other_max_packets(FlowId f) const;

 private:
  std::vector<FlowSpec> flows_;
};

}  // namespace sfq
