#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/types.h"

namespace sfq {

// Static description of a flow at a server.
struct FlowSpec {
  FlowId id = kInvalidFlow;     // kInvalidFlow marks a reclaimed (dead) slot
  double weight = 1.0;          // r_f: weight, interpreted as a rate (bits/s)
  double max_packet_bits = 0.0; // l_f^max, used by analytic bounds
  uint64_t key = 0;             // external lookup key (valid iff has_key)
  std::string name;             // for reports
  bool active = true;           // false while the flow has left (churn)
  bool has_key = false;
};

// Registry of flows known to a scheduler. Flow ids are dense small integers
// handed out by `add`, so schedulers can keep per-flow state in vectors.
//
// Lifecycle of an id:
//   * live + active   — normal forwarding state.
//   * live + inactive — the flow has left (set_active(false)); its id and tag
//     state stay reserved for rejoin, packets for it are dropped, and the
//     weight aggregates release its share.
//   * dead            — `reclaim(id)` returned the slot to a LIFO free list;
//     the next `add` reuses it (churn no longer grows the table — the
//     flow-id-leak fix). Reclaiming is only tag-safe under the condition
//     documented at SfqScheduler's GC (F_prev <= v(t)).
//
// Out-of-range / dead-id contract (unified — previously `active()` silently
// returned false past the end while `spec()`/`set_active()` threw):
//   * `active(id)` and `contains(id)` are total: false for any id that is not
//     live, including ids >= size() and kInvalidFlow.
//   * `spec()`, `weight()`, `set_active()` throw std::out_of_range for any id
//     that is not live, including kInvalidFlow and reclaimed ids.
//   * `size()` stays the slot-universe bound (every live id < size()), so
//     `for (FlowId f = 0; f < size(); ++f) if (active(f)) ...` loops remain
//     valid with dead slots present.
//
// Aggregates (total_weight() & co.) are maintained incrementally on
// add/reclaim/set_active — O(1) per call instead of the former O(n) rescans —
// with a periodic exact rebuild bounding floating-point drift.
class FlowTable {
 public:
  FlowId add(double weight, double max_packet_bits = 0.0, std::string name = {});

  // Returns a dead id to the free list for reuse by `add`. The id must be
  // live; its key binding (if any) is dropped. The caller owns the tag-safety
  // argument (see SfqScheduler's GC).
  void reclaim(FlowId id);

  const FlowSpec& spec(FlowId id) const { return live_ref(id); }
  double weight(FlowId id) const { return live_ref(id).weight; }
  std::size_t size() const { return slots_.size(); }
  std::size_t live_count() const { return live_count_; }
  // All slots, dead ones included (dead slots have id == kInvalidFlow and
  // active == false). For iteration that predates `contains`; prefer
  // `for f in [0, size())` + `contains/active` in new code.
  const std::vector<FlowSpec>& slots() const { return slots_; }

  bool contains(FlowId id) const {
    return id < slots_.size() && slots_[id].id == id;
  }
  bool active(FlowId id) const {
    return id < slots_.size() && slots_[id].active;
  }
  void set_active(FlowId id, bool active);

  // External-key index (open addressing, linear probing): lets callers map a
  // stable 64-bit identity (e.g. a connection hash) to the current dense id
  // across reclaim/re-add cycles. A key may be bound to at most one live
  // flow; reclaim() unbinds automatically.
  void bind_key(uint64_t key, FlowId id);
  FlowId find(uint64_t key) const;

  // Pre-sizes slots, free list, and key index so that add/bind_key up to n
  // concurrently-live flows never allocate (flow-scale bench's zero-alloc
  // steady-state gate).
  void reserve(std::size_t n);

  // Aggregates below count active flows only, so a departed flow releases
  // its share of the link (admission checks sum r_n <= C on what is present).
  // Sum of weights — admission control checks sum r_n <= C.
  double total_weight() const { return total_weight_; }
  // Sum over flows of l_n^max (appears in Theorem 2's bound).
  double total_max_packet_bits() const { return total_max_packet_bits_; }
  // Sum over n != f of l_n^max / C (appears in Theorem 4's bound).
  double sum_other_max_packets(FlowId f) const {
    return total_max_packet_bits_ - (active(f) ? slots_[f].max_packet_bits : 0.0);
  }

 private:
  struct KeyEntry {
    uint64_t key = 0;
    FlowId id = kInvalidFlow;  // kInvalidFlow == empty probe slot
  };

  const FlowSpec& live_ref(FlowId id) const;
  FlowSpec& live_ref(FlowId id);
  void release_aggregates(const FlowSpec& s);
  void acquire_aggregates(const FlowSpec& s);
  void maybe_rebuild_aggregates();
  void rebuild_aggregates();
  void unbind_key(uint64_t key);
  void rehash_keys(std::size_t capacity);
  std::size_t probe_start(uint64_t key) const;

  std::vector<FlowSpec> slots_;
  std::vector<FlowId> free_list_;  // LIFO: id assignment is a deterministic
                                   // function of the add/reclaim history
  std::vector<KeyEntry> keys_;     // power-of-two open-addressing index
  std::size_t keys_used_ = 0;
  std::size_t live_count_ = 0;
  double total_weight_ = 0.0;
  double total_max_packet_bits_ = 0.0;
  // Incremental float aggregates drift by ~ulp per update; rebuild exactly
  // every O(size) mutations so drift stays O(ulp * size) — far below the
  // epsilons any admission/bound check uses.
  std::size_t aggregate_ops_ = 0;
};

}  // namespace sfq
