#include "core/sfq_scheduler.h"

#include <algorithm>
#include <atomic>
#include <stdexcept>

namespace sfq {

namespace {
std::atomic<bool> g_tag_bug{false};
}  // namespace

void SfqScheduler::set_tag_bug_for_test(bool on) {
  g_tag_bug.store(on, std::memory_order_relaxed);
}

SfqScheduler::SfqScheduler(const SfqOptions& options)
    : options_(options),
      use_wheel_(options.core == SfqCore::kWheel),
      // The wheel member always needs a valid quantum; in heap mode it is
      // never touched, so any positive placeholder does.
      wheel_(use_wheel_ ? options.wheel_quantum : 1.0) {
  if (use_wheel_ && options_.tie_break != TieBreak::kFifo)
    throw std::invalid_argument(
        "SFQ wheel core supports only TieBreak::kFifo (in-bucket order is "
        "admission order)");
}

FlowId SfqScheduler::add_flow(double weight, double max_packet_bits,
                              std::string name) {
  if (options_.flow_gc) reclaim_retired();
  FlowId id = Scheduler::add_flow(weight, max_packet_bits, std::move(name));
  if (id < flow_state_.size()) {
    // Recycled id (flow_gc): resetting F_prev to 0 is exactly the paper's
    // rejoin rule, because reclaim only happens once F_prev <= v(t) — the
    // next start tag max(v, 0) = v = max(v, F_prev) either way.
    flow_state_[id] = FlowState{};
  } else {
    flow_state_.push_back(FlowState{});
  }
  queues_.ensure(id);
  return id;
}

void SfqScheduler::reclaim_retired() {
  while (!retired_.empty() && retired_.top_key().finish <= vtime_) {
    const FlowId id = retired_.top_id();
    retired_.pop();
    flows_.reclaim(id);
  }
}

void SfqScheduler::reserve_flows(std::size_t n) {
  flows_.reserve(n);
  flow_state_.reserve(n);
  queues_.reserve(n);
  ready_.reserve(n);
  retired_.reserve(n);
  if (use_wheel_) wheel_.reserve(n);
}

double SfqScheduler::tiebreak_value(FlowId f) const {
  switch (options_.tie_break) {
    case TieBreak::kFifo: return 0.0;
    case TieBreak::kLowWeightFirst: return flows_.weight(f);
    case TieBreak::kHighWeightFirst: return -flows_.weight(f);
  }
  return 0.0;
}

void SfqScheduler::push_head(FlowId f) {
  const Packet& head = queues_.head(f);
  if (use_wheel_) {
    // v(t) is the re-anchor floor: every future tag is >= it (monotone in
    // wheel mode), while head.start_tag may be far ahead of tags to come.
    wheel_.push_or_update(f, head.start_tag, vtime_);
  } else {
    ready_.push_or_update(
        f, TagKey{head.start_tag, tiebreak_value(f), head.sched_order});
  }
}

FlowId SfqScheduler::ready_top() {
  return use_wheel_ ? wheel_.top_id() : ready_.top_id();
}

void SfqScheduler::ready_erase_if_present(FlowId f) {
  if (use_wheel_) {
    if (wheel_.contains(f)) wheel_.erase(f);
  } else {
    if (ready_.contains(f)) ready_.erase(f);
  }
}

bool SfqScheduler::enqueue(Packet p, Time now) {
  if (!admit(p, now)) return false;
  FlowState& st = flow_state_[p.flow];

  p.start_tag = std::max(vtime_, st.last_finish);
  if (g_tag_bug.load(std::memory_order_relaxed) && p.seq % 3 == 0)
    p.start_tag = vtime_;  // injected bug: forgot F(p_f^{j-1}) — eq. 4 broken
  const double rate = p.rate > 0.0 ? p.rate : flows_.weight(p.flow);
  p.finish_tag = p.start_tag + p.length_bits / rate;
  st.last_finish = p.finish_tag;

  const FlowId f = p.flow;
  const bool was_empty = queues_.flow_empty(f);
  p.sched_order = ++enqueue_seq_;
  trace_tag(p, now, vtime_, queues_.packets() + 1);
  queues_.push(std::move(p));
  if (was_empty) push_head(f);
  return true;
}

std::optional<Packet> SfqScheduler::dequeue(Time now) {
  if (ready_empty()) return std::nullopt;
  FlowId f = ready_top();
  Packet p = queues_.pop(f);

  // v(t) is the start tag of the packet in service (§2 rule 2). The wheel
  // serves quantized-tag order, so a true tag may sit up to one quantum
  // below the previous one; clamp keeps v(t) monotone (each tag formula
  // already maxes against v, and the invariant checker asserts monotonicity
  // with no slack — the slack applies to *served tag order* only).
  if (use_wheel_) vtime_ = std::max(vtime_, p.start_tag);
  else vtime_ = p.start_tag;
  in_service_ = true;

  if (!queues_.flow_empty(f)) {
    const Packet& head = queues_.head(f);
    if (use_wheel_) {
      wheel_.update(f, head.start_tag, vtime_);
    } else {
      // Re-key the root in place (one sift) instead of erase + push (two).
      ready_.update(f, TagKey{head.start_tag, tiebreak_value(f),
                              head.sched_order});
    }
  } else {
    if (use_wheel_) wheel_.pop();
    else ready_.pop();
  }
  trace_dequeue(p, now, vtime_, queues_.packets());
  return p;
}

std::vector<Packet> SfqScheduler::remove_flow(FlowId f, Time now) {
  Scheduler::remove_flow(f, now);  // validates f, marks it inactive
  ready_erase_if_present(f);
  std::vector<Packet> out = queues_.drain(f);
  if (!out.empty()) {
    // Roll F_prev back as if the flushed packets never arrived. Setting it to
    // the first flushed start tag S_1 = max(v(A_1), F_0) is equivalent to
    // restoring F_0: a later arrival computes max(v', S_1) with v' >= v(A_1)
    // (virtual time is monotone), which equals max(v', F_0).
    flow_state_[f].last_finish = out.front().start_tag;
  }
  if (options_.flow_gc) {
    // Retire the id. It becomes reclaimable once v(t) has passed its F_prev:
    // from then on a fresh flow under the recycled id tags its first packet
    // max(v, 0) = v = max(v, F_prev) — indistinguishable from a rejoin, so
    // both the paper semantics and the invariant checker's per-flow
    // "start >= previous finish" chain carry over unchanged.
    if (!retired_.contains(f))  // idempotent under repeated removal
      retired_.push(f, RetireKey{flow_state_[f].last_finish, f});
  }
  return out;
}

void SfqScheduler::rejoin_flow(FlowId f, Time now) {
  // An id that is retired but not yet reclaimed can still rejoin (the
  // sharded engine parks non-resident flows this way); cancel the pending
  // retirement. A reclaimed id throws out_of_range from set_active — by then
  // the id belongs to the free list (or a new flow).
  if (options_.flow_gc && retired_.contains(f)) retired_.erase(f);
  Scheduler::rejoin_flow(f, now);
}

std::optional<Packet> SfqScheduler::pushout(FlowId f, Time now) {
  (void)now;
  if (queues_.flow_empty(f)) return std::nullopt;
  Packet victim = queues_.pop_back(f);
  // Undo the victim's tag advance (same rollback argument as remove_flow).
  flow_state_[f].last_finish = victim.start_tag;
  // Popping the tail only changes the head when the queue emptied.
  if (queues_.flow_empty(f)) ready_erase_if_present(f);
  return victim;
}

void SfqScheduler::on_transmit_complete(const Packet& p, Time now) {
  in_service_ = false;
  max_finish_serviced_ = std::max(max_finish_serviced_, p.finish_tag);
  if (ready_empty() && queues_.packets() == 0) {
    // End of busy period: v jumps to the max finish tag serviced (§2 rule 2),
    // so flows that idle cannot bank credit for the future.
    if (max_finish_serviced_ > vtime_) {
      vtime_ = max_finish_serviced_;
      trace_vtime(now, vtime_, 0);
    }
  }
}

}  // namespace sfq
