#include "core/sfq_scheduler.h"

#include <algorithm>
#include <atomic>

namespace sfq {

namespace {
std::atomic<bool> g_tag_bug{false};
}  // namespace

void SfqScheduler::set_tag_bug_for_test(bool on) {
  g_tag_bug.store(on, std::memory_order_relaxed);
}

FlowId SfqScheduler::add_flow(double weight, double max_packet_bits,
                              std::string name) {
  FlowId id = Scheduler::add_flow(weight, max_packet_bits, std::move(name));
  flow_state_.push_back(FlowState{});
  queues_.ensure(id);
  return id;
}

double SfqScheduler::tiebreak_value(FlowId f) const {
  switch (tie_break_) {
    case TieBreak::kFifo: return 0.0;
    case TieBreak::kLowWeightFirst: return flows_.weight(f);
    case TieBreak::kHighWeightFirst: return -flows_.weight(f);
  }
  return 0.0;
}

void SfqScheduler::push_head(FlowId f) {
  const Packet& head = queues_.head(f);
  ready_.push_or_update(
      f, TagKey{head.start_tag, tiebreak_value(f), head.sched_order});
}

bool SfqScheduler::enqueue(Packet p, Time now) {
  if (!admit(p, now)) return false;
  FlowState& st = flow_state_[p.flow];

  p.start_tag = std::max(vtime_, st.last_finish);
  if (g_tag_bug.load(std::memory_order_relaxed) && p.seq % 3 == 0)
    p.start_tag = vtime_;  // injected bug: forgot F(p_f^{j-1}) — eq. 4 broken
  const double rate = p.rate > 0.0 ? p.rate : flows_.weight(p.flow);
  p.finish_tag = p.start_tag + p.length_bits / rate;
  st.last_finish = p.finish_tag;

  const FlowId f = p.flow;
  const bool was_empty = queues_.flow_empty(f);
  p.sched_order = ++enqueue_seq_;
  trace_tag(p, now, vtime_, queues_.packets() + 1);
  queues_.push(std::move(p));
  if (was_empty) push_head(f);
  return true;
}

std::optional<Packet> SfqScheduler::dequeue(Time now) {
  if (ready_.empty()) return std::nullopt;
  FlowId f = ready_.top_id();
  Packet p = queues_.pop(f);

  // v(t) is the start tag of the packet in service (§2 rule 2).
  vtime_ = p.start_tag;
  in_service_ = true;

  if (!queues_.flow_empty(f)) {
    // Re-key the root in place (one sift) instead of erase + push (two).
    const Packet& head = queues_.head(f);
    ready_.update(f, TagKey{head.start_tag, tiebreak_value(f),
                            head.sched_order});
  } else {
    ready_.pop();
  }
  trace_dequeue(p, now, vtime_, queues_.packets());
  return p;
}

std::vector<Packet> SfqScheduler::remove_flow(FlowId f, Time now) {
  Scheduler::remove_flow(f, now);  // validates f, marks it inactive
  if (ready_.contains(f)) ready_.erase(f);
  std::vector<Packet> out = queues_.drain(f);
  if (!out.empty()) {
    // Roll F_prev back as if the flushed packets never arrived. Setting it to
    // the first flushed start tag S_1 = max(v(A_1), F_0) is equivalent to
    // restoring F_0: a later arrival computes max(v', S_1) with v' >= v(A_1)
    // (virtual time is monotone), which equals max(v', F_0).
    flow_state_[f].last_finish = out.front().start_tag;
  }
  return out;
}

std::optional<Packet> SfqScheduler::pushout(FlowId f, Time now) {
  (void)now;
  if (queues_.flow_empty(f)) return std::nullopt;
  Packet victim = queues_.pop_back(f);
  // Undo the victim's tag advance (same rollback argument as remove_flow).
  flow_state_[f].last_finish = victim.start_tag;
  // Popping the tail only changes the head when the queue emptied.
  if (queues_.flow_empty(f) && ready_.contains(f)) ready_.erase(f);
  return victim;
}

void SfqScheduler::on_transmit_complete(const Packet& p, Time now) {
  in_service_ = false;
  max_finish_serviced_ = std::max(max_finish_serviced_, p.finish_tag);
  if (ready_.empty() && queues_.packets() == 0) {
    // End of busy period: v jumps to the max finish tag serviced (§2 rule 2),
    // so flows that idle cannot bank credit for the future.
    if (max_finish_serviced_ > vtime_) {
      vtime_ = max_finish_serviced_;
      trace_vtime(now, vtime_, 0);
    }
  }
}

}  // namespace sfq
