#include "core/sfq_scheduler.h"

#include <algorithm>
#include <stdexcept>

namespace sfq {

FlowId SfqScheduler::add_flow(double weight, double max_packet_bits,
                              std::string name) {
  FlowId id = Scheduler::add_flow(weight, max_packet_bits, std::move(name));
  flow_state_.push_back(FlowState{});
  queues_.ensure(id);
  return id;
}

double SfqScheduler::tiebreak_value(FlowId f) const {
  switch (tie_break_) {
    case TieBreak::kFifo: return 0.0;
    case TieBreak::kLowWeightFirst: return flows_.weight(f);
    case TieBreak::kHighWeightFirst: return -flows_.weight(f);
  }
  return 0.0;
}

void SfqScheduler::push_head(FlowId f) {
  const Packet& head = queues_.head(f);
  ready_.push_or_update(
      f, TagKey{head.start_tag, tiebreak_value(f), head.sched_order});
}

void SfqScheduler::enqueue(Packet p, Time now) {
  if (p.flow >= flow_state_.size())
    throw std::out_of_range("SFQ: packet for unknown flow");
  FlowState& st = flow_state_[p.flow];

  p.start_tag = std::max(vtime_, st.last_finish);
  const double rate = p.rate > 0.0 ? p.rate : flows_.weight(p.flow);
  p.finish_tag = p.start_tag + p.length_bits / rate;
  st.last_finish = p.finish_tag;

  const FlowId f = p.flow;
  const bool was_empty = queues_.flow_empty(f);
  p.sched_order = ++enqueue_seq_;
  trace_tag(p, now, vtime_, queues_.packets() + 1);
  queues_.push(std::move(p));
  if (was_empty) push_head(f);
}

std::optional<Packet> SfqScheduler::dequeue(Time now) {
  if (ready_.empty()) return std::nullopt;
  FlowId f = ready_.top_id();
  ready_.pop();
  Packet p = queues_.pop(f);

  // v(t) is the start tag of the packet in service (§2 rule 2).
  vtime_ = p.start_tag;
  in_service_ = true;

  if (!queues_.flow_empty(f)) push_head(f);
  trace_dequeue(p, now, vtime_, queues_.packets());
  return p;
}

void SfqScheduler::on_transmit_complete(const Packet& p, Time now) {
  in_service_ = false;
  max_finish_serviced_ = std::max(max_finish_serviced_, p.finish_tag);
  if (ready_.empty() && queues_.packets() == 0) {
    // End of busy period: v jumps to the max finish tag serviced (§2 rule 2),
    // so flows that idle cannot bank credit for the future.
    if (max_finish_serviced_ > vtime_) {
      vtime_ = max_finish_serviced_;
      trace_vtime(now, vtime_, 0);
    }
  }
}

}  // namespace sfq
