// Seed-sweep driver: generate -> check -> (on failure) shrink -> emit repro
// (docs/CHAOS.md). Used by examples/sfq_chaos, tests and the CI smoke job.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "chaos/scenario_generator.h"
#include "config/experiment.h"

namespace sfq::chaos {

struct HarnessOptions {
  uint64_t first_seed = 1;
  uint64_t sim_seeds = 100;  // seeds through check_sim
  uint64_t rt_seeds = 0;     // seeds through check_rt (live-engine replay)
  // Seeds through the fault-injected rt check (RtCheckOptions::inject_faults:
  // seed-derived dispatcher pauses, clock jumps/skews and an overload burst
  // against the shedding gate; the engine must self-heal and conserve).
  uint64_t rt_fault_seeds = 0;
  // Seeds through the shard-kill failover check (RtCheckOptions::kill_shard:
  // a seed-derived kill fault fells one dispatcher shard mid-load; the shard
  // supervisor must fence, rehome and restart it with the summed ledger
  // exact across the migration epoch). Needs rt_shards >= 2; seeds cycle
  // through shard counts {2, 4} capped at rt_shards.
  uint64_t rt_kill_seeds = 0;
  // Seeds through the old-core vs new-core differential (check_wheel): the
  // generated scenario is forced onto scheduler SFQ (classes stripped) and
  // run on both the exact heap core and the SFQ-W timestamp wheel; the wheel
  // run must satisfy the quantized-order invariant profile, the fairness
  // bound with the derived 2*quantum slack, and — on clean no-drop specs —
  // per-flow service within the analytic cross-core tolerance of the heap.
  uint64_t wheel_seeds = 0;
  GeneratorOptions gen;      // rt scenarios force gen.rt_compatible
  std::size_t rt_packets = 1500;  // offered packets per rt seed
  // Max dispatcher-shard count for the rt checks (RtCheckOptions::shards).
  // Sweeps cycle each rt seed through {1, 2, 4} capped at this value, so one
  // run exercises the single-dispatcher path and the sharded compositions;
  // replay_seed uses the value directly (the repro header records it).
  std::size_t rt_shards = 1;
  bool shrink_failures = true;
  // When set, each failure's minimized spec is written to
  // <repro_dir>/chaos_repro_seed<seed>[_rt].conf with a provenance header.
  std::string repro_dir;
  // Progress/failure narration ("seed 123: FAIL invariant ..."); null = quiet.
  std::ostream* log = nullptr;
  // Stop the sweep at the first failure instead of scanning the whole block.
  bool stop_on_failure = false;
};

struct ChaosFailure {
  uint64_t seed = 0;
  bool rt = false;
  bool rt_faults = false;  // the fault-injected rt mode
  bool rt_kill = false;    // the shard-kill failover mode
  bool wheel = false;      // the heap-vs-wheel core differential
  std::size_t shards = 1;  // dispatcher shards the failing rt check ran with
  std::string kind;    // determinism|invariant|fairness|throughput|rt-*|error
  std::string detail;
  config::ExperimentSpec spec;       // as generated
  config::ExperimentSpec minimized;  // == spec when shrinking is off
  std::string repro_path;            // "" unless repro_dir was set
};

struct ChaosReport {
  uint64_t sim_seeds_run = 0;
  uint64_t rt_seeds_run = 0;
  uint64_t rt_fault_seeds_run = 0;
  uint64_t rt_kill_seeds_run = 0;
  uint64_t wheel_seeds_run = 0;
  std::vector<ChaosFailure> failures;

  bool ok() const { return failures.empty(); }
};

ChaosReport run_chaos(const HarnessOptions& opts);

// Re-runs the check for one seed (the `replay` workflow: a CI failure names
// a seed; this reproduces it locally with full detail). `rt_faults` selects
// the fault-injected rt mode, `rt_kill` the shard-kill failover mode (each
// implies rt; rt_kill uses opts.rt_shards, floored at 2); `wheel` selects
// the heap-vs-wheel core differential (sim-side, ignores the rt flags).
ChaosFailure replay_seed(uint64_t seed, bool rt, const HarnessOptions& opts,
                         bool rt_faults = false, bool rt_kill = false,
                         bool wheel = false);

}  // namespace sfq::chaos
