#include "chaos/differential.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <random>
#include <sstream>
#include <thread>
#include <vector>

#include "chaos/scenario_generator.h"
#include "core/scheduler.h"
#include "core/scheduler_factory.h"
#include "net/rate_profile.h"
#include "obs/invariant_checker.h"
#include "obs/telemetry/telemetry.h"
#include "obs/trace.h"
#include "rt/engine.h"
#include "rt/shard/sharded_engine.h"

namespace sfq::chaos {

namespace {

// Records every event for offline comparison and invariant replay.
class RecordingSink final : public obs::TraceSink {
 public:
  void on_event(const obs::TraceEvent& e) override { events_.push_back(e); }
  const std::vector<obs::TraceEvent>& events() const { return events_; }

 private:
  std::vector<obs::TraceEvent> events_;
};

bool same_event(const obs::TraceEvent& a, const obs::TraceEvent& b) {
  return a.type == b.type && a.drop_cause == b.drop_cause && a.flow == b.flow &&
         a.seq == b.seq && a.length_bits == b.length_bits && a.t == b.t &&
         a.arrival == b.arrival && a.start_tag == b.start_tag &&
         a.finish_tag == b.finish_tag && a.vtime == b.vtime &&
         a.backlog == b.backlog;
}

std::string describe_event(const obs::TraceEvent& e) {
  std::ostringstream ss;
  ss << obs::to_string(e.type) << " flow " << e.flow << " seq " << e.seq
     << " t " << e.t << " S " << e.start_tag << " F " << e.finish_tag
     << " v " << e.vtime << " backlog " << e.backlog;
  if (e.drop_cause != obs::DropCause::kNone)
    ss << " cause " << obs::to_string(e.drop_cause);
  return ss.str();
}

// Average offered rate of a flow, for the weak throughput oracle.
double offered_rate(const config::FlowSpec& f) {
  if (f.kind == "greedy") return f.rate > 0.0 ? f.rate : 2.0 * f.weight;
  if (f.kind == "onoff")
    return f.rate * f.mean_on / std::max(f.mean_on + f.mean_off, 1e-9);
  return f.rate;
}

SchedulerOptions scheduler_options_for(const config::ExperimentSpec& spec) {
  SchedulerOptions opts;
  opts.assumed_capacity = spec.link_rate();
  double max_packet = 0.0;
  for (const config::FlowSpec& f : spec.flows)
    max_packet = std::max(max_packet, f.packet);
  opts.quantum_per_weight =
      max_packet > 0.0 ? max_packet / spec.link_rate() * 4.0 : 1.0;
  // Same deterministic wheel quantum as run_experiment, so the rt capture
  // and its replay build bit-identical SFQ-W schedulers.
  opts.sfq_wheel_quantum = config::sfq_wheel_quantum(spec);
  return opts;
}

}  // namespace

CheckResult check_sim(const config::ExperimentSpec& spec, uint64_t seed) {
  CheckResult res;
  RecordingSink first, second;
  config::ExperimentResult r1, r2;
  try {
    r1 = config::run_experiment(spec, &first);
    r2 = config::run_experiment(spec, &second);
  } catch (const std::exception& e) {
    res.fail("error", std::string("run_experiment threw: ") + e.what());
    return res;
  }

  // Determinism gate: two runs of the same spec must agree on every event.
  const auto& ea = first.events();
  const auto& eb = second.events();
  const std::size_t n = std::min(ea.size(), eb.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (!same_event(ea[i], eb[i])) {
      std::ostringstream ss;
      ss << "runs diverge at event " << i << ":\n  run1: "
         << describe_event(ea[i]) << "\n  run2: " << describe_event(eb[i]);
      res.fail("determinism", ss.str());
      return res;
    }
  }
  if (ea.size() != eb.size()) {
    std::ostringstream ss;
    ss << "runs diverge in length: " << ea.size() << " vs " << eb.size()
       << " events; first extra: "
       << describe_event(ea.size() > eb.size() ? ea[n] : eb[n]);
    res.fail("determinism", ss.str());
    return res;
  }

  // Invariant oracle over the recorded stream, seed baked into messages.
  auto checker_opts = obs::InvariantChecker::for_scheduler(spec.scheduler);
  checker_opts.order_slack = config::sfq_wheel_quantum(spec);
  obs::InvariantChecker checker(checker_opts);
  checker.set_context("seed " + std::to_string(seed));
  for (const obs::TraceEvent& e : ea) checker.on_event(e);
  checker.finish();
  if (!checker.ok()) {
    res.fail("invariant", checker.report());
    return res;
  }

  // Theorem-1 fairness oracle. The analytic bound is SFQ's (SCFQ's is the
  // same expression); other disciplines make no such promise. It is applied
  // only where its premises are airtight for the empirical measure:
  //   * no drops (pushout/churn evict queued packets, so a flow can look
  //     backlogged to the recorder while receiving no service),
  //   * fixed packet sizes (the bound uses the spec's l_max; vbr exceeds it),
  //   * single hop (the measure instruments the first hop's recorder).
  // A variable-rate (FC on/off) link stays in scope on purpose — Theorem 1
  // holds "for any server rate behaviour".
  // SFQ-W stays in scope: run_experiment already widens the bound by the
  // derived 2*quantum quantization slack, so the ratio premise is unchanged.
  bool fairness_scope =
      (spec.scheduler == "SFQ" || spec.scheduler == "SFQ-W" ||
       spec.scheduler == "SCFQ") &&
      spec.hops.size() == 1 && spec.hops.front().buffer_packets == 0 &&
      !spec.has_faults();
  for (const config::FlowSpec& f : spec.flows)
    fairness_scope &= f.packet > 0.0 && f.kind != "vbr";
  if (fairness_scope && r1.worst_fairness_ratio > 1.0 + 1e-6) {
    std::ostringstream ss;
    ss << "worst empirical fairness " << r1.worst_fairness_ratio
       << "x the Theorem-1 bound (seed " << seed << ")";
    res.fail("fairness", ss.str());
    return res;
  }

  // Theorem-2-flavoured throughput oracle.
  double delivered_bits = 0.0;
  for (const config::FlowResult& fr : r1.flows)
    delivered_bits += fr.throughput * spec.duration;
  double max_packet = 1.0;
  for (const config::FlowSpec& f : spec.flows)
    max_packet = std::max(max_packet, f.packet);
  // Upper bound: a link cannot deliver more than capacity (plus edge
  // packets) — brown-outs/outages only lower it.
  const double cap_bits = spec.link_rate() * spec.duration +
                          2.0 * max_packet * spec.hops.size();
  if (delivered_bits > cap_bits) {
    std::ostringstream ss;
    ss << "delivered " << delivered_bits << " bits > link capacity "
       << cap_bits << " bits over " << spec.duration << "s";
    res.fail("throughput", ss.str());
    return res;
  }
  // Lower bound, only where it is airtight: no faults/churn, single hop,
  // every flow runs the whole horizon. A work-conserving server must then
  // clear at least half of min(offered, capacity) — generous slack for
  // bursty models and end-of-run backlog.
  bool clean = !spec.has_faults() && spec.hops.size() == 1;
  double offered = 0.0;
  for (const config::FlowSpec& f : spec.flows) {
    clean &= f.start == 0.0 && f.stop < 0.0;
    offered += offered_rate(f);
  }
  if (clean && spec.hops.front().delta == 0.0) {
    const double expect =
        0.5 * std::min(offered, spec.link_rate()) * spec.duration -
        2.0 * max_packet * spec.flows.size();
    if (delivered_bits < expect) {
      std::ostringstream ss;
      ss << "delivered " << delivered_bits << " bits < " << expect
         << " (half of min(offered " << offered << ", capacity "
         << spec.link_rate() << ") x " << spec.duration
         << "s) on a clean run — server not work-conserving?";
      res.fail("throughput", ss.str());
      return res;
    }
  }
  return res;
}

CheckResult check_rt(const config::ExperimentSpec& spec, uint64_t seed,
                     std::size_t packets) {
  RtCheckOptions opts;
  opts.packets = packets;
  return check_rt(spec, seed, opts);
}

namespace {

// Sharded capture->replay check (RtCheckOptions::shards > 1): the offered
// load routes through a ShardedEngine, each shard's op sequence replays
// independently against a fresh scheduler built the way the shard factory
// built the live one, the summed cross-shard ledger must conserve exactly,
// and clean unlimited-buffer runs additionally hold the hierarchical
// cross-shard fairness bound over sampled drain windows.
CheckResult check_rt_sharded(const config::ExperimentSpec& spec, uint64_t seed,
                             const RtCheckOptions& rt_opts) {
  namespace tel = obs::telemetry;
  const std::size_t packets = rt_opts.packets;
  const std::size_t shards = rt_opts.shards;
  CheckResult res;
  const SchedulerOptions base_opts = scheduler_options_for(spec);

  // Same deterministic per-seed offer schedule as the single-engine path;
  // global flow ids are the spec order (the sharded engine owns
  // registration and remaps to shard-local ids internally).
  struct Offer {
    FlowId flow;
    uint64_t seq;
    double bits;
  };
  std::vector<Offer> offers;
  {
    std::mt19937_64 rng(seed * 0x9e3779b97f4a7c15ULL + 1);
    std::vector<uint64_t> next_seq(spec.flows.size(), 1);
    std::vector<double> weights;
    for (const config::FlowSpec& f : spec.flows) weights.push_back(f.weight);
    std::discrete_distribution<std::size_t> which(weights.begin(),
                                                  weights.end());
    offers.reserve(packets);
    for (std::size_t i = 0; i < packets; ++i) {
      const std::size_t fi = which(rng);
      offers.push_back(
          Offer{static_cast<FlowId>(fi), next_seq[fi]++, spec.flows[fi].packet});
    }
  }
  double total_bits = 0.0;
  for (const Offer& o : offers) total_bits += o.bits;
  const double rate = std::max(spec.link_rate(), total_bits / 0.025);

  rt::EngineOptions eng_opts;
  eng_opts.producers = 1;
  eng_opts.buffer_limit = spec.hops.front().buffer_packets;
  eng_opts.overload_policy = spec.hops.front().pushout
                                 ? net::OverloadPolicy::kPushout
                                 : net::OverloadPolicy::kTailDrop;
  eng_opts.stall_timeout = 5.0;
  if (rt_opts.inject_faults) {
    const Time horizon = 0.05;
    eng_opts.fault_plan = generate_rt_faults(seed, horizon);
    eng_opts.stall_timeout = 0.02;
    eng_opts.restart_budget = 1000;
    eng_opts.admission_control = true;
    if (eng_opts.buffer_limit == 0) eng_opts.buffer_limit = 32;
  }

  std::vector<rt::ShardFlow> flows;
  flows.reserve(spec.flows.size());
  for (const config::FlowSpec& f : spec.flows)
    flows.push_back(rt::ShardFlow{f.weight, f.packet, f.name});
  rt::ShardedEngineOptions sopts;
  sopts.shards = shards;
  sopts.link_rate = rate;
  sopts.engine = eng_opts;
  const bool kill_mode = rt_opts.kill_shard && shards > 1;
  std::size_t kill_victim = 0;
  if (kill_mode) {
    // Seeded shard kill mid-load, supervisor armed: the run must survive it
    // by failover (fence -> rehome -> cold restart -> rehome back).
    const ShardKillScenario kill = generate_shard_kill(seed, 0.02, shards);
    kill_victim = kill.shard;
    sopts.shard_faults.push_back({kill.shard, kill.plan});
    sopts.failover.enabled = true;
    sopts.failover.poll_interval = 0.0005;
    sopts.failover.shard_restart_budget = 1;
    sopts.failover.restart_backoff = 0.002;
  }
  auto factory = [&](std::size_t, double share) {
    SchedulerOptions so = base_opts;
    so.assumed_capacity = rate * share;
    return make_scheduler(spec.scheduler, so);
  };
  std::string err;
  std::unique_ptr<rt::ShardedEngine> engine =
      rt::ShardedEngine::try_create(factory, flows, sopts, &err);
  if (!engine) {
    res.fail("error", "sharded engine build failed: " + err);
    return res;
  }
  std::vector<std::vector<rt::CaptureOp>> ops;
  engine->set_capture(&ops);
  tel::TelemetryOptions topts;
  topts.shards = shards;
  tel::Telemetry tele(topts);
  engine->set_telemetry(&tele);
  engine->start();
  for (const Offer& o : offers) {
    Packet p;
    p.flow = o.flow;
    p.seq = o.seq;
    p.length_bits = o.bits;
    if (!engine->offer_wait(0, p)) break;
  }

  // A kill run must give the supervisor room to finish the whole epoch
  // before the drain stop settles everything: kill fires on the victim's
  // raw clock mid-drain, then fence -> rehome -> cold restart -> rehome
  // back. Wait (bounded) for a completed failover, the victim's second
  // engine epoch, and the migrated ledger to cancel out.
  if (kill_mode) {
    const auto t0 = std::chrono::steady_clock::now();
    auto waited = [&] {
      return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           t0)
          .count();
    };
    while (waited() < 5.0) {
      const rt::EngineStats es = engine->stats();
      if (engine->shard_failovers() > 0 &&
          engine->engine_epochs(kill_victim) > 1 &&
          es.migrated_in == es.migrated_out)
        break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  // Root fairness sampling over the drain (clean runs only: no drops to
  // break the backlog premise, no injected faults warping the clock). A
  // shard's backlog is monotone non-increasing once offers stop, so backlog
  // > 0 at a window's END means the shard stayed busy throughout it — the
  // window the eq.-65 bound covers.
  struct Sample {
    std::vector<double> service;
    std::vector<uint64_t> shard_backlog;
  };
  std::vector<Sample> samples;
  // Kill runs are excluded: a window straddling the evacuation or the
  // rehome-back sees a flow re-anchor its tags on a NEW server mid-window,
  // which voids the Theorem-1 premise (continuously backlogged on one
  // server) that the per-window proxy below leans on. The failover soak
  // gate asserts the migration-extended bound at whole-run granularity
  // instead (scripts/soak.sh --kill-shard).
  const bool fairness_scope = !rt_opts.inject_faults && !kill_mode &&
                              spec.hops.front().buffer_packets == 0 &&
                              spec.flows.size() >= 2;
  if (fairness_scope) {
    while (engine->stats().backlog > 0 && samples.size() < 64) {
      Sample s;
      s.service = engine->service_snapshot();
      s.shard_backlog.reserve(shards);
      for (std::size_t k = 0; k < shards; ++k)
        s.shard_backlog.push_back(engine->shard_stats(k).backlog);
      samples.push_back(std::move(s));
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  engine->stop(rt::StopMode::kDrain);
  if (engine->stalled()) {
    res.fail("rt-stall", "stall watchdog tripped while draining the load");
    return res;
  }
  if (rt_opts.inject_faults) {
    const rt::EngineStats es = engine->stats();
    if (es.stalls > 0 && es.recoveries == 0) {
      res.fail("rt-stall", "injected faults caused " +
                               std::to_string(es.stalls) +
                               " stall(s) but no recovery was recorded");
      return res;
    }
    if (es.transmitted == 0) {
      res.fail("rt-stall", "no packet transmitted under the injected faults");
      return res;
    }
  }
  if (kill_mode) {
    const rt::EngineStats es = engine->stats();
    if (engine->shard_failovers() == 0) {
      res.fail("rt-failover",
               "shard kill injected but no failover completed (seed " +
                   std::to_string(seed) + ")");
      return res;
    }
    if (es.migrated_in != es.migrated_out) {
      res.fail("rt-failover",
               "migration did not settle: migrated_in " +
                   std::to_string(es.migrated_in) + " != migrated_out " +
                   std::to_string(es.migrated_out));
      return res;
    }
    if (es.transmitted == 0) {
      res.fail("rt-failover", "no packet transmitted across the failover");
      return res;
    }
  }

  // Cross-shard ledger conservation: the telemetry plane sums counters over
  // every shard's cells, the engine sums the per-shard ledgers — both must
  // agree exactly, and backlog is the sum of the per-shard backlog gauges.
  {
    const tel::TelemetrySnapshot ts = tele.snapshot();
    const rt::EngineStats es = engine->stats();
    auto c = [&](tel::CounterId id) { return ts.counter_total(id); };
    const uint64_t pre_drops = c(tel::CounterId::kDropUnknownFlow) +
                               c(tel::CounterId::kDropBufferLimit) +
                               c(tel::CounterId::kDropShed);
    const uint64_t post_drops = c(tel::CounterId::kDropPushout) +
                                c(tel::CounterId::kDropFlowRemoved);
    // A migration epoch moves packets between shard ledgers: adopted
    // packets count accepted (and migrated_in) at the destination without
    // an ingress push there, harvested ones leave the source as
    // migrated_out. The summed identities pick up those two terms and
    // cancel exactly once every migration settled. The per-shard backlog
    // gauge is each epoch's final publication — a fenced epoch publishes
    // its pre-harvest backlog — so kill runs check the ledger's backlog.
    uint64_t backlog = 0;
    for (std::size_t k = 0; k < shards; ++k)
      backlog +=
          static_cast<uint64_t>(ts.gauge(tel::GaugeId::kBacklogPackets, k));
    if (kill_mode) backlog = es.backlog;
    auto conserve = [&](const char* what, uint64_t lhs, uint64_t rhs) {
      if (lhs == rhs) return true;
      std::ostringstream ss;
      ss << "sharded telemetry conservation broken (" << what << "): " << lhs
         << " != " << rhs;
      res.fail("telemetry", ss.str());
      return false;
    };
    if (!conserve("pushed + migrated_in == accepted + pre-drops + abandoned",
                  c(tel::CounterId::kIngressPushed) + es.migrated_in,
                  c(tel::CounterId::kAccepted) + pre_drops +
                      c(tel::CounterId::kAbandoned)) ||
        !conserve("accepted == transmitted + backlog + post-drops + migrated",
                  c(tel::CounterId::kAccepted),
                  c(tel::CounterId::kTransmitted) + backlog + post_drops +
                      es.migrated_out) ||
        !conserve("plane vs ledger: ingress_pushed",
                  c(tel::CounterId::kIngressPushed), es.ingress_pushed) ||
        !conserve("plane vs ledger: accepted", c(tel::CounterId::kAccepted),
                  es.accepted) ||
        !conserve("plane vs ledger: transmitted",
                  c(tel::CounterId::kTransmitted), es.transmitted) ||
        (!kill_mode &&
         !conserve("plane vs ledger: backlog", backlog, es.backlog)) ||
        !conserve("plane vs ledger: abandoned", c(tel::CounterId::kAbandoned),
                  es.abandoned))
      return res;
    for (std::size_t i = 0; i < obs::kDropCauseCount; ++i) {
      const obs::DropCause cause = static_cast<obs::DropCause>(i);
      if (cause == obs::DropCause::kNone) continue;
      if (!conserve(obs::to_string(cause), c(tel::drop_counter(cause)),
                    es.drops[i]))
        return res;
    }
  }

  // Hierarchical root bound over the sampled middle windows: for every pair
  // of flows that both received service in a window whose home shards stayed
  // busy through it, the normalized-service gap must stay within
  // fairness_bound(f, m) plus one packet quantum per flow (window-edge
  // granularity, same slack the bench's wall-clock fairness check uses).
  if (samples.size() >= 4) {
    for (std::size_t w = 1; w + 2 < samples.size() && res.ok; ++w) {
      const Sample& s0 = samples[w];
      const Sample& s1 = samples[w + 1];
      for (FlowId f = 0; f < spec.flows.size() && res.ok; ++f) {
        const double df = s1.service[f] - s0.service[f];
        if (df <= 0.0) continue;
        if (s1.shard_backlog[engine->shard_of(f)] == 0) continue;
        for (FlowId m = f + 1; m < spec.flows.size(); ++m) {
          const double dm = s1.service[m] - s0.service[m];
          if (dm <= 0.0) continue;
          if (s1.shard_backlog[engine->shard_of(m)] == 0) continue;
          const double wf = spec.flows[f].weight;
          const double wm = spec.flows[m].weight;
          const double gap = std::abs(df / wf - dm / wm);
          // migration_slack() is 0 unless a failover epoch overlapped the
          // run (docs/ROBUSTNESS.md derives the extended bound).
          const double bound = engine->fairness_bound(f, m) +
                               engine->migration_slack() +
                               spec.flows[f].packet / wf +
                               spec.flows[m].packet / wm;
          if (gap > bound) {
            std::ostringstream ss;
            ss << "root fairness bound broken in drain window " << w
               << ": flows " << f << " (shard " << engine->shard_of(f)
               << ") vs " << m << " (shard " << engine->shard_of(m)
               << ") gap " << gap << " > hierarchical bound " << bound
               << " (seed " << seed << ", " << shards << " shards)";
            res.fail("fairness", ss.str());
            break;
          }
        }
      }
    }
    if (!res.ok) return res;
  }

  // Per-shard single-threaded replay: rebuild shard k's scheduler exactly
  // as the live factory did (same options, same ascending-global-id flow
  // registration) and apply its captured op sequence.
  double total_weight = 0.0;
  for (std::size_t k = 0; k < shards; ++k)
    total_weight += engine->shard_weight(k);
  for (std::size_t k = 0; k < shards && res.ok; ++k) {
    const double share =
        engine->shard_weight(k) > 0.0
            ? engine->shard_weight(k) / total_weight
            : 1.0 / static_cast<double>(shards);
    std::unique_ptr<Scheduler> replay_owned;
    try {
      replay_owned = factory(k, share);
      // Unified registration, exactly as the live engine built the shard:
      // every flow in ascending global-id order, non-home flows deactivated.
      // Residency changes after that are IN the transcript (kRemove /
      // kRejoin ops), so the replay tracks migrations by construction.
      for (FlowId f = 0; f < spec.flows.size(); ++f) {
        replay_owned->add_flow(spec.flows[f].weight, spec.flows[f].packet,
                               spec.flows[f].name);
        if (engine->home_shard_of(f) != k) replay_owned->remove_flow(f, 0.0);
      }
    } catch (const std::exception& e) {
      res.fail("error", std::string("shard replay build threw: ") + e.what());
      return res;
    }
    Scheduler& replay = *replay_owned;
    auto mismatch = [&](std::size_t i, const char* what, const Packet& want,
                        const Packet* got) {
      std::ostringstream ss;
      ss << "rt replay diverges on shard " << k << " at op " << i << " ("
         << what << "): engine saw flow " << want.flow << " seq " << want.seq
         << " S " << want.start_tag << " F " << want.finish_tag
         << ", replay ";
      if (got == nullptr) {
        ss << "returned nothing";
      } else {
        ss << "returned flow " << got->flow << " seq " << got->seq << " S "
           << got->start_tag << " F " << got->finish_tag;
      }
      res.fail("rt-divergence", ss.str());
    };
    for (std::size_t i = 0; i < ops[k].size() && res.ok; ++i) {
      const rt::CaptureOp& op = ops[k][i];
      switch (op.kind) {
        case rt::CaptureOp::Kind::kEnqueue:
          replay.enqueue(op.packet, op.t);
          break;
        case rt::CaptureOp::Kind::kDequeue: {
          std::optional<Packet> got = replay.dequeue(op.t);
          if (!got || got->flow != op.packet.flow ||
              got->seq != op.packet.seq ||
              got->start_tag != op.packet.start_tag ||
              got->finish_tag != op.packet.finish_tag)
            mismatch(i, "dequeue", op.packet, got ? &*got : nullptr);
          break;
        }
        case rt::CaptureOp::Kind::kComplete:
          replay.on_transmit_complete(op.packet, op.t);
          break;
        case rt::CaptureOp::Kind::kPushout: {
          std::optional<Packet> got = replay.pushout(op.packet.flow, op.t);
          if (!got || got->flow != op.packet.flow ||
              got->seq != op.packet.seq ||
              got->start_tag != op.packet.start_tag ||
              got->finish_tag != op.packet.finish_tag)
            mismatch(i, "pushout", op.packet, got ? &*got : nullptr);
          break;
        }
        case rt::CaptureOp::Kind::kRemove:
          // Harvest/evict: the backlog left with the flow (it re-enqueues
          // behind a kRejoin in the destination shard's transcript).
          replay.remove_flow(op.packet.flow, op.t);
          break;
        case rt::CaptureOp::Kind::kRejoin:
          replay.rejoin_flow(op.packet.flow, op.t);
          break;
      }
    }
    if (res.ok && !replay.empty() != !engine->scheduler(k).empty())
      res.fail("rt-divergence",
               "shard " + std::to_string(k) +
                   " replay backlog disagrees with the live scheduler after " +
                   std::to_string(ops[k].size()) + " ops");
  }
  return res;
}

}  // namespace

CheckResult check_rt(const config::ExperimentSpec& spec, uint64_t seed,
                     const RtCheckOptions& rt_opts) {
  const std::size_t packets = rt_opts.packets;
  CheckResult res;
  if (spec.hops.size() != 1 || spec.has_faults()) {
    res.fail("error", "check_rt needs a single-hop fault-free spec");
    return res;
  }
  // Sharded mode, for specs the sharded engine can split (flat flow tables;
  // HSFQ / class hierarchies keep the single-dispatcher path).
  if (rt_opts.shards > 1 && spec.classes.empty() && spec.scheduler != "HSFQ" &&
      !spec.flows.empty())
    return check_rt_sharded(spec, seed, rt_opts);
  const SchedulerOptions opts = scheduler_options_for(spec);

  config::BuiltScheduler live;
  try {
    live = config::build_experiment_scheduler(spec, opts);
  } catch (const std::exception& e) {
    res.fail("error", std::string("scheduler build threw: ") + e.what());
    return res;
  }

  // Offered traffic: a deterministic per-seed packet schedule, blasted
  // through the ring as fast as it accepts. Pacing does not matter — the
  // comparison is against the op sequence the dispatcher actually performed,
  // whatever interleaving the threads produced this run.
  struct Offer {
    FlowId flow;
    uint64_t seq;
    double bits;
  };
  std::vector<Offer> offers;
  {
    std::mt19937_64 rng(seed * 0x9e3779b97f4a7c15ULL + 1);
    std::vector<uint64_t> next_seq(spec.flows.size(), 1);
    std::vector<double> weights;
    for (const config::FlowSpec& f : spec.flows) weights.push_back(f.weight);
    std::discrete_distribution<std::size_t> which(weights.begin(),
                                                  weights.end());
    offers.reserve(packets);
    for (std::size_t i = 0; i < packets; ++i) {
      const std::size_t fi = which(rng);
      offers.push_back(Offer{live.flow_ids[fi], next_seq[fi]++,
                             spec.flows[fi].packet});
    }
  }

  // Scale the link so draining the whole offered load takes ~25ms of wall
  // clock; the replay equivalence is rate-independent.
  double total_bits = 0.0;
  for (const Offer& o : offers) total_bits += o.bits;
  const double rate = std::max(spec.link_rate(), total_bits / 0.025);

  rt::EngineOptions eng_opts;
  eng_opts.producers = 1;
  eng_opts.buffer_limit = spec.hops.front().buffer_packets;
  eng_opts.overload_policy = spec.hops.front().pushout
                                 ? net::OverloadPolicy::kPushout
                                 : net::OverloadPolicy::kTailDrop;
  eng_opts.stall_timeout = 5.0;  // a wedged dispatcher fails, not hangs
  if (rt_opts.inject_faults) {
    // Fault-injected mode: a seed-derived rt fault plan sized to the ~25 ms
    // drain window, a hair-trigger watchdog with an effectively unlimited
    // restart budget (recovery must keep working, never brick), and the
    // overload admission gate armed so the blast doubles as an overload
    // burst against weighted-fair shedding.
    const Time horizon = 0.05;
    eng_opts.fault_plan = generate_rt_faults(seed, horizon);
    eng_opts.stall_timeout = 0.02;
    eng_opts.restart_budget = 1000;
    eng_opts.admission_control = true;
    if (eng_opts.buffer_limit == 0) eng_opts.buffer_limit = 32;
  }
  rt::RtEngine engine(*live.scheduler, std::make_unique<net::ConstantRate>(rate),
                      eng_opts);
  std::vector<rt::CaptureOp> ops;
  engine.set_capture(&ops);
  obs::telemetry::Telemetry tele;
  engine.set_telemetry(&tele);
  engine.start();
  for (const Offer& o : offers) {
    Packet p;
    p.flow = o.flow;
    p.seq = o.seq;
    p.length_bits = o.bits;
    if (!engine.offer_wait(0, p)) break;  // engine stalled/stopped
  }
  engine.stop(rt::StopMode::kDrain);
  if (engine.stalled()) {
    res.fail("rt-stall", "stall watchdog tripped while draining the load");
    return res;
  }
  if (rt_opts.inject_faults) {
    // Self-healing contract: every stall the injected faults provoked must
    // have healed — service resumed (a recovery was counted) and the full
    // offered load still drained to completion.
    const rt::EngineStats es = engine.stats();
    if (es.stalls > 0 && es.recoveries == 0) {
      res.fail("rt-stall", "injected faults caused " +
                               std::to_string(es.stalls) +
                               " stall(s) but no recovery was recorded");
      return res;
    }
    if (es.transmitted == 0) {
      res.fail("rt-stall", "no packet transmitted under the injected faults");
      return res;
    }
  }

  // Telemetry conservation: the lock-free plane and the engine's own ledger
  // count the same packets through independent code paths, so their flow
  // identities must agree exactly — every packet pushed through ingress is
  // accepted, dropped for a named cause, abandoned, or still in the backlog.
  {
    namespace tel = obs::telemetry;
    const tel::TelemetrySnapshot ts = tele.snapshot();
    const rt::EngineStats es = engine.stats();
    auto c = [&](tel::CounterId id) { return ts.counter_total(id); };
    const uint64_t pre_drops = c(tel::CounterId::kDropUnknownFlow) +
                               c(tel::CounterId::kDropBufferLimit) +
                               c(tel::CounterId::kDropShed);
    const uint64_t post_drops = c(tel::CounterId::kDropPushout) +
                                c(tel::CounterId::kDropFlowRemoved);
    const uint64_t backlog = static_cast<uint64_t>(
        ts.gauge(tel::GaugeId::kBacklogPackets, 0));
    auto conserve = [&](const char* what, uint64_t lhs, uint64_t rhs) {
      if (lhs == rhs) return true;
      std::ostringstream ss;
      ss << "telemetry conservation broken (" << what << "): " << lhs
         << " != " << rhs;
      res.fail("telemetry", ss.str());
      return false;
    };
    if (!conserve("pushed == accepted + pre-drops + abandoned",
                  c(tel::CounterId::kIngressPushed),
                  c(tel::CounterId::kAccepted) + pre_drops +
                      c(tel::CounterId::kAbandoned)) ||
        !conserve("accepted == transmitted + backlog + post-drops",
                  c(tel::CounterId::kAccepted),
                  c(tel::CounterId::kTransmitted) + backlog + post_drops) ||
        !conserve("plane vs ledger: ingress_pushed",
                  c(tel::CounterId::kIngressPushed), es.ingress_pushed) ||
        !conserve("plane vs ledger: accepted", c(tel::CounterId::kAccepted),
                  es.accepted) ||
        !conserve("plane vs ledger: transmitted",
                  c(tel::CounterId::kTransmitted), es.transmitted) ||
        !conserve("plane vs ledger: abandoned", c(tel::CounterId::kAbandoned),
                  es.abandoned) ||
        !conserve("plane vs ledger: stalls", c(tel::CounterId::kStalls),
                  es.stalls) ||
        !conserve("plane vs ledger: recoveries",
                  c(tel::CounterId::kRecoveries), es.recoveries))
      return res;
    for (std::size_t i = 0; i < obs::kDropCauseCount; ++i) {
      const obs::DropCause cause = static_cast<obs::DropCause>(i);
      if (cause == obs::DropCause::kNone) continue;
      if (!conserve(obs::to_string(cause), c(tel::drop_counter(cause)),
                    es.drops[i]))
        return res;
    }
  }

  // Single-threaded replay of the captured op sequence on a fresh scheduler.
  config::BuiltScheduler ref;
  try {
    ref = config::build_experiment_scheduler(spec, opts);
  } catch (const std::exception& e) {
    res.fail("error", std::string("replay scheduler build threw: ") + e.what());
    return res;
  }
  Scheduler& replay = *ref.scheduler;
  auto mismatch = [&](std::size_t i, const char* what, const Packet& want,
                      const Packet* got) {
    std::ostringstream ss;
    ss << "rt replay diverges at op " << i << " (" << what << "): engine saw"
       << " flow " << want.flow << " seq " << want.seq << " S "
       << want.start_tag << " F " << want.finish_tag << ", replay ";
    if (got == nullptr) {
      ss << "returned nothing";
    } else {
      ss << "returned flow " << got->flow << " seq " << got->seq << " S "
         << got->start_tag << " F " << got->finish_tag;
    }
    res.fail("rt-divergence", ss.str());
  };
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const rt::CaptureOp& op = ops[i];
    switch (op.kind) {
      case rt::CaptureOp::Kind::kEnqueue:
        replay.enqueue(op.packet, op.t);
        break;
      case rt::CaptureOp::Kind::kDequeue: {
        std::optional<Packet> got = replay.dequeue(op.t);
        if (!got || got->flow != op.packet.flow || got->seq != op.packet.seq ||
            got->start_tag != op.packet.start_tag ||
            got->finish_tag != op.packet.finish_tag) {
          mismatch(i, "dequeue", op.packet, got ? &*got : nullptr);
          return res;
        }
        break;
      }
      case rt::CaptureOp::Kind::kComplete:
        replay.on_transmit_complete(op.packet, op.t);
        break;
      case rt::CaptureOp::Kind::kPushout: {
        std::optional<Packet> got = replay.pushout(op.packet.flow, op.t);
        if (!got || got->flow != op.packet.flow || got->seq != op.packet.seq ||
            got->start_tag != op.packet.start_tag ||
            got->finish_tag != op.packet.finish_tag) {
          mismatch(i, "pushout", op.packet, got ? &*got : nullptr);
          return res;
        }
        break;
      }
      // Residency ops only appear in sharded failover transcripts; a
      // single-engine capture never emits them, but replay them faithfully.
      case rt::CaptureOp::Kind::kRemove:
        replay.remove_flow(op.packet.flow, op.t);
        break;
      case rt::CaptureOp::Kind::kRejoin:
        replay.rejoin_flow(op.packet.flow, op.t);
        break;
    }
  }
  if (!replay.empty() != !live.scheduler->empty()) {
    res.fail("rt-divergence",
             "replay backlog disagrees with the live scheduler after " +
                 std::to_string(ops.size()) + " ops");
  }
  return res;
}

CheckResult check_wheel(const config::ExperimentSpec& spec, uint64_t seed) {
  CheckResult res;
  if (spec.scheduler != "SFQ") {
    res.fail("error", "check_wheel needs an SFQ spec (got '" + spec.scheduler +
                          "')");
    return res;
  }
  config::ExperimentSpec wheel_spec = spec;
  wheel_spec.scheduler = "SFQ-W";  // quantum left 0 => auto l_max / C
  const double qwindow = config::sfq_wheel_quantum(wheel_spec);

  RecordingSink heap_rec, wheel_rec;
  config::ExperimentResult heap_res, wheel_res;
  try {
    heap_res = config::run_experiment(spec, &heap_rec);
    wheel_res = config::run_experiment(wheel_spec, &wheel_rec);
  } catch (const std::exception& e) {
    res.fail("error", std::string("run_experiment threw: ") + e.what());
    return res;
  }

  // Wheel-run invariant profile: dequeue order within one quantization
  // window, exact vtime monotonicity, exact per-flow tag chains, fault-aware
  // conservation. This subsumes the "almost sorted" property the wheel
  // promises in exchange for O(1) operations.
  auto checker_opts = obs::InvariantChecker::for_scheduler("SFQ-W");
  checker_opts.order_slack = qwindow;
  obs::InvariantChecker checker(checker_opts);
  checker.set_context("wheel seed " + std::to_string(seed));
  for (const obs::TraceEvent& e : wheel_rec.events()) checker.on_event(e);
  checker.finish();
  if (!checker.ok()) {
    res.fail("invariant", checker.report());
    return res;
  }

  // Fairness oracle with the derived slack: run_experiment's ratio divides
  // by (Theorem-1 bound + 2*quantum) for SFQ-W, so > 1 here means the
  // analytic quantization-slack term is wrong, not just "the wheel differs".
  bool fairness_scope = spec.hops.size() == 1 &&
                        spec.hops.front().buffer_packets == 0 &&
                        !spec.has_faults();
  for (const config::FlowSpec& f : spec.flows)
    fairness_scope &= f.packet > 0.0 && f.kind != "vbr";
  if (fairness_scope && wheel_res.worst_fairness_ratio > 1.0 + 1e-6) {
    std::ostringstream ss;
    ss << "wheel run exceeds Theorem-1 bound + 2*quantum slack: ratio "
       << wheel_res.worst_fairness_ratio << " (quantum " << qwindow
       << ", seed " << seed << ")";
    res.fail("fairness", ss.str());
    return res;
  }

  // Cross-core service comparison, clean no-drop specs only (a single drop
  // decision can cascade into arbitrarily different service sets). Both
  // cores serve the same arrivals work-conservingly; each flow's normalized
  // service deviates from the fluid share by at most its Theorem-1 deviation
  // plus (wheel only) the quantization window, so the cores differ per flow
  // by at most r_f * (2*quantum) + a few max-packets of edge granularity.
  if (fairness_scope) {
    double max_packet = 0.0;
    for (const config::FlowSpec& f : spec.flows)
      max_packet = std::max(max_packet, f.packet);
    std::vector<double> heap_bits, wheel_bits;
    auto tally = [](const std::vector<obs::TraceEvent>& events,
                    std::vector<double>& bits) {
      for (const obs::TraceEvent& e : events) {
        if (e.type != obs::TraceEventType::kDequeue) continue;
        if (e.flow == kInvalidFlow) continue;
        if (e.flow >= bits.size()) bits.resize(e.flow + 1, 0.0);
        bits[e.flow] += e.length_bits;
      }
    };
    tally(heap_rec.events(), heap_bits);
    tally(wheel_rec.events(), wheel_bits);
    const std::size_t flows = std::max(heap_bits.size(), wheel_bits.size());
    heap_bits.resize(flows, 0.0);
    wheel_bits.resize(flows, 0.0);
    for (std::size_t i = 0; i < spec.flows.size() && i < flows; ++i) {
      const double tol =
          spec.flows[i].weight * 2.0 * qwindow + 4.0 * max_packet;
      const double diff = std::abs(heap_bits[i] - wheel_bits[i]);
      if (diff > tol) {
        std::ostringstream ss;
        ss << "cores diverge on flow " << i << " ('" << spec.flows[i].name
           << "'): heap served " << heap_bits[i] << " bits, wheel "
           << wheel_bits[i] << " (|diff| " << diff << " > tolerance " << tol
           << ", quantum " << qwindow << ", seed " << seed << ")";
        res.fail("wheel-divergence", ss.str());
        return res;
      }
    }
  }
  return res;
}

}  // namespace sfq::chaos
