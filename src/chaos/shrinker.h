// Greedy scenario minimization (docs/CHAOS.md).
//
// Given a failing spec and a predicate that re-runs the failing check, the
// shrinker repeatedly tries simplifying edits — drop a flow, clear churn,
// remove a fault, flatten the class hierarchy, drop extra hops, zero
// start/stop windows, halve the horizon — keeping an edit only if the
// failure survives it, until a full round accepts nothing. The result is the
// smallest scenario this greedy walk can reach that still fails, which is
// what goes into the repro `.conf`.
//
// The predicate is called O(rounds x edits) times, so it should be the
// cheapest check that still reproduces the failure.
#pragma once

#include <cstddef>
#include <functional>

#include "config/experiment.h"

namespace sfq::chaos {

using FailPredicate = std::function<bool(const config::ExperimentSpec&)>;

struct ShrinkResult {
  config::ExperimentSpec spec;   // minimized, still failing
  std::size_t edits_accepted = 0;
  std::size_t edits_tried = 0;
};

// `still_fails(spec)` must be true for the input spec; the returned spec
// also satisfies it. `max_rounds` bounds the outer fixed-point loop.
ShrinkResult shrink(config::ExperimentSpec failing,
                    const FailPredicate& still_fails, int max_rounds = 8);

}  // namespace sfq::chaos
