// Differential checking: run one scenario through two paths and report the
// first divergence event-by-event (docs/CHAOS.md).
//
// Sim side (check_sim):
//   * determinism  — the same spec simulated twice must produce byte-identical
//                    trace streams (every field of every event);
//   * invariants   — the recorded stream must satisfy the discipline's
//                    InvariantChecker profile (tag order, v(t) monotonicity,
//                    S/F arithmetic, fault-aware conservation), with the
//                    scenario seed baked into every violation message;
//   * fairness     — for SFQ/SCFQ scenarios, the empirical Theorem-1 ratio
//                    from run_experiment must stay within the analytic bound;
//   * throughput   — Theorem-2-flavoured sanity: delivery never exceeds link
//                    capacity, and a clean (fault-free, full-length-flows)
//                    run keeps the server busy enough for the offered load.
//
// Rt side (check_rt):
//   * the live RtEngine records the exact scheduler-op sequence its
//     dispatcher performed (rt::CaptureOp); the replay applies the identical
//     sequence to a freshly built scheduler single-threaded and every
//     dequeue/pushout must return the same packet with bit-identical tags.
//     A divergence means the threaded pipeline corrupted scheduler state (or
//     the discipline is not a pure function of its input sequence).
#pragma once

#include <cstdint>
#include <string>

#include "config/experiment.h"

namespace sfq::chaos {

struct CheckResult {
  bool ok = true;
  std::string kind;    // "", or determinism|invariant|fairness|throughput|
                       // rt-divergence|rt-stall|error
  std::string detail;  // first failure, event-by-event where applicable

  void fail(std::string k, std::string d) {
    if (!ok) return;  // keep the first failure
    ok = false;
    kind = std::move(k);
    detail = std::move(d);
  }
};

// Simulator-side differential + oracle checks for one scenario.
CheckResult check_sim(const config::ExperimentSpec& spec, uint64_t seed);

// Live-engine capture -> single-threaded replay. The spec must be
// rt-compatible (single hop, no faults; see GeneratorOptions::rt_compatible).
// `packets` caps the total offered packets so a seed stays sub-second.
CheckResult check_rt(const config::ExperimentSpec& spec, uint64_t seed,
                     std::size_t packets = 1500);

struct RtCheckOptions {
  std::size_t packets = 1500;
  // Fault-injected mode (docs/ROBUSTNESS.md): derive an rt-layer fault plan
  // from the seed (generate_rt_faults — dispatcher pauses, clock jumps and
  // skews), arm the stall watchdog with an effectively unlimited restart
  // budget, and force overload admission control on, so the blast doubles as
  // an overload burst against the shedding gate. On top of the usual
  // capture->replay equivalence, the checker then demands that every
  // detected stall healed (recoveries match, transmission resumed, the
  // engine did not end permanently stalled) and that the telemetry plane's
  // per-cause ledger — kShed included — still mirrors the engine's own
  // counters bit-exactly after the recoveries.
  bool inject_faults = false;
  // Sharded mode (docs/REALTIME.md sharding section): route the same offered
  // load through a ShardedEngine with this many dispatcher shards, capture
  // every shard's op sequence independently and replay each against a fresh
  // scheduler, check the summed cross-shard ledger identities, and — on
  // clean unlimited-buffer runs — sample the drain and hold the hierarchical
  // (eq.-65) cross-shard fairness bound at the root. 1 = the single-engine
  // path. Specs the sharded engine cannot split (HSFQ / class hierarchies)
  // fall back to 1 shard automatically.
  std::size_t shards = 1;
  // Shard-kill failover mode (docs/ROBUSTNESS.md "Shard failover"; needs
  // shards > 1): derive a shard-kill fault from the seed
  // (generate_shard_kill), run with the shard supervisor enabled, and demand
  // that the failover completed (>= 1 recorded), that the summed ledger
  // stays exact across the migration epoch — including the migrated_in ==
  // migrated_out settlement — and that every shard's capture transcript
  // (kRemove/kRejoin residency ops included) still replays bit-exactly.
  bool kill_shard = false;
};
CheckResult check_rt(const config::ExperimentSpec& spec, uint64_t seed,
                     const RtCheckOptions& opts);

// Old-core vs new-core differential (docs/PERFORMANCE.md, "The flow-scale
// core"): run the same SFQ spec once on the exact IndexedHeap core and once
// on the SFQ-W timestamp wheel (auto quantum), then hold the wheel run to
//   * the SFQ-W invariant profile — start tags served in order up to one
//     quantization window, exact vtime monotonicity, exact per-flow tag
//     chains, fault-aware conservation;
//   * the Theorem-1 fairness oracle with the derived 2*quantum slack
//     (via run_experiment's widened bound), same premises as check_sim;
//   * per-flow served bits within the analytic cross-core tolerance of the
//     heap run (clean single-hop no-drop specs only: drop decisions cascade,
//     so lossy runs are covered by the invariant profile alone).
// The spec must use scheduler SFQ (the wheel twin is derived internally).
CheckResult check_wheel(const config::ExperimentSpec& spec, uint64_t seed);

}  // namespace sfq::chaos
