#include "chaos/shrinker.h"

#include <utility>
#include <vector>

namespace sfq::chaos {

namespace {

// Drop classes no flow references (children of dropped classes collapse to
// the root). Keeps specs valid after flow removals and tree flattening.
void prune_classes(config::ExperimentSpec& s) {
  std::vector<config::ClassSpec> kept;
  for (const config::ClassSpec& c : s.classes) {
    bool used = false;
    for (const config::FlowSpec& f : s.flows) used |= f.cls == c.name;
    for (const config::ClassSpec& o : s.classes) used |= o.parent == c.name;
    if (used) kept.push_back(c);
  }
  if (kept.size() == s.classes.size()) return;
  s.classes = std::move(kept);
  prune_classes(s);  // removing a leaf can orphan its parent
}

}  // namespace

ShrinkResult shrink(config::ExperimentSpec failing,
                    const FailPredicate& still_fails, int max_rounds) {
  ShrinkResult out;
  out.spec = std::move(failing);

  // Try one edit; keep it only if the failure survives.
  auto attempt = [&](config::ExperimentSpec candidate) {
    ++out.edits_tried;
    prune_classes(candidate);
    if (!still_fails(candidate)) return false;
    out.spec = std::move(candidate);
    ++out.edits_accepted;
    return true;
  };

  for (int round = 0; round < max_rounds; ++round) {
    const std::size_t accepted_before = out.edits_accepted;

    // 1. Fewer flows (largest lever first: repros want <= a handful).
    for (std::size_t i = 0; out.spec.flows.size() > 1 && i < out.spec.flows.size();) {
      config::ExperimentSpec c = out.spec;
      c.flows.erase(c.flows.begin() + static_cast<std::ptrdiff_t>(i));
      if (!attempt(std::move(c))) ++i;  // on success retry the same index
    }

    // 2. No churn.
    for (std::size_t i = 0; i < out.spec.flows.size(); ++i) {
      if (out.spec.flows[i].leave < 0.0 && out.spec.flows[i].rejoin < 0.0)
        continue;
      config::ExperimentSpec c = out.spec;
      c.flows[i].leave = -1.0;
      c.flows[i].rejoin = -1.0;
      attempt(std::move(c));
    }

    // 3. Fewer faults.
    for (std::size_t i = 0; i < out.spec.faults.link.size();) {
      config::ExperimentSpec c = out.spec;
      c.faults.link.erase(c.faults.link.begin() +
                          static_cast<std::ptrdiff_t>(i));
      if (!attempt(std::move(c))) ++i;
    }
    for (std::size_t i = 0; i < out.spec.faults.loss.size();) {
      config::ExperimentSpec c = out.spec;
      c.faults.loss.erase(c.faults.loss.begin() +
                          static_cast<std::ptrdiff_t>(i));
      if (!attempt(std::move(c))) ++i;
    }

    // 4. Flat hierarchy.
    if (!out.spec.classes.empty()) {
      config::ExperimentSpec c = out.spec;
      c.classes.clear();
      for (config::FlowSpec& f : c.flows) f.cls.clear();
      attempt(std::move(c));
    }

    // 5. Single hop.
    while (out.spec.hops.size() > 1) {
      config::ExperimentSpec c = out.spec;
      c.hops.resize(1);
      if (!attempt(std::move(c))) break;
    }

    // 6. Plain flow windows.
    for (std::size_t i = 0; i < out.spec.flows.size(); ++i) {
      if (out.spec.flows[i].start == 0.0 && out.spec.flows[i].stop < 0.0)
        continue;
      config::ExperimentSpec c = out.spec;
      c.flows[i].start = 0.0;
      c.flows[i].stop = -1.0;
      attempt(std::move(c));
    }

    // 7. Shorter horizon.
    while (out.spec.duration > 0.05) {
      config::ExperimentSpec c = out.spec;
      c.duration = c.duration / 2.0;
      if (!attempt(std::move(c))) break;
    }

    // 8. Simpler link: no burstiness, no overload handling.
    if (out.spec.hops.front().delta > 0.0) {
      config::ExperimentSpec c = out.spec;
      c.hops.front().delta = 0.0;
      attempt(std::move(c));
    }
    if (out.spec.hops.front().buffer_packets != 0) {
      config::ExperimentSpec c = out.spec;
      c.hops.front().buffer_packets = 0;
      c.hops.front().pushout = false;
      attempt(std::move(c));
    }

    if (out.edits_accepted == accepted_before) break;  // fixed point
  }
  return out;
}

}  // namespace sfq::chaos
