#include "chaos/scenario_generator.h"

#include <algorithm>
#include <random>
#include <string>
#include <vector>

namespace sfq::chaos {

namespace {

// SplitMix64 over the seed decorrelates consecutive seeds before they reach
// the mt19937_64 state (seeds 1,2,3,... would otherwise start correlated).
uint64_t mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

rt::RtFaultPlan generate_rt_faults(uint64_t seed, Time horizon) {
  // Decorrelate from generate(): the same seed drives both, and the fault
  // plan must not echo the scenario's random choices.
  std::mt19937_64 rng(mix(seed ^ 0xfa417a6b715c10c7ULL));
  auto uni = [&](double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(rng);
  };
  auto chance = [&](double p) { return uni(0.0, 1.0) < p; };

  rt::RtFaultPlan plan;
  // At least one stop-the-world pause, placed inside the busy window so the
  // dispatcher holds obligations when it wakes (that is what trips the
  // watchdog and exercises recovery rather than an idle reset).
  const std::size_t n_pauses = chance(0.3) ? 2 : 1;
  for (std::size_t i = 0; i < n_pauses; ++i)
    plan.pauses.push_back({/*at=*/uni(0.1, 0.5) * horizon,
                           /*duration=*/uni(0.6, 1.5) * horizon});
  if (chance(0.7))  // forward jump: deadlines age instantly, harmlessly
    plan.jumps.push_back({/*at=*/uni(0.1, 0.8) * horizon,
                          /*delta=*/uni(0.2, 2.0) * horizon});
  if (chance(0.5))  // small backward jump: freezes the engine axis
    plan.jumps.push_back({/*at=*/uni(0.2, 0.9) * horizon,
                          /*delta=*/-uni(0.1, 0.5) * horizon});
  if (chance(0.5)) {
    const Time from = uni(0.0, 0.5) * horizon;
    plan.skews.push_back({from, from + uni(0.2, 0.5) * horizon,
                          /*factor=*/chance(0.5) ? uni(1.1, 2.0)
                                                 : uni(0.5, 0.9)});
  }
  return plan;
}

ShardKillScenario generate_shard_kill(uint64_t seed, Time horizon,
                                      std::size_t shards) {
  // Decorrelated from both generate() and generate_rt_faults(): the same
  // seed can drive all three without the kill echoing their choices.
  std::mt19937_64 rng(mix(seed ^ 0x5ca1ab1edeadbeefULL));
  auto uni = [&](double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(rng);
  };
  ShardKillScenario kill;
  kill.shard = std::uniform_int_distribution<std::size_t>(
      0, shards > 0 ? shards - 1 : 0)(rng);
  // Inside the busy window: the victim holds real backlog when it dies, so
  // the failover migrates packets, not just idle flow records.
  kill.plan.kills.push_back({/*at=*/uni(0.15, 0.6) * horizon});
  return kill;
}

config::ExperimentSpec ScenarioGenerator::generate(uint64_t seed) const {
  std::mt19937_64 rng(mix(seed));
  auto uni = [&](double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(rng);
  };
  auto pick = [&](uint64_t lo, uint64_t hi) {
    return std::uniform_int_distribution<uint64_t>(lo, hi)(rng);
  };
  auto chance = [&](double p) { return uni(0.0, 1.0) < p; };
  // Times and rates are rounded to round-trippable short decimals purely for
  // readable repros; correctness never depends on the rounding.
  auto round3 = [](double v) { return std::floor(v * 1e3 + 0.5) / 1e3; };

  config::ExperimentSpec spec;

  // Discipline: weighted toward the paper's algorithm and its closest
  // relatives, with the rest of the library as cross-checks.
  static const char* kScheds[] = {"SFQ",  "SFQ", "SFQ",  "SFQ-W", "SFQ-W",
                                  "SCFQ", "SCFQ", "WFQ", "FQS",   "VC",
                                  "DRR",  "WRR", "FIFO", "EDD",  "FairAirport",
                                  "HSFQ", "HSFQ"};
  spec.scheduler = kScheds[pick(0, std::size(kScheds) - 1)];

  spec.duration = round3(uni(opts_.min_duration, opts_.max_duration));

  // Link(s). Rates stay modest so a scenario is a few thousand packets, not
  // hundreds of thousands — the harness runs by the thousand.
  config::HopSpec hop;
  hop.rate = std::floor(uni(1e6, 1.6e7));
  if (!opts_.rt_compatible && chance(0.25))
    hop.delta = std::floor(uni(4e3, 4e4));  // FC on/off burstiness (bits)
  if (chance(0.5)) {
    hop.buffer_packets = static_cast<std::size_t>(pick(8, 64));
    hop.pushout = chance(0.5);
  }
  spec.hops.push_back(hop);
  const bool hierarchical = spec.scheduler == "HSFQ";
  if (!opts_.rt_compatible && !hierarchical && chance(0.15)) {
    // Tandem path: 1-2 extra hops, slightly faster so the first hop stays
    // the shared bottleneck.
    const std::size_t extra = pick(1, 2);
    for (std::size_t i = 0; i < extra; ++i) {
      config::HopSpec h2;
      h2.rate = std::floor(hop.rate * uni(1.0, 1.5));
      h2.propagation = round3(uni(0.0, 0.01));
      spec.hops.push_back(h2);
    }
  }

  // H-SFQ link-sharing tree: up to 3 classes, possibly nested.
  if (hierarchical && chance(0.8)) {
    const std::size_t n_classes = pick(1, 3);
    for (std::size_t c = 0; c < n_classes; ++c) {
      config::ClassSpec cs;
      cs.name = "c";
      cs.name += std::to_string(c);
      cs.weight = std::floor(hop.rate * uni(0.1, 0.5));
      if (c > 0 && chance(0.4)) {
        cs.parent = "c";
        cs.parent += std::to_string(pick(0, c - 1));
      }
      spec.classes.push_back(cs);
    }
  }

  // Flows: weights are shares of the link scaled to a total utilization in
  // [0.5, 1.4] — under- and overload both get exercised.
  const std::size_t n_flows = pick(1, opts_.max_flows);
  const double utilization = uni(0.5, 1.4);
  std::vector<double> shares(n_flows);
  double share_sum = 0.0;
  for (double& s : shares) {
    s = uni(0.2, 1.0);
    share_sum += s;
  }
  for (std::size_t i = 0; i < n_flows; ++i) {
    config::FlowSpec f;
    f.name = "f";
    f.name += std::to_string(i);
    f.weight =
        std::max(1.0, std::floor(hop.rate * utilization * shares[i] / share_sum));
    f.packet = std::floor(uni(400.0, 12000.0));
    f.seed = pick(1, 1u << 20);

    const double kind_draw = uni(0.0, 1.0);
    if (opts_.rt_compatible) {
      // The rt driver replays the scheduler-op sequence; only packet sizing
      // and flow identity matter, so every flow is nominally greedy.
      f.kind = "greedy";
      f.rate = 0.0;
    } else if (kind_draw < 0.35) {
      f.kind = "cbr";
      f.rate = std::floor(f.weight * uni(0.6, 1.6));
    } else if (kind_draw < 0.60) {
      f.kind = "poisson";
      f.rate = std::floor(f.weight * uni(0.6, 1.6));
    } else if (kind_draw < 0.75) {
      f.kind = "onoff";
      f.rate = std::floor(f.weight * uni(1.2, 2.5));
      f.mean_on = round3(uni(0.01, 0.1));
      f.mean_off = round3(uni(0.01, 0.1));
      if (f.mean_on <= 0.0) f.mean_on = 0.01;
      if (f.mean_off <= 0.0) f.mean_off = 0.01;
    } else if (kind_draw < 0.95) {
      f.kind = "greedy";  // offers 2x weight
      f.rate = 0.0;
    } else {
      f.kind = "vbr";
      f.rate = std::floor(std::max(f.weight, 64e3));
    }

    if (!opts_.rt_compatible) {
      if (chance(0.2)) f.start = round3(uni(0.0, spec.duration * 0.25));
      if (chance(0.15)) {
        f.stop = round3(uni(spec.duration * 0.5, spec.duration));
        if (f.stop <= f.start) f.stop = -1.0;
      }
      // Churn: leave mid-run, sometimes rejoin later.
      if (chance(0.2)) {
        f.leave = round3(uni(spec.duration * 0.2, spec.duration * 0.7));
        if (f.leave <= 0.0) f.leave = 0.001;
        if (chance(0.5)) {
          f.rejoin = round3(f.leave + uni(0.02, spec.duration * 0.25));
          if (f.rejoin <= f.leave) f.rejoin = f.leave + 0.01;
        }
      }
    }
    if (!spec.classes.empty() && chance(0.7))
      f.cls = spec.classes[pick(0, spec.classes.size() - 1)].name;
    spec.flows.push_back(std::move(f));
  }

  // Fault plan: outages, brown-outs, loss and corruption on the first hop.
  if (!opts_.rt_compatible) {
    auto window = [&](Time min_len) {
      const Time from = round3(uni(0.0, spec.duration * 0.7));
      const Time until =
          round3(from + std::max(min_len, uni(min_len, spec.duration * 0.3)));
      return std::pair<Time, Time>(from, until);
    };
    if (chance(0.35)) {  // outage
      config::LinkFaultSpec lf;
      std::tie(lf.from, lf.until) = window(0.01);
      lf.factor = 0.0;
      spec.faults.link.push_back(lf);
    }
    if (chance(0.3)) {  // brown-out
      config::LinkFaultSpec lf;
      std::tie(lf.from, lf.until) = window(0.01);
      lf.factor = std::floor(uni(0.05, 0.9) * 100.0) / 100.0;
      if (lf.factor <= 0.0) lf.factor = 0.05;
      spec.faults.link.push_back(lf);
    }
    if (chance(0.35)) {  // random loss / corruption
      config::LossFaultSpec ls;
      std::tie(ls.from, ls.until) = window(0.05);
      ls.probability = std::floor(uni(0.005, 0.15) * 1000.0) / 1000.0;
      if (ls.probability <= 0.0) ls.probability = 0.005;
      ls.corrupt = chance(0.3);
      spec.faults.loss.push_back(ls);
      spec.faults.seed = pick(1, 1u << 20);
    }
  }

  return spec;
}

}  // namespace sfq::chaos
