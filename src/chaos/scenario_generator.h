// Seeded scenario generation for the chaos harness (docs/CHAOS.md).
//
// A single uint64 seed deterministically expands into a complete, valid
// config::ExperimentSpec: a random discipline, flow set (weights, packet-size
// mixes, traffic models, start/stop windows, churn), link shape (rate,
// FC on/off burstiness, buffer + overload policy, multi-hop tandems), fault
// plan (outages, brown-outs, loss, corruption) and — under HSFQ — a random
// link-sharing class tree. Theorem 1's premise is "for any server rate
// behaviour"; the generator's job is to sample that space far more
// adversarially than hand-written configs do.
//
// Guarantees:
//   * generate(seed) is a pure function of (seed, options): byte-identical
//     specs across runs, platforms and repetitions — a CI failure is
//     reproducible from the seed alone.
//   * every emitted spec round-trips: parse(serialize(spec)) succeeds and
//     re-serializes identically (tested over thousands of seeds).
#pragma once

#include <cstdint>

#include "config/experiment.h"

namespace sfq::chaos {

struct GeneratorOptions {
  // Restrict to scenarios the real-time differential path can drive: single
  // hop, constant-rate link, no faults/churn/start-stop windows, explicit
  // packet sizes. The rt path replays the captured scheduler-op sequence, so
  // traffic models are irrelevant there — flows/weights/buffer/policy and
  // hierarchy still vary.
  bool rt_compatible = false;
  std::size_t max_flows = 6;
  Time min_duration = 0.25;  // sim seconds
  Time max_duration = 1.0;
};

class ScenarioGenerator {
 public:
  explicit ScenarioGenerator(GeneratorOptions opts = {}) : opts_(opts) {}

  config::ExperimentSpec generate(uint64_t seed) const;

  const GeneratorOptions& options() const { return opts_; }

 private:
  GeneratorOptions opts_;
};

}  // namespace sfq::chaos
