// Seeded scenario generation for the chaos harness (docs/CHAOS.md).
//
// A single uint64 seed deterministically expands into a complete, valid
// config::ExperimentSpec: a random discipline, flow set (weights, packet-size
// mixes, traffic models, start/stop windows, churn), link shape (rate,
// FC on/off burstiness, buffer + overload policy, multi-hop tandems), fault
// plan (outages, brown-outs, loss, corruption) and — under HSFQ — a random
// link-sharing class tree. Theorem 1's premise is "for any server rate
// behaviour"; the generator's job is to sample that space far more
// adversarially than hand-written configs do.
//
// Guarantees:
//   * generate(seed) is a pure function of (seed, options): byte-identical
//     specs across runs, platforms and repetitions — a CI failure is
//     reproducible from the seed alone.
//   * every emitted spec round-trips: parse(serialize(spec)) succeeds and
//     re-serializes identically (tested over thousands of seeds).
#pragma once

#include <cstdint>

#include "config/experiment.h"
#include "rt/fault_clock.h"

namespace sfq::chaos {

struct GeneratorOptions {
  // Restrict to scenarios the real-time differential path can drive: single
  // hop, constant-rate link, no faults/churn/start-stop windows, explicit
  // packet sizes. The rt path replays the captured scheduler-op sequence, so
  // traffic models are irrelevant there — flows/weights/buffer/policy and
  // hierarchy still vary.
  bool rt_compatible = false;
  std::size_t max_flows = 6;
  Time min_duration = 0.25;  // sim seconds
  Time max_duration = 1.0;
};

// Seeded rt-layer fault plan for the fault-injected differential path
// (DifferentialChecker's check_rt with RtCheckOptions::inject_faults): a
// pure function of (seed, horizon) — the same guarantees as generate().
// Always emits at least one fault: one or two dispatcher pauses long enough
// to outlast the checker's stall timeout, plus (probabilistically) forward
// clock jumps, a small backward jump (clamped monotone by rt::FaultClock —
// it freezes the engine axis and exercises the watchdog's re-pace path) and
// rate skews. Times scale with `horizon`, the expected wall-clock length of
// the checked run. The plan is derived, not serialized: a repro .conf plus
// the seed reproduces it exactly.
rt::RtFaultPlan generate_rt_faults(uint64_t seed, Time horizon);

// Seeded shard-kill scenario for the failover differential path
// (RtCheckOptions::kill_shard): picks a victim shard and a raw-clock kill
// instant inside the busy window — the dispatcher dies permanently there
// and the shard supervisor must fence, rehome and cold-restart it. A pure
// function of (seed, horizon, shards), decorrelated from both generate()
// and generate_rt_faults(), so a repro .conf plus the seed reproduces the
// exact failover epoch.
struct ShardKillScenario {
  std::size_t shard = 0;
  rt::RtFaultPlan plan;
};
ShardKillScenario generate_shard_kill(uint64_t seed, Time horizon,
                                      std::size_t shards);

class ScenarioGenerator {
 public:
  explicit ScenarioGenerator(GeneratorOptions opts = {}) : opts_(opts) {}

  config::ExperimentSpec generate(uint64_t seed) const;

  const GeneratorOptions& options() const { return opts_; }

 private:
  GeneratorOptions opts_;
};

}  // namespace sfq::chaos
