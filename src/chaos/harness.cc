#include "chaos/harness.h"

#include <fstream>
#include <ostream>
#include <sstream>
#include <utility>

#include "chaos/differential.h"
#include "chaos/shrinker.h"

namespace sfq::chaos {

namespace {

CheckResult run_check(const config::ExperimentSpec& spec, uint64_t seed,
                      bool rt, bool rt_faults, std::size_t shards,
                      const HarnessOptions& opts) {
  if (!rt) return check_sim(spec, seed);
  RtCheckOptions rc;
  rc.packets = opts.rt_packets;
  rc.inject_faults = rt_faults;
  rc.shards = shards;
  return check_rt(spec, seed, rc);
}

// Shard count for the i-th rt seed: cycle {1, 2, 4} capped at the option, so
// a sweep exercises the single-dispatcher path and both sharded compositions.
std::size_t shard_cycle(uint64_t i, std::size_t max_shards) {
  static constexpr std::size_t kCycle[] = {1, 2, 4};
  const std::size_t want = kCycle[i % 3];
  return want <= max_shards ? want : 1;
}

std::string write_repro(const ChaosFailure& f, const std::string& dir) {
  std::ostringstream name;
  name << dir << "/chaos_repro_seed" << f.seed
       << (f.rt_faults ? "_rtfault" : f.rt ? "_rt" : "") << ".conf";
  std::ofstream out(name.str());
  if (!out) return "";
  out << "# chaos repro: seed " << f.seed
      << (f.rt_faults ? " (rt differential, injected rt faults)"
          : f.rt      ? " (rt differential)"
                      : "")
      << ", failure kind: " << f.kind << "\n";
  if (f.shards > 1) out << "# rt shards: " << f.shards << "\n";
  out << "# replay: sfq_chaos replay --seed " << f.seed
      << (f.rt_faults ? " --faults" : f.rt ? " --rt" : "");
  if (f.shards > 1) out << " --shards " << f.shards;
  out << "\n";
  std::istringstream detail(f.detail);
  std::string line;
  while (std::getline(detail, line)) out << "# " << line << "\n";
  out << f.minimized.serialize();
  return name.str();
}

ChaosFailure check_one(const config::ExperimentSpec& spec, uint64_t seed,
                       bool rt, bool rt_faults, std::size_t shards,
                       const HarnessOptions& opts) {
  ChaosFailure f;
  f.seed = seed;
  f.rt = rt;
  f.rt_faults = rt_faults;
  f.shards = shards;
  f.spec = spec;
  f.minimized = spec;
  CheckResult res = run_check(spec, seed, rt, rt_faults, shards, opts);
  if (res.ok) return f;  // kind stays empty == pass
  f.kind = res.kind;
  f.detail = res.detail;
  if (opts.shrink_failures) {
    ShrinkResult sh = shrink(spec, [&](const config::ExperimentSpec& c) {
      return !run_check(c, seed, rt, rt_faults, shards, opts).ok;
    });
    f.minimized = std::move(sh.spec);
    // Report the minimized scenario's own failure detail: that is what the
    // repro file reproduces.
    CheckResult mres =
        run_check(f.minimized, seed, rt, rt_faults, shards, opts);
    if (!mres.ok) f.detail = mres.detail;
  }
  if (!opts.repro_dir.empty()) f.repro_path = write_repro(f, opts.repro_dir);
  return f;
}

void sweep(bool rt, bool rt_faults, uint64_t n_seeds,
           const HarnessOptions& opts, ChaosReport& report) {
  GeneratorOptions gen = opts.gen;
  gen.rt_compatible = rt;
  ScenarioGenerator generator(gen);
  uint64_t& counter = rt_faults ? report.rt_fault_seeds_run
                      : rt      ? report.rt_seeds_run
                                : report.sim_seeds_run;
  for (uint64_t i = 0; i < n_seeds; ++i) {
    const uint64_t seed = opts.first_seed + i;
    const std::size_t shards = rt ? shard_cycle(i, opts.rt_shards) : 1;
    ChaosFailure f =
        check_one(generator.generate(seed), seed, rt, rt_faults, shards, opts);
    ++counter;
    if (f.kind.empty()) continue;
    if (opts.log) {
      *opts.log << (rt_faults ? "rt-fault seed " : rt ? "rt seed " : "seed ")
                << seed;
      if (shards > 1) *opts.log << " (" << shards << " shards)";
      *opts.log << ": FAIL [" << f.kind << "] " << f.detail << "\n";
      if (!f.repro_path.empty())
        *opts.log << "  minimized repro: " << f.repro_path << "\n";
    }
    report.failures.push_back(std::move(f));
    if (opts.stop_on_failure) return;
  }
}

}  // namespace

ChaosReport run_chaos(const HarnessOptions& opts) {
  ChaosReport report;
  sweep(/*rt=*/false, /*rt_faults=*/false, opts.sim_seeds, opts, report);
  if (report.ok() || !opts.stop_on_failure)
    sweep(/*rt=*/true, /*rt_faults=*/false, opts.rt_seeds, opts, report);
  if (report.ok() || !opts.stop_on_failure)
    sweep(/*rt=*/true, /*rt_faults=*/true, opts.rt_fault_seeds, opts, report);
  return report;
}

ChaosFailure replay_seed(uint64_t seed, bool rt, const HarnessOptions& opts,
                         bool rt_faults) {
  GeneratorOptions gen = opts.gen;
  gen.rt_compatible = rt || rt_faults;
  const bool is_rt = rt || rt_faults;
  return check_one(ScenarioGenerator(gen).generate(seed), seed, is_rt,
                   rt_faults, is_rt ? opts.rt_shards : 1, opts);
}

}  // namespace sfq::chaos
