#include "chaos/harness.h"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <sstream>
#include <utility>

#include "chaos/differential.h"
#include "chaos/shrinker.h"

namespace sfq::chaos {

namespace {

// Which check mode a seed runs under (one per sweep).
enum class Mode { kSim, kRt, kRtFaults, kRtKill, kWheel };

CheckResult run_check(const config::ExperimentSpec& spec, uint64_t seed,
                      Mode mode, std::size_t shards,
                      const HarnessOptions& opts) {
  if (mode == Mode::kSim) return check_sim(spec, seed);
  if (mode == Mode::kWheel) return check_wheel(spec, seed);
  RtCheckOptions rc;
  rc.packets = opts.rt_packets;
  rc.inject_faults = mode == Mode::kRtFaults;
  rc.kill_shard = mode == Mode::kRtKill;
  rc.shards = shards;
  return check_rt(spec, seed, rc);
}

// Shard count for the i-th rt seed: cycle {1, 2, 4} capped at the option, so
// a sweep exercises the single-dispatcher path and both sharded compositions.
std::size_t shard_cycle(uint64_t i, std::size_t max_shards) {
  static constexpr std::size_t kCycle[] = {1, 2, 4};
  const std::size_t want = kCycle[i % 3];
  return want <= max_shards ? want : 1;
}

// Shard-kill seeds need survivors: cycle {2, 4} capped at the option,
// floored at 2.
std::size_t kill_shard_cycle(uint64_t i, std::size_t max_shards) {
  const std::size_t want = (i % 2) ? 4 : 2;
  return std::max<std::size_t>(2, std::min(want, max_shards));
}

const char* mode_tag(const ChaosFailure& f) {
  return f.wheel       ? "_wheel"
         : f.rt_kill   ? "_rtkill"
         : f.rt_faults ? "_rtfault"
         : f.rt        ? "_rt"
                       : "";
}

// check_wheel needs a flat SFQ spec: pin the discipline and strip the H-SFQ
// class tree (everything else — flows, faults, hops — is seed-derived as
// usual, so wheel seeds still sweep churn, pushout and link faults).
config::ExperimentSpec to_wheel_scenario(config::ExperimentSpec spec) {
  spec.scheduler = "SFQ";
  spec.sfq_quantum = 0.0;
  spec.classes.clear();
  for (config::FlowSpec& f : spec.flows) f.cls.clear();
  return spec;
}

std::string write_repro(const ChaosFailure& f, const std::string& dir) {
  std::ostringstream name;
  name << dir << "/chaos_repro_seed" << f.seed << mode_tag(f) << ".conf";
  std::ofstream out(name.str());
  if (!out) return "";
  out << "# chaos repro: seed " << f.seed
      << (f.wheel       ? " (heap-vs-wheel core differential)"
          : f.rt_kill   ? " (rt differential, shard-kill failover)"
          : f.rt_faults ? " (rt differential, injected rt faults)"
          : f.rt        ? " (rt differential)"
                        : "")
      << ", failure kind: " << f.kind << "\n";
  if (f.shards > 1) out << "# rt shards: " << f.shards << "\n";
  out << "# replay: sfq_chaos replay --seed " << f.seed
      << (f.wheel     ? " --wheel"
          : f.rt_kill ? " --kill-shard"
          : f.rt_faults ? " --faults"
          : f.rt        ? " --rt"
                        : "");
  if (f.shards > 1) out << " --shards " << f.shards;
  out << "\n";
  std::istringstream detail(f.detail);
  std::string line;
  while (std::getline(detail, line)) out << "# " << line << "\n";
  out << f.minimized.serialize();
  return name.str();
}

ChaosFailure check_one(const config::ExperimentSpec& spec, uint64_t seed,
                       Mode mode, std::size_t shards,
                       const HarnessOptions& opts) {
  ChaosFailure f;
  f.seed = seed;
  f.rt = mode != Mode::kSim && mode != Mode::kWheel;
  f.rt_faults = mode == Mode::kRtFaults;
  f.rt_kill = mode == Mode::kRtKill;
  f.wheel = mode == Mode::kWheel;
  f.shards = shards;
  f.spec = spec;
  f.minimized = spec;
  CheckResult res = run_check(spec, seed, mode, shards, opts);
  if (res.ok) return f;  // kind stays empty == pass
  f.kind = res.kind;
  f.detail = res.detail;
  if (opts.shrink_failures) {
    ShrinkResult sh = shrink(spec, [&](const config::ExperimentSpec& c) {
      return !run_check(c, seed, mode, shards, opts).ok;
    });
    f.minimized = std::move(sh.spec);
    // Report the minimized scenario's own failure detail: that is what the
    // repro file reproduces.
    CheckResult mres = run_check(f.minimized, seed, mode, shards, opts);
    if (!mres.ok) f.detail = mres.detail;
  }
  if (!opts.repro_dir.empty()) f.repro_path = write_repro(f, opts.repro_dir);
  return f;
}

void sweep(Mode mode, uint64_t n_seeds, const HarnessOptions& opts,
           ChaosReport& report) {
  GeneratorOptions gen = opts.gen;
  const bool rt_mode = mode != Mode::kSim && mode != Mode::kWheel;
  gen.rt_compatible = rt_mode;
  ScenarioGenerator generator(gen);
  uint64_t& counter = mode == Mode::kRtKill     ? report.rt_kill_seeds_run
                      : mode == Mode::kRtFaults ? report.rt_fault_seeds_run
                      : mode == Mode::kRt       ? report.rt_seeds_run
                      : mode == Mode::kWheel    ? report.wheel_seeds_run
                                                : report.sim_seeds_run;
  for (uint64_t i = 0; i < n_seeds; ++i) {
    const uint64_t seed = opts.first_seed + i;
    const std::size_t shards = mode == Mode::kRtKill
                                   ? kill_shard_cycle(i, opts.rt_shards)
                               : rt_mode ? shard_cycle(i, opts.rt_shards)
                                         : 1;
    config::ExperimentSpec spec = generator.generate(seed);
    if (mode == Mode::kWheel) spec = to_wheel_scenario(std::move(spec));
    ChaosFailure f = check_one(spec, seed, mode, shards, opts);
    ++counter;
    if (f.kind.empty()) continue;
    if (opts.log) {
      *opts.log << (mode == Mode::kRtKill     ? "rt-kill seed "
                    : mode == Mode::kRtFaults ? "rt-fault seed "
                    : mode == Mode::kRt       ? "rt seed "
                    : mode == Mode::kWheel    ? "wheel seed "
                                              : "seed ")
                << seed;
      if (shards > 1) *opts.log << " (" << shards << " shards)";
      *opts.log << ": FAIL [" << f.kind << "] " << f.detail << "\n";
      if (!f.repro_path.empty())
        *opts.log << "  minimized repro: " << f.repro_path << "\n";
    }
    report.failures.push_back(std::move(f));
    if (opts.stop_on_failure) return;
  }
}

}  // namespace

ChaosReport run_chaos(const HarnessOptions& opts) {
  ChaosReport report;
  sweep(Mode::kSim, opts.sim_seeds, opts, report);
  if (report.ok() || !opts.stop_on_failure)
    sweep(Mode::kRt, opts.rt_seeds, opts, report);
  if (report.ok() || !opts.stop_on_failure)
    sweep(Mode::kRtFaults, opts.rt_fault_seeds, opts, report);
  if (report.ok() || !opts.stop_on_failure)
    sweep(Mode::kRtKill, opts.rt_kill_seeds, opts, report);
  if (report.ok() || !opts.stop_on_failure)
    sweep(Mode::kWheel, opts.wheel_seeds, opts, report);
  return report;
}

ChaosFailure replay_seed(uint64_t seed, bool rt, const HarnessOptions& opts,
                         bool rt_faults, bool rt_kill, bool wheel) {
  GeneratorOptions gen = opts.gen;
  const Mode mode = wheel       ? Mode::kWheel
                    : rt_kill   ? Mode::kRtKill
                    : rt_faults ? Mode::kRtFaults
                    : rt        ? Mode::kRt
                                : Mode::kSim;
  const bool rt_mode = mode != Mode::kSim && mode != Mode::kWheel;
  gen.rt_compatible = rt_mode;
  const std::size_t shards =
      mode == Mode::kRtKill ? std::max<std::size_t>(2, opts.rt_shards)
      : rt_mode             ? opts.rt_shards
                            : 1;
  config::ExperimentSpec spec = ScenarioGenerator(gen).generate(seed);
  if (mode == Mode::kWheel) spec = to_wheel_scenario(std::move(spec));
  return check_one(spec, seed, mode, shards, opts);
}

}  // namespace sfq::chaos
