#include "sched/virtual_clock.h"

#include <algorithm>
#include <stdexcept>

namespace sfq {

void VirtualClockScheduler::enqueue(Packet p, Time now) {
  if (p.flow >= eat_.size())
    throw std::out_of_range("VirtualClock: packet for unknown flow");
  EatState& st = eat_[p.flow];
  const double rate = p.rate > 0.0 ? p.rate : flows_.weight(p.flow);

  const Time prev_eat_term =
      st.any ? st.last_eat + st.last_bits / rate : -kTimeInfinity;
  const Time eat = std::max<Time>(p.arrival, prev_eat_term);
  st.last_eat = eat;
  st.last_bits = p.length_bits;
  st.any = true;

  p.start_tag = eat;                         // EAT doubles as the start tag
  p.finish_tag = eat + p.length_bits / rate; // the Virtual Clock stamp
  p.sched_order = ++order_;
  (void)now;

  const FlowId f = p.flow;
  const bool was_empty = queues_.flow_empty(f);
  queues_.push(std::move(p));
  if (was_empty) {
    const Packet& head = queues_.head(f);
    ready_.push_or_update(f, TagKey{head.finish_tag, 0.0, head.sched_order});
  }
}

std::optional<Packet> VirtualClockScheduler::dequeue(Time now) {
  (void)now;
  if (ready_.empty()) return std::nullopt;
  FlowId f = ready_.top_id();
  ready_.pop();
  Packet p = queues_.pop(f);
  if (!queues_.flow_empty(f)) {
    const Packet& head = queues_.head(f);
    ready_.push(f, TagKey{head.finish_tag, 0.0, head.sched_order});
  }
  return p;
}

}  // namespace sfq
