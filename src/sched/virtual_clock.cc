#include "sched/virtual_clock.h"

#include <algorithm>

namespace sfq {

bool VirtualClockScheduler::enqueue(Packet p, Time now) {
  if (!admit(p, now)) return false;
  EatState& st = eat_[p.flow];
  const double rate = p.rate > 0.0 ? p.rate : flows_.weight(p.flow);

  const Time prev_eat_term =
      st.any ? st.last_eat + st.last_bits / rate : -kTimeInfinity;
  const Time eat = std::max<Time>(p.arrival, prev_eat_term);
  st.last_eat = eat;
  st.last_bits = p.length_bits;
  st.any = true;

  p.start_tag = eat;                         // EAT doubles as the start tag
  p.finish_tag = eat + p.length_bits / rate; // the Virtual Clock stamp
  p.sched_order = ++order_;
  (void)now;

  const FlowId f = p.flow;
  const bool was_empty = queues_.flow_empty(f);
  queues_.push(std::move(p));
  if (was_empty) {
    const Packet& head = queues_.head(f);
    ready_.push_or_update(f, TagKey{head.finish_tag, 0.0, head.sched_order});
  }  return true;
}

std::optional<Packet> VirtualClockScheduler::dequeue(Time now) {
  (void)now;
  if (ready_.empty()) return std::nullopt;
  FlowId f = ready_.top_id();
  ready_.pop();
  Packet p = queues_.pop(f);
  if (!queues_.flow_empty(f)) {
    const Packet& head = queues_.head(f);
    ready_.push(f, TagKey{head.finish_tag, 0.0, head.sched_order});
  }
  return p;
}

std::vector<Packet> VirtualClockScheduler::remove_flow(FlowId f, Time now) {
  Scheduler::remove_flow(f, now);
  if (ready_.contains(f)) ready_.erase(f);
  std::vector<Packet> out = queues_.drain(f);
  if (!out.empty()) {
    // EAT_1 = max(A_1, EAT_0 + l_0/r) and arrivals are monotone, so resuming
    // from (last_eat = EAT_1, last_bits = 0) reproduces the stamps the flushed
    // packets would never have influenced. Earlier history is retained, so a
    // flow that overdrew idle capacity before leaving stays charged (the VC
    // memory property, paper §1.1).
    eat_[f].last_eat = out.front().start_tag;
    eat_[f].last_bits = 0.0;
  }
  return out;
}

std::optional<Packet> VirtualClockScheduler::pushout(FlowId f, Time now) {
  (void)now;
  if (queues_.flow_empty(f)) return std::nullopt;
  Packet victim = queues_.pop_back(f);
  eat_[f].last_eat = victim.start_tag;  // victim's EAT; same rollback argument
  eat_[f].last_bits = 0.0;
  if (queues_.flow_empty(f) && ready_.contains(f)) ready_.erase(f);
  return victim;
}

}  // namespace sfq
