#include "sched/gps_virtual_time.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace sfq {

GpsVirtualTime::GpsVirtualTime(double capacity) : capacity_(capacity) {
  if (capacity <= 0.0)
    throw std::invalid_argument("GPS: capacity must be positive");
}

void GpsVirtualTime::add_flow(double weight) {
  if (weight <= 0.0) throw std::invalid_argument("GPS: weight must be positive");
  FlowState st;
  st.weight = weight;
  flows_.push_back(std::move(st));
}

void GpsVirtualTime::fluid_depart(uint32_t flow) {
  FlowState& st = flows_[flow];
  st.fluid_queue.pop_front();
  if (st.fluid_queue.empty()) {
    fluid_heads_.erase(flow);
    backlogged_weight_ -= st.weight;
    if (backlogged_weight_ < 1e-12) backlogged_weight_ = 0.0;
  } else {
    fluid_heads_.update(flow, TagKey{st.fluid_queue.front(), 0.0, ++seq_});
  }
}

VirtualTime GpsVirtualTime::advance(Time t) {
  // Walk fluid departure epochs until the next one lies beyond t.
  while (!fluid_heads_.empty()) {
    const double next_finish = fluid_heads_.top_key().tag;
    const uint32_t flow = fluid_heads_.top_id();
    // Real time at which v reaches next_finish, at the current slope.
    const Time t_depart =
        last_real_ + (next_finish - v_) * backlogged_weight_ / capacity_;
    if (t_depart > t) break;
    v_ = next_finish;
    last_real_ = std::max(last_real_, t_depart);
    fluid_depart(flow);
  }
  if (fluid_heads_.empty()) {
    // Fluid system idle: v holds its value (tags are max'ed against
    // last_finish on the next arrival, so freezing is order-equivalent to
    // the textbook reset-to-zero).
    last_real_ = std::max(last_real_, t);
    return v_;
  }
  if (t > last_real_) {
    v_ += (t - last_real_) * capacity_ / backlogged_weight_;
    last_real_ = t;
  }
  return v_;
}

GpsVirtualTime::Tags GpsVirtualTime::on_arrival(uint32_t flow, double bits,
                                                Time t) {
  if (flow >= flows_.size())
    throw std::out_of_range("GPS: unknown flow");
  advance(t);
  FlowState& st = flows_[flow];

  const VirtualTime start = std::max(v_, st.last_finish);
  const VirtualTime finish = start + bits / st.weight;
  st.last_finish = finish;

  const bool was_empty = st.fluid_queue.empty();
  st.fluid_queue.push_back(finish);
  if (was_empty) {
    backlogged_weight_ += st.weight;
    fluid_heads_.push(flow, TagKey{finish, 0.0, ++seq_});
  }
  return Tags{start, finish};
}

void GpsVirtualTime::remove_newest(uint32_t flow, std::size_t count,
                                   VirtualTime resume_tag, Time t) {
  if (flow >= flows_.size())
    throw std::out_of_range("GPS: unknown flow");
  advance(t);
  FlowState& st = flows_[flow];
  const bool was_backlogged = !st.fluid_queue.empty();
  // The newest arrivals sit at the back; the fluid head (and therefore
  // fluid_heads_) only changes if the queue empties entirely. If the fluid
  // system ran ahead of the packet system, some removed packets already
  // departed — popping what remains is then exactly the removed set.
  for (std::size_t i = 0; i < count && !st.fluid_queue.empty(); ++i)
    st.fluid_queue.pop_back();
  if (count > 0) st.last_finish = resume_tag;
  if (was_backlogged && st.fluid_queue.empty()) {
    fluid_heads_.erase(flow);
    backlogged_weight_ -= st.weight;
    if (backlogged_weight_ < 1e-12) backlogged_weight_ = 0.0;
  }
}

}  // namespace sfq
