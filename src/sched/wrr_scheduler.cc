#include "sched/wrr_scheduler.h"

#include <algorithm>
#include <cmath>

namespace sfq {

FlowId WrrScheduler::add_flow(double weight, double max_packet_bits,
                              std::string name) {
  FlowId id = Scheduler::add_flow(weight, max_packet_bits, std::move(name));
  state_.push_back(FlowState{});
  queues_.ensure(id);
  return id;
}

uint64_t WrrScheduler::packets_per_round(FlowId f) const {
  double min_w = kTimeInfinity;
  for (const auto& spec : flows_.slots())
    if (spec.active) min_w = std::min(min_w, spec.weight);
  const double ratio = flows_.weight(f) / min_w;
  return std::max<uint64_t>(1, static_cast<uint64_t>(std::llround(ratio)));
}

bool WrrScheduler::enqueue(Packet p, Time now) {
  if (!admit(p, now)) return false;
  const FlowId f = p.flow;
  queues_.push(std::move(p));
  if (!state_[f].active) {
    state_[f].active = true;
    state_[f].sent_this_visit = 0;
    ring_.push_back(f);
  }
  return true;
}

std::optional<Packet> WrrScheduler::dequeue(Time now) {
  (void)now;
  while (!ring_.empty()) {
    const FlowId f = ring_.front();
    FlowState& st = state_[f];
    if (queues_.flow_empty(f)) {
      ring_.pop_front();
      st.active = false;
      st.sent_this_visit = 0;
      continue;
    }
    if (st.sent_this_visit >= packets_per_round(f)) {
      // Visit exhausted: rotate.
      ring_.pop_front();
      ring_.push_back(f);
      st.sent_this_visit = 0;
      continue;
    }
    ++st.sent_this_visit;
    Packet p = queues_.pop(f);
    if (queues_.flow_empty(f)) {
      ring_.pop_front();
      st.active = false;
      st.sent_this_visit = 0;
    }
    return p;
  }
  return std::nullopt;
}

std::vector<Packet> WrrScheduler::remove_flow(FlowId f, Time now) {
  Scheduler::remove_flow(f, now);
  std::vector<Packet> out = queues_.drain(f);
  FlowState& st = state_[f];
  if (st.active) {
    ring_.erase(std::remove(ring_.begin(), ring_.end(), f), ring_.end());
    st.active = false;
    st.sent_this_visit = 0;
  }
  return out;
}

std::optional<Packet> WrrScheduler::pushout(FlowId f, Time now) {
  (void)now;
  if (queues_.flow_empty(f)) return std::nullopt;
  Packet victim = queues_.pop_back(f);
  if (queues_.flow_empty(f)) {
    FlowState& st = state_[f];
    ring_.erase(std::remove(ring_.begin(), ring_.end(), f), ring_.end());
    st.active = false;
    st.sent_this_visit = 0;
  }
  return victim;
}

}  // namespace sfq
