#pragma once

#include <optional>
#include <vector>

#include "core/indexed_heap.h"
#include "core/scheduler.h"

namespace sfq {

// Delay Earliest-Due-Date (paper §3, eq. 66): packet p_f^j gets deadline
//
//   D(p_f^j) = EAT(p_f^j, r_f) + d_f
//
// and packets are served earliest-deadline-first. With the schedulability
// condition of eq. (67) (see qos/admission.h) a (C, δ(C)) FC server meets
// every deadline within l_max/C + δ(C)/C (Theorem 7). Used to decouple delay
// from throughput inside one class of a hierarchical SFQ tree.
class EddScheduler : public Scheduler {
 public:
  // Registers a flow with rate `weight` and per-flow deadline offset d_f.
  FlowId add_flow_with_deadline(double weight, Time deadline,
                                double max_packet_bits = 0.0,
                                std::string name = {});

  // Scheduler interface; flows added this way get deadline l_max/weight
  // (one packet service time) unless set_deadline is called.
  FlowId add_flow(double weight, double max_packet_bits = 0.0,
                  std::string name = {}) override;
  void set_deadline(FlowId f, Time deadline) { deadline_.at(f) = deadline; }
  Time deadline_offset(FlowId f) const { return deadline_.at(f); }

  bool enqueue(Packet p, Time now) override;
  std::optional<Packet> dequeue(Time now) override;

  std::vector<Packet> remove_flow(FlowId f, Time now) override;
  std::optional<Packet> pushout(FlowId f, Time now) override;

  bool empty() const override { return queues_.packets() == 0; }
  std::size_t backlog_packets() const override { return queues_.packets(); }
  double backlog_bits(FlowId f) const override { return queues_.bits(f); }
  std::string name() const override { return "DelayEDD"; }

 private:
  struct EatState {
    Time last_eat = -kTimeInfinity;
    double last_bits = 0.0;
    bool any = false;
  };

  PerFlowQueues queues_;
  std::vector<Time> deadline_;
  std::vector<EatState> eat_;
  IndexedHeap<TagKey> ready_;  // flows keyed by head deadline
  uint64_t order_ = 0;
};

}  // namespace sfq
