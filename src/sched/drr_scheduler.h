#pragma once

#include <deque>
#include <optional>
#include <vector>

#include "core/scheduler.h"

namespace sfq {

// Deficit Round Robin (Shreedhar–Varghese, SIGCOMM'95). O(1) per packet:
// backlogged flows sit on a round-robin list; each visit credits the flow
// with a quantum proportional to its weight and sends head packets while the
// deficit covers them.
//
// Included as the Table-1 comparator: its fairness measure
// (1 + l_f^max/r_f + l_m^max/r_m for min r = 1) deviates arbitrarily from
// SFQ's as weights grow, and its maximum delay is Σ_{n≠f} quantum_n / C.
class DrrScheduler : public Scheduler {
 public:
  // `quantum_per_weight` converts a flow weight into its per-round quantum in
  // bits: quantum_f = weight_f * quantum_per_weight. For DRR to be O(1) the
  // quantum of every flow should be >= its max packet size.
  explicit DrrScheduler(double quantum_per_weight = 1.0)
      : quantum_per_weight_(quantum_per_weight) {}

  FlowId add_flow(double weight, double max_packet_bits = 0.0,
                  std::string name = {}) override {
    FlowId id = Scheduler::add_flow(weight, max_packet_bits, std::move(name));
    state_.push_back(FlowState{});
    queues_.ensure(id);
    return id;
  }

  bool enqueue(Packet p, Time now) override;
  std::optional<Packet> dequeue(Time now) override;

  std::vector<Packet> remove_flow(FlowId f, Time now) override;
  std::optional<Packet> pushout(FlowId f, Time now) override;

  bool empty() const override { return queues_.packets() == 0; }
  std::size_t backlog_packets() const override { return queues_.packets(); }
  double backlog_bits(FlowId f) const override { return queues_.bits(f); }
  std::string name() const override { return "DRR"; }

  double quantum(FlowId f) const {
    return flows_.weight(f) * quantum_per_weight_;
  }
  double deficit(FlowId f) const { return state_.at(f).deficit; }

 private:
  struct FlowState {
    double deficit = 0.0;
    bool active = false;         // on the round-robin list
    bool round_started = false;  // quantum already credited this visit
  };

  double quantum_per_weight_;
  PerFlowQueues queues_;
  std::vector<FlowState> state_;
  std::deque<FlowId> active_;
};

}  // namespace sfq
