#include "sched/drr_scheduler.h"

#include <algorithm>

namespace sfq {

bool DrrScheduler::enqueue(Packet p, Time now) {
  if (!admit(p, now)) return false;
  const FlowId f = p.flow;
  queues_.push(std::move(p));
  FlowState& st = state_[f];
  if (!st.active) {
    st.active = true;
    st.round_started = false;
    st.deficit = 0.0;  // flows rejoin with an empty deficit (paper's DRR)
    active_.push_back(f);
  }
  return true;
}

std::optional<Packet> DrrScheduler::dequeue(Time now) {
  (void)now;
  while (!active_.empty()) {
    const FlowId f = active_.front();
    FlowState& st = state_[f];
    if (!st.round_started) {
      st.deficit += quantum(f);
      st.round_started = true;
    }
    if (!queues_.flow_empty(f) &&
        queues_.head(f).length_bits <= st.deficit) {
      Packet p = queues_.pop(f);
      st.deficit -= p.length_bits;
      if (queues_.flow_empty(f)) {
        // Emptied: leave the list and forfeit the residual deficit.
        active_.pop_front();
        st.active = false;
        st.round_started = false;
        st.deficit = 0.0;
      }
      return p;
    }
    // Head does not fit (or flow drained concurrently): next round.
    active_.pop_front();
    if (queues_.flow_empty(f)) {
      st.active = false;
      st.deficit = 0.0;
    } else {
      active_.push_back(f);
    }
    st.round_started = false;
  }
  return std::nullopt;
}

std::vector<Packet> DrrScheduler::remove_flow(FlowId f, Time now) {
  Scheduler::remove_flow(f, now);
  std::vector<Packet> out = queues_.drain(f);
  FlowState& st = state_[f];
  if (st.active) {
    active_.erase(std::remove(active_.begin(), active_.end(), f),
                  active_.end());
    st.active = false;
    st.round_started = false;
    st.deficit = 0.0;  // rejoining flows start with an empty deficit anyway
  }
  return out;
}

std::optional<Packet> DrrScheduler::pushout(FlowId f, Time now) {
  (void)now;
  if (queues_.flow_empty(f)) return std::nullopt;
  Packet victim = queues_.pop_back(f);
  if (queues_.flow_empty(f)) {
    FlowState& st = state_[f];
    active_.erase(std::remove(active_.begin(), active_.end(), f),
                  active_.end());
    st.active = false;
    st.round_started = false;
    st.deficit = 0.0;
  }
  return victim;
}

}  // namespace sfq
