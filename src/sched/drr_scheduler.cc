#include "sched/drr_scheduler.h"

#include <stdexcept>

namespace sfq {

void DrrScheduler::enqueue(Packet p, Time now) {
  (void)now;
  if (p.flow >= state_.size())
    throw std::out_of_range("DRR: packet for unknown flow");
  const FlowId f = p.flow;
  queues_.push(std::move(p));
  FlowState& st = state_[f];
  if (!st.active) {
    st.active = true;
    st.round_started = false;
    st.deficit = 0.0;  // flows rejoin with an empty deficit (paper's DRR)
    active_.push_back(f);
  }
}

std::optional<Packet> DrrScheduler::dequeue(Time now) {
  (void)now;
  while (!active_.empty()) {
    const FlowId f = active_.front();
    FlowState& st = state_[f];
    if (!st.round_started) {
      st.deficit += quantum(f);
      st.round_started = true;
    }
    if (!queues_.flow_empty(f) &&
        queues_.head(f).length_bits <= st.deficit) {
      Packet p = queues_.pop(f);
      st.deficit -= p.length_bits;
      if (queues_.flow_empty(f)) {
        // Emptied: leave the list and forfeit the residual deficit.
        active_.pop_front();
        st.active = false;
        st.round_started = false;
        st.deficit = 0.0;
      }
      return p;
    }
    // Head does not fit (or flow drained concurrently): next round.
    active_.pop_front();
    if (queues_.flow_empty(f)) {
      st.active = false;
      st.deficit = 0.0;
    } else {
      active_.push_back(f);
    }
    st.round_started = false;
  }
  return std::nullopt;
}

}  // namespace sfq
