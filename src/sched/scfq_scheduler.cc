#include "sched/scfq_scheduler.h"

#include <algorithm>

namespace sfq {

bool ScfqScheduler::enqueue(Packet p, Time now) {
  if (!admit(p, now)) return false;
  const double rate = p.rate > 0.0 ? p.rate : flows_.weight(p.flow);

  p.start_tag = std::max(vtime_, last_finish_[p.flow]);
  p.finish_tag = p.start_tag + p.length_bits / rate;
  last_finish_[p.flow] = p.finish_tag;
  p.sched_order = ++order_;
  trace_tag(p, now, vtime_, queues_.packets() + 1);

  const FlowId f = p.flow;
  const bool was_empty = queues_.flow_empty(f);
  queues_.push(std::move(p));
  if (was_empty) {
    const Packet& head = queues_.head(f);
    ready_.push_or_update(f, TagKey{head.finish_tag, 0.0, head.sched_order});
  }  return true;
}

std::optional<Packet> ScfqScheduler::dequeue(Time now) {
  if (ready_.empty()) return std::nullopt;
  FlowId f = ready_.top_id();
  ready_.pop();
  Packet p = queues_.pop(f);

  // Self-clocking: v(t) is the finish tag of the packet in service.
  vtime_ = p.finish_tag;

  if (!queues_.flow_empty(f)) {
    const Packet& head = queues_.head(f);
    ready_.push(f, TagKey{head.finish_tag, 0.0, head.sched_order});
  }
  trace_dequeue(p, now, vtime_, queues_.packets());
  return p;
}

std::vector<Packet> ScfqScheduler::remove_flow(FlowId f, Time now) {
  Scheduler::remove_flow(f, now);
  if (ready_.contains(f)) ready_.erase(f);
  std::vector<Packet> out = queues_.drain(f);
  if (!out.empty()) {
    // S_1 = max(v, F_0) and v(t) is monotone, so resuming from S_1 is
    // equivalent to restoring F_0 (see SfqScheduler::remove_flow).
    last_finish_[f] = out.front().start_tag;
  }
  return out;
}

std::optional<Packet> ScfqScheduler::pushout(FlowId f, Time now) {
  (void)now;
  if (queues_.flow_empty(f)) return std::nullopt;
  Packet victim = queues_.pop_back(f);
  last_finish_[f] = victim.start_tag;
  if (queues_.flow_empty(f) && ready_.contains(f)) ready_.erase(f);
  return victim;
}

}  // namespace sfq
