#pragma once

#include <optional>
#include <vector>

#include "core/indexed_heap.h"
#include "core/scheduler.h"

namespace sfq {

// Virtual Clock (Zhang, SIGCOMM'90). Each packet is stamped
//
//   VC(p_f^j) = EAT(p_f^j, r_f) + l_f^j / r_f,
//   EAT(p_f^j) = max{ A(p_f^j), EAT(p_f^{j-1}) + l_f^{j-1}/r_f }   (eq. 37)
//
// and packets are served in increasing stamp order. Provides the delay
// guarantee of a Guaranteed Rate scheduler but is *unfair*: a flow that used
// idle capacity builds far-future stamps and is starved afterwards — the
// behaviour the paper's §1.1 holds against real-time (non-fair) schedulers.
// Also the GSQ discipline inside Fair Airport (Appendix B).
class VirtualClockScheduler : public Scheduler {
 public:
  FlowId add_flow(double weight, double max_packet_bits = 0.0,
                  std::string name = {}) override {
    FlowId id = Scheduler::add_flow(weight, max_packet_bits, std::move(name));
    eat_.push_back(EatState{});
    queues_.ensure(id);
    return id;
  }

  bool enqueue(Packet p, Time now) override;
  std::optional<Packet> dequeue(Time now) override;

  std::vector<Packet> remove_flow(FlowId f, Time now) override;
  std::optional<Packet> pushout(FlowId f, Time now) override;

  bool empty() const override { return queues_.packets() == 0; }
  std::size_t backlog_packets() const override { return queues_.packets(); }
  double backlog_bits(FlowId f) const override { return queues_.bits(f); }
  std::string name() const override { return "VirtualClock"; }

  // EAT(p_f^j, r_f) of the most recent arrival (for tests of eq. 37).
  Time last_eat(FlowId f) const { return eat_.at(f).last_eat; }

 private:
  struct EatState {
    Time last_eat = -kTimeInfinity;  // EAT(p_f^0) = -inf
    double last_bits = 0.0;
    bool any = false;
  };

  PerFlowQueues queues_;
  std::vector<EatState> eat_;
  IndexedHeap<TagKey> ready_;  // flows keyed by head packet stamp
  uint64_t order_ = 0;
};

}  // namespace sfq
