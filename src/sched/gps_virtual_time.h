#pragma once

#include <cstdint>
#include <vector>

#include "core/indexed_heap.h"
#include "core/ring_buffer.h"
#include "core/types.h"

namespace sfq {

// Exact event-driven simulation of the bit-by-bit weighted round-robin
// (fluid GPS) virtual time v(t) of eq. (3):
//
//     dv/dt = C / sum_{j in B(t)} r_j
//
// where B(t) is the set of flows backlogged *in the fluid system*. A packet
// with GPS finish tag F departs the fluid system exactly when v reaches F, so
// v(t) is piecewise linear with breakpoints at arrivals and fluid departures.
// `advance` replays all fluid departures between the last update and `t`.
//
// This is precisely the machinery whose cost (and whose hard-wired capacity
// C) the paper holds against WFQ/FQS: v(t) must be integrated against the
// *configured* C even when the real server is slower or faster, which is why
// WFQ mis-shares variable-rate servers (Example 2, Figure 1).
class GpsVirtualTime {
 public:
  explicit GpsVirtualTime(double capacity);

  // Registers flow with weight r_f; ids must be dense (0,1,2,...).
  void add_flow(double weight);

  // Processes an arrival of `bits` for `flow` at real time `t` and returns
  // the packet's GPS {start, finish} tags (eqs. 1–2).
  struct Tags {
    VirtualTime start;
    VirtualTime finish;
  };
  Tags on_arrival(uint32_t flow, double bits, Time t);

  // Undoes the newest `count` arrivals of `flow` — their bits leave the fluid
  // system unserved (flow removal / pushout in the packet system) — and
  // resumes the flow's tag state from `resume_tag`, the oldest removed
  // packet's start tag (equivalent to restoring the pre-removal last_finish,
  // since v is monotone). Entries that already departed in the fluid system
  // stay departed: their share of v's trajectory is history.
  void remove_newest(uint32_t flow, std::size_t count, VirtualTime resume_tag,
                     Time t);

  // Advances the fluid system to real time t and returns v(t).
  VirtualTime advance(Time t);

  VirtualTime vtime() const { return v_; }
  double capacity() const { return capacity_; }

 private:
  struct FlowState {
    double weight = 0.0;
    VirtualTime last_finish = 0.0;          // F(p_f^{j-1}) for tag computation
    RingBuffer<VirtualTime> fluid_queue;    // finish tags not yet departed in GPS
  };

  void fluid_depart(uint32_t flow);

  double capacity_;
  std::vector<FlowState> flows_;
  IndexedHeap<TagKey> fluid_heads_;  // backlogged-in-GPS flows by head finish tag
  double backlogged_weight_ = 0.0;
  VirtualTime v_ = 0.0;
  Time last_real_ = 0.0;
  uint64_t seq_ = 0;
};

}  // namespace sfq
