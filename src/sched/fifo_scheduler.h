#pragma once

#include <algorithm>
#include <deque>
#include <iterator>
#include <optional>
#include <vector>

#include "core/scheduler.h"

namespace sfq {

// First-come-first-served baseline. No isolation, no fairness — included so
// experiments have a null comparator and the server machinery can be tested
// independently of tag arithmetic.
class FifoScheduler : public Scheduler {
 public:
  bool enqueue(Packet p, Time now) override {
    (void)now;
    p.sched_order = ++order_;
    q_.push_back(std::move(p));
    return true;
  }

  std::optional<Packet> dequeue(Time now) override {
    (void)now;
    if (q_.empty()) return std::nullopt;
    Packet p = std::move(q_.front());
    q_.pop_front();
    return p;
  }

  // FIFO keeps no per-flow state; churn just filters the shared queue. The
  // flow need not be registered (requires_registered_flows() is false).
  std::vector<Packet> remove_flow(FlowId f, Time now) override {
    if (f < flows_.size()) Scheduler::remove_flow(f, now);
    auto it = std::stable_partition(
        q_.begin(), q_.end(), [f](const Packet& p) { return p.flow != f; });
    std::vector<Packet> out(std::make_move_iterator(it),
                            std::make_move_iterator(q_.end()));
    q_.erase(it, q_.end());
    return out;
  }

  std::optional<Packet> pushout(FlowId f, Time now) override {
    (void)now;
    for (auto it = q_.rbegin(); it != q_.rend(); ++it) {
      if (it->flow != f) continue;
      Packet victim = std::move(*it);
      q_.erase(std::next(it).base());
      return victim;
    }
    return std::nullopt;
  }

  bool empty() const override { return q_.empty(); }
  std::size_t backlog_packets() const override { return q_.size(); }
  double backlog_bits(FlowId f) const override {
    double b = 0.0;
    for (const Packet& p : q_)
      if (p.flow == f) b += p.length_bits;
    return b;
  }
  std::string name() const override { return "FIFO"; }
  bool requires_registered_flows() const override { return false; }

 private:
  std::deque<Packet> q_;
  uint64_t order_ = 0;
};

}  // namespace sfq
