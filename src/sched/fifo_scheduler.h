#pragma once

#include <deque>
#include <optional>

#include "core/scheduler.h"

namespace sfq {

// First-come-first-served baseline. No isolation, no fairness — included so
// experiments have a null comparator and the server machinery can be tested
// independently of tag arithmetic.
class FifoScheduler : public Scheduler {
 public:
  void enqueue(Packet p, Time now) override {
    (void)now;
    p.sched_order = ++order_;
    q_.push_back(std::move(p));
  }

  std::optional<Packet> dequeue(Time now) override {
    (void)now;
    if (q_.empty()) return std::nullopt;
    Packet p = std::move(q_.front());
    q_.pop_front();
    return p;
  }

  bool empty() const override { return q_.empty(); }
  std::size_t backlog_packets() const override { return q_.size(); }
  double backlog_bits(FlowId f) const override {
    double b = 0.0;
    for (const Packet& p : q_)
      if (p.flow == f) b += p.length_bits;
    return b;
  }
  std::string name() const override { return "FIFO"; }
  bool requires_registered_flows() const override { return false; }

 private:
  std::deque<Packet> q_;
  uint64_t order_ = 0;
};

}  // namespace sfq
