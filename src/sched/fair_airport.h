#pragma once

#include <optional>
#include <vector>

#include "core/indexed_heap.h"
#include "core/ring_buffer.h"
#include "core/scheduler.h"

namespace sfq {

// Fair Airport scheduling (paper Appendix B): the delay guarantee of WFQ
// plus fairness on variable-rate servers, at O(log Q) per packet.
//
// Every arriving packet joins a per-flow rate regulator *and* the Auxiliary
// Service Queue (an SFQ). When the regulator releases a packet (at its
// expected arrival time EAT^RC, computed over the subsequence of packets that
// go through the guaranteed path), the packet joins the Guaranteed Service
// Queue (a Virtual Clock). The server always prefers GSQ, non-preemptively.
// Rules 1–6 of the appendix, including the start-tag inheritance of rule 5:
// when GSQ serves a packet, the flow's next ASQ packet inherits its start
// tag, so the ASQ's fairness bookkeeping (Lemmas 1–2) keeps holding.
//
// Eligibility is evaluated lazily at dequeue time, which is exactly the
// non-preemptive semantics of the appendix.
class FairAirportScheduler : public Scheduler {
 public:
  FlowId add_flow(double weight, double max_packet_bits = 0.0,
                  std::string name = {}) override;

  bool enqueue(Packet p, Time now) override;
  std::optional<Packet> dequeue(Time now) override;
  void on_transmit_complete(const Packet& p, Time now) override;

  std::vector<Packet> remove_flow(FlowId f, Time now) override;
  std::optional<Packet> pushout(FlowId f, Time now) override;

  bool empty() const override { return total_packets_ == 0; }
  std::size_t backlog_packets() const override { return total_packets_; }
  double backlog_bits(FlowId f) const override;
  std::string name() const override { return "FairAirport"; }

  // Introspection for tests/benches.
  uint64_t served_via_gsq() const { return served_gsq_; }
  uint64_t served_via_asq() const { return served_asq_; }
  VirtualTime asq_vtime() const { return v_asq_; }

 private:
  struct FlowState {
    RingBuffer<Packet> q;          // unserved packets, arrival order
    RingBuffer<double> gsq_stamps; // VC stamps of the eligible prefix of q
    std::size_t eligible = 0;      // # of q's head packets already in GSQ

    // ASQ (SFQ) bookkeeping — dequeue-driven, see enqueue/serve paths.
    VirtualTime head_start = 0.0;  // start tag of q.front() in the ASQ
    VirtualTime last_finish = 0.0; // F of last ASQ-served packet

    // Rate-regulator state: EAT over the GSQ-served subsequence.
    Time last_release_eat = 0.0;
    double last_release_bits = 0.0;
    bool any_release = false;
  };

  // Eligibility time of the flow's regulator head (first non-eligible
  // packet), or kTimeInfinity when none.
  Time regulator_head_eligibility(const FlowState& st) const;
  void refresh_regulator(FlowId f);
  void refresh_asq(FlowId f);
  void refresh_gsq(FlowId f);
  void promote_eligible(Time now);

  std::vector<FlowState> state_;
  IndexedHeap<TagKey> regulator_;  // flows keyed by next eligibility time
  IndexedHeap<TagKey> gsq_;        // flows keyed by earliest eligible VC stamp
  IndexedHeap<TagKey> asq_;        // flows keyed by head start tag
  std::size_t total_packets_ = 0;
  VirtualTime v_asq_ = 0.0;
  VirtualTime max_finish_asq_ = 0.0;
  uint64_t served_gsq_ = 0;
  uint64_t served_asq_ = 0;
  uint64_t order_ = 0;
};

}  // namespace sfq
