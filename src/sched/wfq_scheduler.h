#pragma once

#include <optional>
#include <string>

#include "core/indexed_heap.h"
#include "core/scheduler.h"
#include "sched/gps_virtual_time.h"

namespace sfq {

// Weighted Fair Queuing (Demers–Keshav–Shenker '89), a.k.a. PGPS
// (Parekh–Gallager). Tags per eqs. (1)–(2) with the fluid-GPS virtual time of
// eq. (3); packets served in increasing *finish-tag* order.
//
// The constructor takes the capacity the GPS emulation assumes. When the
// real server rate differs (variable-rate links, residual capacity behind a
// priority class), v(t) drifts from reality and WFQ mis-shares — Example 2
// and Figure 1 of the paper, reproduced in tests/bench.
class WfqScheduler : public Scheduler {
 public:
  explicit WfqScheduler(double assumed_capacity) : gps_(assumed_capacity) {}

  FlowId add_flow(double weight, double max_packet_bits = 0.0,
                  std::string name = {}) override {
    FlowId id = Scheduler::add_flow(weight, max_packet_bits, std::move(name));
    gps_.add_flow(weight);
    queues_.ensure(id);
    return id;
  }

  bool enqueue(Packet p, Time now) override;
  std::optional<Packet> dequeue(Time now) override;

  std::vector<Packet> remove_flow(FlowId f, Time now) override;
  std::optional<Packet> pushout(FlowId f, Time now) override;

  bool empty() const override { return queues_.packets() == 0; }
  std::size_t backlog_packets() const override { return queues_.packets(); }
  double backlog_bits(FlowId f) const override { return queues_.bits(f); }
  std::string name() const override { return "WFQ"; }

  VirtualTime gps_vtime(Time t) { return gps_.advance(t); }

 private:
  GpsVirtualTime gps_;
  PerFlowQueues queues_;
  IndexedHeap<TagKey> ready_;
  uint64_t order_seq_ = 0;
};

// Fair Queuing based on Start-time (Greenberg–Madras). Identical tag
// computation to WFQ (fluid-GPS v(t)), but service in increasing *start-tag*
// order. Kept as a comparator: same cost and variable-rate unfairness as
// WFQ, fairness measure no better than SFQ (paper §2.5).
class FqsScheduler : public Scheduler {
 public:
  explicit FqsScheduler(double assumed_capacity) : gps_(assumed_capacity) {}

  FlowId add_flow(double weight, double max_packet_bits = 0.0,
                  std::string name = {}) override {
    FlowId id = Scheduler::add_flow(weight, max_packet_bits, std::move(name));
    gps_.add_flow(weight);
    queues_.ensure(id);
    return id;
  }

  bool enqueue(Packet p, Time now) override;
  std::optional<Packet> dequeue(Time now) override;

  std::vector<Packet> remove_flow(FlowId f, Time now) override;
  std::optional<Packet> pushout(FlowId f, Time now) override;

  bool empty() const override { return queues_.packets() == 0; }
  std::size_t backlog_packets() const override { return queues_.packets(); }
  double backlog_bits(FlowId f) const override { return queues_.bits(f); }
  std::string name() const override { return "FQS"; }

 private:
  GpsVirtualTime gps_;
  PerFlowQueues queues_;
  IndexedHeap<TagKey> ready_;
  uint64_t order_seq_ = 0;
};

}  // namespace sfq
