#pragma once

#include <deque>
#include <optional>
#include <vector>

#include "core/scheduler.h"

namespace sfq {

// Classic packet-counting Weighted Round Robin: per round, flow f may send
// round(w_f / w_min) packets. The scheduler DRR was designed to fix (§1.2):
// with variable-length packets WRR's *byte* shares drift from the weights
// because it counts packets, not bits — a property the tests demonstrate
// against DRR. Also the conceptual basis of WFQ's bit-by-bit emulation.
class WrrScheduler : public Scheduler {
 public:
  FlowId add_flow(double weight, double max_packet_bits = 0.0,
                  std::string name = {}) override;

  bool enqueue(Packet p, Time now) override;
  std::optional<Packet> dequeue(Time now) override;

  std::vector<Packet> remove_flow(FlowId f, Time now) override;
  std::optional<Packet> pushout(FlowId f, Time now) override;

  bool empty() const override { return queues_.packets() == 0; }
  std::size_t backlog_packets() const override { return queues_.packets(); }
  double backlog_bits(FlowId f) const override { return queues_.bits(f); }
  std::string name() const override { return "WRR"; }

  // Packets flow f may send per round under the current weight set.
  uint64_t packets_per_round(FlowId f) const;

 private:
  struct FlowState {
    bool active = false;
    uint64_t sent_this_visit = 0;
  };

  PerFlowQueues queues_;
  std::vector<FlowState> state_;
  std::deque<FlowId> ring_;
};

}  // namespace sfq
