#include "sched/wfq_scheduler.h"

namespace sfq {

bool WfqScheduler::enqueue(Packet p, Time now) {
  if (!admit(p, now)) return false;
  auto tags = gps_.on_arrival(p.flow, p.length_bits, now);
  p.start_tag = tags.start;
  p.finish_tag = tags.finish;
  p.sched_order = ++order_seq_;
  trace_tag(p, now, gps_.vtime(), queues_.packets() + 1);

  const FlowId f = p.flow;
  const bool was_empty = queues_.flow_empty(f);
  queues_.push(std::move(p));
  if (was_empty) {
    const Packet& head = queues_.head(f);
    ready_.push_or_update(f, TagKey{head.finish_tag, 0.0, head.sched_order});
  }  return true;
}

std::optional<Packet> WfqScheduler::dequeue(Time now) {
  gps_.advance(now);  // keep the fluid system current even without arrivals
  if (ready_.empty()) return std::nullopt;
  FlowId f = ready_.top_id();
  ready_.pop();
  Packet p = queues_.pop(f);
  if (!queues_.flow_empty(f)) {
    const Packet& head = queues_.head(f);
    ready_.push(f, TagKey{head.finish_tag, 0.0, head.sched_order});
  }
  trace_dequeue(p, now, gps_.vtime(), queues_.packets());
  return p;
}

std::vector<Packet> WfqScheduler::remove_flow(FlowId f, Time now) {
  Scheduler::remove_flow(f, now);
  if (ready_.contains(f)) ready_.erase(f);
  std::vector<Packet> out = queues_.drain(f);
  if (!out.empty())
    gps_.remove_newest(f, out.size(), out.front().start_tag, now);
  return out;
}

std::optional<Packet> WfqScheduler::pushout(FlowId f, Time now) {
  if (queues_.flow_empty(f)) return std::nullopt;
  Packet victim = queues_.pop_back(f);
  gps_.remove_newest(f, 1, victim.start_tag, now);
  if (queues_.flow_empty(f) && ready_.contains(f)) ready_.erase(f);
  return victim;
}

bool FqsScheduler::enqueue(Packet p, Time now) {
  if (!admit(p, now)) return false;
  auto tags = gps_.on_arrival(p.flow, p.length_bits, now);
  p.start_tag = tags.start;
  p.finish_tag = tags.finish;
  p.sched_order = ++order_seq_;
  trace_tag(p, now, gps_.vtime(), queues_.packets() + 1);

  const FlowId f = p.flow;
  const bool was_empty = queues_.flow_empty(f);
  queues_.push(std::move(p));
  if (was_empty) {
    const Packet& head = queues_.head(f);
    ready_.push_or_update(f, TagKey{head.start_tag, 0.0, head.sched_order});
  }  return true;
}

std::optional<Packet> FqsScheduler::dequeue(Time now) {
  gps_.advance(now);
  if (ready_.empty()) return std::nullopt;
  FlowId f = ready_.top_id();
  ready_.pop();
  Packet p = queues_.pop(f);
  if (!queues_.flow_empty(f)) {
    const Packet& head = queues_.head(f);
    ready_.push(f, TagKey{head.start_tag, 0.0, head.sched_order});
  }
  trace_dequeue(p, now, gps_.vtime(), queues_.packets());
  return p;
}

std::vector<Packet> FqsScheduler::remove_flow(FlowId f, Time now) {
  Scheduler::remove_flow(f, now);
  if (ready_.contains(f)) ready_.erase(f);
  std::vector<Packet> out = queues_.drain(f);
  if (!out.empty())
    gps_.remove_newest(f, out.size(), out.front().start_tag, now);
  return out;
}

std::optional<Packet> FqsScheduler::pushout(FlowId f, Time now) {
  if (queues_.flow_empty(f)) return std::nullopt;
  Packet victim = queues_.pop_back(f);
  gps_.remove_newest(f, 1, victim.start_tag, now);
  if (queues_.flow_empty(f) && ready_.contains(f)) ready_.erase(f);
  return victim;
}

}  // namespace sfq
