#include "sched/wfq_scheduler.h"

#include <stdexcept>

namespace sfq {

void WfqScheduler::enqueue(Packet p, Time now) {
  if (p.flow >= flows_.size())
    throw std::out_of_range("WFQ: packet for unknown flow");
  auto tags = gps_.on_arrival(p.flow, p.length_bits, now);
  p.start_tag = tags.start;
  p.finish_tag = tags.finish;
  p.sched_order = ++order_seq_;
  trace_tag(p, now, gps_.vtime(), queues_.packets() + 1);

  const FlowId f = p.flow;
  const bool was_empty = queues_.flow_empty(f);
  queues_.push(std::move(p));
  if (was_empty) {
    const Packet& head = queues_.head(f);
    ready_.push_or_update(f, TagKey{head.finish_tag, 0.0, head.sched_order});
  }
}

std::optional<Packet> WfqScheduler::dequeue(Time now) {
  gps_.advance(now);  // keep the fluid system current even without arrivals
  if (ready_.empty()) return std::nullopt;
  FlowId f = ready_.top_id();
  ready_.pop();
  Packet p = queues_.pop(f);
  if (!queues_.flow_empty(f)) {
    const Packet& head = queues_.head(f);
    ready_.push(f, TagKey{head.finish_tag, 0.0, head.sched_order});
  }
  trace_dequeue(p, now, gps_.vtime(), queues_.packets());
  return p;
}

void FqsScheduler::enqueue(Packet p, Time now) {
  if (p.flow >= flows_.size())
    throw std::out_of_range("FQS: packet for unknown flow");
  auto tags = gps_.on_arrival(p.flow, p.length_bits, now);
  p.start_tag = tags.start;
  p.finish_tag = tags.finish;
  p.sched_order = ++order_seq_;
  trace_tag(p, now, gps_.vtime(), queues_.packets() + 1);

  const FlowId f = p.flow;
  const bool was_empty = queues_.flow_empty(f);
  queues_.push(std::move(p));
  if (was_empty) {
    const Packet& head = queues_.head(f);
    ready_.push_or_update(f, TagKey{head.start_tag, 0.0, head.sched_order});
  }
}

std::optional<Packet> FqsScheduler::dequeue(Time now) {
  gps_.advance(now);
  if (ready_.empty()) return std::nullopt;
  FlowId f = ready_.top_id();
  ready_.pop();
  Packet p = queues_.pop(f);
  if (!queues_.flow_empty(f)) {
    const Packet& head = queues_.head(f);
    ready_.push(f, TagKey{head.start_tag, 0.0, head.sched_order});
  }
  trace_dequeue(p, now, gps_.vtime(), queues_.packets());
  return p;
}

}  // namespace sfq
