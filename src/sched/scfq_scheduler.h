#pragma once

#include <optional>
#include <vector>

#include "core/indexed_heap.h"
#include "core/scheduler.h"

namespace sfq {

// Self-Clocked Fair Queuing (Davin–Heybey / Golestani '94).
//
// Tags are computed exactly as WFQ's (eqs. 1–2) except that the virtual time
// v(t) is approximated by the *finish tag of the packet in service* at t.
// Packets are served in increasing finish-tag order. Same fairness measure
// as SFQ (l_f^max/r_f + l_m^max/r_m) and same O(log Q) cost, but a packet can
// be delayed an extra l_f^j/r_f - l_f^j/C relative to SFQ (paper eq. 56/57)
// because service order follows finish, not start, tags.
class ScfqScheduler : public Scheduler {
 public:
  FlowId add_flow(double weight, double max_packet_bits = 0.0,
                  std::string name = {}) override {
    FlowId id = Scheduler::add_flow(weight, max_packet_bits, std::move(name));
    last_finish_.push_back(0.0);
    queues_.ensure(id);
    return id;
  }

  bool enqueue(Packet p, Time now) override;
  std::optional<Packet> dequeue(Time now) override;

  std::vector<Packet> remove_flow(FlowId f, Time now) override;
  std::optional<Packet> pushout(FlowId f, Time now) override;

  bool empty() const override { return queues_.packets() == 0; }
  std::size_t backlog_packets() const override { return queues_.packets(); }
  double backlog_bits(FlowId f) const override { return queues_.bits(f); }
  std::string name() const override { return "SCFQ"; }

  VirtualTime vtime() const { return vtime_; }

 private:
  PerFlowQueues queues_;
  std::vector<VirtualTime> last_finish_;
  IndexedHeap<TagKey> ready_;  // flows keyed by head finish tag
  VirtualTime vtime_ = 0.0;
  uint64_t order_ = 0;
};

}  // namespace sfq
