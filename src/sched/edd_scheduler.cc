#include "sched/edd_scheduler.h"

#include <algorithm>

namespace sfq {

FlowId EddScheduler::add_flow_with_deadline(double weight, Time deadline,
                                            double max_packet_bits,
                                            std::string name) {
  FlowId id = Scheduler::add_flow(weight, max_packet_bits, std::move(name));
  deadline_.push_back(deadline);
  eat_.push_back(EatState{});
  queues_.ensure(id);
  return id;
}

FlowId EddScheduler::add_flow(double weight, double max_packet_bits,
                              std::string name) {
  const Time d = max_packet_bits > 0.0 ? max_packet_bits / weight : 0.0;
  return add_flow_with_deadline(weight, d, max_packet_bits, std::move(name));
}

bool EddScheduler::enqueue(Packet p, Time now) {
  if (!admit(p, now)) return false;
  EatState& st = eat_[p.flow];
  const double rate = p.rate > 0.0 ? p.rate : flows_.weight(p.flow);

  const Time prev_term =
      st.any ? st.last_eat + st.last_bits / rate : -kTimeInfinity;
  const Time eat = std::max<Time>(p.arrival, prev_term);
  st.last_eat = eat;
  st.last_bits = p.length_bits;
  st.any = true;

  p.start_tag = eat;
  p.finish_tag = eat + deadline_[p.flow];  // D(p_f^j), eq. 66
  p.sched_order = ++order_;

  const FlowId f = p.flow;
  const bool was_empty = queues_.flow_empty(f);
  queues_.push(std::move(p));
  if (was_empty) {
    const Packet& head = queues_.head(f);
    ready_.push_or_update(f, TagKey{head.finish_tag, 0.0, head.sched_order});
  }  return true;
}

std::optional<Packet> EddScheduler::dequeue(Time now) {
  (void)now;
  if (ready_.empty()) return std::nullopt;
  FlowId f = ready_.top_id();
  ready_.pop();
  Packet p = queues_.pop(f);
  if (!queues_.flow_empty(f)) {
    const Packet& head = queues_.head(f);
    ready_.push(f, TagKey{head.finish_tag, 0.0, head.sched_order});
  }
  return p;
}

std::vector<Packet> EddScheduler::remove_flow(FlowId f, Time now) {
  Scheduler::remove_flow(f, now);
  if (ready_.contains(f)) ready_.erase(f);
  std::vector<Packet> out = queues_.drain(f);
  if (!out.empty()) {
    // start_tag holds the packet's EAT; same rollback as VirtualClock.
    eat_[f].last_eat = out.front().start_tag;
    eat_[f].last_bits = 0.0;
  }
  return out;
}

std::optional<Packet> EddScheduler::pushout(FlowId f, Time now) {
  (void)now;
  if (queues_.flow_empty(f)) return std::nullopt;
  Packet victim = queues_.pop_back(f);
  eat_[f].last_eat = victim.start_tag;
  eat_[f].last_bits = 0.0;
  if (queues_.flow_empty(f) && ready_.contains(f)) ready_.erase(f);
  return victim;
}

}  // namespace sfq
