#include "sched/fair_airport.h"

#include <algorithm>

namespace sfq {

FlowId FairAirportScheduler::add_flow(double weight, double max_packet_bits,
                                      std::string name) {
  FlowId id = Scheduler::add_flow(weight, max_packet_bits, std::move(name));
  state_.push_back(FlowState{});
  return id;
}

double FairAirportScheduler::backlog_bits(FlowId f) const {
  if (f >= state_.size()) return 0.0;
  double b = 0.0;
  const auto& q = state_[f].q;
  for (std::size_t i = 0; i < q.size(); ++i) b += q[i].length_bits;
  return b;
}

Time FairAirportScheduler::regulator_head_eligibility(
    const FlowState& st) const {
  if (st.eligible >= st.q.size()) return kTimeInfinity;
  const Packet& head = st.q[st.eligible];
  const double rate = flows_.weight(head.flow);
  Time e = head.arrival;
  if (st.any_release)
    e = std::max(e, st.last_release_eat + st.last_release_bits / rate);
  return e;
}

void FairAirportScheduler::refresh_regulator(FlowId f) {
  const Time e = regulator_head_eligibility(state_[f]);
  if (e == kTimeInfinity) {
    if (regulator_.contains(f)) regulator_.erase(f);
  } else {
    regulator_.push_or_update(f, TagKey{e, 0.0, ++order_});
  }
}

void FairAirportScheduler::refresh_asq(FlowId f) {
  const FlowState& st = state_[f];
  if (st.q.empty()) {
    if (asq_.contains(f)) asq_.erase(f);
  } else {
    asq_.push_or_update(f, TagKey{st.head_start, 0.0, ++order_});
  }
}

void FairAirportScheduler::refresh_gsq(FlowId f) {
  const FlowState& st = state_[f];
  if (st.gsq_stamps.empty()) {
    if (gsq_.contains(f)) gsq_.erase(f);
  } else {
    gsq_.push_or_update(f, TagKey{st.gsq_stamps.front(), 0.0, ++order_});
  }
}

bool FairAirportScheduler::enqueue(Packet p, Time now) {
  if (!admit(p, now)) return false;
  const FlowId f = p.flow;
  FlowState& st = state_[f];

  const bool was_empty = st.q.empty();
  p.sched_order = ++order_;
  st.q.push_back(std::move(p));
  ++total_packets_;

  if (was_empty) {
    // Rule 1: the packet joins the ASQ (SFQ start tag) and the regulator.
    st.head_start = std::max(v_asq_, st.last_finish);
    refresh_asq(f);
  }
  refresh_regulator(f);
  return true;
}

void FairAirportScheduler::promote_eligible(Time now) {
  while (!regulator_.empty() && regulator_.top_key().tag <= now) {
    const FlowId f = regulator_.top_id();
    FlowState& st = state_[f];
    const Time e = regulator_head_eligibility(st);

    Packet& pkt = st.q[st.eligible];
    const double rate = flows_.weight(f);
    // Rule 3: VC stamp = EAT^GSQ + l/r with EAT^GSQ == EAT^RC (eq. 124).
    st.gsq_stamps.push_back(e + pkt.length_bits / rate);
    ++st.eligible;
    st.last_release_eat = e;
    st.last_release_bits = pkt.length_bits;
    st.any_release = true;

    refresh_gsq(f);
    refresh_regulator(f);
  }
}

std::optional<Packet> FairAirportScheduler::dequeue(Time now) {
  promote_eligible(now);

  // Rule 6: GSQ first.
  if (!gsq_.empty()) {
    const FlowId f = gsq_.top_id();
    FlowState& st = state_[f];
    Packet p = std::move(st.q.front());
    st.q.pop_front();
    --total_packets_;
    p.start_tag = st.gsq_stamps.front() -
                  p.length_bits / flows_.weight(f);  // EAT^GSQ
    p.finish_tag = st.gsq_stamps.front();            // VC stamp
    st.gsq_stamps.pop_front();
    --st.eligible;
    ++served_gsq_;

    // Rule 5: the next ASQ packet inherits the removed packet's start tag —
    // st.head_start simply keeps its value.
    refresh_gsq(f);
    refresh_asq(f);
    refresh_regulator(f);
    return p;
  }

  // GSQ empty implies no eligible unserved packet exists, so every ASQ head
  // is still inside its regulator.
  if (!asq_.empty()) {
    const FlowId f = asq_.top_id();
    FlowState& st = state_[f];
    Packet p = std::move(st.q.front());
    st.q.pop_front();
    --total_packets_;

    const double rate = flows_.weight(f);
    p.start_tag = st.head_start;
    p.finish_tag = st.head_start + p.length_bits / rate;

    // SFQ self-clocking on the ASQ.
    v_asq_ = p.start_tag;
    st.last_finish = p.finish_tag;
    max_finish_asq_ = std::max(max_finish_asq_, p.finish_tag);
    if (!st.q.empty()) st.head_start = st.last_finish;
    ++served_asq_;

    // Rule 4: starting ASQ service removes the packet from the regulator;
    // the regulator clock (GSQ-served subsequence) is NOT advanced.
    refresh_asq(f);
    refresh_regulator(f);
    return p;
  }
  return std::nullopt;
}

std::vector<Packet> FairAirportScheduler::remove_flow(FlowId f, Time now) {
  Scheduler::remove_flow(f, now);
  FlowState& st = state_[f];
  std::vector<Packet> out;
  out.reserve(st.q.size());
  for (std::size_t i = 0; i < st.q.size(); ++i)
    out.push_back(std::move(st.q[i]));
  total_packets_ -= st.q.size();
  st.q.clear();
  st.gsq_stamps.clear();
  st.eligible = 0;
  // last_finish / head_start / regulator clock are deliberately retained: the
  // ASQ re-anchors on rejoin (max(v_asq, last_finish) at the next enqueue),
  // and promotions already granted keep charging the regulator (VC memory).
  if (regulator_.contains(f)) regulator_.erase(f);
  if (gsq_.contains(f)) gsq_.erase(f);
  if (asq_.contains(f)) asq_.erase(f);
  return out;
}

std::optional<Packet> FairAirportScheduler::pushout(FlowId f, Time now) {
  (void)now;
  FlowState& st = state_[f];
  if (st.q.empty()) return std::nullopt;
  Packet victim = std::move(st.q.back());
  st.q.pop_back();
  --total_packets_;
  if (st.eligible > st.q.size()) {
    // The victim had already been promoted into the GSQ; retract its stamp.
    // The regulator clock stays advanced (the release was granted).
    st.eligible = st.q.size();
    st.gsq_stamps.pop_back();
    refresh_gsq(f);
  }
  refresh_asq(f);
  refresh_regulator(f);
  return victim;
}

void FairAirportScheduler::on_transmit_complete(const Packet& p, Time now) {
  (void)p;
  (void)now;
  if (total_packets_ == 0) {
    // End of the ASQ busy period (no unserved packets at all).
    v_asq_ = std::max(v_asq_, max_finish_asq_);
  }
}

}  // namespace sfq
