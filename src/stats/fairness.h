#pragma once

#include "core/types.h"
#include "stats/service_recorder.h"

namespace sfq::stats {

// Empirical fairness measure between two flows (paper §1.2):
//
//   H_emp(f, m) = max over intervals [t1,t2] with both flows backlogged of
//                 | W_f(t1,t2)/r_f - W_m(t1,t2)/r_m |
//
// Because a single server transmits packets back to back, W over an interval
// is a sum over a *contiguous run* of the service-ordered transmission
// sequence; the maximum over all runs inside a co-backlogged window is a
// maximum-absolute-subarray-sum over per-packet values (+l/r_f for f's
// packets, -l/r_m for m's, 0 for others), solved exactly with Kadane's scan.
double empirical_fairness(const ServiceRecorder& rec, FlowId f, double rf,
                          FlowId m, double rm);

// Theoretical SFQ/SCFQ fairness bound of Theorem 1:
// l_f^max/r_f + l_m^max/r_m.
inline double sfq_fairness_bound(double lf_max, double rf, double lm_max,
                                 double rm) {
  return lf_max / rf + lm_max / rm;
}

// Lower bound on H(f,m) for any packet algorithm (Golestani, cited in §1.2).
inline double fairness_lower_bound(double lf_max, double rf, double lm_max,
                                   double rm) {
  return 0.5 * (lf_max / rf + lm_max / rm);
}

}  // namespace sfq::stats
