#include "stats/time_series.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace sfq::stats {

void TimeSeries::ensure(FlowId f) {
  if (f >= samples_.size()) samples_.resize(f + 1);
}

void TimeSeries::add(FlowId f, Time t, double value) {
  ensure(f);
  samples_[f].push_back(Sample{t, value});
}

std::vector<double> TimeSeries::bucket_sums(FlowId f, Time until) const {
  const std::size_t n =
      static_cast<std::size_t>(std::ceil(until / width_ - 1e-12));
  std::vector<double> out(n, 0.0);
  if (f >= samples_.size()) return out;
  for (const Sample& s : samples_[f]) {
    if (s.t >= until) continue;
    const std::size_t b = static_cast<std::size_t>(s.t / width_);
    if (b < n) out[b] += s.v;
  }
  return out;
}

std::vector<double> TimeSeries::cumulative(FlowId f, Time until) const {
  std::vector<double> buckets = bucket_sums(f, until);
  double run = 0.0;
  for (double& b : buckets) {
    run += b;
    b = run;
  }
  return buckets;
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  widths_.reserve(headers_.size());
  for (const auto& h : headers_) widths_.push_back(h.size() + 2);
}

void TablePrinter::row(const std::vector<std::string>& cells) {
  if (cells.size() != headers_.size())
    throw std::invalid_argument("TablePrinter: wrong cell count");
  auto print_line = [&](const std::vector<std::string>& vals) {
    for (std::size_t i = 0; i < vals.size(); ++i) {
      const std::size_t w =
          widths_[i] > vals[i].size() ? widths_[i] : vals[i].size() + 1;
      std::printf("%-*s", static_cast<int>(w), vals[i].c_str());
    }
    std::printf("\n");
  };
  if (!header_printed_) {
    print_line(headers_);
    header_printed_ = true;
  }
  print_line(cells);
}

std::string TablePrinter::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace sfq::stats
