#pragma once

#include <cstdint>
#include <vector>

#include "core/types.h"

namespace sfq::stats {

// Exact record of what a server did: one entry per completed packet
// transmission, in service order, plus per-flow backlogged intervals
// (a flow is backlogged from a packet arrival until its last queued packet
// finishes service). This is the ground truth every fairness / delay /
// throughput measurement is computed from.
class ServiceRecorder {
 public:
  struct Transmission {
    FlowId flow;
    double bits;
    Time start;
    Time end;
    Time arrival;  // arrival of this packet at the server
  };
  struct Interval {
    Time begin;
    Time end;
  };

  void on_arrival(FlowId f, Time t);
  void on_service(FlowId f, double bits, Time arrival, Time start, Time end);
  // Call at the end of a run so still-open backlog intervals get closed.
  void finish(Time t);

  const std::vector<Transmission>& transmissions() const { return tx_; }
  const std::vector<Interval>& backlog_intervals(FlowId f) const;

  // Aggregate length of flow-f packets served with start>=t1 and end<=t2
  // (the paper's W_f(t1,t2): whole packets only).
  double served_bits(FlowId f, Time t1, Time t2) const;
  double served_bits(FlowId f) const;
  uint64_t served_packets(FlowId f) const;

  // Was f backlogged during the whole of [t1, t2]?
  bool backlogged_throughout(FlowId f, Time t1, Time t2) const;

 private:
  void ensure(FlowId f);

  std::vector<Transmission> tx_;
  std::vector<std::vector<Interval>> backlog_;  // closed intervals per flow
  std::vector<uint32_t> outstanding_;           // queued-or-in-service count
  std::vector<Time> open_since_;                // begin of open interval
};

}  // namespace sfq::stats
