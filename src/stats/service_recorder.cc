#include "stats/service_recorder.h"

#include <algorithm>
#include <stdexcept>

namespace sfq::stats {

void ServiceRecorder::ensure(FlowId f) {
  if (f >= backlog_.size()) {
    backlog_.resize(f + 1);
    outstanding_.resize(f + 1, 0);
    open_since_.resize(f + 1, 0.0);
  }
}

void ServiceRecorder::on_arrival(FlowId f, Time t) {
  ensure(f);
  if (outstanding_[f]++ == 0) open_since_[f] = t;
}

void ServiceRecorder::on_service(FlowId f, double bits, Time arrival,
                                 Time start, Time end) {
  ensure(f);
  tx_.push_back(Transmission{f, bits, start, end, arrival});
  if (outstanding_[f] == 0)
    throw std::logic_error("ServiceRecorder: service without arrival");
  if (--outstanding_[f] == 0)
    backlog_[f].push_back(Interval{open_since_[f], end});
}

void ServiceRecorder::finish(Time t) {
  for (FlowId f = 0; f < backlog_.size(); ++f) {
    if (outstanding_[f] > 0) {
      backlog_[f].push_back(Interval{open_since_[f], t});
      outstanding_[f] = 0;
    }
  }
}

const std::vector<ServiceRecorder::Interval>& ServiceRecorder::backlog_intervals(
    FlowId f) const {
  static const std::vector<Interval> kEmpty;
  return f < backlog_.size() ? backlog_[f] : kEmpty;
}

double ServiceRecorder::served_bits(FlowId f, Time t1, Time t2) const {
  double w = 0.0;
  for (const Transmission& t : tx_)
    if (t.flow == f && t.start >= t1 && t.end <= t2) w += t.bits;
  return w;
}

double ServiceRecorder::served_bits(FlowId f) const {
  double w = 0.0;
  for (const Transmission& t : tx_)
    if (t.flow == f) w += t.bits;
  return w;
}

uint64_t ServiceRecorder::served_packets(FlowId f) const {
  uint64_t n = 0;
  for (const Transmission& t : tx_)
    if (t.flow == f) ++n;
  return n;
}

bool ServiceRecorder::backlogged_throughout(FlowId f, Time t1, Time t2) const {
  for (const Interval& iv : backlog_intervals(f))
    if (iv.begin <= t1 && iv.end >= t2) return true;
  return false;
}

}  // namespace sfq::stats
