#pragma once

#include <cstdint>
#include <vector>

#include "core/types.h"

namespace sfq::stats {

// Link-level operating statistics: busy-time integral (utilization), queue
// length observations, and busy-period structure. Fed by ScheduledServer
// when attached via set_link_stats.
class LinkStats {
 public:
  // Transmission lifecycle.
  void on_transmit_start(Time t);
  void on_transmit_end(Time t);
  // Queue length right after an enqueue or dequeue event.
  void on_queue_sample(Time t, std::size_t packets);
  void finish(Time t);

  // Fraction of [0, horizon] the link spent transmitting.
  double utilization(Time horizon) const;
  Time busy_time() const { return busy_; }
  uint64_t transmissions() const { return transmissions_; }

  // Busy periods: maximal intervals of continuous transmission.
  uint64_t busy_periods() const { return busy_periods_; }
  Time longest_busy_period() const { return longest_busy_; }

  // Time-averaged queue length (piecewise-constant between samples).
  double mean_queue_packets() const;
  std::size_t max_queue_packets() const { return max_queue_; }

 private:
  Time busy_ = 0.0;
  Time tx_started_ = -1.0;
  Time period_started_ = -1.0;
  Time last_end_ = -1.0;
  Time longest_busy_ = 0.0;
  uint64_t transmissions_ = 0;
  uint64_t busy_periods_ = 0;

  Time last_sample_time_ = 0.0;
  std::size_t last_queue_ = 0;
  double queue_time_integral_ = 0.0;
  Time observed_ = 0.0;
  std::size_t max_queue_ = 0;
  bool any_sample_ = false;
};

}  // namespace sfq::stats
