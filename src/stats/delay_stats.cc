#include "stats/delay_stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sfq::stats {

void DelayStats::ensure(FlowId f) {
  if (f >= samples_.size()) samples_.resize(f + 1);
}

void DelayStats::add(FlowId f, Time delay) {
  ensure(f);
  samples_[f].push_back(delay);
}

uint64_t DelayStats::count(FlowId f) const {
  return f < samples_.size() ? samples_[f].size() : 0;
}

double DelayStats::mean(FlowId f) const {
  if (count(f) == 0) return 0.0;
  double s = 0.0;
  for (Time d : samples_[f]) s += d;
  return s / static_cast<double>(samples_[f].size());
}

Time DelayStats::max(FlowId f) const {
  if (count(f) == 0) return 0.0;
  return *std::max_element(samples_[f].begin(), samples_[f].end());
}

Time DelayStats::percentile(FlowId f, double p) const {
  if (count(f) == 0) return 0.0;
  std::vector<Time> v = samples_[f];
  std::sort(v.begin(), v.end());
  const double idx = (p / 100.0) * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(idx));
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double DelayStats::mean_over(const std::vector<FlowId>& fs) const {
  double s = 0.0;
  uint64_t n = 0;
  for (FlowId f : fs) {
    if (f < samples_.size()) {
      for (Time d : samples_[f]) s += d;
      n += samples_[f].size();
    }
  }
  return n == 0 ? 0.0 : s / static_cast<double>(n);
}

Time DelayStats::max_over(const std::vector<FlowId>& fs) const {
  Time m = 0.0;
  for (FlowId f : fs) m = std::max(m, max(f));
  return m;
}

}  // namespace sfq::stats
