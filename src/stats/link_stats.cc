#include "stats/link_stats.h"

#include <algorithm>

namespace sfq::stats {

void LinkStats::on_transmit_start(Time t) {
  tx_started_ = t;
  ++transmissions_;
  // A new busy period begins unless this transmission is back-to-back with
  // the previous one.
  if (period_started_ < 0.0) {
    period_started_ = t;
    ++busy_periods_;
  } else if (last_end_ >= 0.0 && t > last_end_) {
    longest_busy_ = std::max(longest_busy_, last_end_ - period_started_);
    period_started_ = t;
    ++busy_periods_;
  }
}

void LinkStats::on_transmit_end(Time t) {
  if (tx_started_ >= 0.0) busy_ += t - tx_started_;
  tx_started_ = -1.0;
  last_end_ = t;
}

void LinkStats::on_queue_sample(Time t, std::size_t packets) {
  if (any_sample_) {
    queue_time_integral_ +=
        static_cast<double>(last_queue_) * (t - last_sample_time_);
    observed_ += t - last_sample_time_;
  }
  any_sample_ = true;
  last_sample_time_ = t;
  last_queue_ = packets;
  max_queue_ = std::max(max_queue_, packets);
}

void LinkStats::finish(Time t) {
  if (tx_started_ >= 0.0) on_transmit_end(t);
  if (period_started_ >= 0.0 && last_end_ >= 0.0)
    longest_busy_ = std::max(longest_busy_, last_end_ - period_started_);
  if (any_sample_) on_queue_sample(t, last_queue_);
}

double LinkStats::utilization(Time horizon) const {
  return horizon > 0.0 ? busy_ / horizon : 0.0;
}

double LinkStats::mean_queue_packets() const {
  return observed_ > 0.0 ? queue_time_integral_ / observed_ : 0.0;
}

}  // namespace sfq::stats
