#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/types.h"

namespace sfq::stats {

// Per-flow event log bucketed into fixed windows — used to print the
// time-series the paper plots (Figure 1(b) sequence numbers, Figure 3(b)
// throughput).
class TimeSeries {
 public:
  explicit TimeSeries(Time bucket_width) : width_(bucket_width) {}

  void add(FlowId f, Time t, double value);

  // Sum of values per bucket for one flow; buckets run [0,width), [width,...)
  std::vector<double> bucket_sums(FlowId f, Time until) const;

  // Cumulative count of events up to each bucket boundary (sequence-number
  // style curves).
  std::vector<double> cumulative(FlowId f, Time until) const;

  Time bucket_width() const { return width_; }

 private:
  struct Sample {
    Time t;
    double v;
  };
  void ensure(FlowId f);

  Time width_;
  std::vector<std::vector<Sample>> samples_;
};

// Fixed-width table printer for bench binaries: aligned columns, reproducible
// formatting.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);
  void row(const std::vector<std::string>& cells);
  static std::string num(double v, int precision = 3);

 private:
  std::vector<std::size_t> widths_;
  bool header_printed_ = false;
  std::vector<std::string> headers_;
};

}  // namespace sfq::stats
