#pragma once

#include <cstdint>
#include <vector>

#include "core/types.h"

namespace sfq::stats {

// Streaming per-flow delay accumulator. Stores every sample so exact maxima
// and percentiles are available (all experiments in this repo are
// laptop-scale).
class DelayStats {
 public:
  void add(FlowId f, Time delay);

  uint64_t count(FlowId f) const;
  double mean(FlowId f) const;
  Time max(FlowId f) const;
  Time percentile(FlowId f, double p) const;  // p in [0, 100]

  // Aggregate over a set of flows (e.g. "all low-throughput flows" in
  // Figure 2b).
  double mean_over(const std::vector<FlowId>& fs) const;
  Time max_over(const std::vector<FlowId>& fs) const;

 private:
  void ensure(FlowId f);
  std::vector<std::vector<Time>> samples_;
};

}  // namespace sfq::stats
