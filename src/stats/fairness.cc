#include "stats/fairness.h"

#include <algorithm>
#include <vector>

namespace sfq::stats {

namespace {

// Overlap of two interval lists (both sorted by construction).
std::vector<ServiceRecorder::Interval> intersect(
    const std::vector<ServiceRecorder::Interval>& a,
    const std::vector<ServiceRecorder::Interval>& b) {
  std::vector<ServiceRecorder::Interval> out;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const Time lo = std::max(a[i].begin, b[j].begin);
    const Time hi = std::min(a[i].end, b[j].end);
    if (hi > lo) out.push_back({lo, hi});
    if (a[i].end < b[j].end) ++i; else ++j;
  }
  return out;
}

}  // namespace

double empirical_fairness(const ServiceRecorder& rec, FlowId f, double rf,
                          FlowId m, double rm) {
  const auto windows =
      intersect(rec.backlog_intervals(f), rec.backlog_intervals(m));
  const auto& tx = rec.transmissions();

  double h = 0.0;
  std::size_t k = 0;
  for (const auto& w : windows) {
    // Transmissions fully inside the window, in service order.
    while (k < tx.size() && tx[k].start < w.begin) ++k;
    // Kadane over signed normalized service, both signs.
    double best_hi = 0.0, run_hi = 0.0;  // max subarray sum
    double best_lo = 0.0, run_lo = 0.0;  // min subarray sum
    for (std::size_t i = k; i < tx.size() && tx[i].end <= w.end; ++i) {
      double v = 0.0;
      if (tx[i].flow == f) v = tx[i].bits / rf;
      else if (tx[i].flow == m) v = -tx[i].bits / rm;
      run_hi = std::max(run_hi + v, v);
      best_hi = std::max(best_hi, run_hi);
      run_lo = std::min(run_lo + v, v);
      best_lo = std::min(best_lo, run_lo);
    }
    h = std::max({h, best_hi, -best_lo});
  }
  return h;
}

}  // namespace sfq::stats
