// Reproduces the §3 delay-shifting analysis: partitioning flows into
// hierarchically scheduled classes reduces the delay bound of partitions that
// satisfy eq. 73 at the expense of the others — verified both analytically
// (eqs. 69 vs 71) and by simulation on a hierarchical SFQ scheduler.
//
// Expected shape: the favoured partition's analytic bound and measured worst
// delay both drop relative to flat SFQ; the un-favoured partition's rise.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/sfq_scheduler.h"
#include "hier/hsfq_scheduler.h"
#include "net/rate_profile.h"
#include "net/scheduled_server.h"
#include "qos/bounds.h"
#include "qos/eat.h"
#include "sim/simulator.h"
#include "stats/time_series.h"
#include "traffic/sources.h"

namespace {

using namespace sfq;

// 16 flows, uniform packets. Partition A: 3 "interactive" flows given 40% of
// the link; partition B: the other 13 flows share 60%.
constexpr double kC = 1e6;
constexpr double kLen = 1000.0;
constexpr int kTotal = 16;
constexpr int kNumA = 3;
constexpr double kShareA = 0.4;

struct Measured {
  Time worst_a = 0.0;
  Time worst_b = 0.0;
};

Measured run(bool hierarchical, Time duration) {
  sim::Simulator sim;
  std::unique_ptr<Scheduler> sched;
  std::vector<FlowId> ids;
  const double ra = kShareA * kC / kNumA;
  const double rb = (1.0 - kShareA) * kC / (kTotal - kNumA);

  if (hierarchical) {
    auto h = std::make_unique<hier::HsfqScheduler>();
    auto ca = h->add_class(hier::HsfqScheduler::kRootClass, kShareA * kC, "A");
    auto cb =
        h->add_class(hier::HsfqScheduler::kRootClass, (1 - kShareA) * kC, "B");
    for (int i = 0; i < kNumA; ++i)
      ids.push_back(h->add_flow_in_class(ca, ra, kLen));
    for (int i = kNumA; i < kTotal; ++i)
      ids.push_back(h->add_flow_in_class(cb, rb, kLen));
    sched = std::move(h);
  } else {
    auto s = std::make_unique<SfqScheduler>();
    for (int i = 0; i < kNumA; ++i) ids.push_back(s->add_flow(ra, kLen));
    for (int i = kNumA; i < kTotal; ++i) ids.push_back(s->add_flow(rb, kLen));
    sched = std::move(s);
  }

  net::ScheduledServer server(sim, *sched,
                              std::make_unique<net::ConstantRate>(kC));
  Measured out;
  std::vector<std::vector<Time>> eats(kTotal);
  server.set_departure([&](const Packet& p, Time t) {
    const Time over = t - eats[p.flow][p.seq - 1];
    if (p.flow < static_cast<FlowId>(kNumA))
      out.worst_a = std::max(out.worst_a, over);
    else
      out.worst_b = std::max(out.worst_b, over);
  });
  qos::PerFlowEat eat;
  auto emit = [&](Packet p) {
    const double r = p.flow < static_cast<FlowId>(kNumA) ? ra : rb;
    eats[p.flow].push_back(eat.on_arrival(p.flow, sim.now(), p.length_bits, r));
    server.inject(std::move(p));
  };

  std::vector<std::unique_ptr<traffic::Source>> sources;
  for (int i = 0; i < kTotal; ++i) {
    const double r = i < kNumA ? ra : rb;
    sources.push_back(std::make_unique<traffic::OnOffSource>(
        sim, ids[i], emit, 2.0 * r, kLen, 0.05, 0.055, 40 + i));
    sources.back()->run(0.0, duration);
  }
  sim.run_until(duration);
  sim.run();
  return out;
}

}  // namespace

int main() {
  using namespace sfq;
  bench::print_header(
      "§3 delay shifting — hierarchical partitioning vs flat SFQ",
      "SFQ paper §3 (eqs. 69, 71, 73)",
      "partition satisfying eq. 73 gets a lower bound and lower measured "
      "worst delay; the other partition pays");

  const qos::FcParams link{kC, 0.0};
  const double ca = kShareA * kC;
  const double cb = (1.0 - kShareA) * kC;

  const Time flat = qos::delay_shift_flat_term(link, kTotal, kLen);
  const Time hier_a =
      qos::delay_shift_hier_term(link, kNumA, ca, 2, kLen);
  const Time hier_b =
      qos::delay_shift_hier_term(link, kTotal - kNumA, cb, 2, kLen);

  std::printf("\nanalytic bounds past EAT (ms):\n");
  stats::TablePrinter t({"partition", "flat (eq.69)", "hier (eq.71)",
                         "eq.73 predicts win"});
  t.row({"A (3 flows, 40%)", stats::TablePrinter::num(to_milliseconds(flat), 2),
         stats::TablePrinter::num(to_milliseconds(hier_a), 2),
         qos::delay_shift_improves(kNumA, kTotal, 2, ca, kC) ? "yes" : "no"});
  t.row({"B (13 flows, 60%)",
         stats::TablePrinter::num(to_milliseconds(flat), 2),
         stats::TablePrinter::num(to_milliseconds(hier_b), 2),
         qos::delay_shift_improves(kTotal - kNumA, kTotal, 2, cb, kC)
             ? "yes"
             : "no"});

  const Measured flat_m = run(false, 30.0);
  const Measured hier_m = run(true, 30.0);
  std::printf("\nmeasured worst overhang past EAT (ms):\n");
  stats::TablePrinter m({"partition", "flat", "hierarchical"});
  m.row({"A", stats::TablePrinter::num(to_milliseconds(flat_m.worst_a), 2),
         stats::TablePrinter::num(to_milliseconds(hier_m.worst_a), 2)});
  m.row({"B", stats::TablePrinter::num(to_milliseconds(flat_m.worst_b), 2),
         stats::TablePrinter::num(to_milliseconds(hier_m.worst_b), 2)});

  const bool analytic_ok = hier_a < flat && hier_b > flat;
  const bool measured_ok = hier_m.worst_a <= flat_m.worst_a + 1e-9;
  std::printf("\nshape check: analytic shift as eq.73 predicts: %s; measured "
              "A-delay no worse under hierarchy: %s\n",
              analytic_ok ? "yes" : "NO", measured_ok ? "yes" : "NO");
  return (analytic_ok && measured_ok) ? 0 : 1;
}
