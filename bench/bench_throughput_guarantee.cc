// Reproduces Theorems 2 & 3: the throughput guaranteed to a backlogged flow
// by an SFQ server that is Fluctuation Constrained or Exponentially Bounded
// Fluctuation.
//
// Expected shape: measured W_f(0, t) always sits above the Theorem-2 lower
// bound on the FC server; on the EBF server the Theorem-3 bound at slack
// gamma is violated with frequency below B e^{-alpha gamma}.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/sfq_scheduler.h"
#include "net/rate_profile.h"
#include "net/scheduled_server.h"
#include "qos/bounds.h"
#include "qos/ebf_estimator.h"
#include "sim/simulator.h"
#include "stats/service_recorder.h"
#include "stats/time_series.h"
#include "traffic/sources.h"

namespace {

using namespace sfq;

struct Run {
  stats::ServiceRecorder rec;
  std::vector<FlowId> ids;
};

std::unique_ptr<Run> run_backlogged(std::unique_ptr<net::RateProfile> profile,
                                    const std::vector<double>& weights,
                                    double len, Time duration) {
  auto out = std::make_unique<Run>();
  sim::Simulator sim;
  SfqScheduler sched;
  for (double w : weights) out->ids.push_back(sched.add_flow(w, len));
  net::ScheduledServer server(sim, sched, std::move(profile));
  server.set_recorder(&out->rec);
  auto emit = [&](Packet p) { server.inject(std::move(p)); };
  std::vector<std::unique_ptr<traffic::Source>> sources;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    sources.push_back(std::make_unique<traffic::CbrSource>(
        sim, out->ids[i], emit, 2.0 * weights[i], len));
    sources.back()->run(0.0, duration);
  }
  sim.run_until(duration);
  out->rec.finish(sim.now());
  return out;
}

}  // namespace

int main() {
  sfq::bench::print_header(
      "Theorems 2 & 3 — SFQ throughput guarantees on FC and EBF servers",
      "SFQ paper §2.2",
      "measured service never falls below the FC bound; EBF violations decay "
      "exponentially in the slack");

  const double C = 1e6, delta = 1e5, len = 1000.0;
  const std::vector<double> weights = {2e5, 3e5, 5e5};  // sums to C

  // --- FC server -----------------------------------------------------------
  auto fc = run_backlogged(std::make_unique<net::FcOnOffRate>(C, delta, 0.5),
                           weights, len, 20.0);
  sfq::stats::TablePrinter t1(
      {"flow", "t(s)", "measured(kb)", "Thm2-bound(kb)", "ok"});
  bool fc_ok = true;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    for (double t : {1.0, 5.0, 10.0, 19.0}) {
      const double w = fc->rec.served_bits(fc->ids[i], 0.0, t);
      const double b = qos::sfq_fc_throughput_lower_bound(
          {C, delta}, weights[i], 3 * len, len, 0.0, t);
      const bool ok = w >= b - 1e-6;
      fc_ok = fc_ok && ok;
      t1.row({std::to_string(i), sfq::stats::TablePrinter::num(t, 0),
              sfq::stats::TablePrinter::num(w / 1e3, 1),
              sfq::stats::TablePrinter::num(b / 1e3, 1), ok ? "yes" : "NO"});
    }
  }

  // --- EBF server ------------------------------------------------------------
  // Calibrate Definition-2 parameters (B, alpha, delta) from the link itself
  // (qos::estimate_ebf), then compare the measured Theorem-3 violation
  // frequency at several slacks against the calibrated B e^{-alpha gamma}.
  std::printf("\nEBF server: Theorem 3 with estimator-calibrated parameters\n");
  net::EbfRandomRate::Params ep;
  ep.average = C;
  ep.on_rate = 2.2e6;
  ep.mean_pause = 0.004;
  ep.mean_run = 0.006;
  ep.seed = 77;
  net::EbfRandomRate calibration_link(ep);
  const auto fit = qos::estimate_ebf(calibration_link, C);
  std::printf("  calibrated: B=%.3f alpha=%.3g 1/bit delta=%.1f kb (from %zu "
              "samples)\n",
              fit.params.b, fit.params.alpha, fit.params.delta / 1e3,
              fit.samples);

  auto ebf = run_backlogged(std::make_unique<net::EbfRandomRate>(ep), weights,
                            len, 60.0);
  sfq::stats::TablePrinter t2(
      {"gamma(kb)", "violation freq", "Thm3 bound (B e^-ag)"});
  const std::vector<double> gammas = {0.0, 20e3, 60e3};
  std::vector<int> violations(gammas.size(), 0);
  int samples = 0;
  bool ebf_ok = true;
  for (double t1s = 0.0; t1s < 55.0; t1s += 0.5) {
    for (double dt : {1.0, 2.0, 4.0}) {
      ++samples;
      const double w = ebf->rec.served_bits(ebf->ids[2], t1s, t1s + dt);
      for (std::size_t g = 0; g < gammas.size(); ++g) {
        const double b = qos::sfq_ebf_throughput_lower_bound(
            fit.params, weights[2], 3 * len, len, t1s, t1s + dt, gammas[g]);
        if (w < b) ++violations[g];
      }
    }
  }
  double prev_freq = 1.0;
  for (std::size_t g = 0; g < gammas.size(); ++g) {
    const double freq = static_cast<double>(violations[g]) / samples;
    const double bound = std::min(
        1.0, qos::sfq_ebf_throughput_violation_prob(fit.params, gammas[g]));
    t2.row({sfq::stats::TablePrinter::num(gammas[g] / 1e3, 0),
            sfq::stats::TablePrinter::num(freq, 4),
            sfq::stats::TablePrinter::num(bound, 4)});
    if (freq > prev_freq + 1e-12) ebf_ok = false;  // monotone in slack
    // The Theorem-3 bound must dominate (the W-definition counts only whole
    // packets, worth one packet of slack at the window edges).
    if (freq > bound + static_cast<double>(len) / 20e3) ebf_ok = false;
    prev_freq = freq;
  }

  std::printf("\nshape check: FC bound never violated: %s; EBF violations "
              "within the calibrated Theorem-3 bound and non-increasing: %s\n",
              fc_ok ? "yes" : "NO", ebf_ok ? "yes" : "NO");
  return (fc_ok && ebf_ok) ? 0 : 1;
}
