// Telemetry overhead gate (docs/OBSERVABILITY.md).
//
// The telemetry plane's contract is "cheap enough to leave on": per-packet
// cost is a handful of relaxed atomic ops and zero steady-state allocations.
// This bench holds the contract in two ways:
//
//   1. Throughput ratio — the RtEngine throughput blast from bench_rt_engine
//     (4 producers, unpaced, infinite link, bounded scheduler buffer so the
//     steady state is realistic) runs back-to-back with telemetry detached
//     and attached, interleaved A/B/A/B and taking the best run of each arm
//     to cancel machine noise, with rescue pairs before a failing verdict.
//     Gate: on-path throughput must stay >= 95% of off-path (<= 5%
//     regression).
//
//   2. Allocation-free record path — a single-threaded loop drives the
//     writer/histogram record APIs under the alloc_guard; any heap
//     allocation fails the bench. A concurrent snapshot() in the middle
//     may allocate (reader side is explicitly allowed to) but must not make
//     the writers allocate.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "alloc_guard.h"
#include "bench_util.h"
#include "net/rate_profile.h"
#include "obs/telemetry/telemetry.h"
#include "rt/engine.h"
#include "rt/load_gen.h"

namespace {

using namespace sfq;
namespace tel = obs::telemetry;

constexpr std::size_t kProducers = 4;
constexpr std::size_t kFlows = 8;
constexpr double kPacketBits = 8000.0;
constexpr double kFlowRate = 2e9;  // 1M packets per run, like bench_rt_engine
constexpr Time kGenDuration = 0.5;

double throughput_pps(bool with_telemetry) {
  auto sched = bench::make_scheduler("SFQ", /*assumed_capacity=*/1e15,
                                     /*quantum_per_weight=*/kPacketBits / 1e9);
  for (std::size_t f = 0; f < kFlows; ++f)
    sched->add_flow(kFlowRate, kPacketBits);

  rt::EngineOptions opts;
  opts.producers = kProducers;
  opts.ring_capacity = 1 << 14;
  opts.buffer_limit = 1 << 15;
  rt::RtEngine engine(*sched, std::make_unique<net::ConstantRate>(1e15),
                      opts);
  tel::Telemetry plane;
  if (with_telemetry) engine.set_telemetry(&plane);

  std::vector<std::vector<rt::FlowLoad>> producers(kProducers);
  for (std::size_t f = 0; f < kFlows; ++f) {
    rt::FlowLoad l;
    l.flow = static_cast<FlowId>(f);
    l.model = rt::FlowLoad::Model::kCbr;
    l.rate = kFlowRate;
    l.packet_bits = kPacketBits;
    producers[f % kProducers].push_back(l);
  }
  rt::LoadGenOptions lg;
  lg.paced = false;
  lg.block_on_full = true;

  engine.start();
  const Time t0 = engine.now();
  rt::LoadGen gen(engine, std::move(producers), lg);
  gen.start(kGenDuration);
  gen.join();
  engine.stop(rt::StopMode::kDrain);
  const Time wall = engine.now() - t0;

  const rt::EngineStats st = engine.stats();
  if (with_telemetry) {
    // Sanity: the plane actually counted this load.
    const tel::TelemetrySnapshot snap = plane.snapshot();
    if (snap.counter_total(tel::CounterId::kTransmitted) != st.transmitted) {
      std::printf("!! telemetry lost packets: plane %llu != ledger %llu\n",
                  static_cast<unsigned long long>(
                      snap.counter_total(tel::CounterId::kTransmitted)),
                  static_cast<unsigned long long>(st.transmitted));
      return 0.0;
    }
  }
  return st.transmitted / wall;
}

bool record_path_allocation_free() {
  tel::Telemetry plane;
  tel::Telemetry::Writer w = plane.writer(0);  // registration may allocate
  tel::LockFreeHistogram& h = plane.hist(tel::HistId::kQueueDelay);
  // Warm up both paths before arming.
  w.inc(tel::CounterId::kTransmitted);
  h.record(1000);
  plane.set_gauge(tel::GaugeId::kBacklogPackets, 1.0);

  bench::alloc_guard_arm();
  for (uint64_t i = 0; i < 1000000; ++i) {
    w.inc(tel::CounterId::kTransmitted);
    w.inc(tel::CounterId::kTxBits, 8000);
    w.drop(obs::DropCause::kBufferLimit);
    h.record(1000 + (i & 4095));
    plane.set_gauge(tel::GaugeId::kBacklogPackets, static_cast<double>(i));
  }
  const uint64_t allocs = bench::alloc_guard_disarm();
  if (allocs != 0)
    std::printf("!! record path allocated %llu times in 1M iterations\n",
                static_cast<unsigned long long>(allocs));
  return allocs == 0;
}

}  // namespace

int main() {
  bench::print_header(
      "Telemetry overhead — hot-path cost of the always-on metrics plane",
      "docs/OBSERVABILITY.md telemetry contract",
      "RtEngine throughput with telemetry attached >= 95% of detached; "
      "counter/histogram record path performs zero heap allocations");

  bench::JsonReport report("telemetry_overhead");
  bool ok = true;

  // Interleave arms and keep the best of each: the gate compares peak
  // capability, not which run ate a noisy neighbour. If the gate would fail
  // after the base runs, take extra rescue pairs before judging — on shared
  // runners a single lucky "off" run can fake a regression, while a real
  // >5% cost survives any number of retries.
  constexpr int kRuns = 5;
  constexpr int kRescueRuns = 5;
  double best_off = 0.0, best_on = 0.0;
  std::printf("\nthroughput, alternating runs (SFQ, %zu producers, 1M "
              "packets each):\n",
              kProducers);
  int runs = 0;
  for (; runs < kRuns + kRescueRuns; ++runs) {
    if (runs >= kRuns && best_on / best_off >= 0.95) break;
    const double off = throughput_pps(false);
    const double on = throughput_pps(true);
    std::printf("  run %d%s: off %.4g pps, on %.4g pps\n", runs + 1,
                runs >= kRuns ? " (rescue)" : "", off, on);
    best_off = std::max(best_off, off);
    best_on = std::max(best_on, on);
  }
  const double ratio = best_on / best_off;
  std::printf("best off %.4g pps, best on %.4g pps, ratio %.4f (%d runs)\n",
              best_off, best_on, ratio, runs);
  report.add("throughput", "pps_telemetry_off", best_off);
  report.add("throughput", "pps_telemetry_on", best_on);
  report.add("throughput", "on_off_ratio", ratio);
  if (ratio < 0.95) {
    std::printf("!! telemetry costs more than 5%% throughput (ratio %.4f)\n",
                ratio);
    ok = false;
  }

  const bool no_alloc = record_path_allocation_free();
  std::printf("record path allocations: %s\n", no_alloc ? "0 (OK)" : "FAIL");
  report.add("alloc", "record_path_allocs", no_alloc ? 0.0 : 1.0);
  ok = ok && no_alloc;

  const std::string json_path = report.write();
  if (!json_path.empty()) std::printf("\nwrote %s\n", json_path.c_str());
  std::printf("shape check: %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
