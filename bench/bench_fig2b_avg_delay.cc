// Reproduces Figure 2(b): average packet delay of low-throughput flows under
// WFQ vs SFQ at increasing link utilization.
//
// Setup (paper §2.3): 1 Mb/s link, 200-byte packets, 7 Poisson flows at
// 100 Kb/s plus N Poisson flows at 32 Kb/s, N = 2..10; 1000 simulated
// seconds.
//
// Expected shape: the low-throughput flows' average delay is significantly
// higher under WFQ than SFQ, and the gap widens with utilization (the paper
// quotes +53% for WFQ at 80.81% utilization).
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "net/rate_profile.h"
#include "net/scheduled_server.h"
#include "sim/simulator.h"
#include "stats/delay_stats.h"
#include "stats/time_series.h"
#include "traffic/sources.h"

namespace {

using namespace sfq;

double run_avg_low_delay(const std::string& sched_name, int n_low,
                         Time duration) {
  const double kLink = megabits_per_sec(1);
  const double kLen = bytes(200);
  const double kHighRate = kilobits_per_sec(100);
  const double kLowRate = kilobits_per_sec(32);
  const int kHigh = 7;

  sim::Simulator sim;
  auto sched = bench::make_scheduler(sched_name, kLink);
  std::vector<FlowId> high, low;
  for (int i = 0; i < kHigh; ++i)
    high.push_back(sched->add_flow(kHighRate, kLen));
  for (int i = 0; i < n_low; ++i)
    low.push_back(sched->add_flow(kLowRate, kLen));

  net::ScheduledServer server(sim, *sched,
                              std::make_unique<net::ConstantRate>(kLink));
  stats::DelayStats delays;
  server.set_departure([&](const Packet& p, Time t) {
    delays.add(p.flow, t - p.arrival);
  });
  auto emit = [&](Packet p) { server.inject(std::move(p)); };

  std::vector<std::unique_ptr<traffic::Source>> sources;
  uint64_t seed = 1000;
  for (FlowId f : high) {
    sources.push_back(std::make_unique<traffic::PoissonSource>(
        sim, f, emit, kHighRate, kLen, ++seed));
    sources.back()->run(0.0, duration);
  }
  for (FlowId f : low) {
    sources.push_back(std::make_unique<traffic::PoissonSource>(
        sim, f, emit, kLowRate, kLen, ++seed));
    sources.back()->run(0.0, duration);
  }
  sim.run_until(duration);
  sim.run();
  return delays.mean_over(low);
}

}  // namespace

int main() {
  sfq::bench::print_header(
      "Figure 2(b) — average delay of low-throughput flows, WFQ vs SFQ",
      "SFQ paper §2.3, Figure 2(b)",
      "WFQ's average delay exceeds SFQ's, increasingly so with utilization "
      "(paper: +53% at 80.81% utilization)");

  // N runs 2..8: N=10 would put the offered load at 102% of the link, where
  // the queue is unstable and averages are meaningless (the paper's quoted
  // operating point is ~80.81% utilization, which is N~4 here).
  const Time kDuration = 1000.0;
  sfq::stats::TablePrinter table({"N-low", "util(%)", "WFQ(ms)", "SFQ(ms)",
                                  "WFQ/SFQ"});
  bool shape_ok = true;
  double ratio_at_80 = 0.0;
  for (int n = 2; n <= 8; ++n) {
    const double util = (7 * 100e3 + n * 32e3) / 1e6 * 100.0;
    const double wfq = run_avg_low_delay("WFQ", n, kDuration);
    const double sfq_d = run_avg_low_delay("SFQ", n, kDuration);
    const double ratio = wfq / sfq_d;
    table.row({std::to_string(n), sfq::stats::TablePrinter::num(util, 2),
               sfq::stats::TablePrinter::num(to_milliseconds(wfq), 3),
               sfq::stats::TablePrinter::num(to_milliseconds(sfq_d), 3),
               sfq::stats::TablePrinter::num(ratio, 3)});
    if (n == 4) ratio_at_80 = ratio;
    if (ratio < 1.0) shape_ok = false;
  }
  std::printf("\nshape check: WFQ delay >= SFQ delay at every load: %s; "
              "gap near the paper's 80.81%% point (N=4): +%.0f%% "
              "(paper: +53%%)\n",
              shape_ok ? "yes" : "NO", (ratio_at_80 - 1.0) * 100.0);
  return shape_ok ? 0 : 1;
}
