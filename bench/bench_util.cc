#include "bench_util.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <stdexcept>

#include "obs/trace.h"

#include "core/sfq_scheduler.h"
#include "hier/hsfq_scheduler.h"
#include "sched/drr_scheduler.h"
#include "sched/fair_airport.h"
#include "sched/fifo_scheduler.h"
#include "sched/scfq_scheduler.h"
#include "sched/virtual_clock.h"
#include "sched/wfq_scheduler.h"

namespace sfq::bench {

std::unique_ptr<Scheduler> make_scheduler(const std::string& name,
                                          double assumed_capacity,
                                          double quantum_per_weight) {
  if (name == "SFQ") return std::make_unique<SfqScheduler>();
  if (name == "SFQ-W") {
    // Timestamp-wheel core; one max-packet service time at the assumed
    // capacity as the quantization window (the config layer's default).
    SfqOptions opts;
    opts.core = SfqCore::kWheel;
    opts.wheel_quantum = 8000.0 / assumed_capacity;
    return std::make_unique<SfqScheduler>(opts);
  }
  if (name == "SCFQ") return std::make_unique<ScfqScheduler>();
  if (name == "WFQ") return std::make_unique<WfqScheduler>(assumed_capacity);
  if (name == "FQS") return std::make_unique<FqsScheduler>(assumed_capacity);
  if (name == "DRR") return std::make_unique<DrrScheduler>(quantum_per_weight);
  if (name == "VC") return std::make_unique<VirtualClockScheduler>();
  if (name == "FIFO") return std::make_unique<FifoScheduler>();
  if (name == "FairAirport") return std::make_unique<FairAirportScheduler>();
  if (name == "H-SFQ") return std::make_unique<hier::HsfqScheduler>();
  throw std::invalid_argument("unknown scheduler: " + name);
}

JsonReport::JsonReport(std::string name) : name_(std::move(name)) {}

JsonReport::~JsonReport() {
  if (!written_) write();
}

void JsonReport::add(const std::string& scenario, const std::string& metric,
                     double value) {
  records_.push_back(Record{scenario, metric, value});
  written_ = false;
}

std::string JsonReport::write() {
  std::string path = "BENCH_" + name_ + ".json";
  if (const char* dir = std::getenv("BENCH_DIR"); dir != nullptr && *dir)
    path = std::string(dir) + "/" + path;
  std::ofstream out(path);
  if (!out) return "";
  out.precision(17);
  out << "[\n";
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const Record& r = records_[i];
    out << "  {\"bench\":\"" << obs::json_escape(name_) << "\",\"scenario\":\""
        << obs::json_escape(r.scenario) << "\",\"metric\":\""
        << obs::json_escape(r.metric) << "\",\"value\":" << r.value << "}"
        << (i + 1 < records_.size() ? "," : "") << "\n";
  }
  out << "]\n";
  written_ = true;
  return path;
}

void print_header(const std::string& experiment, const std::string& paper_ref,
                  const std::string& expectation) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("Paper reference : %s\n", paper_ref.c_str());
  std::printf("Expected shape  : %s\n", expectation.c_str());
  std::printf("==============================================================\n");
}

}  // namespace sfq::bench
