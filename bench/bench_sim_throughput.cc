// Engineering benchmark (not a paper figure): end-to-end simulator event
// throughput — how many simulated packet transmissions per wall-clock second
// the whole stack (sources -> scheduler -> server -> sink) sustains. Useful
// for keeping the substrate fast enough that 1000-second Figure-2(b)-style
// runs stay interactive.
//
// Two parts:
//   * BM_Stack_* google-benchmarks: whole-run throughput including stack
//     construction, swept over flow counts and disciplines.
//   * A steady-state phase with the allocation guard (alloc_guard.h) armed:
//     after a warm-up that brings every slab/pool/heap to its high-water
//     mark, the measured window must perform ZERO heap allocations — the
//     per-packet hot path (typed event queue, packet pool, indexed heaps)
//     is allocation-free by design (docs/PERFORMANCE.md).
//
// The steady-state phase writes BENCH_sim_throughput.json and, with
// SFQ_PERF_GATE=1, enforces the perf-regression gate:
//   * steady-state heap allocations == 0,
//   * steady-state pkts/s >= SFQ_PERF_FLOOR_PPS (default 1e6),
//   * if SFQ_PERF_BASELINE_PPS is set (the committed pre-optimisation
//     SFQ/4 baseline, bench/baselines/), SFQ/4 pkts/s >= 1.5x it.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "alloc_guard.h"
#include "bench_util.h"
#include "net/rate_profile.h"
#include "net/scheduled_server.h"
#include "sim/simulator.h"
#include "traffic/sources.h"

namespace {

using namespace sfq;

void run_stack(benchmark::State& state, const std::string& sched_name) {
  const int flows = static_cast<int>(state.range(0));
  uint64_t packets = 0;
  for (auto _ : state) {
    sim::Simulator sim;
    auto sched = bench::make_scheduler(sched_name, 1e6, 1500.0);
    net::ScheduledServer server(sim, *sched,
                                std::make_unique<net::ConstantRate>(1e6));
    uint64_t delivered = 0;
    server.set_departure([&](const Packet&, Time) { ++delivered; });
    std::vector<std::unique_ptr<traffic::Source>> src;
    auto emit = [&](Packet p) { server.inject(std::move(p)); };
    for (int i = 0; i < flows; ++i) {
      FlowId id = sched->add_flow(1e6 / flows, 1000.0);
      src.push_back(std::make_unique<traffic::PoissonSource>(
          sim, id, emit, 0.9 * 1e6 / flows, 1000.0, 7 + i));
      src.back()->run(0.0, 10.0);
    }
    sim.run_until(10.0);
    sim.run();
    packets += delivered;
    benchmark::DoNotOptimize(delivered);
  }
  state.SetItemsProcessed(static_cast<int64_t>(packets));
  state.counters["pkts/run"] =
      static_cast<double>(packets) / state.iterations();
}

void BM_Stack_SFQ(benchmark::State& s) { run_stack(s, "SFQ"); }
void BM_Stack_WFQ(benchmark::State& s) { run_stack(s, "WFQ"); }
void BM_Stack_FIFO(benchmark::State& s) { run_stack(s, "FIFO"); }

BENCHMARK(BM_Stack_SFQ)->Arg(4)->Arg(64);
BENCHMARK(BM_Stack_WFQ)->Arg(4)->Arg(64);
BENCHMARK(BM_Stack_FIFO)->Arg(4)->Arg(64);

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return (v != nullptr && *v) ? std::atof(v) : fallback;
}

// Steady-state measurement: one stack, Poisson sources at 0.9 utilisation,
// warm-up until every pool/slab/heap reached its high-water mark, then a
// measured window under the allocation guard.
struct SteadyResult {
  double pkts_per_sec = 0.0;
  uint64_t packets = 0;
  uint64_t allocs = 0;
};

SteadyResult run_steady(const std::string& sched_name, int flows,
                        Time warm_until, Time window, int windows) {
  const Time measure_until = warm_until + window * windows;
  sim::Simulator sim;
  auto sched = bench::make_scheduler(sched_name, 1e6, 1500.0);
  net::ScheduledServer server(sim, *sched,
                              std::make_unique<net::ConstantRate>(1e6));
  uint64_t delivered = 0;
  server.set_departure([&](const Packet&, Time) { ++delivered; });
  std::vector<std::unique_ptr<traffic::Source>> src;
  auto emit = [&](Packet p) { server.inject(std::move(p)); };
  // Sources start once the pre-growth burst (below) has drained.
  const Time sources_start = 3.0;
  for (int i = 0; i < flows; ++i) {
    FlowId id = sched->add_flow(1e6 / flows, 1000.0);
    src.push_back(std::make_unique<traffic::PoissonSource>(
        sim, id, emit, 0.9 * 1e6 / flows, 1000.0, 7 + i));
    src.back()->run(sources_start, measure_until);
  }

  // Pre-grow every slab (packet pool, tag heaps, event slots) to a backlog
  // high-water mark far above anything the measured window reaches. Slab
  // growth is amortised-zero by design; the burst moves all of it into
  // warm-up so the guard measures the true steady state.
  constexpr int kBurst = 2048;
  for (int b = 0; b < kBurst; ++b) {
    Packet p;
    p.flow = static_cast<FlowId>(b % flows);
    p.seq = static_cast<uint64_t>(b);
    p.length_bits = 1000.0;
    server.inject(std::move(p));
  }

  sim.run_until(warm_until);  // warm-up: growth allocations happen here

  // Allocations are counted over ALL windows (the zero-alloc property must
  // hold for the whole span); throughput is the best window, which rejects
  // scheduler noise on shared machines the way --benchmark_repetitions'
  // min-of-reps does.
  SteadyResult r;
  bench::alloc_guard_arm();
  for (int w = 1; w <= windows; ++w) {
    const uint64_t before = delivered;
    const auto t0 = std::chrono::steady_clock::now();
    sim.run_until(warm_until + window * w);
    const auto t1 = std::chrono::steady_clock::now();
    const uint64_t pkts = delivered - before;
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    const double pps = secs > 0.0 ? static_cast<double>(pkts) / secs : 0.0;
    r.packets += pkts;
    if (pps > r.pkts_per_sec) r.pkts_per_sec = pps;
  }
  r.allocs = bench::alloc_guard_disarm();
  sim.run();  // drain, outside the measured window
  return r;
}

int steady_state_phase() {
  std::printf("\n--- steady-state phase (allocation guard armed) ---\n");
  bench::JsonReport report("sim_throughput");
  bool ok = true;

  const bool gate = env_double("SFQ_PERF_GATE", 0.0) != 0.0;
  const double floor_pps = env_double("SFQ_PERF_FLOOR_PPS", 1e6);
  const double baseline_pps = env_double("SFQ_PERF_BASELINE_PPS", 0.0);

  struct Case {
    const char* sched;
    int flows;
    bool alloc_gated;  // zero steady-state heap allocations enforced
    bool floor_gated;  // throughput floor enforced (the SFQ hot path)
    bool headline;  // compared against SFQ_PERF_BASELINE_PPS (an SFQ/4 value)
  };
  // SFQ is the paper's subject and the gated hot path. WFQ's GPS emulation
  // became allocation-free when its event list moved to a ring buffer, so it
  // is alloc-gated too; its throughput stays a reference point (GPS
  // simulation cost is measured, not floored). The baseline ratio applies to
  // SFQ/4 only — that is the scenario the committed baseline snapshot
  // records.
  const Case cases[] = {{"SFQ", 4, true, true, true},
                        {"SFQ", 64, true, true, false},
                        {"WFQ", 64, true, false, false}};

  for (const Case& c : cases) {
    const SteadyResult r = run_steady(c.sched, c.flows, /*warm_until=*/5.0,
                                      /*window=*/50.0, /*windows=*/8);
    const double allocs_per_pkt =
        r.packets ? static_cast<double>(r.allocs) / r.packets : 0.0;
    const std::string scen =
        std::string(c.sched) + "/" + std::to_string(c.flows);
    std::printf("%-8s pkts/s=%.3g  packets=%llu  allocs=%llu (%.4f/pkt)\n",
                scen.c_str(), r.pkts_per_sec,
                static_cast<unsigned long long>(r.packets),
                static_cast<unsigned long long>(r.allocs), allocs_per_pkt);
    report.add(scen, "steady_pkts_per_sec", r.pkts_per_sec);
    report.add(scen, "steady_allocs_per_pkt", allocs_per_pkt);
    report.add(scen, "steady_heap_allocs", static_cast<double>(r.allocs));

    if (gate) {
      if (c.alloc_gated && r.allocs != 0) {
        std::printf("FAIL %s: %llu heap allocations in the steady-state "
                    "measured loop (expected 0)\n",
                    scen.c_str(), static_cast<unsigned long long>(r.allocs));
        ok = false;
      }
      if (c.floor_gated && r.pkts_per_sec < floor_pps) {
        std::printf("FAIL %s: %.3g pkts/s below floor %.3g\n", scen.c_str(),
                    r.pkts_per_sec, floor_pps);
        ok = false;
      }
      if (c.headline && baseline_pps > 0.0 &&
          r.pkts_per_sec < 1.5 * baseline_pps) {
        std::printf("FAIL %s: %.3g pkts/s < 1.5x baseline %.3g\n",
                    scen.c_str(), r.pkts_per_sec, baseline_pps);
        ok = false;
      }
    }
  }

  const std::string path = report.write();
  std::printf("report: %s\n", path.empty() ? "(write failed)" : path.c_str());
  if (gate)
    std::printf("perf gate: %s (floor %.3g pkts/s%s)\n", ok ? "OK" : "FAILED",
                floor_pps, baseline_pps > 0.0 ? ", baseline ratio 1.5x" : "");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return steady_state_phase();
}
