// Engineering benchmark (not a paper figure): end-to-end simulator event
// throughput — how many simulated packet transmissions per wall-clock second
// the whole stack (sources -> scheduler -> server -> sink) sustains. Useful
// for keeping the substrate fast enough that 1000-second Figure-2(b)-style
// runs stay interactive.
#include <benchmark/benchmark.h>

#include <memory>

#include "bench_util.h"
#include "net/rate_profile.h"
#include "net/scheduled_server.h"
#include "sim/simulator.h"
#include "traffic/sources.h"

namespace {

using namespace sfq;

void run_stack(benchmark::State& state, const std::string& sched_name) {
  const int flows = static_cast<int>(state.range(0));
  uint64_t packets = 0;
  for (auto _ : state) {
    sim::Simulator sim;
    auto sched = bench::make_scheduler(sched_name, 1e6, 1500.0);
    net::ScheduledServer server(sim, *sched,
                                std::make_unique<net::ConstantRate>(1e6));
    uint64_t delivered = 0;
    server.set_departure([&](const Packet&, Time) { ++delivered; });
    std::vector<std::unique_ptr<traffic::Source>> src;
    auto emit = [&](Packet p) { server.inject(std::move(p)); };
    for (int i = 0; i < flows; ++i) {
      FlowId id = sched->add_flow(1e6 / flows, 1000.0);
      src.push_back(std::make_unique<traffic::PoissonSource>(
          sim, id, emit, 0.9 * 1e6 / flows, 1000.0, 7 + i));
      src.back()->run(0.0, 10.0);
    }
    sim.run_until(10.0);
    sim.run();
    packets += delivered;
    benchmark::DoNotOptimize(delivered);
  }
  state.SetItemsProcessed(static_cast<int64_t>(packets));
  state.counters["pkts/run"] =
      static_cast<double>(packets) / state.iterations();
}

void BM_Stack_SFQ(benchmark::State& s) { run_stack(s, "SFQ"); }
void BM_Stack_WFQ(benchmark::State& s) { run_stack(s, "WFQ"); }
void BM_Stack_FIFO(benchmark::State& s) { run_stack(s, "FIFO"); }

}  // namespace

BENCHMARK(BM_Stack_SFQ)->Arg(4)->Arg(64);
BENCHMARK(BM_Stack_WFQ)->Arg(4)->Arg(64);
BENCHMARK(BM_Stack_FIFO)->Arg(4)->Arg(64);

BENCHMARK_MAIN();
