// Wall-clock real-time engine benchmark (docs/REALTIME.md).
//
// Part 1 — throughput: 4 producer threads blast pre-generated CBR traffic
// through lock-free SPSC rings into the RtEngine dispatcher, which runs each
// discipline against std::chrono::steady_clock on an effectively infinite
// link. Every packet is accounted (block-on-full backpressure, no drops), so
// packets/sec is transmitted / wall. The gate: SFQ must sustain >= 1M
// packets/sec — the paper's O(log Q) claim restated as an engineering fact.
//
// Part 2 — fairness on the wall clock: two paced CBR flows (weights 3:1)
// overload a constant-rate link; per-flow service is sampled at coarse
// wall-clock instants and the worst normalized gap |dW_f/r_f - dW_m/r_m|
// over all steady-state windows must stay within the Theorem-1 bound
// l_f/r_f + l_m/r_m (+ one pacing quantum per flow of slack for in-flight
// attribution at window edges). Theorem 1 is proved for *any* server rate
// behaviour, so it must survive real time, scheduling jitter and all.
//
// Part 3 — admission-control overhead: interleaved A/B of the Part-1
// workload with the overload machine armed-but-untriggered vs off; the
// on/off throughput ratio must stay >= 0.95 under SFQ_PERF_GATE=1
// (docs/ROBUSTNESS.md).
//
// Part 4 — sharded scaling: the Part-1 workload re-run through the
// ShardedEngine at 1 shard vs 4 shards (docs/REALTIME.md, "Sharding"). The
// aggregate-throughput ratio must reach >= 2.5x under SFQ_PERF_GATE=1 when
// the machine has cores to back it (>= 2 per shard); elsewhere the ratio is
// reported for the BENCH trajectory. A direct-offer pass under the
// allocation guard then asserts the sharded steady state — route, remap,
// ring, dispatch, transmit — allocates nothing.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "alloc_guard.h"
#include "bench_util.h"
#include "net/rate_profile.h"
#include "rt/engine.h"
#include "rt/load_gen.h"
#include "rt/shard/sharded_engine.h"
#include "stats/fairness.h"
#include "stats/time_series.h"

namespace {

using namespace sfq;

constexpr std::size_t kProducers = 4;
constexpr std::size_t kFlows = 8;
constexpr double kPacketBits = 8000.0;
// 2 Gb/s per flow for 0.5 s of model time => 1M packets total, blasted
// unpaced as fast as the rings accept.
constexpr double kFlowRate = 2e9;
constexpr Time kGenDuration = 0.5;

struct ThroughputResult {
  double pps = 0.0;
  uint64_t produced = 0;
  uint64_t transmitted = 0;
  uint64_t dropped = 0;
};

ThroughputResult throughput(const std::string& name, bool admission = false,
                            std::size_t buffer_limit = 0) {
  auto sched = bench::make_scheduler(name, /*assumed_capacity=*/1e15,
                                     /*quantum_per_weight=*/kPacketBits / 1e9);
  for (std::size_t f = 0; f < kFlows; ++f)
    sched->add_flow(kFlowRate, kPacketBits);

  rt::EngineOptions opts;
  opts.producers = kProducers;
  opts.ring_capacity = 1 << 14;
  // Part 1 runs with buffer_limit 0: backpressure lives in the rings
  // (block-on-full). The admission A/B (Part 3) passes a huge finite cap so
  // the overload machine can arm without ever triggering.
  opts.buffer_limit = buffer_limit;
  opts.admission_control = admission;
  rt::RtEngine engine(*sched, std::make_unique<net::ConstantRate>(1e15),
                      opts);

  std::vector<std::vector<rt::FlowLoad>> producers(kProducers);
  for (std::size_t f = 0; f < kFlows; ++f) {
    rt::FlowLoad l;
    l.flow = static_cast<FlowId>(f);
    l.model = rt::FlowLoad::Model::kCbr;
    l.rate = kFlowRate;
    l.packet_bits = kPacketBits;
    producers[f % kProducers].push_back(l);
  }
  rt::LoadGenOptions lg;
  lg.paced = false;
  lg.block_on_full = true;

  engine.start();
  const Time t0 = engine.now();
  rt::LoadGen gen(engine, std::move(producers), lg);
  gen.start(kGenDuration);
  gen.join();
  engine.stop(rt::StopMode::kDrain);
  const Time wall = engine.now() - t0;

  const rt::EngineStats st = engine.stats();
  ThroughputResult r;
  r.pps = st.transmitted / wall;
  r.produced = gen.produced_total();
  r.transmitted = st.transmitted;
  r.dropped = st.dropped() + st.ingress_drops + st.abandoned;
  return r;
}

// Part 3 — admission-control overhead: the overload machine armed behind a
// buffer cap so large (1M packets vs a near-instant link) that occupancy
// never approaches shed_enter. The enabled-but-untriggered hot path adds one
// occupancy check per dispatcher batch and nothing per packet, so it must
// stay within 5% of the identical run with admission off. A/B pairs run
// interleaved (base, shed, base, shed, ...) and each arm keeps its best run,
// which cancels machine-wide drift the way back-to-back medians cannot.
struct AdmissionAbResult {
  double base_pps = 0.0;  // admission off, best of pairs
  double shed_pps = 0.0;  // admission armed but never triggered, best of pairs
  double ratio = 0.0;     // shed / base
  uint64_t shed_drops = 0;  // must be 0: the machine never triggered
};

AdmissionAbResult admission_ab(int pairs) {
  constexpr std::size_t kIdleCap = 1 << 20;
  AdmissionAbResult r;
  for (int p = 0; p < pairs; ++p) {
    const ThroughputResult base =
        throughput("SFQ", /*admission=*/false, kIdleCap);
    const ThroughputResult shed =
        throughput("SFQ", /*admission=*/true, kIdleCap);
    if (base.pps > r.base_pps) r.base_pps = base.pps;
    if (shed.pps > r.shed_pps) r.shed_pps = shed.pps;
    r.shed_drops += shed.dropped;
  }
  r.ratio = r.base_pps > 0.0 ? r.shed_pps / r.base_pps : 0.0;
  return r;
}

struct FairnessResult {
  double worst_gap = 0.0;   // max |dW_f/r_f - dW_m/r_m| over windows (s)
  double bound = 0.0;       // Theorem-1: l_f/r_f + l_m/r_m (s)
  double slack = 0.0;       // one pacing quantum per flow (s)
  double link_util = 0.0;
  bool ok = false;
};

FairnessResult wall_clock_fairness() {
  const double rf = 30e6, rm = 10e6;  // 3:1 weights, bits/s
  const double cap = 40e6;
  const Time duration = 1.5;

  auto sched = bench::make_scheduler("SFQ", cap, 1.0);
  sched->add_flow(rf, kPacketBits);
  sched->add_flow(rm, kPacketBits);

  rt::EngineOptions opts;
  opts.producers = 2;
  opts.buffer_limit = 256;
  opts.overload_policy = net::OverloadPolicy::kPushout;
  rt::RtEngine engine(*sched, std::make_unique<net::ConstantRate>(cap), opts);

  // One producer thread per flow; both offer 2x their weight so they stay
  // continuously backlogged — the Theorem-1 premise.
  std::vector<std::vector<rt::FlowLoad>> producers(2);
  for (std::size_t f = 0; f < 2; ++f) {
    rt::FlowLoad l;
    l.flow = static_cast<FlowId>(f);
    l.model = rt::FlowLoad::Model::kCbr;
    l.rate = 2.0 * (f == 0 ? rf : rm);
    l.packet_bits = kPacketBits;
    producers[f].push_back(l);
  }

  engine.start();
  const Time t0 = engine.now();
  rt::LoadGen gen(engine, std::move(producers), {});
  gen.start(duration);

  std::vector<std::vector<double>> snaps;
  const Time snap_every = 0.075;
  Time next = t0 + snap_every;
  while (engine.now() - t0 < duration) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    if (engine.now() >= next) {
      snaps.push_back(engine.service_snapshot());
      next += snap_every;
    }
  }
  gen.join();
  engine.stop(rt::StopMode::kDrain);
  const Time wall = engine.now() - t0;

  FairnessResult r;
  r.bound = stats::sfq_fairness_bound(kPacketBits, rf, kPacketBits, rm);
  r.slack = kPacketBits / rf + kPacketBits / rm;
  r.link_util = engine.stats().tx_bits / wall / cap;
  // Steady-state middle: skip the first/last quarter of samples (ramp-up
  // before both flows backlog; drain at the end).
  const std::size_t lo = snaps.size() / 4;
  const std::size_t hi = snaps.size() - snaps.size() / 4;
  for (std::size_t i = lo; i < hi; ++i) {
    for (std::size_t j = i + 1; j < hi; ++j) {
      const double df = snaps[j][0] - snaps[i][0];
      const double dm = snaps[j][1] - snaps[i][1];
      const double gap = std::fabs(df / rf - dm / rm);
      if (gap > r.worst_gap) r.worst_gap = gap;
    }
  }
  r.ok = hi > lo + 2 && r.worst_gap <= r.bound + r.slack;
  return r;
}

// Part 4 — sharded scaling. 72 flows so the SplitMix64 router spreads them
// [16, 16, 20, 20] over 4 shards (max shard 27.8% of the flows: a 3.6x
// parallelism ceiling, comfortably above the 2.5x gate); per-flow rate is
// scaled so the total offered load stays the Part-1 1M packets.
constexpr std::size_t kShardFlows = 72;
constexpr double kShardFlowRate =
    kFlowRate * static_cast<double>(kFlows) / static_cast<double>(kShardFlows);

struct ShardedResult {
  ThroughputResult tp;
  std::vector<uint64_t> shard_tx;  // per-shard transmitted
};

std::unique_ptr<rt::ShardedEngine> make_sharded(std::size_t shards,
                                                std::size_t producers) {
  std::vector<rt::ShardFlow> flows(
      kShardFlows, rt::ShardFlow{kShardFlowRate, kPacketBits, ""});
  rt::ShardedEngineOptions opts;
  opts.shards = shards;
  opts.link_rate = 1e15;  // effectively infinite: dispatch-bound, not paced
  opts.engine.producers = producers;
  opts.engine.ring_capacity = 1 << 14;
  opts.engine.buffer_limit = 0;  // backpressure in the rings, no drops
  auto factory = [](std::size_t, double share) {
    return bench::make_scheduler("SFQ", /*assumed_capacity=*/1e15 * share,
                                 /*quantum_per_weight=*/kPacketBits / 1e9);
  };
  return rt::ShardedEngine::try_create(factory, std::move(flows), opts);
}

ShardedResult sharded_throughput(std::size_t shards) {
  std::unique_ptr<rt::ShardedEngine> engine = make_sharded(shards, kProducers);

  std::vector<std::vector<rt::FlowLoad>> producers(kProducers);
  for (std::size_t f = 0; f < kShardFlows; ++f) {
    rt::FlowLoad l;
    l.flow = static_cast<FlowId>(f);
    l.model = rt::FlowLoad::Model::kCbr;
    l.rate = kShardFlowRate;
    l.packet_bits = kPacketBits;
    producers[f % kProducers].push_back(l);
  }
  rt::LoadGenOptions lg;
  lg.paced = false;
  lg.block_on_full = true;

  engine->start();
  const Time t0 = engine->now();
  rt::LoadGen gen(*engine, std::move(producers), lg);
  gen.start(kGenDuration);
  gen.join();
  engine->stop(rt::StopMode::kDrain);
  const Time wall = engine->now() - t0;

  const rt::EngineStats st = engine->stats();
  ShardedResult r;
  r.tp.pps = st.transmitted / wall;
  r.tp.produced = gen.produced_total();
  r.tp.transmitted = st.transmitted;
  r.tp.dropped = st.dropped() + st.ingress_drops + st.abandoned;
  for (std::size_t k = 0; k < shards; ++k)
    r.shard_tx.push_back(engine->shard_stats(k).transmitted);
  return r;
}

// Steady-state allocations in the sharded hot path, measured the way
// bench_scheduler_perf measures the scheduler: warm up (rings, pools and the
// per-shard engines reach steady occupancy), arm the guard, push a burst of
// direct offers from this thread while 4 dispatchers drain concurrently,
// disarm. Routing, id remap, ring hand-off, dispatch and transmit must not
// touch the allocator.
uint64_t sharded_steady_allocs(std::size_t shards, std::size_t packets) {
  std::unique_ptr<rt::ShardedEngine> engine =
      make_sharded(shards, /*producers=*/1);
  engine->start();

  Packet p;
  p.length_bits = kPacketBits;
  uint64_t seq = 0;
  for (std::size_t i = 0; i < packets; ++i) {  // warmup
    p.flow = static_cast<FlowId>(i % kShardFlows);
    p.seq = seq++;
    if (!engine->offer_wait(0, p)) break;
  }
  bench::alloc_guard_arm();
  for (std::size_t i = 0; i < packets; ++i) {
    p.flow = static_cast<FlowId>(i % kShardFlows);
    p.seq = seq++;
    if (!engine->offer_wait(0, p)) break;
  }
  const uint64_t allocs = bench::alloc_guard_disarm();
  engine->stop(rt::StopMode::kDrain);
  return allocs;
}

}  // namespace

int main() {
  bench::print_header(
      "Real-time engine — wall-clock throughput and Theorem-1 fairness",
      "Goyal/Vin/Cheng SFQ paper, §2.5 (O(log Q) cost) + Theorem 1",
      "SFQ >= 1M packets/s with 4 producer threads, every packet accounted; "
      "wall-clock service gap within l_f/r_f + l_m/r_m (+1 pacing quantum)");

  bench::JsonReport report("rt_engine");
  bool ok = true;

  std::printf("\nthroughput, %zu producer threads, %zu flows, unpaced "
              "(1M packets each run):\n",
              kProducers, kFlows);
  stats::TablePrinter t(
      {"scheduler", "packets/s", "produced", "transmitted", "lost"});
  for (const std::string name : {"SFQ", "SCFQ", "VC", "DRR", "FIFO"}) {
    const ThroughputResult r = throughput(name);
    t.row({name, stats::TablePrinter::num(r.pps, 0),
           stats::TablePrinter::num(static_cast<double>(r.produced), 0),
           stats::TablePrinter::num(static_cast<double>(r.transmitted), 0),
           stats::TablePrinter::num(static_cast<double>(r.dropped), 0)});
    report.add(name, "packets_per_sec", r.pps);
    report.add(name, "produced", static_cast<double>(r.produced));
    report.add(name, "transmitted", static_cast<double>(r.transmitted));
    if (r.produced != r.transmitted || r.dropped != 0) {
      std::printf("!! %s lost packets (produced %llu != transmitted %llu)\n",
                  name.c_str(),
                  static_cast<unsigned long long>(r.produced),
                  static_cast<unsigned long long>(r.transmitted));
      ok = false;
    }
    if (name == "SFQ" && r.pps < 1e6) {
      std::printf("!! SFQ below 1M packets/s gate: %.3g\n", r.pps);
      ok = false;
    }
  }

  std::printf("\nadmission control enabled-but-untriggered vs off "
              "(SFQ, interleaved A/B, best of 3 pairs):\n");
  const AdmissionAbResult ab = admission_ab(/*pairs=*/3);
  std::printf("  admission off  %.3g packets/s\n"
              "  admission on   %.3g packets/s (untriggered: %llu drops)\n"
              "  ratio on/off   %.4f\n",
              ab.base_pps, ab.shed_pps,
              static_cast<unsigned long long>(ab.shed_drops), ab.ratio);
  report.add("admission_ab", "base_pps", ab.base_pps);
  report.add("admission_ab", "shed_pps", ab.shed_pps);
  report.add("admission_ab", "ratio", ab.ratio);
  if (ab.shed_drops != 0) {
    std::printf("!! admission machine triggered during the idle-cap A/B "
                "(%llu drops) — the overhead measurement is invalid\n",
                static_cast<unsigned long long>(ab.shed_drops));
    ok = false;
  }
  // The <=5% budget is enforced under SFQ_PERF_GATE (CI perf job and PERF=1
  // check.sh); unconditioned runs report the ratio for the BENCH trajectory.
  const char* gate_env = std::getenv("SFQ_PERF_GATE");
  const bool perf_gate = gate_env != nullptr && *gate_env != '\0' &&
                         *gate_env != '0';
  if (perf_gate && ab.ratio < 0.95) {
    std::printf("!! admission-control overhead above 5%%: ratio %.4f < 0.95\n",
                ab.ratio);
    ok = false;
  }

  std::printf("\nwall-clock fairness (SFQ, weights 3:1, paced, overloaded "
              "40 Mb/s link):\n");
  const FairnessResult f = wall_clock_fairness();
  std::printf("  worst |dW_f/r_f - dW_m/r_m| = %.4g ms\n"
              "  Theorem-1 bound             = %.4g ms (+%.4g ms slack)\n"
              "  link utilization            = %.1f%%\n",
              1e3 * f.worst_gap, 1e3 * f.bound, 1e3 * f.slack,
              100.0 * f.link_util);
  report.add("fairness", "worst_gap_s", f.worst_gap);
  report.add("fairness", "theorem1_bound_s", f.bound);
  report.add("fairness", "slack_s", f.slack);
  report.add("fairness", "link_utilization", f.link_util);
  if (!f.ok) {
    std::printf("!! wall-clock fairness outside Theorem-1 bound\n");
    ok = false;
  }

  std::printf("\nsharded scaling (SFQ, %zu flows, %zu producers, unpaced "
              "1M packets, 1 vs 4 shards):\n",
              kShardFlows, kProducers);
  constexpr std::size_t kShards = 4;
  const ShardedResult s1 = sharded_throughput(1);
  const ShardedResult s4 = sharded_throughput(kShards);
  const double ratio = s1.tp.pps > 0.0 ? s4.tp.pps / s1.tp.pps : 0.0;
  std::printf("  1 shard   %.3g packets/s\n  %zu shards  %.3g packets/s  (",
              s1.tp.pps, kShards, s4.tp.pps);
  for (std::size_t k = 0; k < s4.shard_tx.size(); ++k)
    std::printf("%s%llu", k ? " " : "",
                static_cast<unsigned long long>(s4.shard_tx[k]));
  std::printf(" per shard)\n  ratio     %.2fx\n", ratio);
  report.add("sharded", "single_pps", s1.tp.pps);
  report.add("sharded", "sharded_pps", s4.tp.pps);
  report.add("sharded", "speedup", ratio);
  for (const ShardedResult* r : {&s1, &s4})
    if (r->tp.produced != r->tp.transmitted || r->tp.dropped != 0) {
      std::printf("!! sharded run lost packets (produced %llu != "
                  "transmitted %llu, dropped %llu)\n",
                  static_cast<unsigned long long>(r->tp.produced),
                  static_cast<unsigned long long>(r->tp.transmitted),
                  static_cast<unsigned long long>(r->tp.dropped));
      ok = false;
    }
  const uint64_t shard_allocs =
      sharded_steady_allocs(kShards, /*packets=*/200000);
  std::printf("  steady-state allocations (200k direct offers, guard "
              "armed): %llu\n",
              static_cast<unsigned long long>(shard_allocs));
  report.add("sharded", "steady_allocs",
             static_cast<double>(shard_allocs));
  if (shard_allocs != 0) {
    std::printf("!! sharded hot path allocated under the guard\n");
    ok = false;
  }
  // The 2.5x gate needs cores to scale onto: 4 dispatchers + producers.
  // Enforced only under SFQ_PERF_GATE on machines with >= 2 cores per shard
  // (the CI perf job); elsewhere the ratio is informational.
  if (perf_gate && std::thread::hardware_concurrency() >= 2 * kShards &&
      ratio < 2.5) {
    std::printf("!! sharded speedup below gate: %.2fx < 2.5x\n", ratio);
    ok = false;
  }

  const std::string json_path = report.write();
  if (!json_path.empty()) std::printf("\nwrote %s\n", json_path.c_str());
  std::printf("shape check: %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
