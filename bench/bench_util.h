#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/scheduler.h"
#include "stats/time_series.h"

namespace sfq::bench {

// Factory over every scheduler in the library so benches can sweep
// disciplines uniformly. `assumed_capacity` feeds WFQ/FQS's GPS emulation;
// `quantum_per_weight` feeds DRR.
std::unique_ptr<Scheduler> make_scheduler(const std::string& name,
                                          double assumed_capacity,
                                          double quantum_per_weight = 1.0);

void print_header(const std::string& experiment, const std::string& paper_ref,
                  const std::string& expectation);

// Machine-readable companion to the printed tables: collects
// (scenario, metric, value) records and writes them as a JSON array to
// BENCH_<name>.json on write() (or destruction) — into $BENCH_DIR if that
// env var is set (scripts/bench.sh uses it), else the current directory.
// Offline tooling diffs these files across commits without scraping tables.
class JsonReport {
 public:
  explicit JsonReport(std::string name);
  ~JsonReport();

  void add(const std::string& scenario, const std::string& metric,
           double value);

  // Writes BENCH_<name>.json; returns the path written ("" on failure).
  // Idempotent: later calls (and the destructor) rewrite the same file.
  std::string write();

 private:
  struct Record {
    std::string scenario;
    std::string metric;
    double value;
  };
  std::string name_;
  std::vector<Record> records_;
  bool written_ = false;
};

}  // namespace sfq::bench
