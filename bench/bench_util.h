#pragma once

#include <memory>
#include <string>

#include "core/scheduler.h"
#include "stats/time_series.h"

namespace sfq::bench {

// Factory over every scheduler in the library so benches can sweep
// disciplines uniformly. `assumed_capacity` feeds WFQ/FQS's GPS emulation;
// `quantum_per_weight` feeds DRR.
std::unique_ptr<Scheduler> make_scheduler(const std::string& name,
                                          double assumed_capacity,
                                          double quantum_per_weight = 1.0);

void print_header(const std::string& experiment, const std::string& paper_ref,
                  const std::string& expectation);

}  // namespace sfq::bench
