// Reproduces Theorems 4 & 5: single-server delay guarantees of (generalized)
// SFQ on FC and EBF servers, measured as the worst observed departure time
// past each packet's EAT (eq. 37), including variable per-packet rates
// (eq. 36).
//
// Expected shape: worst observed overhang <= the Theorem-4 term on the FC
// server (with slack to spare); on the EBF server the overhang exceeds the
// FC-style term only with rapidly vanishing frequency.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/sfq_scheduler.h"
#include "net/rate_profile.h"
#include "net/scheduled_server.h"
#include "qos/bounds.h"
#include "qos/eat.h"
#include "sim/simulator.h"
#include "stats/time_series.h"
#include "traffic/sources.h"

namespace {

using namespace sfq;

struct Overhang {
  Time worst = -kTimeInfinity;
  std::vector<Time> all;
};

Overhang measure(std::unique_ptr<net::RateProfile> profile, double capacity,
                 bool per_packet_rates, Time duration, uint64_t seed) {
  const double len = 1000.0;
  sim::Simulator sim;
  SfqScheduler sched;
  // Three flows; rates sum to the capacity.
  const std::vector<double> rates = {0.2 * capacity, 0.3 * capacity,
                                     0.5 * capacity};
  std::vector<FlowId> ids;
  for (double r : rates) ids.push_back(sched.add_flow(r, len));

  net::ScheduledServer server(sim, sched, std::move(profile));
  Overhang out;
  std::vector<std::vector<Time>> eats(ids.size());
  server.set_departure([&](const Packet& p, Time t) {
    const Time over = t - eats[p.flow][p.seq - 1];
    out.worst = std::max(out.worst, over);
    out.all.push_back(over);
  });
  qos::PerFlowEat eat;
  auto emit = [&](Packet p) {
    if (per_packet_rates) {
      // Generalized SFQ: each packet of flow 2 alternates between half and
      // double its flow rate while keeping sum R_n(v) <= C at all times
      // (flows 0/1 stay at fixed rates; flow 2 never exceeds its share).
      if (p.flow == ids[2])
        p.rate = (p.seq % 2 == 0) ? rates[2] : rates[2] * 0.5;
    }
    const double r = p.rate > 0.0 ? p.rate : rates[p.flow];
    eats[p.flow].push_back(eat.on_arrival(p.flow, sim.now(), p.length_bits, r));
    server.inject(std::move(p));
  };

  std::vector<std::unique_ptr<traffic::Source>> sources;
  sources.push_back(std::make_unique<traffic::PoissonSource>(
      sim, ids[0], emit, rates[0] * 0.9, len, seed + 1));
  sources.push_back(std::make_unique<traffic::OnOffSource>(
      sim, ids[1], emit, rates[1] * 2.0, len, 0.05, 0.07, seed + 2));
  sources.push_back(std::make_unique<traffic::CbrSource>(
      sim, ids[2], emit, rates[2] * 0.45, len));
  for (auto& s : sources) s->run(0.0, duration);
  sim.run_until(duration);
  sim.run();
  return out;
}

}  // namespace

int main() {
  sfq::bench::print_header(
      "Theorems 4 & 5 — SFQ delay guarantees on FC and EBF servers",
      "SFQ paper §2.3",
      "worst overhang past EAT within the Theorem-4 term on FC servers; "
      "exponentially rare excess on EBF servers");

  const double C = 1e6, delta = 1e5, len = 1000.0;
  const Time beta_fc = qos::sfq_fc_delay_term({C, delta}, 2 * len, len);
  const Time beta_const = qos::sfq_fc_delay_term({C, 0.0}, 2 * len, len);

  sfq::stats::TablePrinter t(
      {"server", "rates", "worst-overhang(ms)", "bound(ms)", "ok"});
  bool ok = true;

  for (bool varying : {false, true}) {
    const auto r1 = measure(std::make_unique<net::ConstantRate>(C), C, varying,
                            30.0, 5);
    const bool o1 = r1.worst <= beta_const + 1e-9;
    ok = ok && o1;
    t.row({"constant", varying ? "per-packet" : "fixed",
           sfq::stats::TablePrinter::num(to_milliseconds(r1.worst), 3),
           sfq::stats::TablePrinter::num(to_milliseconds(beta_const), 3),
           o1 ? "yes" : "NO"});

    const auto r2 = measure(std::make_unique<net::FcOnOffRate>(C, delta, 0.5),
                            C, varying, 30.0, 6);
    const bool o2 = r2.worst <= beta_fc + 1e-9;
    ok = ok && o2;
    t.row({"FC", varying ? "per-packet" : "fixed",
           sfq::stats::TablePrinter::num(to_milliseconds(r2.worst), 3),
           sfq::stats::TablePrinter::num(to_milliseconds(beta_fc), 3),
           o2 ? "yes" : "NO"});
  }

  // EBF: count how often the overhang exceeds the FC-style term + gamma.
  net::EbfRandomRate::Params ep;
  ep.average = C;
  ep.on_rate = 2.5e6;
  ep.mean_pause = 0.003;
  ep.mean_run = 0.005;
  ep.seed = 13;
  const auto r3 =
      measure(std::make_unique<net::EbfRandomRate>(ep), C, false, 60.0, 7);
  std::printf("\nEBF server, %zu packets: overhang tail\n", r3.all.size());
  sfq::stats::TablePrinter t2({"gamma(ms)", "P(overhang > beta0+gamma)"});
  const Time beta0 = qos::sfq_fc_delay_term({C, 0.0}, 2 * len, len);
  double prev = 1.0;
  bool decays = true;
  for (double g_ms : {0.0, 5.0, 10.0, 20.0}) {
    int n = 0;
    for (Time o : r3.all)
      if (o > beta0 + milliseconds(g_ms)) ++n;
    const double p = static_cast<double>(n) / r3.all.size();
    if (p > prev + 1e-12) decays = false;
    prev = p;
    t2.row({sfq::stats::TablePrinter::num(g_ms, 0),
            sfq::stats::TablePrinter::num(p, 5)});
  }

  std::printf("\nshape check: FC/constant bounds hold: %s; EBF tail "
              "non-increasing: %s\n",
              ok ? "yes" : "NO", decays ? "yes" : "NO");
  return (ok && decays) ? 0 : 1;
}
