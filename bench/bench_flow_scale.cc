// Million-flow scheduler benchmark (docs/PERFORMANCE.md, "The flow-scale
// core").
//
// One million concurrently registered flows offer Zipf(1.0)-distributed
// traffic through a single SfqScheduler while tail flows churn (remove_flow
// + add_flow) at one event per 100 packets — 10k churn events/s at the 1M
// packets/s operating point. The same deterministic workload runs on both
// ready-queue cores:
//
//   * kHeap  — the exact IndexedHeap, O(log Q) per packet: the baseline;
//   * kWheel — the hierarchical timestamp wheel, O(1) amortized per packet,
//              with flow-id GC recycling churned ids through the flow
//              table's free list.
//
// Gates (unconditional — this is the flow-scale acceptance bench):
//   * the wheel core sustains >= 1M packets/s through the full
//     enqueue -> dequeue -> on_transmit_complete cycle at 1M flows;
//   * the measured steady-state loop — churn, id recycling and GC reclaim
//     included — performs zero heap allocations under the counting guard
//     (reserve_flows() pre-sizes every per-flow structure);
//   * the flow table stays bounded: churned ids are recycled, so the slot
//     universe never exceeds the initial population plus the reserved
//     retirement headroom (the flow-id leak this PR fixes would grow it by
//     one slot per churn event).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "alloc_guard.h"
#include "bench_util.h"
#include "core/sfq_scheduler.h"
#include "stats/time_series.h"

namespace {

using namespace sfq;

constexpr std::size_t kFlows = 1'000'000;
// Retirement headroom: a churned id whose finish tag is still ahead of v(t)
// cannot be reclaimed yet, so add_flow briefly extends the slot universe.
// reserve_flows() covers the worst case so the measured loop never grows a
// per-flow structure.
constexpr std::size_t kHeadroom = 1 << 15;
constexpr double kPacketBits = 8000.0;
constexpr double kLinkRate = 1e9;               // bits/s, quantum scale
constexpr double kWeight = kLinkRate / kFlows;  // equal shares
constexpr std::size_t kBacklog = 1 << 16;       // steady queued packets
constexpr std::size_t kWarmupOps = 300'000;
constexpr std::size_t kMeasuredOps = 2'000'000;
constexpr std::size_t kChurnEvery = 100;  // packets per churn event

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' ? std::atof(v) : fallback;
}

// Deterministic SplitMix64 stream for the Zipf draws.
uint64_t mix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// Zipf(s = 1.0) over kFlows ranks via the precomputed CDF: rank i (0-based)
// has probability (1/(i+1)) / H(kFlows). The head flow carries ~7% of the
// traffic, the median packet still lands in the first few thousand flows,
// and the far tail is quiet enough to churn.
std::vector<FlowId> make_zipf_schedule(std::size_t draws, uint64_t seed) {
  std::vector<double> cdf(kFlows);
  double h = 0.0;
  for (std::size_t i = 0; i < kFlows; ++i) {
    h += 1.0 / static_cast<double>(i + 1);
    cdf[i] = h;
  }
  for (double& c : cdf) c /= h;
  std::vector<FlowId> schedule(draws);
  uint64_t state = seed;
  for (std::size_t i = 0; i < draws; ++i) {
    const double u =
        static_cast<double>(mix64(state) >> 11) * 0x1.0p-53;  // [0, 1)
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    schedule[i] = static_cast<FlowId>(it - cdf.begin());
  }
  return schedule;
}

struct ScaleResult {
  double pps = 0.0;
  uint64_t transmitted = 0;
  uint64_t churn_events = 0;
  uint64_t recycled_ids = 0;   // churn events whose add_flow reused the id
  uint64_t steady_allocs = 0;  // operator-new calls in the measured loop
  std::size_t table_slots = 0;  // flow-table slot universe after the run
  std::size_t gc_pending = 0;   // retired ids awaiting reclaim at the end
};

// One full run on the given core: register 1M flows, pre-fill the backlog,
// warm up past every high-water mark (churn included), then measure
// kMeasuredOps enqueue->dequeue->complete cycles under the allocation guard.
ScaleResult run_core(SfqCore core, const std::vector<FlowId>& schedule) {
  SfqOptions opts;
  opts.core = core;
  opts.wheel_quantum = kPacketBits / kLinkRate;
  opts.flow_gc = true;
  SfqScheduler sched(opts);
  sched.reserve_flows(kFlows + kHeadroom);
  for (std::size_t f = 0; f < kFlows; ++f) {
    const FlowId id = sched.add_flow(kWeight, kPacketBits);
    // Exercise the open-addressing key index at full scale (setup only; the
    // measured churn path recycles unkeyed flows).
    sched.flows().bind_key(0x517cc1b727220a95ull * (f + 1), id);
  }

  // Tail flows are the churn ring: Zipf leaves them idle almost always, and
  // the loop below skips any that happen to be backlogged.
  std::vector<FlowId> churn_ring;
  churn_ring.reserve(kFlows / 4);
  for (std::size_t f = kFlows - kFlows / 4; f < kFlows; ++f)
    churn_ring.push_back(static_cast<FlowId>(f));
  std::size_t churn_at = 0;

  ScaleResult r;
  const double dt = kPacketBits / kLinkRate;
  Time now = 0.0;
  uint64_t seq = 1;
  std::size_t backlog = 0;
  std::size_t next = 0;  // schedule cursor

  auto step = [&](bool measured) {
    Packet p;
    p.flow = schedule[next];
    next = (next + 1) % schedule.size();
    p.seq = seq++;
    p.length_bits = kPacketBits;
    p.arrival = now;
    if (sched.enqueue(p, now)) ++backlog;
    if (backlog > 0) {
      std::optional<Packet> out = sched.dequeue(now);
      now += dt;
      sched.on_transmit_complete(*out, now);
      --backlog;
      if (measured) ++r.transmitted;
    } else {
      now += dt;
    }
    if (seq % kChurnEvery == 0) {
      // Churn the next idle tail flow: remove it and register a successor.
      // With flow_gc the retired id is reclaimed once tag-safe, so add_flow
      // hands the same id back and the table stays bounded.
      for (std::size_t tries = 0; tries < churn_ring.size(); ++tries) {
        const FlowId victim = churn_ring[churn_at];
        churn_at = (churn_at + 1) % churn_ring.size();
        if (!sched.flows().active(victim) ||
            sched.backlog_bits(victim) > 0.0)
          continue;
        sched.remove_flow(victim, now);
        const FlowId fresh = sched.add_flow(kWeight, kPacketBits);
        churn_ring[(churn_at + churn_ring.size() - 1) % churn_ring.size()] =
            fresh;
        if (measured) {
          ++r.churn_events;
          if (fresh == victim) ++r.recycled_ids;
        }
        break;
      }
    }
  };

  for (std::size_t i = 0; i < kBacklog; ++i) {  // pre-fill the backlog
    Packet p;
    p.flow = schedule[next];
    next = (next + 1) % schedule.size();
    p.seq = seq++;
    p.length_bits = kPacketBits;
    p.arrival = now;
    if (sched.enqueue(p, now)) ++backlog;
  }
  for (std::size_t i = 0; i < kWarmupOps; ++i) step(/*measured=*/false);

  bench::alloc_guard_arm();
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < kMeasuredOps; ++i) step(/*measured=*/true);
  const auto t1 = std::chrono::steady_clock::now();
  r.steady_allocs = bench::alloc_guard_disarm();

  const double wall = std::chrono::duration<double>(t1 - t0).count();
  r.pps = wall > 0.0 ? static_cast<double>(r.transmitted) / wall : 0.0;
  r.table_slots = sched.flows().size();
  r.gc_pending = sched.gc_pending();
  return r;
}

}  // namespace

int main() {
  bench::print_header(
      "Flow scale — 1M flows, Zipf traffic, churn: wheel vs heap core",
      "Goyal/Vin/Cheng SFQ paper, §2.5 (per-packet cost) + Theorem 1",
      "SFQ-W >= 1M packets/s at 1M flows with zero steady-state allocations "
      "and a bounded flow table under 10k churn events per 1M packets");

  bench::JsonReport report("flow_scale");
  bool ok = true;

  std::printf("\npreparing %zu-draw Zipf(1.0) schedule over %zu flows...\n",
              static_cast<std::size_t>(kMeasuredOps), kFlows);
  const std::vector<FlowId> schedule =
      make_zipf_schedule(kMeasuredOps, /*seed=*/0x5f0e9cc5u);

  struct CoreCase {
    const char* label;
    SfqCore core;
  };
  ScaleResult wheel_result;
  stats::TablePrinter t({"core", "packets/s", "churn", "recycled", "allocs",
                         "table slots", "gc pending"});
  for (const CoreCase c : {CoreCase{"SFQ-W (wheel)", SfqCore::kWheel},
                           CoreCase{"SFQ (heap)", SfqCore::kHeap}}) {
    const ScaleResult r = run_core(c.core, schedule);
    t.row({c.label, stats::TablePrinter::num(r.pps, 0),
           stats::TablePrinter::num(static_cast<double>(r.churn_events), 0),
           stats::TablePrinter::num(static_cast<double>(r.recycled_ids), 0),
           stats::TablePrinter::num(static_cast<double>(r.steady_allocs), 0),
           stats::TablePrinter::num(static_cast<double>(r.table_slots), 0),
           stats::TablePrinter::num(static_cast<double>(r.gc_pending), 0)});
    const std::string scen = c.core == SfqCore::kWheel ? "wheel" : "heap";
    report.add(scen, "packets_per_sec", r.pps);
    report.add(scen, "churn_events", static_cast<double>(r.churn_events));
    report.add(scen, "recycled_ids", static_cast<double>(r.recycled_ids));
    report.add(scen, "steady_allocs", static_cast<double>(r.steady_allocs));
    report.add(scen, "table_slots", static_cast<double>(r.table_slots));
    if (c.core == SfqCore::kWheel) wheel_result = r;

    if (r.steady_allocs != 0) {
      std::printf("!! %s allocated under the guard: %llu\n", c.label,
                  static_cast<unsigned long long>(r.steady_allocs));
      ok = false;
    }
    if (r.table_slots > kFlows + kHeadroom) {
      std::printf("!! %s leaked flow ids: %zu slots > %zu + %zu headroom\n",
                  c.label, r.table_slots, kFlows,
                  static_cast<std::size_t>(kHeadroom));
      ok = false;
    }
    if (r.churn_events == 0 || r.recycled_ids == 0) {
      std::printf("!! %s exercised no id recycling (churn %llu, recycled "
                  "%llu) — the bench lost its regression power\n",
                  c.label, static_cast<unsigned long long>(r.churn_events),
                  static_cast<unsigned long long>(r.recycled_ids));
      ok = false;
    }
  }

  // The 1M packets/s floor is the acceptance target on developer machines;
  // the CI perf job lowers it via SFQ_PERF_FLOOR_PPS (shared runners are
  // slow and noisy) the same way bench_sim_throughput does.
  const double floor_pps = env_double("SFQ_PERF_FLOOR_PPS", 1e6);
  if (wheel_result.pps < floor_pps) {
    std::printf("!! wheel core below the %.3g packets/s gate: %.3g\n",
                floor_pps, wheel_result.pps);
    ok = false;
  }

  const std::string json_path = report.write();
  if (!json_path.empty()) std::printf("\nwrote %s\n", json_path.c_str());
  std::printf("shape check: %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
