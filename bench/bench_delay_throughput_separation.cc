// Reproduces §3's "separation of delay and throughput allocation".
//
// SFQ gives every flow the same guarantee past its EAT (Theorem 4's
// sum l_n^max / C term), which grows with the number of flows and cannot be
// differentiated per flow. Aggregating the real-time flows into one class and
// running Delay-EDD inside it (over the class's eq.-65 FC virtual server,
// Theorem 7) lets two flows with the *same rate* receive *different* delay
// guarantees — and lets a latency-critical flow keep a tight bound no matter
// how many lax flows share the class.
//
// Workload: one 20 Kb/s "control" flow with a 5 ms deadline and one with the
// same rate but a lax 300 ms deadline, plus 19 bursty 24 Kb/s media flows,
// all in a 500 Kb/s real-time class; a greedy best-effort sibling takes the
// other half of a 1 Mb/s link. Bursts are phase-aligned so worst cases are
// actually exercised.
//
// Expected shape: flat SFQ delays both control flows equally (coupled);
// in the EDD class the tight-deadline flow's worst lateness past EAT drops
// well below the lax one's and stays within deadline + Theorem-7 slack.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "core/sfq_scheduler.h"
#include "hier/hsfq_scheduler.h"
#include "net/rate_profile.h"
#include "net/scheduled_server.h"
#include "qos/admission.h"
#include "qos/bounds.h"
#include "qos/eat.h"
#include "sched/edd_scheduler.h"
#include "sim/simulator.h"
#include "stats/time_series.h"
#include "traffic/sources.h"

namespace {

using namespace sfq;

constexpr double kC = 1e6;
constexpr double kLen = 1000.0;
constexpr double kCtrlRate = 20e3;
constexpr int kMedia = 19;
constexpr double kMediaRate = 24e3;
constexpr double kClsRate = 0.5 * kC;
constexpr Time kTightDeadline = 0.005;
constexpr Time kLaxDeadline = 0.300;

struct Worst {
  Time tight = -kTimeInfinity;  // worst (departure - EAT), tight-deadline flow
  Time lax = -kTimeInfinity;    // same, lax-deadline flow
};

Worst run(bool hierarchical_edd, Time duration) {
  sim::Simulator sim;
  std::unique_ptr<Scheduler> sched;
  FlowId tight, lax, be;
  std::vector<FlowId> media;

  if (hierarchical_edd) {
    auto h = std::make_unique<hier::HsfqScheduler>();
    auto cls = h->add_class(hier::HsfqScheduler::kRootClass, kClsRate, "rt");
    h->attach_scheduler(cls, std::make_unique<EddScheduler>());
    auto* edd = dynamic_cast<EddScheduler*>(h->inner_scheduler(cls));
    tight = h->add_flow_in_class(cls, kCtrlRate, kLen);
    lax = h->add_flow_in_class(cls, kCtrlRate, kLen);
    edd->set_deadline(0, kTightDeadline);
    edd->set_deadline(1, kLaxDeadline);
    for (int i = 0; i < kMedia; ++i) {
      media.push_back(h->add_flow_in_class(cls, kMediaRate, kLen));
      edd->set_deadline(2 + i, kLaxDeadline);
    }
    be = h->add_flow_in_class(hier::HsfqScheduler::kRootClass, kC - kClsRate,
                              kLen);
    sched = std::move(h);
  } else {
    auto s = std::make_unique<SfqScheduler>();
    tight = s->add_flow(kCtrlRate, kLen);
    lax = s->add_flow(kCtrlRate, kLen);
    for (int i = 0; i < kMedia; ++i) media.push_back(s->add_flow(kMediaRate, kLen));
    be = s->add_flow(kC - kClsRate, kLen);
    sched = std::move(s);
  }

  net::ScheduledServer server(sim, *sched,
                              std::make_unique<net::ConstantRate>(kC));
  Worst out;
  std::vector<std::vector<Time>> eats(be + 1);
  server.set_departure([&](const Packet& p, Time t) {
    if (p.flow == tight)
      out.tight = std::max(out.tight, t - eats[p.flow][p.seq - 1]);
    if (p.flow == lax)
      out.lax = std::max(out.lax, t - eats[p.flow][p.seq - 1]);
  });
  qos::PerFlowEat eat;
  auto emit_tracked = [&](Packet p, double rate) {
    eats[p.flow].push_back(eat.on_arrival(p.flow, sim.now(), p.length_bits, rate));
    server.inject(std::move(p));
  };
  auto emit_ctrl = [&](Packet p) { emit_tracked(std::move(p), kCtrlRate); };
  auto emit_plain = [&](Packet p) { server.inject(std::move(p)); };

  std::vector<std::unique_ptr<traffic::Source>> src;
  src.push_back(std::make_unique<traffic::CbrSource>(sim, tight, emit_ctrl,
                                                     kCtrlRate * 0.9, kLen));
  src.push_back(std::make_unique<traffic::CbrSource>(sim, lax, emit_ctrl,
                                                     kCtrlRate * 0.9, kLen));
  // Media flows burst in phase: every 0.5 s each dumps 10 packets.
  for (int i = 0; i < kMedia; ++i) {
    std::vector<traffic::TraceSource::Item> items;
    for (double t0 = 0.0; t0 < duration; t0 += 0.5)
      for (int k = 0; k < 10; ++k) items.push_back({t0, kLen});
    src.push_back(std::make_unique<traffic::TraceSource>(
        sim, media[i], emit_plain, std::move(items)));
  }
  src.push_back(
      std::make_unique<traffic::CbrSource>(sim, be, emit_plain, kC, kLen));
  for (auto& s : src) s->run(0.0, duration);
  sim.run_until(duration);
  sim.run();
  return out;
}

}  // namespace

int main() {
  using namespace sfq;
  bench::print_header(
      "§3 — separation of delay and throughput via Delay-EDD in a class",
      "SFQ paper §3 (Theorem 7 + eq. 65)",
      "flat SFQ: equal-rate flows get equal worst delays; EDD class: the "
      "5 ms-deadline flow beats the 300 ms one and meets Theorem 7");

  const qos::FcParams cls =
      qos::hsfq_class_params({kC, 0.0}, kClsRate, 2.0 * kLen, kLen);
  std::vector<qos::EddFlow> spec = {{kCtrlRate, kLen, kTightDeadline},
                                    {kCtrlRate, kLen, kLaxDeadline}};
  for (int i = 0; i < kMedia; ++i)
    spec.push_back({kMediaRate, kLen, kLaxDeadline});
  const bool admissible = qos::edd_schedulable(spec, cls.rate);
  const Time slack = qos::edd_fc_delay_slack(cls, kLen);
  std::printf("\nclass virtual server: FC(%.0f, %.0f bits); EDD schedulable: "
              "%s; Theorem-7 slack %.2f ms\n",
              cls.rate, cls.delta, admissible ? "yes" : "NO",
              to_milliseconds(slack));

  const Worst flat = run(false, 60.0);
  const Worst edd = run(true, 60.0);

  stats::TablePrinter t({"flow (20Kb/s each)", "flat-SFQ worst past EAT(ms)",
                         "EDD-class(ms)", "bound(ms)"});
  t.row({"deadline 5ms",
         stats::TablePrinter::num(to_milliseconds(flat.tight), 2),
         stats::TablePrinter::num(to_milliseconds(edd.tight), 2),
         stats::TablePrinter::num(to_milliseconds(kTightDeadline + slack), 2)});
  t.row({"deadline 300ms",
         stats::TablePrinter::num(to_milliseconds(flat.lax), 2),
         stats::TablePrinter::num(to_milliseconds(edd.lax), 2),
         stats::TablePrinter::num(to_milliseconds(kLaxDeadline + slack), 2)});

  // Flat SFQ cannot differentiate equal-rate flows; EDD can.
  const bool coupled = std::abs(flat.tight - flat.lax) <
                       0.3 * std::max(flat.tight, flat.lax);
  const bool differentiated = edd.tight < 0.6 * edd.lax;
  const bool within = edd.tight <= kTightDeadline + slack + 1e-9 &&
                      edd.lax <= kLaxDeadline + slack + 1e-9;
  std::printf("\nshape check: flat SFQ treats equal rates equally: %s; EDD "
              "differentiates them: %s; Theorem-7 bounds met: %s\n",
              coupled ? "yes" : "NO", differentiated ? "yes" : "NO",
              within ? "yes" : "NO");
  return (coupled && differentiated && within && admissible) ? 0 : 1;
}
