// Reproduces Figure 3(b): the Section-4 implementation experiment.
//
// The paper ran an SFQ scheduler for a FORE ATM interface in Solaris 2.4 and
// opened three connections with weights 1, 2, 3, each sending 500,000 4 KB
// packets; the realizable interface bandwidth (~48 Mb/s) varied over time.
// We model the interface as an FC server with a fluctuating rate around
// 48 Mb/s (our substitution for the NIC; see DESIGN.md) and terminate the
// connections in stages (weight-3 first, then weight-2), down-scaling packet
// counts so the run completes in seconds.
//
// Expected shape: throughput in ratio 1:2:3 while all three are active; the
// survivors re-split 1:2 after the weight-3 connection ends; the last
// connection takes the full bandwidth; aggregate matches the interface rate.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/sfq_scheduler.h"
#include "net/rate_profile.h"
#include "net/scheduled_server.h"
#include "sim/simulator.h"
#include "stats/time_series.h"
#include "traffic/sources.h"

int main() {
  using namespace sfq;
  bench::print_header(
      "Figure 3(b) — weighted link sharing on a variable-rate interface",
      "SFQ paper §4 (Solaris/ATM implementation experiment)",
      "throughput ratios 1:2:3 -> 1:2 -> full bandwidth as connections end");

  const double kIface = megabits_per_sec(48);
  const double kLen = bytes(4096);
  const uint64_t kPackets3 = 4000;  // down-scaled from 500,000
  const uint64_t kPackets2 = 7000;
  const uint64_t kPackets1 = 12000;

  sim::Simulator sim;
  SfqScheduler sched;
  FlowId c1 = sched.add_flow(1.0, kLen, "w1");
  FlowId c2 = sched.add_flow(2.0, kLen, "w2");
  FlowId c3 = sched.add_flow(3.0, kLen, "w3");

  // The interface: FC server, average 48 Mb/s, ~2 ms-scale rate dips.
  net::ScheduledServer server(
      sim, sched,
      std::make_unique<net::FcOnOffRate>(kIface, /*delta=*/kIface * 0.002,
                                         /*duty=*/0.8));
  stats::TimeSeries tput(0.25);  // bits per 250 ms bucket
  server.set_departure([&](const Packet& p, Time t) {
    tput.add(p.flow, t, p.length_bits);
  });

  // Greedy senders with fixed packet budgets, like the paper's 500k-packet
  // connections: emit well above the link rate; the budget caps each flow.
  auto emit = [&](Packet p) { server.inject(std::move(p)); };
  struct Budget {
    uint64_t left;
  };
  auto budgeted = [&](FlowId f, uint64_t budget) {
    auto counter = std::make_shared<Budget>(Budget{budget});
    return [&, f, counter](Packet p) {
      if (counter->left == 0) return;
      --counter->left;
      p.flow = f;
      emit(std::move(p));
    };
  };
  traffic::CbrSource s1(sim, c1, budgeted(c1, kPackets1), kIface, kLen);
  traffic::CbrSource s2(sim, c2, budgeted(c2, kPackets2), kIface, kLen);
  traffic::CbrSource s3(sim, c3, budgeted(c3, kPackets3), kIface, kLen);
  const Time kHorizon = 20.0;
  s1.run(0.0, kHorizon);
  s2.run(0.0, kHorizon);
  s3.run(0.0, kHorizon);
  sim.run_until(kHorizon);
  sim.run();

  const Time end = 12.0;
  auto b1 = tput.bucket_sums(c1, end);
  auto b2 = tput.bucket_sums(c2, end);
  auto b3 = tput.bucket_sums(c3, end);

  std::printf("\nthroughput (Mb/s per 250 ms bucket):\n");
  stats::TablePrinter table({"t(s)", "w1", "w2", "w3", "total"});
  for (std::size_t i = 0; i < b1.size(); ++i) {
    const double m1 = b1[i] / 0.25 / 1e6, m2 = b2[i] / 0.25 / 1e6,
                 m3 = b3[i] / 0.25 / 1e6;
    table.row({stats::TablePrinter::num(0.25 * (i + 1), 2),
               stats::TablePrinter::num(m1, 1), stats::TablePrinter::num(m2, 1),
               stats::TablePrinter::num(m3, 1),
               stats::TablePrinter::num(m1 + m2 + m3, 1)});
  }

  // Phase checks: all active in [0,1]; w3 done first; then w2; then w1 alone.
  auto rate_in = [&](const std::vector<double>& b, double t0, double t1) {
    double s = 0.0;
    int n = 0;
    for (std::size_t i = 0; i < b.size(); ++i) {
      const double mid = 0.25 * (i + 0.5);
      if (mid >= t0 && mid < t1) {
        s += b[i];
        ++n;
      }
    }
    return n ? s / (0.25 * n) : 0.0;
  };
  const double p1_r1 = rate_in(b1, 0.0, 1.0), p1_r2 = rate_in(b2, 0.0, 1.0),
               p1_r3 = rate_in(b3, 0.0, 1.0);
  std::printf("\nphase 1 ratios (expect 1:2:3): %.2f : %.2f : %.2f\n", 1.0,
              p1_r2 / p1_r1, p1_r3 / p1_r1);
  const bool phase1_ok = std::abs(p1_r2 / p1_r1 - 2.0) < 0.15 &&
                         std::abs(p1_r3 / p1_r1 - 3.0) < 0.2;

  // Find when w3 and w2 stop transmitting.
  auto end_of = [&](const std::vector<double>& b) {
    double t = 0.0;
    for (std::size_t i = 0; i < b.size(); ++i)
      if (b[i] > 0.0) t = 0.25 * (i + 1);
    return t;
  };
  const double t3 = end_of(b3), t2 = end_of(b2);
  const double p2_r1 = rate_in(b1, t3 + 0.25, t2 - 0.5),
               p2_r2 = rate_in(b2, t3 + 0.25, t2 - 0.5);
  std::printf("phase 2 (w3 done at %.2fs) ratio (expect 1:2): %.2f : %.2f\n",
              t3, 1.0, p2_r2 / p2_r1);
  const bool phase2_ok = std::abs(p2_r2 / p2_r1 - 2.0) < 0.2;

  const double p3_r1 = rate_in(b1, t2 + 0.25, end_of(b1) - 0.25);
  std::printf("phase 3 (w2 done at %.2fs): w1 alone at %.1f Mb/s "
              "(interface ~48)\n",
              t2, p3_r1 / 1e6);
  const bool phase3_ok = p3_r1 > 0.9 * kIface;

  std::printf("\nshape check: 1:2:3 %s, 1:2 %s, full-rate takeover %s\n",
              phase1_ok ? "yes" : "NO", phase2_ok ? "yes" : "NO",
              phase3_ok ? "yes" : "NO");
  return (phase1_ok && phase2_ok && phase3_ok) ? 0 : 1;
}
